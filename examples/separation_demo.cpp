// separation_demo: Theorem 6.2's adversary, narrated.
//
//   $ ./build/examples/separation_demo
//
// Runs the executable Section 6 construction against a well-engineered
// read/write DSM signaling algorithm (registration-based, O(1) amortized in
// honest runs) and prints what the adversary does to it: stabilize the
// waiters, pick a signaler whose module nobody wrote, and erase every
// waiter the signaler is about to discover — forcing it to pay one RMR per
// waiter for a history in which almost nobody officially participates.
#include <cstdio>
#include <memory>

#include "lowerbound/adversary.h"
#include "memory/cc_model.h"
#include "signaling/cc_flag.h"
#include "signaling/dsm_registration.h"

using namespace rmrsim;

int main() {
  const int kN = 48;
  std::printf("== The victim: dsm-registration, a correct O(1)-amortized\n"
              "   read/write algorithm (Section 7), N = %d processes.\n\n",
              kN);

  AdversaryConfig config;
  config.nprocs = kN;
  config.construction = Construction::kStrict;
  SignalingAdversary adversary(
      [](SharedMemory& m) {
        return std::make_unique<DsmRegistrationSignal>(
            m, static_cast<ProcId>(kN - 2));
      },
      config);
  const AdversaryReport report = adversary.run();
  std::fputs(report.to_string().c_str(), stdout);

  std::printf(
      "\nReading the report: part 1 parked %d waiters in local spins\n"
      "(Definition 6.8 stability); part 2's signaler then had to spend\n"
      "%llu RMRs discovering them — but the adversary erased each waiter\n"
      "just before it was found (Lemma 6.7), so the final history has only\n"
      "%d participant(s) footing a %llu-RMR bill: amortized %.2f RMRs,\n"
      "growing linearly in N. No read/write (or CAS/LL-SC) algorithm\n"
      "escapes this in the DSM model (Theorem 6.2, Corollary 6.14).\n",
      report.stable_waiters,
      static_cast<unsigned long long>(report.signaler_rmrs),
      report.participants_final,
      static_cast<unsigned long long>(report.total_rmrs_final),
      report.amortized_final);

  std::printf("\n== The control: the same game in the CC model.\n\n");
  AdversaryConfig cc_config;
  cc_config.nprocs = kN;
  cc_config.construction = Construction::kLenient;
  cc_config.erase_during_chase = false;
  cc_config.make_memory = [](int n) { return make_cc(n); };
  SignalingAdversary cc_adversary(
      [](SharedMemory& m) { return std::make_unique<CcFlagSignal>(m); },
      cc_config);
  const AdversaryReport cc_report = cc_adversary.run();
  std::fputs(cc_report.to_string().c_str(), stdout);
  std::printf(
      "\nIn the CC model the flag write reaches every cached copy at once:\n"
      "the signaler paid %llu RMR(s) no matter how many waiters there are.\n"
      "That asymmetry is the complexity separation.\n",
      static_cast<unsigned long long>(cc_report.signaler_rmrs));
  return 0;
}
