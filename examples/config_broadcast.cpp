// config_broadcast: the paper's problem dressed as a systems task.
//
//   $ ./build/examples/config_broadcast
//
// Scenario: a fleet of worker processes on a DSM machine must learn that a
// new configuration epoch was published. Workers cannot busy-read a global
// flag (every re-check would cross the interconnect), and the publisher
// does not know in advance which workers exist — this is exactly the
// signaling problem with many waiters and a signaler not fixed in advance.
//
// We wire three designs from the paper and compare their interconnect
// bills under a bursty arrival schedule:
//   naive    — global flag polling (the CC design, ported as-is),
//   queue    — F&I announcement queue (Section 7's stronger-primitive fix),
//   blocking — leader-election reduction for Wait() semantics.
#include <cstdio>
#include <memory>

#include "common/table.h"
#include "memory/shared_memory.h"
#include "primitives/blocking_leader.h"
#include "signaling/cc_flag.h"
#include "signaling/checker.h"
#include "signaling/dsm_queue.h"
#include "signaling/workload.h"

using namespace rmrsim;

namespace {

void row(TextTable& table, const char* design, const SignalingFactory& factory,
         int workers, bool blocking) {
  SignalingWorkloadOptions opt;
  opt.n_waiters = workers;
  opt.blocking = blocking;
  opt.signaler_idle_polls = blocking ? 0 : 48;  // config publish is "late"
  opt.scheduler_seed = 20260707;  // bursty random arrivals
  auto run = run_signaling_workload(make_dsm(workers + 1), factory, opt);
  const auto violation = blocking ? check_blocking_spec(run.sim->history())
                                  : check_polling_spec(run.sim->history());
  table.add_row({design, std::to_string(workers),
                 std::to_string(run.max_waiter_rmrs()),
                 std::to_string(run.signaler_rmrs()),
                 fixed(run.amortized_rmrs()),
                 violation.has_value() ? "BROKEN" : "ok"});
}

}  // namespace

int main() {
  std::printf(
      "config_broadcast: N workers on a DSM machine wait for a config epoch\n"
      "(publisher delayed; workers arrive and re-check meanwhile)\n\n");
  TextTable table;
  table.set_header({"design", "workers", "max worker RMRs", "publisher RMRs",
                    "amortized", "safety"});
  for (const int workers : {8, 32, 128}) {
    row(table, "naive global flag",
        [](SharedMemory& m) { return std::make_unique<CcFlagSignal>(m); },
        workers, /*blocking=*/false);
    row(table, "F&I announcement queue",
        [](SharedMemory& m) { return std::make_unique<DsmQueueSignal>(m); },
        workers, /*blocking=*/false);
    row(table, "leader-election blocking",
        [](SharedMemory& m) {
          return std::make_unique<DsmBlockingLeaderSignal>(m);
        },
        workers, /*blocking=*/true);
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nTakeaways: the naive flag melts the interconnect (every worker\n"
      "re-check is an RMR); the F&I queue gets every worker down to O(1)\n"
      "with the publisher paying O(k) once; the blocking design pushes the\n"
      "sweep onto an elected leader. And per Theorem 6.2, the queue's F&I\n"
      "is load-bearing: with only reads/writes/CAS there is NO design that\n"
      "achieves O(1) amortized here — buy the primitive or pay the RMRs.\n");
  return 0;
}
