// profile_poll: where do the RMRs go?
//
//   $ ./build/examples/profile_poll
//
// Slices a run into procedure calls (src/trace) and prints each algorithm's
// cost fingerprint: what the FIRST Poll() costs vs every later one. The
// Section 7 designs all share the same shape — pay once to register, then
// spin free in your own module — and the fingerprint makes the one that
// doesn't (the raw flag) obvious at a glance.
#include <cstdio>
#include <memory>

#include "common/table.h"
#include "memory/shared_memory.h"
#include "signaling/cas_registration.h"
#include "signaling/cc_flag.h"
#include "signaling/dsm_queue.h"
#include "signaling/dsm_registration.h"
#include "signaling/llsc_registration.h"
#include "signaling/workload.h"
#include "trace/call_stats.h"

using namespace rmrsim;

namespace {

void profile(TextTable& table, const char* label,
             const SignalingFactory& factory) {
  const int n_waiters = 16;
  SignalingWorkloadOptions opt;
  opt.n_waiters = n_waiters;
  opt.signaler_idle_polls = 32;
  auto run = run_signaling_workload(make_dsm(n_waiters + 1), factory, opt);
  const auto costs = per_call_costs(run.sim->history());

  std::uint64_t first_max = 0;
  double first_sum = 0;
  int first_count = 0;
  for (ProcId p = 0; p < n_waiters; ++p) {
    const auto polls = calls_of(costs, p, calls::kPoll);
    if (polls.empty()) continue;
    first_max = std::max(first_max, polls.front().rmrs);
    first_sum += static_cast<double>(polls.front().rmrs);
    ++first_count;
  }
  const auto signals = calls_of(costs, n_waiters, calls::kSignal);
  table.add_row({label,
                 fixed(first_sum / std::max(first_count, 1), 1),
                 std::to_string(first_max),
                 std::to_string(max_rmrs_from_index(costs, calls::kPoll, 1)),
                 signals.empty() ? "-" : std::to_string(signals.front().rmrs)});
}

}  // namespace

int main() {
  std::printf(
      "profile_poll: per-call RMR fingerprints, DSM, 16 waiters, signaler\n"
      "delayed 32 polls\n\n");
  TextTable table;
  table.set_header({"algorithm", "first Poll (avg RMRs)", "first Poll (max)",
                    "later Polls (max)", "Signal()"});
  profile(table, "flag (naive)", [](SharedMemory& m) {
    return std::make_unique<CcFlagSignal>(m);
  });
  profile(table, "registration", [](SharedMemory& m) {
    return std::make_unique<DsmRegistrationSignal>(m, 16);
  });
  profile(table, "queue (F&I)", [](SharedMemory& m) {
    return std::make_unique<DsmQueueSignal>(m);
  });
  profile(table, "cas-registration", [](SharedMemory& m) {
    return std::make_unique<CasRegistrationSignal>(m);
  });
  profile(table, "llsc-registration", [](SharedMemory& m) {
    return std::make_unique<LlscRegistrationSignal>(m);
  });
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nHow to read it: a healthy DSM signaling design front-loads its\n"
      "communication (a small constant on the first call) and spins free\n"
      "afterwards ('later Polls' = 0). The naive flag pays on EVERY poll —\n"
      "its 'later Polls' column is nonzero and its total grows with the\n"
      "wait. The CAS/LLSC stacks pay retry costs under contention on the\n"
      "first call only. Signal() is O(registered waiters) everywhere —\n"
      "and per Theorem 6.2 that part is irreducible without F&I.\n");
  return 0;
}
