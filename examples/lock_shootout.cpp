// lock_shootout: pick the right lock for your machine.
//
//   $ ./build/examples/lock_shootout [nprocs] [passages]
//
// A practitioner-facing scenario (the paper's Section 8 concern): you have
// a hot critical section and a choice of lock implementations; the "right"
// answer depends on the machine model. This example contends N workers on
// each lock under DSM, standard CC, and an LFCU-style CC machine, and
// prints RMRs per lock passage — the paper's proxy for real-world
// interconnect traffic.
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>

#include "common/table.h"
#include "memory/cc_model.h"
#include "mutex/bakery_lock.h"
#include "mutex/clh_lock.h"
#include "mutex/mcs_lock.h"
#include "mutex/simple_locks.h"
#include "mutex/ya_lock.h"
#include "sched/schedulers.h"

using namespace rmrsim;

namespace {

using LockFactory = std::function<std::unique_ptr<MutexAlgorithm>(SharedMemory&)>;

std::string contend(std::unique_ptr<SharedMemory> mem, const LockFactory& make,
                    int n, int passages) {
  auto lock = make(*mem);
  MutexAlgorithm* l = lock.get();
  std::vector<Program> programs;
  for (int i = 0; i < n; ++i) {
    programs.emplace_back(
        [l, passages](ProcCtx& ctx) { return mutex_worker(ctx, l, passages); });
  }
  Simulation sim(*mem, std::move(programs));
  RoundRobinScheduler rr;
  if (!sim.run(rr, 500'000'000).all_terminated) return "stuck";
  if (check_mutual_exclusion(sim.history()).has_value()) return "UNSAFE";
  return fixed(static_cast<double>(sim.memory().ledger().total_rmrs()) /
               static_cast<double>(n * passages));
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 32;
  const int passages = argc > 2 ? std::atoi(argv[2]) : 4;
  std::printf("lock shootout: %d workers x %d passages, RMRs per passage\n\n",
              n, passages);

  const std::vector<std::pair<const char*, LockFactory>> locks = {
      {"yang-anderson (r/w)",
       [](SharedMemory& m) { return std::make_unique<YangAndersonLock>(m); }},
      {"mcs (FAS+CAS)",
       [](SharedMemory& m) { return std::make_unique<McsLock>(m); }},
      {"anderson-array (FAI)",
       [](SharedMemory& m) { return std::make_unique<AndersonArrayLock>(m); }},
      {"ticket (FAI)",
       [](SharedMemory& m) { return std::make_unique<TicketLock>(m); }},
      {"tas spinlock",
       [](SharedMemory& m) { return std::make_unique<TasLock>(m); }},
      {"clh (FAS)",
       [](SharedMemory& m) { return std::make_unique<ClhLock>(m); }},
      {"bakery (r/w FCFS)",
       [](SharedMemory& m) { return std::make_unique<BakeryLock>(m); }},
  };

  TextTable table;
  table.set_header({"lock", "DSM", "CC (write-through)", "CC (write-back)",
                    "CC (MESI)", "CC (LFCU)"});
  for (const auto& [label, make] : locks) {
    table.add_row({label, contend(make_dsm(n), make, n, passages),
                   contend(make_cc(n, CcPolicy::kWriteThrough), make, n,
                           passages),
                   contend(make_cc(n, CcPolicy::kWriteBack), make, n, passages),
                   contend(make_cc(n, CcPolicy::kMesi), make, n, passages),
                   contend(make_cc(n, CcPolicy::kLfcu), make, n, passages)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nHow to read it: MCS is the safe choice everywhere; the Anderson\n"
      "array lock is great on CC but toxic on DSM (its slots cannot be\n"
      "co-located with spinners); the TAS spinlock is only defensible on an\n"
      "LFCU machine. Co-locating spin variables with their spinner — the\n"
      "fundamental technique the paper names in Section 1 — is exactly what\n"
      "separates the well-behaved columns from the pathological ones.\n");
  return 0;
}
