// Quickstart: build both machines from Figure 1, run the same algorithm on
// each, and watch the RMR meters disagree.
//
//   $ ./build/examples/quickstart
//
// The public API in four steps:
//   1. make_dsm(n) / make_cc(n)            — pick an architecture
//   2. allocate / allocate_local / _global — lay out shared variables
//   3. write algorithms as coroutines      — co_await ctx.read(v), ...
//   4. Simulation + a Scheduler            — run and read the ledgers
#include <cstdio>
#include <memory>

#include "common/table.h"
#include "memory/cc_model.h"
#include "memory/shared_memory.h"
#include "sched/schedulers.h"
#include "signaling/cc_flag.h"
#include "signaling/workload.h"

using namespace rmrsim;

int main() {
  std::printf(
      "rmrsim quickstart — Figure 1, as code\n"
      "\n"
      "   DSM model                      CC model\n"
      "   P0   P1   P2   P3              P0   P1   P2   P3\n"
      "   |    |    |    |               |    |    |    |\n"
      "  [M0] [M1] [M2] [M3]           [$0] [$1] [$2] [$3]\n"
      "   |____|____|____|               |____|____|____|\n"
      "      interconnect                   interconnect\n"
      "                                          |\n"
      "  access to a foreign module         [ memory ]\n"
      "  = 1 RMR, always                 cache hit = free, miss = RMR\n"
      "\n");

  // One signaler flips a Boolean; eight waiters poll it until they see it.
  // This is the whole Section 5 algorithm.
  const int kWaiters = 8;
  TextTable table;
  table.set_header(
      {"model", "total ops", "total RMRs", "max waiter RMRs", "amortized"});
  for (const bool cc : {true, false}) {
    SignalingWorkloadOptions opt;
    opt.n_waiters = kWaiters;
    opt.signaler_idle_polls = 32;  // let the waiters spin a while
    auto run = run_signaling_workload(
        cc ? make_cc(kWaiters + 1) : make_dsm(kWaiters + 1),
        [](SharedMemory& m) { return std::make_unique<CcFlagSignal>(m); },
        opt);
    table.add_row({cc ? "CC" : "DSM",
                   std::to_string(run.mem->ledger().total_ops()),
                   std::to_string(run.mem->ledger().total_rmrs()),
                   std::to_string(run.max_waiter_rmrs()),
                   fixed(run.amortized_rmrs())});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nSame algorithm, same schedule, very different bills: the CC cache\n"
      "absorbs the spin, the DSM interconnect pays for every poll. That gap\n"
      "is the subject of the paper — and no read/write algorithm can close\n"
      "it (run ./build/examples/separation_demo to see why).\n");
  return 0;
}
