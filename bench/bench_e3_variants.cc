// Experiment E3 — the Section 7 variant taxonomy, measured.
//
// The paper walks through the signaling problem's variations and gives an
// upper bound for each in the DSM model. The main table is the e3 sweep
// from the experiment registry (every variant x both models x a W axis),
// with the fitter pinning the paper's bounds: waiters O(1) in the
// registration/queue variants, the wait-free fixed-waiters signaler
// Theta(W), the terminating variant O(1) amortized. The run is written to
// BENCH_e3.json. Two cases stay bespoke below: the single-waiter variant
// (its W axis is fixed at 1 by definition) and the sparse-participation
// probe of the wait-free variant.
//
// Paper bounds being reproduced (DSM model):
//   single waiter                      O(1) per process worst-case
//   fixed waiters (wait-free)          O(W) signaler, O(1) waiters
//   fixed waiters (terminating)        O(1) amortized
//   reg., one fixed signaler           O(1) waiters, O(k) signaler
//   F&I queue, signaler not fixed      O(1) waiters, O(k) signaler
//   blocking via leader election       O(1) non-leaders
#include <cstdio>
#include <memory>

#include "common/table.h"
#include "harness/experiments.h"
#include "memory/cc_model.h"
#include "sched/schedulers.h"
#include "signaling/checker.h"
#include "signaling/dsm_fixed.h"
#include "signaling/dsm_single_waiter.h"
#include "signaling/workload.h"

using namespace rmrsim;

int main() {
  std::printf("E3: Section 7 signaling-variant taxonomy\n\n");

  const Experiment* exp = find_experiment("e3");
  const BenchArtifact artifact =
      run_experiment(*exp, /*workers=*/2, "bench_e3_variants");

  TextTable table;
  table.set_header({"variant", "model", "W", "max waiter RMRs",
                    "signaler RMRs", "amortized", "spec"});
  for (const SweepPointResult& pr : artifact.result.points) {
    const MetricsRegistry& m = pr.metrics;
    table.add_row({pr.point.algorithm, pr.point.model == "cc" ? "CC" : "DSM",
                   std::to_string(pr.point.n),
                   format_metric_number(m.value("rmrs.max_waiter")),
                   format_metric_number(m.value("rmrs.signaler")),
                   fixed(m.value("rmrs.amortized")),
                   m.value("spec.ok") == 1.0 ? "ok" : "VIOLATED"});
  }
  std::fputs(table.render().c_str(), stdout);

  // The single-waiter variant's W axis is 1 by definition, so it cannot
  // ride the sweep's N axis; one bespoke row per model.
  std::printf("\nSingle-waiter variant (W = 1 by definition):\n");
  TextTable single;
  single.set_header(
      {"model", "max waiter RMRs", "signaler RMRs", "amortized", "spec"});
  for (const bool cc : {false, true}) {
    SignalingWorkloadOptions opt;
    opt.n_waiters = 1;
    opt.signaler_idle_polls = 0;
    auto run = run_signaling_workload(
        cc ? make_cc(2) : make_dsm(2),
        [](SharedMemory& m) { return std::make_unique<DsmSingleWaiterSignal>(m); },
        opt);
    const auto violation = check_polling_spec(run.sim->history());
    single.add_row({cc ? "CC" : "DSM", std::to_string(run.max_waiter_rmrs()),
                    std::to_string(run.signaler_rmrs()),
                    fixed(run.amortized_rmrs()),
                    violation.has_value() ? "VIOLATED" : "ok"});
  }
  std::fputs(single.render().c_str(), stdout);

  // Section 7, fixed-waiters paragraph: "amortized RMR complexity may be
  // more than O(1) RMRs if the signaler performs W RMRs but only o(W)
  // waiters participate so far" — the wait-free variant cannot wait for
  // the others, so sparse participation blows up the amortized cost. (The
  // terminating variant avoids this precisely by waiting; the full
  // impossibility for wait-free solutions is Theorem-6.2-style.)
  const int kW = 64;
  std::printf(
      "\nSparse participation, fixed waiters (wait-free), W = %d, DSM:\n",
      kW);
  TextTable sparse;
  sparse.set_header(
      {"participating waiters k", "signaler RMRs", "amortized RMRs"});
  for (const int k : {64, 16, 4, 1}) {
    auto mem = make_dsm(kW + 1);
    std::vector<ProcId> ws;
    for (int i = 0; i < kW; ++i) ws.push_back(i);
    DsmFixedWaitersSignal alg(*mem, std::move(ws));
    std::vector<Program> programs;
    for (int i = 0; i < kW; ++i) {
      if (i < k) {
        programs.emplace_back(
            [&alg](ProcCtx& ctx) { return polling_waiter(ctx, &alg, 10'000); });
      } else {
        programs.emplace_back(Program{});  // fixed but never participates
      }
    }
    programs.emplace_back([&alg](ProcCtx& ctx) { return signaler(ctx, &alg); });
    Simulation sim(*mem, std::move(programs));
    RoundRobinScheduler rr;
    if (!sim.run(rr, 10'000'000).all_terminated) continue;
    const double participants =
        static_cast<double>(sim.history().participants().size());
    sparse.add_row({std::to_string(k),
                    std::to_string(mem->ledger().rmrs(kW)),
                    fixed(static_cast<double>(mem->ledger().total_rmrs()) /
                          participants)});
  }
  std::fputs(sparse.render().c_str(), stdout);

  std::printf("\nFitted growth classes:\n");
  std::fputs(render_fit_table(artifact).c_str(), stdout);
  std::printf("wrote %s\n", write_artifact(artifact).c_str());

  std::printf(
      "\nExpected shape (paper, DSM rows): waiters O(1) in every variant\n"
      "except the raw flag; signaler O(W)/O(k) where it must deliver; the\n"
      "flag variant's waiter cost grows with the delay. CC rows: everything\n"
      "flattens to O(1) per process except deliberate O(W) sweeps.\n");
  return artifact_matches(artifact) ? 0 : 1;
}
