// Experiment E3 — the Section 7 variant taxonomy, measured.
//
// The paper walks through the signaling problem's variations and gives an
// upper bound for each in the DSM model. This bench reprints that prose as
// a measured table: for each variant (and the CC flag baseline) we run the
// standard workload in both models and report worst-case waiter cost,
// signaler cost, and amortized cost.
//
// Paper bounds being reproduced (DSM model):
//   single waiter                      O(1) per process worst-case
//   fixed waiters (wait-free)          O(W) signaler, O(1) waiters
//   fixed waiters (terminating)        O(1) amortized
//   reg., one fixed signaler           O(1) waiters, O(k) signaler
//   F&I queue, signaler not fixed      O(1) waiters, O(k) signaler
//   blocking via leader election       O(1) non-leaders
#include <cstdio>
#include <memory>

#include "common/table.h"
#include "memory/cc_model.h"
#include "sched/schedulers.h"
#include "primitives/blocking_leader.h"
#include "signaling/cas_registration.h"
#include "signaling/cc_flag.h"
#include "signaling/checker.h"
#include "signaling/dsm_fixed.h"
#include "signaling/dsm_queue.h"
#include "signaling/dsm_registration.h"
#include "signaling/dsm_single_waiter.h"
#include "signaling/workload.h"

using namespace rmrsim;

namespace {

void add_run(TextTable& table, const char* variant, const char* primitives,
             bool cc, const SignalingFactory& factory, int n_waiters,
             bool blocking = false, int signaler_idle_polls = 16) {
  SignalingWorkloadOptions opt;
  opt.n_waiters = n_waiters;
  opt.signaler_idle_polls = blocking ? 0 : signaler_idle_polls;
  opt.blocking = blocking;
  auto run = run_signaling_workload(
      cc ? make_cc(n_waiters + 1) : make_dsm(n_waiters + 1), factory, opt);
  const auto violation = blocking ? check_blocking_spec(run.sim->history())
                                  : check_polling_spec(run.sim->history());
  table.add_row({variant, primitives, cc ? "CC" : "DSM",
                 std::to_string(n_waiters),
                 std::to_string(run.max_waiter_rmrs()),
                 std::to_string(run.signaler_rmrs()),
                 fixed(run.amortized_rmrs()),
                 violation.has_value() ? "VIOLATED" : "ok"});
}

}  // namespace

int main() {
  const int kW = 64;
  std::printf("E3: Section 7 signaling-variant taxonomy (W = %d waiters)\n\n",
              kW);
  TextTable table;
  table.set_header({"variant", "primitives", "model", "W", "max waiter RMRs",
                    "signaler RMRs", "amortized", "spec"});

  for (const bool cc : {false, true}) {
    add_run(table, "flag (Section 5)", "r/w", cc,
            [](SharedMemory& m) { return std::make_unique<CcFlagSignal>(m); },
            kW);
    // At most one process may poll in the single-waiter variant, so the
    // signaler makes no idle polls.
    add_run(table, "single waiter", "r/w", cc,
            [](SharedMemory& m) {
              return std::make_unique<DsmSingleWaiterSignal>(m);
            },
            1, /*blocking=*/false, /*signaler_idle_polls=*/0);
    // The fixed-waiter variants restrict Poll() to the fixed set, so the
    // signaler cannot make idle polls.
    add_run(table, "fixed waiters (wait-free)", "r/w", cc,
            [](SharedMemory& m) {
              std::vector<ProcId> ws;
              for (int i = 0; i < kW; ++i) ws.push_back(i);
              return std::make_unique<DsmFixedWaitersSignal>(m, std::move(ws));
            },
            kW, /*blocking=*/false, /*signaler_idle_polls=*/0);
    add_run(table, "fixed waiters (terminating)", "r/w", cc,
            [](SharedMemory& m) {
              std::vector<ProcId> ws;
              for (int i = 0; i < kW; ++i) ws.push_back(i);
              return std::make_unique<DsmFixedWaitersTerminating>(
                  m, std::move(ws), static_cast<ProcId>(kW));
            },
            kW, /*blocking=*/false, /*signaler_idle_polls=*/0);
    add_run(table, "registration (fixed signaler)", "r/w", cc,
            [](SharedMemory& m) {
              return std::make_unique<DsmRegistrationSignal>(
                  m, static_cast<ProcId>(kW));
            },
            kW);
    add_run(table, "queue (signaler not fixed)", "r/w + F&I", cc,
            [](SharedMemory& m) { return std::make_unique<DsmQueueSignal>(m); },
            kW);
    add_run(table, "CAS registration", "r/w + CAS", cc,
            [](SharedMemory& m) {
              return std::make_unique<CasRegistrationSignal>(m);
            },
            kW);
    add_run(table, "blocking via leader", "r/w + TAS", cc,
            [](SharedMemory& m) {
              return std::make_unique<DsmBlockingLeaderSignal>(m);
            },
            kW, /*blocking=*/true);
  }
  std::fputs(table.render().c_str(), stdout);

  // Section 7, fixed-waiters paragraph: "amortized RMR complexity may be
  // more than O(1) RMRs if the signaler performs W RMRs but only o(W)
  // waiters participate so far" — the wait-free variant cannot wait for
  // the others, so sparse participation blows up the amortized cost. (The
  // terminating variant avoids this precisely by waiting; the full
  // impossibility for wait-free solutions is Theorem-6.2-style.)
  std::printf(
      "\nSparse participation, fixed waiters (wait-free), W = %d, DSM:\n",
      kW);
  TextTable sparse;
  sparse.set_header(
      {"participating waiters k", "signaler RMRs", "amortized RMRs"});
  for (const int k : {64, 16, 4, 1}) {
    auto mem = make_dsm(kW + 1);
    std::vector<ProcId> ws;
    for (int i = 0; i < kW; ++i) ws.push_back(i);
    DsmFixedWaitersSignal alg(*mem, std::move(ws));
    std::vector<Program> programs;
    for (int i = 0; i < kW; ++i) {
      if (i < k) {
        programs.emplace_back(
            [&alg](ProcCtx& ctx) { return polling_waiter(ctx, &alg, 10'000); });
      } else {
        programs.emplace_back(Program{});  // fixed but never participates
      }
    }
    programs.emplace_back([&alg](ProcCtx& ctx) { return signaler(ctx, &alg); });
    Simulation sim(*mem, std::move(programs));
    RoundRobinScheduler rr;
    if (!sim.run(rr, 10'000'000).all_terminated) continue;
    const double participants =
        static_cast<double>(sim.history().participants().size());
    sparse.add_row({std::to_string(k),
                    std::to_string(mem->ledger().rmrs(kW)),
                    fixed(static_cast<double>(mem->ledger().total_rmrs()) /
                          participants)});
  }
  std::fputs(sparse.render().c_str(), stdout);

  std::printf(
      "\nExpected shape (paper, DSM rows): waiters O(1) in every variant\n"
      "except the raw flag; signaler O(W)/O(k) where it must deliver; the\n"
      "flag variant's waiter cost grows with the delay. CC rows: everything\n"
      "flattens to O(1) per process except deliberate O(W) sweeps.\n");
  return 0;
}
