// Experiment E1 — Section 5 upper bound.
//
// Claim: the single-Boolean flag algorithm solves signaling wait-free with
// O(1) RMRs per process in the CC model using reads and writes only —
// regardless of how many waiters there are or how long they spin before the
// signal arrives. The same algorithm has unbounded RMR complexity in DSM.
//
// Driven by the e1 entry of the experiment registry: the sweep runs
// flag-delay64 (fixed 64-poll signaler delay) and flag-spin-n (delay
// scaling with N, so DSM's unbounded cost grows along the x axis) in both
// models, this binary renders the table, and the fitter must classify the
// CC series O(1) and the DSM spin-n series super-constant. The same run is
// written to BENCH_e1.json.
#include <cstdio>

#include "common/table.h"
#include "harness/experiments.h"

using namespace rmrsim;

int main() {
  std::printf("E1: Section 5 CC upper bound — flag signaling, reads/writes\n");
  std::printf(
      "(flag-delay64: signaler idles 64 polls; flag-spin-n: idles N polls)\n\n");

  const Experiment* exp = find_experiment("e1");
  const BenchArtifact artifact =
      run_experiment(*exp, /*workers=*/2, "bench_e1_cc_upper");

  TextTable table;
  table.set_header({"N waiters", "model", "algorithm", "max waiter RMRs",
                    "signaler RMRs", "amortized RMRs", "spec"});
  for (const SweepPointResult& pr : artifact.result.points) {
    const MetricsRegistry& m = pr.metrics;
    table.add_row({std::to_string(pr.point.n),
                   pr.point.model == "cc" ? "CC (ideal)" : "DSM",
                   pr.point.algorithm,
                   format_metric_number(m.value("rmrs.max_waiter")),
                   format_metric_number(m.value("rmrs.signaler")),
                   fixed(m.value("rmrs.amortized")),
                   m.value("spec.ok") == 1.0 ? "ok" : "VIOLATED"});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nFitted growth classes:\n");
  std::fputs(render_fit_table(artifact).c_str(), stdout);
  std::printf("wrote %s\n", write_artifact(artifact).c_str());

  std::printf(
      "\nExpected shape (paper): CC rows flat at <= 2 RMRs per process for\n"
      "any N and any delay; DSM rows grow with the waiters' spin time —\n"
      "the flag solution does not transfer (Sections 5-6).\n");
  return artifact_matches(artifact) ? 0 : 1;
}
