// Experiment E1 — Section 5 upper bound.
//
// Claim: the single-Boolean flag algorithm solves signaling wait-free with
// O(1) RMRs per process in the CC model using reads and writes only —
// regardless of how many waiters there are or how long they spin before the
// signal arrives. The same algorithm has unbounded RMR complexity in DSM.
//
// Output: one row per N, both models: max waiter RMRs, signaler RMRs, and
// amortized RMRs per participant. The CC columns must stay flat (<= 2); the
// DSM columns grow with the spin time (here proportional to the signaler's
// idle polls).
#include <cstdio>

#include "common/table.h"
#include "memory/cc_model.h"
#include "signaling/cc_flag.h"
#include "signaling/checker.h"
#include "signaling/workload.h"

using namespace rmrsim;

int main() {
  std::printf("E1: Section 5 CC upper bound — flag signaling, reads/writes\n");
  std::printf("(signaler delays %d polls; waiters spin meanwhile)\n\n", 64);

  TextTable table;
  table.set_header({"N waiters", "model", "max waiter RMRs", "signaler RMRs",
                    "amortized RMRs", "spec"});
  for (const int n : {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}) {
    for (const bool cc : {true, false}) {
      SignalingWorkloadOptions opt;
      opt.n_waiters = n;
      opt.signaler_idle_polls = 64;
      auto run = run_signaling_workload(
          cc ? make_cc(n + 1) : make_dsm(n + 1),
          [](SharedMemory& m) { return std::make_unique<CcFlagSignal>(m); },
          opt);
      const auto violation = check_polling_spec(run.sim->history());
      table.add_row({std::to_string(n), cc ? "CC (ideal)" : "DSM",
                     std::to_string(run.max_waiter_rmrs()),
                     std::to_string(run.signaler_rmrs()),
                     fixed(run.amortized_rmrs()),
                     violation.has_value() ? "VIOLATED" : "ok"});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nExpected shape (paper): CC rows flat at <= 2 RMRs per process for\n"
      "any N and any delay; DSM rows grow with the waiters' spin time —\n"
      "the flag solution does not transfer (Sections 5-6).\n");
  return 0;
}
