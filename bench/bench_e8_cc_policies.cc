// Experiment E8 (ablation) — CC policy sensitivity.
//
// Sections 2-3 note that "RMRs in the CC model" depend on the coherence
// policy: the paper's upper bound needs only the ideal-cache (write-through
// invalidation) reading, write-back changes constants, and the exotic LFCU
// machines (local failed comparisons + write-update) even change asymptotics
// for TAS-based algorithms. Driven by the e8 entry of the experiment
// registry (policy x {flag, tas} x an N axis); the tables below show the
// classic N = 32 slice, the fitter pins flag O(1) under every policy and
// TAS O(1) under LFCU only, and the run is written to BENCH_e8.json.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/table.h"
#include "harness/experiments.h"

using namespace rmrsim;

int main() {
  std::printf("E8: CC policy ablation (N = 32)\n\n");
  const int n = 32;

  const Experiment* exp = find_experiment("e8");
  const BenchArtifact artifact =
      run_experiment(*exp, /*workers=*/2, "bench_e8_cc_policies");

  const std::vector<std::pair<const char*, const char*>> policies = {
      {"cc", "write-through"},
      {"cc-wb", "write-back"},
      {"cc-mesi", "mesi"},
      {"cc-lfcu", "lfcu"},
  };

  TextTable flag_table;
  flag_table.set_header({"policy", "flag: max waiter RMRs",
                         "flag: signaler RMRs", "flag: amortized"});
  for (const auto& [model, label] : policies) {
    const SweepPointResult* pr = find_point(artifact.result, model, "flag", n);
    if (pr == nullptr) continue;
    const MetricsRegistry& m = pr->metrics;
    flag_table.add_row({label,
                        format_metric_number(m.value("rmrs.max_waiter")),
                        format_metric_number(m.value("rmrs.signaler")),
                        fixed(m.value("rmrs.amortized"))});
  }
  std::fputs(flag_table.render().c_str(), stdout);

  std::printf(
      "\nTAS spinlock, RMRs per passage (the LFCU aside of Section 3):\n");
  TextTable tas_table;
  tas_table.set_header({"policy", "TAS lock RMRs/passage"});
  for (const auto& [model, label] : policies) {
    const SweepPointResult* pr = find_point(artifact.result, model, "tas", n);
    if (pr == nullptr) continue;
    const MetricsRegistry& m = pr->metrics;
    tas_table.add_row({label, m.value("run.completed") == 1.0
                                  ? fixed(m.value("rmrs.per_passage"))
                                  : fixed(-1.0)});
  }
  std::fputs(tas_table.render().c_str(), stdout);

  // The cycle-cost side of the ablation: every point also rode the snooping
  // fleet, so the same N = 32 slice has a per-protocol cycle breakdown.
  std::printf("\nProtocol-fleet cycles, flag workload, cc model (N = 32):\n");
  const std::vector<const char*> protocols = {"mesi", "mesif", "moesi",
                                              "dragon"};
  TextTable cycle_table;
  cycle_table.set_header({"protocol", "cycles", "amortized/proc", "transfers",
                          "write-backs", "updates", "invalidations"});
  const SweepPointResult* fp = find_point(artifact.result, "cc", "flag", n);
  if (fp != nullptr) {
    for (const char* proto : protocols) {
      const MetricsRegistry& m = fp->metrics;
      const std::string base(proto);
      cycle_table.add_row(
          {proto, format_metric_number(m.value("cycles." + base + ".total")),
           fixed(m.value("cycles." + base + ".amortized")),
           format_metric_number(m.value("msgs." + base + ".transfers")),
           format_metric_number(m.value("cycles." + base + ".write_backs")),
           format_metric_number(m.value("msgs." + base + ".updates")),
           format_metric_number(m.value("msgs." + base + ".invalidations"))});
    }
    std::fputs(cycle_table.render().c_str(), stdout);
  }

  std::printf("\nFitted growth classes:\n");
  std::fputs(render_fit_table(artifact).c_str(), stdout);
  std::printf("wrote %s\n", write_artifact(artifact).c_str());

  std::printf(
      "\nExpected shape (paper): the flag algorithm is O(1) per process\n"
      "under every CC policy (the Section 5 bound is policy-robust); the\n"
      "TAS lock collapses to O(1) per passage only under LFCU, where failed\n"
      "comparisons are serviced locally. Fleet cycles on flag stay O(1)\n"
      "amortized under every snooping protocol; MOESI pays no write-backs,\n"
      "Dragon pays updates instead of invalidations.\n");
  return artifact_matches(artifact) ? 0 : 1;
}
