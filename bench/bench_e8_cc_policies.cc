// Experiment E8 (ablation) — CC policy sensitivity.
//
// Sections 2-3 note that "RMRs in the CC model" depend on the coherence
// policy: the paper's upper bound needs only the ideal-cache (write-through
// invalidation) reading, write-back changes constants, and the exotic LFCU
// machines (local failed comparisons + write-update) even change asymptotics
// for TAS-based algorithms. This ablation prices the same two workloads
// under every policy.
#include <cstdio>
#include <memory>

#include "common/table.h"
#include "memory/cc_model.h"
#include "mutex/simple_locks.h"
#include "sched/schedulers.h"
#include "signaling/cc_flag.h"
#include "signaling/workload.h"

using namespace rmrsim;

namespace {

double tas_rmrs_per_passage(CcPolicy policy, int n, int passages) {
  auto mem = make_cc(n, policy);
  TasLock lock(*mem);
  std::vector<Program> programs;
  for (int i = 0; i < n; ++i) {
    programs.emplace_back(
        [&lock, passages](ProcCtx& ctx) {
          return mutex_worker(ctx, &lock, passages);
        });
  }
  Simulation sim(*mem, std::move(programs));
  RoundRobinScheduler rr;
  if (!sim.run(rr, 100'000'000).all_terminated) return -1.0;
  return static_cast<double>(mem->ledger().total_rmrs()) /
         static_cast<double>(n * passages);
}

}  // namespace

int main() {
  std::printf("E8: CC policy ablation (N = 32)\n\n");
  const int n = 32;

  TextTable flag_table;
  flag_table.set_header({"policy", "flag: max waiter RMRs",
                         "flag: signaler RMRs", "flag: amortized"});
  for (const CcPolicy policy :
       {CcPolicy::kWriteThrough, CcPolicy::kWriteBack, CcPolicy::kMesi,
        CcPolicy::kLfcu}) {
    SignalingWorkloadOptions opt;
    opt.n_waiters = n;
    opt.signaler_idle_polls = 64;
    auto run = run_signaling_workload(
        make_cc(n + 1, policy),
        [](SharedMemory& m) { return std::make_unique<CcFlagSignal>(m); },
        opt);
    flag_table.add_row({std::string(to_string(policy)),
                        std::to_string(run.max_waiter_rmrs()),
                        std::to_string(run.signaler_rmrs()),
                        fixed(run.amortized_rmrs())});
  }
  std::fputs(flag_table.render().c_str(), stdout);

  std::printf("\nTAS spinlock, RMRs per passage (the LFCU aside of Section 3):\n");
  TextTable tas_table;
  tas_table.set_header({"policy", "TAS lock RMRs/passage"});
  for (const CcPolicy policy :
       {CcPolicy::kWriteThrough, CcPolicy::kWriteBack, CcPolicy::kMesi,
        CcPolicy::kLfcu}) {
    tas_table.add_row({std::string(to_string(policy)),
                       fixed(tas_rmrs_per_passage(policy, n, 3))});
  }
  std::fputs(tas_table.render().c_str(), stdout);
  std::printf(
      "\nExpected shape (paper): the flag algorithm is O(1) per process\n"
      "under every CC policy (the Section 5 bound is policy-robust); the\n"
      "TAS lock collapses to O(1) per passage only under LFCU, where failed\n"
      "comparisons are serviced locally.\n");
  return 0;
}
