// Experiment E9 — crash/recovery: which guarantees survive, at what RMR
// cost.
//
// The paper's progress properties are explicitly conditional on crash-free
// histories ("for any fair history ... where no process crashes"). This
// experiment makes the condition quantitative under the recoverable-mutual-
// exclusion failure model (crash = local state lost, shared memory
// preserved, program re-runs from the top):
//
//  (a) Crash-in-CS demo: crash the lock holder inside its critical section.
//      MCS — no recovery section — wedges the whole queue forever, in CC
//      and DSM alike; the recoverable spin lock's recovery section releases
//      the orphaned hold and every process completes all passages. This
//      part steers the schedule interactively (crash exactly inside the
//      first CS), so it stays bespoke on top of harness/drive.h.
//  (b) Crash-rate sweep: the e9 entry of the experiment registry — seeded
//      random crashes at increasing rates against the recoverable lock,
//      rendered from the sweep's metrics and written to BENCH_e9.json.
//      Mutual exclusion holds at every rate (verdict, checked); FIFO does
//      not (measured, reported); RMRs per passage climb as recoveries
//      re-execute prologues and (in CC) repopulate caches.
#include <cstdio>
#include <string>

#include "common/table.h"
#include "harness/drive.h"
#include "harness/experiments.h"
#include "mutex/lock.h"
#include "sched/schedulers.h"

using namespace rmrsim;

namespace {

int total_passages(const Simulation& sim) {
  int total = 0;
  for (ProcId p = 0; p < sim.nprocs(); ++p) {
    total += passages_completed(sim.history(), p);
  }
  return total;
}

/// Part (a): crash the holder inside its first critical section, recover it,
/// run everyone under round-robin.
void crash_in_cs_row(TextTable* table, const std::string& model,
                     bool recoverable, int nprocs, int passages) {
  MutexRunOptions opt;
  opt.model = model;
  opt.nprocs = nprocs;
  opt.passages = passages;
  opt.make_lock = [recoverable](SharedMemory& mem) {
    return make_lock_by_name(recoverable ? "recoverable" : "mcs", mem);
  };
  MutexWorld w = build_mutex_world(opt);
  const char* model_label = model == "cc" ? "CC" : "DSM";
  const bool reached_cs = w.sim->run_proc_until(0, [](const StepRecord& r) {
    return r.kind == StepRecord::Kind::kEvent &&
           r.event == EventKind::kCallBegin && r.code == calls::kCritical;
  });
  if (!reached_cs) {
    table->add_row({recoverable ? "recoverable-spin" : "mcs", model_label,
                    "setup failed", "", "", ""});
    return;
  }
  w.sim->crash(0);
  w.sim->recover(0);
  RoundRobinScheduler rr;
  w.sim->run(rr, 8'000'000);
  bool all_done = true;
  for (ProcId p = 0; p < nprocs; ++p) {
    if (passages_completed(w.sim->history(), p) < passages) all_done = false;
  }
  const CrashRunReport rep = analyze_crash_run(w.sim->history());
  table->add_row({recoverable ? "recoverable-spin" : "mcs", model_label,
                  all_done ? "yes" : "NO (wedged)",
                  std::to_string(total_passages(*w.sim)) + "/" +
                      std::to_string(nprocs * passages),
                  rep.mutual_exclusion_ok ? "ok" : "VIOLATED",
                  std::to_string(rep.fifo_inversions)});
}

/// "random:rate=0.01,seed=..." -> "0.010"; the crash-free plan -> "0.000".
std::string rate_label(const std::string& fault_plan) {
  double rate = 0.0;
  const std::size_t at = fault_plan.find("rate=");
  if (at != std::string::npos) rate = std::stod(fault_plan.substr(at + 5));
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.3f", rate);
  return buf;
}

}  // namespace

int main() {
  std::printf(
      "E9: crash/recovery under the RME failure model (crash loses local\n"
      "state, shared memory survives, the program re-runs from the top)\n\n");

  std::printf("(a) crash the holder inside its critical section, recover "
              "it, run on\n    (N=4 workers, 3 passages each, round-robin)\n\n");
  TextTable demo;
  demo.set_header({"lock", "model", "all complete", "passages", "mutex",
                   "fifo inv"});
  for (const char* model : {"dsm", "cc"}) {
    crash_in_cs_row(&demo, model, /*recoverable=*/false, 4, 3);
    crash_in_cs_row(&demo, model, /*recoverable=*/true, 4, 3);
  }
  std::fputs(demo.render().c_str(), stdout);
  std::printf(
      "\nMCS release is a multi-step handoff with no recovery section: the\n"
      "crashed holder never signals its successor and the queue is wedged\n"
      "forever (passages stall at the pre-crash count). The recoverable\n"
      "lock's single-word transitions leave no unrepairable crash window.\n\n");

  std::printf("(b) seeded random crashes vs the recoverable lock\n"
              "    (N=6 workers, 4 passages, recover after 50 steps, "
              "crash budget 64)\n\n");
  const Experiment* exp = find_experiment("e9");
  const BenchArtifact artifact =
      run_experiment(*exp, /*workers=*/2, "bench_e9_crash");

  TextTable sweep;
  sweep.set_header({"model", "crash rate", "all exit", "cs exits",
                    "rmrs/exit", "crashes", "recov", "failed recov",
                    "fifo inv", "mutex"});
  for (const SweepPointResult& pr : artifact.result.points) {
    const MetricsRegistry& m = pr.metrics;
    sweep.add_row(
        {pr.point.model == "cc" ? "CC" : "DSM", rate_label(pr.point.fault_plan),
         m.value("run.completed") == 1.0 ? "yes" : "NO",
         format_metric_number(m.value("run.passages_done")) + "/" +
             std::to_string(pr.point.n * 4),
         fixed(m.value("rmrs.per_exit")),
         format_metric_number(m.value("history.crashes")),
         format_metric_number(m.value("history.recoveries")),
         format_metric_number(m.value("crash.failed_recoveries")),
         format_metric_number(m.value("crash.fifo_inversions")),
         m.value("spec.ok") == 1.0 ? "ok" : "VIOLATED"});
  }
  std::fputs(sweep.render().c_str(), stdout);
  std::printf("wrote %s\n", write_artifact(artifact).c_str());
  std::printf(
      "\nExpected shape: mutual exclusion 'ok' and 'all exit' yes at every\n"
      "rate — safety and progress both survive recovery. 'cs exits' counts\n"
      "critical sections recorded end-to-end in the history; a passage cut\n"
      "by a crash after its shared-memory increment completes logically but\n"
      "not on the record, so high rates show slightly fewer exits than the\n"
      "target. RMRs per exit move non-monotonically: moderate crash rates\n"
      "*reduce* them (a crashed waiter stops burning CAS-spin RMRs during\n"
      "its downtime) until re-executed prologues, repeated recoveries, and\n"
      "(in CC) re-warming dropped caches dominate at high rates. FIFO\n"
      "inversions appear as soon as crashes reorder waiters — fairness is\n"
      "reported, not promised. Failed recoveries (a crash during the\n"
      "recovery section itself) are re-run and must not wedge the run.\n");
  return artifact_matches(artifact) ? 0 : 1;
}
