// Experiment E9 — crash/recovery: which guarantees survive, at what RMR
// cost.
//
// The paper's progress properties are explicitly conditional on crash-free
// histories ("for any fair history ... where no process crashes"). This
// experiment makes the condition quantitative under the recoverable-mutual-
// exclusion failure model (crash = local state lost, shared memory
// preserved, program re-runs from the top):
//
//  (a) Crash-in-CS demo: crash the lock holder inside its critical section.
//      MCS — no recovery section — wedges the whole queue forever, in CC
//      and DSM alike; the recoverable spin lock's recovery section releases
//      the orphaned hold and every process completes all passages.
//  (b) Crash-rate sweep: seeded random crashes at increasing rates against
//      the recoverable lock. Mutual exclusion holds at every rate (verdict,
//      checked); FIFO does not (measured, reported); RMRs per passage climb
//      as recoveries re-execute prologues and (in CC) repopulate caches.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/table.h"
#include "mutex/lock.h"
#include "mutex/mcs_lock.h"
#include "mutex/recoverable_lock.h"
#include "sched/fault.h"
#include "sched/schedulers.h"

using namespace rmrsim;

namespace {

struct World {
  std::unique_ptr<SharedMemory> mem;
  std::shared_ptr<MutexAlgorithm> lock;
  std::unique_ptr<Simulation> sim;
};

/// Builds N workers over one lock; recoverable locks get the restartable
/// worker (shared-memory progress counters), plain locks the classic one.
World make_world(bool cc, bool recoverable, int nprocs, int passages) {
  World w;
  w.mem = cc ? make_cc(nprocs) : make_dsm(nprocs);
  std::vector<Program> programs;
  if (recoverable) {
    auto lock = std::make_shared<RecoverableSpinLock>(*w.mem);
    std::vector<VarId> done;
    for (int p = 0; p < nprocs; ++p) {
      done.push_back(w.mem->allocate_global(0, "done"));
    }
    for (int p = 0; p < nprocs; ++p) {
      programs.emplace_back([lock, dv = done[p], passages](ProcCtx& ctx) {
        return recoverable_mutex_worker(ctx, lock.get(), dv, passages);
      });
    }
    w.lock = lock;
  } else {
    auto lock = std::make_shared<McsLock>(*w.mem);
    for (int p = 0; p < nprocs; ++p) {
      programs.emplace_back([lock, passages](ProcCtx& ctx) {
        return mutex_worker(ctx, lock.get(), passages);
      });
    }
    w.lock = lock;
  }
  w.sim = std::make_unique<Simulation>(*w.mem, std::move(programs));
  return w;
}

int total_passages(const Simulation& sim) {
  int total = 0;
  for (ProcId p = 0; p < sim.nprocs(); ++p) {
    total += passages_completed(sim.history(), p);
  }
  return total;
}

/// Part (a): crash the holder inside its first critical section, recover it,
/// run everyone under round-robin.
void crash_in_cs_row(TextTable* table, bool cc, bool recoverable, int nprocs,
                     int passages) {
  World w = make_world(cc, recoverable, nprocs, passages);
  const bool reached_cs = w.sim->run_proc_until(0, [](const StepRecord& r) {
    return r.kind == StepRecord::Kind::kEvent &&
           r.event == EventKind::kCallBegin && r.code == calls::kCritical;
  });
  if (!reached_cs) {
    table->add_row({recoverable ? "recoverable-spin" : "mcs",
                    cc ? "CC" : "DSM", "setup failed", "", "", ""});
    return;
  }
  w.sim->crash(0);
  w.sim->recover(0);
  RoundRobinScheduler rr;
  w.sim->run(rr, 8'000'000);
  bool all_done = true;
  for (ProcId p = 0; p < nprocs; ++p) {
    if (passages_completed(w.sim->history(), p) < passages) all_done = false;
  }
  const CrashRunReport rep = analyze_crash_run(w.sim->history());
  table->add_row({recoverable ? "recoverable-spin" : "mcs",
                  cc ? "CC" : "DSM", all_done ? "yes" : "NO (wedged)",
                  std::to_string(total_passages(*w.sim)) + "/" +
                      std::to_string(nprocs * passages),
                  rep.mutual_exclusion_ok ? "ok" : "VIOLATED",
                  std::to_string(rep.fifo_inversions)});
}

/// Part (b): seeded random crashes against the recoverable lock.
void sweep_row(TextTable* table, bool cc, double rate, int nprocs,
               int passages) {
  World w = make_world(cc, /*recoverable=*/true, nprocs, passages);
  RoundRobinScheduler rr;
  FaultScheduler faulty(rr, FaultPlan::random(/*seed=*/1234, rate,
                                              /*recover_after=*/50,
                                              /*max_crashes=*/64));
  const auto result = w.sim->run(faulty, 60'000'000);
  const CrashRunReport rep = analyze_crash_run(w.sim->history());
  const int done = total_passages(*w.sim);
  const double rmrs_pp =
      done > 0 ? static_cast<double>(w.mem->ledger().total_rmrs()) / done
               : -1.0;
  char rate_str[16];
  std::snprintf(rate_str, sizeof rate_str, "%.3f", rate);
  table->add_row({cc ? "CC" : "DSM", rate_str,
                  result.all_terminated ? "yes" : "NO",
                  std::to_string(done) + "/" +
                      std::to_string(nprocs * passages),
                  fixed(rmrs_pp), std::to_string(rep.crashes),
                  std::to_string(rep.recoveries),
                  std::to_string(rep.failed_recoveries),
                  std::to_string(rep.fifo_inversions),
                  rep.mutual_exclusion_ok ? "ok" : "VIOLATED"});
}

}  // namespace

int main() {
  std::printf(
      "E9: crash/recovery under the RME failure model (crash loses local\n"
      "state, shared memory survives, the program re-runs from the top)\n\n");

  std::printf("(a) crash the holder inside its critical section, recover "
              "it, run on\n    (N=4 workers, 3 passages each, round-robin)\n\n");
  TextTable demo;
  demo.set_header({"lock", "model", "all complete", "passages", "mutex",
                   "fifo inv"});
  for (const bool cc : {false, true}) {
    crash_in_cs_row(&demo, cc, /*recoverable=*/false, 4, 3);
    crash_in_cs_row(&demo, cc, /*recoverable=*/true, 4, 3);
  }
  std::fputs(demo.render().c_str(), stdout);
  std::printf(
      "\nMCS release is a multi-step handoff with no recovery section: the\n"
      "crashed holder never signals its successor and the queue is wedged\n"
      "forever (passages stall at the pre-crash count). The recoverable\n"
      "lock's single-word transitions leave no unrepairable crash window.\n\n");

  std::printf("(b) seeded random crashes vs the recoverable lock\n"
              "    (N=6 workers, 4 passages, recover after 50 steps, "
              "crash budget 64)\n\n");
  TextTable sweep;
  sweep.set_header({"model", "crash rate", "all exit", "cs exits",
                    "rmrs/exit", "crashes", "recov", "failed recov",
                    "fifo inv", "mutex"});
  for (const double rate : {0.0, 0.002, 0.01, 0.05}) {
    for (const bool cc : {false, true}) {
      sweep_row(&sweep, cc, rate, 6, 4);
    }
  }
  std::fputs(sweep.render().c_str(), stdout);
  std::printf(
      "\nExpected shape: mutual exclusion 'ok' and 'all exit' yes at every\n"
      "rate — safety and progress both survive recovery. 'cs exits' counts\n"
      "critical sections recorded end-to-end in the history; a passage cut\n"
      "by a crash after its shared-memory increment completes logically but\n"
      "not on the record, so high rates show slightly fewer exits than the\n"
      "target. RMRs per exit move non-monotonically: moderate crash rates\n"
      "*reduce* them (a crashed waiter stops burning CAS-spin RMRs during\n"
      "its downtime) until re-executed prologues, repeated recoveries, and\n"
      "(in CC) re-warming dropped caches dominate at high rates. FIFO\n"
      "inversions appear as soon as crashes reorder waiters — fairness is\n"
      "reported, not promised. Failed recoveries (a crash during the\n"
      "recovery section itself) are re-run and must not wedge the run.\n");
  return 0;
}
