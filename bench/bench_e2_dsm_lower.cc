// Experiment E2 — Theorem 6.2 / Lemma 6.13: the headline separation.
//
// Claim: in the DSM model, every deterministic terminating read/write
// signaling algorithm can be forced into histories where the total RMR
// count exceeds c * (participants) for every constant c — i.e., amortized
// RMR complexity is unbounded — while the CC model solves the same problem
// with O(1) RMRs per process.
//
// Harness: the executable Section 6 adversary (strict construction) against
// the read/write algorithms; the flag algorithm under the CC model as the
// control. For each N we report the part-1 outcome (stable waiters or the
// Lemma 6.11 unstable branch), the signaler's forced RMRs, and the final
// history's amortized RMRs. The separation is the last column: growing
// ~linearly with N under DSM, flat under CC.
#include <cstdio>
#include <memory>

#include "common/table.h"
#include "lowerbound/adversary.h"
#include "memory/cc_model.h"
#include "signaling/cc_flag.h"
#include "signaling/dsm_fixed.h"
#include "signaling/dsm_registration.h"

using namespace rmrsim;

namespace {

void report_row(TextTable& table, const char* label,
                const AdversaryReport& r) {
  std::string outcome;
  std::string forced;
  std::string amortized;
  if (r.stabilized) {
    outcome = "stabilized k=" + std::to_string(r.stable_waiters);
    forced = std::to_string(r.signaler_rmrs);
    amortized = fixed(r.amortized_final);
  } else {
    outcome = "unstable branch";
    forced = "-";
    amortized = fixed(r.unstable_amortized_end) + " (growing)";
  }
  table.add_row({label, r.model, std::to_string(r.nprocs), outcome, forced,
                 std::to_string(r.participants_final), amortized,
                 r.spec_violation ? "VIOLATED" : "ok"});
}

}  // namespace

int main() {
  std::printf(
      "E2: Theorem 6.2 — forced amortized RMRs in DSM vs the CC control\n\n");
  TextTable table;
  table.set_header({"algorithm", "model", "N", "part-1 outcome",
                    "signaler RMRs (forced)", "|Par(H')|",
                    "amortized RMRs", "spec"});

  for (const int n : {16, 32, 64, 128, 256}) {
    {
      AdversaryConfig c;
      c.nprocs = n;
      c.construction = Construction::kStrict;
      SignalingAdversary adv(
          [n](SharedMemory& m) {
            return std::make_unique<DsmRegistrationSignal>(
                m, static_cast<ProcId>(n - 2));
          },
          c);
      report_row(table, "dsm-registration", adv.run());
    }
    {
      AdversaryConfig c;
      c.nprocs = n;
      c.construction = Construction::kStrict;
      SignalingAdversary adv(
          [n](SharedMemory& m) {
            std::vector<ProcId> ws;
            for (int i = 0; i < n - 1; ++i) ws.push_back(i);
            return std::make_unique<DsmFixedWaitersSignal>(m, std::move(ws));
          },
          c);
      report_row(table, "dsm-fixed-waiters", adv.run());
    }
    {
      // The flag algorithm *in DSM*: never stabilizes, unbounded directly.
      AdversaryConfig c;
      c.nprocs = n;
      c.construction = Construction::kStrict;
      c.unstable_extension_rounds = 16;
      SignalingAdversary adv(
          [](SharedMemory& m) { return std::make_unique<CcFlagSignal>(m); },
          c);
      report_row(table, "cc-flag (in DSM)", adv.run());
    }
    {
      // Control: the same flag algorithm under the CC model.
      AdversaryConfig c;
      c.nprocs = n;
      c.construction = Construction::kLenient;
      c.erase_during_chase = false;
      c.make_memory = [](int k) { return make_cc(k); };
      SignalingAdversary adv(
          [](SharedMemory& m) { return std::make_unique<CcFlagSignal>(m); },
          c);
      report_row(table, "cc-flag (control)", adv.run());
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nExpected shape (paper): for the DSM read/write algorithms the\n"
      "forced signaler cost and amortized column grow ~linearly with N\n"
      "(or the unstable branch shows amortized growth), while the CC\n"
      "control stays O(1) for every N — the amortized-RMR separation.\n");
  return 0;
}
