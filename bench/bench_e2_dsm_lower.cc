// Experiment E2 — Theorem 6.2 / Lemma 6.13: the headline separation.
//
// Claim: in the DSM model, every deterministic terminating read/write
// signaling algorithm can be forced into histories where the total RMR
// count exceeds c * (participants) for every constant c — i.e., amortized
// RMR complexity is unbounded — while the CC model solves the same problem
// with O(1) RMRs per process.
//
// Driven by the e2 entry of the experiment registry: the executable
// Section 6 adversary (strict construction) against the read/write
// algorithms, the flag algorithm under the CC model as the control. The
// separation is the fit: the DSM amortized series must classify
// super-constant, the CC control O(1). The run is written to BENCH_e2.json.
#include <cstdio>

#include "common/table.h"
#include "harness/experiments.h"

using namespace rmrsim;

int main() {
  std::printf(
      "E2: Theorem 6.2 — forced amortized RMRs in DSM vs the CC control\n\n");

  const Experiment* exp = find_experiment("e2");
  const BenchArtifact artifact =
      run_experiment(*exp, /*workers=*/2, "bench_e2_dsm_lower");

  TextTable table;
  table.set_header({"algorithm", "N", "part-1 outcome",
                    "signaler RMRs (forced)", "|Par(H')|", "amortized RMRs",
                    "spec"});
  for (const SweepPointResult& pr : artifact.result.points) {
    const MetricsRegistry& m = pr.metrics;
    const bool stabilized = m.value("adv.stabilized") == 1.0;
    table.add_row(
        {pr.point.algorithm, std::to_string(pr.point.n),
         stabilized
             ? "stabilized k=" +
                   format_metric_number(m.value("adv.stable_waiters"))
             : "unstable branch",
         stabilized ? format_metric_number(m.value("adv.signaler_rmrs")) : "-",
         format_metric_number(m.value("adv.participants")),
         fixed(m.value("adv.amortized")) + (stabilized ? "" : " (growing)"),
         m.value("spec.ok") == 1.0 ? "ok" : "VIOLATED"});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nFitted growth classes:\n");
  std::fputs(render_fit_table(artifact).c_str(), stdout);
  std::printf("wrote %s\n", write_artifact(artifact).c_str());

  std::printf(
      "\nExpected shape (paper): for the DSM read/write algorithms the\n"
      "forced signaler cost and amortized column grow ~linearly with N\n"
      "(or the unstable branch shows amortized growth), while the CC\n"
      "control stays O(1) for every N — the amortized-RMR separation.\n");
  return artifact_matches(artifact) ? 0 : 1;
}
