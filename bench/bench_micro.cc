// Microbenchmarks + the wall-clock perf suite: simulator throughput.
//
// Not a paper experiment — these time the machinery itself (steps/second
// for memory ops, coroutine scheduling, the adversary, DPOR exploration) so
// regressions in the simulator's own performance are visible. Complexity
// claims live in the bench_e* binaries.
//
// Two modes:
//  - default: google-benchmark microbenchmarks (unchanged flags).
//  - --perf-suite: runs the pinned perf configs below with plain wall-clock
//    timing and writes a schema-v1 BENCH_PERF.json through the artifact
//    writer (steps/sec, ns/step, ns/DPOR-node). `--gate-ref R` exits
//    nonzero when the reference config (counters-only signaling steps,
//    n = 64) measures below R steps/sec — the CI perf-smoke gate.
//    `--gate-speedup S` additionally requires the compiled (bytecode)
//    engine to clear S x the coroutine engine's steps/sec on that same
//    reference config. See EXPERIMENTS.md ("BENCH_PERF.json") and README
//    ("Perf suite").
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "harness/artifact.h"
#include "harness/sweep.h"
#include "lowerbound/adversary.h"
#include "memory/cc_model.h"
#include "memory/shared_memory.h"
#include "sched/schedulers.h"
#include "signaling/cc_flag.h"
#include "signaling/compile.h"
#include "signaling/dsm_registration.h"
#include "signaling/workload.h"
#include "verify/dpor.h"
#include "workload/generators.h"
#include "workload/replay.h"

namespace rmrsim {
namespace {

void BM_DsmApplyOps(benchmark::State& state) {
  auto mem = make_dsm(8);
  const VarId v = mem->allocate_global(0);
  Word x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem->apply(0, MemOp::write(v, ++x)));
    benchmark::DoNotOptimize(mem->apply(1, MemOp::read(v)));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_DsmApplyOps);

void BM_CcApplyOps(benchmark::State& state) {
  auto mem = make_cc(8);
  const VarId v = mem->allocate_global(0);
  Word x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem->apply(0, MemOp::write(v, ++x)));
    benchmark::DoNotOptimize(mem->apply(1, MemOp::read(v)));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_CcApplyOps);

SignalingRun run_steps_workload(
    int n, HistoryMode mode, StepEngine engine = StepEngine::kCoroutine,
    std::shared_ptr<const BytecodeSet> precompiled = nullptr) {
  SignalingWorkloadOptions opt;
  opt.n_waiters = n;
  opt.signaler_idle_polls = 8;
  opt.history_mode = mode;
  opt.engine = engine;
  opt.precompiled = std::move(precompiled);
  return run_signaling_workload(
      make_dsm(n + 1),
      [](SharedMemory& m) { return std::make_unique<CcFlagSignal>(m); }, opt);
}

/// Compiles the steps-workload program set once, for reuse across repeated
/// runs: compilation is shape-deterministic (see SignalingWorkloadOptions::
/// precompiled), and recompiling n+1 programs per run would otherwise
/// dominate short runs and hide the step-loop cost the suite measures.
std::shared_ptr<const BytecodeSet> compile_steps_programs(int n) {
  SignalingWorkloadOptions opt;  // defaults mirrored by run_steps_workload
  auto mem = make_dsm(n + 1);
  CcFlagSignal alg(*mem);
  return compile_signaling_programs(alg, n + 1, opt.blocking,
                                    opt.max_polls_per_waiter,
                                    /*idle_polls=*/8);
}

void BM_CoroutineSteps(benchmark::State& state) {
  // One full waiters+signaler workload per iteration; items = steps taken.
  const int n = static_cast<int>(state.range(0));
  std::uint64_t steps = 0;
  for (auto _ : state) {
    auto run = run_steps_workload(n, HistoryMode::kFull);
    steps += run.sim->history().size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_CoroutineSteps)->Arg(8)->Arg(64);

void BM_CoroutineStepsCountersOnly(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t steps = 0;
  for (auto _ : state) {
    auto run = run_steps_workload(n, HistoryMode::kCountersOnly);
    steps += run.sim->history().size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_CoroutineStepsCountersOnly)->Arg(8)->Arg(64);

void BM_CompiledStepsCountersOnly(benchmark::State& state) {
  // Same workload on the bytecode engine's counters-only fast path,
  // compile-once/run-many (the engine's intended usage shape).
  const int n = static_cast<int>(state.range(0));
  const auto programs = compile_steps_programs(n);
  std::uint64_t steps = 0;
  for (auto _ : state) {
    auto run = run_steps_workload(n, HistoryMode::kCountersOnly,
                                  StepEngine::kCompiled, programs);
    steps += run.sim->history().size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_CompiledStepsCountersOnly)->Arg(8)->Arg(64);

void BM_AdversaryStrict(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    AdversaryConfig c;
    c.nprocs = n;
    c.construction = Construction::kStrict;
    SignalingAdversary adv(
        [n](SharedMemory& m) {
          return std::make_unique<DsmRegistrationSignal>(
              m, static_cast<ProcId>(n - 2));
        },
        c);
    benchmark::DoNotOptimize(adv.run());
  }
}
BENCHMARK(BM_AdversaryStrict)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

// ---- perf suite (--perf-suite) --------------------------------------

/// The reference config for the CI gate and for before/after comparisons:
/// the counters-only signaling step loop at this many waiters.
constexpr int kReferenceWaiters = 64;
constexpr const char* kReferenceAlgorithm = "steps_counters";

/// Runs `body` (which returns items processed) repeatedly until at least
/// `min_seconds` of wall clock is accumulated, after one warmup run.
template <typename Body>
std::pair<std::uint64_t, double> run_timed(double min_seconds, Body&& body) {
  using clock = std::chrono::steady_clock;
  body();  // warmup: page in code, fault in allocations
  std::uint64_t items = 0;
  double seconds = 0;
  while (seconds < min_seconds) {
    const auto t0 = clock::now();
    items += body();
    seconds += std::chrono::duration<double>(clock::now() - t0).count();
  }
  return {items, seconds};
}

MetricsRegistry time_steps_config(int n, HistoryMode mode,
                                  double min_seconds,
                                  StepEngine engine = StepEngine::kCoroutine) {
  const auto programs = engine == StepEngine::kCompiled
                            ? compile_steps_programs(n)
                            : nullptr;
  const auto [steps, seconds] = run_timed(min_seconds, [&] {
    return run_steps_workload(n, mode, engine, programs).sim->history().size();
  });
  MetricsRegistry reg;
  reg.set("steps_per_sec", static_cast<double>(steps) / seconds);
  reg.set("ns_per_step", seconds * 1e9 / static_cast<double>(steps));
  return reg;
}

MetricsRegistry time_dpor_config(int waiters, double min_seconds) {
  // The cli_explore_signal configuration, with a counter-backed checker so
  // the counters-only instance opt-in applies: DPOR node throughput.
  const ExploreBuilder build = [waiters]() {
    ExploreInstance inst;
    inst.mem = make_dsm(waiters + 1);
    std::shared_ptr<SignalingAlgorithm> alg =
        std::make_shared<DsmRegistrationSignal>(
            *inst.mem, static_cast<ProcId>(waiters));
    std::vector<Program> programs;
    for (int i = 0; i < waiters; ++i) {
      programs.emplace_back([a = alg.get()](ProcCtx& ctx) {
        return polling_waiter(ctx, a, /*max_polls=*/1);
      });
    }
    programs.emplace_back(
        [a = alg.get()](ProcCtx& ctx) { return signaler(ctx, a); });
    inst.sim = std::make_unique<Simulation>(*inst.mem, std::move(programs));
    inst.keepalive = alg;
    return inst;
  };
  const ExploreChecker check =
      [](const History& h) -> std::optional<std::string> {
    if (h.total_rmrs() > 1'000'000) return "absurd RMR count";
    return std::nullopt;
  };
  std::uint64_t nodes = 0;
  const auto [_, seconds] = run_timed(min_seconds, [&] {
    DporOptions opt;
    opt.max_depth = 24;
    opt.counters_only_history = true;
    const ExploreResult r = explore_dpor(build, check, opt);
    nodes += r.nodes_visited;
    return r.nodes_visited;
  });
  MetricsRegistry reg;
  reg.set("nodes_per_sec", static_cast<double>(nodes) / seconds);
  reg.set("ns_per_dpor_node", seconds * 1e9 / static_cast<double>(nodes));
  return reg;
}

MetricsRegistry time_trace_replay_config(int procs, double min_seconds) {
  // Bare cc replay of a pinned zipf trace (no protocol fleet): the workload
  // engine's end-to-end op throughput, ledger and counters included.
  GenSpec g;
  g.kind = "zipf";
  g.procs = procs;
  g.ops = 50'000;
  g.seed = 1;
  const Trace trace = generate_trace(g);
  const auto [ops, seconds] = run_timed(min_seconds, [&]() -> std::uint64_t {
    auto mem = make_cc(trace.nprocs);
    replay_trace_core(trace, *mem);
    return trace.ops.size();
  });
  MetricsRegistry reg;
  reg.set("trace_replay_ops_per_sec", static_cast<double>(ops) / seconds);
  reg.set("ns_per_trace_op", seconds * 1e9 / static_cast<double>(ops));
  return reg;
}

MetricsRegistry time_apply_config(bool cc, double min_seconds) {
  std::unique_ptr<SharedMemory> mem = cc ? make_cc(8) : make_dsm(8);
  const VarId v = mem->allocate_global(0);
  Word x = 0;
  const auto [ops, seconds] = run_timed(min_seconds, [&]() -> std::uint64_t {
    constexpr std::uint64_t kBatch = 100'000;
    for (std::uint64_t i = 0; i < kBatch; ++i) {
      benchmark::DoNotOptimize(mem->apply(0, MemOp::write(v, ++x)));
      benchmark::DoNotOptimize(mem->apply(1, MemOp::read(v)));
    }
    return 2 * kBatch;
  });
  MetricsRegistry reg;
  reg.set("ops_per_sec", static_cast<double>(ops) / seconds);
  reg.set("ns_per_op", seconds * 1e9 / static_cast<double>(ops));
  return reg;
}

int run_perf_suite(const std::string& out_dir, double min_seconds,
                   double gate_ref_steps_per_sec,
                   double gate_compiled_speedup) {
  // The pinned grid. Axes are reused from the sweep schema: `algorithm`
  // names the config, `n` its size, `model` the memory model it exercises.
  SweepSpec spec;
  spec.name = "PERF";
  spec.models = {"dsm"};
  spec.algorithms = {"steps_full", "steps_counters", "steps_compiled",
                     "dpor_registration", "apply_dsm", "apply_cc",
                     "trace_replay"};
  spec.ns = {8, 64};

  SweepResult result;
  result.spec = spec;
  result.workers = 1;
  const auto wall0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < spec.grid_size(); ++i) {
    SweepPointResult pr;
    pr.point = spec.point_at(i);
    const std::string& alg = pr.point.algorithm;
    if (alg == "steps_full") {
      pr.metrics =
          time_steps_config(pr.point.n, HistoryMode::kFull, min_seconds);
    } else if (alg == "steps_counters") {
      pr.metrics = time_steps_config(pr.point.n, HistoryMode::kCountersOnly,
                                     min_seconds);
    } else if (alg == "steps_compiled") {
      pr.metrics = time_steps_config(pr.point.n, HistoryMode::kCountersOnly,
                                     min_seconds, StepEngine::kCompiled);
    } else if (alg == "dpor_registration" && pr.point.n == 8) {
      // One pinned size: 2 waiters x 1 poll (the cli_explore_signal shape);
      // the depth-24 tree is what DPOR reduction leaves of it.
      pr.metrics = time_dpor_config(/*waiters=*/2, min_seconds);
    } else if (alg == "apply_dsm" && pr.point.n == 8) {
      pr.metrics = time_apply_config(/*cc=*/false, min_seconds);
    } else if (alg == "apply_cc" && pr.point.n == 8) {
      pr.metrics = time_apply_config(/*cc=*/true, min_seconds);
    } else if (alg == "trace_replay") {
      pr.metrics = time_trace_replay_config(pr.point.n, min_seconds);
    }
    result.points.push_back(std::move(pr));
  }
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall0)
                       .count();

  BenchArtifact artifact;
  artifact.name = spec.name;
  artifact.title = "simulator perf suite (wall-clock throughput)";
  artifact.generator = "bench_micro --perf-suite";
  artifact.git = git_describe();
  artifact.result = result;
  const std::string path = write_artifact(artifact, out_dir);

  double ref = 0;
  double compiled_ref = 0;
  for (const SweepPointResult& pr : result.points) {
    if (pr.point.algorithm == kReferenceAlgorithm &&
        pr.point.n == kReferenceWaiters) {
      ref = pr.metrics.value("steps_per_sec");
    }
    if (pr.point.algorithm == "steps_compiled" &&
        pr.point.n == kReferenceWaiters) {
      compiled_ref = pr.metrics.value("steps_per_sec");
    }
    for (const char* m :
         {"steps_per_sec", "ns_per_step", "nodes_per_sec", "ns_per_dpor_node",
          "ops_per_sec", "ns_per_op", "trace_replay_ops_per_sec",
          "ns_per_trace_op"}) {
      if (pr.metrics.has_value(m)) {
        std::printf("perf %-18s n=%-3d %-16s %14.0f\n",
                    pr.point.algorithm.c_str(), pr.point.n, m,
                    pr.metrics.value(m));
      }
    }
  }
  std::printf("perf suite written: %s\n", path.c_str());
  std::printf("reference config (%s, n=%d): %.0f steps/sec\n",
              kReferenceAlgorithm, kReferenceWaiters, ref);
  const double speedup = ref > 0 ? compiled_ref / ref : 0;
  std::printf("compiled engine (steps_compiled, n=%d): %.0f steps/sec "
              "(%.1fx the coroutine engine)\n",
              kReferenceWaiters, compiled_ref, speedup);
  if (gate_ref_steps_per_sec > 0 && ref < gate_ref_steps_per_sec) {
    std::fprintf(stderr,
                 "PERF GATE FAILED: reference %.0f steps/sec < required "
                 "%.0f\n",
                 ref, gate_ref_steps_per_sec);
    return 1;
  }
  if (gate_compiled_speedup > 0 && speedup < gate_compiled_speedup) {
    std::fprintf(stderr,
                 "PERF GATE FAILED: compiled engine %.1fx the coroutine "
                 "engine < required %.1fx\n",
                 speedup, gate_compiled_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace rmrsim

int main(int argc, char** argv) {
  bool perf_suite = false;
  std::string out_dir = ".";
  double min_seconds = 0.5;
  double gate_ref = 0;
  double gate_speedup = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--perf-suite") == 0) {
      perf_suite = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--min-time") == 0 && i + 1 < argc) {
      min_seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--gate-ref") == 0 && i + 1 < argc) {
      gate_ref = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--gate-speedup") == 0 && i + 1 < argc) {
      gate_speedup = std::atof(argv[++i]);
    }
  }
  if (perf_suite) {
    return rmrsim::run_perf_suite(out_dir, min_seconds, gate_ref,
                                  gate_speedup);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
