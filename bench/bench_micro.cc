// Microbenchmarks (google-benchmark): simulator throughput.
//
// Not a paper experiment — these time the machinery itself (steps/second
// for memory ops, coroutine scheduling, the adversary) so regressions in
// the simulator's own performance are visible. Complexity claims live in
// the bench_e* binaries.
#include <benchmark/benchmark.h>

#include <memory>

#include "lowerbound/adversary.h"
#include "memory/cc_model.h"
#include "memory/shared_memory.h"
#include "sched/schedulers.h"
#include "signaling/cc_flag.h"
#include "signaling/dsm_registration.h"
#include "signaling/workload.h"

namespace rmrsim {
namespace {

void BM_DsmApplyOps(benchmark::State& state) {
  auto mem = make_dsm(8);
  const VarId v = mem->allocate_global(0);
  Word x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem->apply(0, MemOp::write(v, ++x)));
    benchmark::DoNotOptimize(mem->apply(1, MemOp::read(v)));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_DsmApplyOps);

void BM_CcApplyOps(benchmark::State& state) {
  auto mem = make_cc(8);
  const VarId v = mem->allocate_global(0);
  Word x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem->apply(0, MemOp::write(v, ++x)));
    benchmark::DoNotOptimize(mem->apply(1, MemOp::read(v)));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_CcApplyOps);

void BM_CoroutineSteps(benchmark::State& state) {
  // One full waiters+signaler workload per iteration; items = steps taken.
  const int n = static_cast<int>(state.range(0));
  std::uint64_t steps = 0;
  for (auto _ : state) {
    SignalingWorkloadOptions opt;
    opt.n_waiters = n;
    opt.signaler_idle_polls = 8;
    auto run = run_signaling_workload(
        make_dsm(n + 1),
        [](SharedMemory& m) { return std::make_unique<CcFlagSignal>(m); },
        opt);
    steps += run.sim->history().size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_CoroutineSteps)->Arg(8)->Arg(64);

void BM_AdversaryStrict(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    AdversaryConfig c;
    c.nprocs = n;
    c.construction = Construction::kStrict;
    SignalingAdversary adv(
        [n](SharedMemory& m) {
          return std::make_unique<DsmRegistrationSignal>(
              m, static_cast<ProcId>(n - 2));
        },
        c);
    benchmark::DoNotOptimize(adv.run());
  }
}
BENCHMARK(BM_AdversaryStrict)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rmrsim

BENCHMARK_MAIN();
