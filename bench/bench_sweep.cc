// Sweep-engine bench — the determinism-and-speedup contract, measured.
//
// The engine's guarantee (harness/sweep.h): parallelism may change wall
// time, never output. This bench runs one real-work grid (mutex workloads
// via harness/drive.h — 2 locks x 2 models x 2 sizes = 8 points) serially
// and under growing worker pools, byte-compares the serialized artifacts
// (wall time excluded — the one legitimately non-deterministic field), and
// reports the measured speedup. The byte-identity check is the hard gate
// (exit 1 on mismatch); the speedup is reported honestly for whatever
// hardware this runs on — on a single-core container the parallel runs
// cannot beat serial, and that is the expected, honest result there.
#include <cstdio>
#include <thread>
#include <vector>

#include "common/table.h"
#include "harness/artifact.h"
#include "harness/drive.h"
#include "harness/sweep.h"
#include "metrics/publish.h"

using namespace rmrsim;

namespace {

SweepSpec bench_spec() {
  SweepSpec s;
  s.name = "sweep_bench";
  s.models = {"dsm", "cc"};
  s.algorithms = {"mcs", "ya"};
  s.ns = {32, 64};
  return s;
}

MetricsRegistry run_point(const SweepPoint& p) {
  MutexRunOptions opt;
  opt.model = p.model;
  opt.nprocs = p.n;
  opt.passages = 3;
  opt.make_lock = [name = p.algorithm](SharedMemory& mem) {
    return make_lock_by_name(name, mem);
  };
  const MutexRunOutcome o = run_mutex_workload(opt);
  MetricsRegistry reg;
  publish_simulation(reg, *o.world.sim);
  reg.set("rmrs.per_passage", o.rmrs_per_passage);
  reg.set("run.completed", o.completed ? 1.0 : 0.0);
  return reg;
}

BenchArtifact to_artifact(SweepResult result) {
  BenchArtifact a;
  a.name = "sweep_bench";
  a.title = "sweep engine determinism/speedup bench";
  a.generator = "bench_sweep";
  a.git = git_describe();
  a.result = std::move(result);
  return a;
}

}  // namespace

int main() {
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf(
      "Sweep-engine bench: 8-point mutex grid (mcs|ya x dsm|cc x N=32|64),\n"
      "serial vs worker pools; hardware reports %u core(s)\n\n",
      hw);

  const SweepSpec spec = bench_spec();
  const SweepResult serial = run_sweep(spec, run_point, /*workers=*/1);
  const std::string serial_json =
      artifact_to_json(to_artifact(serial), /*include_wall_time=*/false);

  TextTable t;
  t.set_header({"workers", "wall ms", "speedup vs serial", "output"});
  t.add_row({"1", fixed(serial.wall_ms), "1.00", "baseline"});
  bool all_identical = true;
  for (const int workers : {2, 4, 8}) {
    const SweepResult par = run_sweep(spec, run_point, workers);
    const std::string json =
        artifact_to_json(to_artifact(par), /*include_wall_time=*/false);
    const bool same = json == serial_json;
    all_identical = all_identical && same;
    t.add_row({std::to_string(workers), fixed(par.wall_ms),
               par.wall_ms > 0 ? fixed(serial.wall_ms / par.wall_ms) : "-",
               same ? "byte-identical" : "MISMATCH"});
  }
  std::fputs(t.render().c_str(), stdout);

  std::printf(
      "\nContract: the 'output' column must read byte-identical on every\n"
      "row (hard gate — exit 1 otherwise). Speedup is hardware-dependent\n"
      "and reported, not asserted: near-linear on multi-core hosts, ~1.0\n"
      "(pool overhead included) when only one core is available.\n");
  if (!all_identical) {
    std::fprintf(stderr,
                 "bench_sweep: parallel sweep output diverged from serial\n");
    return 1;
  }
  return 0;
}
