// Experiment E6 — Corollary 6.14: CAS gives no escape.
//
// Claim: the DSM lower bound extends to algorithms using CAS (or LL/SC)
// besides reads and writes, via the transformation that replaces each CAS
// variable with a read/write implementation.
//
// Harness: the CAS registration algorithm, raw and transformed.
//  * raw   — the strict adversary detects the CAS ops and reports the
//            algorithm outside Theorem 6.2's direct construction;
//  * transformed (EmulatedCas: CAS under a read/write Yang-Anderson lock) —
//            reads/writes only, so the strict construction applies and
//            forces the Theorem 6.2 outcome (stabilize-and-chase or the
//            unstable branch with growing amortized cost).
#include <cstdio>
#include <memory>

#include "common/table.h"
#include "lowerbound/adversary.h"
#include "primitives/rw_cas_registration.h"
#include "signaling/cas_registration.h"

using namespace rmrsim;

int main() {
  std::printf("E6: Corollary 6.14 — the CAS transformation\n\n");
  TextTable table;
  table.set_header({"algorithm", "N", "in Thm-6.2 scope", "part-1 outcome",
                    "signaler RMRs", "amortized", "spec"});
  for (const int n : {16, 32, 64}) {
    {
      AdversaryConfig c;
      c.nprocs = n;
      c.construction = Construction::kStrict;
      SignalingAdversary adv(
          [](SharedMemory& m) {
            return std::make_unique<CasRegistrationSignal>(m);
          },
          c);
      const auto r = adv.run();
      table.add_row({"cas-registration (raw)", std::to_string(n),
                     r.in_scope ? "yes" : "no (CAS detected)",
                     r.stabilized
                         ? "stabilized k=" + std::to_string(r.stable_waiters)
                         : "unstable",
                     std::to_string(r.signaler_rmrs),
                     fixed(r.stabilized ? r.amortized_final
                                        : r.unstable_amortized_end),
                     r.spec_violation ? "VIOLATED" : "ok"});
    }
    {
      AdversaryConfig c;
      c.nprocs = n;
      c.construction = Construction::kStrict;
      c.max_rounds = 64;  // lock traffic needs more rounds to settle
      SignalingAdversary adv(
          [](SharedMemory& m) {
            return std::make_unique<RwCasRegistrationSignal>(m);
          },
          c);
      const auto r = adv.run();
      std::string outcome =
          r.stabilized ? "stabilized k=" + std::to_string(r.stable_waiters)
                       : "unstable branch (amortized " +
                             fixed(r.unstable_amortized_start) + " -> " +
                             fixed(r.unstable_amortized_end) + ")";
      table.add_row({"rw-cas-registration (transformed)", std::to_string(n),
                     r.in_scope ? "yes" : "no",
                     outcome, std::to_string(r.signaler_rmrs),
                     fixed(r.stabilized ? r.amortized_final
                                        : r.unstable_amortized_end),
                     r.spec_violation ? "VIOLATED" : "ok"});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nExpected shape (paper): the raw CAS algorithm escapes the *direct*\n"
      "construction (detected out of scope), but its transformed read/write\n"
      "equivalent is in scope and falls to the adversary — CAS adds no\n"
      "power against amortized DSM RMR lower bounds (Corollary 6.14).\n");
  return 0;
}
