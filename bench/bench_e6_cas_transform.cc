// Experiment E6 — Corollary 6.14: CAS gives no escape.
//
// Claim: the DSM lower bound extends to algorithms using CAS (or LL/SC)
// besides reads and writes, via the transformation that replaces each CAS
// variable with a read/write implementation.
//
// Driven by the e6 entry of the experiment registry:
//  * cas-raw            — the strict adversary detects the CAS ops and
//                         reports the algorithm outside Theorem 6.2's
//                         direct construction;
//  * rw-cas-transformed — EmulatedCas (CAS under a read/write
//                         Yang-Anderson lock), reads/writes only, so the
//                         strict construction applies and forces the
//                         Theorem 6.2 outcome.
// The fitter pins the transformed amortized series to super-constant; the
// run is written to BENCH_e6.json.
#include <cstdio>

#include "common/table.h"
#include "harness/experiments.h"

using namespace rmrsim;

int main() {
  std::printf("E6: Corollary 6.14 — the CAS transformation\n\n");

  const Experiment* exp = find_experiment("e6");
  const BenchArtifact artifact =
      run_experiment(*exp, /*workers=*/2, "bench_e6_cas_transform");

  TextTable table;
  table.set_header({"algorithm", "N", "in Thm-6.2 scope", "part-1 outcome",
                    "signaler RMRs", "amortized", "spec"});
  for (const SweepPointResult& pr : artifact.result.points) {
    const MetricsRegistry& m = pr.metrics;
    const bool raw = pr.point.algorithm == "cas-raw";
    const bool in_scope = m.value("adv.in_scope") == 1.0;
    const bool stabilized = m.value("adv.stabilized") == 1.0;
    table.add_row(
        {raw ? "cas-registration (raw)" : "rw-cas-registration (transformed)",
         std::to_string(pr.point.n),
         in_scope ? "yes" : (raw ? "no (CAS detected)" : "no"),
         stabilized ? "stabilized k=" +
                          format_metric_number(m.value("adv.stable_waiters"))
                    : "unstable branch",
         format_metric_number(m.value("adv.signaler_rmrs")),
         fixed(m.value("adv.amortized")),
         m.value("spec.ok") == 1.0 ? "ok" : "VIOLATED"});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nFitted growth classes:\n");
  std::fputs(render_fit_table(artifact).c_str(), stdout);
  std::printf("wrote %s\n", write_artifact(artifact).c_str());

  std::printf(
      "\nExpected shape (paper): the raw CAS algorithm escapes the *direct*\n"
      "construction (detected out of scope), but its transformed read/write\n"
      "equivalent is in scope and falls to the adversary — CAS adds no\n"
      "power against amortized DSM RMR lower bounds (Corollary 6.14).\n");
  return artifact_matches(artifact) ? 0 : 1;
}
