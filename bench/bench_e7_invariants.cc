// Experiment E7 — Lemma 6.10's invariant S(i), observed on live runs.
//
// The proof's induction maintains, for the constructed history H_i
// (Definition 6.9): |Fin(H_i)| <= i; |Act(H_i)| >= N^(1/3^i); every active
// process has at most i RMRs; every finished process at most c*i. This
// bench runs the strict construction round by round against a read/write
// algorithm and prints the measured quantities next to the bounds, plus the
// regularity (Definition 6.6) verdict for each round's history.
#include <cmath>
#include <cstdio>
#include <memory>

#include "common/table.h"
#include "lowerbound/adversary.h"
#include "signaling/dsm_registration.h"

using namespace rmrsim;

int main() {
  std::printf("E7: Definition 6.9 invariants along the part-1 construction\n");
  for (const int n : {81, 243, 729}) {
    AdversaryConfig c;
    c.nprocs = n;
    c.construction = Construction::kStrict;
    SignalingAdversary adv(
        [n](SharedMemory& m) {
          return std::make_unique<DsmRegistrationSignal>(
              m, static_cast<ProcId>(n - 2));
        },
        c);
    const auto r = adv.run();
    std::printf("\nN = %d (%s, %d rounds, %s)\n", n, r.algorithm.c_str(),
                r.rounds, r.stabilized ? "stabilized" : "not stabilized");
    TextTable table;
    table.set_header({"round i", "|Act|", "N^(1/3^i) bound", "|Fin|",
                      "<= i", "stable", "max act RMRs", "<= i", "regular"});
    for (const RoundStats& rs : r.round_stats) {
      const double bound =
          std::pow(static_cast<double>(n), 1.0 / std::pow(3.0, rs.round));
      table.add_row({std::to_string(rs.round), std::to_string(rs.active),
                     fixed(bound, 1),
                     std::to_string(rs.finished),
                     rs.finished <= rs.round ? "ok" : "FAIL",
                     std::to_string(rs.stable),
                     std::to_string(rs.max_active_rmrs),
                     rs.max_active_rmrs <= static_cast<std::uint64_t>(rs.round)
                         ? "ok"
                         : "FAIL",
                     rs.regular ? "ok" : "FAIL"});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("part 2: signaler p%d forced %llu RMRs over %d stable waiters"
                " -> amortized %.2f across %d participants\n",
                r.signaler,
                static_cast<unsigned long long>(r.signaler_rmrs),
                r.stable_waiters, r.amortized_final, r.participants_final);
  }
  std::printf(
      "\nExpected shape (paper): |Act| stays far above the N^(1/3^i) bound\n"
      "(the proof's worst case is much more pessimistic than real\n"
      "algorithms), |Fin| <= i, active processes carry <= i RMRs, and every\n"
      "round's history is regular per Definition 6.6.\n");
  return 0;
}
