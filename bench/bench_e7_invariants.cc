// Experiment E7 — Lemma 6.10's invariant S(i), observed on live runs.
//
// The proof's induction maintains, for the constructed history H_i
// (Definition 6.9): |Fin(H_i)| <= i; |Act(H_i)| >= N^(1/3^i); every active
// process has at most i RMRs; every finished process at most c*i. Driven by
// the e7 entry of the experiment registry, which runs the strict
// construction round by round against the read/write registration algorithm
// and publishes the per-round quantities as series (adv.*_by_round); this
// binary prints them next to the bounds, plus the regularity
// (Definition 6.6) verdict for each round's history. The fitter pins the
// all-rounds invariant verdict (adv.invariants_ok) flat at 1; the run is
// written to BENCH_e7.json.
#include <cmath>
#include <cstdio>

#include "common/table.h"
#include "harness/experiments.h"

using namespace rmrsim;

namespace {

double series_y(const MetricsRegistry& m, const char* name, std::size_t i) {
  const MetricsRegistry::Series* s = m.series(name);
  if (s == nullptr || i >= s->points.size()) return -1.0;
  return s->points[i].y;
}

}  // namespace

int main() {
  std::printf("E7: Definition 6.9 invariants along the part-1 construction\n");

  const Experiment* exp = find_experiment("e7");
  const BenchArtifact artifact =
      run_experiment(*exp, /*workers=*/2, "bench_e7_invariants");

  for (const SweepPointResult& pr : artifact.result.points) {
    const MetricsRegistry& m = pr.metrics;
    const int n = pr.point.n;
    std::printf("\nN = %d (%s, %s rounds, %s)\n", n, pr.point.algorithm.c_str(),
                format_metric_number(m.value("adv.rounds")).c_str(),
                m.value("adv.stabilized") == 1.0 ? "stabilized"
                                                 : "not stabilized");
    TextTable table;
    table.set_header({"round i", "|Act|", "N^(1/3^i) bound", "|Fin|", "<= i",
                      "stable", "max act RMRs", "<= i", "regular"});
    const MetricsRegistry::Series* active = m.series("adv.active_by_round");
    const std::size_t rounds = active == nullptr ? 0 : active->points.size();
    for (std::size_t i = 0; i < rounds; ++i) {
      const double round = active->points[i].x;
      const double fin = series_y(m, "adv.finished_by_round", i);
      const double max_rmrs = series_y(m, "adv.max_active_rmrs_by_round", i);
      const double bound = std::pow(static_cast<double>(n),
                                    1.0 / std::pow(3.0, round));
      table.add_row({format_metric_number(round),
                     format_metric_number(active->points[i].y),
                     fixed(bound, 1), format_metric_number(fin),
                     fin <= round ? "ok" : "FAIL",
                     format_metric_number(series_y(m, "adv.stable_by_round", i)),
                     format_metric_number(max_rmrs),
                     max_rmrs <= round ? "ok" : "FAIL",
                     series_y(m, "adv.regular_by_round", i) == 1.0 ? "ok"
                                                                  : "FAIL"});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf(
        "part 2: signaler forced %s RMRs -> amortized %s across %s "
        "participants\n",
        format_metric_number(m.value("adv.signaler_rmrs")).c_str(),
        fixed(m.value("adv.amortized")).c_str(),
        format_metric_number(m.value("adv.participants")).c_str());
  }

  std::printf("\nFitted growth classes:\n");
  std::fputs(render_fit_table(artifact).c_str(), stdout);
  std::printf("wrote %s\n", write_artifact(artifact).c_str());

  std::printf(
      "\nExpected shape (paper): |Act| stays far above the N^(1/3^i) bound\n"
      "(the proof's worst case is much more pessimistic than real\n"
      "algorithms), |Fin| <= i, active processes carry <= i RMRs, and every\n"
      "round's history is regular per Definition 6.6.\n");
  return artifact_matches(artifact) ? 0 : 1;
}
