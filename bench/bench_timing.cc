// Extension bench — the semi-synchronous model (Section 3, [23]).
//
// In semi-synchronous systems processes know the step-gap bound Delta and
// can delay themselves; the cited Kim–Anderson result separates the models
// in the OPPOSITE direction (DSM O(1), CC Omega(log log N)). This bench
// characterizes our substrate with Fischer's lock via the shared seed-sweep
// driver (harness/drive.h): (a) safety as a function of the lock's delay
// parameter relative to Delta — timing is load-bearing; (b) RMR cost per
// passage across N, per model.
#include <cstdio>
#include <memory>

#include "common/table.h"
#include "harness/drive.h"
#include "mutex/fischer_lock.h"

using namespace rmrsim;

namespace {

MutexSeedStats run_many(const char* model, int n, Word lock_delay,
                        std::uint64_t delta, int seeds) {
  MutexRunOptions opt;
  opt.model = model;
  opt.nprocs = n;
  opt.passages = 3;
  opt.gap_delta = delta;
  opt.max_steps = 10'000'000;
  opt.make_lock = [lock_delay](SharedMemory& m) {
    return std::make_shared<FischerLock>(m, lock_delay);
  };
  return run_mutex_seeds(opt, /*first_seed=*/1, seeds);
}

}  // namespace

int main() {
  std::printf(
      "Timing extension bench: Fischer's lock under the Delta-scheduler\n"
      "(N = 6, Delta = 8, 40 seeds per row)\n\n");
  TextTable t;
  t.set_header({"lock delay", "vs Delta", "ME violations", "incomplete runs",
                "RMRs/passage (DSM)"});
  const int n = 6;
  const std::uint64_t delta = 8;
  for (const Word d : {Word{0}, Word{2}, Word{4}, Word{8}, Word{14}, Word{20}}) {
    const auto o = run_many("dsm", n, d, delta, 40);
    std::string rel = d == 0 ? "none"
                    : d < static_cast<Word>(delta) ? "too small"
                    : d < static_cast<Word>(delta + n) ? "borderline"
                                                       : "adequate";
    t.add_row({std::to_string(d), rel, std::to_string(o.violations),
               std::to_string(o.incomplete), fixed(o.mean_rmrs_per_passage)});
  }
  std::fputs(t.render().c_str(), stdout);

  std::printf("\nAdequate delay (Delta + N), across N, both models:\n");
  TextTable t2;
  t2.set_header({"N", "DSM RMRs/passage", "CC RMRs/passage"});
  for (const int k : {2, 4, 8, 16}) {
    const auto d = run_many("dsm", k, static_cast<Word>(delta + k), delta, 10);
    const auto c = run_many("cc", k, static_cast<Word>(delta + k), delta, 10);
    t2.add_row({std::to_string(k), fixed(d.mean_rmrs_per_passage),
                fixed(c.mean_rmrs_per_passage)});
  }
  std::fputs(t2.render().c_str(), stdout);
  std::printf(
      "\nExpected shape: with delay >= Delta(+slack) zero violations — the\n"
      "protocol's safety is a theorem of the timing model; with a too-small\n"
      "delay violations appear. Fischer spins on one shared cell, so the\n"
      "contended RMR cost grows with N in DSM and stays flat in CC; the\n"
      "cited [23] O(1)-DSM algorithm needs additional local-spin machinery\n"
      "beyond this classic protocol (documented substitution).\n");
  return 0;
}
