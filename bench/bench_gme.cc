// Extension bench — group mutual exclusion (the [8] problem).
//
// Not one of this paper's own results: GME is where Hadzilacos & Danek
// found the first CC/DSM separation, which Section 1 takes as the starting
// point. This bench characterizes our GME substrate: concurrency extracted
// and RMRs per passage for the session lock vs the mutex baseline, per
// model and inner lock.
#include <cstdio>
#include <memory>

#include "common/table.h"
#include "gme/session_gme.h"
#include "memory/cc_model.h"
#include "mutex/mcs_lock.h"
#include "mutex/ya_lock.h"
#include "sched/schedulers.h"

using namespace rmrsim;

namespace {

struct Row {
  double rmrs_per_passage = 0;
  int max_occupancy = 0;
};

Row run(bool session_lock, bool inner_mcs, bool cc, int n, int passages,
        int n_sessions) {
  auto mem = cc ? make_cc(n) : make_dsm(n);
  std::unique_ptr<MutexAlgorithm> inner;
  if (inner_mcs) {
    inner = std::make_unique<McsLock>(*mem);
  } else {
    inner = std::make_unique<YangAndersonLock>(*mem);
  }
  std::unique_ptr<GmeAlgorithm> alg;
  if (session_lock) {
    alg = std::make_unique<SessionGme>(*mem, std::move(inner));
  } else {
    alg = std::make_unique<MutexGme>(*mem, std::move(inner));
  }
  std::vector<Program> programs;
  GmeAlgorithm* g = alg.get();
  for (int i = 0; i < n; ++i) {
    // Block assignment (first half session 0, second half session 1, ...):
    // arrival order then contains long same-session runs, which the session
    // lock's FCFS prefix batching can actually exploit. (Perfectly
    // interleaved sessions make every FIFO prefix length 1 — the classic
    // GME throughput pathology.)
    std::vector<Word> sessions = {i / (n / n_sessions)};
    programs.emplace_back([g, passages, sessions](ProcCtx& ctx) {
      return gme_worker(ctx, g, passages, sessions, /*cs_dwell=*/30);
    });
  }
  Simulation sim(*mem, std::move(programs));
  RoundRobinScheduler rr;
  Row row;
  if (!sim.run(rr, 500'000'000).all_terminated) return row;
  if (check_gme_safety(sim.history()).has_value()) {
    row.rmrs_per_passage = -2;  // safety violation (must not happen)
    return row;
  }
  row.rmrs_per_passage = static_cast<double>(mem->ledger().total_rmrs()) /
                         static_cast<double>(n * passages);
  row.max_occupancy = max_cs_occupancy(sim.history());
  return row;
}

}  // namespace

int main() {
  const int n = 32;
  const int passages = 4;
  std::printf(
      "GME extension bench: N=%d, %d passages, 2 sessions, CS dwell 30\n\n",
      n, passages);
  TextTable table;
  table.set_header({"algorithm", "inner lock", "model", "RMRs/passage",
                    "max CS occupancy"});
  for (const bool session_lock : {true, false}) {
    for (const bool inner_mcs : {true, false}) {
      for (const bool cc : {false, true}) {
        const Row r = run(session_lock, inner_mcs, cc, n, passages, 2);
        table.add_row({session_lock ? "session-gme" : "mutex-gme",
                       inner_mcs ? "mcs" : "yang-anderson",
                       cc ? "CC" : "DSM", fixed(r.rmrs_per_passage),
                       std::to_string(r.max_occupancy)});
      }
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nExpected shape: session-gme extracts occupancy >> 1 (whole session\n"
      "batches share the room) at O(inner mutex) RMRs per passage;\n"
      "mutex-gme is stuck at occupancy 1. Inner mcs keeps passages O(1);\n"
      "inner yang-anderson costs Theta(log N) with reads/writes only.\n"
      "Note the arrival-order sensitivity: FCFS prefix batching only helps\n"
      "when same-session requests arrive in runs (the inner lock's\n"
      "arbitration order decides that) — the classic GME throughput\n"
      "pathology the fancier algorithms of [8, 18, 6] exist to fix.\n");
  return 0;
}
