// Explorer benchmark — how far partial-order reduction actually reaches.
//
// For a ladder of small configurations (signaling with growing waiter
// counts, mutex with growing process counts) this runs the naive
// explorer and explore_dpor under identical bounds and reports nodes
// visited, whether each search exhausted its tree, the measured reduction
// factor, and wall time. Where the naive explorer trips the node cap the
// reduction column shows a lower bound (">Nx"): the reduced search proved
// the whole space while the unreduced one could not finish a fraction of
// it. Parallel scaling is reported separately on the largest config
// (workers 1/2/4, identical verdicts by construction).
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/table.h"
#include "memory/shared_memory.h"
#include "mutex/lock.h"
#include "mutex/simple_locks.h"
#include "signaling/algorithm.h"
#include "signaling/checker.h"
#include "signaling/dsm_registration.h"
#include "verify/dpor.h"
#include "verify/explorer.h"

using namespace rmrsim;

namespace {

ExploreBuilder signal_builder(int waiters, int polls) {
  const int nprocs = waiters + 1;
  return [=]() {
    ExploreInstance inst;
    inst.mem = make_dsm(nprocs);
    auto alg = std::make_shared<DsmRegistrationSignal>(
        *inst.mem, static_cast<ProcId>(nprocs - 1));
    std::vector<Program> programs;
    for (int i = 0; i < waiters; ++i) {
      programs.emplace_back([a = alg.get(), polls](ProcCtx& ctx) {
        return polling_waiter(ctx, a, polls);
      });
    }
    programs.emplace_back(
        [a = alg.get()](ProcCtx& ctx) { return signaler(ctx, a); });
    inst.sim = std::make_unique<Simulation>(*inst.mem, std::move(programs));
    inst.keepalive = alg;
    return inst;
  };
}

ExploreBuilder mutex_builder(int nprocs) {
  return [=]() {
    ExploreInstance inst;
    inst.mem = make_dsm(nprocs);
    auto lock = std::make_shared<TasLock>(*inst.mem);
    std::vector<Program> programs;
    for (int p = 0; p < nprocs; ++p) {
      programs.emplace_back([l = lock.get()](ProcCtx& ctx) {
        return mutex_worker(ctx, l, /*passages=*/1);
      });
    }
    inst.sim = std::make_unique<Simulation>(*inst.mem, std::move(programs));
    inst.keepalive = lock;
    return inst;
  };
}

ExploreChecker signal_checker() {
  return [](const History& h) -> std::optional<std::string> {
    if (const auto v = check_polling_spec(h)) return v->what;
    return std::nullopt;
  };
}

ExploreChecker mutex_checker() {
  return [](const History& h) -> std::optional<std::string> {
    if (const auto v = check_mutual_exclusion(h)) return v->what;
    return std::nullopt;
  };
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct Row {
  std::string config;
  ExploreResult naive;
  ExploreResult dpor;
  double naive_ms = 0;
  double dpor_ms = 0;
};

Row run_pair(std::string config, const ExploreBuilder& build,
             const ExploreChecker& check, int depth,
             std::uint64_t max_nodes) {
  Row r;
  r.config = std::move(config);
  auto t0 = std::chrono::steady_clock::now();
  r.naive = explore_all_schedules(build, check,
                                  {.max_depth = depth, .max_nodes = max_nodes});
  r.naive_ms = ms_since(t0);
  t0 = std::chrono::steady_clock::now();
  r.dpor = explore_dpor(build, check,
                        {.max_depth = depth, .max_nodes = max_nodes});
  r.dpor_ms = ms_since(t0);
  return r;
}

std::string nodes_cell(const ExploreResult& r) {
  return std::to_string(r.nodes_visited) + (r.exhausted ? "" : " (cap)");
}

std::string reduction_cell(const Row& r) {
  const double ratio = static_cast<double>(r.naive.nodes_visited) /
                       static_cast<double>(std::max<std::uint64_t>(
                           1, r.dpor.nodes_visited));
  char buf[32];
  std::snprintf(buf, sizeof buf, "%s%.1fx", r.naive.exhausted ? "" : ">",
                ratio);
  return buf;
}

}  // namespace

int main() {
  const std::uint64_t cap = 2'000'000;
  std::vector<Row> rows;
  rows.push_back(run_pair("signal 1w x 1p d16", signal_builder(1, 1),
                          signal_checker(), 16, cap));
  rows.push_back(run_pair("signal 2w x 1p d24", signal_builder(2, 1),
                          signal_checker(), 24, cap));
  rows.push_back(run_pair("signal 3w x 1p d28", signal_builder(3, 1),
                          signal_checker(), 28, cap));
  rows.push_back(run_pair("mutex tas 2p d17", mutex_builder(2),
                          mutex_checker(), 17, cap));
  rows.push_back(run_pair("mutex tas 3p d20", mutex_builder(3),
                          mutex_checker(), 20, cap));

  std::puts("explorer reduction: naive vs DPOR, identical bounds");
  TextTable t;
  t.set_header({"config", "naive nodes", "dpor nodes", "reduction",
                "naive ms", "dpor ms", "verdicts agree"});
  for (const Row& r : rows) {
    const bool agree =
        r.naive.violation.has_value() == r.dpor.violation.has_value();
    t.add_row({r.config, nodes_cell(r.naive), nodes_cell(r.dpor),
               reduction_cell(r), fixed(r.naive_ms), fixed(r.dpor_ms),
               agree ? "yes" : "NO"});
  }
  std::fputs(t.render().c_str(), stdout);

  std::puts("");
  std::puts("parallel scaling on signal 3w x 1p (verdicts bit-identical)");
  TextTable p;
  p.set_header({"workers", "nodes", "exhausted", "ms"});
  for (const int workers : {1, 2, 4}) {
    const auto build = signal_builder(3, 1);
    const auto t0 = std::chrono::steady_clock::now();
    const ExploreResult r =
        explore_dpor(build, signal_checker(),
                     {.max_depth = 28, .max_nodes = cap, .workers = workers});
    p.add_row({std::to_string(workers), std::to_string(r.nodes_visited),
               r.exhausted ? "yes" : "no", fixed(ms_since(t0))});
  }
  std::fputs(p.render().c_str(), stdout);
  return 0;
}
