// Explorer benchmark — how far partial-order reduction actually reaches.
//
// For a ladder of small configurations (signaling with growing waiter
// counts, mutex with growing process counts) this runs the naive
// explorer and explore_dpor under identical bounds and reports nodes
// visited, whether each search exhausted its tree, the measured reduction
// factor, and wall time. Where the naive explorer trips the node cap the
// reduction column shows a lower bound (">Nx"): the reduced search proved
// the whole space while the unreduced one could not finish a fraction of
// it. Parallel scaling is reported separately on the largest config
// (workers 1/2/4, identical verdicts by construction).
//
// `--perf-suite` instead measures snapshot-based state reconstruction
// against from-scratch replay on a pinned reference exploration (the CI
// perf-smoke gate): the same tree is explored in SnapshotMode::kReplay and
// SnapshotMode::kSnapshot, results are checked identical, and a schema-v1
// BENCH_PERF_EXPLORE.json records both rows. `--gate-steps X` fails the run
// unless replayed_steps shrink by at least X (deterministic);
// `--gate-speedup Y` unless wall clock improves by at least Y.
//
// `--cli PATH` additionally runs the multi-process shard-scaling series:
// the pinned shard reference workload end-to-end through the real
// `rmrsim_cli explore --shards S` for S in {1, 2, 4, 8}, each report
// byte-compared against the 1-shard report (any divergence fails the
// suite), with wall-clock rows appended to BENCH_PERF_EXPLORE.json.
// `--gate-shard-speedup Y` fails the run unless 4 shards beat 1 shard by
// at least Y on wall clock; the gate auto-skips (with a notice) on hosts
// with fewer than 4 CPUs, where the speedup is physically unreachable —
// the byte-parity check still runs and still fails loudly there.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/table.h"
#include "harness/artifact.h"
#include "harness/sweep.h"
#include "memory/shared_memory.h"
#include "mutex/lock.h"
#include "mutex/simple_locks.h"
#include "signaling/algorithm.h"
#include "signaling/checker.h"
#include "signaling/dsm_registration.h"
#include "verify/dpor.h"
#include "verify/explorer.h"

using namespace rmrsim;

namespace {

ExploreBuilder signal_builder(int waiters, int polls) {
  const int nprocs = waiters + 1;
  return [=]() {
    ExploreInstance inst;
    inst.mem = make_dsm(nprocs);
    auto alg = std::make_shared<DsmRegistrationSignal>(
        *inst.mem, static_cast<ProcId>(nprocs - 1));
    std::vector<Program> programs;
    for (int i = 0; i < waiters; ++i) {
      programs.emplace_back([a = alg.get(), polls](ProcCtx& ctx) {
        return polling_waiter(ctx, a, polls);
      });
    }
    programs.emplace_back(
        [a = alg.get()](ProcCtx& ctx) { return signaler(ctx, a); });
    inst.sim = std::make_unique<Simulation>(*inst.mem, std::move(programs));
    inst.keepalive = alg;
    return inst;
  };
}

ExploreBuilder mutex_builder(int nprocs) {
  return [=]() {
    ExploreInstance inst;
    inst.mem = make_dsm(nprocs);
    auto lock = std::make_shared<TasLock>(*inst.mem);
    std::vector<Program> programs;
    for (int p = 0; p < nprocs; ++p) {
      programs.emplace_back([l = lock.get()](ProcCtx& ctx) {
        return mutex_worker(ctx, l, /*passages=*/1);
      });
    }
    inst.sim = std::make_unique<Simulation>(*inst.mem, std::move(programs));
    inst.keepalive = lock;
    return inst;
  };
}

ExploreChecker signal_checker() {
  return [](const History& h) -> std::optional<std::string> {
    if (const auto v = check_polling_spec(h)) return v->what;
    return std::nullopt;
  };
}

ExploreChecker mutex_checker() {
  return [](const History& h) -> std::optional<std::string> {
    if (const auto v = check_mutual_exclusion(h)) return v->what;
    return std::nullopt;
  };
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct Row {
  std::string config;
  ExploreResult naive;
  ExploreResult dpor;
  double naive_ms = 0;
  double dpor_ms = 0;
};

Row run_pair(std::string config, const ExploreBuilder& build,
             const ExploreChecker& check, int depth,
             std::uint64_t max_nodes) {
  Row r;
  r.config = std::move(config);
  auto t0 = std::chrono::steady_clock::now();
  r.naive = explore_all_schedules(build, check,
                                  {.max_depth = depth, .max_nodes = max_nodes});
  r.naive_ms = ms_since(t0);
  t0 = std::chrono::steady_clock::now();
  r.dpor = explore_dpor(build, check,
                        {.max_depth = depth, .max_nodes = max_nodes});
  r.dpor_ms = ms_since(t0);
  return r;
}

std::string nodes_cell(const ExploreResult& r) {
  return std::to_string(r.nodes_visited) + (r.exhausted ? "" : " (cap)");
}

std::string reduction_cell(const Row& r) {
  const double ratio = static_cast<double>(r.naive.nodes_visited) /
                       static_cast<double>(std::max<std::uint64_t>(
                           1, r.dpor.nodes_visited));
  char buf[32];
  std::snprintf(buf, sizeof buf, "%s%.1fx", r.naive.exhausted ? "" : ">",
                ratio);
  return buf;
}

// ---- perf suite (--perf-suite) --------------------------------------

/// The pinned reference exploration for the snapshot-vs-replay CI gate:
/// deep enough that from-scratch replay pays the full O(depth) tax per
/// node, capped so both modes visit exactly the same 500k-node tree.
constexpr int kRefWaiters = 3;
constexpr int kRefPolls = 2;
constexpr int kRefDepth = 32;
constexpr std::uint64_t kRefMaxNodes = 500'000;

struct PerfRun {
  ExploreResult result;
  double ms_per_run = 0;
  std::uint64_t runs = 0;
};

PerfRun time_explore(SnapshotMode mode, double min_seconds) {
  ExploreOptions opt;
  opt.max_depth = kRefDepth;
  opt.max_nodes = kRefMaxNodes;
  opt.snapshot_mode = mode;
  const ExploreBuilder build = signal_builder(kRefWaiters, kRefPolls);
  const ExploreChecker check = signal_checker();
  PerfRun out;
  out.result = explore_all_schedules(build, check, opt);  // warmup + verdict
  double seconds = 0;
  while (seconds < min_seconds) {
    const auto t0 = std::chrono::steady_clock::now();
    explore_all_schedules(build, check, opt);
    seconds += ms_since(t0) / 1e3;
    ++out.runs;
  }
  out.ms_per_run = seconds * 1e3 / static_cast<double>(out.runs);
  return out;
}

MetricsRegistry perf_metrics(const PerfRun& r, bool deterministic) {
  MetricsRegistry reg;
  // --deterministic keeps only the counters that are a pure function of the
  // search (steps, hits, bytes): two runs of the suite then produce
  // byte-identical artifacts, which is what lets CI diff them.
  if (!deterministic) {
    reg.set("ms_per_run", r.ms_per_run);
    reg.set("nodes_per_sec",
            static_cast<double>(r.result.nodes_visited) / (r.ms_per_run / 1e3));
  }
  reg.set("replayed_steps", static_cast<double>(r.result.stats.replayed_steps));
  reg.set("snapshot_hits", static_cast<double>(r.result.stats.snapshot_hits));
  reg.set("snapshot_misses",
          static_cast<double>(r.result.stats.snapshot_misses));
  reg.set("snapshots_taken",
          static_cast<double>(r.result.stats.snapshots_taken));
  reg.set("snapshot_evictions",
          static_cast<double>(r.result.stats.snapshot_evictions));
  reg.set("snapshot_delta_steps",
          static_cast<double>(r.result.stats.snapshot_delta_steps));
  reg.set("snapshot_peak_bytes",
          static_cast<double>(r.result.stats.snapshot_peak_bytes));
  return reg;
}

// ---- multi-process shard scaling (--cli) -----------------------------

/// The pinned shard-scaling workload: heavy enough (~2M nodes, seconds of
/// wall clock) that per-item subtree exploration dominates snapshot
/// shipping and process plumbing, and it exhausts well under its node cap
/// — sharded runs are byte-identical unconditionally only when the budget
/// does not trip mid-round.
constexpr int kShardWaiters = 3;
constexpr int kShardPolls = 2;
constexpr int kShardDepth = 32;
constexpr std::uint64_t kShardMaxNodes = 3'000'000;
const int kShardCounts[] = {1, 2, 4, 8};

struct ShardRun {
  int shards = 1;
  double ms_per_run = 0;
  std::uint64_t runs = 0;
  std::string report;  // full text of the --report file
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// One end-to-end timed series at a fixed shard count: fork/exec the real
/// CLI (coordinator, workers, pipes and all) and time the whole process
/// tree wall-to-wall. Returns false if any invocation exits nonzero.
bool time_shards(const std::string& cli, int shards, double min_seconds,
                 const std::string& out_dir, ShardRun* out) {
  const std::string report =
      out_dir + "/.shard_report_" + std::to_string(shards) + ".txt";
  const std::string cmd =
      "'" + cli + "' explore --target signal --alg registration" +
      " --waiters " + std::to_string(kShardWaiters) + " --polls " +
      std::to_string(kShardPolls) + " --depth " +
      std::to_string(kShardDepth) + " --max-nodes " +
      std::to_string(kShardMaxNodes) + " --shards " +
      std::to_string(shards) + " --report '" + report +
      "' > /dev/null 2>&1";
  out->shards = shards;
  double seconds = 0;
  while (seconds < min_seconds || out->runs == 0) {
    const auto t0 = std::chrono::steady_clock::now();
    if (std::system(cmd.c_str()) != 0) {
      std::fprintf(stderr, "shard series: command failed: %s\n", cmd.c_str());
      return false;
    }
    seconds += ms_since(t0) / 1e3;
    ++out->runs;
  }
  out->ms_per_run = seconds * 1e3 / static_cast<double>(out->runs);
  out->report = read_file(report);
  std::remove(report.c_str());
  return out->report.empty() ? false : true;
}

int run_perf_suite(const std::string& out_dir, double min_seconds,
                   double gate_steps, double gate_speedup,
                   const std::string& cli, double gate_shard_speedup,
                   bool deterministic) {
  const auto wall0 = std::chrono::steady_clock::now();
  const PerfRun replay = time_explore(SnapshotMode::kReplay, min_seconds);
  const PerfRun snap = time_explore(SnapshotMode::kSnapshot, min_seconds);

  std::vector<ShardRun> shard_runs;
  if (!cli.empty()) {
    for (const int s : kShardCounts) {
      ShardRun run;
      if (!time_shards(cli, s, min_seconds, out_dir, &run)) return 1;
      shard_runs.push_back(std::move(run));
    }
    // Byte-identity across shard counts is the whole point of the
    // deterministic merge: any divergence from the 1-shard report is a
    // correctness failure, not a perf question.
    for (const ShardRun& run : shard_runs) {
      if (run.report != shard_runs.front().report) {
        std::fprintf(stderr,
                     "SHARD PARITY FAILED: --shards %d report diverged from "
                     "--shards 1\n",
                     run.shards);
        return 1;
      }
    }
  }

  // Identical-results check: snapshot mode must change nothing observable.
  const bool same =
      replay.result.nodes_visited == snap.result.nodes_visited &&
      replay.result.complete_schedules == snap.result.complete_schedules &&
      replay.result.exhausted == snap.result.exhausted &&
      replay.result.violation == snap.result.violation &&
      replay.result.violating_schedule == snap.result.violating_schedule;
  if (!same) {
    std::fprintf(stderr,
                 "PERF PARITY FAILED: snapshot mode diverged from replay "
                 "(nodes %llu vs %llu)\n",
                 static_cast<unsigned long long>(replay.result.nodes_visited),
                 static_cast<unsigned long long>(snap.result.nodes_visited));
    return 1;
  }

  SweepSpec spec;
  spec.name = "PERF_EXPLORE";
  spec.models = {"dsm"};
  spec.algorithms = {"explore_replay", "explore_snapshot"};
  for (const ShardRun& run : shard_runs) {
    spec.algorithms.push_back("explore_shards" + std::to_string(run.shards));
  }
  spec.ns = {kRefWaiters};
  SweepResult result;
  result.spec = spec;
  result.workers = 1;
  for (std::size_t i = 0; i < spec.grid_size(); ++i) {
    SweepPointResult pr;
    pr.point = spec.point_at(i);
    if (pr.point.algorithm.rfind("explore_shards", 0) == 0) {
      const int s = std::atoi(pr.point.algorithm.c_str() +
                              std::strlen("explore_shards"));
      for (const ShardRun& run : shard_runs) {
        if (run.shards != s) continue;
        MetricsRegistry reg;
        reg.set("shards", static_cast<double>(run.shards));
        reg.set("report_bytes", static_cast<double>(run.report.size()));
        if (!deterministic) {
          reg.set("ms_per_run", run.ms_per_run);
          reg.set("speedup_vs_1shard",
                  shard_runs.front().ms_per_run / run.ms_per_run);
        }
        pr.metrics = std::move(reg);
      }
    } else {
      pr.metrics = perf_metrics(
          pr.point.algorithm == "explore_replay" ? replay : snap,
          deterministic);
    }
    result.points.push_back(std::move(pr));
  }
  result.wall_ms = ms_since(wall0);

  BenchArtifact artifact;
  artifact.name = spec.name;
  artifact.title = "explorer snapshot-vs-replay reference config";
  artifact.generator = "bench_explore --perf-suite";
  artifact.git = git_describe();
  artifact.result = result;
  const std::string path =
      write_artifact(artifact, out_dir, /*include_wall_time=*/!deterministic);

  const double steps_reduction =
      static_cast<double>(replay.result.stats.replayed_steps) /
      static_cast<double>(
          std::max<std::uint64_t>(1, snap.result.stats.replayed_steps));
  const double speedup = replay.ms_per_run / snap.ms_per_run;
  std::printf("perf explore reference: signal %dw x %dp depth %d, %llu nodes\n",
              kRefWaiters, kRefPolls, kRefDepth,
              static_cast<unsigned long long>(snap.result.nodes_visited));
  std::printf("perf explore replay:   %10.1f ms/run  %12llu replayed steps\n",
              replay.ms_per_run,
              static_cast<unsigned long long>(replay.result.stats.replayed_steps));
  std::printf("perf explore snapshot: %10.1f ms/run  %12llu replayed steps\n",
              snap.ms_per_run,
              static_cast<unsigned long long>(snap.result.stats.replayed_steps));
  std::printf("perf explore steps reduction %.2fx, wall-clock speedup %.2fx\n",
              steps_reduction, speedup);
  std::printf("perf suite written: %s\n", path.c_str());
  if (gate_steps > 0 && steps_reduction < gate_steps) {
    std::fprintf(stderr,
                 "PERF GATE FAILED: replayed-steps reduction %.2fx < required "
                 "%.2fx\n",
                 steps_reduction, gate_steps);
    return 1;
  }
  if (gate_speedup > 0 && speedup < gate_speedup) {
    std::fprintf(stderr,
                 "PERF GATE FAILED: wall-clock speedup %.2fx < required "
                 "%.2fx\n",
                 speedup, gate_speedup);
    return 1;
  }

  if (!shard_runs.empty()) {
    std::printf(
        "shard scaling reference: signal %dw x %dp depth %d (byte-identical "
        "reports)\n",
        kShardWaiters, kShardPolls, kShardDepth);
    for (const ShardRun& run : shard_runs) {
      std::printf("perf explore shards=%d: %10.1f ms/run  %.2fx vs 1 shard\n",
                  run.shards, run.ms_per_run,
                  shard_runs.front().ms_per_run / run.ms_per_run);
    }
    if (gate_shard_speedup > 0) {
      double ms4 = 0;
      for (const ShardRun& run : shard_runs) {
        if (run.shards == 4) ms4 = run.ms_per_run;
      }
      const double shard_speedup =
          ms4 > 0 ? shard_runs.front().ms_per_run / ms4 : 0;
      const unsigned cpus = std::thread::hardware_concurrency();
      if (cpus < 4) {
        std::printf(
            "perf shard gate skipped: %u CPUs < 4, a %.2fx wall-clock "
            "speedup is unreachable (measured %.2fx; parity still "
            "enforced)\n",
            cpus, gate_shard_speedup, shard_speedup);
      } else if (shard_speedup < gate_shard_speedup) {
        std::fprintf(stderr,
                     "PERF GATE FAILED: 4-shard wall-clock speedup %.2fx < "
                     "required %.2fx\n",
                     shard_speedup, gate_shard_speedup);
        return 1;
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool perf_suite = false;
  bool deterministic = false;
  std::string out_dir = ".";
  std::string cli;
  double min_seconds = 0.5;
  double gate_steps = 0;
  double gate_speedup = 0;
  double gate_shard_speedup = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--perf-suite") == 0) {
      perf_suite = true;
    } else if (std::strcmp(argv[i], "--deterministic") == 0) {
      deterministic = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--cli") == 0 && i + 1 < argc) {
      cli = argv[++i];
    } else if (std::strcmp(argv[i], "--min-time") == 0 && i + 1 < argc) {
      min_seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--gate-steps") == 0 && i + 1 < argc) {
      gate_steps = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--gate-speedup") == 0 && i + 1 < argc) {
      gate_speedup = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--gate-shard-speedup") == 0 &&
               i + 1 < argc) {
      gate_shard_speedup = std::atof(argv[++i]);
    }
  }
  if (perf_suite) {
    return run_perf_suite(out_dir, min_seconds, gate_steps, gate_speedup, cli,
                          gate_shard_speedup, deterministic);
  }

  const std::uint64_t cap = 2'000'000;
  std::vector<Row> rows;
  rows.push_back(run_pair("signal 1w x 1p d16", signal_builder(1, 1),
                          signal_checker(), 16, cap));
  rows.push_back(run_pair("signal 2w x 1p d24", signal_builder(2, 1),
                          signal_checker(), 24, cap));
  rows.push_back(run_pair("signal 3w x 1p d28", signal_builder(3, 1),
                          signal_checker(), 28, cap));
  rows.push_back(run_pair("mutex tas 2p d17", mutex_builder(2),
                          mutex_checker(), 17, cap));
  rows.push_back(run_pair("mutex tas 3p d20", mutex_builder(3),
                          mutex_checker(), 20, cap));

  std::puts("explorer reduction: naive vs DPOR, identical bounds");
  TextTable t;
  t.set_header({"config", "naive nodes", "dpor nodes", "reduction",
                "naive ms", "dpor ms", "verdicts agree"});
  for (const Row& r : rows) {
    const bool agree =
        r.naive.violation.has_value() == r.dpor.violation.has_value();
    t.add_row({r.config, nodes_cell(r.naive), nodes_cell(r.dpor),
               reduction_cell(r), fixed(r.naive_ms), fixed(r.dpor_ms),
               agree ? "yes" : "NO"});
  }
  std::fputs(t.render().c_str(), stdout);

  std::puts("");
  std::puts("parallel scaling on signal 3w x 1p (verdicts bit-identical)");
  TextTable p;
  p.set_header({"workers", "nodes", "exhausted", "ms"});
  for (const int workers : {1, 2, 4}) {
    const auto build = signal_builder(3, 1);
    const auto t0 = std::chrono::steady_clock::now();
    const ExploreResult r =
        explore_dpor(build, signal_checker(),
                     {.max_depth = 28, .max_nodes = cap, .workers = workers});
    p.add_row({std::to_string(workers), std::to_string(r.nodes_visited),
               r.exhausted ? "yes" : "no", fixed(ms_since(t0))});
  }
  std::fputs(p.render().c_str(), stdout);
  return 0;
}
