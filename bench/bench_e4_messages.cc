// Experiment E4 — Section 8: the RMR/message "exchange rate".
//
// Claims reproduced:
//  (a) on a broadcast bus, interconnect messages == RMRs ("at par");
//  (b) under an idealized directory (exact sharer sets), invalidations are
//      bounded by RMRs — a copy is created by an RMR and invalidated at
//      most once — so amortized messages track amortized RMRs;
//  (c) under a realistic coarse directory (1 sticky bit per line), writes
//      broadcast blindly and message complexity exceeds RMR complexity, so
//      the paper's RMR separation must NOT be read as a message-complexity
//      separation on large-scale CC machines.
//
// Driven by the e4 entry of the experiment registry: the flag workload
// with half the processors idle, and the producer/consumer ping-pong where
// the coarse directory's blind broadcasts diverge. The fitter pins bus and
// ideal-directory msgs/RMR to O(1) and the coarse ping-pong ratio to
// super-constant. The run is written to BENCH_e4.json.
#include <cstdio>
#include <string>

#include "coherence/fleet.h"
#include "common/table.h"
#include "harness/experiments.h"

using namespace rmrsim;

int main() {
  std::printf(
      "E4: Section 8 message accounting — flag signaling, CC write-through\n"
      "(half the processors idle; signaler delays 16 polls)\n\n");

  const Experiment* exp = find_experiment("e4");
  const BenchArtifact artifact =
      run_experiment(*exp, /*workers=*/2, "bench_e4_messages");

  TextTable table;
  table.set_header({"N procs", "RMRs", "bus msgs", "ideal-dir msgs",
                    "ideal inval", "coarse msgs", "coarse inval",
                    "superfluous", "coarse msgs/RMR"});
  for (const SweepPointResult& pr : artifact.result.points) {
    if (pr.point.algorithm != "flag-half-idle") continue;
    const MetricsRegistry& m = pr.metrics;
    table.add_row(
        {std::to_string(pr.point.n),
         format_metric_number(m.value("ledger.total_rmrs")),
         format_metric_number(m.value("msgs.bus-broadcast.total")),
         format_metric_number(m.value("msgs.ideal-directory.total")),
         format_metric_number(m.value("msgs.ideal-directory.invalidations")),
         format_metric_number(m.value("msgs.coarse-directory.total")),
         format_metric_number(m.value("msgs.coarse-directory.invalidations")),
         format_metric_number(m.value("msgs.coarse-directory.superfluous")),
         fixed(m.value("msgs.coarse.per_rmr"))});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nProducer/consumer ping-pong (1 writer, 1 reader, N-2 idle, 64 "
      "rounds):\n");
  TextTable t2;
  t2.set_header({"N procs", "RMRs", "ideal-dir msgs/RMR", "coarse msgs/RMR"});
  for (const SweepPointResult& pr : artifact.result.points) {
    if (pr.point.algorithm != "ping-pong") continue;
    const MetricsRegistry& m = pr.metrics;
    t2.add_row({std::to_string(pr.point.n),
                format_metric_number(m.value("ledger.total_rmrs")),
                fixed(m.value("msgs.ideal.per_rmr")),
                fixed(m.value("msgs.coarse.per_rmr"))});
  }
  std::fputs(t2.render().c_str(), stdout);

  std::printf("\nFitted growth classes:\n");
  std::fputs(render_fit_table(artifact).c_str(), stdout);
  std::printf("wrote %s\n", write_artifact(artifact).c_str());

  // The state-machine fleet on the same grid: each protocol's messages AND
  // cycles per RMR must stay O(1) on both workloads (protocol invariance of
  // the asymptotic classes). One artifact per protocol.
  std::printf("\nProtocol fleet at N = 64 (flag-half-idle / ping-pong):\n");
  TextTable fleet_table;
  fleet_table.set_header({"protocol", "workload", "msgs", "msgs/RMR",
                          "cycles", "cycles/RMR", "invariants"});
  bool fleet_ok = true;
  for (const std::string& proto : protocol_names()) {
    const Experiment* pe = find_experiment("e4_" + proto);
    const BenchArtifact pa =
        run_experiment(*pe, /*workers=*/2, "bench_e4_messages");
    for (const char* algo : {"flag-half-idle", "ping-pong"}) {
      const SweepPointResult* pr = find_point(pa.result, "cc", algo, 64);
      if (pr == nullptr) continue;
      const MetricsRegistry& m = pr->metrics;
      fleet_table.add_row(
          {proto, algo,
           format_metric_number(m.value("msgs." + proto + ".total")),
           fixed(m.value("msgs." + proto + ".per_rmr")),
           format_metric_number(m.value("cycles." + proto + ".total")),
           fixed(m.value("cycles." + proto + ".per_rmr")),
           m.value("protocol.invariants_ok") == 1.0 ? "ok" : "VIOLATED"});
    }
    std::printf("%s fit:\n%s", proto.c_str(), render_fit_table(pa).c_str());
    std::printf("wrote %s\n", write_artifact(pa).c_str());
    if (!artifact_matches(pa)) fleet_ok = false;
  }
  std::fputs(fleet_table.render().c_str(), stdout);

  std::printf(
      "\nExpected shape (paper): bus msgs == RMRs exactly; ideal-directory\n"
      "msgs/RMR stays a small constant (each cached copy dies at most\n"
      "once); the coarse directory's msgs/RMR ratio grows ~N/2 in the\n"
      "ping-pong workload via superfluous invalidations — Section 8's\n"
      "caveat: the RMR separation is not a message-complexity separation\n"
      "on large-scale CC machines. The snooping fleet (MESI, MESIF, MOESI,\n"
      "Dragon) stays at par: O(1) messages and cycles per RMR throughout.\n");
  return (artifact_matches(artifact) && fleet_ok) ? 0 : 1;
}
