// Experiment E4 — Section 8: the RMR/message "exchange rate".
//
// Claims reproduced:
//  (a) on a broadcast bus, interconnect messages == RMRs ("at par");
//  (b) under an idealized directory (exact sharer sets), invalidations are
//      bounded by RMRs — a copy is created by an RMR and invalidated at
//      most once — so amortized messages track amortized RMRs;
//  (c) under a realistic coarse directory (1 sticky bit per line), writes
//      broadcast blindly and message complexity exceeds RMR complexity, so
//      the paper's RMR separation must NOT be read as a message-complexity
//      separation on large-scale CC machines.
//
// Workload: flag signaling with a fraction of idle processors (so blind
// broadcasts are visibly wasteful), N sweep, CC write-through model.
#include <cstdio>
#include <memory>

#include "coherence/protocols.h"
#include "common/table.h"
#include "memory/cc_model.h"
#include "sched/schedulers.h"
#include "signaling/cc_flag.h"

using namespace rmrsim;

int main() {
  std::printf(
      "E4: Section 8 message accounting — flag signaling, CC write-through\n"
      "(half the processors idle; signaler delays 16 polls)\n\n");
  TextTable table;
  table.set_header({"N procs", "RMRs", "bus msgs", "ideal-dir msgs",
                    "ideal inval", "coarse msgs", "coarse inval",
                    "superfluous", "coarse msgs/RMR"});
  for (const int n : {8, 16, 32, 64, 128, 256}) {
    const int n_waiters = n / 2 - 1;
    const int n_idle = n - n_waiters - 1;
    auto mem = make_cc(n);
    BusBroadcastCounter bus;
    IdealDirectoryCounter ideal;
    CoarseDirectoryCounter coarse(n);
    ListenerFanout fan;
    fan.add(&bus);
    fan.add(&ideal);
    fan.add(&coarse);
    mem->set_listener(&fan);

    CcFlagSignal alg(*mem);
    std::vector<Program> programs;
    for (int i = 0; i < n_waiters; ++i) {
      programs.emplace_back(
          [&alg](ProcCtx& ctx) { return polling_waiter(ctx, &alg, 1'000'000); });
    }
    for (int i = 0; i < n_idle; ++i) programs.emplace_back(Program{});
    programs.emplace_back(
        [&alg](ProcCtx& ctx) { return signaler(ctx, &alg, 16); });
    Simulation sim(*mem, std::move(programs));
    RoundRobinScheduler rr;
    const auto result = sim.run(rr, 100'000'000);
    if (!result.all_terminated) {
      std::printf("N=%d did not complete!\n", n);
      return 1;
    }
    const double rmrs = static_cast<double>(mem->ledger().total_rmrs());
    table.add_row({std::to_string(n),
                   std::to_string(mem->ledger().total_rmrs()),
                   std::to_string(bus.total_messages()),
                   std::to_string(ideal.total_messages()),
                   std::to_string(ideal.invalidation_messages()),
                   std::to_string(coarse.total_messages()),
                   std::to_string(coarse.invalidation_messages()),
                   std::to_string(coarse.superfluous_invalidations()),
                   fixed(static_cast<double>(coarse.total_messages()) / rmrs)});
  }
  std::fputs(table.render().c_str(), stdout);

  // Second workload: a producer repeatedly updates one location while one
  // consumer re-reads it — the regime where a coarse directory's blind
  // broadcasts make amortized message complexity exceed amortized RMR
  // complexity *asymptotically* (the paper's closing caveat in Section 8).
  std::printf(
      "\nProducer/consumer ping-pong (1 writer, 1 reader, N-2 idle, 64 "
      "rounds):\n");
  TextTable t2;
  t2.set_header({"N procs", "RMRs", "ideal-dir msgs/RMR", "coarse msgs/RMR"});
  for (const int n : {8, 16, 32, 64, 128, 256}) {
    auto mem = make_cc(n);
    IdealDirectoryCounter ideal;
    CoarseDirectoryCounter coarse(n);
    ListenerFanout fan;
    fan.add(&ideal);
    fan.add(&coarse);
    mem->set_listener(&fan);
    const VarId v = mem->allocate_global(0);
    for (int round = 0; round < 64; ++round) {
      mem->apply(0, MemOp::write(v, round));  // producer
      mem->apply(1, MemOp::read(v));          // consumer re-caches
    }
    const double rmrs = static_cast<double>(mem->ledger().total_rmrs());
    t2.add_row({std::to_string(n),
                std::to_string(mem->ledger().total_rmrs()),
                fixed(static_cast<double>(ideal.total_messages()) / rmrs),
                fixed(static_cast<double>(coarse.total_messages()) / rmrs)});
  }
  std::fputs(t2.render().c_str(), stdout);
  std::printf(
      "\nExpected shape (paper): bus msgs == RMRs exactly; ideal-directory\n"
      "msgs/RMR stays a small constant (each cached copy dies at most\n"
      "once); the coarse directory's msgs/RMR ratio grows ~N/2 in the\n"
      "ping-pong workload via superfluous invalidations — Section 8's\n"
      "caveat: the RMR separation is not a message-complexity separation\n"
      "on large-scale CC machines.\n");
  return 0;
}
