// Experiment E4 — Section 8: the RMR/message "exchange rate".
//
// Claims reproduced:
//  (a) on a broadcast bus, interconnect messages == RMRs ("at par");
//  (b) under an idealized directory (exact sharer sets), invalidations are
//      bounded by RMRs — a copy is created by an RMR and invalidated at
//      most once — so amortized messages track amortized RMRs;
//  (c) under a realistic coarse directory (1 sticky bit per line), writes
//      broadcast blindly and message complexity exceeds RMR complexity, so
//      the paper's RMR separation must NOT be read as a message-complexity
//      separation on large-scale CC machines.
//
// Driven by the e4 entry of the experiment registry: the flag workload
// with half the processors idle, and the producer/consumer ping-pong where
// the coarse directory's blind broadcasts diverge. The fitter pins bus and
// ideal-directory msgs/RMR to O(1) and the coarse ping-pong ratio to
// super-constant. The run is written to BENCH_e4.json.
#include <cstdio>

#include "common/table.h"
#include "harness/experiments.h"

using namespace rmrsim;

int main() {
  std::printf(
      "E4: Section 8 message accounting — flag signaling, CC write-through\n"
      "(half the processors idle; signaler delays 16 polls)\n\n");

  const Experiment* exp = find_experiment("e4");
  const BenchArtifact artifact =
      run_experiment(*exp, /*workers=*/2, "bench_e4_messages");

  TextTable table;
  table.set_header({"N procs", "RMRs", "bus msgs", "ideal-dir msgs",
                    "ideal inval", "coarse msgs", "coarse inval",
                    "superfluous", "coarse msgs/RMR"});
  for (const SweepPointResult& pr : artifact.result.points) {
    if (pr.point.algorithm != "flag-half-idle") continue;
    const MetricsRegistry& m = pr.metrics;
    table.add_row(
        {std::to_string(pr.point.n),
         format_metric_number(m.value("ledger.total_rmrs")),
         format_metric_number(m.value("msgs.bus-broadcast.total")),
         format_metric_number(m.value("msgs.ideal-directory.total")),
         format_metric_number(m.value("msgs.ideal-directory.invalidations")),
         format_metric_number(m.value("msgs.coarse-directory.total")),
         format_metric_number(m.value("msgs.coarse-directory.invalidations")),
         format_metric_number(m.value("msgs.coarse-directory.superfluous")),
         fixed(m.value("msgs.coarse.per_rmr"))});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nProducer/consumer ping-pong (1 writer, 1 reader, N-2 idle, 64 "
      "rounds):\n");
  TextTable t2;
  t2.set_header({"N procs", "RMRs", "ideal-dir msgs/RMR", "coarse msgs/RMR"});
  for (const SweepPointResult& pr : artifact.result.points) {
    if (pr.point.algorithm != "ping-pong") continue;
    const MetricsRegistry& m = pr.metrics;
    t2.add_row({std::to_string(pr.point.n),
                format_metric_number(m.value("ledger.total_rmrs")),
                fixed(m.value("msgs.ideal.per_rmr")),
                fixed(m.value("msgs.coarse.per_rmr"))});
  }
  std::fputs(t2.render().c_str(), stdout);

  std::printf("\nFitted growth classes:\n");
  std::fputs(render_fit_table(artifact).c_str(), stdout);
  std::printf("wrote %s\n", write_artifact(artifact).c_str());

  std::printf(
      "\nExpected shape (paper): bus msgs == RMRs exactly; ideal-directory\n"
      "msgs/RMR stays a small constant (each cached copy dies at most\n"
      "once); the coarse directory's msgs/RMR ratio grows ~N/2 in the\n"
      "ping-pong workload via superfluous invalidations — Section 8's\n"
      "caveat: the RMR separation is not a message-complexity separation\n"
      "on large-scale CC machines.\n");
  return artifact_matches(artifact) ? 0 : 1;
}
