// Experiment E5 — Section 3 anchors: mutual exclusion RMR bounds.
//
// Claims reproduced (the simulator must recover the known literature
// results, or its RMR accounting cannot be trusted for the new ones):
//  (a) reads/writes: Theta(log N) RMRs per passage (Yang–Anderson), the
//      SAME order in CC and DSM — no model separation for ME;
//  (b) with Fetch-And-Store/CAS (MCS): O(1) per passage in both models;
//  (c) Anderson's FAI array lock: O(1) in CC but not local-spin in DSM;
//  (d) the ticket lock: O(contenders) per passage under contention.
//
// Driven by the e5 entry of the experiment registry (lock x model x N,
// full contention, round-robin, 3 passages each); this binary renders the
// classic pivot table, the fitter pins the literature classes, and the run
// is written to BENCH_e5.json.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/table.h"
#include "harness/experiments.h"

using namespace rmrsim;

namespace {

// Cell value matching the historical table: RMRs/passage, or the original
// sentinel codes when a run wedged (-1) or violated mutual exclusion (-2).
std::string cell(const BenchArtifact& artifact, const std::string& model,
                 const std::string& lock, int n) {
  const SweepPointResult* pr = find_point(artifact.result, model, lock, n);
  if (pr == nullptr) return "?";
  if (pr->metrics.value("run.completed") != 1.0) return fixed(-1.0);
  if (pr->metrics.value("spec.ok") != 1.0) return fixed(-2.0);
  return fixed(pr->metrics.value("rmrs.per_passage"));
}

}  // namespace

int main() {
  std::printf(
      "E5: Section 3 mutual exclusion anchors — RMRs per passage,\n"
      "full contention (all N loop acquire/release), round-robin\n\n");

  const Experiment* exp = find_experiment("e5");
  const BenchArtifact artifact =
      run_experiment(*exp, /*workers=*/2, "bench_e5_mutex_anchor");

  const std::vector<std::pair<const char*, const char*>> locks = {
      {"yang-anderson (r/w)", "ya"},
      {"mcs (FAS+CAS)", "mcs"},
      {"anderson-array (FAI)", "anderson"},
      {"ticket (FAI)", "ticket"},
      {"clh (FAS)", "clh"},
      {"bakery (r/w, FCFS)", "bakery"},
      {"peterson-tree (r/w)", "peterson"},
  };

  TextTable table;
  table.set_header({"lock", "N=4 DSM", "N=4 CC", "N=16 DSM", "N=16 CC",
                    "N=64 DSM", "N=64 CC", "N=256 DSM", "N=256 CC"});
  for (const auto& [label, name] : locks) {
    std::vector<std::string> row{label};
    for (const int n : {4, 16, 64, 256}) {
      for (const char* model : {"dsm", "cc"}) {
        row.push_back(cell(artifact, model, name, n));
      }
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nFitted growth classes:\n");
  std::fputs(render_fit_table(artifact).c_str(), stdout);
  std::printf("wrote %s\n", write_artifact(artifact).c_str());

  std::printf(
      "\nExpected shape (paper / literature): yang-anderson grows like\n"
      "log2(N) with DSM ~= CC (no separation for ME); mcs stays O(1) in\n"
      "both; anderson-array stays O(1) in CC but grows in DSM; ticket\n"
      "grows with contention in both. (-1 = did not complete, -2 = ME\n"
      "violation; neither should appear.)\n");
  return artifact_matches(artifact) ? 0 : 1;
}
