// Experiment E5 — Section 3 anchors: mutual exclusion RMR bounds.
//
// Claims reproduced (the simulator must recover the known literature
// results, or its RMR accounting cannot be trusted for the new ones):
//  (a) reads/writes: Theta(log N) RMRs per passage (Yang–Anderson), the
//      SAME order in CC and DSM — no model separation for ME;
//  (b) with Fetch-And-Store/CAS (MCS): O(1) per passage in both models;
//  (c) Anderson's FAI array lock: O(1) in CC but not local-spin in DSM;
//  (d) the ticket lock: O(contenders) per passage under contention.
#include <cstdio>
#include <functional>
#include <memory>

#include "common/table.h"
#include "memory/cc_model.h"
#include "mutex/bakery_lock.h"
#include "mutex/clh_lock.h"
#include "mutex/mcs_lock.h"
#include "mutex/peterson_lock.h"
#include "mutex/simple_locks.h"
#include "mutex/ya_lock.h"
#include "sched/schedulers.h"

using namespace rmrsim;

namespace {

using LockFactory = std::function<std::unique_ptr<MutexAlgorithm>(SharedMemory&)>;

double rmrs_per_passage(bool cc, const LockFactory& make, int n,
                        int passages) {
  auto mem = cc ? make_cc(n) : make_dsm(n);
  auto lock = make(*mem);
  std::vector<Program> programs;
  MutexAlgorithm* l = lock.get();
  for (int i = 0; i < n; ++i) {
    programs.emplace_back(
        [l, passages](ProcCtx& ctx) { return mutex_worker(ctx, l, passages); });
  }
  Simulation sim(*mem, std::move(programs));
  RoundRobinScheduler rr;
  const auto result = sim.run(rr, 200'000'000);
  if (!result.all_terminated) return -1.0;
  if (check_mutual_exclusion(sim.history()).has_value()) return -2.0;
  return static_cast<double>(mem->ledger().total_rmrs()) /
         static_cast<double>(n * passages);
}

}  // namespace

int main() {
  std::printf(
      "E5: Section 3 mutual exclusion anchors — RMRs per passage,\n"
      "full contention (all N loop acquire/release), round-robin\n\n");
  const std::vector<std::pair<const char*, LockFactory>> locks = {
      {"yang-anderson (r/w)",
       [](SharedMemory& m) { return std::make_unique<YangAndersonLock>(m); }},
      {"mcs (FAS+CAS)",
       [](SharedMemory& m) { return std::make_unique<McsLock>(m); }},
      {"anderson-array (FAI)",
       [](SharedMemory& m) { return std::make_unique<AndersonArrayLock>(m); }},
      {"ticket (FAI)",
       [](SharedMemory& m) { return std::make_unique<TicketLock>(m); }},
      {"clh (FAS)",
       [](SharedMemory& m) { return std::make_unique<ClhLock>(m); }},
      {"bakery (r/w, FCFS)",
       [](SharedMemory& m) { return std::make_unique<BakeryLock>(m); }},
      {"peterson-tree (r/w)",
       [](SharedMemory& m) {
         return std::make_unique<PetersonTournamentLock>(m);
       }},
  };

  TextTable table;
  table.set_header({"lock", "N=4 DSM", "N=4 CC", "N=16 DSM", "N=16 CC",
                    "N=64 DSM", "N=64 CC", "N=256 DSM", "N=256 CC"});
  for (const auto& [label, make] : locks) {
    std::vector<std::string> row{label};
    for (const int n : {4, 16, 64, 256}) {
      for (const bool cc : {false, true}) {
        row.push_back(fixed(rmrs_per_passage(cc, make, n, 3)));
      }
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nExpected shape (paper / literature): yang-anderson grows like\n"
      "log2(N) with DSM ~= CC (no separation for ME); mcs stays O(1) in\n"
      "both; anderson-array stays O(1) in CC but grows in DSM; ticket\n"
      "grows with contention in both. (-1 = did not complete, -2 = ME\n"
      "violation; neither should appear.)\n");
  return 0;
}
