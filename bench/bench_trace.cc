// Trace-workload throughput bench: how fast the workload engine parses,
// serializes, and replays traces.
//
// Not a paper experiment — this times the trace machinery itself (ops/sec
// through the bare cost models, through the full protocol fleet, and
// through the text/binary codecs) so regressions in replay throughput are
// visible. Complexity claims live in the bench_e* binaries and in the
// t1_* experiments.
//
// Two modes:
//  - default: run each config briefly and print the table.
//  - --perf-suite: runs the pinned configs with `--min-time` seconds of
//    wall clock each and writes a schema-v1 BENCH_PERF_TRACE.json through
//    the artifact writer. `--gate-ref R` exits nonzero when the reference
//    config (bare cc zipf replay, 32 procs) measures below R ops/sec —
//    the CI perf-smoke gate for the workload engine.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "coherence/fleet.h"
#include "harness/artifact.h"
#include "harness/drive.h"
#include "harness/sweep.h"
#include "workload/generators.h"
#include "workload/replay.h"
#include "workload/trace.h"

namespace rmrsim {
namespace {

/// The reference config for the CI gate: bare cc replay of the zipf trace
/// at this many processors.
constexpr int kReferenceProcs = 32;
constexpr const char* kReferenceAlgorithm = "replay_cc";

constexpr std::uint64_t kTraceOps = 50'000;

/// Runs `body` (which returns items processed) repeatedly until at least
/// `min_seconds` of wall clock is accumulated, after one warmup run.
template <typename Body>
std::pair<std::uint64_t, double> run_timed(double min_seconds, Body&& body) {
  using clock = std::chrono::steady_clock;
  body();  // warmup: page in code, fault in allocations
  std::uint64_t items = 0;
  double seconds = 0;
  while (seconds < min_seconds) {
    const auto t0 = clock::now();
    items += body();
    seconds += std::chrono::duration<double>(clock::now() - t0).count();
  }
  return {items, seconds};
}

Trace make_bench_trace(int procs) {
  GenSpec g;
  g.kind = "zipf";
  g.procs = procs;
  g.ops = kTraceOps;
  g.seed = 1;
  return generate_trace(g);
}

MetricsRegistry time_replay(const Trace& trace, const std::string& model,
                            const ReplayOptions& opts, double min_seconds) {
  const auto [ops, seconds] = run_timed(min_seconds, [&]() -> std::uint64_t {
    auto mem = make_model_by_name(model, trace.nprocs);
    replay_trace(trace, *mem, opts);
    return trace.ops.size();
  });
  MetricsRegistry reg;
  reg.set("trace_replay_ops_per_sec", static_cast<double>(ops) / seconds);
  reg.set("ns_per_trace_op", seconds * 1e9 / static_cast<double>(ops));
  return reg;
}

MetricsRegistry time_codec(const Trace& trace, bool binary,
                           double min_seconds) {
  const std::string blob =
      binary ? trace_to_binary(trace) : trace_to_text(trace);
  const auto [ops, seconds] = run_timed(min_seconds, [&]() -> std::uint64_t {
    const Trace parsed = binary ? parse_trace_binary(blob, "<bench>")
                                : parse_trace_text(blob, "<bench>");
    if (parsed.ops.size() != trace.ops.size()) std::abort();
    return trace.ops.size();
  });
  MetricsRegistry reg;
  reg.set("parse_ops_per_sec", static_cast<double>(ops) / seconds);
  reg.set("bytes_per_op",
          static_cast<double>(blob.size()) /
              static_cast<double>(trace.ops.size()));
  return reg;
}

int run_suite(const std::string& out_dir, double min_seconds,
              double gate_ref_ops_per_sec, bool write_json) {
  // Axes reused from the sweep schema: `algorithm` names the config, `n`
  // the processor count, `model` the memory model it exercises.
  SweepSpec spec;
  spec.name = "PERF_TRACE";
  spec.models = {"cc"};
  spec.algorithms = {"replay_cc",       "replay_dsm", "replay_fleet",
                     "replay_fleet_wb", "parse_text", "parse_binary"};
  spec.ns = {kReferenceProcs};

  SweepResult result;
  result.spec = spec;
  result.workers = 1;
  const auto wall0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < spec.grid_size(); ++i) {
    SweepPointResult pr;
    pr.point = spec.point_at(i);
    const Trace trace = make_bench_trace(pr.point.n);
    const std::string& alg = pr.point.algorithm;
    if (alg == "replay_cc") {
      pr.metrics = time_replay(trace, "cc", {}, min_seconds);
    } else if (alg == "replay_dsm") {
      pr.metrics = time_replay(trace, "dsm", {}, min_seconds);
    } else if (alg == "replay_fleet") {
      ReplayOptions opts;
      opts.protocols = protocol_names();
      pr.metrics = time_replay(trace, "cc", opts, min_seconds);
    } else if (alg == "replay_fleet_wb") {
      ReplayOptions opts;
      opts.protocols = protocol_names();
      opts.write_buffer = 8;
      pr.metrics = time_replay(trace, "cc", opts, min_seconds);
    } else if (alg == "parse_text") {
      pr.metrics = time_codec(trace, /*binary=*/false, min_seconds);
    } else if (alg == "parse_binary") {
      pr.metrics = time_codec(trace, /*binary=*/true, min_seconds);
    }
    result.points.push_back(std::move(pr));
  }
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall0)
                       .count();

  double ref = 0;
  for (const SweepPointResult& pr : result.points) {
    if (pr.point.algorithm == kReferenceAlgorithm &&
        pr.point.n == kReferenceProcs) {
      ref = pr.metrics.value("trace_replay_ops_per_sec");
    }
    for (const char* m : {"trace_replay_ops_per_sec", "ns_per_trace_op",
                          "parse_ops_per_sec", "bytes_per_op"}) {
      if (pr.metrics.has_value(m)) {
        std::printf("perf %-16s n=%-3d %-24s %14.0f\n",
                    pr.point.algorithm.c_str(), pr.point.n, m,
                    pr.metrics.value(m));
      }
    }
  }
  if (write_json) {
    BenchArtifact artifact;
    artifact.name = spec.name;
    artifact.title = "trace workload perf suite (wall-clock throughput)";
    artifact.generator = "bench_trace --perf-suite";
    artifact.git = git_describe();
    artifact.result = result;
    const std::string path = write_artifact(artifact, out_dir);
    std::printf("perf suite written: %s\n", path.c_str());
  }
  std::printf("reference config (%s, n=%d): %.0f ops/sec\n",
              kReferenceAlgorithm, kReferenceProcs, ref);
  if (gate_ref_ops_per_sec > 0 && ref < gate_ref_ops_per_sec) {
    std::fprintf(stderr,
                 "PERF GATE FAILED: reference %.0f ops/sec < required %.0f\n",
                 ref, gate_ref_ops_per_sec);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace rmrsim

int main(int argc, char** argv) {
  bool perf_suite = false;
  std::string out_dir = ".";
  double min_seconds = 0.5;
  double gate_ref = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--perf-suite") == 0) {
      perf_suite = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--min-time") == 0 && i + 1 < argc) {
      min_seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--gate-ref") == 0 && i + 1 < argc) {
      gate_ref = std::atof(argv[++i]);
    }
  }
  // Default mode: same configs, one short pass, no JSON.
  if (!perf_suite) min_seconds = 0.1;
  return rmrsim::run_suite(out_dir, min_seconds, gate_ref, perf_suite);
}
