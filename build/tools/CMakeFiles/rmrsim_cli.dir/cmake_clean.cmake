file(REMOVE_RECURSE
  "CMakeFiles/rmrsim_cli.dir/rmrsim_cli.cc.o"
  "CMakeFiles/rmrsim_cli.dir/rmrsim_cli.cc.o.d"
  "rmrsim_cli"
  "rmrsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmrsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
