# Empty compiler generated dependencies file for rmrsim_cli.
# This may be replaced when dependencies are built.
