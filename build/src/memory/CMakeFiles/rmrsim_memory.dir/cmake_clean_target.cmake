file(REMOVE_RECURSE
  "librmrsim_memory.a"
)
