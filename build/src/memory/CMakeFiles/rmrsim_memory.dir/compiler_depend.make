# Empty compiler generated dependencies file for rmrsim_memory.
# This may be replaced when dependencies are built.
