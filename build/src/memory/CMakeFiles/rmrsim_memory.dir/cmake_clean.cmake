file(REMOVE_RECURSE
  "CMakeFiles/rmrsim_memory.dir/cc_model.cc.o"
  "CMakeFiles/rmrsim_memory.dir/cc_model.cc.o.d"
  "CMakeFiles/rmrsim_memory.dir/ledger.cc.o"
  "CMakeFiles/rmrsim_memory.dir/ledger.cc.o.d"
  "CMakeFiles/rmrsim_memory.dir/memop.cc.o"
  "CMakeFiles/rmrsim_memory.dir/memop.cc.o.d"
  "CMakeFiles/rmrsim_memory.dir/shared_memory.cc.o"
  "CMakeFiles/rmrsim_memory.dir/shared_memory.cc.o.d"
  "CMakeFiles/rmrsim_memory.dir/store.cc.o"
  "CMakeFiles/rmrsim_memory.dir/store.cc.o.d"
  "librmrsim_memory.a"
  "librmrsim_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmrsim_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
