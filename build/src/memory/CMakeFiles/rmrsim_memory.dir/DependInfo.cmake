
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memory/cc_model.cc" "src/memory/CMakeFiles/rmrsim_memory.dir/cc_model.cc.o" "gcc" "src/memory/CMakeFiles/rmrsim_memory.dir/cc_model.cc.o.d"
  "/root/repo/src/memory/ledger.cc" "src/memory/CMakeFiles/rmrsim_memory.dir/ledger.cc.o" "gcc" "src/memory/CMakeFiles/rmrsim_memory.dir/ledger.cc.o.d"
  "/root/repo/src/memory/memop.cc" "src/memory/CMakeFiles/rmrsim_memory.dir/memop.cc.o" "gcc" "src/memory/CMakeFiles/rmrsim_memory.dir/memop.cc.o.d"
  "/root/repo/src/memory/shared_memory.cc" "src/memory/CMakeFiles/rmrsim_memory.dir/shared_memory.cc.o" "gcc" "src/memory/CMakeFiles/rmrsim_memory.dir/shared_memory.cc.o.d"
  "/root/repo/src/memory/store.cc" "src/memory/CMakeFiles/rmrsim_memory.dir/store.cc.o" "gcc" "src/memory/CMakeFiles/rmrsim_memory.dir/store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rmrsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
