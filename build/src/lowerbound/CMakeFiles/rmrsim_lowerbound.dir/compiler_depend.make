# Empty compiler generated dependencies file for rmrsim_lowerbound.
# This may be replaced when dependencies are built.
