file(REMOVE_RECURSE
  "librmrsim_lowerbound.a"
)
