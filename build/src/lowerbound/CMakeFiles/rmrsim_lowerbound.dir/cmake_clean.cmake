file(REMOVE_RECURSE
  "CMakeFiles/rmrsim_lowerbound.dir/adversary.cc.o"
  "CMakeFiles/rmrsim_lowerbound.dir/adversary.cc.o.d"
  "CMakeFiles/rmrsim_lowerbound.dir/independent_set.cc.o"
  "CMakeFiles/rmrsim_lowerbound.dir/independent_set.cc.o.d"
  "librmrsim_lowerbound.a"
  "librmrsim_lowerbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmrsim_lowerbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
