# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("memory")
subdirs("coherence")
subdirs("runtime")
subdirs("sched")
subdirs("history")
subdirs("signaling")
subdirs("mutex")
subdirs("primitives")
subdirs("lowerbound")
subdirs("gme")
subdirs("verify")
subdirs("trace")
