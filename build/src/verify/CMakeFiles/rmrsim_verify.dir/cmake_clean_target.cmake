file(REMOVE_RECURSE
  "librmrsim_verify.a"
)
