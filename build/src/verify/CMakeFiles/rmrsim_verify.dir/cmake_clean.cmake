file(REMOVE_RECURSE
  "CMakeFiles/rmrsim_verify.dir/explorer.cc.o"
  "CMakeFiles/rmrsim_verify.dir/explorer.cc.o.d"
  "librmrsim_verify.a"
  "librmrsim_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmrsim_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
