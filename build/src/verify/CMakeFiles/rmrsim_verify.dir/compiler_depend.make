# Empty compiler generated dependencies file for rmrsim_verify.
# This may be replaced when dependencies are built.
