file(REMOVE_RECURSE
  "librmrsim_trace.a"
)
