
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/call_stats.cc" "src/trace/CMakeFiles/rmrsim_trace.dir/call_stats.cc.o" "gcc" "src/trace/CMakeFiles/rmrsim_trace.dir/call_stats.cc.o.d"
  "/root/repo/src/trace/export.cc" "src/trace/CMakeFiles/rmrsim_trace.dir/export.cc.o" "gcc" "src/trace/CMakeFiles/rmrsim_trace.dir/export.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/history/CMakeFiles/rmrsim_history.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/rmrsim_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rmrsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
