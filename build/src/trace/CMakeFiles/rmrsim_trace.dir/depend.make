# Empty dependencies file for rmrsim_trace.
# This may be replaced when dependencies are built.
