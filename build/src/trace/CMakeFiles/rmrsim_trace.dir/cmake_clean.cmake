file(REMOVE_RECURSE
  "CMakeFiles/rmrsim_trace.dir/call_stats.cc.o"
  "CMakeFiles/rmrsim_trace.dir/call_stats.cc.o.d"
  "CMakeFiles/rmrsim_trace.dir/export.cc.o"
  "CMakeFiles/rmrsim_trace.dir/export.cc.o.d"
  "librmrsim_trace.a"
  "librmrsim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmrsim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
