# Empty dependencies file for rmrsim_gme.
# This may be replaced when dependencies are built.
