file(REMOVE_RECURSE
  "CMakeFiles/rmrsim_gme.dir/gme.cc.o"
  "CMakeFiles/rmrsim_gme.dir/gme.cc.o.d"
  "CMakeFiles/rmrsim_gme.dir/session_gme.cc.o"
  "CMakeFiles/rmrsim_gme.dir/session_gme.cc.o.d"
  "librmrsim_gme.a"
  "librmrsim_gme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmrsim_gme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
