
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gme/gme.cc" "src/gme/CMakeFiles/rmrsim_gme.dir/gme.cc.o" "gcc" "src/gme/CMakeFiles/rmrsim_gme.dir/gme.cc.o.d"
  "/root/repo/src/gme/session_gme.cc" "src/gme/CMakeFiles/rmrsim_gme.dir/session_gme.cc.o" "gcc" "src/gme/CMakeFiles/rmrsim_gme.dir/session_gme.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mutex/CMakeFiles/rmrsim_mutex.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rmrsim_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/history/CMakeFiles/rmrsim_history.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/rmrsim_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rmrsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
