file(REMOVE_RECURSE
  "librmrsim_gme.a"
)
