file(REMOVE_RECURSE
  "CMakeFiles/rmrsim_coherence.dir/protocols.cc.o"
  "CMakeFiles/rmrsim_coherence.dir/protocols.cc.o.d"
  "librmrsim_coherence.a"
  "librmrsim_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmrsim_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
