# Empty compiler generated dependencies file for rmrsim_coherence.
# This may be replaced when dependencies are built.
