file(REMOVE_RECURSE
  "librmrsim_coherence.a"
)
