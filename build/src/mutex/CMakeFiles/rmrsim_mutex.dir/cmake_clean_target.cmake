file(REMOVE_RECURSE
  "librmrsim_mutex.a"
)
