# Empty compiler generated dependencies file for rmrsim_mutex.
# This may be replaced when dependencies are built.
