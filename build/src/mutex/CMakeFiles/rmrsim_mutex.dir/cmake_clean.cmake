file(REMOVE_RECURSE
  "CMakeFiles/rmrsim_mutex.dir/bakery_lock.cc.o"
  "CMakeFiles/rmrsim_mutex.dir/bakery_lock.cc.o.d"
  "CMakeFiles/rmrsim_mutex.dir/clh_lock.cc.o"
  "CMakeFiles/rmrsim_mutex.dir/clh_lock.cc.o.d"
  "CMakeFiles/rmrsim_mutex.dir/fischer_lock.cc.o"
  "CMakeFiles/rmrsim_mutex.dir/fischer_lock.cc.o.d"
  "CMakeFiles/rmrsim_mutex.dir/lock.cc.o"
  "CMakeFiles/rmrsim_mutex.dir/lock.cc.o.d"
  "CMakeFiles/rmrsim_mutex.dir/mcs_lock.cc.o"
  "CMakeFiles/rmrsim_mutex.dir/mcs_lock.cc.o.d"
  "CMakeFiles/rmrsim_mutex.dir/peterson_lock.cc.o"
  "CMakeFiles/rmrsim_mutex.dir/peterson_lock.cc.o.d"
  "CMakeFiles/rmrsim_mutex.dir/simple_locks.cc.o"
  "CMakeFiles/rmrsim_mutex.dir/simple_locks.cc.o.d"
  "CMakeFiles/rmrsim_mutex.dir/ya_lock.cc.o"
  "CMakeFiles/rmrsim_mutex.dir/ya_lock.cc.o.d"
  "librmrsim_mutex.a"
  "librmrsim_mutex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmrsim_mutex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
