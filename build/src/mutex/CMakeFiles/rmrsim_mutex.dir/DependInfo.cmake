
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mutex/bakery_lock.cc" "src/mutex/CMakeFiles/rmrsim_mutex.dir/bakery_lock.cc.o" "gcc" "src/mutex/CMakeFiles/rmrsim_mutex.dir/bakery_lock.cc.o.d"
  "/root/repo/src/mutex/clh_lock.cc" "src/mutex/CMakeFiles/rmrsim_mutex.dir/clh_lock.cc.o" "gcc" "src/mutex/CMakeFiles/rmrsim_mutex.dir/clh_lock.cc.o.d"
  "/root/repo/src/mutex/fischer_lock.cc" "src/mutex/CMakeFiles/rmrsim_mutex.dir/fischer_lock.cc.o" "gcc" "src/mutex/CMakeFiles/rmrsim_mutex.dir/fischer_lock.cc.o.d"
  "/root/repo/src/mutex/lock.cc" "src/mutex/CMakeFiles/rmrsim_mutex.dir/lock.cc.o" "gcc" "src/mutex/CMakeFiles/rmrsim_mutex.dir/lock.cc.o.d"
  "/root/repo/src/mutex/mcs_lock.cc" "src/mutex/CMakeFiles/rmrsim_mutex.dir/mcs_lock.cc.o" "gcc" "src/mutex/CMakeFiles/rmrsim_mutex.dir/mcs_lock.cc.o.d"
  "/root/repo/src/mutex/peterson_lock.cc" "src/mutex/CMakeFiles/rmrsim_mutex.dir/peterson_lock.cc.o" "gcc" "src/mutex/CMakeFiles/rmrsim_mutex.dir/peterson_lock.cc.o.d"
  "/root/repo/src/mutex/simple_locks.cc" "src/mutex/CMakeFiles/rmrsim_mutex.dir/simple_locks.cc.o" "gcc" "src/mutex/CMakeFiles/rmrsim_mutex.dir/simple_locks.cc.o.d"
  "/root/repo/src/mutex/ya_lock.cc" "src/mutex/CMakeFiles/rmrsim_mutex.dir/ya_lock.cc.o" "gcc" "src/mutex/CMakeFiles/rmrsim_mutex.dir/ya_lock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/rmrsim_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/history/CMakeFiles/rmrsim_history.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/rmrsim_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rmrsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
