
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/signaling/algorithm.cc" "src/signaling/CMakeFiles/rmrsim_signaling.dir/algorithm.cc.o" "gcc" "src/signaling/CMakeFiles/rmrsim_signaling.dir/algorithm.cc.o.d"
  "/root/repo/src/signaling/broken.cc" "src/signaling/CMakeFiles/rmrsim_signaling.dir/broken.cc.o" "gcc" "src/signaling/CMakeFiles/rmrsim_signaling.dir/broken.cc.o.d"
  "/root/repo/src/signaling/cas_registration.cc" "src/signaling/CMakeFiles/rmrsim_signaling.dir/cas_registration.cc.o" "gcc" "src/signaling/CMakeFiles/rmrsim_signaling.dir/cas_registration.cc.o.d"
  "/root/repo/src/signaling/cc_flag.cc" "src/signaling/CMakeFiles/rmrsim_signaling.dir/cc_flag.cc.o" "gcc" "src/signaling/CMakeFiles/rmrsim_signaling.dir/cc_flag.cc.o.d"
  "/root/repo/src/signaling/checker.cc" "src/signaling/CMakeFiles/rmrsim_signaling.dir/checker.cc.o" "gcc" "src/signaling/CMakeFiles/rmrsim_signaling.dir/checker.cc.o.d"
  "/root/repo/src/signaling/dsm_fixed.cc" "src/signaling/CMakeFiles/rmrsim_signaling.dir/dsm_fixed.cc.o" "gcc" "src/signaling/CMakeFiles/rmrsim_signaling.dir/dsm_fixed.cc.o.d"
  "/root/repo/src/signaling/dsm_queue.cc" "src/signaling/CMakeFiles/rmrsim_signaling.dir/dsm_queue.cc.o" "gcc" "src/signaling/CMakeFiles/rmrsim_signaling.dir/dsm_queue.cc.o.d"
  "/root/repo/src/signaling/dsm_registration.cc" "src/signaling/CMakeFiles/rmrsim_signaling.dir/dsm_registration.cc.o" "gcc" "src/signaling/CMakeFiles/rmrsim_signaling.dir/dsm_registration.cc.o.d"
  "/root/repo/src/signaling/dsm_single_waiter.cc" "src/signaling/CMakeFiles/rmrsim_signaling.dir/dsm_single_waiter.cc.o" "gcc" "src/signaling/CMakeFiles/rmrsim_signaling.dir/dsm_single_waiter.cc.o.d"
  "/root/repo/src/signaling/llsc_registration.cc" "src/signaling/CMakeFiles/rmrsim_signaling.dir/llsc_registration.cc.o" "gcc" "src/signaling/CMakeFiles/rmrsim_signaling.dir/llsc_registration.cc.o.d"
  "/root/repo/src/signaling/workload.cc" "src/signaling/CMakeFiles/rmrsim_signaling.dir/workload.cc.o" "gcc" "src/signaling/CMakeFiles/rmrsim_signaling.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/rmrsim_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/rmrsim_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/history/CMakeFiles/rmrsim_history.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/rmrsim_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rmrsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
