file(REMOVE_RECURSE
  "CMakeFiles/rmrsim_signaling.dir/algorithm.cc.o"
  "CMakeFiles/rmrsim_signaling.dir/algorithm.cc.o.d"
  "CMakeFiles/rmrsim_signaling.dir/broken.cc.o"
  "CMakeFiles/rmrsim_signaling.dir/broken.cc.o.d"
  "CMakeFiles/rmrsim_signaling.dir/cas_registration.cc.o"
  "CMakeFiles/rmrsim_signaling.dir/cas_registration.cc.o.d"
  "CMakeFiles/rmrsim_signaling.dir/cc_flag.cc.o"
  "CMakeFiles/rmrsim_signaling.dir/cc_flag.cc.o.d"
  "CMakeFiles/rmrsim_signaling.dir/checker.cc.o"
  "CMakeFiles/rmrsim_signaling.dir/checker.cc.o.d"
  "CMakeFiles/rmrsim_signaling.dir/dsm_fixed.cc.o"
  "CMakeFiles/rmrsim_signaling.dir/dsm_fixed.cc.o.d"
  "CMakeFiles/rmrsim_signaling.dir/dsm_queue.cc.o"
  "CMakeFiles/rmrsim_signaling.dir/dsm_queue.cc.o.d"
  "CMakeFiles/rmrsim_signaling.dir/dsm_registration.cc.o"
  "CMakeFiles/rmrsim_signaling.dir/dsm_registration.cc.o.d"
  "CMakeFiles/rmrsim_signaling.dir/dsm_single_waiter.cc.o"
  "CMakeFiles/rmrsim_signaling.dir/dsm_single_waiter.cc.o.d"
  "CMakeFiles/rmrsim_signaling.dir/llsc_registration.cc.o"
  "CMakeFiles/rmrsim_signaling.dir/llsc_registration.cc.o.d"
  "CMakeFiles/rmrsim_signaling.dir/workload.cc.o"
  "CMakeFiles/rmrsim_signaling.dir/workload.cc.o.d"
  "librmrsim_signaling.a"
  "librmrsim_signaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmrsim_signaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
