# Empty dependencies file for rmrsim_signaling.
# This may be replaced when dependencies are built.
