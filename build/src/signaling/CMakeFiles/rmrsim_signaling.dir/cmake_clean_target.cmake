file(REMOVE_RECURSE
  "librmrsim_signaling.a"
)
