file(REMOVE_RECURSE
  "librmrsim_runtime.a"
)
