# Empty compiler generated dependencies file for rmrsim_runtime.
# This may be replaced when dependencies are built.
