file(REMOVE_RECURSE
  "CMakeFiles/rmrsim_runtime.dir/simulation.cc.o"
  "CMakeFiles/rmrsim_runtime.dir/simulation.cc.o.d"
  "librmrsim_runtime.a"
  "librmrsim_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmrsim_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
