# Empty dependencies file for rmrsim_primitives.
# This may be replaced when dependencies are built.
