file(REMOVE_RECURSE
  "librmrsim_primitives.a"
)
