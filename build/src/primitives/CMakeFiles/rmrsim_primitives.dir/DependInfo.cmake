
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/primitives/blocking_leader.cc" "src/primitives/CMakeFiles/rmrsim_primitives.dir/blocking_leader.cc.o" "gcc" "src/primitives/CMakeFiles/rmrsim_primitives.dir/blocking_leader.cc.o.d"
  "/root/repo/src/primitives/emulated_cas.cc" "src/primitives/CMakeFiles/rmrsim_primitives.dir/emulated_cas.cc.o" "gcc" "src/primitives/CMakeFiles/rmrsim_primitives.dir/emulated_cas.cc.o.d"
  "/root/repo/src/primitives/leader_election.cc" "src/primitives/CMakeFiles/rmrsim_primitives.dir/leader_election.cc.o" "gcc" "src/primitives/CMakeFiles/rmrsim_primitives.dir/leader_election.cc.o.d"
  "/root/repo/src/primitives/multi_signaler.cc" "src/primitives/CMakeFiles/rmrsim_primitives.dir/multi_signaler.cc.o" "gcc" "src/primitives/CMakeFiles/rmrsim_primitives.dir/multi_signaler.cc.o.d"
  "/root/repo/src/primitives/rw_cas_registration.cc" "src/primitives/CMakeFiles/rmrsim_primitives.dir/rw_cas_registration.cc.o" "gcc" "src/primitives/CMakeFiles/rmrsim_primitives.dir/rw_cas_registration.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/rmrsim_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/mutex/CMakeFiles/rmrsim_mutex.dir/DependInfo.cmake"
  "/root/repo/build/src/signaling/CMakeFiles/rmrsim_signaling.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/rmrsim_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/history/CMakeFiles/rmrsim_history.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/rmrsim_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rmrsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
