file(REMOVE_RECURSE
  "CMakeFiles/rmrsim_primitives.dir/blocking_leader.cc.o"
  "CMakeFiles/rmrsim_primitives.dir/blocking_leader.cc.o.d"
  "CMakeFiles/rmrsim_primitives.dir/emulated_cas.cc.o"
  "CMakeFiles/rmrsim_primitives.dir/emulated_cas.cc.o.d"
  "CMakeFiles/rmrsim_primitives.dir/leader_election.cc.o"
  "CMakeFiles/rmrsim_primitives.dir/leader_election.cc.o.d"
  "CMakeFiles/rmrsim_primitives.dir/multi_signaler.cc.o"
  "CMakeFiles/rmrsim_primitives.dir/multi_signaler.cc.o.d"
  "CMakeFiles/rmrsim_primitives.dir/rw_cas_registration.cc.o"
  "CMakeFiles/rmrsim_primitives.dir/rw_cas_registration.cc.o.d"
  "librmrsim_primitives.a"
  "librmrsim_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmrsim_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
