# Empty compiler generated dependencies file for rmrsim_history.
# This may be replaced when dependencies are built.
