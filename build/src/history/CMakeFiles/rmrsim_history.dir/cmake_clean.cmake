file(REMOVE_RECURSE
  "CMakeFiles/rmrsim_history.dir/history.cc.o"
  "CMakeFiles/rmrsim_history.dir/history.cc.o.d"
  "librmrsim_history.a"
  "librmrsim_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmrsim_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
