file(REMOVE_RECURSE
  "librmrsim_history.a"
)
