file(REMOVE_RECURSE
  "librmrsim_common.a"
)
