file(REMOVE_RECURSE
  "CMakeFiles/rmrsim_common.dir/check.cc.o"
  "CMakeFiles/rmrsim_common.dir/check.cc.o.d"
  "CMakeFiles/rmrsim_common.dir/stats.cc.o"
  "CMakeFiles/rmrsim_common.dir/stats.cc.o.d"
  "CMakeFiles/rmrsim_common.dir/table.cc.o"
  "CMakeFiles/rmrsim_common.dir/table.cc.o.d"
  "librmrsim_common.a"
  "librmrsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmrsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
