# Empty compiler generated dependencies file for rmrsim_common.
# This may be replaced when dependencies are built.
