file(REMOVE_RECURSE
  "CMakeFiles/rmrsim_sched.dir/schedulers.cc.o"
  "CMakeFiles/rmrsim_sched.dir/schedulers.cc.o.d"
  "librmrsim_sched.a"
  "librmrsim_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmrsim_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
