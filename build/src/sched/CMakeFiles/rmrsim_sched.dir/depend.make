# Empty dependencies file for rmrsim_sched.
# This may be replaced when dependencies are built.
