file(REMOVE_RECURSE
  "librmrsim_sched.a"
)
