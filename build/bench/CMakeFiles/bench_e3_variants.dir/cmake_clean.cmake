file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_variants.dir/bench_e3_variants.cc.o"
  "CMakeFiles/bench_e3_variants.dir/bench_e3_variants.cc.o.d"
  "bench_e3_variants"
  "bench_e3_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
