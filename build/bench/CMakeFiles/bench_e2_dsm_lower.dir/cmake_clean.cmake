file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_dsm_lower.dir/bench_e2_dsm_lower.cc.o"
  "CMakeFiles/bench_e2_dsm_lower.dir/bench_e2_dsm_lower.cc.o.d"
  "bench_e2_dsm_lower"
  "bench_e2_dsm_lower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_dsm_lower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
