# Empty compiler generated dependencies file for bench_e2_dsm_lower.
# This may be replaced when dependencies are built.
