# Empty dependencies file for bench_e1_cc_upper.
# This may be replaced when dependencies are built.
