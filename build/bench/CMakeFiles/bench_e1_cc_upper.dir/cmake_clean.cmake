file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_cc_upper.dir/bench_e1_cc_upper.cc.o"
  "CMakeFiles/bench_e1_cc_upper.dir/bench_e1_cc_upper.cc.o.d"
  "bench_e1_cc_upper"
  "bench_e1_cc_upper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_cc_upper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
