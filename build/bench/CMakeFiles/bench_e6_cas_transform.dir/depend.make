# Empty dependencies file for bench_e6_cas_transform.
# This may be replaced when dependencies are built.
