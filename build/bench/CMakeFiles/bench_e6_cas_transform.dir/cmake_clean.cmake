file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_cas_transform.dir/bench_e6_cas_transform.cc.o"
  "CMakeFiles/bench_e6_cas_transform.dir/bench_e6_cas_transform.cc.o.d"
  "bench_e6_cas_transform"
  "bench_e6_cas_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_cas_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
