file(REMOVE_RECURSE
  "CMakeFiles/bench_gme.dir/bench_gme.cc.o"
  "CMakeFiles/bench_gme.dir/bench_gme.cc.o.d"
  "bench_gme"
  "bench_gme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
