# Empty compiler generated dependencies file for bench_gme.
# This may be replaced when dependencies are built.
