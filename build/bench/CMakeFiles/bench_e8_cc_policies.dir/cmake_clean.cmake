file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_cc_policies.dir/bench_e8_cc_policies.cc.o"
  "CMakeFiles/bench_e8_cc_policies.dir/bench_e8_cc_policies.cc.o.d"
  "bench_e8_cc_policies"
  "bench_e8_cc_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_cc_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
