# Empty dependencies file for bench_e8_cc_policies.
# This may be replaced when dependencies are built.
