file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_messages.dir/bench_e4_messages.cc.o"
  "CMakeFiles/bench_e4_messages.dir/bench_e4_messages.cc.o.d"
  "bench_e4_messages"
  "bench_e4_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
