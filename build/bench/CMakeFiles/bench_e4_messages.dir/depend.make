# Empty dependencies file for bench_e4_messages.
# This may be replaced when dependencies are built.
