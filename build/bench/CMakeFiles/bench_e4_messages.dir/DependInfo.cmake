
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e4_messages.cc" "bench/CMakeFiles/bench_e4_messages.dir/bench_e4_messages.cc.o" "gcc" "bench/CMakeFiles/bench_e4_messages.dir/bench_e4_messages.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coherence/CMakeFiles/rmrsim_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/signaling/CMakeFiles/rmrsim_signaling.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/rmrsim_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rmrsim_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/history/CMakeFiles/rmrsim_history.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/rmrsim_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rmrsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
