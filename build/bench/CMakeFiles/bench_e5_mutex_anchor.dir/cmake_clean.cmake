file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_mutex_anchor.dir/bench_e5_mutex_anchor.cc.o"
  "CMakeFiles/bench_e5_mutex_anchor.dir/bench_e5_mutex_anchor.cc.o.d"
  "bench_e5_mutex_anchor"
  "bench_e5_mutex_anchor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_mutex_anchor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
