# Empty dependencies file for bench_e5_mutex_anchor.
# This may be replaced when dependencies are built.
