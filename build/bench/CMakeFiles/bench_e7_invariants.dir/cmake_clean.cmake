file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_invariants.dir/bench_e7_invariants.cc.o"
  "CMakeFiles/bench_e7_invariants.dir/bench_e7_invariants.cc.o.d"
  "bench_e7_invariants"
  "bench_e7_invariants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
