file(REMOVE_RECURSE
  "CMakeFiles/config_broadcast.dir/config_broadcast.cpp.o"
  "CMakeFiles/config_broadcast.dir/config_broadcast.cpp.o.d"
  "config_broadcast"
  "config_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
