# Empty dependencies file for config_broadcast.
# This may be replaced when dependencies are built.
