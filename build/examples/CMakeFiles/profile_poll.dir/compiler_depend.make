# Empty compiler generated dependencies file for profile_poll.
# This may be replaced when dependencies are built.
