file(REMOVE_RECURSE
  "CMakeFiles/profile_poll.dir/profile_poll.cpp.o"
  "CMakeFiles/profile_poll.dir/profile_poll.cpp.o.d"
  "profile_poll"
  "profile_poll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_poll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
