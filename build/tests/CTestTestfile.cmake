# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/memory_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/signaling_test[1]_include.cmake")
include("/root/repo/build/tests/lowerbound_test[1]_include.cmake")
include("/root/repo/build/tests/mutex_test[1]_include.cmake")
include("/root/repo/build/tests/primitives_test[1]_include.cmake")
include("/root/repo/build/tests/coherence_test[1]_include.cmake")
include("/root/repo/build/tests/gme_test[1]_include.cmake")
include("/root/repo/build/tests/shapes_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/explorer_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/timing_test[1]_include.cmake")
include("/root/repo/build/tests/mutation_test[1]_include.cmake")
add_test(cli_signal "/root/repo/build/tools/rmrsim_cli" "signal" "--alg" "queue" "--model" "dsm" "--waiters" "12" "--delay" "24" "--seed" "5")
set_tests_properties(cli_signal PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;28;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_signal_blocking "/root/repo/build/tools/rmrsim_cli" "signal" "--alg" "blocking-leader" "--model" "dsm" "--waiters" "8" "--blocking")
set_tests_properties(cli_signal_blocking PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;30;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_mutex "/root/repo/build/tools/rmrsim_cli" "mutex" "--lock" "ya" "--model" "cc-wb" "--procs" "8" "--passages" "2")
set_tests_properties(cli_mutex PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;32;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_adversary "/root/repo/build/tools/rmrsim_cli" "adversary" "--alg" "registration" "--n" "32")
set_tests_properties(cli_adversary PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_gme "/root/repo/build/tools/rmrsim_cli" "gme" "--procs" "8" "--sessions" "2")
set_tests_properties(cli_gme PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;36;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_broken_detected "/root/repo/build/tools/rmrsim_cli" "signal" "--alg" "broken" "--waiters" "2" "--delay" "4")
set_tests_properties(cli_broken_detected PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;37;add_test;/root/repo/tests/CMakeLists.txt;0;")
