file(REMOVE_RECURSE
  "CMakeFiles/gme_test.dir/gme_test.cc.o"
  "CMakeFiles/gme_test.dir/gme_test.cc.o.d"
  "gme_test"
  "gme_test.pdb"
  "gme_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
