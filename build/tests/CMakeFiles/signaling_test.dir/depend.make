# Empty dependencies file for signaling_test.
# This may be replaced when dependencies are built.
