// Self-fault-injection harness for crash-tolerant exploration.
//
// Drives the real rmrsim_cli binary through kill-and-resume cycles and
// asserts that every interrupted-then-resumed search reproduces the
// uninterrupted run's report byte-for-byte:
//
//   1. Reference: run `rmrsim_cli explore ... --report ref.txt` once,
//      uninterrupted, with checkpointing on.
//   2. Boundary kills: for every epoch k the reference run wrote, run with
//      RMRSIM_KILL_AFTER_EPOCH=k (the CLI SIGKILLs itself the instant
//      epoch k is durable), then resume and byte-compare the report.
//   3. Randomized kills: SIGKILL the explorer from outside at randomized
//      delays, chaining --resume across as many kills as land, then
//      byte-compare the final report.
//   4. Torn checkpoint: truncate the newest epoch of an interrupted run
//      mid-record; resume must fall back to the previous epoch (the CLI
//      logs the discarded file) and still reproduce the reference.
//   5. Sharded worker kills: run `--shards 2` with every initial worker
//      process SIGKILLing itself on its first work item
//      (RMRSIM_WORKER_EXIT_AFTER_ITEMS=0); the coordinator must absorb
//      the deaths through respawn-and-retry and still produce a report
//      byte-identical to the unsharded, uninterrupted reference.
//
// The sharded scenario runs the full battery 1-4 with a multi-process
// coordinator/worker tree: boundary and randomized kills land on the
// coordinator (orphaned workers must self-clean on pipe EOF), and the
// resumed runs must reproduce the sharded reference byte-for-byte.
//
// Standalone on purpose: links no rmrsim libraries, only POSIX — the
// harness must observe the explorer strictly from outside, exactly like
// the operator whose job it simulates. Usage:
//
//   resume_harness <path-to-rmrsim_cli> <scratch-dir> [seed]
//
// Exits 0 iff every scenario passed; failures print one line each.

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace {

int g_failures = 0;

void check(bool ok, const char* fmt, ...) {
  if (ok) return;
  ++g_failures;
  std::va_list ap;
  va_start(ap, fmt);
  std::fputs("FAIL: ", stderr);
  std::vfprintf(stderr, fmt, ap);
  std::fputc('\n', stderr);
  va_end(ap);
}

/// xorshift64*: deterministic across platforms, seeded from argv.
struct Rng {
  std::uint64_t s;
  std::uint64_t next() {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545F4914F6CDD1DULL;
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
};

std::string read_file(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

struct RunResult {
  int exit_code = -1;    // -1 when killed by a signal
  int term_signal = 0;
};

/// fork + execv the CLI with the given args, stdout/stderr to `log_path`,
/// optionally with one extra KEY=VALUE in the environment. If `kill_after_us`
/// > 0, SIGKILL the child from outside after that many microseconds (unless
/// it exits first).
RunResult run_cli(const std::string& cli, const std::vector<std::string>& args,
                  const std::string& log_path, const std::string& env_kv = "",
                  std::uint64_t kill_after_us = 0) {
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(2);
  }
  if (pid == 0) {
    const int fd =
        open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd >= 0) {
      dup2(fd, 1);
      dup2(fd, 2);
      close(fd);
    }
    if (!env_kv.empty()) {
      const std::size_t eq = env_kv.find('=');
      setenv(env_kv.substr(0, eq).c_str(), env_kv.substr(eq + 1).c_str(), 1);
    }
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(cli.c_str()));
    for (const std::string& a : args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    execv(cli.c_str(), argv.data());
    std::perror("execv");
    _exit(127);
  }
  if (kill_after_us > 0) {
    // Poll instead of sleeping the whole delay: if the child finishes first
    // we must not kill a recycled pid.
    std::uint64_t slept = 0;
    while (slept < kill_after_us) {
      const std::uint64_t step =
          kill_after_us - slept < 500 ? kill_after_us - slept : 500;
      usleep(static_cast<useconds_t>(step));
      slept += step;
      int status = 0;
      const pid_t done = waitpid(pid, &status, WNOHANG);
      if (done == pid) {
        RunResult r;
        if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
        if (WIFSIGNALED(status)) r.term_signal = WTERMSIG(status);
        return r;
      }
    }
    kill(pid, SIGKILL);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  RunResult r;
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  if (WIFSIGNALED(status)) r.term_signal = WTERMSIG(status);
  return r;
}

int run_shell(const std::string& cmd) { return std::system(cmd.c_str()); }

/// One explore configuration under test.
struct Scenario {
  const char* name;
  std::vector<std::string> base;  // explore args minus checkpoint/report
  int expect_exit;                // 0 = no violation, 1 = violation found
};

std::vector<std::string> with(std::vector<std::string> v,
                              std::initializer_list<std::string> extra) {
  v.insert(v.end(), extra.begin(), extra.end());
  return v;
}

/// Count epoch files currently in `dir` and return the largest epoch number
/// (0 when none). Filenames are epoch-NNNNNN.ckpt.
std::uint64_t newest_epoch(const std::string& dir) {
  std::uint64_t best = 0;
  std::string cmd = "ls '" + dir + "' 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return 0;
  char line[256];
  while (std::fgets(line, sizeof line, pipe) != nullptr) {
    unsigned long long e = 0;
    if (std::sscanf(line, "epoch-%llu.ckpt", &e) == 1 && e > best) best = e;
  }
  pclose(pipe);
  return best;
}

void run_scenario(const std::string& cli, const std::string& scratch,
                  const Scenario& sc, Rng& rng) {
  const std::string dir = scratch + "/" + sc.name;
  run_shell("rm -rf '" + dir + "' && mkdir -p '" + dir + "'");
  const std::string ref_report = dir + "/ref.txt";

  // 1. Uninterrupted reference (checkpointing on, so the cost of writing
  //    epochs is part of what we compare against).
  RunResult ref = run_cli(
      cli,
      with(sc.base, {"--checkpoint-dir", dir + "/ref-ck", "--report",
                     ref_report}),
      dir + "/ref.log");
  check(ref.exit_code == sc.expect_exit, "%s: reference run exited %d, want %d",
        sc.name, ref.exit_code, sc.expect_exit);
  const std::string want = read_file(ref_report);
  check(!want.empty(), "%s: reference report is empty", sc.name);
  const std::uint64_t epochs = newest_epoch(dir + "/ref-ck");
  check(epochs > 0, "%s: reference run wrote no epochs", sc.name);

  // 2. Boundary kills: die exactly when epoch k hits the disk, for every k.
  for (std::uint64_t k = 1; k <= epochs; ++k) {
    const std::string ck = dir + "/bk-" + std::to_string(k);
    char env[64];
    std::snprintf(env, sizeof env, "RMRSIM_KILL_AFTER_EPOCH=%llu",
                  static_cast<unsigned long long>(k));
    RunResult killed =
        run_cli(cli, with(sc.base, {"--checkpoint-dir", ck}),
                dir + "/bk-kill.log", env);
    if (killed.term_signal != SIGKILL) {
      // The whole search finished before epoch k (races with the final
      // flush); that is a legal outcome, resume still must agree.
      check(killed.exit_code == sc.expect_exit,
            "%s: boundary kill %llu: run finished with exit %d, want %d",
            sc.name, static_cast<unsigned long long>(k), killed.exit_code,
            sc.expect_exit);
    }
    const std::string rep = ck + "-resume.txt";
    RunResult resumed = run_cli(
        cli, with(sc.base, {"--resume", ck, "--report", rep}),
        dir + "/bk-resume.log");
    check(resumed.exit_code == sc.expect_exit,
          "%s: boundary kill %llu: resume exited %d, want %d", sc.name,
          static_cast<unsigned long long>(k), resumed.exit_code,
          sc.expect_exit);
    check(read_file(rep) == want,
          "%s: boundary kill %llu: resumed report differs from reference",
          sc.name, static_cast<unsigned long long>(k));
  }

  // 3. Randomized external SIGKILLs, chained: a fixed budget of kill
  //    attempts at random delays (each resuming the last), then one clean
  //    resume that must complete and match. A kill that misses (the run
  //    finishes first) is harmless — the next round resumes a complete
  //    checkpoint, which is itself a state worth exercising.
  {
    const std::string ck = dir + "/rand";
    const std::string rep = dir + "/rand.txt";
    int kills = 0;
    for (int round = 0; round < 8; ++round) {
      std::vector<std::string> args =
          round == 0
              ? with(sc.base, {"--checkpoint-dir", ck, "--report", rep})
              : with(sc.base, {"--resume", ck, "--report", rep});
      // Delays span "barely started" to "probably done": both tails matter
      // (kill before the first epoch, kill during the final flush).
      const std::uint64_t delay_us = 500 + rng.below(20'000);
      RunResult r = run_cli(cli, args, dir + "/rand.log", "", delay_us);
      if (r.term_signal == SIGKILL) ++kills;
    }
    RunResult final_run = run_cli(
        cli, with(sc.base, {"--resume", ck, "--report", rep}),
        dir + "/rand.log");
    check(final_run.exit_code == sc.expect_exit,
          "%s: randomized: final run exited %d, want %d", sc.name,
          final_run.exit_code, sc.expect_exit);
    check(read_file(rep) == want,
          "%s: randomized (%d kills): final report differs from reference",
          sc.name, kills);
    std::printf("  %s: randomized landed %d/8 kills\n", sc.name, kills);
  }

  // 4. Torn checkpoint: interrupt, truncate the newest epoch mid-record,
  //    resume. The loader must discard the torn file, fall back to the
  //    previous epoch, and still match the reference.
  {
    const std::string ck = dir + "/torn";
    run_cli(cli, with(sc.base, {"--checkpoint-dir", ck}),
            dir + "/torn-kill.log", "RMRSIM_KILL_AFTER_EPOCH=2");
    const std::uint64_t top = newest_epoch(ck);
    if (top >= 2) {
      char name[64];
      std::snprintf(name, sizeof name, "epoch-%06llu.ckpt",
                    static_cast<unsigned long long>(top));
      run_shell("truncate -s 40 '" + ck + "/" + name + "'");
      const std::string rep = ck + "-resume.txt";
      const std::string log = dir + "/torn-resume.log";
      RunResult resumed = run_cli(
          cli, with(sc.base, {"--resume", ck, "--report", rep}), log);
      check(resumed.exit_code == sc.expect_exit,
            "%s: torn: resume exited %d, want %d", sc.name, resumed.exit_code,
            sc.expect_exit);
      check(read_file(rep) == want,
            "%s: torn: resumed report differs from reference", sc.name);
      check(read_file(log).find("resume: discarded") != std::string::npos,
            "%s: torn: resume did not log the discarded epoch", sc.name);
    }
  }

  std::printf("scenario %s: done (reference epochs: %llu)\n", sc.name,
              static_cast<unsigned long long>(epochs));
}

/// Step 5: worker-process deaths absorbed without a trace. The reference
/// is deliberately unsharded — the comparison asserts sharding parity and
/// crash absorption in one stroke.
void run_worker_kill_scenario(const std::string& cli,
                              const std::string& scratch) {
  const char* name = "signal-worker-kill-s2";
  const std::string dir = scratch + "/" + name;
  run_shell("rm -rf '" + dir + "' && mkdir -p '" + dir + "'");
  const std::vector<std::string> base = {
      "explore", "--target", "signal", "--alg",  "registration",
      "--model", "dsm",      "--waiters", "2",   "--polls", "1",
      "--depth", "14"};

  const std::string ref_report = dir + "/ref.txt";
  RunResult ref = run_cli(cli, with(base, {"--report", ref_report}),
                          dir + "/ref.log");
  check(ref.exit_code == 0, "%s: reference run exited %d, want 0", name,
        ref.exit_code);
  const std::string want = read_file(ref_report);
  check(!want.empty(), "%s: reference report is empty", name);

  // Every initial worker dies upon receiving its first item; the pool
  // respawns them with the kill switch cleared and retries the items.
  const std::string rep = dir + "/killed.txt";
  RunResult killed = run_cli(
      cli, with(base, {"--shards", "2", "--report", rep}),
      dir + "/killed.log", "RMRSIM_WORKER_EXIT_AFTER_ITEMS=0");
  check(killed.exit_code == 0,
        "%s: run with dying workers exited %d, want 0", name,
        killed.exit_code);
  check(read_file(rep) == want,
        "%s: report after worker deaths differs from the unsharded "
        "reference",
        name);
  std::printf("scenario %s: done\n", name);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: resume_harness <rmrsim_cli> <scratch-dir> "
                         "[seed]\n");
    return 2;
  }
  const std::string cli = argv[1];
  const std::string scratch = argv[2];
  Rng rng{argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 0x9E3779B97F4A7C15ULL};
  if (rng.s == 0) rng.s = 1;
  run_shell("mkdir -p '" + scratch + "'");

  // Small enough to finish in ~a second uninterrupted, big enough to write
  // several epochs: the kill windows in step 3 then actually land mid-run.
  const std::vector<Scenario> scenarios = {
      // Parallel snapshot-mode search, healthy algorithm: no violation.
      {"signal-snapshot-w2",
       {"explore", "--target", "signal", "--alg", "registration", "--model",
        "dsm", "--waiters", "2", "--polls", "1", "--depth", "14", "--workers",
        "2", "--checkpoint-interval", "2"},
       0},
      // Sequential replay-mode search: same guarantees on the oracle path.
      {"signal-replay-w1",
       {"explore", "--target", "signal", "--alg", "registration", "--model",
        "dsm", "--waiters", "2", "--polls", "1", "--depth", "14", "--workers",
        "1", "--mode", "replay", "--checkpoint-interval", "2"},
       0},
      // Broken algorithm: the lex-least violating schedule is part of the
      // report, so resume must reproduce the exact counterexample too. The
      // violation truncates schedules early, so the trunk is shallow —
      // trunk-depth 2 keeps real work items (and hence epochs) in play.
      {"signal-broken-w2",
       {"explore", "--target", "signal", "--alg", "broken", "--model", "dsm",
        "--waiters", "2", "--polls", "1", "--depth", "14", "--workers", "2",
        "--trunk-depth", "2", "--checkpoint-interval", "2"},
       1},
      // Multi-process search: work items run in forked worker processes.
      // Boundary and randomized kills hit the coordinator mid-epoch; the
      // orphaned workers must self-clean and the resumed (re-sharded) run
      // must still reproduce the reference byte-for-byte.
      {"signal-sharded-s2",
       {"explore", "--target", "signal", "--alg", "registration", "--model",
        "dsm", "--waiters", "2", "--polls", "1", "--depth", "14", "--shards",
        "2", "--checkpoint-interval", "2"},
       0},
  };
  for (const Scenario& sc : scenarios) run_scenario(cli, scratch, sc, rng);
  run_worker_kill_scenario(cli, scratch);

  if (g_failures == 0) {
    std::printf("resume_harness: all scenarios passed\n");
    return 0;
  }
  std::fprintf(stderr, "resume_harness: %d failure(s)\n", g_failures);
  return 1;
}
