// rmrsim — command-line driver.
//
// Run any algorithm under any model and get the ledgers, per-call costs,
// spec verdicts, or full traces without writing a harness:
//
//   rmrsim_cli signal    --alg registration --model dsm --waiters 32
//                        --delay 64 --seed 7 [--trace timeline|csv|json]
//   rmrsim_cli mutex     --lock mcs --model cc-wb --procs 16 --passages 4
//   rmrsim_cli adversary --alg registration --n 64 [--lenient] [--no-erase]
//   rmrsim_cli gme       --procs 16 --sessions 2 --passages 3
//   rmrsim_cli trace     --gen zipf --ops 1000000 --procs 32 --protocols all
//
// Models: dsm | cc | cc-wb | cc-mesi | cc-lfcu.
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <memory>
#include <string>

#include "coherence/fleet.h"
#include "coherence/write_buffer.h"
#include "common/check.h"
#include "common/crc32.h"
#include "common/fsio.h"
#include "common/table.h"
#include "gme/session_gme.h"
#include "harness/drive.h"
#include "harness/experiments.h"
#include "lowerbound/adversary.h"
#include "mutex/mcs_lock.h"
#include "sched/schedulers.h"
#include "signaling/checker.h"
#include "signaling/workload.h"
#include "trace/call_stats.h"
#include "trace/export.h"
#include "verify/checkpoint.h"
#include "verify/dist/pool.h"
#include "verify/dist/worker.h"
#include "verify/dpor.h"
#include "verify/explorer.h"
#include "verify/shrink.h"
#include "workload/generators.h"
#include "workload/replay.h"
#include "workload/trace.h"

using namespace rmrsim;

namespace {

constexpr long kIntMax = std::numeric_limits<int>::max();
constexpr long kLongMax = std::numeric_limits<long>::max();

struct Args {
  std::map<std::string, std::string> kv;
  std::map<std::string, bool> flags;

  std::string get(const std::string& key, const std::string& def) const {
    auto it = kv.find(key);
    return it == kv.end() ? def : it->second;
  }
  /// Strict: a present-but-malformed value is a one-line error and exit 1
  /// (via main's catch), never a silent 0 the way atol would read it.
  long get_int(const std::string& key, long def) const {
    auto it = kv.find(key);
    if (it == kv.end()) return def;
    const std::string& v = it->second;
    char* end = nullptr;
    errno = 0;
    const long n = std::strtol(v.c_str(), &end, 10);
    ensure(!v.empty() && end != nullptr && *end == '\0' && errno == 0,
           "--" + key + " expects an integer, got '" + v + "'");
    return n;
  }
  /// Bounded: the value must land in [lo, hi]. Every call site that narrows
  /// to int goes through this, so an out-of-range value is a loud error —
  /// previously `--waiters 4294967296` truncated through static_cast<int>
  /// to 0 and ran a silently different experiment.
  long get_int(const std::string& key, long def, long lo, long hi) const {
    const long n = get_int(key, def);
    ensure(n >= lo && n <= hi,
           "--" + key + " must be in [" + std::to_string(lo) + ", " +
               std::to_string(hi) + "], got " + std::to_string(n));
    return n;
  }
  bool has(const std::string& flag) const { return flags.count(flag) != 0; }
};

Args parse(int argc, char** argv, int first) {
  Args a;
  for (int i = first; i < argc; ++i) {
    std::string s = argv[i];
    if (s.rfind("--", 0) != 0) continue;
    s = s.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      a.kv[s] = argv[++i];
    } else {
      a.flags[s] = true;
    }
  }
  return a;
}

// Name → model/algorithm/lock construction lives in harness/drive.h,
// shared with the sweep experiments and benches; unknown names throw and
// are reported by main().
std::unique_ptr<SharedMemory> make_model(const std::string& name, int nprocs) {
  return make_model_by_name(name, nprocs);
}

// `fixed_home`: which process hosts the fixed-signaler state of the
// registration variant. The workload command uses the actual signaler
// (nprocs-1); the adversary command uses a waiter (n-2) because the
// Lemma 6.13 signaler must have an unwritten module.
SignalingFactory make_signal_alg(const std::string& name, int fixed_home) {
  return make_signal_factory_by_name(name, fixed_home);
}

// --protocols [all|name,name,...] [--write-buffer N]: ride the run with
// snooping-protocol state machines (optionally behind a store buffer) and
// print their message/cycle tallies afterwards.
struct ProtocolRig {
  std::vector<std::unique_ptr<SnoopingCache>> caches;
  ListenerFanout fanout;
  std::unique_ptr<WriteBuffer> wb;

  bool active() const { return !caches.empty(); }
  CoherenceListener* listener() {
    if (!active()) return nullptr;
    return wb != nullptr ? static_cast<CoherenceListener*>(wb.get())
                         : &fanout;
  }
};

/// Expands a --protocols spec ("all" or a comma list) into protocol
/// names, validating each against the fleet catalog.
std::vector<std::string> parse_protocol_names(const std::string& spec) {
  std::vector<std::string> names;
  if (spec == "all") {
    names = protocol_names();
  } else {
    std::stringstream ss(spec);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (!tok.empty()) names.push_back(tok);
    }
  }
  for (const std::string& name : names) {
    ensure(make_protocol(name, 1) != nullptr,
           "--protocols: unknown protocol '" + name +
               "' (want mesi|mesif|moesi|dragon|all)");
  }
  return names;
}

ProtocolRig make_protocol_rig(const Args& a, int nprocs) {
  ProtocolRig rig;
  std::string spec = a.get("protocols", a.has("protocols") ? "all" : "");
  if (spec.empty()) return rig;
  const CycleCosts costs = parse_cycle_costs(a.get("cycle-cost", ""));
  for (const std::string& name : parse_protocol_names(spec)) {
    auto cache = make_protocol(name, nprocs, costs);
    rig.fanout.add(cache.get());
    rig.caches.push_back(std::move(cache));
  }
  const long wb = a.get_int("write-buffer", 0, 0, kIntMax);
  if (wb > 0) {
    rig.wb = std::make_unique<WriteBuffer>(&rig.fanout, nprocs,
                                           static_cast<int>(wb));
  }
  return rig;
}

/// Prints the rig's tallies; returns false if any protocol's invariants
/// are violated (callers fold that into the exit code).
bool print_protocol_rig(const ProtocolRig& rig) {
  bool ok = true;
  TextTable t;
  t.set_header({"protocol", "transfers", "invalidations", "updates",
                "total msgs", "cycles", "invariants"});
  for (const auto& c : rig.caches) {
    const auto violation = c->check_invariants();
    if (violation) ok = false;
    t.add_row({std::string(c->name()),
               std::to_string(c->transfer_messages()),
               std::to_string(c->invalidation_messages()),
               std::to_string(c->update_messages()),
               std::to_string(c->total_messages()),
               std::to_string(c->total_cycles()),
               violation ? "VIOLATED: " + *violation : "ok"});
  }
  std::fputs(t.render().c_str(), stdout);
  if (rig.wb != nullptr) {
    std::printf(
        "write buffer: %llu buffered, %llu coalesced, %llu reads forwarded\n",
        static_cast<unsigned long long>(rig.wb->buffered_writes()),
        static_cast<unsigned long long>(rig.wb->coalesced_writes()),
        static_cast<unsigned long long>(rig.wb->forwarded_reads()));
  }
  return ok;
}

int cmd_signal(const Args& a) {
  const int waiters = static_cast<int>(a.get_int("waiters", 8, 1, kIntMax - 1));
  const int nprocs = waiters + 1;
  const std::string alg_name = a.get("alg", "flag");
  SignalingWorkloadOptions opt;
  opt.n_waiters = waiters;
  opt.signaler_idle_polls =
      static_cast<int>(a.get_int("delay", 16, 0, kIntMax));
  opt.scheduler_seed =
      static_cast<std::uint64_t>(a.get_int("seed", 0, 0, kLongMax));
  opt.blocking = a.has("blocking");
  if (opt.blocking) opt.signaler_idle_polls = 0;
  const std::string engine = a.get("engine", "coro");
  ensure(engine == "coro" || engine == "compiled",
         "--engine expects coro|compiled, got '" + engine + "'");
  if (engine == "compiled") opt.engine = StepEngine::kCompiled;
  ProtocolRig rig = make_protocol_rig(a, nprocs);
  opt.listener = rig.listener();
  auto run =
      run_signaling_workload(make_model(a.get("model", "dsm"), nprocs),
                             make_signal_alg(alg_name, nprocs - 1), opt);

  const std::string trace = a.get("trace", "");
  if (trace == "csv") {
    std::fputs(history_to_csv(run.sim->history()).c_str(), stdout);
    return 0;
  }
  if (trace == "json") {
    std::fputs(history_to_json_lines(run.sim->history()).c_str(), stdout);
    return 0;
  }
  if (trace == "timeline") {
    std::fputs(history_timeline(run.sim->history()).c_str(), stdout);
  }

  std::printf("algorithm %s, model %s, %d waiters + 1 signaler\n",
              run.alg->name().data(), run.mem->model().name().data(),
              waiters);
  TextTable t;
  t.set_header({"metric", "value"});
  t.add_row({"engine", run.compiled ? "compiled" : "coroutine"});
  t.add_row({"steps", std::to_string(run.sim->history().size())});
  t.add_row({"total RMRs", std::to_string(run.mem->ledger().total_rmrs())});
  t.add_row({"max waiter RMRs", std::to_string(run.max_waiter_rmrs())});
  t.add_row({"signaler RMRs", std::to_string(run.signaler_rmrs())});
  t.add_row({"amortized RMRs", fixed(run.amortized_rmrs())});
  const auto costs = per_call_costs(run.sim->history());
  t.add_row({"steady-state poll RMRs (max)",
             std::to_string(max_rmrs_from_index(costs, calls::kPoll, 1))});
  const auto violation = opt.blocking
                             ? check_blocking_spec(run.sim->history())
                             : check_polling_spec(run.sim->history());
  t.add_row({"spec", violation ? "VIOLATED: " + violation->what : "ok"});
  std::fputs(t.render().c_str(), stdout);
  bool protocols_ok = true;
  if (rig.active()) protocols_ok = print_protocol_rig(rig);
  return violation || !protocols_ok ? 1 : 0;
}

int cmd_mutex(const Args& a) {
  MutexRunOptions opt;
  opt.nprocs = static_cast<int>(a.get_int("procs", 8, 1, kIntMax));
  opt.passages = static_cast<int>(a.get_int("passages", 3, 0, kIntMax));
  opt.model = a.get("model", "dsm");
  opt.make_lock = lock_factory_by_name(a.get("lock", "mcs"));
  opt.seed = static_cast<std::uint64_t>(a.get_int("seed", 0, 0, kLongMax));
  opt.fault_plan = a.get("fault-plan", "");
  // A crashed non-recoverable lock wedges forever; --max-steps bounds how
  // long we spin before reporting "completed NO".
  opt.max_steps = static_cast<std::uint64_t>(
      a.get_int("max-steps", 500'000'000, 0, kLongMax));
  ProtocolRig rig = make_protocol_rig(a, opt.nprocs);
  opt.listener = rig.listener();
  const MutexRunOutcome o = run_mutex_workload(opt);
  std::printf("lock %s, model %s, %d procs x %d passages\n",
              o.world.lock->name().data(), o.world.mem->model().name().data(),
              opt.nprocs, opt.passages);
  TextTable t;
  t.set_header({"metric", "value"});
  t.add_row({"completed", o.completed ? "yes" : "NO"});
  t.add_row(
      {"total RMRs", std::to_string(o.world.mem->ledger().total_rmrs())});
  t.add_row({"RMRs/passage", fixed(o.rmrs_per_passage)});
  t.add_row({"mutual exclusion",
             o.violation ? "VIOLATED: " + o.violation->what : "ok"});
  if (!opt.fault_plan.empty()) {
    const CrashRunReport rep = analyze_crash_run(o.world.sim->history());
    t.add_row({"crashes", std::to_string(rep.crashes)});
    t.add_row({"recoveries", std::to_string(rep.recoveries)});
    t.add_row({"failed recoveries", std::to_string(rep.failed_recoveries)});
    t.add_row({"FIFO inversions (reported, not asserted)",
               std::to_string(rep.fifo_inversions)});
  }
  std::fputs(t.render().c_str(), stdout);
  bool protocols_ok = true;
  if (rig.active()) protocols_ok = print_protocol_rig(rig);
  return o.violation || !o.completed || !protocols_ok ? 1 : 0;
}

int cmd_sweep(const Args& a) {
  if (a.has("list")) {
    TextTable t;
    t.set_header({"name", "grid", "title"});
    for (const Experiment& e : all_experiments()) {
      t.add_row({e.name, std::to_string(e.spec.grid_size()) + " points",
                 e.title});
    }
    std::fputs(t.render().c_str(), stdout);
    return 0;
  }
  const std::string name = a.get("exp", "");
  const Experiment* exp = find_experiment(name);
  if (exp == nullptr) {
    std::fprintf(stderr,
                 "sweep needs --exp <e1..e9> (or --list); got '%s'\n",
                 name.c_str());
    return 2;
  }
  const int workers = static_cast<int>(a.get_int("workers", 1, 1, kIntMax));
  const int max_n = static_cast<int>(a.get_int("max-n", 0, 0, kIntMax));
  // Read the golden file before the sweep runs, not after: a typo'd path
  // should fail in milliseconds, not after minutes of measurement.
  const std::string golden_path = a.get("golden", "");
  std::string golden_bytes;
  if (!golden_path.empty()) {
    std::ifstream golden(golden_path, std::ios::binary);
    if (!golden.good()) {
      std::fprintf(stderr,
                   "sweep --golden: cannot read '%s' (no such file or not "
                   "readable)\n",
                   golden_path.c_str());
      return 3;
    }
    std::stringstream buf;
    buf << golden.rdbuf();
    golden_bytes = buf.str();
  }
  const BenchArtifact artifact =
      run_experiment(*exp, workers, "rmrsim_cli sweep", max_n);
  std::printf("experiment %s: %zu points, %d workers, %.1f ms\n%s\n",
              exp->name.c_str(), artifact.result.points.size(),
              artifact.result.workers, artifact.result.wall_ms,
              exp->title.c_str());
  std::fputs(render_fit_table(artifact).c_str(), stdout);
  // --deterministic omits the run-environment fields (wall time, workers),
  // so the written artifact is byte-stable for a given grid + git field —
  // the form the committed golden files are compared against.
  const bool deterministic = a.has("deterministic");
  const std::string path =
      write_artifact(artifact, a.get("out", "."), !deterministic);
  std::printf("wrote %s\n", path.c_str());
  if (!golden_path.empty()) {
    if (golden_bytes != artifact_to_json(artifact, !deterministic)) {
      std::fprintf(stderr,
                   "sweep --golden: artifact differs from %s — the sweep's "
                   "measured results changed (run with RMRSIM_GIT_DESCRIBE "
                   "pinned and --deterministic to reproduce byte-exactly)\n",
                   golden_path.c_str());
      return 3;
    }
    std::printf("golden match: %s\n", golden_path.c_str());
  }
  if (a.has("check") && !artifact_matches(artifact)) {
    std::fprintf(stderr,
                 "sweep --check: fitted class disagrees with the paper's "
                 "claim (see MISMATCH rows)\n");
    return 1;
  }
  return 0;
}

// trace: parse or synthesize a multi-core memory trace and replay it
// through every requested cost model (and, optionally, the protocol
// fleet). The model grid runs through the sweep engine, so the artifact is
// byte-identical for any --workers count; --deterministic + --golden give
// the same byte-compare regression gate the sweep experiments have.
int cmd_trace(const Args& a) {
  const std::string gen = a.get("gen", "");
  const std::string in = a.get("in", "");
  if (gen.empty() == in.empty()) {
    std::fprintf(stderr,
                 "trace needs exactly one of --gen <kind> or --in <file>\n");
    return 2;
  }
  Trace trace;
  std::string source;
  if (!gen.empty()) {
    ensure(is_generator_name(gen),
           "--gen: unknown generator '" + gen +
               "' (want private|hotset|zipf|ring|migratory)");
    GenSpec g;
    g.kind = gen;
    const long procs = a.get_int("procs", 16, 1, kIntMax);
    const long ops = a.get_int("ops", 100000, 1, kLongMax);
    g.procs = static_cast<int>(procs);
    g.ops = static_cast<std::uint64_t>(ops);
    g.seed = static_cast<std::uint64_t>(a.get_int("seed", 1, 0, kLongMax));
    trace = generate_trace(g);
    source = gen;
  } else {
    trace = load_trace_file(in);
    source = "file";
  }
  const std::string emit = a.get("emit", "");
  if (!emit.empty()) {
    save_trace_file(emit, trace, a.has("binary"));
    std::printf("wrote trace %s (%zu ops, %d procs)\n", emit.c_str(),
                trace.ops.size(), trace.nprocs);
    if (a.has("no-replay")) return 0;
  }

  ReplayOptions opts;
  opts.addr_map = parse_addr_map(a.get("addr-map", "interleave"));
  opts.costs = parse_cycle_costs(a.get("cycle-cost", ""));
  opts.write_buffer =
      static_cast<int>(a.get_int("write-buffer", 0, 0, kIntMax));
  opts.legacy_counters = a.has("legacy-counters");
  const std::string pspec =
      a.get("protocols", a.has("protocols") ? "all" : "");
  if (!pspec.empty()) opts.protocols = parse_protocol_names(pspec);

  const std::string mspec = a.get("models", "all");
  std::vector<std::string> models;
  if (mspec == "all") {
    models = {"dsm", "cc", "cc-wb", "cc-mesi", "cc-lfcu"};
  } else {
    std::stringstream ss(mspec);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (tok.empty()) continue;
      ensure(is_model_name(tok), "--models: unknown model '" + tok +
                                     "' (want dsm|cc|cc-wb|cc-mesi|cc-lfcu)");
      models.push_back(tok);
    }
    ensure(!models.empty(), "--models: empty model list");
  }

  // Same early-golden-read discipline as cmd_sweep: a typo'd path fails
  // before the replay runs, not after.
  const std::string golden_path = a.get("golden", "");
  std::string golden_bytes;
  if (!golden_path.empty()) {
    std::ifstream golden(golden_path, std::ios::binary);
    if (!golden.good()) {
      std::fprintf(stderr, "trace --golden: cannot read '%s'\n",
                   golden_path.c_str());
      return 3;
    }
    std::stringstream buf;
    buf << golden.rdbuf();
    golden_bytes = buf.str();
  }

  SweepSpec spec;
  spec.name = "t1_" + source;
  spec.models = models;
  spec.algorithms = {source};
  spec.ns = {trace.nprocs};
  const int workers = static_cast<int>(a.get_int("workers", 1, 1, kIntMax));
  const SweepResult result = run_sweep(
      spec,
      [&trace, &opts](const SweepPoint& p) {
        auto mem = make_model_by_name(p.model, trace.nprocs);
        return replay_trace(trace, *mem, opts);
      },
      workers);

  std::printf("trace %s: %zu ops, %d procs, %zu vars, addr-map %s\n",
              source.c_str(), trace.ops.size(), trace.nprocs,
              result.points.empty()
                  ? std::size_t{0}
                  : static_cast<std::size_t>(
                        result.points[0].metrics.value("trace.vars")),
              to_string(opts.addr_map).c_str());
  bool invariants_ok = true;
  TextTable t;
  std::vector<std::string> header = {"model", "rmrs", "rmrs/op"};
  for (const std::string& p : opts.protocols) header.push_back(p + " cycles");
  if (!opts.protocols.empty()) header.push_back("invariants");
  t.set_header(header);
  for (const SweepPointResult& pr : result.points) {
    std::vector<std::string> row = {
        pr.point.model,
        std::to_string(
            static_cast<std::uint64_t>(pr.metrics.value("ledger.total_rmrs"))),
        std::to_string(pr.metrics.value("rmrs.per_op"))};
    for (const std::string& p : opts.protocols) {
      row.push_back(std::to_string(static_cast<std::uint64_t>(
          pr.metrics.value("cycles." + p + ".total"))));
    }
    if (!opts.protocols.empty()) {
      const bool ok = pr.metrics.value("protocol.invariants_ok") != 0.0;
      if (!ok) invariants_ok = false;
      row.push_back(ok ? "ok" : "VIOLATED");
    }
    t.add_row(row);
  }
  std::fputs(t.render().c_str(), stdout);

  BenchArtifact artifact;
  artifact.name = spec.name;
  artifact.title = "trace replay: " + source + " through " +
                   std::to_string(models.size()) + " cost model(s)";
  artifact.generator = "rmrsim_cli trace";
  artifact.git = git_describe();
  artifact.result = result;
  const bool deterministic = a.has("deterministic");
  const std::string out_dir = a.get("out", ".");
  ensure_dir(out_dir);
  const std::string path = write_artifact(artifact, out_dir, !deterministic);
  std::printf("wrote %s\n", path.c_str());
  if (!golden_path.empty()) {
    if (golden_bytes != artifact_to_json(artifact, !deterministic)) {
      std::fprintf(stderr,
                   "trace --golden: artifact differs from %s — the replay's "
                   "measured results changed (run with RMRSIM_GIT_DESCRIBE "
                   "pinned and --deterministic to reproduce byte-exactly)\n",
                   golden_path.c_str());
      return 3;
    }
    std::printf("golden match: %s\n", golden_path.c_str());
  }
  if (!invariants_ok) {
    std::fprintf(stderr, "trace: protocol invariants violated\n");
    return 1;
  }
  return 0;
}

int cmd_adversary(const Args& a) {
  const int n = static_cast<int>(a.get_int("n", 32, 3, kIntMax));
  AdversaryConfig c;
  c.nprocs = n;
  c.construction =
      a.has("lenient") ? Construction::kLenient : Construction::kStrict;
  c.erase_during_chase = !a.has("no-erase");
  const std::string model = a.get("model", "dsm");
  if (model != "dsm") {
    c.make_memory = [model](int k) { return make_model(model, k); };
    c.construction = Construction::kLenient;  // strict requires DSM
    c.erase_during_chase = false;
  }
  SignalingAdversary adv(make_signal_alg(a.get("alg", "registration"), n - 2),
                         c);
  const auto report = adv.run();
  std::fputs(report.to_string().c_str(), stdout);
  return report.spec_violation ? 1 : 0;
}

int cmd_gme(const Args& a) {
  const int nprocs = static_cast<int>(a.get_int("procs", 8, 1, kIntMax));
  const int passages = static_cast<int>(a.get_int("passages", 3, 0, kIntMax));
  const int n_sessions =
      static_cast<int>(a.get_int("sessions", 2, 1, kIntMax));
  auto mem = make_model(a.get("model", "dsm"), nprocs);
  SessionGme alg(*mem, std::make_unique<McsLock>(*mem));
  std::vector<Program> programs;
  for (int i = 0; i < nprocs; ++i) {
    std::vector<Word> sessions = {i / std::max(1, nprocs / n_sessions)};
    programs.emplace_back([&alg, passages, sessions](ProcCtx& ctx) {
      return gme_worker(ctx, &alg, passages, sessions, /*cs_dwell=*/20);
    });
  }
  Simulation sim(*mem, std::move(programs));
  RoundRobinScheduler rr;
  const auto result = sim.run(rr, 500'000'000);
  const auto violation = check_gme_safety(sim.history());
  TextTable t;
  t.set_header({"metric", "value"});
  t.add_row({"completed", result.all_terminated ? "yes" : "NO"});
  t.add_row({"max CS occupancy",
             std::to_string(max_cs_occupancy(sim.history()))});
  t.add_row({"RMRs/passage",
             fixed(static_cast<double>(mem->ledger().total_rmrs()) /
                   static_cast<double>(nprocs * passages))});
  t.add_row({"session safety",
             violation ? "VIOLATED: " + violation->what : "ok"});
  std::fputs(t.render().c_str(), stdout);
  return violation ? 1 : 0;
}

std::string schedule_str(const std::vector<ProcId>& s) {
  std::string out;
  for (const ProcId p : s) {
    if (!out.empty()) out += ' ';
    out += std::to_string(p);
  }
  return out;
}

// Model-check a small configuration: DPOR exploration of every schedule
// class up to --depth, optionally racing the naive explorer on the same
// bounds (--naive) and shrinking any counterexample (--shrink). The builder
// is called once per tree node (and concurrently when --workers > 1), so it
// closes over nothing mutable.
int cmd_explore(const Args& a, const char* argv0) {
  // Hidden worker mode (sharded exploration): this process was exec'd by a
  // coordinator's DistPool with the pipe protocol on stdin/stdout. Steal
  // stdout for the protocol immediately and point fd 1 at stderr, so the
  // banner printfs below (and anything else that writes to stdout) cannot
  // corrupt a frame.
  const bool dist_worker = a.has("dist-worker");
  int proto_out = -1;
  if (dist_worker) {
    proto_out = ::dup(1);
    ensure(proto_out >= 0, "--dist-worker: dup(stdout) failed");
    ::dup2(2, 1);
  }

  const std::string target = a.get("target", "signal");
  const std::string model = a.get("model", "dsm");

  ExploreBuilder build;
  ExploreChecker check;
  // Canonical description of everything that determines the search results;
  // FNV-hashed into the checkpoint fingerprint so a checkpoint written under
  // one configuration refuses to resume under another. Worker count is
  // deliberately absent: verdicts are worker-count-invariant.
  std::string fp_src;
  if (target == "signal") {
    const int waiters =
        static_cast<int>(a.get_int("waiters", 2, 1, kIntMax - 1));
    const int polls = static_cast<int>(a.get_int("polls", 1, 0, kIntMax));
    const int nprocs = waiters + 1;
    make_model(model, nprocs);  // validate the name before workers spawn
    const SignalingFactory factory =
        make_signal_alg(a.get("alg", "registration"), nprocs - 1);
    build = [=]() {
      ExploreInstance inst;
      inst.mem = make_model(model, nprocs);
      std::shared_ptr<SignalingAlgorithm> alg{factory(*inst.mem)};
      std::vector<Program> programs;
      for (int i = 0; i < waiters; ++i) {
        programs.emplace_back([a = alg.get(), polls](ProcCtx& ctx) {
          return polling_waiter(ctx, a, polls);
        });
      }
      programs.emplace_back(
          [a = alg.get()](ProcCtx& ctx) { return signaler(ctx, a); });
      inst.sim = std::make_unique<Simulation>(*inst.mem, std::move(programs));
      inst.keepalive = alg;
      return inst;
    };
    check = [](const History& h) -> std::optional<std::string> {
      if (const auto v = check_polling_spec(h)) return v->what;
      return std::nullopt;
    };
    std::printf("explore signal: alg %s, model %s, %d waiters x %d polls\n",
                a.get("alg", "registration").c_str(), model.c_str(), waiters,
                polls);
    fp_src = "signal|alg=" + a.get("alg", "registration") + "|model=" +
             model + "|waiters=" + std::to_string(waiters) + "|polls=" +
             std::to_string(polls);
  } else if (target == "mutex") {
    const int nprocs = static_cast<int>(a.get_int("procs", 2, 1, kIntMax));
    const int passages =
        static_cast<int>(a.get_int("passages", 1, 0, kIntMax));
    const std::string lock_name = a.get("lock", "tas");
    // Validates the names before workers spawn.
    const LockFactory factory = lock_factory_by_name(lock_name);
    make_model(model, nprocs);
    build = [=]() {
      ExploreInstance inst;
      inst.mem = make_model(model, nprocs);
      std::shared_ptr<MutexAlgorithm> lock = factory(*inst.mem);
      inst.sim = std::make_unique<Simulation>(
          *inst.mem, make_mutex_programs(*inst.mem, lock, passages));
      inst.keepalive = lock;
      return inst;
    };
    check = [](const History& h) -> std::optional<std::string> {
      if (const auto v = check_mutual_exclusion(h)) return v->what;
      return std::nullopt;
    };
    std::printf("explore mutex: lock %s, model %s, %d procs x %d passages\n",
                lock_name.c_str(), model.c_str(), nprocs, passages);
    fp_src = "mutex|lock=" + lock_name + "|model=" + model + "|procs=" +
             std::to_string(nprocs) + "|passages=" + std::to_string(passages);
  } else {
    std::fprintf(stderr, "unknown explore target '%s' (signal|mutex)\n",
                 target.c_str());
    return 2;
  }

  const std::string mode_name = a.get("mode", "snapshot");
  SnapshotMode snapshot_mode;
  if (mode_name == "snapshot") {
    snapshot_mode = SnapshotMode::kSnapshot;
  } else if (mode_name == "replay") {
    snapshot_mode = SnapshotMode::kReplay;
  } else {
    std::fprintf(stderr, "unknown --mode '%s' (replay|snapshot)\n",
                 mode_name.c_str());
    return 2;
  }

  DporOptions opt;
  opt.max_depth = static_cast<int>(a.get_int("depth", 20, 1, kIntMax));
  opt.max_nodes =
      static_cast<std::uint64_t>(a.get_int("max-nodes", 2'000'000, 0, kLongMax));
  opt.workers = static_cast<int>(a.get_int("workers", 1, 1, kIntMax));
  opt.trunk_depth = static_cast<int>(a.get_int("trunk-depth", 6, 0, kIntMax));
  opt.snapshot_mode = snapshot_mode;
  opt.item_max_attempts =
      static_cast<int>(a.get_int("item-attempts", 3, 1, kIntMax));
  opt.retry_backoff_ms =
      static_cast<std::uint64_t>(a.get_int("backoff-ms", 1, 0, kLongMax));
  opt.item_node_limit =
      static_cast<std::uint64_t>(a.get_int("item-step-limit", 0, 0, kLongMax));
  // Deterministic worker-death injection for the robustness harness: the
  // first attempt of every item whose root schedule hashes to 0 mod N dies;
  // retries succeed. Independent of worker count and timing.
  const long inject_every =
      a.get_int("inject-worker-failures", 0, 0, kLongMax);
  if (inject_every > 0) {
    opt.inject_item_failure = [inject_every](const std::vector<ProcId>& sched,
                                             int attempt) {
      if (attempt > 1) return false;
      std::string key;
      for (const ProcId p : sched) {
        key += std::to_string(p);
        key += ',';
      }
      return fnv1a64(key) %
                 static_cast<std::uint64_t>(inject_every) == 0;
    };
  }

  fp_src += "|mode=" + mode_name + "|depth=" + std::to_string(opt.max_depth) +
            "|max-nodes=" + std::to_string(opt.max_nodes) + "|trunk-depth=" +
            std::to_string(opt.trunk_depth) + "|item-attempts=" +
            std::to_string(opt.item_max_attempts) + "|item-step-limit=" +
            std::to_string(opt.item_node_limit) + "|inject=" +
            std::to_string(inject_every);
  // Deliberately absent from fp_src, like the worker count: --shards only
  // moves where items run, so coordinator and workers fingerprint-match and
  // checkpoints stay valid across shard counts.

  if (dist_worker) {
    return dist::run_dist_worker(build, check, opt, fnv1a64(fp_src),
                                 /*in_fd=*/0, proto_out);
  }

  // Sharded coordinator: --shards S forks S worker processes (this binary,
  // re-exec'd with the same explore flags plus --dist-worker) and runs every
  // work item out-of-process. Coordinator-only flags are stripped from the
  // worker argv; everything that determines the search is forwarded, and the
  // hello handshake cross-checks the fingerprints.
  std::optional<dist::DistPool> pool;
  if (a.kv.count("shards") != 0 || a.has("shards")) {
    const int shards = static_cast<int>(a.get_int("shards", 1, 1, 256));
    std::vector<std::string> wargv;
    char self[4096];
    const ssize_t n = ::readlink("/proc/self/exe", self, sizeof self - 1);
    if (n > 0) {
      self[n] = '\0';
      wargv.push_back(self);
    } else {
      wargv.push_back(argv0);
    }
    wargv.push_back("explore");
    static const std::set<std::string> coordinator_only = {
        "shards",         "checkpoint-dir", "resume", "report",
        "snapshot-stats", "shrink",         "naive",  "dedup"};
    for (const auto& [k, v] : a.kv) {
      if (coordinator_only.count(k) != 0) continue;
      wargv.push_back("--" + k);
      wargv.push_back(v);
    }
    for (const auto& [k, on] : a.flags) {
      if (!on || coordinator_only.count(k) != 0) continue;
      wargv.push_back("--" + k);
    }
    wargv.push_back("--dist-worker");

    dist::DistPool::Config pc;
    pc.shards = shards;
    pc.worker_argv = std::move(wargv);
    pc.fingerprint = fnv1a64(fp_src);
    pc.item_max_attempts = opt.item_max_attempts;
    pc.collect_completes = static_cast<bool>(opt.on_complete_schedule);
    pool.emplace(std::move(pc));
    opt.dist = &*pool;
  }

  // Persistent frontier: --checkpoint-dir D records progress into D (a
  // fresh run wipes stale epochs first); --resume D loads the newest valid
  // epoch and continues. Checkpoint bookkeeping prints to stderr so stdout
  // and --report stay byte-identical between interrupted and uninterrupted
  // runs.
  std::optional<ExploreCheckpoint> ckpt;
  const bool resume = a.kv.count("resume") != 0;
  const std::string ck_dir =
      resume ? a.get("resume", "") : a.get("checkpoint-dir", "");
  if (resume && ck_dir.empty()) {
    std::fprintf(stderr, "--resume expects a checkpoint directory\n");
    return 2;
  }
  if (!ck_dir.empty()) {
    ExploreCheckpoint::Config cfg;
    cfg.dir = ck_dir;
    cfg.fingerprint = fnv1a64(fp_src);
    cfg.flush_interval =
        static_cast<int>(a.get_int("checkpoint-interval", 8, 1, kIntMax));
    if (const char* kill_at = std::getenv("RMRSIM_KILL_AFTER_EPOCH")) {
      // Self-fault injection for the resume harness: die by SIGKILL the
      // instant the N-th epoch is durably on disk. A malformed value is a
      // loud error, not a silent strtoull 0 (= die at the first epoch).
      char* end = nullptr;
      errno = 0;
      const unsigned long long at = std::strtoull(kill_at, &end, 10);
      ensure(*kill_at != '\0' && end != nullptr && *end == '\0' &&
                 errno == 0,
             std::string("RMRSIM_KILL_AFTER_EPOCH expects an integer, "
                         "got '") +
                 kill_at + "'");
      cfg.on_epoch_written = [at](std::uint64_t epoch) {
        if (epoch >= at) raise(SIGKILL);
      };
    }
    ckpt.emplace(std::move(cfg));
    if (resume) {
      const ExploreCheckpoint::LoadReport rep = ckpt->load_latest();
      for (const std::string& d : rep.discarded) {
        std::fprintf(stderr, "resume: discarded %s\n", d.c_str());
      }
      std::fprintf(stderr,
                   "resume: epoch %llu, %zu item outcomes, %zu quarantined\n",
                   static_cast<unsigned long long>(rep.epoch), rep.outcomes,
                   rep.quarantined);
    } else {
      ckpt->reset();
    }
    opt.checkpoint = &*ckpt;
  }

  const ExploreResult dpor = explore_dpor(build, check, opt);

  if (ckpt.has_value()) {
    std::fprintf(stderr,
                 "checkpoint: %llu epochs written, %llu item hits, "
                 "%llu worker failures, %llu retries\n",
                 static_cast<unsigned long long>(
                     dpor.stats.checkpoint_epochs),
                 static_cast<unsigned long long>(
                     dpor.stats.checkpoint_item_hits),
                 static_cast<unsigned long long>(dpor.stats.worker_failures),
                 static_cast<unsigned long long>(dpor.stats.item_retries));
  }

  TextTable t;
  t.set_header({"metric", "dpor"});
  t.add_row({"nodes visited", std::to_string(dpor.nodes_visited)});
  t.add_row({"complete schedules", std::to_string(dpor.complete_schedules)});
  t.add_row({"truncated schedules", std::to_string(dpor.truncated_schedules)});
  t.add_row({"exhausted",
             dpor.exhausted ? "yes"
                            : (dpor.quarantined_items.empty()
                                   ? "NO (max-nodes hit)"
                                   : "NO (items quarantined)")});
  t.add_row({"sleep-set prunes", std::to_string(dpor.stats.sleep_set_prunes)});
  t.add_row({"backtrack points", std::to_string(dpor.stats.backtrack_points)});
  t.add_row({"replayed sim steps", std::to_string(dpor.stats.replayed_steps)});
  t.add_row({"naive tree estimate", fixed(dpor.stats.naive_tree_estimate)});
  if (opt.workers > 1) {
    t.add_row({"parallel rounds", std::to_string(dpor.stats.rounds)});
    t.add_row({"work items", std::to_string(dpor.stats.work_items)});
  }
  if (a.has("snapshot-stats")) {
    t.add_row({"snapshot hits", std::to_string(dpor.stats.snapshot_hits)});
    t.add_row({"snapshot misses", std::to_string(dpor.stats.snapshot_misses)});
    t.add_row({"snapshots taken", std::to_string(dpor.stats.snapshots_taken)});
    t.add_row(
        {"snapshot evictions", std::to_string(dpor.stats.snapshot_evictions)});
    t.add_row({"snapshot delta steps",
               std::to_string(dpor.stats.snapshot_delta_steps)});
    t.add_row({"snapshot peak bytes",
               std::to_string(dpor.stats.snapshot_peak_bytes)});
  }
  t.add_row({"verdict", dpor.violation ? "VIOLATED: " + *dpor.violation
                                       : "no violation"});

  // The report is one deterministic string: printed to stdout and, with
  // --report FILE, atomically written for byte-comparison by the resume
  // harness. Interrupted-and-resumed runs must reproduce it exactly.
  std::string report = t.render();
  for (const ExploreResult::QuarantinedItem& q : dpor.quarantined_items) {
    report += "quarantined item (" + std::to_string(q.schedule.size()) +
              " steps): " + schedule_str(q.schedule) + " — " + q.reason +
              "\n";
  }
  if (dpor.violation) {
    report += "violating schedule (" +
              std::to_string(dpor.violating_schedule.size()) +
              " steps): " + schedule_str(dpor.violating_schedule) + "\n";
    if (a.has("shrink")) {
      const auto shrunk =
          shrink_counterexample(build, check, dpor.violating_schedule);
      if (shrunk.has_value()) {
        report += "shrunk to " + std::to_string(shrunk->schedule.size()) +
                  " steps (" + std::to_string(shrunk->candidates_tried) +
                  " candidates tried): " + schedule_str(shrunk->schedule) +
                  "\n";
      }
    }
  }
  std::fputs(report.c_str(), stdout);
  const std::string report_path = a.get("report", "");
  if (!report_path.empty()) write_file_atomic(report_path, report);

  if (a.has("naive")) {
    ExploreOptions naive_opt;
    naive_opt.max_depth = opt.max_depth;
    naive_opt.max_nodes = opt.max_nodes;
    naive_opt.snapshot_mode = snapshot_mode;
    const ExploreResult naive = explore_all_schedules(build, check, naive_opt);
    std::printf("naive: %llu nodes, %s, verdict %s\n",
                static_cast<unsigned long long>(naive.nodes_visited),
                naive.exhausted ? "exhausted" : "max-nodes hit",
                naive.violation ? ("VIOLATED: " + *naive.violation).c_str()
                                : "no violation");
    if (naive.exhausted && dpor.exhausted) {
      std::printf("agreement: %s; reduction: %.1fx fewer nodes\n",
                  naive.violation.has_value() == dpor.violation.has_value()
                      ? "yes"
                      : "NO — explorer bug",
                  static_cast<double>(naive.nodes_visited) /
                      static_cast<double>(std::max<std::uint64_t>(
                          1, dpor.nodes_visited)));
    }
  }
  return dpor.violation ? 1 : 0;
}

void usage() {
  std::fputs(
      "usage: rmrsim_cli <signal|mutex|adversary|gme|explore|sweep|trace> "
      "[--key value ...]\n"
      "  signal    --alg A --model M --waiters N --delay D --seed S\n"
      "            [--blocking] [--trace timeline|csv|json]\n"
      "            [--engine coro|compiled]  (compiled = bytecode fast\n"
      "                       path; falls back to coro for algorithms\n"
      "                       without a lowering — see the engine row)\n"
      "            [--protocols all|mesi,mesif,moesi,dragon]\n"
      "            [--write-buffer N]  (per-proc store buffer in front of\n"
      "                       the protocols; N entries, TSO drain order)\n"
      "  mutex     --lock L --model M --procs N --passages K --seed S\n"
      "            [--protocols ...] [--write-buffer N]  (as for signal)\n"
      "            L: mcs|ya|anderson|ticket|tas|clh|bakery|peterson|\n"
      "               recoverable\n"
      "            [--fault-plan step:proc=P,n=N[,recover=R]\n"
      "                        | rmr:proc=P,n=N[,recover=R]\n"
      "                        | random:rate=F[,seed=S][,recover=R][,max=M]]\n"
      "            [--max-steps B]  (bound for wedged crash runs)\n"
      "  adversary --alg A --n N [--lenient] [--no-erase] [--model M]\n"
      "  gme       --procs N --sessions K --passages P --model M\n"
      "  explore   --target signal|mutex --model M [--depth D]\n"
      "            [--max-nodes N] [--workers W] [--trunk-depth T]\n"
      "            [--shards S]  (fork S worker processes and run every\n"
      "                       work item out-of-process; the report is\n"
      "                       byte-identical for any S, 1..256)\n"
      "            [--mode replay|snapshot]  (state reconstruction engine;\n"
      "                       default snapshot — replay is the oracle)\n"
      "            [--snapshot-stats] (print snapshot cache counters)\n"
      "            [--naive]  (also run the unreduced explorer, compare)\n"
      "            [--shrink] (minimize any counterexample)\n"
      "            [--report FILE]  (write the results block atomically)\n"
      "            [--checkpoint-dir D | --resume D]  (persistent frontier:\n"
      "                       record progress into D / continue from the\n"
      "                       newest valid epoch in D)\n"
      "            [--checkpoint-interval K]  (epoch every K item outcomes)\n"
      "            [--item-attempts A] [--backoff-ms B]  (worker-failure\n"
      "                       retry policy: A attempts, exponential backoff)\n"
      "            [--item-step-limit L]  (per-attempt node deadline)\n"
      "            [--inject-worker-failures N]  (test hook: first attempt\n"
      "                       of every N-th item dies and is retried)\n"
      "            signal: --alg A --waiters N --polls P\n"
      "            mutex:  --lock L --procs N --passages K\n"
      "            model-checks every schedule class up to D macro steps;\n"
      "            exits 1 iff a violation is found\n"
      "  sweep     --exp e1..e9|e4_<protocol> [--workers W] [--out DIR]\n"
      "            [--max-n N]\n"
      "            [--deterministic] [--golden FILE]\n"
      "            [--check] [--list]\n"
      "            runs the experiment's declarative grid on W threads\n"
      "            (output is bit-identical for any W), writes\n"
      "            BENCH_<exp>.json, and fits each series' growth class;\n"
      "            --check exits 1 if a fit misses the paper's claim;\n"
      "            --max-n caps the grid for quick CI runs\n"
      "  trace     --gen private|hotset|zipf|ring|migratory | --in FILE\n"
      "            [--ops K] [--procs N] [--seed S]\n"
      "            [--models all|dsm,cc,cc-wb,cc-mesi,cc-lfcu]\n"
      "            [--protocols [all|mesi,mesif,moesi,dragon]]\n"
      "            [--write-buffer N] [--addr-map interleave[:B]|global|\n"
      "                       first-touch]  (address -> (var, home) policy)\n"
      "            [--cycle-cost fetch=F,transfer=T,signal=S,update=U,\n"
      "                       writeback=W]  (override protocol cycle costs)\n"
      "            [--emit FILE [--binary] [--no-replay]]  (save the trace)\n"
      "            [--workers W] [--out DIR] [--deterministic]\n"
      "            [--golden FILE]  (byte-compare BENCH_t1_*.json, exit 3)\n"
      "            replays the trace through every requested cost model and\n"
      "            protocol, writes BENCH_t1_<gen>.json; byte-identical for\n"
      "            any --workers count\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const Args args = parse(argc, argv, 2);
  try {
    if (cmd == "signal") return cmd_signal(args);
    if (cmd == "mutex") return cmd_mutex(args);
    if (cmd == "adversary") return cmd_adversary(args);
    if (cmd == "gme") return cmd_gme(args);
    if (cmd == "explore") return cmd_explore(args, argv[0]);
    if (cmd == "sweep") return cmd_sweep(args);
    if (cmd == "trace") return cmd_trace(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}
