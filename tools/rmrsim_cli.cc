// rmrsim — command-line driver.
//
// Run any algorithm under any model and get the ledgers, per-call costs,
// spec verdicts, or full traces without writing a harness:
//
//   rmrsim_cli signal    --alg registration --model dsm --waiters 32
//                        --delay 64 --seed 7 [--trace timeline|csv|json]
//   rmrsim_cli mutex     --lock mcs --model cc-wb --procs 16 --passages 4
//   rmrsim_cli adversary --alg registration --n 64 [--lenient] [--no-erase]
//   rmrsim_cli gme       --procs 16 --sessions 2 --passages 3
//
// Models: dsm | cc | cc-wb | cc-mesi | cc-lfcu.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "common/table.h"
#include "gme/session_gme.h"
#include "lowerbound/adversary.h"
#include "memory/cc_model.h"
#include "mutex/bakery_lock.h"
#include "mutex/clh_lock.h"
#include "mutex/mcs_lock.h"
#include "mutex/recoverable_lock.h"
#include "mutex/simple_locks.h"
#include "mutex/ya_lock.h"
#include "primitives/blocking_leader.h"
#include "primitives/rw_cas_registration.h"
#include "sched/fault.h"
#include "sched/schedulers.h"
#include "signaling/broken.h"
#include "signaling/cas_registration.h"
#include "signaling/cc_flag.h"
#include "signaling/checker.h"
#include "signaling/dsm_queue.h"
#include "signaling/dsm_registration.h"
#include "signaling/dsm_single_waiter.h"
#include "signaling/llsc_registration.h"
#include "signaling/workload.h"
#include "trace/call_stats.h"
#include "trace/export.h"
#include "verify/dpor.h"
#include "verify/explorer.h"
#include "verify/shrink.h"

using namespace rmrsim;

namespace {

struct Args {
  std::map<std::string, std::string> kv;
  std::map<std::string, bool> flags;

  std::string get(const std::string& key, const std::string& def) const {
    auto it = kv.find(key);
    return it == kv.end() ? def : it->second;
  }
  long get_int(const std::string& key, long def) const {
    auto it = kv.find(key);
    return it == kv.end() ? def : std::atol(it->second.c_str());
  }
  bool has(const std::string& flag) const { return flags.count(flag) != 0; }
};

Args parse(int argc, char** argv, int first) {
  Args a;
  for (int i = first; i < argc; ++i) {
    std::string s = argv[i];
    if (s.rfind("--", 0) != 0) continue;
    s = s.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      a.kv[s] = argv[++i];
    } else {
      a.flags[s] = true;
    }
  }
  return a;
}

std::unique_ptr<SharedMemory> make_model(const std::string& name, int nprocs) {
  if (name == "dsm") return make_dsm(nprocs);
  if (name == "cc") return make_cc(nprocs, CcPolicy::kWriteThrough);
  if (name == "cc-wb") return make_cc(nprocs, CcPolicy::kWriteBack);
  if (name == "cc-mesi") return make_cc(nprocs, CcPolicy::kMesi);
  if (name == "cc-lfcu") return make_cc(nprocs, CcPolicy::kLfcu);
  std::fprintf(stderr, "unknown model '%s' (dsm|cc|cc-wb|cc-mesi|cc-lfcu)\n",
               name.c_str());
  std::exit(2);
}

// `fixed_home`: which process hosts the fixed-signaler state of the
// registration variant. The workload command uses the actual signaler
// (nprocs-1); the adversary command uses a waiter (n-2) because the
// Lemma 6.13 signaler must have an unwritten module.
SignalingFactory make_signal_alg(const std::string& name, int fixed_home) {
  if (name == "flag") {
    return [](SharedMemory& m) { return std::make_unique<CcFlagSignal>(m); };
  }
  if (name == "single-waiter") {
    return [](SharedMemory& m) {
      return std::make_unique<DsmSingleWaiterSignal>(m);
    };
  }
  if (name == "registration") {
    return [fixed_home](SharedMemory& m) {
      return std::make_unique<DsmRegistrationSignal>(
          m, static_cast<ProcId>(fixed_home));
    };
  }
  if (name == "queue") {
    return [](SharedMemory& m) { return std::make_unique<DsmQueueSignal>(m); };
  }
  if (name == "cas") {
    return [](SharedMemory& m) {
      return std::make_unique<CasRegistrationSignal>(m);
    };
  }
  if (name == "llsc") {
    return [](SharedMemory& m) {
      return std::make_unique<LlscRegistrationSignal>(m);
    };
  }
  if (name == "rw-cas") {
    return [](SharedMemory& m) {
      return std::make_unique<RwCasRegistrationSignal>(m);
    };
  }
  if (name == "blocking-leader") {
    return [](SharedMemory& m) {
      return std::make_unique<DsmBlockingLeaderSignal>(m);
    };
  }
  if (name == "broken") {
    return [](SharedMemory& m) { return std::make_unique<BrokenLocalSignal>(m); };
  }
  std::fprintf(stderr,
               "unknown algorithm '%s' (flag|single-waiter|registration|"
               "queue|cas|llsc|rw-cas|blocking-leader|broken)\n",
               name.c_str());
  std::exit(2);
}

std::unique_ptr<MutexAlgorithm> make_lock(const std::string& name,
                                          SharedMemory& mem) {
  if (name == "mcs") return std::make_unique<McsLock>(mem);
  if (name == "ya") return std::make_unique<YangAndersonLock>(mem);
  if (name == "anderson") return std::make_unique<AndersonArrayLock>(mem);
  if (name == "ticket") return std::make_unique<TicketLock>(mem);
  if (name == "tas") return std::make_unique<TasLock>(mem);
  if (name == "clh") return std::make_unique<ClhLock>(mem);
  if (name == "bakery") return std::make_unique<BakeryLock>(mem);
  if (name == "recoverable") return std::make_unique<RecoverableSpinLock>(mem);
  std::fprintf(stderr,
               "unknown lock '%s' "
               "(mcs|ya|anderson|ticket|tas|clh|bakery|recoverable)\n",
               name.c_str());
  std::exit(2);
}

int cmd_signal(const Args& a) {
  const int waiters = static_cast<int>(a.get_int("waiters", 8));
  const int nprocs = waiters + 1;
  const std::string alg_name = a.get("alg", "flag");
  SignalingWorkloadOptions opt;
  opt.n_waiters = waiters;
  opt.signaler_idle_polls = static_cast<int>(a.get_int("delay", 16));
  opt.scheduler_seed = static_cast<std::uint64_t>(a.get_int("seed", 0));
  opt.blocking = a.has("blocking");
  if (opt.blocking) opt.signaler_idle_polls = 0;
  auto run =
      run_signaling_workload(make_model(a.get("model", "dsm"), nprocs),
                             make_signal_alg(alg_name, nprocs - 1), opt);

  const std::string trace = a.get("trace", "");
  if (trace == "csv") {
    std::fputs(history_to_csv(run.sim->history()).c_str(), stdout);
    return 0;
  }
  if (trace == "json") {
    std::fputs(history_to_json_lines(run.sim->history()).c_str(), stdout);
    return 0;
  }
  if (trace == "timeline") {
    std::fputs(history_timeline(run.sim->history()).c_str(), stdout);
  }

  std::printf("algorithm %s, model %s, %d waiters + 1 signaler\n",
              run.alg->name().data(), run.mem->model().name().data(),
              waiters);
  TextTable t;
  t.set_header({"metric", "value"});
  t.add_row({"steps", std::to_string(run.sim->history().size())});
  t.add_row({"total RMRs", std::to_string(run.mem->ledger().total_rmrs())});
  t.add_row({"max waiter RMRs", std::to_string(run.max_waiter_rmrs())});
  t.add_row({"signaler RMRs", std::to_string(run.signaler_rmrs())});
  t.add_row({"amortized RMRs", fixed(run.amortized_rmrs())});
  const auto costs = per_call_costs(run.sim->history());
  t.add_row({"steady-state poll RMRs (max)",
             std::to_string(max_rmrs_from_index(costs, calls::kPoll, 1))});
  const auto violation = opt.blocking
                             ? check_blocking_spec(run.sim->history())
                             : check_polling_spec(run.sim->history());
  t.add_row({"spec", violation ? "VIOLATED: " + violation->what : "ok"});
  std::fputs(t.render().c_str(), stdout);
  return violation ? 1 : 0;
}

int cmd_mutex(const Args& a) {
  const int nprocs = static_cast<int>(a.get_int("procs", 8));
  const int passages = static_cast<int>(a.get_int("passages", 3));
  const std::string lock_name = a.get("lock", "mcs");
  auto mem = make_model(a.get("model", "dsm"), nprocs);
  std::unique_ptr<MutexAlgorithm> lock = make_lock(lock_name, *mem);
  std::vector<Program> programs;
  // Recoverable locks get the crash-restartable worker (progress lives in
  // shared memory, so a recovered program resumes where its done-counter
  // says); plain locks keep the classic worker — under a fault plan they
  // may wedge, which is the point of the comparison.
  if (auto* rec = dynamic_cast<RecoverableMutexAlgorithm*>(lock.get())) {
    std::vector<VarId> done;
    for (int p = 0; p < nprocs; ++p) {
      done.push_back(mem->allocate_global(0, "done"));
    }
    for (int p = 0; p < nprocs; ++p) {
      programs.emplace_back([rec, dv = done[p], passages](ProcCtx& ctx) {
        return recoverable_mutex_worker(ctx, rec, dv, passages);
      });
    }
  } else {
    MutexAlgorithm* l = lock.get();
    for (int i = 0; i < nprocs; ++i) {
      programs.emplace_back([l, passages](ProcCtx& ctx) {
        return mutex_worker(ctx, l, passages);
      });
    }
  }
  Simulation sim(*mem, std::move(programs));
  const std::uint64_t seed = static_cast<std::uint64_t>(a.get_int("seed", 0));
  std::unique_ptr<Scheduler> inner;
  if (seed == 0) {
    inner = std::make_unique<RoundRobinScheduler>();
  } else {
    inner = std::make_unique<RandomScheduler>(seed);
  }
  const std::string plan_spec = a.get("fault-plan", "");
  // A crashed non-recoverable lock wedges forever; --max-steps bounds how
  // long we spin before reporting "completed NO".
  const auto max_steps =
      static_cast<std::uint64_t>(a.get_int("max-steps", 500'000'000));
  Simulation::RunResult result{};
  if (plan_spec.empty()) {
    result = sim.run(*inner, max_steps);
  } else {
    FaultScheduler faulty(*inner, parse_fault_plan(plan_spec));
    result = sim.run(faulty, max_steps);
  }
  const auto violation = check_mutual_exclusion(sim.history());
  std::printf("lock %s, model %s, %d procs x %d passages\n",
              lock->name().data(), mem->model().name().data(), nprocs,
              passages);
  TextTable t;
  t.set_header({"metric", "value"});
  t.add_row({"completed", result.all_terminated ? "yes" : "NO"});
  t.add_row({"total RMRs", std::to_string(mem->ledger().total_rmrs())});
  t.add_row({"RMRs/passage",
             fixed(static_cast<double>(mem->ledger().total_rmrs()) /
                   static_cast<double>(nprocs * passages))});
  t.add_row({"mutual exclusion",
             violation ? "VIOLATED: " + violation->what : "ok"});
  if (!plan_spec.empty()) {
    const CrashRunReport rep = analyze_crash_run(sim.history());
    t.add_row({"crashes", std::to_string(rep.crashes)});
    t.add_row({"recoveries", std::to_string(rep.recoveries)});
    t.add_row({"failed recoveries", std::to_string(rep.failed_recoveries)});
    t.add_row({"FIFO inversions (reported, not asserted)",
               std::to_string(rep.fifo_inversions)});
  }
  std::fputs(t.render().c_str(), stdout);
  return violation || !result.all_terminated ? 1 : 0;
}

int cmd_adversary(const Args& a) {
  const int n = static_cast<int>(a.get_int("n", 32));
  AdversaryConfig c;
  c.nprocs = n;
  c.construction =
      a.has("lenient") ? Construction::kLenient : Construction::kStrict;
  c.erase_during_chase = !a.has("no-erase");
  const std::string model = a.get("model", "dsm");
  if (model != "dsm") {
    c.make_memory = [model](int k) { return make_model(model, k); };
    c.construction = Construction::kLenient;  // strict requires DSM
    c.erase_during_chase = false;
  }
  SignalingAdversary adv(make_signal_alg(a.get("alg", "registration"), n - 2),
                         c);
  const auto report = adv.run();
  std::fputs(report.to_string().c_str(), stdout);
  return report.spec_violation ? 1 : 0;
}

int cmd_gme(const Args& a) {
  const int nprocs = static_cast<int>(a.get_int("procs", 8));
  const int passages = static_cast<int>(a.get_int("passages", 3));
  const int n_sessions = static_cast<int>(a.get_int("sessions", 2));
  auto mem = make_model(a.get("model", "dsm"), nprocs);
  SessionGme alg(*mem, std::make_unique<McsLock>(*mem));
  std::vector<Program> programs;
  for (int i = 0; i < nprocs; ++i) {
    std::vector<Word> sessions = {i / std::max(1, nprocs / n_sessions)};
    programs.emplace_back([&alg, passages, sessions](ProcCtx& ctx) {
      return gme_worker(ctx, &alg, passages, sessions, /*cs_dwell=*/20);
    });
  }
  Simulation sim(*mem, std::move(programs));
  RoundRobinScheduler rr;
  const auto result = sim.run(rr, 500'000'000);
  const auto violation = check_gme_safety(sim.history());
  TextTable t;
  t.set_header({"metric", "value"});
  t.add_row({"completed", result.all_terminated ? "yes" : "NO"});
  t.add_row({"max CS occupancy",
             std::to_string(max_cs_occupancy(sim.history()))});
  t.add_row({"RMRs/passage",
             fixed(static_cast<double>(mem->ledger().total_rmrs()) /
                   static_cast<double>(nprocs * passages))});
  t.add_row({"session safety",
             violation ? "VIOLATED: " + violation->what : "ok"});
  std::fputs(t.render().c_str(), stdout);
  return violation ? 1 : 0;
}

std::string schedule_str(const std::vector<ProcId>& s) {
  std::string out;
  for (const ProcId p : s) {
    if (!out.empty()) out += ' ';
    out += std::to_string(p);
  }
  return out;
}

// Model-check a small configuration: DPOR exploration of every schedule
// class up to --depth, optionally racing the naive explorer on the same
// bounds (--naive) and shrinking any counterexample (--shrink). The builder
// is called once per tree node (and concurrently when --workers > 1), so it
// closes over nothing mutable.
int cmd_explore(const Args& a) {
  const std::string target = a.get("target", "signal");
  const std::string model = a.get("model", "dsm");

  ExploreBuilder build;
  ExploreChecker check;
  if (target == "signal") {
    const int waiters = static_cast<int>(a.get_int("waiters", 2));
    const int polls = static_cast<int>(a.get_int("polls", 1));
    const int nprocs = waiters + 1;
    make_model(model, nprocs);  // validate the name before workers spawn
    const SignalingFactory factory =
        make_signal_alg(a.get("alg", "registration"), nprocs - 1);
    build = [=]() {
      ExploreInstance inst;
      inst.mem = make_model(model, nprocs);
      std::shared_ptr<SignalingAlgorithm> alg{factory(*inst.mem)};
      std::vector<Program> programs;
      for (int i = 0; i < waiters; ++i) {
        programs.emplace_back([a = alg.get(), polls](ProcCtx& ctx) {
          return polling_waiter(ctx, a, polls);
        });
      }
      programs.emplace_back(
          [a = alg.get()](ProcCtx& ctx) { return signaler(ctx, a); });
      inst.sim = std::make_unique<Simulation>(*inst.mem, std::move(programs));
      inst.keepalive = alg;
      return inst;
    };
    check = [](const History& h) -> std::optional<std::string> {
      if (const auto v = check_polling_spec(h)) return v->what;
      return std::nullopt;
    };
    std::printf("explore signal: alg %s, model %s, %d waiters x %d polls\n",
                a.get("alg", "registration").c_str(), model.c_str(), waiters,
                polls);
  } else if (target == "mutex") {
    const int nprocs = static_cast<int>(a.get_int("procs", 2));
    const int passages = static_cast<int>(a.get_int("passages", 1));
    const std::string lock_name = a.get("lock", "tas");
    make_lock(lock_name, *make_model(model, nprocs));  // validate names
    build = [=]() {
      ExploreInstance inst;
      inst.mem = make_model(model, nprocs);
      std::shared_ptr<MutexAlgorithm> lock{make_lock(lock_name, *inst.mem)};
      std::vector<Program> programs;
      if (auto* rec = dynamic_cast<RecoverableMutexAlgorithm*>(lock.get())) {
        std::vector<VarId> done;
        for (int p = 0; p < nprocs; ++p) {
          done.push_back(inst.mem->allocate_global(0, "done"));
        }
        for (int p = 0; p < nprocs; ++p) {
          programs.emplace_back([rec, dv = done[p], passages](ProcCtx& ctx) {
            return recoverable_mutex_worker(ctx, rec, dv, passages);
          });
        }
      } else {
        for (int p = 0; p < nprocs; ++p) {
          programs.emplace_back([l = lock.get(), passages](ProcCtx& ctx) {
            return mutex_worker(ctx, l, passages);
          });
        }
      }
      inst.sim = std::make_unique<Simulation>(*inst.mem, std::move(programs));
      inst.keepalive = lock;
      return inst;
    };
    check = [](const History& h) -> std::optional<std::string> {
      if (const auto v = check_mutual_exclusion(h)) return v->what;
      return std::nullopt;
    };
    std::printf("explore mutex: lock %s, model %s, %d procs x %d passages\n",
                lock_name.c_str(), model.c_str(), nprocs, passages);
  } else {
    std::fprintf(stderr, "unknown explore target '%s' (signal|mutex)\n",
                 target.c_str());
    return 2;
  }

  DporOptions opt;
  opt.max_depth = static_cast<int>(a.get_int("depth", 20));
  opt.max_nodes = static_cast<std::uint64_t>(a.get_int("max-nodes", 2'000'000));
  opt.workers = static_cast<int>(a.get_int("workers", 1));
  opt.trunk_depth = static_cast<int>(a.get_int("trunk-depth", 6));
  const ExploreResult dpor = explore_dpor(build, check, opt);

  TextTable t;
  t.set_header({"metric", "dpor"});
  t.add_row({"nodes visited", std::to_string(dpor.nodes_visited)});
  t.add_row({"complete schedules", std::to_string(dpor.complete_schedules)});
  t.add_row({"truncated schedules", std::to_string(dpor.truncated_schedules)});
  t.add_row({"exhausted", dpor.exhausted ? "yes" : "NO (max-nodes hit)"});
  t.add_row({"sleep-set prunes", std::to_string(dpor.stats.sleep_set_prunes)});
  t.add_row({"backtrack points", std::to_string(dpor.stats.backtrack_points)});
  t.add_row({"replayed sim steps", std::to_string(dpor.stats.replayed_steps)});
  t.add_row({"naive tree estimate", fixed(dpor.stats.naive_tree_estimate)});
  if (opt.workers > 1) {
    t.add_row({"parallel rounds", std::to_string(dpor.stats.rounds)});
    t.add_row({"work items", std::to_string(dpor.stats.work_items)});
  }
  t.add_row({"verdict", dpor.violation ? "VIOLATED: " + *dpor.violation
                                       : "no violation"});
  std::fputs(t.render().c_str(), stdout);

  if (dpor.violation) {
    std::printf("violating schedule (%zu steps): %s\n",
                dpor.violating_schedule.size(),
                schedule_str(dpor.violating_schedule).c_str());
    if (a.has("shrink")) {
      const auto shrunk =
          shrink_counterexample(build, check, dpor.violating_schedule);
      if (shrunk.has_value()) {
        std::printf("shrunk to %zu steps (%d candidates tried): %s\n",
                    shrunk->schedule.size(), shrunk->candidates_tried,
                    schedule_str(shrunk->schedule).c_str());
      }
    }
  }

  if (a.has("naive")) {
    ExploreOptions naive_opt;
    naive_opt.max_depth = opt.max_depth;
    naive_opt.max_nodes = opt.max_nodes;
    const ExploreResult naive = explore_all_schedules(build, check, naive_opt);
    std::printf("naive: %llu nodes, %s, verdict %s\n",
                static_cast<unsigned long long>(naive.nodes_visited),
                naive.exhausted ? "exhausted" : "max-nodes hit",
                naive.violation ? ("VIOLATED: " + *naive.violation).c_str()
                                : "no violation");
    if (naive.exhausted && dpor.exhausted) {
      std::printf("agreement: %s; reduction: %.1fx fewer nodes\n",
                  naive.violation.has_value() == dpor.violation.has_value()
                      ? "yes"
                      : "NO — explorer bug",
                  static_cast<double>(naive.nodes_visited) /
                      static_cast<double>(std::max<std::uint64_t>(
                          1, dpor.nodes_visited)));
    }
  }
  return dpor.violation ? 1 : 0;
}

void usage() {
  std::fputs(
      "usage: rmrsim_cli <signal|mutex|adversary|gme|explore> "
      "[--key value ...]\n"
      "  signal    --alg A --model M --waiters N --delay D --seed S\n"
      "            [--blocking] [--trace timeline|csv|json]\n"
      "  mutex     --lock L --model M --procs N --passages K --seed S\n"
      "            L: mcs|ya|anderson|ticket|tas|clh|bakery|recoverable\n"
      "            [--fault-plan step:proc=P,n=N[,recover=R]\n"
      "                        | rmr:proc=P,n=N[,recover=R]\n"
      "                        | random:rate=F[,seed=S][,recover=R][,max=M]]\n"
      "            [--max-steps B]  (bound for wedged crash runs)\n"
      "  adversary --alg A --n N [--lenient] [--no-erase] [--model M]\n"
      "  gme       --procs N --sessions K --passages P --model M\n"
      "  explore   --target signal|mutex --model M [--depth D]\n"
      "            [--max-nodes N] [--workers W] [--trunk-depth T]\n"
      "            [--naive]  (also run the unreduced explorer, compare)\n"
      "            [--shrink] (minimize any counterexample)\n"
      "            signal: --alg A --waiters N --polls P\n"
      "            mutex:  --lock L --procs N --passages K\n"
      "            model-checks every schedule class up to D macro steps;\n"
      "            exits 1 iff a violation is found\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const Args args = parse(argc, argv, 2);
  try {
    if (cmd == "signal") return cmd_signal(args);
    if (cmd == "mutex") return cmd_mutex(args);
    if (cmd == "adversary") return cmd_adversary(args);
    if (cmd == "gme") return cmd_gme(args);
    if (cmd == "explore") return cmd_explore(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}
