#include "coherence/cache_controller.h"

#include <utility>

#include "common/check.h"

namespace rmrsim {

std::string_view to_string(LineState s) {
  switch (s) {
    case LineState::kInvalid: return "I";
    case LineState::kShared: return "S";
    case LineState::kExclusive: return "E";
    case LineState::kModified: return "M";
    case LineState::kOwned: return "O";
    case LineState::kForward: return "F";
    case LineState::kSharedClean: return "Sc";
    case LineState::kSharedModified: return "Sm";
  }
  return "?";
}

SnoopingCache::SnoopingCache(std::string name, int nprocs, CycleCosts costs)
    : nprocs_(nprocs), costs_(costs), name_(std::move(name)),
      proc_cycles_(static_cast<std::size_t>(nprocs), 0) {
  ensure(nprocs > 0, "SnoopingCache needs at least one processor");
}

SnoopingCache::Line& SnoopingCache::line_mut(VarId v) {
  ensure(v >= 0, "variable id out of range");
  if (static_cast<std::size_t>(v) >= lines_.size()) {
    lines_.resize(static_cast<std::size_t>(v) + 1);
  }
  Line& l = lines_[static_cast<std::size_t>(v)];
  if (l.st.empty()) {
    l.st.assign(static_cast<std::size_t>(nprocs_), LineState::kInvalid);
    l.ver.assign(static_cast<std::size_t>(nprocs_), 0);
  }
  return l;
}

const SnoopingCache::Line* SnoopingCache::line(VarId v) const {
  if (v < 0 || static_cast<std::size_t>(v) >= lines_.size()) return nullptr;
  const Line& l = lines_[static_cast<std::size_t>(v)];
  return l.st.empty() ? nullptr : &l;
}

LineState SnoopingCache::state(ProcId p, VarId v) const {
  const Line* l = line(v);
  if (l == nullptr || p < 0 || p >= nprocs_) return LineState::kInvalid;
  return l->st[static_cast<std::size_t>(p)];
}

std::uint64_t SnoopingCache::proc_cycles(ProcId p) const {
  ensure(p >= 0 && p < nprocs_, "proc id out of range");
  return proc_cycles_[static_cast<std::size_t>(p)];
}

void SnoopingCache::on_event(const CoherenceEvent& e) {
  access(e.proc, e.var, e.nontrivial);
}

void SnoopingCache::access(ProcId p, VarId v, bool write_access) {
  ensure(p >= 0 && p < nprocs_, "access by out-of-range proc");
  Line& l = line_mut(v);
  event_cycles_ = 0;
  if (write_access) {
    write(l, p);
  } else {
    read(l, p);
  }
  if (cycle_log_enabled_) cycle_log_.push_back(event_cycles_);
}

void SnoopingCache::on_crash(ProcId p) {
  ensure(p >= 0 && p < nprocs_, "crash of out-of-range proc");
  for (Line& l : lines_) {
    if (l.st.empty()) continue;
    LineState& s = l.st[static_cast<std::size_t>(p)];
    if (s == LineState::kInvalid) continue;
    // A dirty owner's copy is treated as flushed before the power-off, so
    // memory is current again and later fills cannot see stale data. No
    // cycles are charged: crashes are free in the pricing model.
    const bool dirty_owner = s == LineState::kModified ||
                             s == LineState::kOwned ||
                             s == LineState::kSharedModified;
    s = LineState::kInvalid;
    l.ver[static_cast<std::size_t>(p)] = 0;
    if (dirty_owner) l.memory_stale = false;
  }
}

void SnoopingCache::reset() {
  MessageCounter::reset();
  updates_ = 0;
  stats_.reset();
  lines_.clear();
  proc_cycles_.assign(static_cast<std::size_t>(nprocs_), 0);
  cycle_log_.clear();
}

void SnoopingCache::charge_cycles(ProcId p, std::uint64_t cycles) {
  stats_.cycles += cycles;
  proc_cycles_[static_cast<std::size_t>(p)] += cycles;
  event_cycles_ += cycles;
}

void SnoopingCache::charge_hit(ProcId p) {
  ++stats_.cache_hits;
  (void)p;  // hits are free; the tally still names the proc's access
}

void SnoopingCache::charge_memory_fetch(ProcId p) {
  ++stats_.memory_fetches;
  ++transfers_;
  charge_cycles(p, costs_.memory_fetch);
}

void SnoopingCache::charge_cache_transfer(ProcId p) {
  ++stats_.cache_transfers;
  ++transfers_;
  charge_cycles(p, costs_.cache_transfer);
}

void SnoopingCache::charge_bus_signal(ProcId p) {
  ++stats_.bus_signals;
  charge_cycles(p, costs_.bus_signal);
}

void SnoopingCache::charge_bus_update(ProcId p) {
  ++stats_.bus_updates;
  charge_cycles(p, costs_.bus_update);
}

void SnoopingCache::charge_write_back(ProcId p) {
  ++stats_.write_backs;
  charge_cycles(p, costs_.write_back);
}

void SnoopingCache::invalidate_others(Line& l, ProcId p) {
  for (int q = 0; q < nprocs_; ++q) {
    if (q == p) continue;
    LineState& s = l.st[static_cast<std::size_t>(q)];
    if (s == LineState::kInvalid) continue;
    s = LineState::kInvalid;
    l.ver[static_cast<std::size_t>(q)] = 0;
    ++invalidations_;
    ++useful_;  // a snooping cache only invalidates copies that exist
  }
}

void SnoopingCache::update_others(Line& l, ProcId p) {
  for (int q = 0; q < nprocs_; ++q) {
    if (q == p) continue;
    if (l.st[static_cast<std::size_t>(q)] == LineState::kInvalid) continue;
    l.ver[static_cast<std::size_t>(q)] = l.version;
    ++updates_;
  }
}

void SnoopingCache::fill(Line& l, ProcId p, LineState s) {
  l.st[static_cast<std::size_t>(p)] = s;
  l.ver[static_cast<std::size_t>(p)] = l.version;
}

void SnoopingCache::bump_version(Line& l, ProcId p) {
  ++l.version;
  l.ver[static_cast<std::size_t>(p)] = l.version;
}

int SnoopingCache::count_valid_others(const Line& l, ProcId p) const {
  int n = 0;
  for (int q = 0; q < nprocs_; ++q) {
    if (q != p && l.st[static_cast<std::size_t>(q)] != LineState::kInvalid) {
      ++n;
    }
  }
  return n;
}

ProcId SnoopingCache::find_other(const Line& l, ProcId p, LineState s) const {
  for (int q = 0; q < nprocs_; ++q) {
    if (q != p && l.st[static_cast<std::size_t>(q)] == s) return q;
  }
  return kNoProc;
}

std::optional<std::string> SnoopingCache::check_invariants() const {
  // Tally consistency first: it catches miscounting even on empty lines.
  if (useful_ > invalidations_) {
    return "useful invalidations exceed invalidation messages";
  }
  if (total_messages() != transfers_ + invalidations_ + updates_) {
    return "total_messages out of sync with its components";
  }
  for (VarId v = 0; static_cast<std::size_t>(v) < lines_.size(); ++v) {
    const Line& l = lines_[static_cast<std::size_t>(v)];
    if (l.st.empty()) continue;
    // Every valid copy must hold the latest value — invalidation protocols
    // guarantee it by destroying stale copies, Dragon by refreshing them.
    for (int q = 0; q < nprocs_; ++q) {
      if (l.st[static_cast<std::size_t>(q)] == LineState::kInvalid) continue;
      if (l.ver[static_cast<std::size_t>(q)] != l.version) {
        return "stale valid copy: proc " + std::to_string(q) + " holds v" +
               std::to_string(v) + " at version " +
               std::to_string(l.ver[static_cast<std::size_t>(q)]) + " of " +
               std::to_string(l.version);
      }
    }
    if (auto err = check_line(l, v)) return err;
  }
  return std::nullopt;
}

}  // namespace rmrsim
