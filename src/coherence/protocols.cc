#include "coherence/protocols.h"

namespace rmrsim {

void BusBroadcastCounter::on_event(const CoherenceEvent& e) {
  if (!e.rmr) return;
  // One bus transaction per RMR; for a nontrivial op, the same broadcast
  // doubles as the (single) invalidation for all remote copies.
  ++transfers_;
  if (e.nontrivial) {
    ++invalidations_;
    if (e.remote_copies_before > 0) ++useful_;
  }
}

void IdealDirectoryCounter::on_event(const CoherenceEvent& e) {
  if (e.rmr) ++transfers_;
  if (e.nontrivial) {
    // Exact sharer set: one point-to-point invalidation per existing remote
    // copy, all of them useful by construction.
    invalidations_ += static_cast<std::uint64_t>(e.remote_copies_before);
    useful_ += static_cast<std::uint64_t>(e.remote_copies_before);
  }
}

void CoarseDirectoryCounter::on_event(const CoherenceEvent& e) {
  if (static_cast<std::size_t>(e.var) >= maybe_cached_.size()) {
    maybe_cached_.resize(static_cast<std::size_t>(e.var) + 1, false);
  }
  if (e.rmr) ++transfers_;
  auto bit = maybe_cached_[static_cast<std::size_t>(e.var)];
  if (e.nontrivial) {
    if (bit) {
      // The directory only knows "someone may hold it": broadcast to all
      // other processors; only the copies that actually existed were useful.
      invalidations_ += static_cast<std::uint64_t>(nprocs_ - 1);
      useful_ += static_cast<std::uint64_t>(e.remote_copies_before);
      maybe_cached_[static_cast<std::size_t>(e.var)] = false;
    }
    return;
  }
  // A fetch (read-like RMR) may leave a cached copy somewhere; the single
  // state bit cannot record *whose*, so it is simply set.
  if (e.rmr) {
    maybe_cached_[static_cast<std::size_t>(e.var)] = true;
  }
}

}  // namespace rmrsim
