// Interconnect message accounting under different coherence protocols.
//
// Section 8 of the paper examines the "exchange rate" between RMRs and actual
// interconnect messages: on a broadcast bus one message serves any RMR (RMRs
// are "at par" with messages); an idealized directory sends one invalidation
// per cached copy actually destroyed (amortized messages track amortized
// RMRs, because a copy must be created by an RMR before it can be invalidated
// once); a realistic coarse directory keeps too little state and sends
// superfluous invalidations, so message complexity can exceed RMR complexity
// asymptotically. These counters consume CoherenceEvents published by
// SharedMemory and regenerate that analysis as experiment E4.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "memory/cost_model.h"

namespace rmrsim {

/// Common tallies every protocol counter exposes.
class MessageCounter : public CoherenceListener {
 public:
  /// Messages that carry data for the access itself (one per RMR).
  std::uint64_t transfer_messages() const { return transfers_; }

  /// Invalidation messages sent to other caches.
  std::uint64_t invalidation_messages() const { return invalidations_; }

  /// Update messages sent to other caches (write-update protocols only;
  /// invalidation-based counters report 0).
  virtual std::uint64_t update_messages() const { return 0; }

  /// Invalidation messages that destroyed a copy that actually existed.
  /// superfluous = invalidation_messages - useful.
  std::uint64_t useful_invalidations() const { return useful_; }

  std::uint64_t superfluous_invalidations() const {
    return invalidations_ - useful_;
  }

  std::uint64_t total_messages() const {
    return transfers_ + invalidations_ + update_messages();
  }

  virtual std::string_view name() const = 0;

  virtual void reset() {
    transfers_ = 0;
    invalidations_ = 0;
    useful_ = 0;
  }

 protected:
  std::uint64_t transfers_ = 0;
  std::uint64_t invalidations_ = 0;
  std::uint64_t useful_ = 0;
};

/// Shared snooping bus: every RMR is one broadcast transaction that both
/// transfers data and invalidates every stale copy. Messages == RMRs.
class BusBroadcastCounter final : public MessageCounter {
 public:
  void on_event(const CoherenceEvent& e) override;
  std::string_view name() const override { return "bus-broadcast"; }
};

/// Idealized directory: tracks the exact sharer set (≈N bits of state per
/// line, which Section 8 calls unrealistic), so a write sends exactly one
/// invalidation per remote copy that exists. No superfluous messages.
class IdealDirectoryCounter final : public MessageCounter {
 public:
  void on_event(const CoherenceEvent& e) override;
  std::string_view name() const override { return "ideal-directory"; }
};

/// Fans one event stream out to several counters, so one run can be priced
/// under every protocol simultaneously (SharedMemory takes one listener).
class ListenerFanout final : public CoherenceListener {
 public:
  void add(CoherenceListener* listener) { listeners_.push_back(listener); }
  void on_event(const CoherenceEvent& e) override {
    for (CoherenceListener* l : listeners_) l->on_event(e);
  }
  void on_crash(ProcId p) override {
    for (CoherenceListener* l : listeners_) l->on_crash(p);
  }
  void flush() override {
    for (CoherenceListener* l : listeners_) l->flush();
  }

 private:
  std::vector<CoherenceListener*> listeners_;
};

/// Coarse directory: one sticky "maybe cached somewhere" bit per line. Any
/// fetch sets the bit; a write with the bit set must broadcast invalidations
/// to all other processors (it cannot tell who holds copies), then clears
/// the bit. Most of those invalidations can be superfluous — the Section 8
/// regime where message complexity exceeds RMR complexity.
class CoarseDirectoryCounter final : public MessageCounter {
 public:
  explicit CoarseDirectoryCounter(int nprocs) : nprocs_(nprocs) {}
  void on_event(const CoherenceEvent& e) override;
  std::string_view name() const override { return "coarse-directory"; }
  void reset() override {
    MessageCounter::reset();
    maybe_cached_.clear();
  }

 private:
  int nprocs_;
  std::vector<bool> maybe_cached_;  // index = VarId, grown lazily
};

}  // namespace rmrsim
