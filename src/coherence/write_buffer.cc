#include "coherence/write_buffer.h"

#include "common/check.h"

namespace rmrsim {

WriteBuffer::WriteBuffer(CoherenceListener* inner, int nprocs, int capacity)
    : inner_(inner), nprocs_(nprocs), capacity_(capacity),
      pending_(static_cast<std::size_t>(nprocs)) {
  ensure(inner != nullptr, "WriteBuffer needs a backing listener");
  ensure(nprocs > 0, "WriteBuffer needs at least one processor");
  ensure(capacity > 0, "WriteBuffer capacity must be positive");
}

int WriteBuffer::find_pending(ProcId p, VarId v) const {
  const auto& q = pending_[static_cast<std::size_t>(p)];
  for (std::size_t i = 0; i < q.size(); ++i) {
    if (q[i].var == v) return static_cast<int>(i);
  }
  return -1;
}

void WriteBuffer::drain(ProcId p) {
  auto& q = pending_[static_cast<std::size_t>(p)];
  for (const CoherenceEvent& e : q) {
    inner_->on_event(e);
    ++drained_;
  }
  q.clear();
}

void WriteBuffer::drain_conflicting(ProcId p, VarId v) {
  for (int q = 0; q < nprocs_; ++q) {
    if (q != p && find_pending(q, v) >= 0) drain(q);
  }
}

void WriteBuffer::on_event(const CoherenceEvent& e) {
  ensure(e.proc >= 0 && e.proc < nprocs_, "event from out-of-range proc");
  // Coherence point: before this access can proceed, any *other* processor's
  // buffered store to the same variable must become visible.
  drain_conflicting(e.proc, e.var);

  if (e.op == OpType::kWrite) {
    const int i = find_pending(e.proc, e.var);
    if (i >= 0) {
      // Same-variable repeat store coalesces in place, keeping its slot in
      // the FIFO so drain order still respects the first store's position.
      pending_[static_cast<std::size_t>(e.proc)][static_cast<std::size_t>(i)] =
          e;
      ++coalesced_;
      return;
    }
    auto& q = pending_[static_cast<std::size_t>(e.proc)];
    if (static_cast<int>(q.size()) >= capacity_) drain(e.proc);
    q.push_back(e);
    ++buffered_;
    return;
  }

  if (e.op == OpType::kRead) {
    if (find_pending(e.proc, e.var) >= 0) {
      // Store forwarding: the youngest buffered value satisfies the read;
      // the backing protocol never sees a transaction.
      ++forwarded_;
      return;
    }
    inner_->on_event(e);
    return;
  }

  // Atomic primitives are a full drain barrier for the issuing processor.
  drain(e.proc);
  inner_->on_event(e);
}

void WriteBuffer::on_crash(ProcId p) {
  ensure(p >= 0 && p < nprocs_, "crash of out-of-range proc");
  // Mirrors the fleet's flushed-then-lost crash rule: the store already
  // holds the buffered values, so they become visible, then the cache dies.
  drain(p);
  inner_->on_crash(p);
}

void WriteBuffer::flush() {
  for (int p = 0; p < nprocs_; ++p) drain(p);
  inner_->flush();
}

void WriteBuffer::reset() {
  for (auto& q : pending_) q.clear();
  buffered_ = 0;
  coalesced_ = 0;
  forwarded_ = 0;
  drained_ = 0;
}

int WriteBuffer::pending(ProcId p) const {
  ensure(p >= 0 && p < nprocs_, "proc id out of range");
  return static_cast<int>(pending_[static_cast<std::size_t>(p)].size());
}

}  // namespace rmrsim
