// MOESI (AMD-style): MESI plus the Owned state. A Modified line snooped by
// a read demotes to O instead of S — the holder keeps supplying the dirty
// data cache-to-cache and memory is never updated until the line would be
// evicted (which this one-word-line model never does). The write-backs
// Illinois MESI pays on every M -> S demotion vanish; message counts stay
// identical to MESI, so the MESI/MOESI cycle gap isolates exactly the
// write-back traffic — the per-protocol "exchange rate" Section 8 is about.
//
// Differences from MesiCache:
//   snooped read of M  -> M holder demotes to O (no write-back), supplies
//   read miss with O   -> O supplies cache-to-cache, stays O
//   write O -> M       BusUpgr, other copies invalidated
#pragma once

#include "coherence/cache_controller.h"

namespace rmrsim {

class MoesiCache : public SnoopingCache {
 public:
  explicit MoesiCache(int nprocs, CycleCosts costs = {},
                      std::string name = "moesi")
      : SnoopingCache(std::move(name), nprocs, costs) {}

 protected:
  void read(Line& l, ProcId p) override;
  void write(Line& l, ProcId p) override;
  std::optional<std::string> check_line(const Line& l, VarId v) const override;
};

}  // namespace rmrsim
