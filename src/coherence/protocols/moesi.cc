#include "coherence/protocols/moesi.h"

namespace rmrsim {

void MoesiCache::read(Line& l, ProcId p) {
  switch (l.st[static_cast<std::size_t>(p)]) {
    case LineState::kModified:
    case LineState::kExclusive:
    case LineState::kShared:
    case LineState::kOwned:
      charge_hit(p);
      return;
    default:
      break;
  }
  // Read miss. A dirty holder (M or O) supplies without flushing: M merely
  // demotes to O and keeps ownership — the write-back MESI pays here is the
  // entire MOESI saving.
  const ProcId owner = find_other(l, p, LineState::kModified);
  if (owner != kNoProc) {
    charge_cache_transfer(p);
    l.st[static_cast<std::size_t>(owner)] = LineState::kOwned;
    fill(l, p, LineState::kShared);
    return;
  }
  const ProcId keeper = find_other(l, p, LineState::kOwned);
  if (keeper != kNoProc) {
    // The O holder is the designated responder for a dirty line.
    charge_cache_transfer(p);
    fill(l, p, LineState::kShared);
    return;
  }
  if (any_valid_other(l, p)) {
    // Clean copies exist: Illinois-style clean sharing, like MESI.
    charge_cache_transfer(p);
    const ProcId excl = find_other(l, p, LineState::kExclusive);
    if (excl != kNoProc) {
      l.st[static_cast<std::size_t>(excl)] = LineState::kShared;
    }
    fill(l, p, LineState::kShared);
    return;
  }
  charge_memory_fetch(p);
  fill(l, p, LineState::kExclusive);
}

void MoesiCache::write(Line& l, ProcId p) {
  switch (l.st[static_cast<std::size_t>(p)]) {
    case LineState::kModified:
      charge_hit(p);
      bump_version(l, p);
      return;
    case LineState::kExclusive:
      charge_hit(p);
      l.st[static_cast<std::size_t>(p)] = LineState::kModified;
      bump_version(l, p);
      l.memory_stale = true;
      return;
    case LineState::kOwned:
    case LineState::kShared:
      // BusUpgr: address-only signal, every other copy invalidated. An O
      // writer already has the data; it just reclaims exclusivity.
      charge_bus_signal(p);
      invalidate_others(l, p);
      l.st[static_cast<std::size_t>(p)] = LineState::kModified;
      bump_version(l, p);
      l.memory_stale = true;
      return;
    default:
      break;
  }
  // Write miss: BusRdX, fill + invalidate in one transaction.
  if (any_valid_other(l, p)) {
    charge_cache_transfer(p);
  } else {
    charge_memory_fetch(p);
  }
  invalidate_others(l, p);
  fill(l, p, LineState::kModified);
  bump_version(l, p);
  l.memory_stale = true;
}

std::optional<std::string> MoesiCache::check_line(const Line& l,
                                                  VarId v) const {
  int owner_like = 0;   // M, E, or O — at most one of these may exist
  int valid = 0;
  bool sole_only = false;  // M/E demand being the only copy
  bool dirty = false;
  for (int q = 0; q < nprocs_; ++q) {
    switch (l.st[static_cast<std::size_t>(q)]) {
      case LineState::kInvalid:
        break;
      case LineState::kShared:
        ++valid;
        break;
      case LineState::kExclusive:
        ++valid;
        ++owner_like;
        sole_only = true;
        break;
      case LineState::kOwned:
        ++valid;
        ++owner_like;
        dirty = true;
        break;
      case LineState::kModified:
        ++valid;
        ++owner_like;
        sole_only = true;
        dirty = true;
        break;
      default:
        return std::string(name()) + ": illegal state " +
               std::string(to_string(l.st[static_cast<std::size_t>(q)])) +
               " on v" + std::to_string(v);
    }
  }
  if (owner_like > 1) {
    return std::string(name()) + ": two M/E/O holders on v" +
           std::to_string(v);
  }
  if (sole_only && valid > 1) {
    return std::string(name()) + ": M/E coexists with other copies on v" +
           std::to_string(v);
  }
  if (l.memory_stale && !dirty) {
    return std::string(name()) + ": memory stale with no M/O holder on v" +
           std::to_string(v);
  }
  return std::nullopt;
}

}  // namespace rmrsim
