#include "coherence/protocols/dragon.h"

namespace rmrsim {

void DragonCache::read(Line& l, ProcId p) {
  switch (l.st[static_cast<std::size_t>(p)]) {
    case LineState::kExclusive:
    case LineState::kSharedClean:
    case LineState::kSharedModified:
    case LineState::kModified:
      charge_hit(p);
      return;
    default:
      break;
  }
  // Read miss. Any holder supplies; a sole holder learns it is no longer
  // alone and demotes (M -> Sm keeps update-ownership, E -> Sc).
  if (any_valid_other(l, p)) {
    charge_cache_transfer(p);
    const ProcId m = find_other(l, p, LineState::kModified);
    if (m != kNoProc) {
      l.st[static_cast<std::size_t>(m)] = LineState::kSharedModified;
    }
    const ProcId e = find_other(l, p, LineState::kExclusive);
    if (e != kNoProc) {
      l.st[static_cast<std::size_t>(e)] = LineState::kSharedClean;
    }
    fill(l, p, LineState::kSharedClean);
    return;
  }
  charge_memory_fetch(p);
  fill(l, p, LineState::kExclusive);
}

void DragonCache::write(Line& l, ProcId p) {
  switch (l.st[static_cast<std::size_t>(p)]) {
    case LineState::kModified:
      charge_hit(p);
      bump_version(l, p);
      return;
    case LineState::kExclusive:
      // Sole clean holder: silent upgrade, exactly like MESI's E -> M.
      charge_hit(p);
      l.st[static_cast<std::size_t>(p)] = LineState::kModified;
      bump_version(l, p);
      l.memory_stale = true;
      return;
    case LineState::kSharedClean:
    case LineState::kSharedModified: {
      // The defining Dragon move: broadcast the new word instead of
      // invalidating. The SharedLine tells the writer whether anyone is
      // still listening; if not, it takes M and future writes go silent.
      charge_bus_update(p);
      bump_version(l, p);
      if (any_valid_other(l, p)) {
        update_others(l, p);
        const ProcId sm = find_other(l, p, LineState::kSharedModified);
        if (sm != kNoProc) {
          l.st[static_cast<std::size_t>(sm)] = LineState::kSharedClean;
        }
        l.st[static_cast<std::size_t>(p)] = LineState::kSharedModified;
      } else {
        l.st[static_cast<std::size_t>(p)] = LineState::kModified;
      }
      l.memory_stale = true;
      return;
    }
    default:
      break;
  }
  // Write miss.
  if (any_valid_other(l, p)) {
    // Fill from a sharer, then push the new word to everyone: the writer
    // becomes the update-owner (Sm), previous owners demote to Sc.
    charge_cache_transfer(p);
    fill(l, p, LineState::kSharedModified);
    bump_version(l, p);
    charge_bus_update(p);
    update_others(l, p);
    for (int q = 0; q < nprocs_; ++q) {
      if (q == p) continue;
      LineState& s = l.st[static_cast<std::size_t>(q)];
      if (s == LineState::kModified || s == LineState::kSharedModified ||
          s == LineState::kExclusive) {
        s = LineState::kSharedClean;
      }
    }
    l.memory_stale = true;
    return;
  }
  charge_memory_fetch(p);
  fill(l, p, LineState::kModified);
  bump_version(l, p);
  l.memory_stale = true;
}

std::optional<std::string> DragonCache::check_line(const Line& l,
                                                   VarId v) const {
  int owner_like = 0;   // M, E, or Sm — at most one may exist
  int valid = 0;
  bool sole_only = false;
  bool dirty = false;
  for (int q = 0; q < nprocs_; ++q) {
    switch (l.st[static_cast<std::size_t>(q)]) {
      case LineState::kInvalid:
        break;
      case LineState::kSharedClean:
        ++valid;
        break;
      case LineState::kSharedModified:
        ++valid;
        ++owner_like;
        dirty = true;
        break;
      case LineState::kExclusive:
        ++valid;
        ++owner_like;
        sole_only = true;
        break;
      case LineState::kModified:
        ++valid;
        ++owner_like;
        sole_only = true;
        dirty = true;
        break;
      default:
        return std::string(name()) + ": illegal state " +
               std::string(to_string(l.st[static_cast<std::size_t>(q)])) +
               " on v" + std::to_string(v);
    }
  }
  if (owner_like > 1) {
    return std::string(name()) + ": two M/E/Sm holders on v" +
           std::to_string(v);
  }
  if (sole_only && valid > 1) {
    return std::string(name()) + ": M/E coexists with other copies on v" +
           std::to_string(v);
  }
  if (l.memory_stale && !dirty) {
    return std::string(name()) + ": memory stale with no M/Sm holder on v" +
           std::to_string(v);
  }
  return std::nullopt;
}

}  // namespace rmrsim
