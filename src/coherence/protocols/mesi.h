// Full MESI — the Illinois protocol (Papamarcos & Patel 1984), with
// clean-sharing: any cache holding the line (M, E, or S) responds to a read
// miss, inhibiting memory. The E state makes the read-then-write pattern
// one bus transaction instead of two (silent E -> M upgrade), the
// refinement experiment E8's cost-model ablation quantifies.
//
// Transition summary (requester column; snoopers react as noted):
//   read  I -> E  (no other copy; memory fetch)
//   read  I -> S  (copies exist; cache-to-cache transfer. A Modified
//                  supplier flushes to memory — write-back — and demotes
//                  to S; an Exclusive supplier demotes to S)
//   read  M/E/S  -> hit, no bus
//   write M      -> hit, no bus
//   write E -> M  silently (no bus)
//   write S -> M  BusUpgr: address-only signal, all other copies invalid
//   write I -> M  BusRdX: fill (cache transfer if any copy exists, else
//                  memory fetch), all other copies invalidated
#pragma once

#include "coherence/cache_controller.h"

namespace rmrsim {

class MesiCache : public SnoopingCache {
 public:
  explicit MesiCache(int nprocs, CycleCosts costs = {},
                     std::string name = "mesi")
      : SnoopingCache(std::move(name), nprocs, costs) {}

 protected:
  void read(Line& l, ProcId p) override;
  void write(Line& l, ProcId p) override;
  std::optional<std::string> check_line(const Line& l, VarId v) const override;
};

}  // namespace rmrsim
