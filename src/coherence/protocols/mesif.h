// MESIF (Intel QuickPath): MESI plus the Forward state. Exactly one clean
// copy — the most recent requester's — is designated F and is the only
// clean responder; plain S copies stay silent. This bounds the responder
// count at one (on a point-to-point fabric, N sharers would otherwise all
// answer), at a price this model makes measurable: when no F/E/M copy
// exists (the F holder crashed), a read miss must fall back to a memory
// fetch even though S copies are present — the case where Illinois MESI's
// any-sharer clean-sharing is strictly cheaper in cycles, while message
// counts stay identical.
//
// Differences from MesiCache:
//   read  I with copies -> S via the F/E/M responder; requester takes F
//                          (newest-sharer-holds-F), old F demotes to S
//   read  I with only-S copies -> memory fetch (nobody responds), take F
//   write F -> M   BusUpgr, like S (F is just S plus response duty)
#pragma once

#include "coherence/cache_controller.h"

namespace rmrsim {

class MesifCache : public SnoopingCache {
 public:
  explicit MesifCache(int nprocs, CycleCosts costs = {},
                      std::string name = "mesif")
      : SnoopingCache(std::move(name), nprocs, costs) {}

 protected:
  void read(Line& l, ProcId p) override;
  void write(Line& l, ProcId p) override;
  std::optional<std::string> check_line(const Line& l, VarId v) const override;
};

}  // namespace rmrsim
