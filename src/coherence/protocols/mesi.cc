#include "coherence/protocols/mesi.h"

namespace rmrsim {

void MesiCache::read(Line& l, ProcId p) {
  switch (l.st[static_cast<std::size_t>(p)]) {
    case LineState::kModified:
    case LineState::kExclusive:
    case LineState::kShared:
      charge_hit(p);
      return;
    default:
      break;
  }
  // Read miss.
  const ProcId owner = find_other(l, p, LineState::kModified);
  if (owner != kNoProc) {
    // The Modified holder supplies the line and flushes it: S is a clean
    // state in MESI, so memory must be made current on the demotion. This
    // write-back is exactly what MOESI's O state avoids.
    charge_cache_transfer(p);
    charge_write_back(owner);
    l.st[static_cast<std::size_t>(owner)] = LineState::kShared;
    l.memory_stale = false;
    fill(l, p, LineState::kShared);
    return;
  }
  if (any_valid_other(l, p)) {
    // Illinois clean-sharing: an E or S holder supplies cache-to-cache.
    charge_cache_transfer(p);
    const ProcId excl = find_other(l, p, LineState::kExclusive);
    if (excl != kNoProc) {
      l.st[static_cast<std::size_t>(excl)] = LineState::kShared;
    }
    fill(l, p, LineState::kShared);
    return;
  }
  charge_memory_fetch(p);
  fill(l, p, LineState::kExclusive);
}

void MesiCache::write(Line& l, ProcId p) {
  switch (l.st[static_cast<std::size_t>(p)]) {
    case LineState::kModified:
      charge_hit(p);
      bump_version(l, p);
      return;
    case LineState::kExclusive:
      // The silent upgrade: sole clean holder writes locally, no bus.
      charge_hit(p);
      l.st[static_cast<std::size_t>(p)] = LineState::kModified;
      bump_version(l, p);
      l.memory_stale = true;
      return;
    case LineState::kShared:
      // BusUpgr: address-only invalidation broadcast, no data moves.
      charge_bus_signal(p);
      invalidate_others(l, p);
      l.st[static_cast<std::size_t>(p)] = LineState::kModified;
      bump_version(l, p);
      l.memory_stale = true;
      return;
    default:
      break;
  }
  // Write miss: BusRdX. The fill and the invalidation are one transaction.
  if (any_valid_other(l, p)) {
    charge_cache_transfer(p);
  } else {
    charge_memory_fetch(p);
  }
  invalidate_others(l, p);
  fill(l, p, LineState::kModified);
  bump_version(l, p);
  l.memory_stale = true;
}

std::optional<std::string> MesiCache::check_line(const Line& l,
                                                 VarId v) const {
  int exclusive_like = 0;
  int valid = 0;
  bool dirty = false;
  for (int q = 0; q < nprocs_; ++q) {
    switch (l.st[static_cast<std::size_t>(q)]) {
      case LineState::kInvalid:
        break;
      case LineState::kShared:
        ++valid;
        break;
      case LineState::kExclusive:
        ++valid;
        ++exclusive_like;
        break;
      case LineState::kModified:
        ++valid;
        ++exclusive_like;
        dirty = true;
        break;
      default:
        return std::string(name()) + ": illegal state " +
               std::string(to_string(l.st[static_cast<std::size_t>(q)])) +
               " on v" + std::to_string(v);
    }
  }
  if (exclusive_like > 1) {
    return std::string(name()) + ": two M/E holders on v" + std::to_string(v);
  }
  if (exclusive_like == 1 && valid > 1) {
    return std::string(name()) + ": M/E coexists with other copies on v" +
           std::to_string(v);
  }
  if (l.memory_stale && !dirty) {
    return std::string(name()) + ": memory stale with no M holder on v" +
           std::to_string(v);
  }
  return std::nullopt;
}

}  // namespace rmrsim
