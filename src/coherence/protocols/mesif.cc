#include "coherence/protocols/mesif.h"

namespace rmrsim {

void MesifCache::read(Line& l, ProcId p) {
  switch (l.st[static_cast<std::size_t>(p)]) {
    case LineState::kModified:
    case LineState::kExclusive:
    case LineState::kShared:
    case LineState::kForward:
      charge_hit(p);
      return;
    default:
      break;
  }
  // Read miss. Only an M, E, or F holder responds.
  const ProcId owner = find_other(l, p, LineState::kModified);
  if (owner != kNoProc) {
    charge_cache_transfer(p);
    charge_write_back(owner);  // M -> S is clean, memory made current
    l.st[static_cast<std::size_t>(owner)] = LineState::kShared;
    l.memory_stale = false;
    fill(l, p, LineState::kForward);
    return;
  }
  const ProcId excl = find_other(l, p, LineState::kExclusive);
  if (excl != kNoProc) {
    charge_cache_transfer(p);
    l.st[static_cast<std::size_t>(excl)] = LineState::kShared;
    fill(l, p, LineState::kForward);
    return;
  }
  const ProcId fwd = find_other(l, p, LineState::kForward);
  if (fwd != kNoProc) {
    // The F holder responds and hands the forwarding duty to the newest
    // sharer (it is the least likely to evict soon in real MESIF).
    charge_cache_transfer(p);
    l.st[static_cast<std::size_t>(fwd)] = LineState::kShared;
    fill(l, p, LineState::kForward);
    return;
  }
  if (any_valid_other(l, p)) {
    // Only plain S copies remain (the F holder crashed) — nobody responds,
    // memory supplies. Same transfer-message count as MESI, more cycles;
    // the requester picks up the forwarding duty.
    charge_memory_fetch(p);
    fill(l, p, LineState::kForward);
    return;
  }
  // Truly cold: memory supplies and the sole copy takes E, enabling the
  // same silent E -> M upgrade MESI gets.
  charge_memory_fetch(p);
  fill(l, p, LineState::kExclusive);
}

void MesifCache::write(Line& l, ProcId p) {
  switch (l.st[static_cast<std::size_t>(p)]) {
    case LineState::kModified:
      charge_hit(p);
      bump_version(l, p);
      return;
    case LineState::kExclusive:
      charge_hit(p);
      l.st[static_cast<std::size_t>(p)] = LineState::kModified;
      bump_version(l, p);
      l.memory_stale = true;
      return;
    case LineState::kShared:
    case LineState::kForward:
      charge_bus_signal(p);
      invalidate_others(l, p);
      l.st[static_cast<std::size_t>(p)] = LineState::kModified;
      bump_version(l, p);
      l.memory_stale = true;
      return;
    default:
      break;
  }
  if (any_valid_other(l, p)) {
    charge_cache_transfer(p);
  } else {
    charge_memory_fetch(p);
  }
  invalidate_others(l, p);
  fill(l, p, LineState::kModified);
  bump_version(l, p);
  l.memory_stale = true;
}

std::optional<std::string> MesifCache::check_line(const Line& l,
                                                  VarId v) const {
  int exclusive_like = 0;
  int forward = 0;
  int valid = 0;
  bool dirty = false;
  for (int q = 0; q < nprocs_; ++q) {
    switch (l.st[static_cast<std::size_t>(q)]) {
      case LineState::kInvalid:
        break;
      case LineState::kShared:
        ++valid;
        break;
      case LineState::kForward:
        ++valid;
        ++forward;
        break;
      case LineState::kExclusive:
        ++valid;
        ++exclusive_like;
        break;
      case LineState::kModified:
        ++valid;
        ++exclusive_like;
        dirty = true;
        break;
      default:
        return std::string(name()) + ": illegal state " +
               std::string(to_string(l.st[static_cast<std::size_t>(q)])) +
               " on v" + std::to_string(v);
    }
  }
  if (exclusive_like > 1) {
    return std::string(name()) + ": two M/E holders on v" + std::to_string(v);
  }
  if (exclusive_like == 1 && valid > 1) {
    return std::string(name()) + ": M/E coexists with other copies on v" +
           std::to_string(v);
  }
  if (forward > 1) {
    return std::string(name()) + ": two F holders on v" + std::to_string(v);
  }
  if (forward == 1 && l.memory_stale) {
    // F is a clean state: it can only exist while memory is current.
    return std::string(name()) + ": F held while memory is stale on v" +
           std::to_string(v);
  }
  if (l.memory_stale && !dirty) {
    return std::string(name()) + ": memory stale with no M holder on v" +
           std::to_string(v);
  }
  return std::nullopt;
}

}  // namespace rmrsim
