// Dragon (Xerox PARC) — the fleet's write-update protocol. Where the MESI
// family destroys remote copies on a write, Dragon broadcasts the new word
// and refreshes them in place: its invalidation count is identically zero,
// and a sharer never misses twice on the same line. The trade is one bus
// update per write to a shared line — on the paper's flag-spin workloads
// that exchange is exactly the RMR-per-busy-wait separation E4 measures,
// priced in update messages instead of invalidation + refill pairs.
//
// States: E (sole, clean), Sc (shared clean — others may exist), Sm (shared
// dirty — this copy services the line and owes memory the value), M (sole,
// dirty). Only one Sm or M holder may exist; every valid copy always holds
// the current version because writes push updates instead of invalidating.
//
// Transition summary:
//   read  I, no copies  -> E   (memory fetch)
//   read  I, copies     -> Sc  (cache transfer; a sole M/E supplier demotes
//                               to Sm/Sc because it is no longer alone)
//   read  E/Sc/Sm/M     -> hit
//   write M             -> hit
//   write E -> M        silently (no bus)
//   write Sc/Sm, others -> Sm   (bus update refreshes every other copy;
//                               the previous Sm, if different, demotes to Sc)
//   write Sc/Sm, alone  -> M   (update signal finds no takers)
//   write I, copies     -> Sm  (fill + bus update to the existing sharers)
//   write I, no copies  -> M   (memory fetch)
#pragma once

#include "coherence/cache_controller.h"

namespace rmrsim {

class DragonCache : public SnoopingCache {
 public:
  explicit DragonCache(int nprocs, CycleCosts costs = {},
                       std::string name = "dragon")
      : SnoopingCache(std::move(name), nprocs, costs) {}

 protected:
  void read(Line& l, ProcId p) override;
  void write(Line& l, ProcId p) override;
  std::optional<std::string> check_line(const Line& l, VarId v) const override;
};

}  // namespace rmrsim
