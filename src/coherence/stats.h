// Cycle-cost configuration and per-protocol statistics.
//
// Section 8 of the paper prices interconnect traffic in *messages*; real
// machines price it in *cycles*, and the exchange rate between the two is
// exactly what distinguishes one coherence protocol from another (a MESI
// read miss that demotes a Modified line pays a write-back; the same miss
// under MOESI moves the line to Owned and pays nothing). The fleet charges
// every bus action against this table, following the cost structure of the
// classic snooping-cache simulators: a memory fill is an order of magnitude
// dearer than a cache-to-cache transfer, and address-only transactions
// (upgrades, update words) are nearly free.
#pragma once

#include <cstdint>

namespace rmrsim {

/// Cycle charge per bus action. One variable == one line == one word here,
/// so the per-word terms of the classic formulas collapse into constants.
/// All fields are overridable so tests can pin arithmetic exactly.
struct CycleCosts {
  std::uint64_t memory_fetch = 100;   ///< line fill from main memory
  std::uint64_t cache_transfer = 12;  ///< line fill cache-to-cache
  std::uint64_t bus_signal = 2;       ///< address-only broadcast (upgrade /
                                      ///< invalidation transaction)
  std::uint64_t bus_update = 2;       ///< write-update word broadcast
  std::uint64_t write_back = 100;     ///< dirty line flushed to memory
};

/// Event tallies a snooping cache accumulates, one bump per bus action
/// (cycles = sum of count * CycleCosts charge, maintained incrementally).
struct ProtocolStats {
  std::uint64_t cache_hits = 0;       ///< accesses serviced locally, 0 cycles
  std::uint64_t memory_fetches = 0;   ///< misses filled from memory
  std::uint64_t cache_transfers = 0;  ///< misses filled cache-to-cache
  std::uint64_t bus_signals = 0;      ///< address-only transactions
  std::uint64_t bus_updates = 0;      ///< write-update transactions
  std::uint64_t write_backs = 0;      ///< dirty flushes forced by snoops
  std::uint64_t cycles = 0;           ///< total cycles across all actions

  void reset() { *this = ProtocolStats{}; }
};

}  // namespace rmrsim
