#include "coherence/fleet.h"

#include <cerrno>
#include <cstdlib>
#include <set>
#include <sstream>

#include "coherence/protocols/dragon.h"
#include "coherence/protocols/mesi.h"
#include "coherence/protocols/mesif.h"
#include "coherence/protocols/moesi.h"
#include "common/check.h"

namespace rmrsim {

const std::vector<std::string>& protocol_names() {
  static const std::vector<std::string> kNames = {"mesi", "mesif", "moesi",
                                                  "dragon"};
  return kNames;
}

std::unique_ptr<SnoopingCache> make_protocol(const std::string& name,
                                             int nprocs, CycleCosts costs) {
  if (name == "mesi") return std::make_unique<MesiCache>(nprocs, costs);
  if (name == "mesif") return std::make_unique<MesifCache>(nprocs, costs);
  if (name == "moesi") return std::make_unique<MoesiCache>(nprocs, costs);
  if (name == "dragon") return std::make_unique<DragonCache>(nprocs, costs);
  return nullptr;
}

CycleCosts parse_cycle_costs(const std::string& spec) {
  CycleCosts costs;
  if (spec.empty()) return costs;
  std::set<std::string> seen;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const std::size_t eq = item.find('=');
    ensure(eq != std::string::npos && eq > 0 && eq + 1 < item.size(),
           "--cycle-cost: expected key=value, got '" + item + "'");
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    ensure(seen.insert(key).second,
           "--cycle-cost: duplicate key '" + key + "'");
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(val.c_str(), &end, 10);
    ensure(val[0] != '-' && end != nullptr && *end == '\0' && errno == 0,
           "--cycle-cost: " + key + " expects a non-negative integer, got '" +
               val + "'");
    if (key == "fetch") {
      costs.memory_fetch = v;
    } else if (key == "transfer") {
      costs.cache_transfer = v;
    } else if (key == "signal") {
      costs.bus_signal = v;
    } else if (key == "update") {
      costs.bus_update = v;
    } else if (key == "writeback") {
      costs.write_back = v;
    } else {
      fail("--cycle-cost: unknown key '" + key +
           "' (want fetch|transfer|signal|update|writeback)");
    }
  }
  return costs;
}

ProtocolFleet::ProtocolFleet(int nprocs, CycleCosts costs)
    : nprocs_(nprocs), coarse_(nprocs) {
  for (const std::string& name : protocol_names()) {
    caches_.push_back(make_protocol(name, nprocs, costs));
  }
  for (auto& c : caches_) fanout_.add(c.get());
  fanout_.add(&bus_);
  fanout_.add(&ideal_);
  fanout_.add(&coarse_);
}

SnoopingCache* ProtocolFleet::cache(const std::string& name) {
  for (auto& c : caches_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

std::vector<MessageCounter*> ProtocolFleet::counters() {
  std::vector<MessageCounter*> out;
  for (auto& c : caches_) out.push_back(c.get());
  out.push_back(&bus_);
  out.push_back(&ideal_);
  out.push_back(&coarse_);
  return out;
}

void ProtocolFleet::reset() {
  for (auto& c : caches_) c->reset();
  bus_.reset();
  ideal_.reset();
  coarse_.reset();
}

std::optional<std::string> ProtocolFleet::check_invariants() const {
  for (const auto& c : caches_) {
    if (auto err = c->check_invariants()) return err;
  }
  return std::nullopt;
}

}  // namespace rmrsim
