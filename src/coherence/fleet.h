// ProtocolFleet: every coherence protocol riding one event stream.
//
// Bundles the four snooping state machines (MESI, MESIF, MOESI, Dragon)
// together with the legacy Section 8 message counters (broadcast bus, ideal
// directory, coarse directory) behind a single CoherenceListener, so one
// run — one schedule, one RMR tally — is simultaneously priced under every
// protocol. That is what makes the differential gates sharp: the protocols
// cannot disagree because they saw different schedules, only because their
// state machines differ.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "coherence/cache_controller.h"
#include "coherence/protocols.h"
#include "coherence/stats.h"

namespace rmrsim {

/// Names of the fleet's state-machine protocols, in fleet order.
const std::vector<std::string>& protocol_names();

/// Builds one protocol by name ("mesi", "mesif", "moesi", "dragon");
/// nullptr for an unknown name.
std::unique_ptr<SnoopingCache> make_protocol(const std::string& name,
                                             int nprocs, CycleCosts costs = {});

/// Parses a CLI cost-table override: "fetch=100,transfer=12,signal=2,
/// update=2,writeback=100". Every key is optional (unmentioned fields keep
/// their defaults), but an unknown key, a malformed value, or a duplicate
/// key throws std::logic_error — a typo must never silently price a run
/// with defaults. An empty spec returns the default table.
CycleCosts parse_cycle_costs(const std::string& spec);

class ProtocolFleet {
 public:
  explicit ProtocolFleet(int nprocs, CycleCosts costs = {});

  /// The listener to hand to SharedMemory::set_coherence_listener (or to a
  /// WriteBuffer wrapping it). Fans events out to every member.
  CoherenceListener* listener() { return &fanout_; }

  SnoopingCache& mesi() { return *caches_[0]; }
  SnoopingCache& mesif() { return *caches_[1]; }
  SnoopingCache& moesi() { return *caches_[2]; }
  SnoopingCache& dragon() { return *caches_[3]; }
  const std::vector<std::unique_ptr<SnoopingCache>>& caches() const {
    return caches_;
  }
  /// Fleet member by protocol name; nullptr if absent.
  SnoopingCache* cache(const std::string& name);

  BusBroadcastCounter& bus() { return bus_; }
  IdealDirectoryCounter& ideal() { return ideal_; }
  CoarseDirectoryCounter& coarse() { return coarse_; }

  /// Every MessageCounter in the fleet (state machines + legacy counters),
  /// for uniform table/metric emission.
  std::vector<MessageCounter*> counters();

  void reset();

  /// First invariant violation across every state machine, if any.
  std::optional<std::string> check_invariants() const;

  int nprocs() const { return nprocs_; }

 private:
  int nprocs_;
  std::vector<std::unique_ptr<SnoopingCache>> caches_;
  BusBroadcastCounter bus_;
  IdealDirectoryCounter ideal_;
  CoarseDirectoryCounter coarse_;
  ListenerFanout fanout_;
};

}  // namespace rmrsim
