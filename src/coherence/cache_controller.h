// SnoopingCache: the shared chassis of the coherence-protocol fleet.
//
// Each protocol (MESI, MESIF, MOESI, Dragon) is an explicit per-line state
// machine over the states below, driven by the CoherenceEvent stream
// SharedMemory publishes. This base class owns everything the protocols
// share — per-(line, processor) state storage, version tracking (every
// valid copy must hold the latest value, however the protocol arranges
// that), the memory-staleness bit, message tallies, and the cycle ledger —
// so a concrete protocol is nothing but its read() / write() transition
// functions plus its invariant checker.
//
// Two deliberate modeling choices, both inherited from the pricing layer:
//  * one variable == one cache line == one word (no false sharing, no
//    capacity or conflict misses — caches only lose copies to coherence
//    actions and crashes, matching the paper's Section 2 ideal cache);
//  * a crash powers the processor's cache down. A dirty owner's line is
//    treated as flushed-then-lost (memory becomes current, no cycles
//    charged): pricing state only, the store always holds real values.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "coherence/protocols.h"
#include "coherence/stats.h"
#include "memory/cost_model.h"

namespace rmrsim {

/// Union of the fleet's per-line states. Each protocol uses its own subset
/// (checked by its invariant checker); kInvalid doubles as "not present".
enum class LineState : std::uint8_t {
  kInvalid,         ///< I — no valid copy
  kShared,          ///< S — clean(ish) copy, others may share
  kExclusive,       ///< E — sole copy, clean
  kModified,        ///< M — sole copy, dirty
  kOwned,           ///< O — dirty copy responsible for the line (MOESI)
  kForward,         ///< F — the designated clean responder (MESIF)
  kSharedClean,     ///< Sc — Dragon shared, not the updater
  kSharedModified,  ///< Sm — Dragon shared, owns update duty, dirty
};

std::string_view to_string(LineState s);

/// Base of the four protocol state machines. Consumes CoherenceEvents (or
/// direct access() injections in unit tests), drives the per-line states,
/// and accounts messages + cycles.
class SnoopingCache : public MessageCounter {
 public:
  SnoopingCache(std::string name, int nprocs, CycleCosts costs);

  /// Routes the event into the state machine: nontrivial operations are
  /// writes, everything else (reads, failed comparisons) read-like.
  void on_event(const CoherenceEvent& e) override;

  /// Unit-test injection: one access without a SharedMemory behind it.
  void access(ProcId p, VarId v, bool write);

  /// Drops every copy `p` held. A dirty owner's line counts as flushed
  /// (memory becomes current) so later fills never resurrect stale data.
  void on_crash(ProcId p) override;

  void reset() override;

  std::string_view name() const override { return name_; }
  std::uint64_t update_messages() const override { return updates_; }

  const ProtocolStats& stats() const { return stats_; }
  std::uint64_t total_cycles() const { return stats_.cycles; }
  /// Cycles charged to accesses performed by `p`.
  std::uint64_t proc_cycles(ProcId p) const;
  int nprocs() const { return nprocs_; }

  /// State of p's copy of v (kInvalid when the line was never touched).
  LineState state(ProcId p, VarId v) const;

  /// Checks every line against the protocol's transition-diagram
  /// invariants plus the fleet-wide ones (single writer-owner, every valid
  /// copy current, tally consistency). nullopt = all hold; otherwise a
  /// human-readable description of the first violation.
  std::optional<std::string> check_invariants() const;

  /// Opts into per-event cycle logging: every on_event()/access() appends
  /// the cycles it charged, in order, enabling per-call cycle attribution
  /// (trace/call_stats.h). Off by default (costs a vector push per event).
  void enable_cycle_log() { cycle_log_enabled_ = true; }
  const std::vector<std::uint64_t>& cycle_log() const { return cycle_log_; }

 protected:
  struct Line {
    std::vector<LineState> st;        ///< per-proc state, size nprocs
    std::vector<std::uint64_t> ver;   ///< version each copy holds
    std::uint64_t version = 0;        ///< writes applied to this line
    bool memory_stale = false;        ///< memory lags a dirty owner
  };

  // The protocol: how `p`'s read / write transitions `l` and what it
  // charges. Implementations use the charge_* helpers below.
  virtual void read(Line& l, ProcId p) = 0;
  virtual void write(Line& l, ProcId p) = 0;

  /// Protocol-specific line invariants (legal state subset, owner
  /// uniqueness rules). The base adds the protocol-independent checks.
  virtual std::optional<std::string> check_line(const Line& l,
                                                VarId v) const = 0;

  // ---- transition vocabulary (message + cycle accounting) --------------
  void charge_hit(ProcId p);
  void charge_memory_fetch(ProcId p);    ///< +1 transfer message
  void charge_cache_transfer(ProcId p);  ///< +1 transfer message
  void charge_bus_signal(ProcId p);      ///< address-only, no message
  void charge_bus_update(ProcId p);      ///< one update transaction
  void charge_write_back(ProcId p);      ///< snoop-forced dirty flush

  /// Invalidates every valid copy but p's: one invalidation message per
  /// copy destroyed (all useful — a snooping cache never invalidates a
  /// copy that does not exist; superfluity is a directory pathology).
  void invalidate_others(Line& l, ProcId p);

  /// Refreshes every valid copy but p's to the line's current version,
  /// one update message per copy refreshed.
  void update_others(Line& l, ProcId p);

  /// Gives `p` a current-version copy in `s`.
  void fill(Line& l, ProcId p, LineState s);

  /// Bumps the line version and stamps p's copy with it (call on write).
  void bump_version(Line& l, ProcId p);

  int count_valid_others(const Line& l, ProcId p) const;
  bool any_valid_other(const Line& l, ProcId p) const {
    return count_valid_others(l, p) > 0;
  }
  /// First other proc whose state is `s`; kNoProc if none.
  ProcId find_other(const Line& l, ProcId p, LineState s) const;

  Line& line_mut(VarId v);
  const Line* line(VarId v) const;

  int nprocs_;
  CycleCosts costs_;
  ProtocolStats stats_;
  std::uint64_t updates_ = 0;

 private:
  void charge_cycles(ProcId p, std::uint64_t cycles);

  std::string name_;
  std::vector<Line> lines_;  // index = VarId, grown lazily
  std::vector<std::uint64_t> proc_cycles_;
  std::vector<std::uint64_t> cycle_log_;
  bool cycle_log_enabled_ = false;
  std::uint64_t event_cycles_ = 0;  // cycles charged by the current event
};

}  // namespace rmrsim
