// Write-buffer front end for the protocol fleet.
//
// Sits between the CoherenceEvent stream and a backing listener (usually a
// SnoopingCache) and models a per-processor store buffer: plain writes are
// held locally instead of hitting the coherence fabric immediately, a later
// read of a buffered variable by the same processor is satisfied by store
// forwarding (the backing protocol never sees it), and a repeat write to a
// buffered variable coalesces in place. Buffered entries drain — in FIFO
// order, preserving TSO per-processor store order — when (a) another
// processor touches a buffered variable (coherence makes the store visible
// first), (b) the buffer reaches capacity, (c) the processor executes an
// atomic primitive (CAS/LL/SC/FAA/FAS/TAS act as a full drain barrier, as
// on real hardware), (d) the processor crashes, or (e) flush() is called at
// end of run.
//
// The effect on the backing protocol's tallies is exactly the write
// buffer's architectural value: coalesced writes and forwarded reads never
// generate bus transactions, so message and cycle counts drop relative to
// the bare protocol on the same event stream.
//
// Caveat: buffering breaks the 1:1 ordered correspondence between memory
// history records and backing-protocol events, so per-call cycle
// attribution (trace/call_stats.h) must be fed the bare protocol, not this
// front end.
#pragma once

#include <cstdint>
#include <vector>

#include "memory/cost_model.h"

namespace rmrsim {

class WriteBuffer final : public CoherenceListener {
 public:
  /// `inner` must outlive the buffer. `capacity` is per-processor entries.
  WriteBuffer(CoherenceListener* inner, int nprocs, int capacity = 8);

  void on_event(const CoherenceEvent& e) override;
  void on_crash(ProcId p) override;
  void flush() override;

  void reset();

  /// Writes currently pending for `p`.
  int pending(ProcId p) const;

  std::uint64_t buffered_writes() const { return buffered_; }
  std::uint64_t coalesced_writes() const { return coalesced_; }
  std::uint64_t forwarded_reads() const { return forwarded_; }
  std::uint64_t drained_writes() const { return drained_; }

 private:
  void drain(ProcId p);
  /// Drains every processor other than `p` holding a buffered write to `v`.
  void drain_conflicting(ProcId p, VarId v);
  int find_pending(ProcId p, VarId v) const;

  CoherenceListener* inner_;
  int nprocs_;
  int capacity_;
  std::vector<std::vector<CoherenceEvent>> pending_;  // per-proc FIFO
  std::uint64_t buffered_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t forwarded_ = 0;
  std::uint64_t drained_ = 0;
};

}  // namespace rmrsim
