// Wire protocol for sharded multi-process exploration.
//
// The coordinator (verify/dist/pool.h) and its fork/exec'd workers
// (verify/dist/worker.h) talk over a pair of pipes in CRC-32-framed
// little-endian records — the exact framing the checkpoint file format uses
// (common/codec.h put_record/take_record), so a torn or corrupted frame is
// rejected, never half-parsed. Three message kinds:
//
//   kHello    worker -> coordinator, once at startup: protocol version and
//             the fingerprint of the worker's search configuration. The
//             coordinator refuses a worker whose fingerprint differs from
//             its own — a worker launched with different flags would
//             explore a subtly different tree.
//   kItem     coordinator -> worker: one work item — index, budget base,
//             root schedule, trunk path (footprints + vector clocks), sleep
//             set, naive-estimate seeds, and the serialized root world
//             (runtime/snapshot_codec.h; absent in replay mode, where the
//             worker rebuilds by replaying the schedule).
//   kOutcome  worker -> coordinator: the echoed index plus either the
//             item's ItemOutcome (verify/checkpoint.h encoding, byte-
//             identical to what the in-process pool would checkpoint) or a
//             quarantine reason.
//
// Everything decodable throws std::runtime_error on truncation, CRC
// mismatch, bad tags, or malformed payloads.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "verify/dpor.h"

namespace rmrsim::dist {

inline constexpr std::uint32_t kProtocolVersion = 1;

enum class MsgTag : std::uint32_t {
  kHello = 1,
  kItem = 2,
  kOutcome = 3,
};

struct HelloMsg {
  std::uint32_t version = kProtocolVersion;
  /// Fingerprint of the worker's (instance, options) configuration —
  /// computed from the same inputs as the checkpoint fingerprint, so
  /// coordinator and worker agree iff they were launched compatibly.
  std::uint64_t fingerprint = 0;
};

struct ItemMsg {
  std::uint64_t index = 0;       ///< round-local item index, echoed back
  std::uint64_t base_nodes = 0;  ///< coordinator's committed count at dispatch
  bool collect_completes = false;
  /// The work item; `item.root_snap` stays null on the wire — the world
  /// travels as `snapshot` and is grafted onto the worker's proto.
  DporWorkItem item;
  std::string snapshot;  ///< encode_world_snapshot bytes; empty = replay mode
};

struct OutcomeMsg {
  std::uint64_t index = 0;
  DistItemResult result;
};

/// Reads the tag of a decoded frame payload without consuming it.
MsgTag peek_tag(std::string_view payload);

std::string encode_hello(const HelloMsg& msg);
std::string encode_item(const ItemMsg& msg);
std::string encode_outcome(const OutcomeMsg& msg);
HelloMsg decode_hello(std::string_view payload);
ItemMsg decode_item(std::string_view payload);
OutcomeMsg decode_outcome(std::string_view payload);

/// Writes one framed payload to `fd`, restarting on EINTR and short writes.
/// Throws std::runtime_error on any write error (EPIPE included — the
/// caller handles dead workers via the read side).
void write_frame(int fd, std::string_view payload);

/// Reads one framed payload from `fd`. Returns false on a clean EOF before
/// the first header byte (the peer closed its end between frames); throws
/// on mid-frame EOF, oversized frames, read errors, or CRC mismatch.
bool read_frame(int fd, std::string* payload);

}  // namespace rmrsim::dist
