#include "verify/dist/protocol.h"

#include <errno.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "common/codec.h"
#include "common/crc32.h"
#include "verify/checkpoint.h"

namespace rmrsim::dist {

namespace {

// A frame larger than this is a protocol error, not a big message: the
// largest legitimate payload is one work item carrying one world snapshot.
constexpr std::uint32_t kMaxFrameBytes = 1u << 30;

void put_tag(std::string& out, MsgTag tag) {
  put_u32(out, static_cast<std::uint32_t>(tag));
}

void expect_tag(ByteReader& r, MsgTag want) {
  const std::uint32_t got = r.u32();
  if (got != static_cast<std::uint32_t>(want)) {
    throw std::runtime_error("unexpected message tag " + std::to_string(got));
  }
}

void put_footprint(std::string& out, const Simulation::MacroFootprint& fp) {
  put_u32(out, fp.has_op ? 1 : 0);
  put_u32(out, static_cast<std::uint32_t>(fp.var));
  put_u32(out, static_cast<std::uint32_t>(fp.access));
  put_u32(out, fp.observable ? 1 : 0);
  put_u32(out, fp.terminated ? 1 : 0);
}

Simulation::MacroFootprint take_footprint(ByteReader& r) {
  Simulation::MacroFootprint fp;
  fp.has_op = r.u32() != 0;
  fp.var = static_cast<VarId>(r.u32());
  const std::uint32_t access = r.u32();
  if (access > static_cast<std::uint32_t>(AccessClass::kMutate)) {
    throw std::runtime_error("bad footprint access class");
  }
  fp.access = static_cast<AccessClass>(access);
  fp.observable = r.u32() != 0;
  fp.terminated = r.u32() != 0;
  return fp;
}

}  // namespace

MsgTag peek_tag(std::string_view payload) {
  ByteReader r(payload);
  const std::uint32_t tag = r.u32();
  if (tag < static_cast<std::uint32_t>(MsgTag::kHello) ||
      tag > static_cast<std::uint32_t>(MsgTag::kOutcome)) {
    throw std::runtime_error("bad message tag " + std::to_string(tag));
  }
  return static_cast<MsgTag>(tag);
}

std::string encode_hello(const HelloMsg& msg) {
  std::string out;
  put_tag(out, MsgTag::kHello);
  put_u32(out, msg.version);
  put_u64(out, msg.fingerprint);
  return out;
}

HelloMsg decode_hello(std::string_view payload) {
  ByteReader r(payload);
  expect_tag(r, MsgTag::kHello);
  HelloMsg msg;
  msg.version = r.u32();
  msg.fingerprint = r.u64();
  if (!r.done()) throw std::runtime_error("trailing bytes in hello");
  return msg;
}

std::string encode_item(const ItemMsg& msg) {
  std::string out;
  put_tag(out, MsgTag::kItem);
  put_u64(out, msg.index);
  put_u64(out, msg.base_nodes);
  put_u32(out, msg.collect_completes ? 1 : 0);
  put_schedule(out, msg.item.schedule);
  put_u32(out, static_cast<std::uint32_t>(msg.item.path.size()));
  for (const DporPathStep& s : msg.item.path) {
    put_u32(out, static_cast<std::uint32_t>(s.proc));
    put_footprint(out, s.fp);
    put_u32(out, static_cast<std::uint32_t>(s.clock.size()));
    for (const std::int32_t c : s.clock) {
      put_u32(out, static_cast<std::uint32_t>(c));
    }
  }
  put_u32(out, static_cast<std::uint32_t>(msg.item.sleep.size()));
  for (const DporSleepEntry& e : msg.item.sleep) {
    put_u32(out, static_cast<std::uint32_t>(e.proc));
    put_footprint(out, e.fp);
  }
  put_double(out, msg.item.naive_product);
  put_double(out, msg.item.naive_sum);
  put_string(out, msg.snapshot);
  return out;
}

ItemMsg decode_item(std::string_view payload) {
  ByteReader r(payload);
  expect_tag(r, MsgTag::kItem);
  ItemMsg msg;
  msg.index = r.u64();
  msg.base_nodes = r.u64();
  msg.collect_completes = r.u32() != 0;
  msg.item.schedule = r.schedule();
  const std::uint32_t npath = r.u32();
  msg.item.path.reserve(npath);
  for (std::uint32_t i = 0; i < npath; ++i) {
    DporPathStep s;
    s.proc = static_cast<ProcId>(r.u32());
    s.fp = take_footprint(r);
    const std::uint32_t nclock = r.u32();
    r.need(std::size_t{4} * nclock);
    s.clock.reserve(nclock);
    for (std::uint32_t j = 0; j < nclock; ++j) {
      s.clock.push_back(static_cast<std::int32_t>(r.u32()));
    }
    msg.item.path.push_back(std::move(s));
  }
  const std::uint32_t nsleep = r.u32();
  msg.item.sleep.reserve(nsleep);
  for (std::uint32_t i = 0; i < nsleep; ++i) {
    DporSleepEntry e;
    e.proc = static_cast<ProcId>(r.u32());
    e.fp = take_footprint(r);
    msg.item.sleep.push_back(e);
  }
  msg.item.naive_product = r.dbl();
  msg.item.naive_sum = r.dbl();
  msg.snapshot = r.str();
  if (!r.done()) throw std::runtime_error("trailing bytes in item");
  return msg;
}

std::string encode_outcome(const OutcomeMsg& msg) {
  std::string out;
  put_tag(out, MsgTag::kOutcome);
  put_u64(out, msg.index);
  put_u32(out, msg.result.ok ? 1 : 0);
  put_u64(out, msg.result.worker_failures);
  put_u64(out, msg.result.item_retries);
  if (msg.result.ok) {
    // The checkpoint encoding of the outcome, byte-identical to what the
    // in-process pool would record, plus the budget flag the checkpoint
    // format deliberately omits (budget-hit outcomes are never recorded).
    put_string(out, encode_item_outcome(msg.result.outcome));
    put_u32(out, msg.result.outcome.budget_hit ? 1 : 0);
  } else {
    put_string(out, msg.result.quarantine_reason);
  }
  return out;
}

OutcomeMsg decode_outcome(std::string_view payload) {
  ByteReader r(payload);
  expect_tag(r, MsgTag::kOutcome);
  OutcomeMsg msg;
  msg.index = r.u64();
  msg.result.ok = r.u32() != 0;
  msg.result.worker_failures = r.u64();
  msg.result.item_retries = r.u64();
  if (msg.result.ok) {
    msg.result.outcome = decode_item_outcome(r.str());
    msg.result.outcome.budget_hit = r.u32() != 0;
  } else {
    msg.result.quarantine_reason = r.str();
  }
  if (!r.done()) throw std::runtime_error("trailing bytes in outcome");
  return msg;
}

namespace {

/// Reads exactly `n` bytes, restarting on EINTR. Returns false iff EOF hits
/// before the first byte and `eof_ok`; throws on errors and short reads.
bool read_exact(int fd, char* buf, std::size_t n, bool eof_ok) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::read(fd, buf + got, n - got);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("pipe read failed: ") +
                               std::strerror(errno));
    }
    if (rc == 0) {
      if (got == 0 && eof_ok) return false;
      throw std::runtime_error("pipe closed mid-frame");
    }
    got += static_cast<std::size_t>(rc);
  }
  return true;
}

void write_all(int fd, const char* buf, std::size_t n) {
  std::size_t put = 0;
  while (put < n) {
    const ssize_t rc = ::write(fd, buf + put, n - put);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("pipe write failed: ") +
                               std::strerror(errno));
    }
    put += static_cast<std::size_t>(rc);
  }
}

}  // namespace

namespace {

std::uint32_t load_le32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

}  // namespace

void write_frame(int fd, std::string_view payload) {
  std::string buf;
  put_record(buf, payload);
  write_all(fd, buf.data(), buf.size());
}

bool read_frame(int fd, std::string* payload) {
  char hdr[4];
  if (!read_exact(fd, hdr, sizeof hdr, /*eof_ok=*/true)) return false;
  const std::uint32_t len = load_le32(hdr);
  if (len > kMaxFrameBytes) throw std::runtime_error("oversized frame");
  std::string body(std::size_t{len} + 4, '\0');
  read_exact(fd, body.data(), body.size(), /*eof_ok=*/false);
  const std::uint32_t want = load_le32(body.data() + len);
  payload->assign(body, 0, len);
  if (crc32(*payload) != want) {
    throw std::runtime_error("frame CRC mismatch");
  }
  return true;
}

}  // namespace rmrsim::dist
