// The worker half of sharded exploration.
//
// A worker process is the host binary re-exec'd in hidden worker mode
// (rmrsim_cli `--dist-worker`): it rebuilds the same instance and options
// from its own flags, then serves run_dist_worker — a read-item /
// run-subtree / write-outcome loop over the pipe protocol on
// stdin/stdout. The worker leads with a hello frame carrying its
// configuration fingerprint so the coordinator can refuse a mismatched
// launch, and exits cleanly on stdin EOF (the coordinator closing the
// pipe), so orphaned workers self-clean when their coordinator dies.
//
// Test hook: RMRSIM_WORKER_EXIT_AFTER_ITEMS=N makes the worker SIGKILL
// itself upon *receiving* its (N+1)-th item — a deterministic mid-item
// death for the retry/respawn and resume harnesses. The pool clears the
// variable for respawned workers so the switch fires once per fleet.
#pragma once

#include <cstdint>

#include "verify/dpor.h"

namespace rmrsim::dist {

/// Serves work items until EOF on `in_fd`. `options` mirrors the
/// coordinator's DporOptions (checkpoint/dist/workers fields are ignored;
/// whether complete schedules are collected is decided per item by the
/// coordinator). Returns the process exit code (0 on a clean EOF).
/// Throws std::runtime_error on a malformed frame — a protocol bug, not a
/// retryable condition; the coordinator sees the resulting death.
int run_dist_worker(const ExploreBuilder& build, const ExploreChecker& check,
                    const DporOptions& options, std::uint64_t fingerprint,
                    int in_fd, int out_fd);

}  // namespace rmrsim::dist
