#include "verify/dist/worker.h"

#include <signal.h>
#include <stdlib.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "runtime/snapshot_codec.h"
#include "verify/dist/protocol.h"
#include "verify/snapshot_cache.h"

namespace rmrsim::dist {

int run_dist_worker(const ExploreBuilder& build, const ExploreChecker& check,
                    const DporOptions& options, std::uint64_t fingerprint,
                    int in_fd, int out_fd) {
  HelloMsg hello;
  hello.fingerprint = fingerprint;
  write_frame(out_fd, encode_hello(hello));

  // Proto snapshot for grafting the unserializable immutables (programs,
  // bytecode, policy, keepalive — see runtime/snapshot_codec.h): the
  // untouched world of a locally built instance, constructed exactly the
  // way the coordinator builds its own.
  std::shared_ptr<const WorldSnapshot> proto;
  if (options.snapshot_mode == SnapshotMode::kSnapshot) {
    ExploreInstance inst =
        materialize_schedule(build, {}, ReplayUnit::kMacro,
                             options.counters_only_history, nullptr, nullptr);
    // materialize_schedule only arms resume logging when it is handed a
    // cache; the empty schedule means zero steps have run, so arming it
    // here still satisfies take_snapshot's before-first-step requirement.
    inst.sim->enable_fork_log();
    proto = take_snapshot(inst);
  }

  // Deterministic mid-item death for the failure harnesses: SIGKILL upon
  // receiving item N+1, after N served.
  long long exit_after = -1;
  if (const char* env = ::getenv("RMRSIM_WORKER_EXIT_AFTER_ITEMS")) {
    exit_after = ::atoll(env);
  }
  std::uint64_t served = 0;

  std::string payload;
  while (read_frame(in_fd, &payload)) {
    ItemMsg msg = decode_item(payload);
    if (exit_after >= 0 && served >= static_cast<std::uint64_t>(exit_after)) {
      ::raise(SIGKILL);
    }
    if (!msg.snapshot.empty()) {
      if (proto == nullptr) {
        throw std::runtime_error(
            "item carries a snapshot but the worker runs in replay mode");
      }
      msg.item.root_snap = std::make_shared<const WorldSnapshot>(
          decode_world_snapshot(msg.snapshot, *proto));
    }
    DporOptions opts = options;
    if (msg.collect_completes) {
      // Presence alone makes run_dist_item collect complete schedules into
      // the outcome; the callback itself is never invoked worker-side.
      opts.on_complete_schedule = [](const std::vector<ProcId>&) {};
    } else {
      opts.on_complete_schedule = nullptr;
    }
    OutcomeMsg out;
    out.index = msg.index;
    out.result =
        run_dist_item(build, check, opts, msg.item, msg.base_nodes);
    write_frame(out_fd, encode_outcome(out));
    ++served;
  }
  return 0;
}

}  // namespace rmrsim::dist
