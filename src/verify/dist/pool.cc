#include "verify/dist/pool.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <stdlib.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <map>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "runtime/snapshot_codec.h"
#include "verify/dist/protocol.h"

namespace rmrsim::dist {

namespace {

void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

DistPool::DistPool(Config config) : config_(std::move(config)) {
  ensure(config_.shards >= 1, "DistPool needs at least one shard");
  ensure(!config_.worker_argv.empty(), "DistPool needs a worker argv");
  // A worker dying while the coordinator writes to it must surface as an
  // EPIPE error (handled as a worker death), not a fatal SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);
  workers_.reserve(static_cast<std::size_t>(config_.shards));
  for (int i = 0; i < config_.shards; ++i) {
    workers_.push_back(spawn_worker());
  }
}

DistPool::~DistPool() {
  for (Worker& w : workers_) shutdown_worker(w);
}

DistPool::Worker DistPool::spawn_worker() {
  // Parent-side pipe ends are close-on-exec so sibling workers do not
  // inherit each other's pipes (a sibling holding a stray write end would
  // keep a worker's stdin open past shutdown).
  int to[2] = {-1, -1};    // coordinator -> worker stdin
  int from[2] = {-1, -1};  // worker stdout -> coordinator
  if (::pipe(to) != 0 || ::pipe(from) != 0) {
    throw std::runtime_error(std::string("pipe() failed: ") +
                             std::strerror(errno));
  }
  set_cloexec(to[1]);
  set_cloexec(from[0]);

  std::vector<char*> argv;
  argv.reserve(config_.worker_argv.size() + 1);
  for (const std::string& a : config_.worker_argv) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("fork() failed: ") +
                             std::strerror(errno));
  }
  if (pid == 0) {
    // Child: wire the protocol onto stdin/stdout and exec the worker.
    // Only async-signal-safe calls between fork and exec.
    ::dup2(to[0], 0);
    ::dup2(from[1], 1);
    ::close(to[0]);
    ::close(to[1]);
    ::close(from[0]);
    ::close(from[1]);
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }
  ::close(to[0]);
  ::close(from[1]);
  ++spawns_;

  Worker w;
  w.pid = pid;
  w.to_fd = to[1];
  w.from_fd = from[0];

  // Handshake: the worker leads with its protocol version and its search
  // configuration fingerprint. Any mismatch is a launch bug, not a
  // retryable failure.
  std::string payload;
  bool got = false;
  try {
    got = read_frame(w.from_fd, &payload);
  } catch (const std::exception&) {
    got = false;
  }
  if (!got) {
    shutdown_worker(w);
    throw std::runtime_error("dist worker failed to start (no hello)");
  }
  const HelloMsg hello = decode_hello(payload);
  if (hello.version != kProtocolVersion) {
    shutdown_worker(w);
    throw std::runtime_error("dist worker protocol version mismatch");
  }
  if (hello.fingerprint != config_.fingerprint) {
    shutdown_worker(w);
    throw std::runtime_error(
        "dist worker configuration fingerprint mismatch: the worker was "
        "launched with different search options than the coordinator");
  }
  return w;
}

void DistPool::shutdown_worker(Worker& w) {
  close_fd(w.to_fd);  // EOF on the worker's stdin: it exits its loop
  close_fd(w.from_fd);
  if (w.pid > 0) {
    int status = 0;
    while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
    }
    w.pid = -1;
  }
}

void DistPool::run_round(
    const std::vector<DporWorkItem>& items,
    const std::vector<std::size_t>& live,
    const std::function<std::uint64_t()>& committed_nodes,
    const std::function<void(std::size_t, DistItemResult&&)>& done) {
  struct Job {
    std::size_t idx = 0;
    int attempts = 0;          // dispatches so far (1-based once in flight)
    std::uint64_t deaths = 0;  // worker processes lost to this item
    std::uint64_t retries = 0;
  };

  std::deque<Job> queue;  // canonical order; retried items go to the front
  for (const std::size_t idx : live) queue.push_back(Job{idx});
  std::map<std::size_t, Job> inflight;  // live index -> bookkeeping
  std::size_t open = queue.size();

  // Worker-death handler shared by dispatch-time write failures and
  // read-side EOFs: reap, decide retry vs quarantine, respawn.
  const auto handle_death = [&](Worker& w) {
    if (w.pid > 0) {
      ::kill(w.pid, SIGKILL);  // no-op if already gone
    }
    shutdown_worker(w);
    if (w.job >= 0) {
      Job j = inflight.at(static_cast<std::size_t>(w.job));
      inflight.erase(static_cast<std::size_t>(w.job));
      w.job = -1;
      ++j.deaths;
      if (j.attempts >= config_.item_max_attempts) {
        DistItemResult res;
        res.ok = false;
        res.quarantine_reason = "worker process died mid-item";
        res.worker_failures = j.deaths;
        res.item_retries = j.retries;
        done(j.idx, std::move(res));
        --open;
      } else {
        ++j.retries;
        queue.push_front(j);
      }
    }
    // The worker kill-switch must fire once, not on every respawn.
    if (!respawned_once_) {
      respawned_once_ = true;
      for (const std::string& name : config_.clear_env_on_respawn) {
        ::unsetenv(name.c_str());
      }
    }
    w = spawn_worker();
  };

  while (open > 0) {
    // Dispatch to idle workers in canonical queue order. One item in
    // flight per worker: the worker is either blocked reading its stdin
    // (and will drain our write) or running an item — never writing while
    // we write, so blocking pipe I/O cannot deadlock.
    for (Worker& w : workers_) {
      if (w.job >= 0) continue;
      if (queue.empty()) break;
      Job j = queue.front();
      queue.pop_front();
      ++j.attempts;
      const DporWorkItem& item = items[j.idx];
      ItemMsg msg;
      msg.index = j.idx;
      msg.base_nodes = committed_nodes();
      msg.collect_completes = config_.collect_completes;
      msg.item.schedule = item.schedule;
      msg.item.path = item.path;
      msg.item.sleep = item.sleep;
      msg.item.naive_product = item.naive_product;
      msg.item.naive_sum = item.naive_sum;
      if (item.root_snap != nullptr) {
        msg.snapshot = encode_world_snapshot(*item.root_snap);
      }
      w.job = static_cast<long long>(j.idx);
      inflight.emplace(j.idx, j);
      try {
        write_frame(w.to_fd, encode_item(msg));
      } catch (const std::exception&) {
        handle_death(w);  // dead before it even got the item
      }
    }
    if (open == 0) break;

    // Wait for any busy worker to report (or die).
    std::vector<pollfd> fds;
    std::vector<std::size_t> who;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (workers_[i].job < 0) continue;
      fds.push_back(pollfd{workers_[i].from_fd, POLLIN, 0});
      who.push_back(i);
    }
    if (fds.empty()) continue;  // everything re-queued by write failures
    while (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno != EINTR) {
        throw std::runtime_error(std::string("poll() failed: ") +
                                 std::strerror(errno));
      }
    }
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Worker& w = workers_[who[k]];
      if (w.job < 0) continue;  // already handled this sweep
      std::string payload;
      bool ok = false;
      OutcomeMsg out;
      try {
        if (read_frame(w.from_fd, &payload)) {
          out = decode_outcome(payload);
          ok = true;
        }
      } catch (const std::exception&) {
        ok = false;  // torn frame or CRC mismatch: treat as a death
      }
      if (!ok || out.index != static_cast<std::uint64_t>(w.job)) {
        handle_death(w);
        continue;
      }
      const std::size_t idx = static_cast<std::size_t>(out.index);
      Job j = inflight.at(idx);
      inflight.erase(idx);
      w.job = -1;
      DistItemResult res = std::move(out.result);
      res.worker_failures += j.deaths;
      res.item_retries += j.retries;
      done(j.idx, std::move(res));
      --open;
    }
  }
}

}  // namespace rmrsim::dist
