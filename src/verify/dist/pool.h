// Fork/exec worker pool for sharded exploration — the coordinator half.
//
// DistPool implements DporOptions::dist (verify/dpor.h DistItemExecutor):
// it forks S worker processes (each exec'ing the host binary back in
// hidden worker mode, see verify/dist/worker.h), validates their hello
// handshakes against the coordinator's configuration fingerprint, and per
// round dispatches work items over the pipe protocol in canonical item
// order, one in-flight item per worker.
//
// Determinism: the pool only moves *where* an item runs. Each item is
// self-contained, outcomes are reported through the coordinator's `done`
// callback and merged by explore_dpor in item order at the round barrier —
// so an S-shard run's ExploreResult is byte-identical to the in-process
// search whenever the node budget does not trip (and with one shard,
// unconditionally: dispatch is then fully sequential).
//
// Worker failure: a worker that dies mid-item (EOF on its pipe) is reaped,
// respawned, and the item is re-dispatched, up to `item_max_attempts`
// total attempts; after that the item is quarantined with the reason —
// exactly the retry/quarantine ladder run_item_recovering applies to
// in-process failures. Charges commit only when an outcome arrives, so
// worker deaths never skew nodes_visited.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "verify/dpor.h"

namespace rmrsim::dist {

class DistPool : public DistItemExecutor {
 public:
  struct Config {
    /// Worker process count (>= 1).
    int shards = 2;
    /// argv for one worker process; argv[0] is the executable path
    /// (typically /proc/self/exe readlink'd by the CLI).
    std::vector<std::string> worker_argv;
    /// The coordinator's configuration fingerprint; every worker hello
    /// must match it exactly.
    std::uint64_t fingerprint = 0;
    /// Total attempts per item across worker deaths (DporOptions::
    /// item_max_attempts).
    int item_max_attempts = 3;
    /// Ship complete schedules back (coordinator collects them).
    bool collect_completes = false;
    /// Environment variables to clear in respawned workers (the worker
    /// kill-switch RMRSIM_WORKER_EXIT_AFTER_ITEMS must fire once, not on
    /// every respawn).
    std::vector<std::string> clear_env_on_respawn = {
        "RMRSIM_WORKER_EXIT_AFTER_ITEMS"};
  };

  /// Spawns the workers and completes their handshakes. Throws
  /// std::runtime_error if a worker cannot be spawned or reports a
  /// mismatched fingerprint/protocol version.
  explicit DistPool(Config config);
  ~DistPool() override;

  DistPool(const DistPool&) = delete;
  DistPool& operator=(const DistPool&) = delete;

  void run_round(
      const std::vector<DporWorkItem>& items,
      const std::vector<std::size_t>& live,
      const std::function<std::uint64_t()>& committed_nodes,
      const std::function<void(std::size_t, DistItemResult&&)>& done) override;

  /// Worker processes spawned over the pool's lifetime (>= shards;
  /// respawns after deaths add to it). Exposed for tests.
  int spawns() const { return spawns_; }

 private:
  struct Worker {
    pid_t pid = -1;
    int to_fd = -1;    // coordinator -> worker (worker stdin)
    int from_fd = -1;  // worker -> coordinator (worker stdout)
    long long job = -1;  // live index in flight, -1 = idle
  };

  Worker spawn_worker();
  void shutdown_worker(Worker& w);

  Config config_;
  std::vector<Worker> workers_;
  int spawns_ = 0;
  bool respawned_once_ = false;
};

}  // namespace rmrsim::dist
