// Exhaustive interleaving exploration for small configurations.
//
// Random-seed sweeps sample the schedule space; for the safety claims the
// paper's algorithms make (Specification 4.1, mutual exclusion, GME session
// safety), small configurations can instead be checked against EVERY
// schedule up to a depth bound — Section 2's "process steps can be
// scheduled arbitrarily", taken literally.
//
// The explorer enumerates schedules depth-first. Because rmrsim executions
// are deterministic functions of the schedule (the property the lower-bound
// adversary also rests on), each tree node is reconstructed by replaying
// its schedule prefix on a fresh instance — no state snapshotting, no undo.
// Cost is O(nodes x depth) simulated steps, which is fine for the 2-3
// process, few-call configurations where exhaustiveness pays.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "memory/shared_memory.h"
#include "runtime/simulation.h"

namespace rmrsim {

/// One disposable world: the explorer calls `build` for every node visit.
/// `keepalive` owns whatever the programs reference (algorithm objects);
/// destroyed after `sim`.
struct ExploreInstance {
  std::shared_ptr<void> keepalive;
  std::unique_ptr<SharedMemory> mem;
  std::unique_ptr<Simulation> sim;
};

/// How explorers rebuild the world at a tree node (DESIGN.md, "Snapshot
/// exploration"):
///  - kReplay: call build() and re-execute the schedule prefix from scratch
///    — the original O(nodes x depth) strategy, kept as the oracle.
///  - kSnapshot: restore the deepest cached WorldSnapshot whose schedule is
///    a prefix of the target and replay only the remaining suffix. Identical
///    results (forking is behaviorally lossless; the parity suite enforces
///    it), much cheaper on deep trees.
enum class SnapshotMode {
  kReplay,
  kSnapshot,
};

struct ExploreOptions {
  /// Abandon a schedule past this many steps (spinning processes make the
  /// tree infinite; such paths are reported as truncated, not failures).
  int max_depth = 64;
  /// Stop after visiting this many nodes (safety valve).
  std::uint64_t max_nodes = 2'000'000;
  /// Branch on *memory operations* only: each transition flushes a
  /// process's pending events/directives and applies its next memory op
  /// (or runs it to termination). Sound — every reduced schedule is a real
  /// schedule, so reported violations are genuine — but event orderings
  /// not of this shape are skipped, so checkers used with macro stepping
  /// should be phrased over memory-op records (values), not event
  /// positions, for completeness. Cuts tree depth ~2-3x.
  bool macro_steps = true;
  /// Run every built instance with HistoryMode::kCountersOnly: per-step
  /// records are dropped, so replays stop paying record growth. Opt-in —
  /// only sound when the checker reads aggregate counters (size, rmrs,
  /// participants, ...), not records; record-backed queries throw.
  bool counters_only_history = false;
  /// Node reconstruction strategy. kSnapshot is the default; kReplay is the
  /// oracle the parity tests compare against.
  SnapshotMode snapshot_mode = SnapshotMode::kSnapshot;
  /// Take a snapshot every `snapshot_stride` tree levels along each replay
  /// (1 = every node). Larger strides trade replay work for memory.
  int snapshot_stride = 6;
  /// Byte budget for cached snapshots per cache (LRU eviction beyond it).
  std::size_t snapshot_max_bytes = std::size_t{8} << 20;
};

/// Reduction statistics. The naive explorer leaves everything but
/// `replayed_steps` zero; explore_dpor (verify/dpor.h) fills the rest.
/// `naive_tree_estimate` is the mean over maximal explored paths of the
/// product of enabled-set sizes — an *estimate* of the naive tree, labelled
/// as such; the exact naive count for configurations both explorers can
/// finish is measured by running explore_all_schedules itself.
struct ExploreStats {
  /// Simulator steps actually executed to rebuild states (every step() and
  /// tick() applied during prefix replays, counted from the simulator's own
  /// schedule — NOT the number of macro-schedule entries, which undercounts
  /// by the events/ticks each macro step flushes).
  std::uint64_t replayed_steps = 0;
  std::uint64_t sleep_set_prunes = 0;    ///< children skipped via sleep sets
  std::uint64_t backtrack_points = 0;    ///< race-driven backtrack insertions
  std::uint64_t sleep_blocked_paths = 0; ///< nodes where every child slept
  double naive_tree_estimate = 0.0;      ///< est. nodes a naive DFS visits
  int rounds = 0;                        ///< parallel fixpoint rounds
  std::uint64_t work_items = 0;          ///< parallel work items executed
  // Snapshot-mode counters (zero in kReplay mode).
  std::uint64_t snapshot_hits = 0;       ///< rebuilds served from a snapshot
  std::uint64_t snapshot_misses = 0;     ///< rebuilds that fell back to build()
  std::uint64_t snapshots_taken = 0;     ///< snapshots captured into caches
  std::uint64_t snapshot_evictions = 0;  ///< snapshots LRU-evicted (budget)
  /// Of `replayed_steps`, the steps executed after restoring a snapshot
  /// (the delta suffix). replayed_steps - snapshot_delta_steps = steps spent
  /// on from-scratch replays.
  std::uint64_t snapshot_delta_steps = 0;
  /// Peak retained snapshot bytes — max over caches for parallel searches
  /// (each worker item owns a private cache), not a global sum.
  std::uint64_t snapshot_peak_bytes = 0;
  // Crash-tolerance counters (verify/checkpoint.h; all zero without a
  // checkpoint or injected failures). Runtime accounting of the recovery
  // machinery — everything above stays identical whether a search ran
  // uninterrupted or was resumed from a checkpoint.
  std::uint64_t checkpoint_item_hits = 0; ///< work items served from a checkpoint
  std::uint64_t checkpoint_epochs = 0;    ///< checkpoint epochs written
  std::uint64_t worker_failures = 0;      ///< item attempts that died or timed out
  std::uint64_t item_retries = 0;         ///< failed attempts that were re-run
  /// Work items whose outcome was reused from a fingerprint-identical,
  /// provably-equivalent item instead of re-explored (DporOptions::
  /// dedup_states; zero when dedup is off).
  std::uint64_t dedup_hits = 0;
};

struct ExploreResult {
  std::uint64_t nodes_visited = 0;
  std::uint64_t complete_schedules = 0;  ///< all processes terminated
  std::uint64_t truncated_schedules = 0; ///< hit max_depth
  bool exhausted = true;                 ///< false if max_nodes tripped
  /// First safety violation found, with the offending schedule. The naive
  /// explorer and explore_dpor both report the lexicographically least
  /// violating schedule of their search, so verdicts are comparable and
  /// deterministic (explore_dpor: across worker counts too).
  std::optional<std::string> violation;
  std::vector<ProcId> violating_schedule;
  /// A work item whose every execution attempt failed (worker death or
  /// per-item deadline; see DporOptions::item_max_attempts). Its subtree is
  /// unexplored, so any search that quarantines items reports
  /// exhausted == false.
  struct QuarantinedItem {
    std::vector<ProcId> schedule;  ///< macro schedule of the item's root
    std::string reason;            ///< why the last attempt failed
  };
  std::vector<QuarantinedItem> quarantined_items;
  ExploreStats stats;
};

using ExploreBuilder = std::function<ExploreInstance()>;

/// Checks a (possibly partial) history; returns a message on violation.
/// Called at every node, so prefix-closed properties fail as early as
/// possible.
using ExploreChecker =
    std::function<std::optional<std::string>(const History&)>;

/// Explores every schedule of the instance up to the bounds, checking each
/// visited state. Stops at the first violation.
ExploreResult explore_all_schedules(const ExploreBuilder& build,
                                    const ExploreChecker& check,
                                    const ExploreOptions& options = {});

struct CrashSweepOptions {
  /// Fair steps between the injected crash and the victim's recovery.
  std::uint64_t recover_after = 20;
  /// Step budget for driving each crashed run to completion; runs that
  /// exhaust it count as `stuck` (a progress failure, not a safety one).
  std::uint64_t max_steps = 200'000;
  /// Safety valve on the number of crash points tried.
  int max_crash_points = 10'000;
  /// Recover the victim `recover_after` fair steps after the crash. With
  /// false the victim stays crashed forever — the crash-stop model — and
  /// runs whose survivors wait on it end up wedged, not budget-exhausted.
  bool recover_victim = true;
  /// Prefix reconstruction strategy for the per-crash-point replays (the
  /// same semantics as ExploreOptions::snapshot_mode; pre-crash worlds
  /// only, post-crash execution is never cached).
  SnapshotMode snapshot_mode = SnapshotMode::kSnapshot;
  int snapshot_stride = 6;
  std::size_t snapshot_max_bytes = std::size_t{8} << 20;
};

struct CrashSweepResult {
  int crash_points = 0;  ///< crash positions actually injected
  int completed = 0;     ///< runs where every process terminated
  /// Runs that exhausted the step budget with ready processes left —
  /// typically spinners that a larger budget might finish.
  int stuck = 0;
  /// Runs that can never take another step no matter the budget: every
  /// non-terminated process is crashed (DriveOutcome::kWedged). Distinct
  /// from `stuck` because no budget increase can un-wedge them.
  int wedged = 0;
  /// First safety violation found, and the crash point that produced it
  /// (the number of baseline steps replayed before the crash).
  std::optional<std::string> violation;
  int violating_crash_point = -1;
  /// Replay/snapshot accounting for the per-crash-point prefix rebuilds
  /// (only the replay-related and snapshot_* fields are meaningful here).
  ExploreStats stats;
};

/// The deterministic analogue of explore_all_schedules for the crash axis:
/// runs the instance once crash-free under a fair schedule to record a
/// baseline, then for every step of `victim` in that baseline rebuilds the
/// world, replays the prefix, crashes the victim at that exact point, runs
/// `recover_after` further fair steps, recovers it, and drives the run to
/// completion — checking `check` against each final history. Exhaustive over
/// crash positions of one victim along one schedule; combine with seeds or
/// explore_all_schedules for breadth across schedules.
CrashSweepResult sweep_crash_points(const ExploreBuilder& build,
                                    const ExploreChecker& check,
                                    ProcId victim,
                                    const CrashSweepOptions& options = {});

}  // namespace rmrsim
