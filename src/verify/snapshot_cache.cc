#include "verify/snapshot_cache.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace rmrsim {

bool SnapshotCache::insert(std::vector<ProcId> prefix,
                           std::shared_ptr<const WorldSnapshot> snap) {
  ensure(snap != nullptr, "SnapshotCache::insert: null snapshot");
  const std::size_t snap_bytes = snap->approx_bytes();
  if (snap_bytes > config_.max_bytes) return false;
  const std::size_t len = prefix.size();
  auto [it, inserted] = entries_.try_emplace(std::move(prefix));
  Entry& e = it->second;
  if (inserted) {
    ++length_count_[len];
  } else {
    bytes_ -= e.bytes;  // replacing an existing entry
  }
  e.snap = std::move(snap);
  e.bytes = snap_bytes;
  e.last_used = ++tick_;
  bytes_ += snap_bytes;
  if (bytes_ > peak_bytes_) peak_bytes_ = bytes_;
  evict_to_budget();
  return true;
}

std::shared_ptr<const WorldSnapshot> SnapshotCache::best_prefix(
    const std::vector<ProcId>& target, std::size_t* matched_len) {
  // Longest-prefix match, probing only prefix lengths that exist in the
  // cache (descending). Snapshots cluster at stride-aligned depths, so this
  // is a handful of hash lookups instead of |target| ordered-map lookups.
  std::vector<ProcId> key;
  key.reserve(target.size());
  for (auto lit = length_count_.upper_bound(target.size());
       lit != length_count_.begin();) {
    --lit;
    const std::size_t len = lit->first;
    key.assign(target.begin(),
               target.begin() + static_cast<std::ptrdiff_t>(len));
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.last_used = ++tick_;
      if (matched_len != nullptr) *matched_len = len;
      return it->second.snap;
    }
  }
  if (matched_len != nullptr) *matched_len = 0;
  return nullptr;
}

void SnapshotCache::erase_entry(const std::vector<ProcId>& key) {
  auto it = entries_.find(key);
  ensure(it != entries_.end(), "SnapshotCache: eviction key vanished");
  bytes_ -= it->second.bytes;
  auto lit = length_count_.find(key.size());
  if (--lit->second == 0) length_count_.erase(lit);
  entries_.erase(it);
  ++evictions_;
}

void SnapshotCache::evict_to_budget() {
  if (bytes_ <= config_.max_bytes) return;
  // Batch eviction: drop the least-recently-used entries down to 3/4 of the
  // budget, so the O(n log n) scan amortizes over the ~n/4 inserts it buys.
  // Deterministic despite the unordered container — last_used ticks are
  // unique and monotone, so the sorted order is total.
  std::vector<std::pair<std::uint64_t, const std::vector<ProcId>*>> order;
  order.reserve(entries_.size());
  for (const auto& [key, e] : entries_) order.emplace_back(e.last_used, &key);
  std::sort(order.begin(), order.end());
  const std::size_t target = config_.max_bytes - config_.max_bytes / 4;
  for (const auto& [used, key] : order) {
    if (bytes_ <= target || entries_.size() <= 1) break;
    erase_entry(*key);
  }
}

std::shared_ptr<const WorldSnapshot> take_snapshot(
    const ExploreInstance& inst) {
  WorldSnapshot s = inst.sim->snapshot();
  s.keepalive = inst.keepalive;
  return std::make_shared<const WorldSnapshot>(std::move(s));
}

ExploreInstance restore_instance(const WorldSnapshot& snap) {
  Simulation::ForkedWorld world = Simulation::restore(snap);
  return ExploreInstance{snap.keepalive, std::move(world.mem),
                         std::move(world.sim)};
}

namespace {

/// Applies one replay unit of `p`; mirrors the explorers' branch semantics.
void apply_unit(Simulation& sim, ProcId p, ReplayUnit unit) {
  switch (unit) {
    case ReplayUnit::kMacro:
      if (sim.runnable(p)) sim.macro_step(p);
      break;
    case ReplayUnit::kStep:
      if (p == kNoProc) {
        sim.tick();
      } else if (sim.runnable(p)) {
        sim.step(p);
      }
      break;
  }
}

}  // namespace

ExploreInstance materialize_schedule(const ExploreBuilder& build,
                                     const std::vector<ProcId>& schedule,
                                     ReplayUnit unit, bool counters_only,
                                     SnapshotCache* cache,
                                     ExploreStats* stats) {
  ExploreInstance inst;
  std::size_t start = 0;
  if (cache != nullptr) {
    std::size_t matched = 0;
    std::shared_ptr<const WorldSnapshot> snap =
        cache->best_prefix(schedule, &matched);
    if (snap != nullptr) {
      inst = restore_instance(*snap);
      start = matched;
      if (stats != nullptr) ++stats->snapshot_hits;
    } else if (stats != nullptr) {
      ++stats->snapshot_misses;
    }
  }
  const bool restored = inst.sim != nullptr;
  if (!restored) {
    inst = build();
    if (counters_only) inst.sim->set_history_mode(HistoryMode::kCountersOnly);
    if (cache != nullptr) inst.sim->enable_fork_log();
  }

  Simulation& sim = *inst.sim;
  const std::size_t base = sim.schedule().size();
  const std::size_t stride =
      cache != nullptr ? static_cast<std::size_t>(cache->config().stride) : 0;
  for (std::size_t i = start; i < schedule.size(); ++i) {
    apply_unit(sim, schedule[i], unit);
    // Depth-stratified capture: snapshot stride-aligned prefixes only.
    // Capturing every node would make the snapshots themselves the new
    // O(nodes) tax; at stride k a rebuild replays at most k units from the
    // nearest aligned ancestor.
    const std::size_t len = i + 1;
    if (cache != nullptr && stride > 0 && len % stride == 0) {
      const std::vector<ProcId> prefix(
          schedule.begin(),
          schedule.begin() + static_cast<std::ptrdiff_t>(len));
      if (!cache->contains(prefix)) {
        if (cache->insert(prefix, take_snapshot(inst)) && stats != nullptr) {
          ++stats->snapshots_taken;
        }
      }
    }
  }
  if (stats != nullptr) {
    const std::uint64_t executed = sim.schedule().size() - base;
    stats->replayed_steps += executed;
    if (restored) stats->snapshot_delta_steps += executed;
  }
  return inst;
}

void extend_in_place(ExploreInstance& inst, ProcId p, ReplayUnit unit,
                     const std::vector<ProcId>& prefix, SnapshotCache* cache,
                     ExploreStats* stats) {
  Simulation& sim = *inst.sim;
  const std::size_t base = sim.schedule().size();
  apply_unit(sim, p, unit);
  if (stats != nullptr) stats->replayed_steps += sim.schedule().size() - base;
  if (cache != nullptr) {
    const std::size_t stride = static_cast<std::size_t>(cache->config().stride);
    if (stride > 0 && prefix.size() % stride == 0 &&
        !cache->contains(prefix)) {
      if (cache->insert(prefix, take_snapshot(inst)) && stats != nullptr) {
        ++stats->snapshots_taken;
      }
    }
  }
}

void fold_cache_stats(const SnapshotCache& cache, ExploreStats& stats) {
  stats.snapshot_evictions += cache.evictions();
  if (cache.peak_bytes() > stats.snapshot_peak_bytes) {
    stats.snapshot_peak_bytes = cache.peak_bytes();
  }
}

}  // namespace rmrsim
