#include "verify/dpor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <utility>

#include "common/check.h"
#include "common/codec.h"
#include "sched/schedulers.h"
#include "verify/checkpoint.h"
#include "verify/snapshot_cache.h"

namespace rmrsim {

namespace {

using MacroFootprint = Simulation::MacroFootprint;

// The path-step / sleep-entry / work-item types are public now (dpor.h):
// sharded exploration ships work items to worker processes. Clock meaning:
// clock[q] = index of the last q-step that happens-before this step (its
// own entry is its own index), -1 if none. Happens-before is program order
// plus the dependence relation over executed steps. A sleep entry's
// footprint stays exact while the process sleeps: it is woken (dropped
// from the set) by exactly the dependent steps that could change its op's
// outcome.
using PathStep = DporPathStep;
using SleepEntry = DporSleepEntry;
using WorkItem = DporWorkItem;

bool asleep(const std::vector<SleepEntry>& sleep, ProcId p) {
  for (const SleepEntry& e : sleep) {
    if (e.proc == p) return true;
  }
  return false;
}

/// Child sleep set: inherited entries plus previously executed siblings,
/// keeping only those independent of the step taken (dependent entries are
/// woken — their subtrees are no longer covered).
std::vector<SleepEntry> child_sleep(const std::vector<SleepEntry>& inherited,
                                    const std::vector<SleepEntry>& siblings,
                                    const MacroFootprint& fp) {
  std::vector<SleepEntry> out;
  out.reserve(inherited.size() + siblings.size());
  for (const SleepEntry& e : inherited) {
    if (!Simulation::dependent(e.fp, fp)) out.push_back(e);
  }
  for (const SleepEntry& e : siblings) {
    if (!Simulation::dependent(e.fp, fp)) out.push_back(e);
  }
  return out;
}

/// Retroactive race detection: computes the clock of a newly executed step
/// (proc `p`, footprint `fp`, appended after `path`) and collects the
/// indices of earlier steps racing with it — dependent steps not already
/// ordered before it by happens-before. Scans descending with an
/// accumulated clock so only the maximal concurrent step of each dependence
/// chain is flagged.
std::vector<std::int32_t> race_scan(const std::vector<PathStep>& path,
                                    ProcId p, const MacroFootprint& fp,
                                    int nprocs,
                                    std::vector<std::size_t>* races) {
  std::vector<std::int32_t> acc(static_cast<std::size_t>(nprocs), -1);
  for (std::size_t j = path.size(); j-- > 0;) {
    if (path[j].proc == p) {
      acc = path[j].clock;  // program-order predecessor
      break;
    }
  }
  for (std::size_t j = path.size(); j-- > 0;) {
    const PathStep& e = path[j];
    if (!Simulation::dependent(e.fp, fp)) continue;
    if (e.proc != p &&
        static_cast<std::int32_t>(j) > acc[static_cast<std::size_t>(e.proc)]) {
      races->push_back(j);
    }
    for (std::size_t q = 0; q < acc.size(); ++q) {
      acc[q] = std::max(acc[q], e.clock[q]);
    }
  }
  acc[static_cast<std::size_t>(p)] = static_cast<std::int32_t>(path.size());
  return acc;
}

// Violations, external race insertions, and item outcomes are public types
// now (verify/checkpoint.h): an ItemOutcome is exactly the unit the
// persistent frontier records and replays.
using Violation = ExploreViolation;

/// A failed item execution attempt: a worker "dying" (injected failure, an
/// exception escaping the item) or a per-item deadline trip. Caught by the
/// retry wrapper; never escapes to the caller.
struct ItemFailure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct Shared {
  const ExploreBuilder* build = nullptr;
  const ExploreChecker* check = nullptr;
  int max_depth = 0;
  std::uint64_t max_nodes = 0;
  bool collect_completes = false;
  bool counters_only = false;
  bool snapshots = false;  // SnapshotMode::kSnapshot
  SnapshotCache::Config cache_config;
  // Worker-failure discipline (DporOptions). The injection hook is a
  // pointer into the options object, which outlives the search.
  int item_max_attempts = 1;
  std::uint64_t retry_backoff_ms = 0;
  std::uint64_t item_node_limit = 0;
  double item_wall_limit_ms = 0.0;
  const std::function<bool(const std::vector<ProcId>&, int)>* inject = nullptr;
  std::atomic<std::uint64_t> nodes{0};
  std::atomic<bool> budget_hit{false};
  std::atomic<std::uint64_t> worker_failures{0};
  std::atomic<std::uint64_t> item_retries{0};
};

bool charge_node(Shared& sh) {
  const std::uint64_t n = sh.nodes.fetch_add(1, std::memory_order_relaxed);
  if (n >= sh.max_nodes) {
    sh.budget_hit.store(true, std::memory_order_relaxed);
    return false;
  }
  return true;
}

/// Stateless DFS over one item's subtree. Backtracking rebuilds the world
/// and replays the schedule prefix, like the naive explorer; races whose
/// reversal point lies inside the subtree grow local backtrack sets, races
/// targeting the trunk are emitted as externals.
///
/// Node-budget charges accumulate in out.charged and are committed to the
/// shared counter only by the retry wrapper, when the attempt succeeds —
/// an attempt that fails (ItemFailure) leaves the global count untouched,
/// so the retried attempt re-executes an identical subtree and
/// nodes_visited stays deterministic under any failure pattern.
void run_item(Shared& sh, const WorkItem& item, ItemOutcome& out,
              std::chrono::steady_clock::time_point attempt_start) {
  struct Frame {
    std::vector<ProcId> enabled;
    std::vector<SleepEntry> sleep;
    std::set<ProcId> backtrack;
    std::set<ProcId> done;
    std::vector<SleepEntry> siblings;
    double naive_product = 1.0;
    double naive_sum = 1.0;
  };

  std::vector<ProcId> schedule = item.schedule;
  std::vector<PathStep> path = item.path;
  const std::size_t root_depth = schedule.size();
  std::vector<Frame> frames;

  // Distinct footprints of every macro step the subtree executes — the
  // dedup eligibility certificate (ItemOutcome::footprints): a duplicate
  // item may reuse this outcome only if none of its own trunk steps is
  // dependent with any footprint here. Kept canonically ordered so outcomes
  // stay byte-stable.
  std::set<std::tuple<bool, VarId, int, bool, bool>> fp_seen;
  const auto flush_footprints = [&] {
    out.footprints.reserve(fp_seen.size());
    for (const auto& [has_op, var, access, observable, terminated] : fp_seen) {
      out.footprints.push_back({has_op, var,
                                static_cast<AccessClass>(access), observable,
                                terminated});
    }
  };

  // Private per-item cache, seeded with the shipped root snapshot: the
  // item's first rebuild is a pure restore, later ones restore the deepest
  // stride-aligned ancestor captured during descent. No cross-thread state.
  std::optional<SnapshotCache> cache;
  if (sh.snapshots) {
    cache.emplace(sh.cache_config);
    if (item.root_snap != nullptr) {
      cache->insert(item.schedule, item.root_snap);
    }
  }
  SnapshotCache* cache_ptr = cache.has_value() ? &*cache : nullptr;

  ExploreInstance inst = materialize_schedule(*sh.build, schedule,
                                              ReplayUnit::kMacro,
                                              sh.counters_only, cache_ptr,
                                              &out.replay);
  bool sim_valid = true;
  const int nprocs = inst.sim->nprocs();

  // Classifies the just-reached state: records leaves (complete, truncated,
  // sleep-blocked) and pushes a frame otherwise. The violation check for
  // non-root states happens before this, right after the step executes.
  const auto enter_node = [&](std::vector<SleepEntry> sleep, double product,
                              double sum) -> bool {
    Simulation& sim = *inst.sim;
    Frame f;
    f.sleep = std::move(sleep);
    f.naive_product = product;
    f.naive_sum = sum;
    for (ProcId p = 0; p < sim.nprocs(); ++p) {
      if (sim.runnable(p)) f.enabled.push_back(p);
    }
    if (f.enabled.empty()) {
      ++out.complete;
      if (sh.collect_completes) out.completes.push_back(schedule);
      out.estimate_sum += sum;
      ++out.leaves;
      return false;
    }
    if (static_cast<int>(schedule.size()) >= sh.max_depth) {
      ++out.truncated;
      out.estimate_sum += sum;
      ++out.leaves;
      return false;
    }
    ProcId seed = kNoProc;
    for (const ProcId p : f.enabled) {
      if (!asleep(f.sleep, p)) {
        seed = p;
        break;
      }
    }
    if (seed == kNoProc) {
      ++out.sleep_blocked;
      out.estimate_sum += sum;
      ++out.leaves;
      return false;
    }
    f.backtrack.insert(seed);
    frames.push_back(std::move(f));
    return true;
  };

  if (!enter_node(item.sleep, item.naive_product, item.naive_sum)) {
    if (cache.has_value()) fold_cache_stats(*cache, out.replay);
    return;  // zero steps executed: the footprint summary is empty
  }

  while (!frames.empty()) {
    Frame& f = frames.back();
    ProcId q = kNoProc;
    for (const ProcId c : f.backtrack) {
      if (!f.done.count(c)) {
        q = c;
        break;
      }
    }
    if (q == kNoProc) {
      frames.pop_back();
      if (!frames.empty()) {
        schedule.pop_back();
        path.pop_back();
      }
      sim_valid = false;
      continue;
    }
    f.done.insert(q);
    if (asleep(f.sleep, q)) {
      ++out.sleep_prunes;
      continue;
    }
    ++out.charged;
    if (sh.nodes.load(std::memory_order_relaxed) + out.charged >
        sh.max_nodes) {
      // Global budget: abandon the item (best effort, partial outcome).
      out.budget_hit = true;
      flush_footprints();
      if (cache.has_value()) fold_cache_stats(*cache, out.replay);
      return;
    }
    if (sh.item_node_limit > 0 && out.charged > sh.item_node_limit) {
      throw ItemFailure("work item exceeded its per-attempt step deadline (" +
                        std::to_string(sh.item_node_limit) + " nodes)");
    }
    if (sh.item_wall_limit_ms > 0.0 && (out.charged & 31) == 0) {
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - attempt_start)
              .count();
      if (elapsed_ms > sh.item_wall_limit_ms) {
        throw ItemFailure("work item exceeded its per-attempt wall deadline");
      }
    }
    if (!sim_valid) {
      inst = materialize_schedule(*sh.build, schedule, ReplayUnit::kMacro,
                                  sh.counters_only, cache_ptr, &out.replay);
      sim_valid = true;
    }
    const MacroFootprint fp = inst.sim->macro_step(q);
    ++out.nodes;
    fp_seen.emplace(fp.has_op, fp.var, static_cast<int>(fp.access),
                    fp.observable, fp.terminated);

    std::vector<std::size_t> races;
    std::vector<std::int32_t> clock = race_scan(path, q, fp, nprocs, &races);
    for (const std::size_t j : races) {
      if (j >= root_depth) {
        Frame& tf = frames[j - root_depth];
        if (!tf.done.count(q) && tf.backtrack.insert(q).second) {
          ++out.backtracks;
        }
      } else {
        out.externals.push_back(
            {std::vector<ProcId>(schedule.begin(),
                                 schedule.begin() +
                                     static_cast<std::ptrdiff_t>(j)),
             q});
      }
    }

    std::vector<SleepEntry> sleep = child_sleep(f.sleep, f.siblings, fp);
    f.siblings.push_back({q, fp});
    const double product =
        f.naive_product * static_cast<double>(f.enabled.size());
    const double sum = f.naive_sum + product;

    schedule.push_back(q);
    path.push_back({q, fp, std::move(clock)});

    if (const auto v = (*sh.check)(inst.sim->history()); v.has_value()) {
      out.violations.push_back({schedule, *v});
      out.estimate_sum += sum;
      ++out.leaves;
      schedule.pop_back();
      path.pop_back();
      sim_valid = false;
      continue;
    }
    if (!enter_node(std::move(sleep), product, sum)) {
      schedule.pop_back();
      path.pop_back();
      sim_valid = false;
    } else if (cache_ptr != nullptr &&
               schedule.size() %
                       static_cast<std::size_t>(sh.cache_config.stride) ==
                   0 &&
               !cache_ptr->contains(schedule)) {
      // Descent-time capture at stride-aligned depths: later backtracks into
      // this subtree restore here instead of replaying from the item root.
      if (cache_ptr->insert(schedule, take_snapshot(inst))) {
        ++out.replay.snapshots_taken;
      }
    }
  }
  flush_footprints();
  if (cache.has_value()) fold_cache_stats(*cache, out.replay);
}

/// Runs one item under the worker-failure discipline: a failed attempt
/// (thrown exception — a "dead" worker — or a per-item deadline) is retried
/// in the same slot with exponential backoff, up to item_max_attempts
/// total attempts. Retrying in place rather than re-enqueueing preserves
/// the pool's termination invariant (no new queue entries appear mid-round)
/// while giving the same bounded-retry semantics. Node charges are
/// committed only on success, so the merged results are independent of how
/// many attempts any item needed. Returns false when the item is
/// permanently failing; `quarantine_reason` then says why and `out` is left
/// empty (the subtree contributed nothing).
bool run_item_recovering(Shared& sh, const WorkItem& item, ItemOutcome& out,
                         std::string* quarantine_reason) {
  for (int attempt = 1;; ++attempt) {
    ItemOutcome attempt_out;
    attempt_out.schedule = item.schedule;
    try {
      if (sh.inject != nullptr && *sh.inject &&
          (*sh.inject)(item.schedule, attempt)) {
        throw ItemFailure("injected worker failure");
      }
      run_item(sh, item, attempt_out, std::chrono::steady_clock::now());
    } catch (const std::exception& e) {
      sh.worker_failures.fetch_add(1, std::memory_order_relaxed);
      if (attempt >= sh.item_max_attempts) {
        *quarantine_reason = e.what();
        out = ItemOutcome{};
        out.schedule = item.schedule;
        return false;
      }
      sh.item_retries.fetch_add(1, std::memory_order_relaxed);
      if (sh.retry_backoff_ms > 0) {
        const std::uint64_t shift =
            std::min<std::uint64_t>(static_cast<std::uint64_t>(attempt - 1),
                                    10);
        const std::uint64_t delay_ms =
            std::min<std::uint64_t>(sh.retry_backoff_ms << shift, 1000);
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      }
      continue;
    }
    out = std::move(attempt_out);
    const std::uint64_t before =
        sh.nodes.fetch_add(out.charged, std::memory_order_relaxed);
    if (before + out.charged > sh.max_nodes) {
      sh.budget_hit.store(true, std::memory_order_relaxed);
    }
    return true;
  }
}

/// Fills the per-search shared state from the options — the half of the
/// configuration run_item needs, shared between the in-process pool
/// (explore_dpor) and the out-of-process entry (run_dist_item) so both
/// execute subtrees identically.
void init_shared(Shared& sh, const ExploreBuilder& build,
                 const ExploreChecker& check, const DporOptions& options) {
  sh.build = &build;
  sh.check = &check;
  sh.max_depth = options.max_depth;
  sh.max_nodes = options.max_nodes;
  sh.collect_completes = static_cast<bool>(options.on_complete_schedule);
  sh.counters_only = options.counters_only_history;
  sh.snapshots = options.snapshot_mode == SnapshotMode::kSnapshot;
  sh.cache_config = SnapshotCache::Config{std::max(1, options.snapshot_stride),
                                          options.snapshot_max_bytes};
  sh.item_max_attempts = std::max(1, options.item_max_attempts);
  sh.retry_backoff_ms = options.retry_backoff_ms;
  sh.item_node_limit = options.item_node_limit;
  sh.item_wall_limit_ms = options.item_wall_limit_ms;
  sh.inject = options.inject_item_failure ? &options.inject_item_failure
                                          : nullptr;
}

/// Canonical dedup key of a work item: root-world fingerprint, root depth,
/// and the sleep set in canonical order. The subtree an item explores is a
/// function of (root world, sleep set, remaining depth) alone, so items
/// with equal keys explore step-for-step identical subtrees.
std::string dedup_item_key(const WorkItem& item) {
  ensure(item.root_snap != nullptr,
         "dedup_states requires work items to carry root snapshots");
  const auto fp_key = [](const MacroFootprint& fp) {
    return std::make_tuple(fp.has_op, fp.var, static_cast<int>(fp.access),
                           fp.observable, fp.terminated);
  };
  std::string sig;
  put_u64(sig, item.root_snap->fingerprint());
  put_u32(sig, static_cast<std::uint32_t>(item.schedule.size()));
  std::vector<SleepEntry> sleep = item.sleep;
  std::sort(sleep.begin(), sleep.end(),
            [&](const SleepEntry& a, const SleepEntry& b) {
              return std::make_tuple(a.proc, fp_key(a.fp)) <
                     std::make_tuple(b.proc, fp_key(b.fp));
            });
  put_u32(sig, static_cast<std::uint32_t>(sleep.size()));
  for (const SleepEntry& e : sleep) {
    put_u32(sig, static_cast<std::uint32_t>(e.proc));
    put_u32(sig, e.fp.has_op ? 1 : 0);
    put_u32(sig, static_cast<std::uint32_t>(e.fp.var));
    put_u32(sig, static_cast<std::uint32_t>(e.fp.access));
    put_u32(sig, e.fp.observable ? 1 : 0);
    put_u32(sig, e.fp.terminated ? 1 : 0);
  }
  return sig;
}

/// Reuse is sound iff the duplicate's own trunk path is independent of
/// everything the representative's subtree executed: the duplicate's
/// subtree (step-for-step identical) then raises no races against its
/// trunk, so its externals are provably empty and the representative's
/// outcome transfers with only the schedule prefixes rewritten. A partial
/// (budget-hit) outcome never transfers.
bool dedup_eligible(const WorkItem& dup, const ItemOutcome& rep) {
  if (rep.budget_hit) return false;
  for (const PathStep& s : dup.path) {
    for (const MacroFootprint& f : rep.footprints) {
      if (Simulation::dependent(s.fp, f)) return false;
    }
  }
  return true;
}

/// A registered dedup representative: the outcome plus the naive-estimate
/// seeds its item carried (needed to transfer the estimate exactly).
struct DedupRep {
  double naive_product = 1.0;
  double naive_sum = 1.0;
  ItemOutcome outcome;
};

ItemOutcome synthesize_dedup(const WorkItem& dup, const DedupRep& rep) {
  ItemOutcome out = rep.outcome;
  out.schedule = dup.schedule;
  const auto rewrite = [&](std::vector<ProcId>& s) {
    std::copy(dup.schedule.begin(), dup.schedule.end(), s.begin());
  };
  for (ExploreViolation& v : out.violations) rewrite(v.schedule);
  for (std::vector<ProcId>& s : out.completes) rewrite(s);
  out.externals.clear();  // provably empty (dedup_eligible)
  // The recorded estimate decomposes as leaves*naive_sum + naive_product*K
  // with K intrinsic to the subtree; transfer it exactly to the
  // duplicate's seeds.
  if (rep.naive_product > 0.0 && out.leaves > 0) {
    const double k = (rep.outcome.estimate_sum -
                      static_cast<double>(out.leaves) * rep.naive_sum) /
                     rep.naive_product;
    out.estimate_sum = static_cast<double>(out.leaves) * dup.naive_sum +
                       dup.naive_product * k;
  }
  // No work was redone: the replay statistics describe the
  // representative's execution, not this item's.
  out.replay = ExploreStats{};
  return out;
}

/// A persistent node of the sequentially-owned trunk (depth < trunk_depth).
/// Trunk nodes live across rounds so that race insertions arriving from
/// deep items can still open new branches near the root.
struct TrunkNode {
  std::vector<PathStep> path;
  std::vector<ProcId> enabled;
  std::vector<SleepEntry> sleep;
  std::set<ProcId> done;
  std::vector<SleepEntry> siblings;
  double naive_product = 1.0;
  double naive_sum = 1.0;
};

}  // namespace

ExploreInstance replay_macro_schedule(const ExploreBuilder& build,
                                      const std::vector<ProcId>& schedule) {
  ExploreInstance inst = build();
  ensure(inst.sim != nullptr, "explore builder returned no simulation");
  for (const ProcId p : schedule) {
    ensure(inst.sim->runnable(p), "macro schedule replay diverged");
    inst.sim->macro_step(p);
  }
  return inst;
}

ExploreResult explore_dpor(const ExploreBuilder& build,
                           const ExploreChecker& check,
                           const DporOptions& options) {
  ExploreResult result;
  Shared sh;
  init_shared(sh, build, check, options);
  if (options.dedup_states) {
    // Dedup keys on root-world fingerprints (needs the shipped snapshots)
    // and reuses outcomes across distinct histories, which is only sound
    // when checkers see counters, not per-step records.
    ensure(sh.snapshots, "dedup_states requires SnapshotMode::kSnapshot");
    ensure(sh.counters_only, "dedup_states requires counters_only_history");
  }
  ExploreCheckpoint* const ck = options.checkpoint;

  // Trunk-level cache: the coordinator's expansions walk prefixes of each
  // other, so nearly every rebuild is a one-step delta from a cached node.
  std::optional<SnapshotCache> trunk_cache;
  if (sh.snapshots) trunk_cache.emplace(sh.cache_config);
  SnapshotCache* trunk_cache_ptr =
      trunk_cache.has_value() ? &*trunk_cache : nullptr;

  const int trunk_depth =
      std::max(0, std::min(options.trunk_depth, options.max_depth));

  std::map<std::vector<ProcId>, TrunkNode> trunk;
  std::set<std::pair<std::vector<ProcId>, ProcId>> pending;
  // Cross-round dedup memory: canonical item key -> the first healthy
  // outcome executed (or merged from a checkpoint) under that key.
  std::map<std::string, DedupRep> dedup_reps;
  std::vector<Violation> violations;
  double estimate_sum = 0.0;
  std::uint64_t leaves = 0;

  const auto emit_complete = [&](const std::vector<ProcId>& sched) {
    ++result.complete_schedules;
    if (options.on_complete_schedule) options.on_complete_schedule(sched);
  };

  // Creates the trunk node / work item / leaf for a state just reached by
  // replaying `sched` (its live simulation in `sim`; violation already
  // checked by the caller). Returns a work item when the state sits at the
  // trunk boundary.
  std::vector<WorkItem> items;
  const auto enter_trunk_state = [&](const std::vector<ProcId>& sched,
                                     std::vector<PathStep> path,
                                     std::vector<SleepEntry> sleep,
                                     double product, double sum,
                                     ExploreInstance& inst) {
    Simulation& sim = *inst.sim;
    std::vector<ProcId> enabled;
    for (ProcId p = 0; p < sim.nprocs(); ++p) {
      if (sim.runnable(p)) enabled.push_back(p);
    }
    if (enabled.empty()) {
      emit_complete(sched);
      estimate_sum += sum;
      ++leaves;
      return;
    }
    if (static_cast<int>(sched.size()) >= options.max_depth) {
      ++result.truncated_schedules;
      estimate_sum += sum;
      ++leaves;
      return;
    }
    if (static_cast<int>(sched.size()) >= trunk_depth) {
      WorkItem item{sched, std::move(path), std::move(sleep), product, sum,
                    nullptr};
      if (sh.snapshots) {
        // Ship the root world with the item: whichever worker steals it
        // starts from a restore, not a trunk-prefix replay.
        item.root_snap = take_snapshot(inst);
        ++result.stats.snapshots_taken;
      }
      items.push_back(std::move(item));
      return;
    }
    TrunkNode node;
    node.path = std::move(path);
    node.enabled = std::move(enabled);
    node.sleep = std::move(sleep);
    node.naive_product = product;
    node.naive_sum = sum;
    ProcId seed = kNoProc;
    for (const ProcId p : node.enabled) {
      if (!asleep(node.sleep, p)) {
        seed = p;
        break;
      }
    }
    trunk.emplace(sched, std::move(node));
    if (seed == kNoProc) {
      ++result.stats.sleep_blocked_paths;
      estimate_sum += sum;
      ++leaves;
    } else {
      pending.insert({sched, seed});
    }
  };

  // Root.
  {
    if (!charge_node(sh)) {
      result.exhausted = false;
      return result;
    }
    ExploreInstance root =
        materialize_schedule(build, {}, ReplayUnit::kMacro, sh.counters_only,
                             trunk_cache_ptr, &result.stats);
    if (const auto v = check(root.sim->history()); v.has_value()) {
      result.nodes_visited = sh.nodes.load();
      result.violation = v;
      return result;
    }
    enter_trunk_state({}, {}, {}, 1.0, 1.0, root);
  }

  const int nprocs = [&] {
    ExploreInstance probe = build();
    ensure(probe.sim != nullptr, "explore builder returned no simulation");
    return probe.sim->nprocs();
  }();

  // Round fixpoint: drain trunk expansions in canonical order (spawning
  // items at the trunk boundary), run the items, integrate their external
  // race insertions, repeat until nothing new appears.
  while ((!pending.empty() || !items.empty()) &&
         !sh.budget_hit.load(std::memory_order_relaxed)) {
    ++result.stats.rounds;

    while (!pending.empty() &&
           !sh.budget_hit.load(std::memory_order_relaxed)) {
      const auto [sched, q] = *pending.begin();
      pending.erase(pending.begin());
      auto it = trunk.find(sched);
      ensure(it != trunk.end(), "dpor trunk expansion targets unknown node");
      TrunkNode& node = it->second;
      if (node.done.count(q)) continue;
      node.done.insert(q);
      if (asleep(node.sleep, q)) {
        ++result.stats.sleep_set_prunes;
        continue;
      }
      if (!charge_node(sh)) break;

      ExploreInstance inst =
          materialize_schedule(build, sched, ReplayUnit::kMacro,
                               sh.counters_only, trunk_cache_ptr,
                               &result.stats);
      const MacroFootprint fp = inst.sim->macro_step(q);

      std::vector<std::size_t> races;
      std::vector<std::int32_t> clock =
          race_scan(node.path, q, fp, nprocs, &races);
      for (const std::size_t j : races) {
        const std::vector<ProcId> target(
            sched.begin(), sched.begin() + static_cast<std::ptrdiff_t>(j));
        auto tit = trunk.find(target);
        ensure(tit != trunk.end(), "dpor race targets unknown trunk node");
        if (!tit->second.done.count(q) && pending.insert({target, q}).second) {
          ++result.stats.backtrack_points;
        }
      }

      std::vector<SleepEntry> sleep =
          child_sleep(node.sleep, node.siblings, fp);
      node.siblings.push_back({q, fp});
      const double product =
          node.naive_product * static_cast<double>(node.enabled.size());
      const double sum = node.naive_sum + product;

      std::vector<ProcId> child_sched = sched;
      child_sched.push_back(q);
      std::vector<PathStep> child_path = node.path;
      child_path.push_back({q, fp, std::move(clock)});

      if (const auto v = check(inst.sim->history()); v.has_value()) {
        violations.push_back({child_sched, *v});
        estimate_sum += sum;
        ++leaves;
        continue;
      }
      enter_trunk_state(child_sched, std::move(child_path), std::move(sleep),
                        product, sum, inst);
    }

    if (sh.budget_hit.load(std::memory_order_relaxed)) break;
    if (items.empty()) continue;  // new pending may have appeared; re-drain

    // Run this round's items — inline, or on a work-stealing pool. Each
    // item is self-contained, so results are independent of which worker
    // runs what; outcomes merge in item order (canonical).
    std::vector<ItemOutcome> outcomes(items.size());
    std::vector<std::string> quarantine(items.size());  // empty = healthy
    result.stats.work_items += items.size();

    // Checkpoint pre-pass: items already completed by a previous run (or an
    // earlier epoch of this one) merge their recorded outcome verbatim and
    // never re-execute; items quarantined there stay quarantined. Charges
    // commit exactly as a live run of the item would, so nodes_visited and
    // the budget check are unchanged by resuming.
    std::vector<char> resolved(items.size(), 0);
    if (ck != nullptr) {
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (ck->is_quarantined(items[i].schedule, &quarantine[i])) {
          resolved[i] = 1;
        } else if (ck->lookup(items[i].schedule, &outcomes[i])) {
          resolved[i] = 1;
          ++result.stats.checkpoint_item_hits;
          const std::uint64_t before = sh.nodes.fetch_add(
              outcomes[i].charged, std::memory_order_relaxed);
          if (before + outcomes[i].charged > sh.max_nodes) {
            sh.budget_hit.store(true, std::memory_order_relaxed);
          }
        }
      }
    }
    std::vector<std::size_t> live;
    live.reserve(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (!resolved[i]) live.push_back(i);
    }

    const auto run_one = [&](std::size_t job) {
      if (!run_item_recovering(sh, items[job], outcomes[job],
                               &quarantine[job])) {
        if (ck != nullptr) {
          ck->record_quarantine(items[job].schedule, quarantine[job]);
        }
      } else if (ck != nullptr && !outcomes[job].budget_hit) {
        ck->record_outcome(outcomes[job]);
      }
    };

    // Runs a set of item indices: on the external (multi-process) executor
    // when one is configured, inline when effectively sequential, on the
    // work-stealing thread pool otherwise.
    const auto run_jobs = [&](const std::vector<std::size_t>& jobs) {
      if (jobs.empty()) return;
      if (options.dist != nullptr) {
        options.dist->run_round(
            items, jobs,
            [&sh] { return sh.nodes.load(std::memory_order_relaxed); },
            [&](std::size_t job, DistItemResult&& r) {
              // The coordinator-side half of run_item_recovering: commit
              // the retry accounting, the node charges (with the budget
              // check against the authoritative counter), and the
              // checkpoint record.
              sh.worker_failures.fetch_add(r.worker_failures,
                                           std::memory_order_relaxed);
              sh.item_retries.fetch_add(r.item_retries,
                                        std::memory_order_relaxed);
              if (!r.ok) {
                quarantine[job] = r.quarantine_reason.empty()
                                      ? std::string("worker process failed")
                                      : std::move(r.quarantine_reason);
                outcomes[job] = ItemOutcome{};
                outcomes[job].schedule = items[job].schedule;
                if (ck != nullptr) {
                  ck->record_quarantine(items[job].schedule, quarantine[job]);
                }
                return;
              }
              outcomes[job] = std::move(r.outcome);
              const std::uint64_t before = sh.nodes.fetch_add(
                  outcomes[job].charged, std::memory_order_relaxed);
              if (before + outcomes[job].charged > sh.max_nodes) {
                sh.budget_hit.store(true, std::memory_order_relaxed);
              }
              if (ck != nullptr && !outcomes[job].budget_hit) {
                ck->record_outcome(outcomes[job]);
              }
            });
        return;
      }
      const int workers = std::min<int>(std::max(1, options.workers),
                                        static_cast<int>(jobs.size()));
      if (workers <= 1) {
        for (const std::size_t job : jobs) run_one(job);
        return;
      }
      std::vector<std::deque<std::size_t>> queues(
          static_cast<std::size_t>(workers));
      std::vector<std::mutex> locks(static_cast<std::size_t>(workers));
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        queues[i % static_cast<std::size_t>(workers)].push_back(jobs[i]);
      }
      const auto worker = [&](int w) {
        for (;;) {
          std::size_t job = items.size();
          {
            std::lock_guard<std::mutex> g(locks[static_cast<std::size_t>(w)]);
            auto& mine = queues[static_cast<std::size_t>(w)];
            if (!mine.empty()) {
              job = mine.back();
              mine.pop_back();
            }
          }
          if (job == items.size()) {
            // Steal from the front of the longest-suffering victim. No new
            // items appear mid-round (failed attempts retry in place, they
            // are not re-enqueued), so one empty sweep means done.
            for (int v = 0; v < workers && job == items.size(); ++v) {
              if (v == w) continue;
              std::lock_guard<std::mutex> g(
                  locks[static_cast<std::size_t>(v)]);
              auto& theirs = queues[static_cast<std::size_t>(v)];
              if (!theirs.empty()) {
                job = theirs.front();
                theirs.pop_front();
              }
            }
          }
          if (job == items.size()) return;
          run_one(job);
        }
      };
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(workers));
      for (int w = 0; w < workers; ++w) pool.emplace_back(worker, w);
      for (std::thread& t : pool) t.join();
    };

    // Fingerprint dedup (opt-in): split the live items into representatives
    // — the first item this search has seen under each key — and
    // duplicates, run the representatives first, then serve each duplicate
    // from its representative's outcome when the reuse is provably sound.
    std::vector<std::string> key(items.size());
    std::vector<std::size_t> wave1;
    std::vector<std::size_t> dup_jobs;
    if (!options.dedup_states) {
      wave1 = live;
    } else {
      for (std::size_t i = 0; i < items.size(); ++i) {
        key[i] = dedup_item_key(items[i]);
      }
      std::set<std::string> claimed;  // keys taken by a wave-1 item this round
      for (const std::size_t i : live) {
        if (dedup_reps.count(key[i]) != 0 || !claimed.insert(key[i]).second) {
          dup_jobs.push_back(i);
        } else {
          wave1.push_back(i);
        }
      }
    }

    run_jobs(wave1);

    if (options.dedup_states) {
      // Register representatives: every healthy (non-quarantined, complete)
      // outcome this round — wave-1 runs and checkpoint merges alike —
      // under a key nobody holds yet. First registration wins, in the
      // canonical item order, so the representative choice is
      // deterministic and stable across resumes.
      const auto register_rep = [&](std::size_t i) {
        if (!quarantine[i].empty() || outcomes[i].budget_hit) return;
        dedup_reps.try_emplace(key[i],
                               DedupRep{items[i].naive_product,
                                        items[i].naive_sum, outcomes[i]});
      };
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (resolved[i]) register_rep(i);
      }
      for (const std::size_t i : wave1) register_rep(i);

      std::vector<std::size_t> wave2;  // ineligible duplicates: run normally
      for (const std::size_t i : dup_jobs) {
        const auto rit = dedup_reps.find(key[i]);
        if (rit != dedup_reps.end() &&
            rit->second.outcome.schedule.size() == items[i].schedule.size() &&
            dedup_eligible(items[i], rit->second.outcome)) {
          outcomes[i] = synthesize_dedup(items[i], rit->second);
          ++result.stats.dedup_hits;
          const std::uint64_t before = sh.nodes.fetch_add(
              outcomes[i].charged, std::memory_order_relaxed);
          if (before + outcomes[i].charged > sh.max_nodes) {
            sh.budget_hit.store(true, std::memory_order_relaxed);
          }
          if (ck != nullptr) ck->record_outcome(outcomes[i]);
        } else {
          wave2.push_back(i);
        }
      }
      run_jobs(wave2);
    }

    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (!quarantine[i].empty()) {
        result.quarantined_items.push_back(
            {items[i].schedule, quarantine[i]});
        continue;  // unexplored subtree: contributes nothing else
      }
      const ItemOutcome& out = outcomes[i];
      result.complete_schedules += out.complete;
      result.truncated_schedules += out.truncated;
      result.stats.sleep_set_prunes += out.sleep_prunes;
      result.stats.sleep_blocked_paths += out.sleep_blocked;
      result.stats.backtrack_points += out.backtracks;
      result.stats.replayed_steps += out.replay.replayed_steps;
      result.stats.snapshot_hits += out.replay.snapshot_hits;
      result.stats.snapshot_misses += out.replay.snapshot_misses;
      result.stats.snapshots_taken += out.replay.snapshots_taken;
      result.stats.snapshot_evictions += out.replay.snapshot_evictions;
      result.stats.snapshot_delta_steps += out.replay.snapshot_delta_steps;
      result.stats.snapshot_peak_bytes = std::max(
          result.stats.snapshot_peak_bytes, out.replay.snapshot_peak_bytes);
      estimate_sum += out.estimate_sum;
      leaves += out.leaves;
      for (const Violation& v : out.violations) violations.push_back(v);
      if (options.on_complete_schedule) {
        for (const auto& s : out.completes) options.on_complete_schedule(s);
      }
      for (const ExternalAdd& add : out.externals) {
        auto tit = trunk.find(add.node_path);
        ensure(tit != trunk.end(), "dpor external add targets unknown node");
        if (!tit->second.done.count(add.proc) &&
            pending.insert({add.node_path, add.proc}).second) {
          ++result.stats.backtrack_points;
        }
      }
    }
    items.clear();
    // Round barrier = checkpoint barrier: everything merged so far is
    // durable before the next round's trunk expansions begin.
    if (ck != nullptr) ck->flush();
  }

  if (trunk_cache.has_value()) fold_cache_stats(*trunk_cache, result.stats);
  result.nodes_visited = std::min<std::uint64_t>(sh.nodes.load(), sh.max_nodes);
  // Quarantined items leave their subtrees unexplored: like a budget trip,
  // the verdict is then best-effort, never reported as exhaustive.
  result.exhausted = !sh.budget_hit.load(std::memory_order_relaxed) &&
                     result.quarantined_items.empty();
  result.stats.worker_failures =
      sh.worker_failures.load(std::memory_order_relaxed);
  result.stats.item_retries = sh.item_retries.load(std::memory_order_relaxed);
  if (ck != nullptr) {
    ck->flush();
    result.stats.checkpoint_epochs = ck->epochs_written();
  }
  result.stats.naive_tree_estimate =
      leaves > 0 ? estimate_sum / static_cast<double>(leaves) : 1.0;
  if (!violations.empty()) {
    const Violation* best = &violations.front();
    for (const Violation& v : violations) {
      if (v.schedule < best->schedule) best = &v;
    }
    result.violation = best->message;
    result.violating_schedule = best->schedule;
  }
  return result;
}

DistItemResult run_dist_item(const ExploreBuilder& build,
                             const ExploreChecker& check,
                             const DporOptions& options,
                             const DporWorkItem& item,
                             std::uint64_t base_nodes) {
  Shared sh;
  init_shared(sh, build, check, options);
  // The worker sees the coordinator's committed count as of dispatch, so
  // its mid-item budget check `base + charged > max_nodes` can only be
  // more permissive than the live in-process check — and agrees with it
  // exactly whenever the budget does not trip.
  sh.nodes.store(base_nodes, std::memory_order_relaxed);
  DistItemResult res;
  res.ok = run_item_recovering(sh, item, res.outcome, &res.quarantine_reason);
  if (!res.ok && res.quarantine_reason.empty()) {
    res.quarantine_reason = "worker process failed";
  }
  res.worker_failures = sh.worker_failures.load(std::memory_order_relaxed);
  res.item_retries = sh.item_retries.load(std::memory_order_relaxed);
  return res;
}

CrashProductResult sweep_crash_product(const ExploreBuilder& build,
                                       const ExploreChecker& check,
                                       ProcId victim,
                                       const CrashProductOptions& options) {
  CrashProductResult result;

  // Enumerate complete schedules with the reduced exploration, keeping the
  // lexicographically least max_schedules of them as crash bases.
  std::set<std::vector<ProcId>> bases;
  DporOptions ex = options.explore;
  ex.on_complete_schedule = [&](const std::vector<ProcId>& s) {
    bases.insert(s);
    if (static_cast<int>(bases.size()) > options.max_schedules) {
      bases.erase(std::prev(bases.end()));
    }
  };
  const ExploreResult er = explore_dpor(build, check, ex);
  if (er.violation.has_value()) {
    result.schedule_violation = er.violation;
    result.violating_schedule = er.violating_schedule;
    return result;
  }

  // One cache across every base: lex-ordered bases share long prefixes, and
  // within a base successive cuts extend each other — in snapshot mode each
  // rebuild is a short delta replay. Only pre-crash worlds are cached; the
  // crash and everything after it run on the materialized instance.
  std::optional<SnapshotCache> cache;
  if (options.explore.snapshot_mode == SnapshotMode::kSnapshot) {
    cache.emplace(
        SnapshotCache::Config{std::max(1, options.explore.snapshot_stride),
                              options.explore.snapshot_max_bytes});
  }
  SnapshotCache* cache_ptr = cache.has_value() ? &*cache : nullptr;
  const auto finish = [&] {
    if (cache.has_value()) fold_cache_stats(*cache, result.sweep.stats);
  };

  for (const std::vector<ProcId>& sched : bases) {
    ++result.schedules_swept;
    // Crash before the victim's first step, then after each of its steps.
    std::vector<std::size_t> points{0};
    for (std::size_t i = 0; i < sched.size(); ++i) {
      if (sched[i] == victim) points.push_back(i + 1);
    }
    for (const std::size_t cut : points) {
      if (result.sweep.crash_points >= options.max_crash_points) {
        finish();
        return result;
      }
      ExploreInstance inst = materialize_schedule(
          build,
          std::vector<ProcId>(sched.begin(),
                              sched.begin() +
                                  static_cast<std::ptrdiff_t>(cut)),
          ReplayUnit::kMacro, /*counters_only=*/false, cache_ptr,
          &result.sweep.stats);
      Simulation& sim = *inst.sim;
      if (sim.terminated(victim)) continue;  // nothing left to crash
      ++result.sweep.crash_points;
      sim.crash(victim);
      fair_drive(sim, options.recover_after);
      if (options.recover_victim) sim.recover(victim);
      const DriveOutcome done = fair_drive(sim, options.max_steps);
      if (const auto v = check(sim.history()); v.has_value()) {
        result.sweep.violation = v;
        result.sweep.violating_crash_point = static_cast<int>(cut);
        result.violating_schedule = sched;
        finish();
        return result;
      }
      switch (done) {
        case DriveOutcome::kAllTerminated: ++result.sweep.completed; break;
        case DriveOutcome::kBudget: ++result.sweep.stuck; break;
        case DriveOutcome::kWedged: ++result.sweep.wedged; break;
      }
    }
  }
  finish();
  return result;
}

}  // namespace rmrsim
