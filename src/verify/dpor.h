// Dynamic partial-order reduction over macro-step schedules.
//
// explore_all_schedules (explorer.h) enumerates the full schedule tree;
// most of that tree is redundant, because macro steps of different
// processes that touch different variables (or only read a shared one)
// commute — swapping them yields the same memory contents, the same op
// outcomes, and the same cross-process order of observable events, hence
// the same verdict from any checker phrased over those. explore_dpor
// explores one representative per such equivalence class, plus the
// schedules needed to cover every reachable class:
//
//   Soundness   — every schedule the reduced search executes is a real
//                 schedule of the instance (transitions are executed, never
//                 synthesized), so any reported violation is genuine.
//   Completeness — backtrack points are inserted at every race discovered
//                 between executed macro steps (persistent-set style, with
//                 a conservative "add all enabled" fallback when the racing
//                 process took intermediate steps), so every equivalence
//                 class of schedules within the depth bound has an explored
//                 representative. Sleep sets only skip transitions whose
//                 subtree is provably covered by an already-explored
//                 sibling. Checkers must be phrased over memory-op records
//                 and observable-event order (see observable_event());
//                 checkers that key on the positions of process-local
//                 bookkeeping events can distinguish members of a class
//                 and are outside the reduction's contract.
//
// Two macro steps are dependent iff they touch the same variable with at
// least one mutation, or both flush observable events
// (Simulation::dependent). Races are detected retroactively with vector
// clocks over the executed path; the search is stateless — each backtrack
// rebuilds a disposable world, by replaying the schedule prefix from scratch
// (SnapshotMode::kReplay, exactly like the naive explorer) or by restoring
// the deepest cached WorldSnapshot and replaying only the suffix
// (SnapshotMode::kSnapshot, the default — identical results, no O(depth)
// replay per node).
//
// Parallel exploration is deterministic by construction: a sequential
// coordinator owns the top of the tree (the "trunk", up to trunk_depth),
// subtrees hanging off trunk leaves become self-contained work items
// executed by a work-stealing pool, and race insertions that target trunk
// nodes are drained at round barriers in canonical (path, process) order.
// The set of explored nodes — and therefore the verdict, the violating
// schedule, and every statistic — is a function of the instance and the
// options alone, not of thread timing, whenever the search completes
// (exhausted == true). On a max_nodes trip the verdict is best-effort.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "verify/checkpoint.h"
#include "verify/explorer.h"

namespace rmrsim {

/// One executed macro step on the path from the search root to a work-item
/// root: the process stepped, its footprint, and the vector clock *after*
/// the step. Public because sharded exploration ships work items to worker
/// processes (verify/dist/) and dedup keys on the path's footprints.
struct DporPathStep {
  ProcId proc = kNoProc;
  Simulation::MacroFootprint fp;
  std::vector<std::int32_t> clock;
};

/// Sleep-set entry: process `proc` was already explored from this node with
/// footprint `fp`, so re-exploring it here is redundant.
struct DporSleepEntry {
  ProcId proc = kNoProc;
  Simulation::MacroFootprint fp;
};

/// A self-contained unit of parallel work: the subtree rooted at `schedule`,
/// explored under sleep set `sleep`, with the path metadata race_scan needs
/// to classify races against the trunk. `root_snap` is the world at the
/// root (snapshot mode only; null in replay mode, where the worker rebuilds
/// by replaying `schedule`). The naive seeds carry the running naive-DFS
/// size estimate into the subtree.
struct DporWorkItem {
  std::vector<ProcId> schedule;
  std::vector<DporPathStep> path;
  std::vector<DporSleepEntry> sleep;
  double naive_product = 1.0;
  double naive_sum = 1.0;
  std::shared_ptr<const WorldSnapshot> root_snap;
};

/// Result of executing one work item out-of-process.
struct DistItemResult {
  bool ok = false;                 ///< false => the item is quarantined
  std::string quarantine_reason;   ///< non-empty when !ok
  ItemOutcome outcome;             ///< valid when ok
  std::uint64_t worker_failures = 0;  ///< attempts that died or timed out
  std::uint64_t item_retries = 0;     ///< failed attempts that were re-run
};

/// Executes one round's work items somewhere other than the in-process
/// pool — the sharded coordinator (verify/dist/pool.h) implements this over
/// a fork/exec worker fleet. Contract: `run_round` is called on the
/// coordinator thread once per round with the round's item array and the
/// indices to execute; it must invoke `done(index, result)` exactly once
/// per live index, on the calling thread, and may do so in any order.
/// `committed_nodes()` returns the node budget consumed by all previously
/// merged items — sample it immediately before dispatching an item and ship
/// the value as that item's budget base.
class DistItemExecutor {
 public:
  virtual ~DistItemExecutor() = default;
  virtual void run_round(
      const std::vector<DporWorkItem>& items,
      const std::vector<std::size_t>& live,
      const std::function<std::uint64_t()>& committed_nodes,
      const std::function<void(std::size_t, DistItemResult&&)>& done) = 0;
};

struct DporOptions {
  /// Abandon a schedule past this many macro steps (same meaning as
  /// ExploreOptions::max_depth under macro stepping).
  int max_depth = 64;
  /// Stop after visiting this many nodes (safety valve). Verdicts are
  /// deterministic across worker counts only when the search finishes
  /// under this budget.
  std::uint64_t max_nodes = 2'000'000;
  /// Worker threads for subtree exploration. 1 = run everything on the
  /// calling thread (same code path, bit-identical results). Builders and
  /// checkers are called concurrently when workers > 1 and must be
  /// thread-safe (build fresh worlds, write no shared state).
  int workers = 1;
  /// Depth of the sequentially-owned trunk. Subtrees rooted at this depth
  /// become parallel work items; smaller values make bigger items.
  int trunk_depth = 6;
  /// Called once per complete schedule (every process terminated), in the
  /// canonical deterministic order, with the macro schedule that reaches
  /// it. Used by sweep_crash_product to enumerate crash-injection bases.
  std::function<void(const std::vector<ProcId>&)> on_complete_schedule = {};
  /// Same meaning as ExploreOptions::counters_only_history: built instances
  /// skip per-step records. Only sound with counter-backed checkers.
  bool counters_only_history = false;
  /// Node reconstruction strategy (see ExploreOptions::snapshot_mode). In
  /// snapshot mode the coordinator replays trunk expansions through a
  /// trunk-level snapshot cache, and every work item carries a snapshot of
  /// its root — stolen frames ship their world with them — plus a private
  /// cache for its subtree. Verdicts, schedules, and statistics stay
  /// deterministic across worker counts in both modes.
  SnapshotMode snapshot_mode = SnapshotMode::kSnapshot;
  int snapshot_stride = 6;
  /// Byte budget per cache (the trunk cache and each item's private cache
  /// are budgeted independently).
  std::size_t snapshot_max_bytes = std::size_t{8} << 20;
  /// Persistent frontier (verify/checkpoint.h), or null for an in-memory
  /// search. Non-null: completed work-item outcomes are recorded as they
  /// finish (epochs written atomically every flush_interval records and at
  /// every round barrier), and items already present in the checkpoint are
  /// merged from it instead of re-explored — so a killed search resumed
  /// with the loaded checkpoint reproduces the uninterrupted run's results
  /// byte-for-byte. The caller owns loading (load_latest / reset) and
  /// fingerprinting; checkpoints only make sense across runs with
  /// identical (instance, options).
  ExploreCheckpoint* checkpoint = nullptr;
  /// Worker-failure discipline. An item execution attempt that throws (a
  /// worker "dying" mid-item), exceeds `item_node_limit` node expansions,
  /// or runs past `item_wall_limit_ms` is retried in place with exponential
  /// backoff (base `retry_backoff_ms`, doubled per attempt, capped at 1s)
  /// up to `item_max_attempts` total attempts. A failed attempt commits
  /// nothing — node charges stay item-local until success — so retries
  /// re-execute the subtree identically and verdicts are unchanged by any
  /// transient failure pattern. An item whose every attempt fails is
  /// quarantined: reported in ExploreResult::quarantined_items, recorded in
  /// the checkpoint (if any), and the search ends with exhausted == false.
  int item_max_attempts = 3;
  std::uint64_t retry_backoff_ms = 1;
  std::uint64_t item_node_limit = 0;   ///< per-attempt node deadline (0 = off)
  double item_wall_limit_ms = 0.0;     ///< per-attempt wall deadline (0 = off)
  /// Test hook: called before each attempt with (item root schedule,
  /// attempt number, 1-based); returning true makes the attempt fail as if
  /// the worker died. Must be thread-safe.
  std::function<bool(const std::vector<ProcId>&, int)> inject_item_failure;
  /// Non-null: work items are executed by this executor (sharded
  /// multi-process exploration, verify/dist/) instead of the in-process
  /// pool; `workers` is then ignored. Checkpointing, retry accounting, and
  /// the deterministic merge are unchanged — the executor only moves where
  /// run_dist_item runs. Not owned.
  DistItemExecutor* dist = nullptr;
  /// Content-hash state dedup: before running a round, work items whose
  /// root world fingerprint (WorldSnapshot::fingerprint), sleep-set
  /// signature, and root depth match an already-executed item reuse that
  /// item's outcome — with schedule prefixes rewritten to the duplicate's
  /// root — instead of re-exploring, when the reuse is provably sound: no
  /// step on the duplicate's own trunk path is dependent with any footprint
  /// the representative's subtree executed (then the duplicate's subtree
  /// raises no external backtracks either). Requires snapshot mode and
  /// counters_only_history. Verdicts (violation, complete schedules,
  /// exhausted) are unchanged; naive_tree_estimate becomes approximate for
  /// deduped subtrees (rescaled by the naive seed ratio), which is why this
  /// is opt-in rather than default.
  bool dedup_states = false;
};

/// Explores a persistent-set-reduced schedule tree of the instance.
/// Violations are collected over the whole reduced tree and the
/// lexicographically least violating macro schedule is reported, so the
/// verdict matches explore_all_schedules (which explores children in
/// ascending process order and stops at the first violation — the lex
/// least one of the full tree).
ExploreResult explore_dpor(const ExploreBuilder& build,
                           const ExploreChecker& check,
                           const DporOptions& options = {});

/// Executes one work item with the normal retry/quarantine discipline and
/// returns the outcome — the worker-process half of sharded exploration
/// (verify/dist/worker.cc), sharing the exact subtree-exploration code the
/// in-process pool runs so an S-shard search merges byte-identically.
/// `base_nodes` is the coordinator's committed node count at dispatch; the
/// item's budget check is `base_nodes + charged > options.max_nodes`, which
/// matches the in-process pool whenever the budget does not trip.
/// `options.checkpoint`, `options.dist`, and `options.workers` are ignored.
/// `options.on_complete_schedule` is never invoked, but its *presence*
/// makes the item collect complete schedules into the outcome (workers set
/// a dummy callback when the coordinator collects).
DistItemResult run_dist_item(const ExploreBuilder& build,
                             const ExploreChecker& check,
                             const DporOptions& options,
                             const DporWorkItem& item,
                             std::uint64_t base_nodes);

/// Rebuilds a world and replays a macro schedule on it: each entry flushes
/// that process's local events and applies its next memory op (or runs it
/// to termination), via Simulation::macro_step. The replay unit shared by
/// the explorers, the shrinker, and the crash product sweep.
ExploreInstance replay_macro_schedule(const ExploreBuilder& build,
                                      const std::vector<ProcId>& schedule);

struct CrashProductOptions {
  /// Bounds for the schedule-exploration half of the product.
  DporOptions explore;
  /// Lex-least complete schedules to sweep crash points along.
  int max_schedules = 32;
  /// Fair steps between the injected crash and the victim's recovery.
  std::uint64_t recover_after = 20;
  /// Step budget for driving each crashed run to completion.
  std::uint64_t max_steps = 200'000;
  /// Safety valve on the total number of crash points tried.
  int max_crash_points = 10'000;
  /// See CrashSweepOptions::recover_victim.
  bool recover_victim = true;
};

struct CrashProductResult {
  /// Complete schedules enumerated by the reduced exploration and swept.
  int schedules_swept = 0;
  /// Aggregated crash-point outcomes across all swept schedules; the
  /// violation fields report the first (lex-least schedule, earliest crash
  /// point) violation.
  CrashSweepResult sweep;
  /// The macro schedule whose sweep produced the violation (empty if none).
  std::vector<ProcId> violating_schedule;
  /// A crash-free violation found during exploration itself, if any (the
  /// product then reports it without sweeping).
  std::optional<std::string> schedule_violation;
};

/// The crash x schedule product: explores the (reduced) schedule space,
/// then for each of the lexicographically least `max_schedules` complete
/// schedules sweeps every crash point of `victim` along it — rebuild,
/// replay the macro prefix, crash, run `recover_after` fair steps, recover
/// (optionally), drive to completion, check the final history. Generalizes
/// sweep_crash_points, which sweeps along the single fair schedule.
CrashProductResult sweep_crash_product(const ExploreBuilder& build,
                                       const ExploreChecker& check,
                                       ProcId victim,
                                       const CrashProductOptions& options = {});

}  // namespace rmrsim
