#include "verify/explorer.h"

#include "common/check.h"

namespace rmrsim {

ExploreResult explore_all_schedules(const ExploreBuilder& build,
                                    const ExploreChecker& check,
                                    const ExploreOptions& options) {
  ExploreResult result;

  // Iterative DFS over schedule prefixes. Each visit rebuilds the world and
  // replays the prefix — determinism makes this exact.
  std::vector<std::vector<ProcId>> stack;
  stack.push_back({});  // the empty schedule

  while (!stack.empty()) {
    if (result.nodes_visited >= options.max_nodes) {
      result.exhausted = false;
      break;
    }
    const std::vector<ProcId> prefix = std::move(stack.back());
    stack.pop_back();
    ++result.nodes_visited;

    ExploreInstance instance = build();
    ensure(instance.sim != nullptr, "explore builder returned no simulation");
    Simulation& sim = *instance.sim;
    // Replay the prefix. Under macro stepping each prefix entry denotes
    // "flush events, then one memory op" for that process.
    for (const ProcId p : prefix) {
      ensure(sim.runnable(p), "explore prefix replay diverged");
      if (options.macro_steps) {
        while (sim.runnable(p) &&
               sim.pending(p).kind != ActionKind::kMemOp) {
          sim.step(p);
        }
        if (sim.runnable(p)) sim.step(p);
      } else {
        sim.step(p);
      }
    }

    if (const auto v = check(sim.history()); v.has_value()) {
      result.violation = v;
      result.violating_schedule = prefix;
      return result;
    }

    if (sim.all_terminated()) {
      ++result.complete_schedules;
      continue;
    }
    if (static_cast<int>(prefix.size()) >= options.max_depth) {
      ++result.truncated_schedules;
      continue;
    }
    // Children: every runnable process, pushed in reverse so low ids are
    // explored first.
    for (ProcId p = static_cast<ProcId>(sim.nprocs()) - 1; p >= 0; --p) {
      if (!sim.runnable(p)) continue;
      std::vector<ProcId> child = prefix;
      child.push_back(p);
      stack.push_back(std::move(child));
    }
  }
  return result;
}

}  // namespace rmrsim
