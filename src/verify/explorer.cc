#include "verify/explorer.h"

#include <optional>

#include "common/check.h"
#include "sched/schedulers.h"
#include "verify/snapshot_cache.h"

namespace rmrsim {

namespace {

/// Recursive DFS over schedule prefixes, visiting nodes in the same
/// preorder as the historical iterative explorer (low process ids first),
/// so violation choices are schedule-for-schedule identical across modes.
///
/// Each visited node needs the world at its prefix. In replay mode every
/// node is rebuilt from scratch (the oracle the parity suite compares
/// against). In snapshot mode the *first* child inherits the parent's live
/// world — one extend_in_place unit, zero copies — and later siblings
/// restore the deepest cached ancestor; determinism makes all three routes
/// produce the identical world.
struct NaiveDfs {
  const ExploreBuilder& build;
  const ExploreChecker& check;
  const ExploreOptions& options;
  ReplayUnit unit;
  SnapshotCache* cache;
  ExploreResult& result;
  std::vector<ProcId> prefix;

  /// Visits the node at `prefix`, whose world is `instance`. Returns false
  /// to abort the whole search (violation found or node cap hit).
  bool visit(ExploreInstance instance) {
    ensure(instance.sim != nullptr, "explore builder returned no simulation");
    ++result.nodes_visited;
    Simulation& sim = *instance.sim;

    if (const auto v = check(sim.history()); v.has_value()) {
      result.violation = v;
      result.violating_schedule = prefix;
      return false;
    }
    if (sim.all_terminated()) {
      ++result.complete_schedules;
      return true;
    }
    if (static_cast<int>(prefix.size()) >= options.max_depth) {
      ++result.truncated_schedules;
      return true;
    }

    std::vector<ProcId> children;
    children.reserve(static_cast<std::size_t>(sim.nprocs()));
    for (ProcId p = 0; p < static_cast<ProcId>(sim.nprocs()); ++p) {
      if (sim.runnable(p)) children.push_back(p);
    }
    for (std::size_t i = 0; i < children.size(); ++i) {
      if (result.nodes_visited >= options.max_nodes) {
        result.exhausted = false;
        return false;
      }
      prefix.push_back(children[i]);
      bool keep_going;
      if (i == 0 && cache != nullptr) {
        // `instance` is the parent's world and nobody needs it afterwards:
        // advance it one unit and hand it down.
        extend_in_place(instance, children[i], unit, prefix, cache,
                        &result.stats);
        keep_going = visit(std::move(instance));
      } else {
        keep_going = visit(materialize_schedule(build, prefix, unit,
                                                options.counters_only_history,
                                                cache, &result.stats));
      }
      prefix.pop_back();
      if (!keep_going) return false;
    }
    return true;
  }
};

}  // namespace

ExploreResult explore_all_schedules(const ExploreBuilder& build,
                                    const ExploreChecker& check,
                                    const ExploreOptions& options) {
  ExploreResult result;
  const ReplayUnit unit =
      options.macro_steps ? ReplayUnit::kMacro : ReplayUnit::kStep;
  std::optional<SnapshotCache> cache;
  if (options.snapshot_mode == SnapshotMode::kSnapshot) {
    cache.emplace(SnapshotCache::Config{options.snapshot_stride,
                                        options.snapshot_max_bytes});
  }
  SnapshotCache* cache_ptr = cache.has_value() ? &*cache : nullptr;

  if (options.max_nodes > 0) {
    NaiveDfs dfs{build,     check, options, unit,
                 cache_ptr, result, {}};
    dfs.visit(materialize_schedule(build, {}, unit,
                                   options.counters_only_history, cache_ptr,
                                   &result.stats));
  } else {
    result.exhausted = false;
  }
  if (cache.has_value()) fold_cache_stats(*cache, result.stats);
  return result;
}

CrashSweepResult sweep_crash_points(const ExploreBuilder& build,
                                    const ExploreChecker& check,
                                    ProcId victim,
                                    const CrashSweepOptions& options) {
  CrashSweepResult result;
  std::optional<SnapshotCache> cache;
  if (options.snapshot_mode == SnapshotMode::kSnapshot) {
    cache.emplace(SnapshotCache::Config{options.snapshot_stride,
                                        options.snapshot_max_bytes});
  }
  SnapshotCache* cache_ptr = cache.has_value() ? &*cache : nullptr;

  // Baseline crash-free run: its schedule enumerates the victim's steps,
  // each of which is a crash point to try.
  std::vector<ProcId> baseline;
  {
    ExploreInstance base = build();
    ensure(base.sim != nullptr, "sweep builder returned no simulation");
    fair_drive(*base.sim, options.max_steps);
    baseline = base.sim->schedule();
  }

  // Crash before the victim's first step, then after each of its steps.
  std::vector<std::size_t> points{0};
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    if (baseline[i] == victim) points.push_back(i + 1);
  }

  for (const std::size_t cut : points) {
    if (result.crash_points >= options.max_crash_points) break;
    // Successive cuts extend each other along the one baseline, so in
    // snapshot mode each rebuild restores the previous cut's world and
    // replays only the delta. Only the pre-crash world is ever cached; the
    // crash and everything after it run on the materialized instance.
    const std::vector<ProcId> cut_schedule(
        baseline.begin(), baseline.begin() + static_cast<std::ptrdiff_t>(cut));
    ExploreInstance instance =
        materialize_schedule(build, cut_schedule, ReplayUnit::kStep,
                             /*counters_only=*/false, cache_ptr,
                             &result.stats);
    ensure(instance.sim != nullptr, "sweep builder returned no simulation");
    Simulation& sim = *instance.sim;
    if (sim.terminated(victim)) continue;  // nothing left to crash
    ++result.crash_points;
    sim.crash(victim);
    fair_drive(sim, options.recover_after);
    if (options.recover_victim) sim.recover(victim);
    const DriveOutcome done = fair_drive(sim, options.max_steps);
    if (const auto v = check(sim.history()); v.has_value()) {
      result.violation = v;
      result.violating_crash_point = static_cast<int>(cut);
      break;
    }
    switch (done) {
      case DriveOutcome::kAllTerminated: ++result.completed; break;
      case DriveOutcome::kBudget: ++result.stuck; break;
      case DriveOutcome::kWedged: ++result.wedged; break;
    }
  }
  if (cache.has_value()) fold_cache_stats(*cache, result.stats);
  return result;
}

}  // namespace rmrsim
