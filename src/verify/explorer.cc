#include "verify/explorer.h"

#include "common/check.h"
#include "sched/schedulers.h"

namespace rmrsim {

ExploreResult explore_all_schedules(const ExploreBuilder& builder,
                                    const ExploreChecker& check,
                                    const ExploreOptions& options) {
  ExploreResult result;
  // The counters-only opt-in is applied here so every rebuilt instance gets
  // it, not just the first.
  const ExploreBuilder build =
      options.counters_only_history
          ? ExploreBuilder([&builder]() {
              ExploreInstance i = builder();
              if (i.sim) i.sim->set_history_mode(HistoryMode::kCountersOnly);
              return i;
            })
          : builder;

  // Iterative DFS over schedule prefixes. Each visit rebuilds the world and
  // replays the prefix — determinism makes this exact.
  std::vector<std::vector<ProcId>> stack;
  stack.push_back({});  // the empty schedule

  while (!stack.empty()) {
    if (result.nodes_visited >= options.max_nodes) {
      result.exhausted = false;
      break;
    }
    const std::vector<ProcId> prefix = std::move(stack.back());
    stack.pop_back();
    ++result.nodes_visited;

    ExploreInstance instance = build();
    ensure(instance.sim != nullptr, "explore builder returned no simulation");
    Simulation& sim = *instance.sim;
    // Replay the prefix. Under macro stepping each prefix entry denotes
    // "flush events, then one memory op" for that process.
    for (const ProcId p : prefix) {
      ensure(sim.runnable(p), "explore prefix replay diverged");
      if (options.macro_steps) {
        while (sim.runnable(p) &&
               sim.pending(p).kind != ActionKind::kMemOp) {
          sim.step(p);
        }
        if (sim.runnable(p)) sim.step(p);
      } else {
        sim.step(p);
      }
    }

    if (const auto v = check(sim.history()); v.has_value()) {
      result.violation = v;
      result.violating_schedule = prefix;
      return result;
    }

    if (sim.all_terminated()) {
      ++result.complete_schedules;
      continue;
    }
    if (static_cast<int>(prefix.size()) >= options.max_depth) {
      ++result.truncated_schedules;
      continue;
    }
    // Children: every runnable process, pushed in reverse so low ids are
    // explored first.
    for (ProcId p = static_cast<ProcId>(sim.nprocs()) - 1; p >= 0; --p) {
      if (!sim.runnable(p)) continue;
      std::vector<ProcId> child = prefix;
      child.push_back(p);
      stack.push_back(std::move(child));
    }
  }
  return result;
}

CrashSweepResult sweep_crash_points(const ExploreBuilder& build,
                                    const ExploreChecker& check,
                                    ProcId victim,
                                    const CrashSweepOptions& options) {
  CrashSweepResult result;

  // Baseline crash-free run: its schedule enumerates the victim's steps,
  // each of which is a crash point to try.
  std::vector<ProcId> baseline;
  {
    ExploreInstance base = build();
    ensure(base.sim != nullptr, "sweep builder returned no simulation");
    fair_drive(*base.sim, options.max_steps);
    baseline = base.sim->schedule();
  }

  // Crash before the victim's first step, then after each of its steps.
  std::vector<std::size_t> points{0};
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    if (baseline[i] == victim) points.push_back(i + 1);
  }

  for (const std::size_t cut : points) {
    if (result.crash_points >= options.max_crash_points) break;
    ExploreInstance instance = build();
    ensure(instance.sim != nullptr, "sweep builder returned no simulation");
    Simulation& sim = *instance.sim;
    for (std::size_t i = 0; i < cut; ++i) {
      const ProcId p = baseline[i];
      if (p == kNoProc) {
        sim.tick();
        continue;
      }
      ensure(sim.runnable(p), "crash-sweep prefix replay diverged");
      sim.step(p);
    }
    if (sim.terminated(victim)) continue;  // nothing left to crash
    ++result.crash_points;
    sim.crash(victim);
    fair_drive(sim, options.recover_after);
    if (options.recover_victim) sim.recover(victim);
    const DriveOutcome done = fair_drive(sim, options.max_steps);
    if (const auto v = check(sim.history()); v.has_value()) {
      result.violation = v;
      result.violating_crash_point = static_cast<int>(cut);
      return result;
    }
    switch (done) {
      case DriveOutcome::kAllTerminated: ++result.completed; break;
      case DriveOutcome::kBudget: ++result.stuck; break;
      case DriveOutcome::kWedged: ++result.wedged; break;
    }
  }
  return result;
}

}  // namespace rmrsim
