// Persistent frontier for the parallel DPOR search (crash tolerance).
//
// A DPOR exploration is a deterministic function of (instance, options):
// the coordinator's trunk walk, the set of work items it spawns, and each
// item's subtree depend on nothing else (dpor.h). That determinism is the
// whole checkpoint design. Instead of serializing the live search state —
// trunk nodes, pending sets, vector clocks — the checkpoint persists only
// the *completed work-item outcomes*, keyed by the item's root schedule
// (unique per search: the trunk dedupes (schedule, proc) expansions, so
// each item root is created at most once). On resume, the coordinator
// re-runs its cheap sequential trunk walk identically and substitutes the
// recorded outcome wherever an item it is about to run is already in the
// checkpoint; everything downstream — merges, race insertions, the
// lex-least violation — is byte-identical to an uninterrupted run by
// construction. The expensive part of a search is the items (the subtrees
// below trunk_depth); the trunk is a few hundred nodes.
//
// On-disk layout (DESIGN.md §11): the checkpoint directory holds cumulative
// epoch files `epoch-N.ckpt`, each a complete serialization of every
// outcome and quarantine recorded so far. An epoch is written atomically
// (tmp + fsync + rename + dir fsync, common/fsio.h), so a SIGKILL at any
// point leaves either the previous epoch or the new one — never a torn
// current epoch *and* no previous one. Every record carries a CRC-32 and
// the header is versioned, fingerprinted, and CRC-guarded; load_latest
// walks epochs newest-first and installs the first fully valid one, logging
// each discarded file with the reason. A fingerprint mismatch (the search
// options changed) is a hard error, not a fallback.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "verify/explorer.h"

namespace rmrsim {

/// A violation found inside a work item, with the full macro schedule that
/// reaches it. The coordinator picks the lex-least across all items.
struct ExploreViolation {
  std::vector<ProcId> schedule;
  std::string message;
};

/// A race insertion that targets a trunk node: drained by the coordinator
/// at the round barrier, in canonical (path, proc) order.
struct ExternalAdd {
  std::vector<ProcId> node_path;
  ProcId proc = kNoProc;
};

/// Everything a completed work item contributes to the search: counters,
/// violations, complete schedules, and the race insertions that escape to
/// the trunk. This is the unit of checkpointing — recording an outcome and
/// replaying it later is indistinguishable from re-running the item.
struct ItemOutcome {
  /// Macro schedule of the item's root — the identity key in a checkpoint.
  std::vector<ProcId> schedule;
  /// Node-budget charges the item made (committed to the shared counter
  /// only when the attempt succeeds, so failed attempts charge nothing).
  std::uint64_t charged = 0;
  std::uint64_t nodes = 0;
  std::uint64_t complete = 0;
  std::uint64_t truncated = 0;
  std::uint64_t sleep_prunes = 0;
  std::uint64_t sleep_blocked = 0;
  std::uint64_t backtracks = 0;
  ExploreStats replay;  // replayed_steps + snapshot_* counters only
  double estimate_sum = 0.0;
  std::uint64_t leaves = 0;
  std::vector<ExploreViolation> violations;
  std::vector<std::vector<ProcId>> completes;  // macro schedules (if collected)
  std::vector<ExternalAdd> externals;
  /// Distinct macro-step footprints executed anywhere in the item's subtree
  /// (sorted, deduplicated; checkpoint format v2). Fingerprint dedup uses
  /// this as the eligibility certificate: a duplicate item may reuse this
  /// outcome only if none of *its own* trunk steps is dependent with any
  /// footprint here — then the duplicate's trunk-escaping race insertions
  /// are provably empty (see dpor.cc, "fingerprint dedup").
  std::vector<Simulation::MacroFootprint> footprints;
  /// True if the item stopped early on the global node budget. Such an
  /// outcome is partial — it is merged (best effort, like before) but never
  /// recorded into a checkpoint, or a later resume with a larger budget
  /// would silently trust it.
  bool budget_hit = false;
};

/// Serialization of one ItemOutcome (without budget_hit — partial outcomes
/// are never written). Exposed for tests; throws std::runtime_error on any
/// truncation or malformed payload when decoding.
std::string encode_item_outcome(const ItemOutcome& out);
ItemOutcome decode_item_outcome(std::string_view bytes);

/// The persistent frontier. Thread-safe: workers record outcomes
/// concurrently; the coordinator looks items up between rounds.
class ExploreCheckpoint {
 public:
  struct Config {
    /// Checkpoint directory (created if missing).
    std::string dir;
    /// Fingerprint of the search configuration. load_latest refuses (hard
    /// error) epochs written under a different fingerprint: outcomes are
    /// only valid for the exact search that produced them.
    std::uint64_t fingerprint = 0;
    /// Write an epoch after this many new records (<= 0: only explicit
    /// flush() calls, which the search issues at every round barrier).
    int flush_interval = 16;
    /// Cumulative epochs kept on disk; older ones are pruned after a
    /// successful write. Must be >= 2 so a torn newest epoch always has a
    /// predecessor to fall back to.
    int keep_epochs = 3;
    /// Test/fault-injection hook, called (under the checkpoint lock,
    /// possibly from a worker thread) after each epoch file is durably in
    /// place, with the epoch number. Must not throw; the self-kill harness
    /// uses it to SIGKILL the process at exact epoch boundaries.
    std::function<void(std::uint64_t)> on_epoch_written;
  };

  struct LoadReport {
    std::uint64_t epoch = 0;       ///< epoch installed (0 = none found)
    std::size_t outcomes = 0;      ///< item outcomes loaded
    std::size_t quarantined = 0;   ///< quarantined items loaded
    /// One line per rejected file: "<file>: <reason>". Non-empty means a
    /// torn/corrupt epoch was detected and recovery fell back past it.
    std::vector<std::string> discarded;
  };

  explicit ExploreCheckpoint(Config config);

  /// Fresh start: removes every epoch file (and stray .tmp) in the
  /// directory. Used when a checkpoint dir is reused without --resume.
  void reset();

  /// Installs the newest fully CRC-valid epoch, newest-first; corrupt or
  /// truncated files are skipped with a reason in the report, never
  /// partially trusted. Throws if a structurally valid epoch carries a
  /// different fingerprint.
  LoadReport load_latest();

  /// The recorded outcome for an item root, or nullptr. Coordinator-side;
  /// the returned copy-by-value keeps callers independent of the map.
  bool lookup(const std::vector<ProcId>& schedule, ItemOutcome* out) const;

  /// True iff the item was quarantined (this run or a loaded epoch);
  /// `reason` (optional) receives why.
  bool is_quarantined(const std::vector<ProcId>& schedule,
                      std::string* reason = nullptr) const;

  /// Records a completed item (keyed by outcome.schedule). Auto-flushes an
  /// epoch every flush_interval new records. Callers must not record
  /// budget_hit outcomes.
  void record_outcome(const ItemOutcome& outcome);

  /// Records a permanently failed item.
  void record_quarantine(const std::vector<ProcId>& schedule,
                         const std::string& reason);

  /// Writes an epoch now if anything changed since the last one.
  void flush();

  std::uint64_t epochs_written() const;
  std::uint64_t last_epoch() const;
  std::size_t outcome_count() const;

 private:
  void write_epoch_locked();

  Config config_;
  mutable std::mutex mu_;
  std::map<std::vector<ProcId>, ItemOutcome> outcomes_;
  std::map<std::vector<ProcId>, std::string> quarantined_;
  std::uint64_t epoch_ = 0;          // last epoch number written or loaded
  std::uint64_t epochs_written_ = 0; // epochs written by *this* process
  int dirty_ = 0;                    // records since the last epoch
};

}  // namespace rmrsim
