// Depth-stratified snapshot cache: the state-reconstruction engine behind
// SnapshotMode::kSnapshot (DESIGN.md, "Snapshot exploration").
//
// Exploration trees address nodes by schedule prefixes, and rmrsim worlds
// are deterministic functions of their prefix — so a WorldSnapshot captured
// after replaying a prefix stands for that tree node forever. The cache maps
// prefixes to snapshots; rebuilding a node restores the deepest cached
// ancestor and replays only the remaining suffix. Replay cost per node drops
// from O(depth) to O(stride), killing the O(nodes x depth) replay tax.
//
// Memory is bounded: snapshots are taken only at stride-aligned depths and
// the cache LRU-evicts past a byte budget (WorldSnapshot::approx_bytes).
// Caches are single-threaded by design; the parallel DPOR search gives each
// work item a private cache seeded with the snapshot shipped alongside the
// stolen frame.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "verify/explorer.h"

namespace rmrsim {

class SnapshotCache {
 public:
  struct Config {
    int stride = 6;
    std::size_t max_bytes = std::size_t{8} << 20;
  };

  explicit SnapshotCache(Config config) : config_(config) {}

  const Config& config() const { return config_; }

  /// True iff a snapshot for exactly this prefix is cached (cheap; used to
  /// avoid re-capturing a prefix every time a replay passes through it).
  bool contains(const std::vector<ProcId>& prefix) const {
    return entries_.find(prefix) != entries_.end();
  }

  /// FNV-1a over the schedule entries. Prefix keys live in a hash map: the
  /// longest-prefix probe runs hundreds of thousands of times per
  /// exploration, and ordered-map lookups (O(log n) full vector
  /// comparisons each) were the single hottest profile entry.
  struct PrefixHash {
    std::size_t operator()(const std::vector<ProcId>& v) const {
      std::size_t h = 14695981039346656037ull;
      for (const ProcId p : v) {
        h ^= static_cast<std::size_t>(static_cast<std::uint32_t>(p));
        h *= 1099511628211ull;
      }
      return h;
    }
  };

  /// Caches `snap` as the world at `prefix`, evicting least-recently-used
  /// entries if the byte budget overflows. A snapshot alone bigger than the
  /// whole budget is refused (returns false).
  bool insert(std::vector<ProcId> prefix,
              std::shared_ptr<const WorldSnapshot> snap);

  /// The deepest cached snapshot whose prefix is a prefix of `target`
  /// (including `target` itself), or nullptr. Refreshes the entry's LRU
  /// position. On return, `*matched_len` (if non-null) holds the prefix
  /// length of the match.
  std::shared_ptr<const WorldSnapshot> best_prefix(
      const std::vector<ProcId>& target, std::size_t* matched_len = nullptr);

  std::size_t size() const { return entries_.size(); }
  std::size_t bytes() const { return bytes_; }
  std::size_t peak_bytes() const { return peak_bytes_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    std::shared_ptr<const WorldSnapshot> snap;
    std::size_t bytes = 0;
    std::uint64_t last_used = 0;
  };

  void evict_to_budget();
  void erase_entry(const std::vector<ProcId>& key);

  Config config_;
  std::unordered_map<std::vector<ProcId>, Entry, PrefixHash> entries_;
  // Distinct prefix lengths present -> entry count. best_prefix probes only
  // lengths that actually exist (descending), not every length L..0.
  std::map<std::size_t, std::size_t> length_count_;
  std::size_t bytes_ = 0;
  std::size_t peak_bytes_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t tick_ = 0;  // monotonic LRU clock (deterministic)
};

/// The schedule entry granularity of a replay. Explorers and the DPOR engine
/// branch on macro steps; the crash-point sweep replays raw simulator
/// schedules (where kNoProc entries are clock ticks).
enum class ReplayUnit {
  kMacro,
  kStep,
};

/// Captures the current world of `inst` (carrying its keepalive so restored
/// clones keep the algorithm objects alive).
std::shared_ptr<const WorldSnapshot> take_snapshot(const ExploreInstance& inst);

/// Rehydrates a live instance from a snapshot.
ExploreInstance restore_instance(const WorldSnapshot& snap);

/// Builds the world at `schedule`: restores the deepest cached ancestor if
/// `cache` is non-null (snapshot mode) or build()s from scratch (replay
/// mode, or on a cache miss), then replays the remaining suffix one `unit`
/// at a time. Along the replay, stride-aligned prefixes are captured into
/// the cache, bounding any later rebuild's replay to at most `stride` units
/// past its deepest cached ancestor.
///
/// `stats` (optional) receives the honest accounting: replayed_steps counts
/// every simulator step and tick actually executed — measured from the
/// simulator's own schedule growth, not the entry count of `schedule` — and
/// the snapshot hit/miss/delta counters.
ExploreInstance materialize_schedule(const ExploreBuilder& build,
                                     const std::vector<ProcId>& schedule,
                                     ReplayUnit unit, bool counters_only,
                                     SnapshotCache* cache,
                                     ExploreStats* stats = nullptr);

/// Advances a live instance by one replay unit of `p` — the zero-copy way
/// to descend into a DFS child when the parent world is already in hand.
/// `prefix` must be the child node's full schedule (parent prefix + p);
/// stride-aligned prefixes are captured into `cache` exactly as a replay
/// through them would. Steps executed are counted into stats->replayed_steps
/// (they are real simulator work) but not into snapshot_delta_steps (nothing
/// was restored).
void extend_in_place(ExploreInstance& inst, ProcId p, ReplayUnit unit,
                     const std::vector<ProcId>& prefix, SnapshotCache* cache,
                     ExploreStats* stats = nullptr);

/// Folds a cache's end-of-life counters into `stats` (evictions and peak
/// bytes are cache-lifetime aggregates, collected once per cache).
void fold_cache_stats(const SnapshotCache& cache, ExploreStats& stats);

}  // namespace rmrsim
