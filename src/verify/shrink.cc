#include "verify/shrink.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/check.h"

namespace rmrsim {

std::optional<std::pair<std::string, std::size_t>> reproduce_violation(
    const ExploreBuilder& build, const ExploreChecker& check,
    const std::vector<ProcId>& schedule) {
  ExploreInstance inst = build();
  ensure(inst.sim != nullptr, "shrink builder returned no simulation");
  Simulation& sim = *inst.sim;
  if (const auto v = check(sim.history()); v.has_value()) {
    return std::make_pair(*v, std::size_t{0});
  }
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const ProcId p = schedule[i];
    if (p < 0 || p >= sim.nprocs() || !sim.runnable(p)) {
      return std::nullopt;  // invalid candidate: a dropped step was needed
    }
    sim.macro_step(p);
    if (const auto v = check(sim.history()); v.has_value()) {
      return std::make_pair(*v, i + 1);
    }
  }
  return std::nullopt;
}

std::optional<ShrinkResult> shrink_counterexample(
    const ExploreBuilder& build, const ExploreChecker& check,
    const std::vector<ProcId>& schedule, int max_passes) {
  const auto base = reproduce_violation(build, check, schedule);
  if (!base.has_value()) return std::nullopt;

  ShrinkResult result;
  result.message = base->first;
  result.schedule.assign(schedule.begin(),
                         schedule.begin() +
                             static_cast<std::ptrdiff_t>(base->second));

  // Accepts the candidate iff it reproduces the same violation; truncates
  // at the reproduction point so trailing noise never survives an edit.
  const auto attempt = [&](const std::vector<ProcId>& cand) {
    ++result.candidates_tried;
    const auto r = reproduce_violation(build, check, cand);
    if (!r.has_value() || r->first != result.message) return false;
    ++result.candidates_reproduced;
    result.schedule.assign(cand.begin(),
                           cand.begin() +
                               static_cast<std::ptrdiff_t>(r->second));
    return true;
  };

  for (int pass = 0; pass < max_passes; ++pass) {
    bool changed = false;

    // 1. Drop every step of one process at a time (non-participants vanish
    // wholesale instead of one step per round).
    const std::set<ProcId> procs(result.schedule.begin(),
                                 result.schedule.end());
    for (const ProcId p : procs) {
      std::vector<ProcId> cand;
      cand.reserve(result.schedule.size());
      for (const ProcId q : result.schedule) {
        if (q != p) cand.push_back(q);
      }
      if (cand.size() < result.schedule.size() && attempt(cand)) {
        changed = true;
      }
    }

    // 2. Drop single steps, to a fixpoint within the pass.
    for (std::size_t i = 0; i < result.schedule.size();) {
      std::vector<ProcId> cand = result.schedule;
      cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
      if (attempt(cand)) {
        changed = true;  // the element now at i is new: retry the same slot
      } else {
        ++i;
      }
    }

    // 3. Canonicalize: adjacent swaps that make the schedule smaller
    // lexicographically (closest to ascending round-robin order).
    for (std::size_t i = 0; i + 1 < result.schedule.size(); ++i) {
      if (result.schedule[i + 1] >= result.schedule[i]) continue;
      std::vector<ProcId> cand = result.schedule;
      std::swap(cand[i], cand[i + 1]);
      if (attempt(cand)) changed = true;
    }

    if (!changed) break;
  }
  return result;
}

}  // namespace rmrsim
