#include "verify/shrink.h"

#include <algorithm>
#include <optional>
#include <set>
#include <utility>

#include "common/check.h"
#include "verify/snapshot_cache.h"

namespace rmrsim {

namespace {

/// reproduce_violation with an optional snapshot cache shared across
/// candidates. Cached entries are inserted only at depths the checker has
/// already passed, so restoring one and skipping its prefix checks cannot
/// hide an earlier violation (same prefix => same world => same check
/// outcomes, by determinism).
std::optional<std::pair<std::string, std::size_t>> reproduce_cached(
    const ExploreBuilder& build, const ExploreChecker& check,
    const std::vector<ProcId>& schedule, SnapshotCache* cache,
    ExploreStats* stats) {
  ExploreInstance inst;
  std::size_t start = 0;
  if (cache != nullptr) {
    std::size_t matched = 0;
    std::shared_ptr<const WorldSnapshot> snap =
        cache->best_prefix(schedule, &matched);
    if (snap != nullptr) {
      inst = restore_instance(*snap);
      start = matched;
      if (stats != nullptr) ++stats->snapshot_hits;
    } else if (stats != nullptr) {
      ++stats->snapshot_misses;
    }
  }
  const bool restored = inst.sim != nullptr;
  if (!restored) {
    inst = build();
    ensure(inst.sim != nullptr, "shrink builder returned no simulation");
    if (cache != nullptr) inst.sim->enable_fork_log();
    if (const auto v = check(inst.sim->history()); v.has_value()) {
      return std::make_pair(*v, std::size_t{0});
    }
  }
  Simulation& sim = *inst.sim;
  const std::size_t base = sim.schedule().size();
  const auto account = [&] {
    if (stats == nullptr) return;
    const std::uint64_t executed = sim.schedule().size() - base;
    stats->replayed_steps += executed;
    if (restored) stats->snapshot_delta_steps += executed;
  };
  const std::size_t stride =
      cache != nullptr ? static_cast<std::size_t>(cache->config().stride) : 0;
  for (std::size_t i = start; i < schedule.size(); ++i) {
    const ProcId p = schedule[i];
    if (p < 0 || p >= sim.nprocs() || !sim.runnable(p)) {
      account();
      return std::nullopt;  // invalid candidate: a dropped step was needed
    }
    sim.macro_step(p);
    if (const auto v = check(sim.history()); v.has_value()) {
      account();
      return std::make_pair(*v, i + 1);
    }
    // Check passed at depth i+1: this prefix world is safe to restore into
    // later candidates. Capture at stride-aligned depths.
    const std::size_t len = i + 1;
    if (cache != nullptr && stride > 0 && len % stride == 0 &&
        len < schedule.size()) {
      const std::vector<ProcId> prefix(
          schedule.begin(),
          schedule.begin() + static_cast<std::ptrdiff_t>(len));
      if (!cache->contains(prefix)) {
        if (cache->insert(prefix, take_snapshot(inst)) && stats != nullptr) {
          ++stats->snapshots_taken;
        }
      }
    }
  }
  account();
  return std::nullopt;
}

}  // namespace

std::optional<std::pair<std::string, std::size_t>> reproduce_violation(
    const ExploreBuilder& build, const ExploreChecker& check,
    const std::vector<ProcId>& schedule) {
  return reproduce_cached(build, check, schedule, nullptr, nullptr);
}

std::optional<ShrinkResult> shrink_counterexample(
    const ExploreBuilder& build, const ExploreChecker& check,
    const std::vector<ProcId>& schedule, const ShrinkOptions& options) {
  std::optional<SnapshotCache> cache;
  if (options.snapshot_mode == SnapshotMode::kSnapshot) {
    cache.emplace(SnapshotCache::Config{std::max(1, options.snapshot_stride),
                                        options.snapshot_max_bytes});
  }
  SnapshotCache* cache_ptr = cache.has_value() ? &*cache : nullptr;

  ShrinkResult result;
  const auto base =
      reproduce_cached(build, check, schedule, cache_ptr, &result.stats);
  if (!base.has_value()) return std::nullopt;

  result.message = base->first;
  result.schedule.assign(schedule.begin(),
                         schedule.begin() +
                             static_cast<std::ptrdiff_t>(base->second));

  // Accepts the candidate iff it reproduces the same violation; truncates
  // at the reproduction point so trailing noise never survives an edit.
  const auto attempt = [&](const std::vector<ProcId>& cand) {
    ++result.candidates_tried;
    const auto r =
        reproduce_cached(build, check, cand, cache_ptr, &result.stats);
    if (!r.has_value() || r->first != result.message) return false;
    ++result.candidates_reproduced;
    result.schedule.assign(cand.begin(),
                           cand.begin() +
                               static_cast<std::ptrdiff_t>(r->second));
    return true;
  };

  for (int pass = 0; pass < options.max_passes; ++pass) {
    bool changed = false;

    // 1. Drop every step of one process at a time (non-participants vanish
    // wholesale instead of one step per round).
    const std::set<ProcId> procs(result.schedule.begin(),
                                 result.schedule.end());
    for (const ProcId p : procs) {
      std::vector<ProcId> cand;
      cand.reserve(result.schedule.size());
      for (const ProcId q : result.schedule) {
        if (q != p) cand.push_back(q);
      }
      if (cand.size() < result.schedule.size() && attempt(cand)) {
        changed = true;
      }
    }

    // 2. Drop single steps, to a fixpoint within the pass.
    for (std::size_t i = 0; i < result.schedule.size();) {
      std::vector<ProcId> cand = result.schedule;
      cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
      if (attempt(cand)) {
        changed = true;  // the element now at i is new: retry the same slot
      } else {
        ++i;
      }
    }

    // 3. Canonicalize: adjacent swaps that make the schedule smaller
    // lexicographically (closest to ascending round-robin order).
    for (std::size_t i = 0; i + 1 < result.schedule.size(); ++i) {
      if (result.schedule[i + 1] >= result.schedule[i]) continue;
      std::vector<ProcId> cand = result.schedule;
      std::swap(cand[i], cand[i + 1]);
      if (attempt(cand)) changed = true;
    }

    if (!changed) break;
  }
  if (cache.has_value()) fold_cache_stats(*cache, result.stats);
  return result;
}

std::optional<ShrinkResult> shrink_counterexample(
    const ExploreBuilder& build, const ExploreChecker& check,
    const std::vector<ProcId>& schedule, int max_passes) {
  ShrinkOptions options;
  options.max_passes = max_passes;
  return shrink_counterexample(build, check, schedule, options);
}

}  // namespace rmrsim
