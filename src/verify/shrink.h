// Counterexample shrinking for explorer schedules.
//
// A violating macro schedule straight out of an explorer carries noise:
// macro steps of processes that never influence the violation, and
// orderings more adversarial than the bug needs. shrink_counterexample
// greedily minimizes a violating schedule while re-validating after every
// candidate edit that the violation still reproduces *with the same
// message* — the result is always a real, replayable witness:
//
//   1. process drop  — remove every step of one process at a time;
//   2. step drop     — remove single steps, to a fixpoint;
//   3. canonicalize  — adjacent swaps that make the schedule
//                      lexicographically smaller (closest to the ascending
//                      round-robin order the explorers enumerate first),
//                      so two runs of the same bug shrink to comparable
//                      witnesses.
//
// Every accepted candidate is truncated at the step where the violation
// (re)appears, so shrinking also trims trailing noise. Schedules here are
// macro schedules: each entry flushes a process's local events and applies
// its next memory op (Simulation::macro_step), the same unit the explorers
// branch on.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "verify/explorer.h"

namespace rmrsim {

struct ShrinkResult {
  /// The minimized macro schedule; replaying it reproduces `message`.
  std::vector<ProcId> schedule;
  /// The violation message the schedule reproduces (identical to the one
  /// the original schedule produced).
  std::string message;
  int candidates_tried = 0;
  int candidates_reproduced = 0;
  /// Replay/snapshot accounting across all candidate reproductions (the
  /// replay-related and snapshot_* fields only).
  ExploreStats stats;
};

struct ShrinkOptions {
  int max_passes = 32;
  /// Candidate reproduction strategy. Candidates share long prefixes (each
  /// edit touches one position), so in snapshot mode each reproduction
  /// restores the deepest cached prefix instead of replaying from scratch.
  /// Snapshots are cached only at depths where the checker has passed, so
  /// skipping the restored prefix's checks is exact (determinism: same
  /// prefix, same world, same check outcomes). Witnesses and messages are
  /// identical in both modes.
  SnapshotMode snapshot_mode = SnapshotMode::kSnapshot;
  int snapshot_stride = 6;
  std::size_t snapshot_max_bytes = std::size_t{8} << 20;
};

/// Replays `schedule` on a fresh world, checking after every macro step;
/// returns the first violation message and the number of steps consumed to
/// reach it, or nullopt if the schedule is invalid (names a process that
/// cannot step) or never violates.
std::optional<std::pair<std::string, std::size_t>> reproduce_violation(
    const ExploreBuilder& build, const ExploreChecker& check,
    const std::vector<ProcId>& schedule);

/// Greedily shrinks a violating macro schedule (passes above, repeated up
/// to `max_passes` times or until a fixpoint). Returns nullopt if the input
/// schedule does not reproduce a violation in the first place; otherwise
/// the result's schedule is guaranteed to reproduce the result's message.
std::optional<ShrinkResult> shrink_counterexample(
    const ExploreBuilder& build, const ExploreChecker& check,
    const std::vector<ProcId>& schedule, const ShrinkOptions& options);

/// Convenience overload with default snapshot options.
std::optional<ShrinkResult> shrink_counterexample(
    const ExploreBuilder& build, const ExploreChecker& check,
    const std::vector<ProcId>& schedule, int max_passes = 32);

}  // namespace rmrsim
