#include "verify/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "common/check.h"
#include "common/codec.h"
#include "common/crc32.h"
#include "common/fsio.h"

namespace rmrsim {

namespace {

namespace fs = std::filesystem;

// Format constants. Bump kVersion on any layout change; old files are then
// rejected as corrupt (with the version named in the reason), never
// misparsed. v2 added the subtree footprint summary to ItemOutcome.
constexpr char kMagic[8] = {'R', 'M', 'R', 'C', 'K', 'P', 'T', '1'};
constexpr std::uint32_t kVersion = 2;

std::string epoch_filename(std::uint64_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "epoch-%06llu.ckpt",
                static_cast<unsigned long long>(epoch));
  return buf;
}

/// Parses "epoch-N.ckpt" -> N, or 0 if the name does not match.
std::uint64_t epoch_of_filename(const std::string& name) {
  if (name.rfind("epoch-", 0) != 0) return 0;
  const std::size_t dot = name.find(".ckpt");
  if (dot == std::string::npos || dot + 5 != name.size()) return 0;
  const std::string digits = name.substr(6, dot - 6);
  if (digits.empty()) return 0;
  std::uint64_t n = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return 0;
    n = n * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return n;
}

}  // namespace

std::string encode_item_outcome(const ItemOutcome& out) {
  std::string b;
  put_schedule(b, out.schedule);
  put_u64(b, out.charged);
  put_u64(b, out.nodes);
  put_u64(b, out.complete);
  put_u64(b, out.truncated);
  put_u64(b, out.sleep_prunes);
  put_u64(b, out.sleep_blocked);
  put_u64(b, out.backtracks);
  put_u64(b, out.replay.replayed_steps);
  put_u64(b, out.replay.snapshot_hits);
  put_u64(b, out.replay.snapshot_misses);
  put_u64(b, out.replay.snapshots_taken);
  put_u64(b, out.replay.snapshot_evictions);
  put_u64(b, out.replay.snapshot_delta_steps);
  put_u64(b, out.replay.snapshot_peak_bytes);
  put_double(b, out.estimate_sum);
  put_u64(b, out.leaves);
  put_u32(b, static_cast<std::uint32_t>(out.violations.size()));
  for (const ExploreViolation& v : out.violations) {
    put_schedule(b, v.schedule);
    put_string(b, v.message);
  }
  put_u32(b, static_cast<std::uint32_t>(out.completes.size()));
  for (const auto& s : out.completes) put_schedule(b, s);
  put_u32(b, static_cast<std::uint32_t>(out.externals.size()));
  for (const ExternalAdd& e : out.externals) {
    put_schedule(b, e.node_path);
    put_u32(b, static_cast<std::uint32_t>(e.proc));
  }
  put_u32(b, static_cast<std::uint32_t>(out.footprints.size()));
  for (const Simulation::MacroFootprint& f : out.footprints) {
    put_u32(b, f.has_op ? 1 : 0);
    put_u32(b, static_cast<std::uint32_t>(f.var));
    put_u32(b, static_cast<std::uint32_t>(f.access));
    put_u32(b, f.observable ? 1 : 0);
    put_u32(b, f.terminated ? 1 : 0);
  }
  return b;
}

ItemOutcome decode_item_outcome(std::string_view bytes) {
  ByteReader r(bytes);
  ItemOutcome out;
  out.schedule = r.schedule();
  out.charged = r.u64();
  out.nodes = r.u64();
  out.complete = r.u64();
  out.truncated = r.u64();
  out.sleep_prunes = r.u64();
  out.sleep_blocked = r.u64();
  out.backtracks = r.u64();
  out.replay.replayed_steps = r.u64();
  out.replay.snapshot_hits = r.u64();
  out.replay.snapshot_misses = r.u64();
  out.replay.snapshots_taken = r.u64();
  out.replay.snapshot_evictions = r.u64();
  out.replay.snapshot_delta_steps = r.u64();
  out.replay.snapshot_peak_bytes = r.u64();
  out.estimate_sum = r.dbl();
  out.leaves = r.u64();
  const std::uint32_t nviol = r.u32();
  for (std::uint32_t i = 0; i < nviol; ++i) {
    ExploreViolation v;
    v.schedule = r.schedule();
    v.message = r.str();
    out.violations.push_back(std::move(v));
  }
  const std::uint32_t ncomp = r.u32();
  for (std::uint32_t i = 0; i < ncomp; ++i) {
    out.completes.push_back(r.schedule());
  }
  const std::uint32_t next = r.u32();
  for (std::uint32_t i = 0; i < next; ++i) {
    ExternalAdd e;
    e.node_path = r.schedule();
    e.proc = static_cast<ProcId>(r.u32());
    out.externals.push_back(std::move(e));
  }
  const std::uint32_t nfoot = r.u32();
  for (std::uint32_t i = 0; i < nfoot; ++i) {
    Simulation::MacroFootprint f;
    f.has_op = r.u32() != 0;
    f.var = static_cast<VarId>(r.u32());
    f.access = static_cast<AccessClass>(r.u32());
    f.observable = r.u32() != 0;
    f.terminated = r.u32() != 0;
    out.footprints.push_back(f);
  }
  if (!r.done()) throw std::runtime_error("trailing bytes in outcome record");
  return out;
}

ExploreCheckpoint::ExploreCheckpoint(Config config)
    : config_(std::move(config)) {
  ensure(!config_.dir.empty(), "checkpoint directory must be non-empty");
  ensure(config_.keep_epochs >= 2,
         "checkpoint keep_epochs must be >= 2 (torn-epoch fallback)");
  ensure_dir(config_.dir);
}

void ExploreCheckpoint::reset() {
  std::lock_guard<std::mutex> g(mu_);
  for (const auto& entry : fs::directory_iterator(config_.dir)) {
    const std::string name = entry.path().filename().string();
    const bool stale_tmp =
        name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0;
    if (epoch_of_filename(name) != 0 || stale_tmp) {
      std::error_code ec;
      fs::remove(entry.path(), ec);
    }
  }
  outcomes_.clear();
  quarantined_.clear();
  epoch_ = 0;
  dirty_ = 0;
}

ExploreCheckpoint::LoadReport ExploreCheckpoint::load_latest() {
  std::lock_guard<std::mutex> g(mu_);
  LoadReport report;

  std::vector<std::pair<std::uint64_t, std::string>> epochs;
  for (const auto& entry : fs::directory_iterator(config_.dir)) {
    const std::string name = entry.path().filename().string();
    const std::uint64_t n = epoch_of_filename(name);
    if (n != 0) epochs.emplace_back(n, entry.path().string());
  }
  std::sort(epochs.rbegin(), epochs.rend());  // newest first

  for (const auto& [n, path] : epochs) {
    const std::optional<std::string> bytes = read_file(path);
    if (!bytes.has_value()) {
      report.discarded.push_back(path + ": unreadable");
      continue;
    }
    std::map<std::vector<ProcId>, ItemOutcome> outcomes;
    std::map<std::vector<ProcId>, std::string> quarantined;
    try {
      ByteReader r(*bytes);
      r.need(sizeof kMagic);
      if (std::memcmp(r.p, kMagic, sizeof kMagic) != 0) {
        throw std::runtime_error("bad magic");
      }
      r.p += sizeof kMagic;
      const std::uint32_t version = r.u32();
      if (version != kVersion) {
        throw std::runtime_error("unsupported version " +
                                 std::to_string(version));
      }
      const std::uint64_t fingerprint = r.u64();
      const std::uint64_t epoch = r.u64();
      const std::uint64_t n_outcomes = r.u64();
      const std::uint64_t n_quar = r.u64();
      const std::size_t header_len =
          static_cast<std::size_t>(r.p - bytes->data());
      const std::uint32_t header_crc = r.u32();
      if (crc32(std::string_view(bytes->data(), header_len)) != header_crc) {
        throw std::runtime_error("header CRC mismatch");
      }
      // Only after the header proves structurally sound is a fingerprint
      // mismatch meaningful — and then it is a config error, not corruption.
      ensure(fingerprint == config_.fingerprint,
             "checkpoint '" + path + "' was written by a different search "
             "configuration (fingerprint mismatch) — pass the same options "
             "as the original run, or start fresh with --checkpoint-dir");
      if (epoch != n) throw std::runtime_error("epoch/header disagree");
      for (std::uint64_t i = 0; i < n_outcomes; ++i) {
        ItemOutcome out = decode_item_outcome(take_record(r));
        std::vector<ProcId> key = out.schedule;
        outcomes.emplace(std::move(key), std::move(out));
      }
      for (std::uint64_t i = 0; i < n_quar; ++i) {
        const std::string payload = take_record(r);
        ByteReader q(payload);
        std::vector<ProcId> sched = q.schedule();
        std::string reason = q.str();
        if (!q.done()) {
          throw std::runtime_error("trailing bytes in quarantine record");
        }
        quarantined.emplace(std::move(sched), std::move(reason));
      }
      if (!r.done()) throw std::runtime_error("trailing bytes after records");
    } catch (const std::runtime_error& e) {
      report.discarded.push_back(path + ": " + e.what());
      continue;
    }
    outcomes_ = std::move(outcomes);
    quarantined_ = std::move(quarantined);
    epoch_ = n;
    dirty_ = 0;
    report.epoch = n;
    report.outcomes = outcomes_.size();
    report.quarantined = quarantined_.size();
    return report;
  }
  return report;  // nothing valid on disk; start empty
}

bool ExploreCheckpoint::lookup(const std::vector<ProcId>& schedule,
                               ItemOutcome* out) const {
  std::lock_guard<std::mutex> g(mu_);
  const auto it = outcomes_.find(schedule);
  if (it == outcomes_.end()) return false;
  if (out != nullptr) *out = it->second;
  return true;
}

bool ExploreCheckpoint::is_quarantined(const std::vector<ProcId>& schedule,
                                       std::string* reason) const {
  std::lock_guard<std::mutex> g(mu_);
  const auto it = quarantined_.find(schedule);
  if (it == quarantined_.end()) return false;
  if (reason != nullptr) *reason = it->second;
  return true;
}

void ExploreCheckpoint::record_outcome(const ItemOutcome& outcome) {
  ensure(!outcome.budget_hit,
         "refusing to checkpoint a budget-truncated (partial) item outcome");
  std::lock_guard<std::mutex> g(mu_);
  const auto [it, inserted] = outcomes_.emplace(outcome.schedule, outcome);
  if (!inserted) return;  // already recorded (resumed item); nothing new
  ++dirty_;
  if (config_.flush_interval > 0 && dirty_ >= config_.flush_interval) {
    write_epoch_locked();
  }
}

void ExploreCheckpoint::record_quarantine(const std::vector<ProcId>& schedule,
                                          const std::string& reason) {
  std::lock_guard<std::mutex> g(mu_);
  const auto [it, inserted] = quarantined_.emplace(schedule, reason);
  if (!inserted) return;
  ++dirty_;
  if (config_.flush_interval > 0 && dirty_ >= config_.flush_interval) {
    write_epoch_locked();
  }
}

void ExploreCheckpoint::flush() {
  std::lock_guard<std::mutex> g(mu_);
  if (dirty_ > 0) write_epoch_locked();
}

void ExploreCheckpoint::write_epoch_locked() {
  const std::uint64_t epoch = epoch_ + 1;
  std::string bytes;
  bytes.append(kMagic, sizeof kMagic);
  put_u32(bytes, kVersion);
  put_u64(bytes, config_.fingerprint);
  put_u64(bytes, epoch);
  put_u64(bytes, outcomes_.size());
  put_u64(bytes, quarantined_.size());
  put_u32(bytes, crc32(bytes));
  for (const auto& [sched, out] : outcomes_) {
    put_record(bytes, encode_item_outcome(out));
  }
  for (const auto& [sched, reason] : quarantined_) {
    std::string payload;
    put_schedule(payload, sched);
    put_string(payload, reason);
    put_record(bytes, payload);
  }
  const std::string path = config_.dir + "/" + epoch_filename(epoch);
  write_file_atomic(path, bytes);
  epoch_ = epoch;
  ++epochs_written_;
  dirty_ = 0;
  // Prune epochs older than the retention window. Failures are ignored:
  // stale epochs waste disk, not correctness.
  if (epoch > static_cast<std::uint64_t>(config_.keep_epochs)) {
    const std::uint64_t cutoff =
        epoch - static_cast<std::uint64_t>(config_.keep_epochs);
    for (const auto& entry : fs::directory_iterator(config_.dir)) {
      const std::uint64_t n = epoch_of_filename(
          entry.path().filename().string());
      if (n != 0 && n <= cutoff) {
        std::error_code ec;
        fs::remove(entry.path(), ec);
      }
    }
  }
  if (config_.on_epoch_written) config_.on_epoch_written(epoch);
}

std::uint64_t ExploreCheckpoint::epochs_written() const {
  std::lock_guard<std::mutex> g(mu_);
  return epochs_written_;
}

std::uint64_t ExploreCheckpoint::last_epoch() const {
  std::lock_guard<std::mutex> g(mu_);
  return epoch_;
}

std::size_t ExploreCheckpoint::outcome_count() const {
  std::lock_guard<std::mutex> g(mu_);
  return outcomes_.size();
}

}  // namespace rmrsim
