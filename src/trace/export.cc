#include "trace/export.h"

#include <cstdio>
#include <map>

namespace rmrsim {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

const char* kind_name(const StepRecord& r) {
  return r.kind == StepRecord::Kind::kMemOp ? "mem" : "event";
}

const char* event_name(EventKind e) {
  switch (e) {
    case EventKind::kCallBegin: return "call_begin";
    case EventKind::kCallEnd: return "call_end";
    case EventKind::kDirective: return "directive";
    case EventKind::kMark: return "mark";
    case EventKind::kDelay: return "delay";
    case EventKind::kCrash: return "crash";
    case EventKind::kRecover: return "recover";
  }
  return "?";
}

}  // namespace

std::string history_to_csv(const History& h) {
  std::string out =
      "index,proc,kind,op,var,home,arg0,arg1,result,rmr,nontrivial,event,"
      "code,value,terminated\n";
  for (const StepRecord& r : h.records()) {
    out += std::to_string(r.index) + ',' + std::to_string(r.proc) + ',';
    out += kind_name(r);
    out += ',';
    if (r.kind == StepRecord::Kind::kMemOp) {
      out += to_string(r.op.type) + ',' + std::to_string(r.op.var) + ',' +
             std::to_string(r.var_home) + ',' + std::to_string(r.op.arg0) +
             ',' + std::to_string(r.op.arg1) + ',' +
             std::to_string(r.outcome.result) + ',' +
             (r.outcome.rmr ? "1," : "0,") +
             (r.outcome.nontrivial ? "1," : "0,") + ",,";
    } else {
      out += ",,,,,,,,";
      out += event_name(r.event);
      out += ',' + std::to_string(r.code) + ',' + std::to_string(r.value);
    }
    out += r.terminated_after ? ",1\n" : ",0\n";
  }
  return out;
}

std::string history_to_json_lines(const History& h) {
  std::string out;
  for (const StepRecord& r : h.records()) {
    out += "{\"index\":" + std::to_string(r.index) +
           ",\"proc\":" + std::to_string(r.proc) + ",\"kind\":\"" +
           json_escape(kind_name(r)) + "\"";
    if (r.kind == StepRecord::Kind::kMemOp) {
      out += ",\"op\":\"" + json_escape(to_string(r.op.type)) + "\",\"var\":" +
             std::to_string(r.op.var) + ",\"home\":" +
             std::to_string(r.var_home) + ",\"arg0\":" +
             std::to_string(r.op.arg0) + ",\"arg1\":" +
             std::to_string(r.op.arg1) + ",\"result\":" +
             std::to_string(r.outcome.result) + ",\"rmr\":" +
             (r.outcome.rmr ? "true" : "false") + ",\"nontrivial\":" +
             (r.outcome.nontrivial ? "true" : "false");
    } else {
      out += ",\"event\":\"";
      out += json_escape(event_name(r.event));
      out += "\",\"code\":" + std::to_string(r.code) +
             ",\"value\":" + std::to_string(r.value);
    }
    out += ",\"terminated\":";
    out += r.terminated_after ? "true" : "false";
    out += "}\n";
  }
  return out;
}

std::string history_timeline(const History& h, int max_cols) {
  std::map<ProcId, std::string> lanes;
  for (const ProcId p : h.participants()) lanes[p] = {};
  int col = 0;
  bool truncated = false;
  for (const StepRecord& r : h.records()) {
    if (col >= max_cols) {
      truncated = true;
      break;
    }
    std::string cell;
    if (r.kind == StepRecord::Kind::kMemOp) {
      char c = 'o';
      if (r.op.type == OpType::kRead) c = 'R';
      if (r.op.type == OpType::kWrite) c = 'W';
      cell = std::string(1, c) + (r.outcome.rmr ? "!" : " ");
    } else {
      switch (r.event) {
        case EventKind::kCallBegin: cell = "b "; break;
        case EventKind::kCallEnd: cell = "e "; break;
        case EventKind::kDirective: cell = "d "; break;
        case EventKind::kMark: cell = "m "; break;
        case EventKind::kDelay: cell = "z "; break;
        case EventKind::kCrash: cell = "# "; break;
        case EventKind::kRecover: cell = "^ "; break;
      }
    }
    if (r.terminated_after) cell[1] = 'X';
    for (auto& [p, lane] : lanes) {
      lane += (p == r.proc) ? cell : ". ";
    }
    ++col;
  }
  std::string out;
  for (const auto& [p, lane] : lanes) {
    out += "p" + std::to_string(p);
    out.append(p < 10 ? 2 : 1, ' ');
    out += "| " + lane + (truncated ? "..." : "") + "\n";
  }
  out += "legend: R/W/o = read/write/rmw ('!' = RMR), b/e = call begin/end, "
         "d = directive, m = mark, X = terminated\n";
  return out;
}

}  // namespace rmrsim
