#include "trace/call_stats.h"

#include <algorithm>
#include <map>

namespace rmrsim {

namespace {

std::vector<CallCost> per_call_costs_impl(
    const History& h, const std::vector<std::uint64_t>* cycle_log) {
  std::vector<CallCost> out;
  // Per-process stack of open calls (indices into `out`), so nested spans
  // keep the outer call alive instead of overwriting it.
  std::map<ProcId, std::vector<std::size_t>> open;
  std::map<std::pair<ProcId, Word>, int> counters;  // per-code call index
  std::size_t mem_step_index = 0;  // k-th memory step == k-th cycle_log entry
  for (const StepRecord& r : h.records()) {
    if (r.kind == StepRecord::Kind::kEvent) {
      if (r.event == EventKind::kCallBegin) {
        CallCost c;
        c.proc = r.proc;
        c.call_code = r.code;
        c.call_index = counters[{r.proc, r.code}]++;
        open[r.proc].push_back(out.size());
        out.push_back(c);
      } else if (r.event == EventKind::kCallEnd) {
        // Pop the innermost open call of this code; an end with no
        // matching begin (possible after a crash truncates spans) is
        // ignored. Mismatched codes above the match are closed too — a
        // call cannot outlive its end record's position.
        auto it = open.find(r.proc);
        if (it != open.end()) {
          std::vector<std::size_t>& stack = it->second;
          for (std::size_t i = stack.size(); i-- > 0;) {
            if (out[stack[i]].call_code == r.code) {
              out[stack[i]].completed = true;
              out[stack[i]].returned = r.value;
              stack.resize(i);
              break;
            }
          }
          if (stack.empty()) open.erase(it);
        }
      }
      continue;
    }
    // Memory step: attribute to the proc's innermost open call, if any —
    // exclusive attribution, so a nested call's steps never double-count
    // into its parent.
    const std::size_t step = mem_step_index++;
    auto it = open.find(r.proc);
    if (it == open.end() || it->second.empty()) continue;
    CallCost& c = out[it->second.back()];
    ++c.mem_steps;
    if (r.outcome.rmr) ++c.rmrs;
    if (cycle_log != nullptr && step < cycle_log->size()) {
      c.cycles += (*cycle_log)[step];
    }
  }
  return out;
}

}  // namespace

std::vector<CallCost> per_call_costs(const History& h) {
  return per_call_costs_impl(h, nullptr);
}

std::vector<CallCost> per_call_costs(
    const History& h, const std::vector<std::uint64_t>& cycle_log) {
  return per_call_costs_impl(h, &cycle_log);
}

std::vector<CallCost> calls_of(const std::vector<CallCost>& costs, ProcId p,
                               Word call_code) {
  std::vector<CallCost> out;
  for (const CallCost& c : costs) {
    if (c.proc == p && c.call_code == call_code) out.push_back(c);
  }
  return out;
}

std::uint64_t max_rmrs_from_index(const std::vector<CallCost>& costs,
                                  Word call_code, int from_index) {
  std::uint64_t best = 0;
  for (const CallCost& c : costs) {
    if (c.call_code == call_code && c.call_index >= from_index) {
      best = std::max(best, c.rmrs);
    }
  }
  return best;
}

}  // namespace rmrsim
