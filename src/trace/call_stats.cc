#include "trace/call_stats.h"

#include <algorithm>
#include <map>

namespace rmrsim {

std::vector<CallCost> per_call_costs(const History& h) {
  std::vector<CallCost> out;
  std::map<ProcId, std::size_t> open;        // proc -> index into out
  std::map<std::pair<ProcId, Word>, int> counters;  // per-code call index
  for (const StepRecord& r : h.records()) {
    if (r.kind == StepRecord::Kind::kEvent) {
      if (r.event == EventKind::kCallBegin) {
        CallCost c;
        c.proc = r.proc;
        c.call_code = r.code;
        c.call_index = counters[{r.proc, r.code}]++;
        open[r.proc] = out.size();
        out.push_back(c);
      } else if (r.event == EventKind::kCallEnd) {
        auto it = open.find(r.proc);
        if (it != open.end() && out[it->second].call_code == r.code) {
          out[it->second].completed = true;
          out[it->second].returned = r.value;
          open.erase(it);
        }
      }
      continue;
    }
    // Memory step: attribute to the proc's open call, if any.
    auto it = open.find(r.proc);
    if (it == open.end()) continue;
    CallCost& c = out[it->second];
    ++c.mem_steps;
    if (r.outcome.rmr) ++c.rmrs;
  }
  return out;
}

std::vector<CallCost> calls_of(const std::vector<CallCost>& costs, ProcId p,
                               Word call_code) {
  std::vector<CallCost> out;
  for (const CallCost& c : costs) {
    if (c.proc == p && c.call_code == call_code) out.push_back(c);
  }
  return out;
}

std::uint64_t max_rmrs_from_index(const std::vector<CallCost>& costs,
                                  Word call_code, int from_index) {
  std::uint64_t best = 0;
  for (const CallCost& c : costs) {
    if (c.call_code == call_code && c.call_index >= from_index) {
      best = std::max(best, c.rmrs);
    }
  }
  return best;
}

}  // namespace rmrsim
