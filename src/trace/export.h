// History export: CSV and JSON-lines dumps plus an ASCII lane timeline.
//
// Debugging distributed interleavings off a wall of step records is
// painful; these exporters turn a History into (a) machine-readable rows
// for offline analysis (CSV / JSON lines, one record per step) and (b) a
// per-process lane view where each column is one step and RMRs stand out —
// the picture one draws on a whiteboard when replaying the Section 6
// adversary by hand.
#pragma once

#include <string>
#include <string_view>

#include "history/history.h"

namespace rmrsim {

/// Escapes `s` for embedding inside a JSON string literal: quote, backslash,
/// and every control character below 0x20 (the common ones as \" \\ \n \r
/// \t \b \f, the rest as \u00XX). Shared by every JSON emitter in the repo
/// (history JSON lines, the metrics registry, BENCH_*.json artifacts) so
/// string safety is a property of the writer, not an accident of field
/// contents.
std::string json_escape(std::string_view s);

/// CSV with header: index,proc,kind,op,var,home,arg0,arg1,result,rmr,
/// nontrivial,event,code,value,terminated.
std::string history_to_csv(const History& h);

/// JSON lines, one object per record (no external dependencies; fields
/// mirror the CSV). All string fields pass through json_escape.
std::string history_to_json_lines(const History& h);

/// ASCII timeline: one lane per process, one column per step.
///   R = local read   W = local write  other local ops = o
///   uppercase with '!' (R!, W!, o!) = the step was an RMR
///   b/e = call begin/end, d = directive, . = idle, X = terminated after
/// Lanes longer than `max_cols` are truncated with an ellipsis.
std::string history_timeline(const History& h, int max_cols = 120);

}  // namespace rmrsim
