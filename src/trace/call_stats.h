// Per-procedure-call cost breakdowns.
//
// The Section 7 algorithms all share one fingerprint: an expensive *first*
// Poll() (registration) followed by free local spins. This module slices a
// history into procedure-call spans and attributes memory steps and RMRs to
// each, so tests and benches can assert per-call shapes ("first call pays
// <= 3 RMRs, every later call pays 0") rather than only totals.
#pragma once

#include <cstdint>
#include <vector>

#include "history/history.h"

namespace rmrsim {

struct CallCost {
  ProcId proc = kNoProc;
  Word call_code = 0;       ///< calls::kPoll etc.
  int call_index = 0;       ///< per-process index among calls of this code
  Word returned = 0;        ///< value from the kCallEnd record
  bool completed = false;   ///< false if the call never ended in the history
  std::uint64_t mem_steps = 0;
  std::uint64_t rmrs = 0;
  std::uint64_t cycles = 0;  ///< coherence-protocol cycles (overload below)
};

/// Slices the history into call spans and attributes each memory step to
/// the call it occurred in. Attribution rules:
///   * steps outside any call span are ignored;
///   * nested calls attribute exclusively to the innermost open span (a
///     nested call's steps never double-count into its parent);
///   * a kCallEnd closes the innermost open call with a matching code
///     (anything nested above it is closed unfinished);
///   * a call with no end in the history stays completed == false and
///     keeps the costs accrued so far.
std::vector<CallCost> per_call_costs(const History& h);

/// As above, but additionally attributes protocol cycles to each call.
/// `cycle_log` is a SnoopingCache's cycle log (enable_cycle_log() before the
/// run): SharedMemory::apply publishes exactly one CoherenceEvent per
/// applied op, so the log's k-th entry prices the history's k-th memory-step
/// record. Requires the listener attached for the whole run, and not behind
/// a WriteBuffer (buffering breaks the 1:1 correspondence). A log shorter
/// than the history attributes only the steps it covers.
std::vector<CallCost> per_call_costs(const History& h,
                                     const std::vector<std::uint64_t>& cycle_log);

/// Convenience filters over per_call_costs.
std::vector<CallCost> calls_of(const std::vector<CallCost>& costs, ProcId p,
                               Word call_code);

/// Maximum RMRs across calls of `call_code` with call_index >= `from_index`
/// (e.g. from_index = 1 to ask "what do steady-state polls cost?").
std::uint64_t max_rmrs_from_index(const std::vector<CallCost>& costs,
                                  Word call_code, int from_index);

}  // namespace rmrsim
