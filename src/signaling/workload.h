// Canned signaling workloads shared by benches, examples, and tests.
//
// The standard scenario throughout the paper: n waiters repeatedly Poll()
// (or Wait()) while one signaler eventually calls Signal(). This helper
// wires the drivers, runs the schedule to completion, and returns the live
// pieces for measurement.
#pragma once

#include <functional>
#include <memory>

#include "history/history.h"
#include "memory/shared_memory.h"
#include "signaling/algorithm.h"

namespace rmrsim {

using SignalingFactory =
    std::function<std::unique_ptr<SignalingAlgorithm>(SharedMemory&)>;

struct SignalingRun {
  std::unique_ptr<SharedMemory> mem;
  std::unique_ptr<SignalingAlgorithm> alg;
  std::unique_ptr<Simulation> sim;

  /// RMRs of the signaler process (id = n_waiters).
  std::uint64_t signaler_rmrs() const;
  /// Maximum RMRs over the waiter processes (ids 0..n_waiters-1).
  std::uint64_t max_waiter_rmrs() const;
  /// total RMRs / participating processes.
  double amortized_rmrs() const;

  int n_waiters = 0;
  /// True iff the run executed on the compiled (bytecode) engine.
  bool compiled = false;
};

struct SignalingWorkloadOptions {
  int n_waiters = 8;
  /// Poll() calls the signaler makes before Signal() — models the delay
  /// during which waiters spin (drives the "unbounded RMR" contrast).
  int signaler_idle_polls = 0;
  int max_polls_per_waiter = 1'000'000;
  bool blocking = false;  ///< waiters call Wait() instead of polling
  std::uint64_t scheduler_seed = 0;  ///< 0 = round-robin, else seeded random
  std::uint64_t step_budget = 100'000'000;
  /// kCountersOnly drops per-step records (see history/history.h): the RMR
  /// ledger and aggregate counters survive, record-backed relations do not.
  /// Benches opt in; measurement paths that read records keep the default.
  HistoryMode history_mode = HistoryMode::kFull;
  /// Attached to the memory for the whole run (coherence-protocol pricing);
  /// flushed after completion. Must outlive the call. nullptr = none.
  CoherenceListener* listener = nullptr;
  /// kCompiled lowers the drivers to bytecode (signaling/compile.h) when the
  /// algorithm implements lowering; otherwise the run silently falls back to
  /// the coroutine engine (check SignalingRun::compiled). Results are
  /// byte-identical either way — the engines differ only in speed.
  StepEngine engine = StepEngine::kCoroutine;
  /// Optional compile-once cache for kCompiled: when set, this program set is
  /// used as-is instead of recompiling per run. Sound because compilation is
  /// a pure function of (algorithm, n_waiters, blocking, max_polls,
  /// idle_polls) and variable ids are allocated deterministically — a set
  /// compiled against one run's store is valid for every identically-shaped
  /// run. Callers own the shape match; repeated-run benches use this so the
  /// measured cost is the step loop, not n+1 recompiles per run.
  std::shared_ptr<const BytecodeSet> precompiled;
};

/// Runs waiters (procs 0..n-1) plus one signaler (proc n) to completion
/// under a fair schedule. Throws if the run does not complete in budget.
SignalingRun run_signaling_workload(std::unique_ptr<SharedMemory> mem,
                                    const SignalingFactory& factory,
                                    const SignalingWorkloadOptions& options);

}  // namespace rmrsim
