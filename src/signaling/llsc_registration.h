// An LL/SC-based signaling algorithm — Corollary 6.14's other primitive.
//
// Identical structure to the CAS registration stack, but the head is
// manipulated with Load-Linked/Store-Conditional: a waiter's first Poll()
// LL's the head, links its (own-module) next pointer, and SC's itself in,
// retrying on reservation loss. Corollary 6.14 covers exactly this
// primitive set (reads, writes, and LL/SC): the direct Section 6
// construction detects the LL/SC operations and reports the algorithm out
// of scope, while the transformation argument (see
// primitives/rw_cas_registration.h) applies unchanged.
#pragma once

#include <vector>

#include "memory/shared_memory.h"
#include "signaling/algorithm.h"

namespace rmrsim {

class LlscRegistrationSignal final : public SignalingAlgorithm {
 public:
  explicit LlscRegistrationSignal(SharedMemory& mem);

  SubTask<bool> poll(ProcCtx& ctx) override;
  SubTask<void> signal(ProcCtx& ctx) override;

  bool has_lowering() const override { return true; }
  void lower_poll(BytecodeBuilder& b, ProcId me, BcReg dst) const override;
  void lower_signal(BytecodeBuilder& b, ProcId me) const override;

  std::string_view name() const override { return "llsc-registration"; }

 private:
  static constexpr Word kNil = -1;
  VarId s_;                       // global: signal issued?
  VarId head_;                    // global: top of registration stack (LL/SC)
  std::vector<VarId> next_;       // next_[i] local to p_i
  std::vector<VarId> v_;          // V[i] local to p_i
  std::vector<VarId> first_done_; // first_done_[i] local to p_i
};

}  // namespace rmrsim
