#include "signaling/compile.h"

#include <string>

#include "common/check.h"

namespace rmrsim {

namespace {

// Emits the Poll() procedure-call block: begin event, algorithm body, end
// event carrying the normalized 0/1 result — the same three-part shape as
// the coroutine drivers' `call_begin; poll; call_end(r ? 1 : 0)`.
void emit_poll_call(BytecodeBuilder& b, const SignalingAlgorithm& alg,
                    ProcId me, BcReg r) {
  b.call_begin(calls::kPoll);
  alg.lower_poll(b, me, r);
  b.call_end(calls::kPoll, r);
}

// Emits the Wait() body as the poll-loop reduction (the default coroutine
// wait). Algorithms with a native blocking override still match step for
// step: the loop's bool plumbing is process-local, so the shared-memory op
// sequence is identical.
void emit_wait_body(BytecodeBuilder& b, const SignalingAlgorithm& alg,
                    ProcId me, BcReg r) {
  const auto again = b.label();
  b.bind(again);
  alg.lower_poll(b, me, r);
  b.jz(r, again);
}

}  // namespace

std::shared_ptr<const BytecodeProgram> compile_polling_waiter(
    const SignalingAlgorithm& alg, ProcId me, int max_polls) {
  ensure(alg.has_lowering(),
         std::string(alg.name()) + " does not implement bytecode lowering");
  BytecodeBuilder b;
  const BcReg remaining = b.reg();
  const BcReg r = b.reg();
  b.load_imm(remaining, max_polls);
  const auto top = b.label();
  const auto end = b.label();
  b.bind(top);
  b.jz(remaining, end);
  emit_poll_call(b, alg, me, r);
  b.jnz(r, end);
  b.add_imm(remaining, remaining, -1);
  b.jump(top);
  b.bind(end);
  b.halt();
  return b.build("polling_waiter/" + std::string(alg.name()) + "/p" +
                 std::to_string(me));
}

std::shared_ptr<const BytecodeProgram> compile_blocking_waiter(
    const SignalingAlgorithm& alg, ProcId me) {
  ensure(alg.has_lowering(),
         std::string(alg.name()) + " does not implement bytecode lowering");
  BytecodeBuilder b;
  const BcReg r = b.reg();
  b.call_begin(calls::kWait);
  emit_wait_body(b, alg, me, r);
  b.call_end(calls::kWait);
  b.halt();
  return b.build("blocking_waiter/" + std::string(alg.name()) + "/p" +
                 std::to_string(me));
}

std::shared_ptr<const BytecodeProgram> compile_signaler(
    const SignalingAlgorithm& alg, ProcId me, int idle_polls) {
  ensure(alg.has_lowering(),
         std::string(alg.name()) + " does not implement bytecode lowering");
  BytecodeBuilder b;
  // The poll loop is emitted only when it can run: lowering Poll() for a
  // process that may never call it (e.g. the fixed-waiters signaler) is a
  // compile-time error, while the coroutine signaler with zero idle polls
  // simply never reaches alg->poll().
  if (idle_polls > 0) {
    const BcReg remaining = b.reg();
    const BcReg r = b.reg();
    b.load_imm(remaining, idle_polls);
    const auto top = b.label();
    const auto done_polling = b.label();
    b.bind(top);
    b.jz(remaining, done_polling);
    emit_poll_call(b, alg, me, r);
    b.add_imm(remaining, remaining, -1);
    b.jump(top);
    b.bind(done_polling);
  }
  b.call_begin(calls::kSignal);
  alg.lower_signal(b, me);
  b.call_end(calls::kSignal);
  b.halt();
  return b.build("signaler/" + std::string(alg.name()) + "/p" +
                 std::to_string(me));
}

std::shared_ptr<const BytecodeProgram> compile_signaling_driver(
    const SignalingAlgorithm& alg, ProcId me) {
  ensure(alg.has_lowering(),
         std::string(alg.name()) + " does not implement bytecode lowering");
  BytecodeBuilder b;
  const BcReg action = b.reg();
  const BcReg arg = b.reg();
  const BcReg r = b.reg();
  const auto top = b.label();
  const auto on_poll = b.label();
  const auto on_signal = b.label();
  const auto on_wait = b.label();
  const auto done = b.label();
  b.bind(top);
  b.directive(action, arg);
  b.jeq_imm(action, signaling_actions::kTerminate, done);
  b.jeq_imm(action, signaling_actions::kPoll, on_poll);
  b.jeq_imm(action, signaling_actions::kSignal, on_signal);
  b.jeq_imm(action, signaling_actions::kWait, on_wait);
  b.trap();  // unknown directive: the coroutine driver fail()s here too
  b.bind(on_poll);
  emit_poll_call(b, alg, me, r);
  b.jump(top);
  b.bind(on_signal);
  b.call_begin(calls::kSignal);
  alg.lower_signal(b, me);
  b.call_end(calls::kSignal);
  b.jump(top);
  b.bind(on_wait);
  b.call_begin(calls::kWait);
  emit_wait_body(b, alg, me, r);
  b.call_end(calls::kWait);
  b.jump(top);
  b.bind(done);
  b.halt();
  return b.build("signaling_driver/" + std::string(alg.name()) + "/p" +
                 std::to_string(me));
}

std::shared_ptr<const BytecodeSet> compile_signaling_programs(
    const SignalingAlgorithm& alg, int nprocs, bool blocking, int max_polls,
    int idle_polls) {
  if (!alg.has_lowering()) return nullptr;
  ensure(nprocs >= 2, "signaling workload needs a waiter and a signaler");
  auto set = std::make_shared<BytecodeSet>();
  set->per_proc.resize(static_cast<std::size_t>(nprocs));
  for (ProcId p = 0; p + 1 < nprocs; ++p) {
    set->per_proc[static_cast<std::size_t>(p)] =
        blocking ? compile_blocking_waiter(alg, p)
                 : compile_polling_waiter(alg, p, max_polls);
  }
  set->per_proc[static_cast<std::size_t>(nprocs - 1)] =
      compile_signaler(alg, nprocs - 1, idle_polls);
  return set;
}

}  // namespace rmrsim
