// The signaling problem (Section 4) — algorithm interface and client drivers.
//
// Signalers and waiters exchange one bit of information: "the event has
// occurred". With *polling semantics* a solution provides Signal() and
// Poll() -> bool; with *blocking semantics*, Signal() and Wait(). Safety is
// Specification 4.1 (see checker.h). A process may call Signal() at most
// once and Poll() arbitrarily many times, in any order, and may terminate
// after finitely many calls even if none returned true — the variation used
// in the Section 6 lower bound.
//
// Implementation contract for algorithms (load-bearing for the adversary's
// erasure-by-replay): an algorithm object owns NO mutable C++ state. All
// persistent state — including per-process private state that survives
// across procedure calls, such as "I already registered" — lives in shared
// memory variables allocated at construction (per-process private state in
// variables homed at that process, which is exactly the paper's "local
// memory"). SharedMemory::reset() then restores the algorithm to its initial
// state, making replays exact.
#pragma once

#include <memory>
#include <string_view>

#include "runtime/bytecode.h"
#include "runtime/coro.h"
#include "runtime/proc_ctx.h"
#include "runtime/simulation.h"

namespace rmrsim {

class SignalingAlgorithm {
 public:
  virtual ~SignalingAlgorithm() = default;

  /// Poll(): returns true iff the signal is known to have been issued.
  virtual SubTask<bool> poll(ProcCtx& ctx) = 0;

  /// Signal(): issues the signal. Callable at most once per process.
  virtual SubTask<void> signal(ProcCtx& ctx) = 0;

  /// Wait(): returns only after some Signal() has begun. Default: busy-wait
  /// by repeated Poll() — the reduction the paper notes for every variant.
  /// Algorithms with a cheaper native blocking path may override.
  virtual SubTask<void> wait(ProcCtx& ctx);

  // ---- bytecode lowering (compiled step engine) -----------------------
  //
  // An algorithm that opts in emits straight-line/branching bytecode whose
  // shared-memory ops match its coroutine body step for step — the oracle-
  // parity contract (DESIGN.md §9): under the same schedule, compiled and
  // coroutine runs must produce identical histories and ledgers. Wait() is
  // always lowered as the poll-loop reduction; algorithms with a native
  // blocking wait still match because the bool plumbing is process-local.

  /// True iff lower_poll()/lower_signal() are implemented.
  virtual bool has_lowering() const { return false; }

  /// Emits Poll()'s body for process `me` into `b`, leaving a normalized
  /// 0/1 result in register `dst` (the value Poll() would co_return, as
  /// recorded in its call_end event).
  virtual void lower_poll(BytecodeBuilder& b, ProcId me, BcReg dst) const;

  /// Emits Signal()'s body for process `me` into `b`.
  virtual void lower_signal(BytecodeBuilder& b, ProcId me) const;

  virtual std::string_view name() const = 0;
};

/// Directive actions understood by signaling_driver.
namespace signaling_actions {
inline constexpr int kTerminate = Directive::kTerminate;  // 0
inline constexpr int kPoll = 1;
inline constexpr int kSignal = 2;
inline constexpr int kWait = 3;
}  // namespace signaling_actions

/// General driver: repeatedly asks the simulation's directive policy what to
/// call next. This is how the lower-bound adversary steers processes through
/// the histories of Definition 6.1 (arbitrary call sequences, then
/// termination). Records call boundaries for the Specification 4.1 checker.
ProcTask signaling_driver(ProcCtx& ctx, SignalingAlgorithm* alg);

/// Canned waiter: calls Poll() until it returns true or `max_polls` calls
/// completed, then terminates. No directive policy required.
ProcTask polling_waiter(ProcCtx& ctx, SignalingAlgorithm* alg, int max_polls);

/// Canned waiter for blocking semantics: one Wait() call, then terminates.
ProcTask blocking_waiter(ProcCtx& ctx, SignalingAlgorithm* alg);

/// Canned signaler: performs `idle_polls` Poll() calls (0 for none), then one
/// Signal(), then terminates. The polls let tests exercise mixed roles.
ProcTask signaler(ProcCtx& ctx, SignalingAlgorithm* alg, int idle_polls = 0);

}  // namespace rmrsim
