#include "signaling/broken.h"

#include <string>

namespace rmrsim {

BrokenLocalSignal::BrokenLocalSignal(SharedMemory& mem)
    : s_(mem.allocate_global(0, "S")) {
  v_.reserve(static_cast<std::size_t>(mem.nprocs()));
  for (ProcId i = 0; i < mem.nprocs(); ++i) {
    v_.push_back(mem.allocate_local(i, 0, "V[" + std::to_string(i) + "]"));
  }
}

SubTask<bool> BrokenLocalSignal::poll(ProcCtx& ctx) {
  const Word v = co_await ctx.read(v_[ctx.id()]);  // never written by anyone
  co_return v != 0;
}

SubTask<void> BrokenLocalSignal::signal(ProcCtx& ctx) {
  co_await ctx.write(s_, 1);  // shouting into the void
}

LateFlagSignal::LateFlagSignal(SharedMemory& mem, ProcId signaler)
    : signaler_(signaler), s_(mem.allocate_global(0, "S")) {
  reg_.reserve(static_cast<std::size_t>(mem.nprocs()));
  v_.reserve(static_cast<std::size_t>(mem.nprocs()));
  first_done_.reserve(static_cast<std::size_t>(mem.nprocs()));
  for (ProcId i = 0; i < mem.nprocs(); ++i) {
    reg_.push_back(
        mem.allocate_local(signaler_, 0, "Reg[" + std::to_string(i) + "]"));
    v_.push_back(mem.allocate_local(i, 0, "V[" + std::to_string(i) + "]"));
    first_done_.push_back(
        mem.allocate_local(i, 0, "First[" + std::to_string(i) + "]"));
  }
}

SubTask<bool> LateFlagSignal::poll(ProcCtx& ctx) {
  // Identical to DsmRegistrationSignal::poll. The after-registration read of
  // S is the waiter's half of the race-closing handshake — sound only if the
  // signaler writes S *before* sweeping, which this variant does not.
  const ProcId me = ctx.id();
  const Word done = co_await ctx.read(first_done_[me]);
  if (done == 0) {
    co_await ctx.write(reg_[me], 1);
    co_await ctx.write(first_done_[me], 1);
    const Word s = co_await ctx.read(s_);
    co_return s != 0;
  }
  const Word v = co_await ctx.read(v_[me]);
  co_return v != 0;
}

SubTask<void> LateFlagSignal::signal(ProcCtx& ctx) {
  // BUG: the sweep runs before S is written. A waiter that registers after
  // the sweep passed its slot but before the final write reads S = 0 and is
  // never delivered a private flag — lost wakeup.
  for (ProcId i = 0; i < static_cast<ProcId>(reg_.size()); ++i) {
    const Word r = co_await ctx.read(reg_[i]);  // local to the signaler
    if (r != 0) {
      co_await ctx.write(v_[i], 1);
    }
  }
  co_await ctx.write(s_, 1);
}

DroppedRecheckCasSignal::DroppedRecheckCasSignal(SharedMemory& mem)
    : s_(mem.allocate_global(0, "S")),
      head_(mem.allocate_global(kNil, "Head")) {
  next_.reserve(static_cast<std::size_t>(mem.nprocs()));
  v_.reserve(static_cast<std::size_t>(mem.nprocs()));
  first_done_.reserve(static_cast<std::size_t>(mem.nprocs()));
  for (ProcId i = 0; i < mem.nprocs(); ++i) {
    next_.push_back(
        mem.allocate_local(i, kNil, "Next[" + std::to_string(i) + "]"));
    v_.push_back(mem.allocate_local(i, 0, "V[" + std::to_string(i) + "]"));
    first_done_.push_back(
        mem.allocate_local(i, 0, "First[" + std::to_string(i) + "]"));
  }
}

SubTask<bool> DroppedRecheckCasSignal::poll(ProcCtx& ctx) {
  const ProcId me = ctx.id();
  const Word done = co_await ctx.read(first_done_[me]);
  if (done == 0) {
    // BUG: one CAS attempt, result ignored. When two first Polls race, the
    // loser's push silently vanishes — it is not on the stack, yet it marks
    // itself registered and trusts a private flag no sweep will ever write.
    const Word h = co_await ctx.read(head_);
    co_await ctx.write(next_[me], h);
    co_await ctx.cas(head_, h, me);
    co_await ctx.write(first_done_[me], 1);
    const Word s = co_await ctx.read(s_);
    co_return s != 0;
  }
  const Word v = co_await ctx.read(v_[me]);
  co_return v != 0;
}

SubTask<void> DroppedRecheckCasSignal::signal(ProcCtx& ctx) {
  co_await ctx.write(s_, 1);
  Word node = co_await ctx.read(head_);
  while (node != kNil) {
    const ProcId w = static_cast<ProcId>(node);
    co_await ctx.write(v_[w], 1);
    node = co_await ctx.read(next_[w]);
  }
}

BrokenRecoveryLock::BrokenRecoveryLock(SharedMemory& mem)
    : owner_(mem.allocate_global(kFree, "owner")) {
  for (ProcId p = 0; p < mem.nprocs(); ++p) {
    want_.push_back(
        mem.allocate_local(p, 0, "want[" + std::to_string(p) + "]"));
  }
}

SubTask<void> BrokenRecoveryLock::acquire(ProcCtx& ctx) {
  const ProcId me = ctx.id();
  co_await ctx.write(want_[me], 1);
  for (;;) {
    const Word old = co_await ctx.cas(owner_, kFree, me);
    if (old == kFree || old == me) break;
  }
}

SubTask<void> BrokenRecoveryLock::release(ProcCtx& ctx) {
  const ProcId me = ctx.id();
  co_await ctx.cas(owner_, me, kFree);
  co_await ctx.write(want_[me], 0);
}

SubTask<void> BrokenRecoveryLock::recover(ProcCtx& ctx) {
  const ProcId me = ctx.id();
  // BUG: infers "the crash caught me holding the lock" from the local
  // doorway flag instead of reading owner. want = 1 also covers a crash
  // while merely spinning in acquire — in that case owner is some other
  // live process, and this write frees a hold that is not ours.
  const Word want = co_await ctx.read(want_[me]);
  if (want != 0) co_await ctx.write(owner_, kFree);
  co_await ctx.write(want_[me], 0);
}

}  // namespace rmrsim
