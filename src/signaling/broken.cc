#include "signaling/broken.h"

namespace rmrsim {

BrokenLocalSignal::BrokenLocalSignal(SharedMemory& mem)
    : s_(mem.allocate_global(0, "S")) {
  v_.reserve(static_cast<std::size_t>(mem.nprocs()));
  for (ProcId i = 0; i < mem.nprocs(); ++i) {
    v_.push_back(mem.allocate_local(i, 0, "V[" + std::to_string(i) + "]"));
  }
}

SubTask<bool> BrokenLocalSignal::poll(ProcCtx& ctx) {
  const Word v = co_await ctx.read(v_[ctx.id()]);  // never written by anyone
  co_return v != 0;
}

SubTask<void> BrokenLocalSignal::signal(ProcCtx& ctx) {
  co_await ctx.write(s_, 1);  // shouting into the void
}

}  // namespace rmrsim
