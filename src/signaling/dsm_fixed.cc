#include "signaling/dsm_fixed.h"

#include <algorithm>

#include "common/check.h"

namespace rmrsim {

DsmFixedWaitersSignal::DsmFixedWaitersSignal(SharedMemory& mem,
                                             std::vector<ProcId> waiters)
    : waiters_(std::move(waiters)) {
  v_.reserve(static_cast<std::size_t>(mem.nprocs()));
  for (ProcId i = 0; i < mem.nprocs(); ++i) {
    v_.push_back(mem.allocate_local(i, 0, "V[" + std::to_string(i) + "]"));
  }
}

SubTask<bool> DsmFixedWaitersSignal::poll(ProcCtx& ctx) {
  ensure(std::find(waiters_.begin(), waiters_.end(), ctx.id()) !=
             waiters_.end(),
         "only a fixed waiter may call Poll() in this variant");
  const Word v = co_await ctx.read(v_[ctx.id()]);
  co_return v != 0;
}

SubTask<void> DsmFixedWaitersSignal::signal(ProcCtx& ctx) {
  for (const ProcId w : waiters_) {
    co_await ctx.write(v_[w], 1);
  }
}

DsmFixedWaitersTerminating::DsmFixedWaitersTerminating(
    SharedMemory& mem, std::vector<ProcId> waiters, ProcId signaler)
    : waiters_(std::move(waiters)), signaler_(signaler) {
  v_.reserve(static_cast<std::size_t>(mem.nprocs()));
  present_.reserve(static_cast<std::size_t>(mem.nprocs()));
  for (ProcId i = 0; i < mem.nprocs(); ++i) {
    v_.push_back(mem.allocate_local(i, 0, "V[" + std::to_string(i) + "]"));
    present_.push_back(mem.allocate_local(
        signaler_, 0, "Present[" + std::to_string(i) + "]"));
    announced_.push_back(
        mem.allocate_local(i, 0, "Announced[" + std::to_string(i) + "]"));
  }
}

SubTask<bool> DsmFixedWaitersTerminating::poll(ProcCtx& ctx) {
  const ProcId me = ctx.id();
  ensure(std::find(waiters_.begin(), waiters_.end(), me) != waiters_.end(),
         "only a fixed waiter may call Poll() in this variant");
  // Announce participation once (the announced_ guard is in the waiter's
  // own module, so the check is free); afterwards every call is a local
  // spin on V — O(1) RMRs per waiter total.
  const Word announced = co_await ctx.read(announced_[me]);
  if (announced == 0) {
    co_await ctx.write(present_[me], 1);
    co_await ctx.write(announced_[me], 1);
  }
  const Word v = co_await ctx.read(v_[me]);
  co_return v != 0;
}

void DsmFixedWaitersSignal::lower_poll(BytecodeBuilder& b, ProcId me,
                                       BcReg dst) const {
  ensure(std::find(waiters_.begin(), waiters_.end(), me) != waiters_.end(),
         "only a fixed waiter may call Poll() in this variant");
  b.read(dst, b.var(v_[me]));
  b.ne_imm(dst, dst, 0);
}

void DsmFixedWaitersSignal::lower_signal(BytecodeBuilder& b, ProcId) const {
  // The waiter set is a compile-time constant, so the delivery loop unrolls
  // into the same write sequence the coroutine's for-loop performs.
  const BcReg one = b.reg();
  b.load_imm(one, 1);
  for (const ProcId w : waiters_) {
    b.write(b.var(v_[w]), one);
  }
}

SubTask<void> DsmFixedWaitersTerminating::signal(ProcCtx& ctx) {
  // Busy-wait for each fixed waiter to participate — a *local* spin, since
  // the participation flags live in the signaler's own module — then deliver
  // its private flag. Terminating (not wait-free): if some fixed waiter
  // never shows up in a fair history, Signal() never returns, which the
  // terminating progress property permits only when the history is unfair or
  // a waiter crashed; tests drive fair schedules where everyone arrives.
  for (const ProcId w : waiters_) {
    for (;;) {
      const Word here = co_await ctx.read(present_[w]);
      if (here != 0) break;
    }
    co_await ctx.write(v_[w], 1);
  }
}

void DsmFixedWaitersTerminating::lower_poll(BytecodeBuilder& b, ProcId me,
                                            BcReg dst) const {
  ensure(std::find(waiters_.begin(), waiters_.end(), me) != waiters_.end(),
         "only a fixed waiter may call Poll() in this variant");
  const BcReg t = b.reg();
  const auto skip = b.label();
  b.read(t, b.var(announced_[me]));
  b.jnz(t, skip);
  const BcReg one = b.reg();
  b.load_imm(one, 1);
  b.write(b.var(present_[me]), one);
  b.write(b.var(announced_[me]), one);
  b.bind(skip);
  b.read(dst, b.var(v_[me]));
  b.ne_imm(dst, dst, 0);
}

void DsmFixedWaitersTerminating::lower_signal(BytecodeBuilder& b,
                                              ProcId) const {
  const BcReg one = b.reg();
  const BcReg here = b.reg();
  b.load_imm(one, 1);
  for (const ProcId w : waiters_) {
    const auto spin = b.label();
    b.bind(spin);
    b.read(here, b.var(present_[w]));
    b.jz(here, spin);
    b.write(b.var(v_[w]), one);
  }
}

}  // namespace rmrsim
