#include "signaling/workload.h"

#include <algorithm>

#include "common/check.h"
#include "sched/schedulers.h"
#include "signaling/compile.h"

namespace rmrsim {

std::uint64_t SignalingRun::signaler_rmrs() const {
  return mem->ledger().rmrs(n_waiters);
}

std::uint64_t SignalingRun::max_waiter_rmrs() const {
  std::uint64_t best = 0;
  for (ProcId p = 0; p < n_waiters; ++p) {
    best = std::max(best, mem->ledger().rmrs(p));
  }
  return best;
}

double SignalingRun::amortized_rmrs() const {
  const auto participants = sim->history().participants().size();
  if (participants == 0) return 0.0;
  return static_cast<double>(mem->ledger().total_rmrs()) /
         static_cast<double>(participants);
}

SignalingRun run_signaling_workload(std::unique_ptr<SharedMemory> mem,
                                    const SignalingFactory& factory,
                                    const SignalingWorkloadOptions& options) {
  SignalingRun r;
  r.n_waiters = options.n_waiters;
  r.mem = std::move(mem);
  ensure(r.mem->nprocs() >= options.n_waiters + 1,
         "memory must have room for the waiters plus one signaler");
  if (options.listener != nullptr) r.mem->set_listener(options.listener);
  r.alg = factory(*r.mem);
  SignalingAlgorithm* alg = r.alg.get();

  std::vector<Program> programs;
  for (int i = 0; i < options.n_waiters; ++i) {
    if (options.blocking) {
      programs.emplace_back(
          [alg](ProcCtx& ctx) { return blocking_waiter(ctx, alg); });
    } else {
      const int max_polls = options.max_polls_per_waiter;
      programs.emplace_back([alg, max_polls](ProcCtx& ctx) {
        return polling_waiter(ctx, alg, max_polls);
      });
    }
  }
  const int idle = options.signaler_idle_polls;
  programs.emplace_back(
      [alg, idle](ProcCtx& ctx) { return signaler(ctx, alg, idle); });

  std::shared_ptr<const BytecodeSet> bytecode;
  if (options.engine == StepEngine::kCompiled) {
    if (options.precompiled != nullptr) {
      ensure(options.precompiled->per_proc.size() ==
                 static_cast<std::size_t>(options.n_waiters) + 1,
             "precompiled bytecode set does not match n_waiters + 1 procs");
      bytecode = options.precompiled;
    } else {
      bytecode = compile_signaling_programs(
          *alg, options.n_waiters + 1, options.blocking,
          options.max_polls_per_waiter, options.signaler_idle_polls);
    }
  }
  r.compiled = bytecode != nullptr;
  r.sim = std::make_unique<Simulation>(
      *r.mem,
      std::make_shared<const std::vector<Program>>(std::move(programs)),
      std::move(bytecode));
  r.sim->set_history_mode(options.history_mode);
  Simulation::RunResult result{};
  if (options.scheduler_seed == 0) {
    RoundRobinScheduler sched;
    result = r.sim->run(sched, options.step_budget);
  } else {
    RandomScheduler sched(options.scheduler_seed);
    result = r.sim->run(sched, options.step_budget);
  }
  ensure(result.all_terminated, "signaling workload did not complete");
  if (options.listener != nullptr) options.listener->flush();
  return r;
}

}  // namespace rmrsim
