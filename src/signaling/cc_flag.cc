#include "signaling/cc_flag.h"

namespace rmrsim {

CcFlagSignal::CcFlagSignal(SharedMemory& mem, ProcId home)
    : b_(mem.allocate(0, home, "B")) {}

SubTask<bool> CcFlagSignal::poll(ProcCtx& ctx) {
  const Word b = co_await ctx.read(b_);
  co_return b != 0;
}

SubTask<void> CcFlagSignal::signal(ProcCtx& ctx) {
  co_await ctx.write(b_, 1);
}

SubTask<void> CcFlagSignal::wait(ProcCtx& ctx) {
  for (;;) {
    const Word b = co_await ctx.read(b_);
    if (b != 0) co_return;
  }
}

void CcFlagSignal::lower_poll(BytecodeBuilder& b, ProcId, BcReg dst) const {
  b.read(dst, b.var(b_));
  b.ne_imm(dst, dst, 0);
}

void CcFlagSignal::lower_signal(BytecodeBuilder& b, ProcId) const {
  const BcReg one = b.reg();
  b.load_imm(one, 1);
  b.write(b.var(b_), one);
}

}  // namespace rmrsim
