#include "signaling/cc_flag.h"

namespace rmrsim {

CcFlagSignal::CcFlagSignal(SharedMemory& mem, ProcId home)
    : b_(mem.allocate(0, home, "B")) {}

SubTask<bool> CcFlagSignal::poll(ProcCtx& ctx) {
  const Word b = co_await ctx.read(b_);
  co_return b != 0;
}

SubTask<void> CcFlagSignal::signal(ProcCtx& ctx) {
  co_await ctx.write(b_, 1);
}

SubTask<void> CcFlagSignal::wait(ProcCtx& ctx) {
  for (;;) {
    const Word b = co_await ctx.read(b_);
    if (b != 0) co_return;
  }
}

}  // namespace rmrsim
