// Bytecode compilation of the signaling client drivers.
//
// Mirrors the canned coroutine drivers in signaling/algorithm.h instruction
// for instruction: each compiled driver performs the same call-boundary
// events and delegates the procedure bodies to the algorithm's lower_poll /
// lower_signal hooks, so a compiled process is step-for-step identical to
// its coroutine twin (the oracle-parity contract, DESIGN.md §9).
#pragma once

#include <memory>

#include "runtime/bytecode.h"
#include "signaling/algorithm.h"

namespace rmrsim {

/// Compiles polling_waiter(ctx, alg, max_polls) for process `me`.
std::shared_ptr<const BytecodeProgram> compile_polling_waiter(
    const SignalingAlgorithm& alg, ProcId me, int max_polls);

/// Compiles blocking_waiter(ctx, alg) for process `me`. Wait() lowers as the
/// poll-loop reduction; algorithms with a native blocking override still
/// match step for step because the loop's bool plumbing is process-local.
std::shared_ptr<const BytecodeProgram> compile_blocking_waiter(
    const SignalingAlgorithm& alg, ProcId me);

/// Compiles signaler(ctx, alg, idle_polls) for process `me`.
std::shared_ptr<const BytecodeProgram> compile_signaler(
    const SignalingAlgorithm& alg, ProcId me, int idle_polls = 0);

/// Compiles signaling_driver(ctx, alg) for process `me`: the directive loop
/// the lower-bound adversary steers. Unknown directive actions execute a
/// trap, matching the coroutine driver's fail().
std::shared_ptr<const BytecodeProgram> compile_signaling_driver(
    const SignalingAlgorithm& alg, ProcId me);

/// Compiles the standard one-signaler / n-1-waiters workload layout used by
/// run_signaling_workload: process n-1 is the signaler (with `idle_polls`
/// idle polls), every other process a waiter. Returns nullptr when the
/// algorithm has no lowering (callers fall back to the coroutine engine).
std::shared_ptr<const BytecodeSet> compile_signaling_programs(
    const SignalingAlgorithm& alg, int nprocs, bool blocking, int max_polls,
    int idle_polls = 0);

}  // namespace rmrsim
