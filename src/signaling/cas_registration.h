// A CAS-based signaling algorithm — the Corollary 6.14 subject.
//
// Corollary 6.14 extends the DSM lower bound to algorithms that use CAS or
// LL/SC besides reads and writes. This algorithm is our concrete such
// subject: waiters push themselves onto a CAS-built registration stack
// (Treiber-style, with per-waiter "next" links homed at the waiter); the
// signaler sets the global flag and walks the stack delivering private
// flags.
//
// Costs in DSM: O(1) worst-case RMRs per waiter (one CAS retry loop step is
// O(1) RMRs; retries only occur under contention on first calls), O(k) for
// the signaler. Like every read/write/CAS solution, the adversary of
// Section 6 — via the transformation of Corollary 6.14 or directly — forces
// total RMRs above c*k (experiments E2/E6).
#pragma once

#include <vector>

#include "memory/shared_memory.h"
#include "signaling/algorithm.h"

namespace rmrsim {

class CasRegistrationSignal final : public SignalingAlgorithm {
 public:
  explicit CasRegistrationSignal(SharedMemory& mem);

  SubTask<bool> poll(ProcCtx& ctx) override;
  SubTask<void> signal(ProcCtx& ctx) override;

  bool has_lowering() const override { return true; }
  void lower_poll(BytecodeBuilder& b, ProcId me, BcReg dst) const override;
  void lower_signal(BytecodeBuilder& b, ProcId me) const override;

  std::string_view name() const override { return "cas-registration"; }

 private:
  static constexpr Word kNil = -1;
  VarId s_;                       // global: signal issued?
  VarId head_;                    // global: top of registration stack (CAS)
  std::vector<VarId> next_;       // next_[i] local to p_i: stack link
  std::vector<VarId> v_;          // V[i] local to p_i
  std::vector<VarId> first_done_; // first_done_[i] local to p_i
};

}  // namespace rmrsim
