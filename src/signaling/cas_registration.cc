#include "signaling/cas_registration.h"

namespace rmrsim {

CasRegistrationSignal::CasRegistrationSignal(SharedMemory& mem)
    : s_(mem.allocate_global(0, "S")),
      head_(mem.allocate_global(kNil, "Head")) {
  next_.reserve(static_cast<std::size_t>(mem.nprocs()));
  v_.reserve(static_cast<std::size_t>(mem.nprocs()));
  first_done_.reserve(static_cast<std::size_t>(mem.nprocs()));
  for (ProcId i = 0; i < mem.nprocs(); ++i) {
    next_.push_back(
        mem.allocate_local(i, kNil, "Next[" + std::to_string(i) + "]"));
    v_.push_back(mem.allocate_local(i, 0, "V[" + std::to_string(i) + "]"));
    first_done_.push_back(
        mem.allocate_local(i, 0, "First[" + std::to_string(i) + "]"));
  }
}

SubTask<bool> CasRegistrationSignal::poll(ProcCtx& ctx) {
  const ProcId me = ctx.id();
  const Word done = co_await ctx.read(first_done_[me]);
  if (done == 0) {
    // First call: push ourselves onto the registration stack, then check S
    // (after-push check closes the race with a concurrent sweep, as in the
    // other registration-style variants).
    for (;;) {
      const Word h = co_await ctx.read(head_);
      co_await ctx.write(next_[me], h);
      const Word old = co_await ctx.cas(head_, h, me);
      if (old == h) break;
    }
    co_await ctx.write(first_done_[me], 1);
    const Word s = co_await ctx.read(s_);
    co_return s != 0;
  }
  const Word v = co_await ctx.read(v_[me]);
  co_return v != 0;
}

SubTask<void> CasRegistrationSignal::signal(ProcCtx& ctx) {
  co_await ctx.write(s_, 1);
  Word node = co_await ctx.read(head_);
  while (node != kNil) {
    const ProcId w = static_cast<ProcId>(node);
    co_await ctx.write(v_[w], 1);
    node = co_await ctx.read(next_[w]);
  }
}

void CasRegistrationSignal::lower_poll(BytecodeBuilder& b, ProcId me,
                                       BcReg dst) const {
  const BcReg t = b.reg();
  const auto spin = b.label();
  const auto end = b.label();
  b.read(t, b.var(first_done_[me]));
  b.jnz(t, spin);
  const BcReg h = b.reg();
  const BcReg old = b.reg();
  const BcReg me_reg = b.reg();
  const BcReg one = b.reg();
  b.load_imm(me_reg, me);
  b.load_imm(one, 1);
  const auto retry = b.label();
  const auto pushed = b.label();
  b.bind(retry);
  b.read(h, b.var(head_));
  b.write(b.var(next_[me]), h);
  b.cas(old, b.var(head_), /*expect=*/h, /*desired=*/me_reg);
  b.jeq(old, h, pushed);
  b.jump(retry);
  b.bind(pushed);
  b.write(b.var(first_done_[me]), one);
  b.read(dst, b.var(s_));
  b.ne_imm(dst, dst, 0);
  b.jump(end);
  b.bind(spin);
  b.read(dst, b.var(v_[me]));
  b.ne_imm(dst, dst, 0);
  b.bind(end);
}

void CasRegistrationSignal::lower_signal(BytecodeBuilder& b, ProcId) const {
  const BcReg one = b.reg();
  b.load_imm(one, 1);
  b.write(b.var(s_), one);
  const BcReg node = b.reg();
  b.read(node, b.var(head_));
  const auto v_base = b.var_array(v_);
  const auto next_base = b.var_array(next_);
  const auto top = b.label();
  const auto end = b.label();
  b.bind(top);
  b.jeq_imm(node, kNil, end);
  b.write(v_base, one, /*ix=*/node);
  // Chase the link: the index register is read at decode time, the result
  // lands in the same register afterwards — exactly `node = read(next_[node])`.
  b.read(node, next_base, /*ix=*/node);
  b.jump(top);
  b.bind(end);
}

}  // namespace rmrsim
