#include "signaling/cas_registration.h"

namespace rmrsim {

CasRegistrationSignal::CasRegistrationSignal(SharedMemory& mem)
    : s_(mem.allocate_global(0, "S")),
      head_(mem.allocate_global(kNil, "Head")) {
  next_.reserve(static_cast<std::size_t>(mem.nprocs()));
  v_.reserve(static_cast<std::size_t>(mem.nprocs()));
  first_done_.reserve(static_cast<std::size_t>(mem.nprocs()));
  for (ProcId i = 0; i < mem.nprocs(); ++i) {
    next_.push_back(
        mem.allocate_local(i, kNil, "Next[" + std::to_string(i) + "]"));
    v_.push_back(mem.allocate_local(i, 0, "V[" + std::to_string(i) + "]"));
    first_done_.push_back(
        mem.allocate_local(i, 0, "First[" + std::to_string(i) + "]"));
  }
}

SubTask<bool> CasRegistrationSignal::poll(ProcCtx& ctx) {
  const ProcId me = ctx.id();
  const Word done = co_await ctx.read(first_done_[me]);
  if (done == 0) {
    // First call: push ourselves onto the registration stack, then check S
    // (after-push check closes the race with a concurrent sweep, as in the
    // other registration-style variants).
    for (;;) {
      const Word h = co_await ctx.read(head_);
      co_await ctx.write(next_[me], h);
      const Word old = co_await ctx.cas(head_, h, me);
      if (old == h) break;
    }
    co_await ctx.write(first_done_[me], 1);
    const Word s = co_await ctx.read(s_);
    co_return s != 0;
  }
  const Word v = co_await ctx.read(v_[me]);
  co_return v != 0;
}

SubTask<void> CasRegistrationSignal::signal(ProcCtx& ctx) {
  co_await ctx.write(s_, 1);
  Word node = co_await ctx.read(head_);
  while (node != kNil) {
    const ProcId w = static_cast<ProcId>(node);
    co_await ctx.write(v_[w], 1);
    node = co_await ctx.read(next_[w]);
  }
}

}  // namespace rmrsim
