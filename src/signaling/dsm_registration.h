// Section 7, "Many waiters not fixed in advance, one signaler fixed in
// advance".
//
// Waiters register on their first Poll() by raising a dedicated flag in the
// signaler's local memory, then check the global flag S (closing the race
// with a concurrent Signal()); subsequent Poll()s read the waiter's private
// V entry — a local spin. Signal() writes S first, then sweeps its *local*
// registration array and remotely delivers V[i] to each registered waiter.
//
// Costs in DSM: every waiter O(1) RMRs worst-case; the signaler performs one
// RMR per registered waiter (k RMRs for k waiters), so the *amortized* RMR
// complexity over the k+1 participants is O(1) — the positive counterpart
// the paper contrasts with the Section 6 lower bound, which kicks in only
// once the signaler, too, is unknown in advance.
#pragma once

#include <vector>

#include "memory/shared_memory.h"
#include "signaling/algorithm.h"

namespace rmrsim {

class DsmRegistrationSignal final : public SignalingAlgorithm {
 public:
  DsmRegistrationSignal(SharedMemory& mem, ProcId signaler);

  SubTask<bool> poll(ProcCtx& ctx) override;
  SubTask<void> signal(ProcCtx& ctx) override;

  bool has_lowering() const override { return true; }
  void lower_poll(BytecodeBuilder& b, ProcId me, BcReg dst) const override;
  void lower_signal(BytecodeBuilder& b, ProcId me) const override;

  std::string_view name() const override { return "dsm-registration"; }

  ProcId fixed_signaler() const { return signaler_; }

 private:
  ProcId signaler_;
  VarId s_;                       // global: signal issued?
  std::vector<VarId> reg_;        // reg_[i] local to the signaler
  std::vector<VarId> v_;          // V[i] local to p_i
  std::vector<VarId> first_done_; // first_done_[i] local to p_i
};

}  // namespace rmrsim
