// Section 7, "Many waiters, fixed in advance".
//
// The signaler knows the waiter set W up front. V[i] is local to p_i;
// Poll() by p_i reads and returns V[i] (always a local spin in DSM), and
// Signal() writes every fixed waiter's V entry.
//
// Two flavors, matching the paper's discussion:
//
//  * DsmFixedWaitersSignal — wait-free. O(|W|) worst-case RMRs for the
//    signaler; amortized complexity exceeds O(1) in histories where the
//    signaler pays |W| RMRs but only o(|W|) waiters have participated (the
//    regime the paper notes makes O(1) amortized impossible for wait-free
//    solutions when |W| is large).
//
//  * DsmFixedWaitersTerminating — terminating, O(1) amortized in all
//    histories: before writing V[i], the signaler busy-waits (locally!) on a
//    participation flag that waiter i raises on its first Poll(). The flags
//    live in the *signaler's* module so the spin is local; the paper leaves
//    the flag placement implicit, so this variant fixes the signaler's id in
//    advance (the natural reading — the signaler must know where its flags
//    are).
#pragma once

#include <vector>

#include "memory/shared_memory.h"
#include "signaling/algorithm.h"

namespace rmrsim {

class DsmFixedWaitersSignal final : public SignalingAlgorithm {
 public:
  DsmFixedWaitersSignal(SharedMemory& mem, std::vector<ProcId> waiters);

  SubTask<bool> poll(ProcCtx& ctx) override;
  SubTask<void> signal(ProcCtx& ctx) override;

  bool has_lowering() const override { return true; }
  void lower_poll(BytecodeBuilder& b, ProcId me, BcReg dst) const override;
  void lower_signal(BytecodeBuilder& b, ProcId me) const override;

  std::string_view name() const override { return "dsm-fixed-waiters"; }

  const std::vector<ProcId>& waiters() const { return waiters_; }

 private:
  std::vector<ProcId> waiters_;
  std::vector<VarId> v_;  // V[i] local to p_i, allocated for all procs
};

class DsmFixedWaitersTerminating final : public SignalingAlgorithm {
 public:
  DsmFixedWaitersTerminating(SharedMemory& mem, std::vector<ProcId> waiters,
                             ProcId signaler);

  SubTask<bool> poll(ProcCtx& ctx) override;
  SubTask<void> signal(ProcCtx& ctx) override;

  bool has_lowering() const override { return true; }
  void lower_poll(BytecodeBuilder& b, ProcId me, BcReg dst) const override;
  void lower_signal(BytecodeBuilder& b, ProcId me) const override;

  std::string_view name() const override {
    return "dsm-fixed-waiters-terminating";
  }

 private:
  std::vector<ProcId> waiters_;
  ProcId signaler_;
  std::vector<VarId> v_;          // V[i] local to p_i
  std::vector<VarId> present_;    // present_[i] local to the signaler
  std::vector<VarId> announced_;  // announced_[i] local to p_i
};

}  // namespace rmrsim
