// Section 7, "Single waiter": O(1) worst-case RMRs per process in DSM.
//
// Globals W (waiter id, NIL initially) and S (Boolean), plus V[1..N] with
// V[i] local to p_i. The (unique, not fixed in advance) waiter's first
// Poll() writes its id to W and then reads and returns S; subsequent Poll()s
// read V[i] — a spin on the waiter's own module. Signal() sets S, reads W,
// and if a waiter has registered writes true to its V entry. Wait-free.
//
// The "have I registered yet" bit persists across Poll() calls; per the
// replay contract (signaling/algorithm.h) it lives in a variable homed at
// the waiter (reading/writing one's own module is free in DSM).
#pragma once

#include <vector>

#include "memory/shared_memory.h"
#include "signaling/algorithm.h"

namespace rmrsim {

class DsmSingleWaiterSignal final : public SignalingAlgorithm {
 public:
  explicit DsmSingleWaiterSignal(SharedMemory& mem);

  SubTask<bool> poll(ProcCtx& ctx) override;
  SubTask<void> signal(ProcCtx& ctx) override;

  bool has_lowering() const override { return true; }
  void lower_poll(BytecodeBuilder& b, ProcId me, BcReg dst) const override;
  void lower_signal(BytecodeBuilder& b, ProcId me) const override;

  std::string_view name() const override { return "dsm-single-waiter"; }

 private:
  static constexpr Word kNil = -1;
  VarId w_;                       // global: registered waiter id or NIL
  VarId s_;                       // global: signal issued?
  std::vector<VarId> v_;          // V[i] local to p_i: private spin flag
  std::vector<VarId> registered_; // registered_[i] local to p_i
};

}  // namespace rmrsim
