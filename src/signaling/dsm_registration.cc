#include "signaling/dsm_registration.h"

namespace rmrsim {

DsmRegistrationSignal::DsmRegistrationSignal(SharedMemory& mem,
                                             ProcId signaler)
    : signaler_(signaler), s_(mem.allocate_global(0, "S")) {
  reg_.reserve(static_cast<std::size_t>(mem.nprocs()));
  v_.reserve(static_cast<std::size_t>(mem.nprocs()));
  first_done_.reserve(static_cast<std::size_t>(mem.nprocs()));
  for (ProcId i = 0; i < mem.nprocs(); ++i) {
    reg_.push_back(
        mem.allocate_local(signaler_, 0, "Reg[" + std::to_string(i) + "]"));
    v_.push_back(mem.allocate_local(i, 0, "V[" + std::to_string(i) + "]"));
    first_done_.push_back(
        mem.allocate_local(i, 0, "First[" + std::to_string(i) + "]"));
  }
}

SubTask<bool> DsmRegistrationSignal::poll(ProcCtx& ctx) {
  const ProcId me = ctx.id();
  const Word done = co_await ctx.read(first_done_[me]);
  if (done == 0) {
    // First call: register in the signaler's module, then check S. Checking
    // S *after* registering closes the race where Signal() sweeps the
    // registration array just before we appear: either the signaler saw our
    // registration (V will be delivered), or it swept earlier — but then it
    // wrote S before sweeping, so we see S = 1 here.
    co_await ctx.write(reg_[me], 1);
    co_await ctx.write(first_done_[me], 1);
    const Word s = co_await ctx.read(s_);
    co_return s != 0;
  }
  const Word v = co_await ctx.read(v_[me]);
  co_return v != 0;
}

SubTask<void> DsmRegistrationSignal::signal(ProcCtx& ctx) {
  co_await ctx.write(s_, 1);
  for (ProcId i = 0; i < static_cast<ProcId>(reg_.size()); ++i) {
    const Word r = co_await ctx.read(reg_[i]);  // local to the signaler
    if (r != 0) {
      co_await ctx.write(v_[i], 1);  // one RMR per registered waiter
    }
  }
}

void DsmRegistrationSignal::lower_poll(BytecodeBuilder& b, ProcId me,
                                       BcReg dst) const {
  const BcReg t = b.reg();
  const auto spin = b.label();
  const auto end = b.label();
  b.read(t, b.var(first_done_[me]));
  b.jnz(t, spin);
  const BcReg one = b.reg();
  b.load_imm(one, 1);
  b.write(b.var(reg_[me]), one);
  b.write(b.var(first_done_[me]), one);
  b.read(dst, b.var(s_));
  b.ne_imm(dst, dst, 0);
  b.jump(end);
  b.bind(spin);
  b.read(dst, b.var(v_[me]));
  b.ne_imm(dst, dst, 0);
  b.bind(end);
}

void DsmRegistrationSignal::lower_signal(BytecodeBuilder& b, ProcId) const {
  const BcReg one = b.reg();
  b.load_imm(one, 1);
  b.write(b.var(s_), one);
  // The registration sweep is a runtime loop (same read/branch/write order
  // as the coroutine's for-loop) over contiguous table blocks.
  const auto reg_base = b.var_array(reg_);
  const auto v_base = b.var_array(v_);
  const BcReg i = b.reg();
  const BcReg r = b.reg();
  b.load_imm(i, 0);
  const auto top = b.label();
  const auto next = b.label();
  const auto end = b.label();
  b.bind(top);
  b.jeq_imm(i, static_cast<Word>(reg_.size()), end);
  b.read(r, reg_base, /*ix=*/i);
  b.jz(r, next);
  b.write(v_base, one, /*ix=*/i);
  b.bind(next);
  b.add_imm(i, i, 1);
  b.jump(top);
  b.bind(end);
}

}  // namespace rmrsim
