// Executable Specification 4.1 (and its blocking analogue).
//
// Polling semantics, checked over a recorded history:
//   (1) if a Poll() returns true, some Signal() has already *begun* (its
//       begin precedes the Poll's return);
//   (2) if a Poll() returns false, no Signal() *completed* before that
//       Poll() *began*.
// Blocking semantics: a Wait() may return only after some Signal() began.
//
// The checker works purely off call-boundary records, so it applies to every
// algorithm uniformly — including the deliberately broken one used to prove
// the checker has teeth.
//
// Crash-aware: a crash (EventKind::kCrash) abandons the victim's open call —
// the call never returns, so it imposes no obligations — and resets the
// once-per-process Signal() budget, since a recovered program re-executes
// from the top (the RME failure model).
#pragma once

#include <optional>
#include <string>

#include "history/history.h"

namespace rmrsim {

struct SpecViolation {
  std::int64_t step_index = -1;  ///< offending record's history position
  std::string what;
};

/// Checks Specification 4.1 over all Poll/Signal call records in `h`.
/// Returns the first violation found, or nullopt if the history is legal.
std::optional<SpecViolation> check_polling_spec(const History& h);

/// Checks the blocking-semantics safety property over Wait/Signal records.
std::optional<SpecViolation> check_blocking_spec(const History& h);

/// Checks the "at most one Signal() call per process" usage rule of
/// Section 4 (a harness sanity check rather than an algorithm property).
std::optional<SpecViolation> check_signal_once(const History& h);

}  // namespace rmrsim
