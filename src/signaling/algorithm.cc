#include "signaling/algorithm.h"

#include <string>

#include "common/check.h"

namespace rmrsim {

SubTask<void> SignalingAlgorithm::wait(ProcCtx& ctx) {
  // Blocking-from-polling reduction (Section 7 intro): busy-wait by calling
  // the Poll() code repeatedly. Under any fair schedule this returns once
  // Signal() has taken effect.
  for (;;) {
    const bool issued = co_await poll(ctx);
    if (issued) co_return;
  }
}

void SignalingAlgorithm::lower_poll(BytecodeBuilder&, ProcId, BcReg) const {
  fail(std::string(name()) + " does not implement bytecode lowering");
}

void SignalingAlgorithm::lower_signal(BytecodeBuilder&, ProcId) const {
  fail(std::string(name()) + " does not implement bytecode lowering");
}

ProcTask signaling_driver(ProcCtx& ctx, SignalingAlgorithm* alg) {
  for (;;) {
    const Directive d = co_await ctx.next_directive();
    switch (d.action) {
      case signaling_actions::kTerminate:
        co_return;
      case signaling_actions::kPoll: {
        co_await ctx.call_begin(calls::kPoll);
        const bool r = co_await alg->poll(ctx);
        co_await ctx.call_end(calls::kPoll, r ? 1 : 0);
        break;
      }
      case signaling_actions::kSignal: {
        co_await ctx.call_begin(calls::kSignal);
        co_await alg->signal(ctx);
        co_await ctx.call_end(calls::kSignal);
        break;
      }
      case signaling_actions::kWait: {
        co_await ctx.call_begin(calls::kWait);
        co_await alg->wait(ctx);
        co_await ctx.call_end(calls::kWait);
        break;
      }
      default:
        fail("unknown signaling directive");
    }
  }
}

ProcTask polling_waiter(ProcCtx& ctx, SignalingAlgorithm* alg, int max_polls) {
  for (int i = 0; i < max_polls; ++i) {
    co_await ctx.call_begin(calls::kPoll);
    const bool r = co_await alg->poll(ctx);
    co_await ctx.call_end(calls::kPoll, r ? 1 : 0);
    if (r) co_return;
  }
}

ProcTask blocking_waiter(ProcCtx& ctx, SignalingAlgorithm* alg) {
  co_await ctx.call_begin(calls::kWait);
  co_await alg->wait(ctx);
  co_await ctx.call_end(calls::kWait);
}

ProcTask signaler(ProcCtx& ctx, SignalingAlgorithm* alg, int idle_polls) {
  for (int i = 0; i < idle_polls; ++i) {
    co_await ctx.call_begin(calls::kPoll);
    const bool r = co_await alg->poll(ctx);
    co_await ctx.call_end(calls::kPoll, r ? 1 : 0);
  }
  co_await ctx.call_begin(calls::kSignal);
  co_await alg->signal(ctx);
  co_await ctx.call_end(calls::kSignal);
}

}  // namespace rmrsim
