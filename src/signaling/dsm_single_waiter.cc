#include "signaling/dsm_single_waiter.h"

namespace rmrsim {

DsmSingleWaiterSignal::DsmSingleWaiterSignal(SharedMemory& mem)
    : w_(mem.allocate_global(kNil, "W")), s_(mem.allocate_global(0, "S")) {
  v_.reserve(static_cast<std::size_t>(mem.nprocs()));
  registered_.reserve(static_cast<std::size_t>(mem.nprocs()));
  for (ProcId i = 0; i < mem.nprocs(); ++i) {
    v_.push_back(mem.allocate_local(i, 0, "V[" + std::to_string(i) + "]"));
    registered_.push_back(
        mem.allocate_local(i, 0, "Reg[" + std::to_string(i) + "]"));
  }
}

SubTask<bool> DsmSingleWaiterSignal::poll(ProcCtx& ctx) {
  const ProcId me = ctx.id();
  const Word reg = co_await ctx.read(registered_[me]);
  if (reg == 0) {
    // First call: register, then read the global signal flag. The order
    // matters — registering first closes the race where the signaler reads
    // W just before we appear yet S was already set when we check it.
    co_await ctx.write(w_, me);
    co_await ctx.write(registered_[me], 1);
    const Word s = co_await ctx.read(s_);
    co_return s != 0;
  }
  const Word v = co_await ctx.read(v_[me]);
  co_return v != 0;
}

SubTask<void> DsmSingleWaiterSignal::signal(ProcCtx& ctx) {
  co_await ctx.write(s_, 1);
  const Word w = co_await ctx.read(w_);
  if (w != kNil) {
    co_await ctx.write(v_[static_cast<ProcId>(w)], 1);
  }
}

void DsmSingleWaiterSignal::lower_poll(BytecodeBuilder& b, ProcId me,
                                       BcReg dst) const {
  const BcReg t = b.reg();
  const auto spin = b.label();
  const auto end = b.label();
  b.read(t, b.var(registered_[me]));
  b.jnz(t, spin);
  const BcReg me_reg = b.reg();
  b.load_imm(me_reg, me);
  b.write(b.var(w_), me_reg);
  const BcReg one = b.reg();
  b.load_imm(one, 1);
  b.write(b.var(registered_[me]), one);
  b.read(dst, b.var(s_));
  b.ne_imm(dst, dst, 0);
  b.jump(end);
  b.bind(spin);
  b.read(dst, b.var(v_[me]));
  b.ne_imm(dst, dst, 0);
  b.bind(end);
}

void DsmSingleWaiterSignal::lower_signal(BytecodeBuilder& b, ProcId) const {
  const BcReg one = b.reg();
  b.load_imm(one, 1);
  b.write(b.var(s_), one);
  const BcReg w = b.reg();
  b.read(w, b.var(w_));
  const auto end = b.label();
  b.jeq_imm(w, kNil, end);
  b.write(b.var_array(v_), one, /*ix=*/w);
  b.bind(end);
}

}  // namespace rmrsim
