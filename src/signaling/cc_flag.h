// Section 5 upper bound: the single-Boolean CC solution.
//
// One shared Boolean B (false initially). Signal(): B := true. Poll(): read
// and return B. Wait(): busy-wait until B = true. Wait-free, O(1) space,
// reads and writes only, and O(1) RMRs per process in the CC model: the
// paper's ideal-cache definition charges a waiter one RMR for its first read
// of B and one more after the single invalidation caused by the signaler's
// write — every further re-read spins in cache.
//
// Run under the DSM model, this same object is the textbook non-local-spin
// algorithm: a waiter whose module does not host B pays one RMR per Poll(),
// i.e. unbounded total RMRs — the contrast the paper opens with (Section 1)
// and Theorem 6.2 hardens into an impossibility.
#pragma once

#include "memory/shared_memory.h"
#include "signaling/algorithm.h"

namespace rmrsim {

class CcFlagSignal final : public SignalingAlgorithm {
 public:
  /// `home`: module hosting B — kNoProc (detached, remote to everyone in
  /// DSM) by default; tests also home it at a process to show that only that
  /// process spins locally.
  explicit CcFlagSignal(SharedMemory& mem, ProcId home = kNoProc);

  SubTask<bool> poll(ProcCtx& ctx) override;
  SubTask<void> signal(ProcCtx& ctx) override;
  /// Native blocking path: spin directly on B (same cost as the default
  /// reduction; kept explicit to mirror the paper's Section 5 text).
  SubTask<void> wait(ProcCtx& ctx) override;

  bool has_lowering() const override { return true; }
  void lower_poll(BytecodeBuilder& b, ProcId me, BcReg dst) const override;
  void lower_signal(BytecodeBuilder& b, ProcId me) const override;

  std::string_view name() const override { return "cc-flag"; }

  VarId flag_var() const { return b_; }

 private:
  VarId b_;
};

}  // namespace rmrsim
