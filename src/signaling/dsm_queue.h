// Section 7, "Many waiters not fixed in advance, one signaler not fixed in
// advance" — the stronger-primitive escape hatch.
//
// With polling semantics, reads/writes/CAS/LL-SC cannot give O(1) amortized
// RMRs in DSM (Theorem 6.2 / Corollary 6.14). The paper closes the gap with
// Fetch-And-Increment: waiters enqueue themselves on a shared queue; the
// signaler sets a global flag, drains the queue, and delivers each waiter's
// private flag.
//
// Our queue is the classic F&I announcement array: a waiter's first Poll()
// claims slot = FAI(Tail) and writes its id into A[slot]; the signaler reads
// Tail and sweeps A[0..tail). If it observes a claimed-but-not-yet-written
// slot it busy-waits for the announcement (terminating, not wait-free; the
// claimant is one write away). Costs: O(1) worst-case RMRs per waiter, O(k)
// for the signaler with k participating waiters — O(1) amortized, matching
// the paper's claimed bounds for this variant.
#pragma once

#include <vector>

#include "memory/shared_memory.h"
#include "signaling/algorithm.h"

namespace rmrsim {

class DsmQueueSignal final : public SignalingAlgorithm {
 public:
  explicit DsmQueueSignal(SharedMemory& mem);

  SubTask<bool> poll(ProcCtx& ctx) override;
  SubTask<void> signal(ProcCtx& ctx) override;

  bool has_lowering() const override { return true; }
  void lower_poll(BytecodeBuilder& b, ProcId me, BcReg dst) const override;
  void lower_signal(BytecodeBuilder& b, ProcId me) const override;

  std::string_view name() const override { return "dsm-queue-fai"; }

 private:
  static constexpr Word kEmpty = -1;
  VarId s_;                       // global: signal issued?
  VarId tail_;                    // global: next free announcement slot (FAI)
  std::vector<VarId> slots_;      // announcement array, detached module
  std::vector<VarId> v_;          // V[i] local to p_i
  std::vector<VarId> first_done_; // first_done_[i] local to p_i
};

}  // namespace rmrsim
