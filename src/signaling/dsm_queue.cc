#include "signaling/dsm_queue.h"

namespace rmrsim {

DsmQueueSignal::DsmQueueSignal(SharedMemory& mem)
    : s_(mem.allocate_global(0, "S")),
      tail_(mem.allocate_global(0, "Tail")) {
  slots_.reserve(static_cast<std::size_t>(mem.nprocs()));
  v_.reserve(static_cast<std::size_t>(mem.nprocs()));
  first_done_.reserve(static_cast<std::size_t>(mem.nprocs()));
  for (ProcId i = 0; i < mem.nprocs(); ++i) {
    slots_.push_back(
        mem.allocate_global(kEmpty, "A[" + std::to_string(i) + "]"));
    v_.push_back(mem.allocate_local(i, 0, "V[" + std::to_string(i) + "]"));
    first_done_.push_back(
        mem.allocate_local(i, 0, "First[" + std::to_string(i) + "]"));
  }
}

SubTask<bool> DsmQueueSignal::poll(ProcCtx& ctx) {
  const ProcId me = ctx.id();
  const Word done = co_await ctx.read(first_done_[me]);
  if (done == 0) {
    // First call: enqueue (claim a slot, announce our id), then check the
    // global flag. As in the registration variant, checking S after
    // enqueueing closes the race with a concurrent Signal() sweep: either
    // the sweep sees our announcement, or it read Tail before our FAI — but
    // then S was already set when we read it.
    const Word slot = co_await ctx.faa(tail_, 1);
    co_await ctx.write(slots_[static_cast<std::size_t>(slot)], me);
    co_await ctx.write(first_done_[me], 1);
    const Word s = co_await ctx.read(s_);
    co_return s != 0;
  }
  const Word v = co_await ctx.read(v_[me]);
  co_return v != 0;
}

SubTask<void> DsmQueueSignal::signal(ProcCtx& ctx) {
  co_await ctx.write(s_, 1);
  const Word tail = co_await ctx.read(tail_);
  for (Word j = 0; j < tail; ++j) {
    // A slot claimed by FAI is announced by the very next step of its
    // claimant; spin until the id appears (terminating under fairness).
    Word id;
    do {
      id = co_await ctx.read(slots_[static_cast<std::size_t>(j)]);
    } while (id == kEmpty);
    co_await ctx.write(v_[static_cast<ProcId>(id)], 1);
  }
}

void DsmQueueSignal::lower_poll(BytecodeBuilder& b, ProcId me,
                                BcReg dst) const {
  const BcReg t = b.reg();
  const auto spin = b.label();
  const auto end = b.label();
  b.read(t, b.var(first_done_[me]));
  b.jnz(t, spin);
  const BcReg one = b.reg();
  const BcReg slot = b.reg();
  const BcReg me_reg = b.reg();
  b.load_imm(one, 1);
  b.load_imm(me_reg, me);
  b.faa(slot, b.var(tail_), one);
  b.write(b.var_array(slots_), me_reg, /*ix=*/slot);
  b.write(b.var(first_done_[me]), one);
  b.read(dst, b.var(s_));
  b.ne_imm(dst, dst, 0);
  b.jump(end);
  b.bind(spin);
  b.read(dst, b.var(v_[me]));
  b.ne_imm(dst, dst, 0);
  b.bind(end);
}

void DsmQueueSignal::lower_signal(BytecodeBuilder& b, ProcId) const {
  const BcReg one = b.reg();
  b.load_imm(one, 1);
  b.write(b.var(s_), one);
  const BcReg tail = b.reg();
  b.read(tail, b.var(tail_));
  const auto slots_base = b.var_array(slots_);
  const auto v_base = b.var_array(v_);
  const BcReg j = b.reg();
  const BcReg id = b.reg();
  b.load_imm(j, 0);
  const auto top = b.label();
  const auto spin = b.label();
  const auto end = b.label();
  b.bind(top);
  b.jeq(j, tail, end);
  b.bind(spin);
  b.read(id, slots_base, /*ix=*/j);
  b.jeq_imm(id, kEmpty, spin);
  b.write(v_base, one, /*ix=*/id);
  b.add_imm(j, j, 1);
  b.jump(top);
  b.bind(end);
}

}  // namespace rmrsim
