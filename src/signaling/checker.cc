#include "signaling/checker.h"

#include <map>
#include <vector>

namespace rmrsim {

namespace {

struct CallSpan {
  ProcId proc = kNoProc;
  std::int64_t begin = -1;
  std::int64_t end = -1;  ///< -1 while still pending
  Word ret = 0;
};

/// Collects spans of calls with the given code, pairing begins with ends per
/// process (calls do not nest within one process). A crash abandons the
/// victim's open call: the span stays end-less (the call never returned), and
/// a later re-execution after recovery opens a fresh span.
std::vector<CallSpan> collect(const History& h, Word code) {
  std::vector<CallSpan> out;
  std::map<ProcId, std::size_t> open;  // proc -> index into out
  for (const StepRecord& r : h.records()) {
    if (r.kind != StepRecord::Kind::kEvent) continue;
    if (r.event == EventKind::kCrash) {
      open.erase(r.proc);
      continue;
    }
    if (r.code != code) continue;
    if (r.event == EventKind::kCallBegin) {
      open[r.proc] = out.size();
      out.push_back(CallSpan{.proc = r.proc, .begin = r.index});
    } else if (r.event == EventKind::kCallEnd) {
      auto it = open.find(r.proc);
      if (it != open.end()) {
        out[it->second].end = r.index;
        out[it->second].ret = r.value;
        open.erase(it);
      }
    }
  }
  return out;
}

}  // namespace

std::optional<SpecViolation> check_polling_spec(const History& h) {
  const std::vector<CallSpan> polls = collect(h, calls::kPoll);
  const std::vector<CallSpan> signals = collect(h, calls::kSignal);

  std::int64_t first_signal_begin = -1;
  std::int64_t first_signal_end = -1;
  for (const CallSpan& s : signals) {
    if (first_signal_begin < 0 || s.begin < first_signal_begin) {
      first_signal_begin = s.begin;
    }
    if (s.end >= 0 && (first_signal_end < 0 || s.end < first_signal_end)) {
      first_signal_end = s.end;
    }
  }

  for (const CallSpan& p : polls) {
    if (p.end < 0) continue;  // call still pending: no return value yet
    if (p.ret != 0) {
      // Clause 1: some Signal() must have begun before this Poll() returned.
      if (first_signal_begin < 0 || first_signal_begin > p.end) {
        return SpecViolation{
            p.end, "Poll() returned true but no Signal() had begun"};
      }
    } else {
      // Clause 2: no Signal() may have completed before this Poll() began.
      if (first_signal_end >= 0 && first_signal_end < p.begin) {
        return SpecViolation{
            p.end,
            "Poll() returned false although a Signal() completed before it "
            "began"};
      }
    }
  }
  return std::nullopt;
}

std::optional<SpecViolation> check_blocking_spec(const History& h) {
  const std::vector<CallSpan> waits = collect(h, calls::kWait);
  const std::vector<CallSpan> signals = collect(h, calls::kSignal);

  std::int64_t first_signal_begin = -1;
  for (const CallSpan& s : signals) {
    if (first_signal_begin < 0 || s.begin < first_signal_begin) {
      first_signal_begin = s.begin;
    }
  }
  for (const CallSpan& w : waits) {
    if (w.end < 0) continue;
    if (first_signal_begin < 0 || first_signal_begin > w.end) {
      return SpecViolation{
          w.end, "Wait() returned but no Signal() had begun"};
    }
  }
  return std::nullopt;
}

std::optional<SpecViolation> check_signal_once(const History& h) {
  std::map<ProcId, int> begun;
  for (const StepRecord& r : h.records()) {
    if (r.kind != StepRecord::Kind::kEvent) continue;
    if (r.event == EventKind::kCrash) {
      // RME re-execution: a recovered program runs from the top, so a
      // signaler that crashed mid-Signal() legitimately calls it again.
      begun[r.proc] = 0;
      continue;
    }
    if (r.event == EventKind::kCallBegin && r.code == calls::kSignal) {
      if (++begun[r.proc] > 1) {
        return SpecViolation{r.index, "process called Signal() twice"};
      }
    }
  }
  return std::nullopt;
}

}  // namespace rmrsim
