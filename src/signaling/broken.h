// A deliberately incorrect signaling "algorithm".
//
// Poll() consults only the caller's private flag, which Signal() never
// writes for unregistered waiters — so a Poll() that begins after a
// completed Signal() still returns false, violating clause 2 of
// Specification 4.1. Exists to prove that check_polling_spec and the
// adversary's violation detector have teeth (a checker nobody has ever seen
// fail is untested).
#pragma once

#include <vector>

#include "memory/shared_memory.h"
#include "signaling/algorithm.h"

namespace rmrsim {

class BrokenLocalSignal final : public SignalingAlgorithm {
 public:
  explicit BrokenLocalSignal(SharedMemory& mem);

  SubTask<bool> poll(ProcCtx& ctx) override;
  SubTask<void> signal(ProcCtx& ctx) override;

  std::string_view name() const override { return "broken-local"; }

 private:
  VarId s_;              // written by Signal() but never read by Poll()
  std::vector<VarId> v_; // local flags that nobody ever sets
};

}  // namespace rmrsim
