// Deliberately incorrect algorithms — the conviction-suite subjects.
//
// A checker or an explorer nobody has ever seen fail is untested. Each
// class here carries one seeded bug of a realistic shape; the mutation
// tests (tests/mutation_test.cc) convict every one of them with the DPOR
// explorer and shrink the counterexample to a minimal witness. If a
// refactor of the checkers, the explorers, or the independence relation
// ever makes one of these convictions pass silently, that refactor lost
// the teeth these exist to prove.
#pragma once

#include <vector>

#include "memory/shared_memory.h"
#include "mutex/lock.h"
#include "signaling/algorithm.h"

namespace rmrsim {

/// Poll() consults only the caller's private flag, which Signal() never
/// writes for unregistered waiters — so a Poll() that begins after a
/// completed Signal() still returns false, violating clause 2 of
/// Specification 4.1. The bluntest mutant: convictable on any schedule.
class BrokenLocalSignal final : public SignalingAlgorithm {
 public:
  explicit BrokenLocalSignal(SharedMemory& mem);

  SubTask<bool> poll(ProcCtx& ctx) override;
  SubTask<void> signal(ProcCtx& ctx) override;

  std::string_view name() const override { return "broken-local"; }

 private:
  VarId s_;              // written by Signal() but never read by Poll()
  std::vector<VarId> v_; // local flags that nobody ever sets
};

/// DsmRegistrationSignal with the flag write reordered past the
/// registration sweep: Signal() delivers private flags to registered
/// waiters FIRST and only then writes S. The correct order closes the race
/// with a concurrent first Poll() (register, then read S): a waiter the
/// sweep missed is guaranteed to see S = 1. With the order flipped there is
/// a window — sweep passes the not-yet-registered waiter, the waiter
/// registers and reads S = 0, Signal() completes — after which every later
/// Poll() of that waiter reads its never-delivered private flag and returns
/// false: a clause-2 violation on that specific interleaving only.
class LateFlagSignal final : public SignalingAlgorithm {
 public:
  LateFlagSignal(SharedMemory& mem, ProcId signaler);

  SubTask<bool> poll(ProcCtx& ctx) override;
  SubTask<void> signal(ProcCtx& ctx) override;

  std::string_view name() const override { return "late-flag"; }

 private:
  ProcId signaler_;
  VarId s_;                        // global: signal issued (written last!)
  std::vector<VarId> reg_;         // reg_[i] homed at the signaler
  std::vector<VarId> v_;           // V[i] homed at waiter i
  std::vector<VarId> first_done_;  // first_done_[i] homed at waiter i
};

/// CasRegistrationSignal with the retry loop collapsed to a single CAS
/// attempt: a waiter whose push races another waiter's push loses the CAS
/// and carries on as if registered — it marks its first call done without
/// being on the stack. The sweep never reaches it, so after Signal()
/// completes its Polls return false forever: a clause-2 violation that
/// needs two waiters' first Polls overlapping, then a completed Signal().
class DroppedRecheckCasSignal final : public SignalingAlgorithm {
 public:
  explicit DroppedRecheckCasSignal(SharedMemory& mem);

  SubTask<bool> poll(ProcCtx& ctx) override;
  SubTask<void> signal(ProcCtx& ctx) override;

  std::string_view name() const override { return "dropped-recheck-cas"; }

 private:
  static constexpr Word kNil = -1;
  VarId s_;                        // global: signal issued?
  VarId head_;                     // global: top of registration stack
  std::vector<VarId> next_;        // next_[i] homed at waiter i
  std::vector<VarId> v_;           // V[i] homed at waiter i
  std::vector<VarId> first_done_;  // first_done_[i] homed at waiter i
};

/// RecoverableSpinLock with the recovery's owner check replaced by a guess:
/// instead of reading `owner` and releasing only its own hold, recover()
/// consults the caller's doorway flag (`want`) and blindly frees the lock
/// whenever the crash struck past the doorway — "I was in acquire, so I
/// must have held it". Crash-free runs are indistinguishable from the
/// correct lock (want starts 0, so recovery is a no-op), but a process that
/// crashes while merely *spinning* frees somebody else's hold on recovery,
/// and the next CAS steals the critical section. Convictable only by the
/// crash x schedule product.
class BrokenRecoveryLock final : public RecoverableMutexAlgorithm {
 public:
  explicit BrokenRecoveryLock(SharedMemory& mem);

  SubTask<void> acquire(ProcCtx& ctx) override;
  SubTask<void> release(ProcCtx& ctx) override;
  SubTask<void> recover(ProcCtx& ctx) override;

  std::string_view name() const override { return "broken-recovery"; }

 private:
  static constexpr Word kFree = -1;
  VarId owner_;              // global: kFree or the holder's id
  std::vector<VarId> want_;  // want_[p] homed at p: p is past its doorway
};

}  // namespace rmrsim
