// Greedy maximal independent set.
//
// The Section 6.2 construction resolves see/touch conflicts by keeping an
// independent set of the "conflict graph" and erasing the rest; Turán's
// theorem guarantees an independent set of size >= n/(d_avg + 1). The greedy
// minimum-degree algorithm achieves the (stronger) Caro–Wei bound
// sum 1/(deg(v)+1) >= n/(d_avg+1), so using it keeps the construction's
// counting intact.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace rmrsim {

/// Returns an independent set of the graph on vertices 0..n-1 with the given
/// undirected edges (self-loops ignored, duplicates fine), of size at least
/// ceil(n / (d_avg + 1)). Output is sorted ascending.
std::vector<int> greedy_independent_set(
    int n, const std::vector<std::pair<int, int>>& edges);

}  // namespace rmrsim
