// The Section 6 lower-bound adversary, executable.
//
// Theorem 6.2: no deterministic terminating read/write algorithm solves the
// signaling problem (polling semantics, many waiters not fixed in advance,
// signaler not fixed in advance) with O(1) amortized RMRs in the DSM model.
// The proof is a two-part adversarial construction; this class *runs* that
// construction against a concrete algorithm and reports the quantities the
// proof reasons about.
//
// Part 1 (Lemmas 6.10–6.12, Kim–Anderson style): all processes participate
// as waiters, repeatedly calling Poll(). Round by round, each unstable
// waiter advances to its next pending RMR; see/touch conflicts (regularity,
// Definition 6.6) are resolved by erasing everything outside a greedy
// independent set of the conflict graph (Turán bound); same-variable write
// pile-ups trigger the roll-forward case (the last writer finishes and
// leaves), distinct-variable writes the erasing case. Rounds continue until
// every surviving waiter is *stable* (Definition 6.8: it spins on its own
// module, incurring no further RMRs) or the round limit is hit.
//
// Part 2 (Lemma 6.13): each stable waiter completes its pending call; a
// signaler s whose memory module was never written runs Signal() solo. The
// "wild goose chase": whenever s is about to *see* an active waiter (read a
// variable it last wrote) or *touch* one (access its module), that waiter is
// erased just before the step — so s's discovery work is wasted, one RMR per
// stable waiter. A correct algorithm is forced to spend >= one RMR per
// stable waiter while the final history contains only s and the O(1)
// processes finished in part 1: amortized RMRs grow ~ linearly in N.
//
// Two constructions are provided:
//  * kStrict  — the full Section 6 machinery (erasing, roll-forward,
//    invariant checking). Requires the DSM model and a read/write algorithm
//    (Theorem 6.2's hypothesis); stronger primitives are detected and
//    reported as out-of-scope.
//  * kLenient — the simplified Section 7 argument ("the signaler must write
//    remotely to the local memory of each stable waiter"): stabilize all
//    waiters without erasure, then measure the signaler. Works under any
//    model and primitive set; this is also the CC-side control that
//    exhibits the separation.
//
// Erasure is performed in place (Simulation::erase_process) under the exact
// Lemma 6.7 precondition — the erased process was never seen — which the
// runtime re-checks on every erasure.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "memory/shared_memory.h"
#include "signaling/algorithm.h"

namespace rmrsim {

enum class Construction { kStrict, kLenient };

struct AdversaryConfig {
  int nprocs = 32;             ///< total processes (waiters + reserve)
  int reserve = 1;             ///< processes kept aside as signaler candidates
  Construction construction = Construction::kStrict;
  bool erase_during_chase = true;  ///< false = measure-only part 2
  int max_rounds = 16;             ///< part-1 round limit (the proof's c)
  std::uint64_t probe_steps = 64;  ///< stability semi-decision budget
                                   ///< (substitution 4 in DESIGN.md)
  std::uint64_t rmr_cap_per_waiter = 64;  ///< lenient: give up stabilizing a
                                          ///< waiter past this many RMRs
  int unstable_extension_rounds = 8;  ///< Lemma 6.11 branch: extra RMR rounds
  /// Memory factory: defaults to make_dsm(nprocs). kStrict requires DSM.
  std::function<std::unique_ptr<SharedMemory>(int)> make_memory;
};

struct RoundStats {
  int round = 0;
  int active = 0;
  int finished = 0;
  int stable = 0;
  int unstable = 0;
  int erased_this_round = 0;
  bool rolled_forward = false;
  std::uint64_t max_active_rmrs = 0;
  std::uint64_t max_finished_rmrs = 0;
  bool regular = false;  ///< Definition 6.6 check on the round's history
};

struct AdversaryReport {
  std::string algorithm;
  std::string model;
  Construction construction = Construction::kStrict;
  int nprocs = 0;

  // Scope (Theorem 6.2 hypothesis: reads and writes only).
  bool in_scope = true;
  std::string scope_note;

  // Part 1.
  bool stabilized = false;
  int rounds = 0;
  int stable_waiters = 0;       ///< active & stable when part 1 ended
  int finished_after_part1 = 0; ///< rolled-forward processes
  int erased_total = 0;
  std::vector<RoundStats> round_stats;

  // Lemma 6.11 branch: waiters that never stabilize yield unbounded
  // amortized RMRs directly.
  bool unstable_branch = false;
  double unstable_amortized_start = 0.0;
  double unstable_amortized_end = 0.0;

  // Part 2.
  ProcId signaler = kNoProc;
  std::uint64_t signaler_rmrs = 0;
  int erased_during_chase = 0;
  int waiters_delivered = 0;  ///< stable waiters surviving the chase (0 under
                              ///< erasure for a correct algorithm)
  bool spec_violation = false;
  std::string violation_what;

  // Final history H' (after the proof's closing erasures).
  int participants_final = 0;
  std::uint64_t total_rmrs_final = 0;
  /// total_rmrs_final / participants_final — the quantity Theorem 6.2 says
  /// cannot stay bounded. (For the unstable branch, see
  /// unstable_amortized_end instead.)
  double amortized_final = 0.0;

  std::string to_string() const;
};

class SignalingAdversary {
 public:
  using AlgFactory =
      std::function<std::unique_ptr<SignalingAlgorithm>(SharedMemory&)>;

  SignalingAdversary(AlgFactory factory, AdversaryConfig config);

  /// Runs the full construction and returns the measured report.
  AdversaryReport run();

 private:
  enum class Mode { kPollForever, kFinish, kSignalThenFinish, kIdle };
  enum class Stability { kUnknown, kStable, kUnstable };

  bool is_waiter(ProcId p) const;
  bool is_active(ProcId p) const;  // waiter, not finished/erased
  std::vector<ProcId> active_procs() const;
  Directive directive_for(ProcId p);

  /// Advances p to its next pending RMR or diagnoses stability.
  Stability probe(ProcId p);

  /// Erases p (Lemma 6.7) and updates bookkeeping.
  void erase(ProcId p);

  /// Lets a finishing process run to termination, erasing any active process
  /// it is about to see or touch (the part-1 roll-forward rule).
  void roll_forward(ProcId p);

  /// Erases active processes the pending op of `p` would see or touch.
  /// Returns how many were erased.
  int clear_targets(ProcId p);

  bool part1_strict(AdversaryReport& report);
  bool part1_lenient(AdversaryReport& report);
  void unstable_branch(AdversaryReport& report);
  void part2(AdversaryReport& report);

  /// (Re)creates memory, algorithm, simulation and bookkeeping from scratch.
  void build_instance();

  AdversaryConfig config_;
  AlgFactory factory_;
  std::unique_ptr<SharedMemory> mem_;
  std::unique_ptr<SignalingAlgorithm> alg_;
  std::unique_ptr<Simulation> sim_;
  std::vector<Mode> modes_;
  std::vector<Stability> stability_;
  std::vector<bool> signal_issued_;  // per-proc: Signal directive consumed
  int erased_count_ = 0;
  int finished_count_ = 0;
};

}  // namespace rmrsim
