#include "lowerbound/adversary.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"
#include "common/table.h"
#include "lowerbound/independent_set.h"
#include "signaling/checker.h"

namespace rmrsim {

namespace {
constexpr std::uint64_t kStepBudget = 20'000'000;  // global safety valve
}

std::string AdversaryReport::to_string() const {
  std::string out;
  out += "adversary report: alg=" + algorithm + " model=" + model +
         " construction=" +
         (construction == Construction::kStrict ? "strict" : "lenient") +
         " N=" + std::to_string(nprocs) + "\n";
  if (!in_scope) out += "  out of Theorem 6.2 scope: " + scope_note + "\n";
  out += "  part1: rounds=" + std::to_string(rounds) +
         " stabilized=" + (stabilized ? std::string("yes") : std::string("no")) +
         " stable=" + std::to_string(stable_waiters) +
         " finished=" + std::to_string(finished_after_part1) +
         " erased=" + std::to_string(erased_total) + "\n";
  if (unstable_branch) {
    out += "  unstable branch (Lemma 6.11): amortized RMRs " +
           fixed(unstable_amortized_start) + " -> " +
           fixed(unstable_amortized_end) + " under extension\n";
  }
  if (signaler != kNoProc) {
    out += "  part2: signaler=p" + std::to_string(signaler) +
           " rmrs=" + std::to_string(signaler_rmrs) +
           " erased_during_chase=" + std::to_string(erased_during_chase) +
           " delivered=" + std::to_string(waiters_delivered) + "\n";
    out += "  final: participants=" + std::to_string(participants_final) +
           " total_rmrs=" + std::to_string(total_rmrs_final) +
           " amortized=" + fixed(amortized_final) + "\n";
  }
  if (spec_violation) out += "  SPEC VIOLATION: " + violation_what + "\n";
  return out;
}

SignalingAdversary::SignalingAdversary(AlgFactory factory,
                                       AdversaryConfig config)
    : config_(std::move(config)), factory_(std::move(factory)) {
  ensure(config_.nprocs >= 2, "adversary needs at least two processes");
  ensure(config_.reserve >= 1 && config_.reserve < config_.nprocs,
         "need at least one reserve process as signaler candidate");
  build_instance();
}

void SignalingAdversary::build_instance() {
  mem_ = config_.make_memory ? config_.make_memory(config_.nprocs)
                             : make_dsm(config_.nprocs);
  alg_ = factory_(*mem_);
  std::vector<Program> programs;
  SignalingAlgorithm* alg = alg_.get();
  for (int i = 0; i < config_.nprocs; ++i) {
    programs.emplace_back(
        [alg](ProcCtx& ctx) { return signaling_driver(ctx, alg); });
  }
  sim_ = std::make_unique<Simulation>(
      *mem_, std::move(programs),
      [this](ProcId p, int) { return directive_for(p); });
  modes_.assign(static_cast<std::size_t>(config_.nprocs), Mode::kPollForever);
  stability_.assign(static_cast<std::size_t>(config_.nprocs),
                    Stability::kUnknown);
  signal_issued_.assign(static_cast<std::size_t>(config_.nprocs), false);
  for (int i = config_.nprocs - config_.reserve; i < config_.nprocs; ++i) {
    modes_[static_cast<std::size_t>(i)] = Mode::kIdle;
  }
  erased_count_ = 0;
  finished_count_ = 0;
}

bool SignalingAdversary::is_waiter(ProcId p) const {
  return p >= 0 && p < config_.nprocs - config_.reserve;
}

bool SignalingAdversary::is_active(ProcId p) const {
  return is_waiter(p) && !sim_->terminated(p);
}

std::vector<ProcId> SignalingAdversary::active_procs() const {
  std::vector<ProcId> out;
  for (ProcId p = 0; p < config_.nprocs; ++p) {
    if (is_active(p)) out.push_back(p);
  }
  return out;
}

Directive SignalingAdversary::directive_for(ProcId p) {
  switch (modes_[static_cast<std::size_t>(p)]) {
    case Mode::kPollForever:
      return Directive{signaling_actions::kPoll, 0};
    case Mode::kFinish:
      return Directive{Directive::kTerminate, 0};
    case Mode::kSignalThenFinish:
      if (!signal_issued_[static_cast<std::size_t>(p)]) {
        signal_issued_[static_cast<std::size_t>(p)] = true;
        return Directive{signaling_actions::kSignal, 0};
      }
      return Directive{Directive::kTerminate, 0};
    case Mode::kIdle:
      break;
  }
  fail("idle (reserve) process asked for a directive");
}

SignalingAdversary::Stability SignalingAdversary::probe(ProcId p) {
  if (stability_[static_cast<std::size_t>(p)] == Stability::kStable) {
    return Stability::kStable;
  }
  const auto stop = sim_->run_until_rmr_pending(p, config_.probe_steps);
  switch (stop) {
    case Simulation::Stop::kRmrPending:
      stability_[static_cast<std::size_t>(p)] = Stability::kUnstable;
      return Stability::kUnstable;
    case Simulation::Stop::kBudget:
      // Semi-decision (DESIGN.md substitution 4): a whole probe window of
      // local-only steps means the waiter is spinning on its own module.
      stability_[static_cast<std::size_t>(p)] = Stability::kStable;
      return Stability::kStable;
    case Simulation::Stop::kTerminated:
      break;
  }
  fail("waiter terminated while being probed (drivers poll forever)");
}

void SignalingAdversary::erase(ProcId p) {
  sim_->erase_process(p);
  stability_[static_cast<std::size_t>(p)] = Stability::kUnknown;
  ++erased_count_;
}

int SignalingAdversary::clear_targets(ProcId p) {
  int erased = 0;
  for (;;) {
    const PendingAction& a = sim_->pending(p);
    if (a.kind != ActionKind::kMemOp) break;
    const VarId v = a.op.var;
    const ProcId home = mem_->store().home(v);
    if (home != p && is_active(home)) {
      erase(home);
      ++erased;
      continue;
    }
    if (reads_value(a.op.type)) {
      const ProcId writer = sim_->history().last_writer(v);
      if (writer != p && writer != kNoProc && is_active(writer)) {
        erase(writer);
        ++erased;
        continue;
      }
    }
    break;
  }
  return erased;
}

void SignalingAdversary::roll_forward(ProcId p) {
  // Let p complete its ongoing call and terminate, erasing any active
  // process it is about to see or touch. A read/write algorithm's Poll()
  // completes solo; an algorithm that busy-waits *locally* inside a call
  // (e.g. behind an emulated lock) can park forever — Definition 6.8 calls
  // such a process stable but it can never finish, so we stop after a
  // bounded budget and leave it active (recorded via the round's regularity
  // flag).
  modes_[static_cast<std::size_t>(p)] = Mode::kFinish;
  constexpr std::uint64_t kRollBudget = 1'000'000;
  std::uint64_t guard = 0;
  while (!sim_->terminated(p)) {
    if (++guard >= kRollBudget) return;  // parked in a local spin
    if (sim_->pending(p).kind == ActionKind::kMemOp) {
      clear_targets(p);
    }
    sim_->step(p);
  }
  ++finished_count_;
}

bool SignalingAdversary::part1_strict(AdversaryReport& report) {
  for (int round = 1; round <= config_.max_rounds; ++round) {
    // Advance every active waiter to its next pending RMR, or certify it
    // stable (Definition 6.8).
    std::vector<ProcId> unstable;
    for (const ProcId p : active_procs()) {
      if (probe(p) == Stability::kUnstable) {
        const MemOp& op = sim_->pending(p).op;
        if (op.type != OpType::kRead && op.type != OpType::kWrite) {
          report.in_scope = false;
          report.scope_note =
              "process p" + std::to_string(p) + " is about to apply " +
              rmrsim::to_string(op) +
              "; Theorem 6.2's construction covers reads and writes "
              "(stronger primitives escape it — Section 7)";
          return false;
        }
        unstable.push_back(p);
      }
    }

    RoundStats stats;
    stats.round = round;
    const int erased_before = erased_count_;

    if (unstable.empty()) {
      report.stabilized = true;
      report.rounds = round - 1;
      return true;
    }

    // --- Regularity conditions 1–2 (Definition 6.6): conflict graph over
    // active processes, greedy independent set (Turán), erase the rest.
    {
      const std::vector<ProcId> actives = active_procs();
      std::map<ProcId, int> idx;
      for (std::size_t i = 0; i < actives.size(); ++i) {
        idx[actives[i]] = static_cast<int>(i);
      }
      std::vector<std::pair<int, int>> edges;
      for (const ProcId p : unstable) {
        const MemOp& op = sim_->pending(p).op;
        const ProcId home = mem_->store().home(op.var);
        if (home != p && idx.count(home) != 0) {
          edges.emplace_back(idx[p], idx[home]);
        }
        if (reads_value(op.type)) {
          const ProcId writer = sim_->history().last_writer(op.var);
          if (writer != p && writer != kNoProc && idx.count(writer) != 0) {
            edges.emplace_back(idx[p], idx[writer]);
          }
        }
      }
      if (!edges.empty()) {
        const std::vector<int> keep = greedy_independent_set(
            static_cast<int>(actives.size()), edges);
        std::vector<bool> kept(actives.size(), false);
        for (const int k : keep) kept[static_cast<std::size_t>(k)] = true;
        for (std::size_t i = 0; i < actives.size(); ++i) {
          if (!kept[i]) erase(actives[i]);
        }
      }
    }

    // --- Apply the pending reads (they cannot violate condition 3).
    std::vector<ProcId> writers;
    for (const ProcId p : unstable) {
      if (!is_active(p)) continue;  // erased above
      const MemOp op = sim_->pending(p).op;
      if (op.type == OpType::kRead) {
        sim_->step(p);
        stability_[static_cast<std::size_t>(p)] = Stability::kUnknown;
      } else {
        writers.push_back(p);
      }
    }

    // --- Condition 3: pending writes.
    if (!writers.empty()) {
      std::map<VarId, std::vector<ProcId>> by_var;
      for (const ProcId p : writers) {
        by_var[sim_->pending(p).op.var].push_back(p);
      }
      const auto x = static_cast<std::uint64_t>(writers.size());
      const auto threshold = static_cast<std::size_t>(std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(std::floor(std::sqrt(
                 static_cast<double>(x))))));
      auto big = by_var.end();
      for (auto it = by_var.begin(); it != by_var.end(); ++it) {
        if (it->second.size() >= threshold &&
            (big == by_var.end() || it->second.size() > big->second.size())) {
          big = it;
        }
      }
      if (big != by_var.end() && big->second.size() >= 2) {
        // Roll-forward case: erase all unstable writers aimed elsewhere,
        // apply the pile-up writes in id order, roll the last writer
        // forward.
        stats.rolled_forward = true;
        for (const ProcId p : writers) {
          if (is_active(p) &&
              std::find(big->second.begin(), big->second.end(), p) ==
                  big->second.end()) {
            erase(p);
          }
        }
        ProcId last = kNoProc;
        for (const ProcId p : big->second) {
          sim_->step(p);
          stability_[static_cast<std::size_t>(p)] = Stability::kUnknown;
          last = p;
        }
        roll_forward(last);
      } else {
        // Erasing case: one writer per variable...
        std::vector<ProcId> kept_writers;
        for (auto& [var, ps] : by_var) {
          std::sort(ps.begin(), ps.end());
          kept_writers.push_back(ps.front());
          for (std::size_t i = 1; i < ps.size(); ++i) {
            if (is_active(ps[i])) erase(ps[i]);
          }
        }
        // ...then resolve writes into variables previously written: erase
        // the writer when a previous writer already finished (condition 3
        // could never be repaired), otherwise put an edge to each active
        // previous writer and keep an independent set.
        const std::vector<ProcId> actives = active_procs();
        std::map<ProcId, int> idx;
        for (std::size_t i = 0; i < actives.size(); ++i) {
          idx[actives[i]] = static_cast<int>(i);
        }
        std::vector<std::pair<int, int>> edges;
        for (const ProcId p : kept_writers) {
          if (!is_active(p)) continue;
          const VarId v = sim_->pending(p).op.var;
          bool doomed = false;
          for (const ProcId q : sim_->history().writers_of(v)) {
            if (q == p) continue;
            if (is_active(q)) {
              edges.emplace_back(idx[p], idx[q]);
            } else {
              doomed = true;  // previous writer finished: cannot keep p
            }
          }
          if (doomed) erase(p);
        }
        std::erase_if(edges, [&](const std::pair<int, int>& e) {
          return !is_active(actives[static_cast<std::size_t>(e.first)]) ||
                 !is_active(actives[static_cast<std::size_t>(e.second)]);
        });
        if (!edges.empty()) {
          const std::vector<int> keep = greedy_independent_set(
              static_cast<int>(actives.size()), edges);
          std::vector<bool> kept(actives.size(), false);
          for (const int k : keep) kept[static_cast<std::size_t>(k)] = true;
          for (std::size_t i = 0; i < actives.size(); ++i) {
            if (!kept[i] && is_active(actives[i])) erase(actives[i]);
          }
        }
        for (const ProcId p : kept_writers) {
          if (!is_active(p)) continue;
          sim_->step(p);
          stability_[static_cast<std::size_t>(p)] = Stability::kUnknown;
        }
      }
    }

    // --- Round bookkeeping and invariant reporting (Definition 6.9 echo).
    stats.active = static_cast<int>(active_procs().size());
    stats.finished = finished_count_;
    stats.erased_this_round = erased_count_ - erased_before;
    int stable = 0;
    std::uint64_t max_active = 0;
    for (const ProcId p : active_procs()) {
      if (stability_[static_cast<std::size_t>(p)] == Stability::kStable) {
        ++stable;
      }
      max_active = std::max(max_active, mem_->ledger().rmrs(p));
    }
    stats.stable = stable;
    stats.unstable = stats.active - stable;
    for (ProcId p = 0; p < config_.nprocs; ++p) {
      if (is_waiter(p) && sim_->terminated(p) && !sim_->erased(p)) {
        stats.max_finished_rmrs =
            std::max(stats.max_finished_rmrs, mem_->ledger().rmrs(p));
      }
    }
    stats.max_active_rmrs = max_active;
    stats.regular = sim_->history().is_regular();
    report.round_stats.push_back(stats);
    report.rounds = round;
  }
  // Round limit hit; stabilized iff no unstable waiter remains.
  report.stabilized = true;
  for (const ProcId p : active_procs()) {
    if (probe(p) == Stability::kUnstable) {
      report.stabilized = false;
      break;
    }
  }
  return report.stabilized;
}

bool SignalingAdversary::part1_lenient(AdversaryReport& report) {
  // Simplified Section 7 argument: no erasure — just let every waiter run
  // (applying its RMRs) until it spins locally or busts the RMR cap.
  bool all_stable = true;
  for (const ProcId p : active_procs()) {
    for (;;) {
      if (probe(p) == Stability::kStable) break;
      if (mem_->ledger().rmrs(p) >= config_.rmr_cap_per_waiter) {
        all_stable = false;
        break;
      }
      sim_->step(p);  // apply the pending RMR
      stability_[static_cast<std::size_t>(p)] = Stability::kUnknown;
    }
  }
  report.rounds = 1;
  report.stabilized = all_stable;
  return all_stable;
}

void SignalingAdversary::unstable_branch(AdversaryReport& report) {
  // Lemma 6.11's contradiction branch, run forward: waiters that never
  // stabilize keep paying RMRs while the participant set stays fixed, so
  // amortized RMRs grow without bound. We extend the history a few rounds
  // and report the trajectory.
  std::vector<ProcId> unstable;
  for (const ProcId p : active_procs()) {
    if (stability_[static_cast<std::size_t>(p)] != Stability::kStable) {
      unstable.push_back(p);
    }
  }
  if (unstable.empty()) return;
  report.unstable_branch = true;
  const auto participants = [&] {
    return std::max<std::size_t>(1, sim_->history().participants().size());
  };
  report.unstable_amortized_start =
      static_cast<double>(sim_->history().total_rmrs()) /
      static_cast<double>(participants());
  for (int t = 0; t < config_.unstable_extension_rounds; ++t) {
    for (const ProcId p : unstable) {
      if (!is_active(p)) continue;
      if (sim_->run_until_rmr_pending(p, config_.probe_steps) ==
          Simulation::Stop::kRmrPending) {
        if (config_.construction == Construction::kStrict) {
          clear_targets(p);
        }
        sim_->step(p);
      }
    }
  }
  report.unstable_amortized_end =
      static_cast<double>(sim_->history().total_rmrs()) /
      static_cast<double>(participants());
}

void SignalingAdversary::part2(AdversaryReport& report) {
  // Let each stable waiter complete its pending Poll() and come to rest
  // between calls. Stability guarantees this costs no RMRs. A waiter that
  // busy-waits locally *inside* a call (possible for lock-based transformed
  // algorithms) is stable by Definition 6.8 yet can never complete; such
  // waiters are left parked — they never completed a Poll(), so they place
  // no Specification 4.1 obligation on the signaler and are excluded from
  // the stable-waiter count.
  constexpr std::uint64_t kCompleteBudget = 100'000;
  std::vector<ProcId> quiescent;
  for (const ProcId p : active_procs()) {
    std::uint64_t guard = 0;
    bool done = true;
    while (sim_->pending(p).kind != ActionKind::kDirective) {
      if (++guard >= kCompleteBudget) {
        done = false;  // parked in a local spin mid-call
        break;
      }
      if (sim_->pending(p).kind == ActionKind::kMemOp) {
        ensure(!sim_->pending_is_rmr(p),
               "stable process attempted an RMR while completing its call");
      }
      sim_->step(p);
    }
    if (done) quiescent.push_back(p);
  }

  const int k_stable = static_cast<int>(quiescent.size());
  report.stable_waiters = k_stable;

  // Choose the signaler: a reserve process whose module was never written
  // (Lemma 6.13's pigeonhole, satisfied by construction here).
  ProcId s = kNoProc;
  for (int i = config_.nprocs - config_.reserve; i < config_.nprocs; ++i) {
    if (!sim_->history().module_written(static_cast<ProcId>(i)) &&
        !sim_->history().participated(static_cast<ProcId>(i))) {
      s = static_cast<ProcId>(i);
      break;
    }
  }
  ensure(s != kNoProc, "no reserve process with an unwritten module");
  report.signaler = s;
  modes_[static_cast<std::size_t>(s)] = Mode::kSignalThenFinish;

  // The wild goose chase: erase each active waiter just before s would see
  // or touch it, then let s take the (now remote-to-nobody-useful) step.
  std::uint64_t guard = 0;
  while (!sim_->terminated(s)) {
    ensure(++guard < kStepBudget, "Signal() exceeded the step budget — the "
                                  "algorithm may not be terminating");
    if (config_.erase_during_chase &&
        sim_->pending(s).kind == ActionKind::kMemOp) {
      report.erased_during_chase += clear_targets(s);
    }
    sim_->step(s);
  }
  report.signaler_rmrs = mem_->ledger().rmrs(s);
  report.waiters_delivered = static_cast<int>(active_procs().size());

  // Violation detector: every surviving quiescent waiter polls once more;
  // by Specification 4.1 the call must return true now that Signal()
  // completed. (Parked waiters never complete calls and carry no such
  // obligation.)
  std::erase_if(quiescent, [this](ProcId p) { return !is_active(p); });
  for (const ProcId p : quiescent) {
    std::uint64_t inner = 0;
    Word ret = -1;
    for (;;) {
      ensure(++inner < kStepBudget, "final poll exceeded step budget");
      const StepRecord& rec = sim_->step(p);
      if (rec.kind == StepRecord::Kind::kEvent &&
          rec.event == EventKind::kCallEnd && rec.code == calls::kPoll) {
        ret = rec.value;
        break;
      }
    }
    if (ret == 0 && !report.spec_violation) {
      report.spec_violation = true;
      report.violation_what =
          "stable waiter p" + std::to_string(p) +
          " polled false after Signal() completed (Specification 4.1 "
          "clause 2)";
    }
  }
  if (const auto v = check_polling_spec(sim_->history());
      v.has_value() && !report.spec_violation) {
    report.spec_violation = true;
    report.violation_what = v->what;
  }

  // Closing erasures (Lemma 6.13): with the chase enabled, the remaining
  // active waiters were never seen or touched, so erasing them leaves only
  // s and the part-1 finishers in H'. (Skipped in measure-only mode, where
  // s legitimately communicated with everyone.)
  if (config_.erase_during_chase) {
    for (const ProcId p : active_procs()) {
      if (!sim_->history().seen_by_other(p)) erase(p);
    }
  }
  report.participants_final =
      static_cast<int>(sim_->history().participants().size());
  report.total_rmrs_final = sim_->history().total_rmrs();
  report.amortized_final =
      report.participants_final == 0
          ? 0.0
          : static_cast<double>(report.total_rmrs_final) /
                static_cast<double>(report.participants_final);
}

AdversaryReport SignalingAdversary::run() {
  AdversaryReport report;
  report.algorithm = std::string(alg_->name());
  report.model = std::string(mem_->model().name());
  report.construction = config_.construction;
  report.nprocs = config_.nprocs;

  bool stabilized = false;
  if (config_.construction == Construction::kStrict) {
    ensure(mem_->model().pricing_is_stateless(),
           "the strict (Theorem 6.2) construction operates in the DSM model");
    stabilized = part1_strict(report);
    if (!report.in_scope) {
      // Stronger primitives escape the construction; fall back to the
      // lenient measurement so the report still carries the Section 7
      // quantities. Chase erasure is part of the strict construction only:
      // with e.g. FAI chains, erasing the (unseen) last enqueuer makes its
      // predecessor unseen in turn, legally cascading the whole queue away —
      // a history with zero registered waiters, which FAI algorithms serve
      // in O(1) and which therefore measures nothing.
      build_instance();
      config_.construction = Construction::kLenient;
      config_.erase_during_chase = false;
      report.construction = Construction::kLenient;
      stabilized = part1_lenient(report);
    }
  } else {
    stabilized = part1_lenient(report);
  }
  report.finished_after_part1 = finished_count_;
  report.erased_total = erased_count_;

  if (!stabilized) {
    unstable_branch(report);
    // Also record how many waiters did stabilize, for the tables.
    int stable = 0;
    for (const ProcId p : active_procs()) {
      if (stability_[static_cast<std::size_t>(p)] == Stability::kStable) {
        ++stable;
      }
    }
    report.stable_waiters = stable;
    return report;
  }

  part2(report);
  return report;
}

}  // namespace rmrsim
