#include "lowerbound/independent_set.h"

#include <algorithm>

#include "common/check.h"

namespace rmrsim {

std::vector<int> greedy_independent_set(
    int n, const std::vector<std::pair<int, int>>& edges) {
  ensure(n >= 0, "vertex count must be non-negative");
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (const auto& [a, b] : edges) {
    ensure(a >= 0 && a < n && b >= 0 && b < n, "edge endpoint out of range");
    if (a == b) continue;
    adj[static_cast<std::size_t>(a)].push_back(b);
    adj[static_cast<std::size_t>(b)].push_back(a);
  }
  std::vector<int> degree(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    auto& nb = adj[static_cast<std::size_t>(v)];
    std::sort(nb.begin(), nb.end());
    nb.erase(std::unique(nb.begin(), nb.end()), nb.end());
    degree[static_cast<std::size_t>(v)] = static_cast<int>(nb.size());
  }

  enum class State : std::uint8_t { kLive, kTaken, kRemoved };
  std::vector<State> state(static_cast<std::size_t>(n), State::kLive);
  std::vector<int> out;
  for (int taken = 0; taken < n;) {
    // Pick the live vertex of minimum current degree.
    int best = -1;
    for (int v = 0; v < n; ++v) {
      if (state[static_cast<std::size_t>(v)] != State::kLive) continue;
      if (best < 0 || degree[static_cast<std::size_t>(v)] <
                          degree[static_cast<std::size_t>(best)]) {
        best = v;
      }
    }
    if (best < 0) break;
    state[static_cast<std::size_t>(best)] = State::kTaken;
    out.push_back(best);
    ++taken;
    for (const int u : adj[static_cast<std::size_t>(best)]) {
      if (state[static_cast<std::size_t>(u)] != State::kLive) continue;
      state[static_cast<std::size_t>(u)] = State::kRemoved;
      for (const int w : adj[static_cast<std::size_t>(u)]) {
        if (state[static_cast<std::size_t>(w)] == State::kLive) {
          --degree[static_cast<std::size_t>(w)];
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace rmrsim
