// SessionGme — a Keane–Moir-style session lock, plus the mutex baseline.
//
// State (all guarded by an internal mutex, so plain reads/writes suffice):
//   cur_session  — session currently in the room (NIL if empty)
//   occupancy    — processes inside
//   wait queue   — FIFO of (process, session) requests that must wait
//
// enter(p, s): take the mutex; if the room is empty, or runs s with nobody
// queued (queued processes have priority to avoid starvation), walk in.
// Otherwise append (p, s) to the queue, release the mutex, and spin on a
// flag in p's own module. exit(p): take the mutex; if the room empties and
// the queue is non-empty, admit the *batch*: the queue's head and every
// queued request for the same session, waking each by a single remote write
// to its flag.
//
// RMR cost per passage = O(inner mutex) + O(1): with the MCS inner lock the
// whole thing is O(1) amortized in both models; with Yang–Anderson it is
// O(log N) using reads/writes only — the flavor [20] made standard.
#pragma once

#include <memory>
#include <vector>

#include "gme/gme.h"
#include "memory/shared_memory.h"
#include "mutex/lock.h"

namespace rmrsim {

/// Degenerate baseline: GME via a plain mutex (no sharing).
class MutexGme final : public GmeAlgorithm {
 public:
  MutexGme(SharedMemory& mem, std::unique_ptr<MutexAlgorithm> inner);
  SubTask<void> enter(ProcCtx& ctx, Word session) override;
  SubTask<void> exit(ProcCtx& ctx) override;
  std::string_view name() const override { return "mutex-gme"; }

 private:
  std::unique_ptr<MutexAlgorithm> inner_;
};

class SessionGme final : public GmeAlgorithm {
 public:
  SessionGme(SharedMemory& mem, std::unique_ptr<MutexAlgorithm> inner);

  SubTask<void> enter(ProcCtx& ctx, Word session) override;
  SubTask<void> exit(ProcCtx& ctx) override;
  std::string_view name() const override { return "session-gme"; }

 private:
  static constexpr Word kNil = -1;
  std::unique_ptr<MutexAlgorithm> inner_;
  VarId cur_session_;
  VarId occupancy_;
  VarId queue_head_;               // index of first waiting entry
  VarId queue_tail_;               // index one past the last waiting entry
  std::vector<VarId> queue_proc_;  // bounded ring: queued process ids
  std::vector<VarId> queue_sess_;  // bounded ring: their sessions
  std::vector<VarId> go_;          // go_[p] homed at p: wakeup flag
  int ring_ = 0;
};

}  // namespace rmrsim
