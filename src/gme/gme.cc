#include "gme/gme.h"

#include <algorithm>
#include <map>

namespace rmrsim {

ProcTask gme_worker(ProcCtx& ctx, GmeAlgorithm* alg, int passages,
                    std::vector<Word> sessions, int cs_dwell) {
  for (int i = 0; i < passages; ++i) {
    const Word session = sessions[static_cast<std::size_t>(i) % sessions.size()];
    co_await ctx.call_begin(calls::kGmeEnter);
    co_await alg->enter(ctx, session);
    co_await ctx.call_end(calls::kGmeEnter, session);
    for (int d = 0; d < cs_dwell; ++d) {
      co_await ctx.mark(/*code=*/100, /*value=*/d);  // dwell inside the CS
    }
    co_await ctx.call_begin(calls::kGmeExit);
    co_await alg->exit(ctx);
    co_await ctx.call_end(calls::kGmeExit);
  }
}

std::optional<GmeViolation> check_gme_safety(const History& h) {
  // Occupancy interval: from the end of enter() to the begin of exit() —
  // the span in which the process definitely holds the critical section.
  std::map<ProcId, Word> inside;  // proc -> session
  for (const StepRecord& r : h.records()) {
    if (r.kind != StepRecord::Kind::kEvent) continue;
    if (r.event == EventKind::kCallEnd && r.code == calls::kGmeEnter) {
      for (const auto& [q, session] : inside) {
        if (session != r.value) {
          return GmeViolation{
              r.index, "p" + std::to_string(r.proc) + " entered session " +
                           std::to_string(r.value) + " while p" +
                           std::to_string(q) + " holds session " +
                           std::to_string(session)};
        }
      }
      inside[r.proc] = r.value;
    } else if (r.event == EventKind::kCallBegin &&
               r.code == calls::kGmeExit) {
      inside.erase(r.proc);
    }
  }
  return std::nullopt;
}

int max_cs_occupancy(const History& h) {
  int inside = 0;
  int best = 0;
  for (const StepRecord& r : h.records()) {
    if (r.kind != StepRecord::Kind::kEvent) continue;
    if (r.event == EventKind::kCallEnd && r.code == calls::kGmeEnter) {
      best = std::max(best, ++inside);
    } else if (r.event == EventKind::kCallBegin &&
               r.code == calls::kGmeExit) {
      --inside;
    }
  }
  return best;
}

}  // namespace rmrsim
