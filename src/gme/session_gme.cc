#include "gme/session_gme.h"

namespace rmrsim {

MutexGme::MutexGme(SharedMemory&, std::unique_ptr<MutexAlgorithm> inner)
    : inner_(std::move(inner)) {}

SubTask<void> MutexGme::enter(ProcCtx& ctx, Word /*session*/) {
  co_await inner_->acquire(ctx);
}

SubTask<void> MutexGme::exit(ProcCtx& ctx) { co_await inner_->release(ctx); }

SessionGme::SessionGme(SharedMemory& mem,
                       std::unique_ptr<MutexAlgorithm> inner)
    : inner_(std::move(inner)),
      cur_session_(mem.allocate_global(kNil, "CurSession")),
      occupancy_(mem.allocate_global(0, "Occupancy")),
      queue_head_(mem.allocate_global(0, "QHead")),
      queue_tail_(mem.allocate_global(0, "QTail")),
      ring_(mem.nprocs()) {
  for (int i = 0; i < ring_; ++i) {
    queue_proc_.push_back(
        mem.allocate_global(kNil, "QProc[" + std::to_string(i) + "]"));
    queue_sess_.push_back(
        mem.allocate_global(kNil, "QSess[" + std::to_string(i) + "]"));
  }
  for (ProcId p = 0; p < mem.nprocs(); ++p) {
    go_.push_back(mem.allocate_local(p, 0, "Go[" + std::to_string(p) + "]"));
  }
}

SubTask<void> SessionGme::enter(ProcCtx& ctx, Word session) {
  const ProcId me = ctx.id();
  co_await inner_->acquire(ctx);
  const Word occ = co_await ctx.read(occupancy_);
  const Word head = co_await ctx.read(queue_head_);
  const Word tail = co_await ctx.read(queue_tail_);
  if (occ == 0) {
    // Invariant: an emptying exit admits the next batch while holding the
    // lock, so an empty room implies an empty queue — walk right in.
    co_await ctx.write(cur_session_, session);
    co_await ctx.write(occupancy_, 1);
    co_await inner_->release(ctx);
    co_return;
  }
  const Word cur = co_await ctx.read(cur_session_);
  if (cur == session && head == tail) {
    // Join the running session — but only when nobody is queued, so queued
    // requests for other sessions cannot starve behind a live session.
    co_await ctx.write(occupancy_, occ + 1);
    co_await inner_->release(ctx);
    co_return;
  }
  // Wait: enqueue under the lock, then spin on our own module.
  co_await ctx.write(go_[me], 0);
  const std::size_t slot = static_cast<std::size_t>(tail % ring_);
  co_await ctx.write(queue_proc_[slot], me);
  co_await ctx.write(queue_sess_[slot], session);
  co_await ctx.write(queue_tail_, tail + 1);
  co_await inner_->release(ctx);
  for (;;) {
    const Word go = co_await ctx.read(go_[me]);  // local spin
    if (go != 0) co_return;  // the admitting exiter updated all state
  }
}

SubTask<void> SessionGme::exit(ProcCtx& ctx) {
  co_await inner_->acquire(ctx);
  const Word occ = co_await ctx.read(occupancy_);
  if (occ > 1) {
    co_await ctx.write(occupancy_, occ - 1);
    co_await inner_->release(ctx);
    co_return;
  }
  // Room empties: admit the longest same-session prefix of the queue (an
  // FCFS batch), waking each member with one remote write.
  const Word head = co_await ctx.read(queue_head_);
  const Word tail = co_await ctx.read(queue_tail_);
  if (head == tail) {
    co_await ctx.write(occupancy_, 0);
    co_await ctx.write(cur_session_, kNil);
    co_await inner_->release(ctx);
    co_return;
  }
  const Word batch_session = co_await ctx.read(
      queue_sess_[static_cast<std::size_t>(head % ring_)]);
  Word end = head;
  while (end != tail) {
    const Word s = co_await ctx.read(
        queue_sess_[static_cast<std::size_t>(end % ring_)]);
    if (s != batch_session) break;
    ++end;
  }
  co_await ctx.write(cur_session_, batch_session);
  co_await ctx.write(occupancy_, end - head);
  co_await ctx.write(queue_head_, end);
  for (Word i = head; i != end; ++i) {
    const Word w = co_await ctx.read(
        queue_proc_[static_cast<std::size_t>(i % ring_)]);
    co_await ctx.write(go_[static_cast<ProcId>(w)], 1);
  }
  co_await inner_->release(ctx);
}

}  // namespace rmrsim
