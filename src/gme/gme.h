// Group mutual exclusion (GME) — the problem behind the separation the
// paper builds on (Sections 1, 3).
//
// GME generalizes ME: each request carries a session id, and processes may
// share the critical section iff they requested the same session. The
// Hadzilacos–Danek result [8] — two-session GME costs Theta(N) RMRs in DSM
// but O(log N) in CC — was the first CC/DSM separation and the direct
// inspiration for the paper's signaling result. This module provides the
// problem (interface + safety checker + drivers) and two algorithms:
//
//  * MutexGme       — degenerate baseline: a plain mutex, ignoring the
//                     sharing opportunity (correct, zero concurrency);
//  * SessionGme     — a Keane–Moir-style session lock: a small state
//                     machine (current session, occupancy count, FIFO wait
//                     queue) guarded by an internal mutex; blocked
//                     processes spin on per-process flags in their own
//                     modules, and an exiting process that empties the room
//                     admits the whole next session batch.
//
// The gme bench contrasts their concurrency and RMR bills across models.
#pragma once

#include <optional>
#include <string>

#include "history/history.h"
#include "runtime/coro.h"
#include "runtime/proc_ctx.h"
#include "runtime/simulation.h"

namespace rmrsim {

class GmeAlgorithm {
 public:
  virtual ~GmeAlgorithm() = default;

  /// Enters the critical section for `session`; returns holding it.
  virtual SubTask<void> enter(ProcCtx& ctx, Word session) = 0;

  /// Leaves the critical section.
  virtual SubTask<void> exit(ProcCtx& ctx) = 0;

  virtual std::string_view name() const = 0;
};

/// Worker: `passages` enter/exit cycles; the session of passage i is
/// sessions[i % sessions.size()]. Records kGmeEnter (value = session) and
/// kGmeExit call spans for the checker. `cs_dwell` free local steps are
/// spent inside the critical section, giving same-session peers a window to
/// share the room.
ProcTask gme_worker(ProcCtx& ctx, GmeAlgorithm* alg, int passages,
                    std::vector<Word> sessions, int cs_dwell = 0);

struct GmeViolation {
  std::int64_t step_index = -1;
  std::string what;
};

/// GME safety over the recorded history: at every moment the set of
/// processes inside the CS (between kGmeEnter end and kGmeExit begin) is
/// single-session.
std::optional<GmeViolation> check_gme_safety(const History& h);

/// Maximum number of processes simultaneously inside the CS — the
/// concurrency a GME algorithm actually extracted (1 for a plain mutex).
int max_cs_occupancy(const History& h);

}  // namespace rmrsim
