// Asymptotic-class fitter: turns a measured (N, cost) series into a growth
// class, so the paper's separation can be asserted by code instead of by
// eyeball.
//
// The paper's claims are all growth classes — the CC upper bound is O(1)
// RMRs per process (Section 5), the DSM lower bound forces super-constant
// amortized cost (Theorem 6.2, written Ω(W) here: the forced cost grows
// with the number of waiters), and the mutual-exclusion anchor is
// Θ(log N) (Yang–Anderson). With "N large enough" replaced by finite
// sweeps (DESIGN.md substitution 6), classification works off two signals:
// the log-log slope of the series (a ~ 0 for O(1), ~1 for Θ(N), decaying
// in between for Θ(log N)) and which of three least-squares shape models
// (y = a, y = a + b·log2 x, y = a + b·x) minimizes the normalized residual.
#pragma once

#include <span>
#include <string>

namespace rmrsim {

enum class GrowthClass {
  kConstant,     ///< O(1): flat within noise
  kLogarithmic,  ///< Θ(log N)
  kLinear,       ///< Θ(N)
};

/// Short machine-readable slug: "O(1)", "Theta(logN)", "Theta(N)".
const char* to_string(GrowthClass cls);

/// True for every class that grows without bound — the Ω(W) verdict of
/// Theorem 6.2 (any super-constant growth witnesses the separation).
bool is_super_constant(GrowthClass cls);

/// What an experiment claims about a series. kOmegaW accepts any
/// super-constant class: the lower bound promises growth, not its exact
/// shape (E6's CAS transformation, for instance, grows log-flavored).
enum class Expectation { kO1, kThetaLogN, kThetaN, kOmegaW };

const char* to_string(Expectation e);
bool matches(Expectation e, GrowthClass cls);

struct FitReport {
  GrowthClass cls = GrowthClass::kConstant;
  double loglog_slope = 0.0;  ///< slope of log y vs log x
  double growth_ratio = 1.0;  ///< y_max / max(y_min, eps)
  /// Normalized RMS residuals of the three shape fits (fraction of the
  /// series' mean magnitude; lower = better).
  double rms_constant = 0.0;
  double rms_log = 0.0;
  double rms_linear = 0.0;
  int points = 0;

  std::string to_string() const;  ///< one diagnostic line
};

/// Fits and classifies. Requires xs ascending and xs.size() == ys.size();
/// at least 3 points for a meaningful verdict (with fewer, classification
/// falls back to the growth ratio alone). Non-positive ys are clamped to a
/// small epsilon for the log fits.
FitReport fit_growth_class(std::span<const double> xs,
                           std::span<const double> ys);

}  // namespace rmrsim
