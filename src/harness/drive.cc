#include "harness/drive.h"

#include "common/check.h"
#include "memory/cc_model.h"
#include "mutex/bakery_lock.h"
#include "mutex/clh_lock.h"
#include "mutex/mcs_lock.h"
#include "mutex/peterson_lock.h"
#include "mutex/recoverable_lock.h"
#include "mutex/simple_locks.h"
#include "mutex/ya_lock.h"
#include "primitives/blocking_leader.h"
#include "primitives/rw_cas_registration.h"
#include "sched/fault.h"
#include "sched/schedulers.h"
#include "signaling/broken.h"
#include "signaling/cas_registration.h"
#include "signaling/cc_flag.h"
#include "signaling/dsm_queue.h"
#include "signaling/dsm_registration.h"
#include "signaling/dsm_single_waiter.h"
#include "signaling/llsc_registration.h"

namespace rmrsim {

std::unique_ptr<SharedMemory> make_model_by_name(const std::string& name,
                                                 int nprocs) {
  if (name == "dsm") return make_dsm(nprocs);
  if (name == "cc") return make_cc(nprocs, CcPolicy::kWriteThrough);
  if (name == "cc-wb") return make_cc(nprocs, CcPolicy::kWriteBack);
  if (name == "cc-mesi") return make_cc(nprocs, CcPolicy::kMesi);
  if (name == "cc-lfcu") return make_cc(nprocs, CcPolicy::kLfcu);
  fail("unknown model '" + name + "' (dsm|cc|cc-wb|cc-mesi|cc-lfcu)");
}

bool is_model_name(const std::string& name) {
  return name == "dsm" || name == "cc" || name == "cc-wb" ||
         name == "cc-mesi" || name == "cc-lfcu";
}

SignalingFactory make_signal_factory_by_name(const std::string& name,
                                             int fixed_home) {
  if (name == "flag") {
    return [](SharedMemory& m) { return std::make_unique<CcFlagSignal>(m); };
  }
  if (name == "single-waiter") {
    return [](SharedMemory& m) {
      return std::make_unique<DsmSingleWaiterSignal>(m);
    };
  }
  if (name == "registration") {
    return [fixed_home](SharedMemory& m) {
      return std::make_unique<DsmRegistrationSignal>(
          m, static_cast<ProcId>(fixed_home));
    };
  }
  if (name == "queue") {
    return [](SharedMemory& m) { return std::make_unique<DsmQueueSignal>(m); };
  }
  if (name == "cas") {
    return [](SharedMemory& m) {
      return std::make_unique<CasRegistrationSignal>(m);
    };
  }
  if (name == "llsc") {
    return [](SharedMemory& m) {
      return std::make_unique<LlscRegistrationSignal>(m);
    };
  }
  if (name == "rw-cas") {
    return [](SharedMemory& m) {
      return std::make_unique<RwCasRegistrationSignal>(m);
    };
  }
  if (name == "blocking-leader") {
    return [](SharedMemory& m) {
      return std::make_unique<DsmBlockingLeaderSignal>(m);
    };
  }
  if (name == "broken") {
    return
        [](SharedMemory& m) { return std::make_unique<BrokenLocalSignal>(m); };
  }
  fail("unknown algorithm '" + name +
       "' (flag|single-waiter|registration|queue|cas|llsc|rw-cas|"
       "blocking-leader|broken)");
}

std::shared_ptr<MutexAlgorithm> make_lock_by_name(const std::string& name,
                                                  SharedMemory& mem) {
  if (name == "mcs") return std::make_shared<McsLock>(mem);
  if (name == "ya") return std::make_shared<YangAndersonLock>(mem);
  if (name == "anderson") return std::make_shared<AndersonArrayLock>(mem);
  if (name == "ticket") return std::make_shared<TicketLock>(mem);
  if (name == "tas") return std::make_shared<TasLock>(mem);
  if (name == "clh") return std::make_shared<ClhLock>(mem);
  if (name == "bakery") return std::make_shared<BakeryLock>(mem);
  if (name == "peterson") return std::make_shared<PetersonTournamentLock>(mem);
  if (name == "recoverable") return std::make_shared<RecoverableSpinLock>(mem);
  fail("unknown lock '" + name +
       "' (mcs|ya|anderson|ticket|tas|clh|bakery|peterson|recoverable)");
}

LockFactory lock_factory_by_name(const std::string& name) {
  // Validate eagerly against a throwaway memory so a typo fails at spec
  // build time, not inside a worker thread.
  make_lock_by_name(name, *make_dsm(1));
  return [name](SharedMemory& mem) { return make_lock_by_name(name, mem); };
}

std::vector<Program> make_mutex_programs(
    SharedMemory& mem, const std::shared_ptr<MutexAlgorithm>& lock,
    int passages) {
  const int nprocs = mem.nprocs();
  std::vector<Program> programs;
  programs.reserve(static_cast<std::size_t>(nprocs));
  if (auto* rec = dynamic_cast<RecoverableMutexAlgorithm*>(lock.get())) {
    std::vector<VarId> done;
    for (int p = 0; p < nprocs; ++p) {
      done.push_back(mem.allocate_global(0, "done"));
    }
    for (int p = 0; p < nprocs; ++p) {
      programs.emplace_back([lock, rec, dv = done[p], passages](ProcCtx& ctx) {
        return recoverable_mutex_worker(ctx, rec, dv, passages);
      });
    }
  } else {
    for (int p = 0; p < nprocs; ++p) {
      programs.emplace_back([lock, passages](ProcCtx& ctx) {
        return mutex_worker(ctx, lock.get(), passages);
      });
    }
  }
  return programs;
}

MutexWorld build_mutex_world(const MutexRunOptions& opt) {
  ensure(static_cast<bool>(opt.make_lock), "mutex run needs a lock factory");
  MutexWorld w;
  w.mem = make_model_by_name(opt.model, opt.nprocs);
  if (opt.listener != nullptr) w.mem->set_listener(opt.listener);
  w.lock = opt.make_lock(*w.mem);
  w.sim = std::make_unique<Simulation>(
      *w.mem, make_mutex_programs(*w.mem, w.lock, opt.passages));
  return w;
}

MutexRunOutcome run_mutex_workload(const MutexRunOptions& opt) {
  MutexRunOutcome out;
  out.world = build_mutex_world(opt);
  Simulation& sim = *out.world.sim;

  std::unique_ptr<Scheduler> inner;
  if (opt.gap_delta > 0) {
    inner = std::make_unique<BoundedGapScheduler>(opt.seed, opt.gap_delta);
  } else if (opt.seed != 0) {
    inner = std::make_unique<RandomScheduler>(opt.seed);
  } else {
    inner = std::make_unique<RoundRobinScheduler>();
  }
  Simulation::RunResult result{};
  if (opt.fault_plan.empty()) {
    result = sim.run(*inner, opt.max_steps);
  } else {
    FaultScheduler faulty(*inner, parse_fault_plan(opt.fault_plan));
    result = sim.run(faulty, opt.max_steps);
  }

  if (opt.listener != nullptr) opt.listener->flush();
  out.completed = result.all_terminated;
  out.violation = check_mutual_exclusion(sim.history());
  for (ProcId p = 0; p < opt.nprocs; ++p) {
    out.passages_done += passages_completed(sim.history(), p);
  }
  out.rmrs_per_passage =
      static_cast<double>(out.world.mem->ledger().total_rmrs()) /
      static_cast<double>(opt.nprocs * opt.passages);
  return out;
}

MutexSeedStats run_mutex_seeds(const MutexRunOptions& opt,
                               std::uint64_t first_seed, int n_seeds) {
  MutexSeedStats stats;
  double total = 0;
  for (int i = 0; i < n_seeds; ++i) {
    MutexRunOptions per_run = opt;
    per_run.seed = first_seed + static_cast<std::uint64_t>(i);
    const MutexRunOutcome o = run_mutex_workload(per_run);
    ++stats.runs;
    if (!o.completed) ++stats.incomplete;
    if (o.violation.has_value()) ++stats.violations;
    total += o.rmrs_per_passage;
  }
  stats.mean_rmrs_per_passage = stats.runs > 0 ? total / stats.runs : 0.0;
  return stats;
}

}  // namespace rmrsim
