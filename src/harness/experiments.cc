#include "harness/experiments.h"

#include <algorithm>
#include <memory>
#include <utility>

#include <cstdio>

#include "coherence/fleet.h"
#include "coherence/protocols.h"
#include "common/check.h"
#include "common/table.h"
#include "harness/drive.h"
#include "lowerbound/adversary.h"
#include "memory/cc_model.h"
#include "metrics/publish.h"
#include "sched/fault.h"
#include "sched/schedulers.h"
#include "signaling/cc_flag.h"
#include "signaling/checker.h"
#include "signaling/dsm_fixed.h"
#include "signaling/dsm_registration.h"
#include "signaling/workload.h"
#include "trace/call_stats.h"
#include "workload/generators.h"
#include "workload/replay.h"

namespace rmrsim {

namespace {

// ---- shared point runners ---------------------------------------------

/// Standard signaling workload point: run, verify the spec, publish the
/// simulation plus the three headline gauges every signaling experiment
/// reads (rmrs.max_waiter / rmrs.signaler / rmrs.amortized).
MetricsRegistry run_signaling_point(const std::string& model, int n_waiters,
                                    const SignalingFactory& factory,
                                    SignalingWorkloadOptions opt) {
  opt.n_waiters = n_waiters;
  MetricsRegistry reg;
  auto run = run_signaling_workload(make_model_by_name(model, n_waiters + 1),
                                    factory, opt);
  publish_simulation(reg, *run.sim);
  publish_call_costs(reg, per_call_costs(run.sim->history()));
  reg.set("rmrs.max_waiter", static_cast<double>(run.max_waiter_rmrs()));
  reg.set("rmrs.signaler", static_cast<double>(run.signaler_rmrs()));
  reg.set("rmrs.amortized", run.amortized_rmrs());
  const auto violation = opt.blocking
                             ? check_blocking_spec(run.sim->history())
                             : check_polling_spec(run.sim->history());
  reg.set("spec.ok", violation.has_value() ? 0.0 : 1.0);
  return reg;
}

/// Section 6 adversary point: adv.amortized is the forced cost (final
/// amortized when part 1 stabilized, the unstable branch's endpoint
/// otherwise — the quantity Theorem 6.2 lower-bounds either way).
MetricsRegistry run_adversary_point(const SignalingFactory& factory,
                                    const AdversaryConfig& config) {
  MetricsRegistry reg;
  SignalingAdversary adv(factory, config);
  const AdversaryReport r = adv.run();
  reg.set("adv.amortized",
          r.stabilized ? r.amortized_final : r.unstable_amortized_end);
  reg.set("adv.signaler_rmrs", static_cast<double>(r.signaler_rmrs));
  reg.set("adv.stabilized", r.stabilized ? 1.0 : 0.0);
  reg.set("adv.stable_waiters", static_cast<double>(r.stable_waiters));
  reg.set("adv.participants", static_cast<double>(r.participants_final));
  reg.set("adv.rounds", static_cast<double>(r.rounds));
  reg.set("adv.in_scope", r.in_scope ? 1.0 : 0.0);
  reg.set("spec.ok", r.spec_violation ? 0.0 : 1.0);
  return reg;
}

/// Full-contention mutex point under round-robin (the E5/E8 shape).
/// `listener` (optional) is attached to the world's memory for the run.
MetricsRegistry run_mutex_point(const std::string& model,
                                const std::string& lock_name, int n,
                                int passages,
                                CoherenceListener* listener = nullptr) {
  MutexRunOptions opt;
  opt.model = model;
  opt.nprocs = n;
  opt.passages = passages;
  opt.listener = listener;
  opt.make_lock = [lock_name](SharedMemory& mem) {
    return make_lock_by_name(lock_name, mem);
  };
  const MutexRunOutcome o = run_mutex_workload(opt);
  MetricsRegistry reg;
  publish_simulation(reg, *o.world.sim);
  publish_call_costs(reg, per_call_costs(o.world.sim->history()));
  reg.set("rmrs.per_passage", o.rmrs_per_passage);
  reg.set("run.completed", o.completed ? 1.0 : 0.0);
  reg.set("spec.ok", o.violation.has_value() ? 0.0 : 1.0);
  return reg;
}

// ---- E1 ----------------------------------------------------------------

SweepSpec e1_spec() {
  SweepSpec s;
  s.name = "e1";
  s.models = {"cc", "dsm"};
  // flag-delay64: the signaler idles a fixed 64 polls; flag-spin-n: the
  // idle time scales with N, so the DSM waiters' spin cost grows along the
  // x axis while CC must stay flat — the Section 5 claim as a fit.
  s.algorithms = {"flag-delay64", "flag-spin-n"};
  s.ns = {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
  return s;
}

MetricsRegistry e1_runner(const SweepPoint& p) {
  SignalingWorkloadOptions opt;
  opt.signaler_idle_polls = p.algorithm == "flag-spin-n" ? p.n : 64;
  return run_signaling_point(p.model, p.n,
                             make_signal_factory_by_name("flag", p.n), opt);
}

// ---- E2 ----------------------------------------------------------------

SweepSpec e2_spec() {
  SweepSpec s;
  s.name = "e2";
  s.models = {"dsm"};  // the control's CC memory is part of its algorithm
  s.algorithms = {"registration", "fixed-waiters", "flag-dsm",
                  "flag-cc-control"};
  s.ns = {16, 32, 64, 128, 256};
  return s;
}

MetricsRegistry e2_runner(const SweepPoint& p) {
  const int n = p.n;
  AdversaryConfig c;
  c.nprocs = n;
  c.construction = Construction::kStrict;
  if (p.algorithm == "registration") {
    return run_adversary_point(
        [n](SharedMemory& m) {
          return std::make_unique<DsmRegistrationSignal>(
              m, static_cast<ProcId>(n - 2));
        },
        c);
  }
  if (p.algorithm == "fixed-waiters") {
    return run_adversary_point(
        [n](SharedMemory& m) {
          std::vector<ProcId> ws;
          for (int i = 0; i < n - 1; ++i) ws.push_back(i);
          return std::make_unique<DsmFixedWaitersSignal>(m, std::move(ws));
        },
        c);
  }
  if (p.algorithm == "flag-dsm") {
    // The flag algorithm never stabilizes; the Lemma 6.11 branch forces
    // RMRs per *extension round*, so the rounds scale with N to exhibit
    // the unbounded growth along the sweep's x axis.
    c.unstable_extension_rounds = std::max(4, n / 4);
    return run_adversary_point(
        [](SharedMemory& m) { return std::make_unique<CcFlagSignal>(m); }, c);
  }
  if (p.algorithm == "flag-cc-control") {
    c.construction = Construction::kLenient;
    c.erase_during_chase = false;
    c.make_memory = [](int k) { return make_cc(k); };
    return run_adversary_point(
        [](SharedMemory& m) { return std::make_unique<CcFlagSignal>(m); }, c);
  }
  fail("e2: unknown algorithm '" + p.algorithm + "'");
}

// ---- E3 ----------------------------------------------------------------

SweepSpec e3_spec() {
  SweepSpec s;
  s.name = "e3";
  s.models = {"dsm", "cc"};
  s.algorithms = {"flag",  "fixed-wait-free", "fixed-terminating",
                  "registration", "queue", "cas", "blocking-leader"};
  s.ns = {16, 32, 64};
  return s;
}

MetricsRegistry e3_runner(const SweepPoint& p) {
  const int n = p.n;
  SignalingWorkloadOptions opt;
  opt.signaler_idle_polls = 16;
  SignalingFactory factory;
  if (p.algorithm == "fixed-wait-free") {
    // The fixed-waiter variants restrict Poll() to the fixed set, so the
    // signaler cannot make idle polls.
    opt.signaler_idle_polls = 0;
    factory = [n](SharedMemory& m) {
      std::vector<ProcId> ws;
      for (int i = 0; i < n; ++i) ws.push_back(i);
      return std::make_unique<DsmFixedWaitersSignal>(m, std::move(ws));
    };
  } else if (p.algorithm == "fixed-terminating") {
    opt.signaler_idle_polls = 0;
    factory = [n](SharedMemory& m) {
      std::vector<ProcId> ws;
      for (int i = 0; i < n; ++i) ws.push_back(i);
      return std::make_unique<DsmFixedWaitersTerminating>(
          m, std::move(ws), static_cast<ProcId>(n));
    };
  } else if (p.algorithm == "blocking-leader") {
    opt.blocking = true;
    opt.signaler_idle_polls = 0;
    factory = make_signal_factory_by_name("blocking-leader", n);
  } else {
    factory = make_signal_factory_by_name(p.algorithm, n);
  }
  return run_signaling_point(p.model, n, factory, opt);
}

// ---- E4 ----------------------------------------------------------------

SweepSpec e4_spec() {
  SweepSpec s;
  s.name = "e4";
  s.models = {"cc"};
  s.algorithms = {"flag-half-idle", "ping-pong"};
  s.ns = {8, 16, 32, 64, 128, 256};
  return s;
}

/// The Section 8 workloads, run against `mem` with whatever coherence
/// listener is already attached: flag-half-idle (broadcast-friendly: many
/// sharers, one invalidating write) or ping-pong (the coarse directory's
/// worst case: one producer rewriting a cell one consumer re-reads).
/// Publishes the simulation/ledger side into `reg`; message tallies are the
/// caller's, since only it knows which counters it attached.
void run_e4_workload(const SweepPoint& p, SharedMemory& mem,
                     MetricsRegistry& reg) {
  const int n = p.n;
  if (p.algorithm == "flag-half-idle") {
    const int n_waiters = n / 2 - 1;
    const int n_idle = n - n_waiters - 1;
    CcFlagSignal alg(mem);
    std::vector<Program> programs;
    for (int i = 0; i < n_waiters; ++i) {
      programs.emplace_back(
          [&alg](ProcCtx& ctx) { return polling_waiter(ctx, &alg, 1'000'000); });
    }
    for (int i = 0; i < n_idle; ++i) programs.emplace_back(Program{});
    programs.emplace_back(
        [&alg](ProcCtx& ctx) { return signaler(ctx, &alg, 16); });
    Simulation sim(mem, std::move(programs));
    RoundRobinScheduler rr;
    const auto result = sim.run(rr, 100'000'000);
    publish_simulation(reg, sim);
    reg.set("run.completed", result.all_terminated ? 1.0 : 0.0);
  } else if (p.algorithm == "ping-pong") {
    // One producer rewriting a cell, one consumer re-reading it — the
    // regime where the coarse directory's blind broadcasts diverge.
    const VarId v = mem.allocate_global(0);
    for (int round = 0; round < 64; ++round) {
      mem.apply(0, MemOp::write(v, round));
      mem.apply(1, MemOp::read(v));
    }
    publish_ledger(reg, mem.ledger());
  } else {
    fail("e4: unknown algorithm '" + p.algorithm + "'");
  }
  if (mem.listener() != nullptr) mem.listener()->flush();
}

MetricsRegistry e4_runner(const SweepPoint& p) {
  MetricsRegistry reg;
  const int n = p.n;
  auto mem = make_cc(n);
  BusBroadcastCounter bus;
  IdealDirectoryCounter ideal;
  CoarseDirectoryCounter coarse(n);
  ListenerFanout fan;
  fan.add(&bus);
  fan.add(&ideal);
  fan.add(&coarse);
  mem->set_listener(&fan);

  run_e4_workload(p, *mem, reg);

  publish_messages(reg, bus);
  publish_messages(reg, ideal);
  publish_messages(reg, coarse);
  const double rmrs =
      std::max<double>(1.0, static_cast<double>(mem->ledger().total_rmrs()));
  reg.set("msgs.bus.per_rmr",
          static_cast<double>(bus.total_messages()) / rmrs);
  reg.set("msgs.ideal.per_rmr",
          static_cast<double>(ideal.total_messages()) / rmrs);
  reg.set("msgs.coarse.per_rmr",
          static_cast<double>(coarse.total_messages()) / rmrs);
  return reg;
}

// ---- E4 per-protocol: the state-machine fleet on the same grid ---------

/// One fleet protocol on the E4 grid: the state machine rides the same
/// event stream the legacy counters saw, and its message *and* cycle
/// tallies per RMR must both fit O(1) — the protocol-invariance gate (the
/// asymptotic classes the paper derives cannot depend on which snooping
/// protocol the interconnect happens to run).
MetricsRegistry e4_protocol_runner(const std::string& protocol,
                                   const SweepPoint& p) {
  MetricsRegistry reg;
  auto mem = make_cc(p.n);
  auto cache = make_protocol(protocol, p.n);
  ensure(cache != nullptr, "e4: unknown protocol '" + protocol + "'");
  mem->set_listener(cache.get());

  run_e4_workload(p, *mem, reg);

  publish_protocol(reg, *cache);
  const double rmrs =
      std::max<double>(1.0, static_cast<double>(mem->ledger().total_rmrs()));
  reg.set("msgs." + protocol + ".per_rmr",
          static_cast<double>(cache->total_messages()) / rmrs);
  reg.set("cycles." + protocol + ".per_rmr",
          static_cast<double>(cache->total_cycles()) / rmrs);
  const auto violation = cache->check_invariants();
  reg.set("protocol.invariants_ok", violation.has_value() ? 0.0 : 1.0);
  return reg;
}

SweepSpec e4_protocol_spec(const std::string& protocol) {
  SweepSpec s = e4_spec();
  s.name = "e4_" + protocol;
  return s;
}

// ---- E5 ----------------------------------------------------------------

SweepSpec e5_spec() {
  SweepSpec s;
  s.name = "e5";
  s.models = {"dsm", "cc"};
  s.algorithms = {"ya", "mcs", "anderson", "ticket", "clh", "bakery",
                  "peterson"};
  s.ns = {4, 16, 64, 256};
  return s;
}

MetricsRegistry e5_runner(const SweepPoint& p) {
  return run_mutex_point(p.model, p.algorithm, p.n, /*passages=*/3);
}

// ---- E6 ----------------------------------------------------------------

SweepSpec e6_spec() {
  SweepSpec s;
  s.name = "e6";
  s.models = {"dsm"};
  s.algorithms = {"cas-raw", "rw-cas-transformed"};
  s.ns = {16, 32, 64};
  return s;
}

MetricsRegistry e6_runner(const SweepPoint& p) {
  AdversaryConfig c;
  c.nprocs = p.n;
  c.construction = Construction::kStrict;
  if (p.algorithm == "cas-raw") {
    return run_adversary_point(make_signal_factory_by_name("cas", p.n - 2), c);
  }
  if (p.algorithm == "rw-cas-transformed") {
    c.max_rounds = 64;  // lock traffic needs more rounds to settle
    return run_adversary_point(make_signal_factory_by_name("rw-cas", p.n - 2),
                               c);
  }
  fail("e6: unknown algorithm '" + p.algorithm + "'");
}

// ---- E7 ----------------------------------------------------------------

SweepSpec e7_spec() {
  SweepSpec s;
  s.name = "e7";
  s.models = {"dsm"};
  s.algorithms = {"registration"};
  s.ns = {81, 243, 729};
  return s;
}

MetricsRegistry e7_runner(const SweepPoint& p) {
  const int n = p.n;
  AdversaryConfig c;
  c.nprocs = n;
  c.construction = Construction::kStrict;
  SignalingAdversary adv(
      [n](SharedMemory& m) {
        return std::make_unique<DsmRegistrationSignal>(
            m, static_cast<ProcId>(n - 2));
      },
      c);
  const AdversaryReport r = adv.run();
  MetricsRegistry reg;
  bool invariants_ok = true;
  for (const RoundStats& rs : r.round_stats) {
    if (rs.finished > rs.round) invariants_ok = false;
    if (rs.max_active_rmrs > static_cast<std::uint64_t>(rs.round)) {
      invariants_ok = false;
    }
    if (!rs.regular) invariants_ok = false;
    reg.series_append("adv.active_by_round", rs.round, rs.active);
    reg.series_append("adv.finished_by_round", rs.round, rs.finished);
    reg.series_append("adv.stable_by_round", rs.round, rs.stable);
    reg.series_append("adv.max_active_rmrs_by_round", rs.round,
                      static_cast<double>(rs.max_active_rmrs));
    reg.series_append("adv.regular_by_round", rs.round,
                      rs.regular ? 1.0 : 0.0);
  }
  reg.set("adv.invariants_ok", invariants_ok ? 1.0 : 0.0);
  reg.set("adv.rounds", static_cast<double>(r.rounds));
  reg.set("adv.amortized", r.amortized_final);
  reg.set("adv.signaler_rmrs", static_cast<double>(r.signaler_rmrs));
  reg.set("adv.stabilized", r.stabilized ? 1.0 : 0.0);
  reg.set("adv.stable_waiters", static_cast<double>(r.stable_waiters));
  reg.set("adv.participants", static_cast<double>(r.participants_final));
  reg.set("spec.ok", r.spec_violation ? 0.0 : 1.0);
  return reg;
}

// ---- E8 ----------------------------------------------------------------

SweepSpec e8_spec() {
  SweepSpec s;
  s.name = "e8";
  s.models = {"cc", "cc-wb", "cc-mesi", "cc-lfcu"};
  s.algorithms = {"flag", "tas"};
  s.ns = {8, 16, 32, 64};
  return s;
}

/// Fleet tallies for an E8 point: per-protocol cycle metrics, the
/// amortized-per-process gauge the pins read, and the invariant verdict.
void publish_e8_fleet(MetricsRegistry& reg, ProtocolFleet& fleet,
                      int participants) {
  for (const auto& c : fleet.caches()) {
    publish_protocol(reg, *c);
    reg.set("cycles." + std::string(c->name()) + ".amortized",
            static_cast<double>(c->total_cycles()) /
                std::max(1, participants));
  }
  reg.set("protocol.invariants_ok",
          fleet.check_invariants().has_value() ? 0.0 : 1.0);
}

MetricsRegistry e8_runner(const SweepPoint& p) {
  // The whole fleet rides every E8 point: one schedule, every protocol
  // priced, so the cost-model ablation (x axis: CC policy) carries a
  // per-protocol cycle ablation alongside it for free.
  if (p.algorithm == "flag") {
    ProtocolFleet fleet(p.n + 1);  // waiters + the signaler
    SignalingWorkloadOptions opt;
    opt.signaler_idle_polls = 64;
    opt.listener = fleet.listener();
    MetricsRegistry reg = run_signaling_point(
        p.model, p.n, make_signal_factory_by_name("flag", p.n), opt);
    publish_e8_fleet(reg, fleet, p.n + 1);
    return reg;
  }
  if (p.algorithm == "tas") {
    ProtocolFleet fleet(p.n);
    MetricsRegistry reg =
        run_mutex_point(p.model, "tas", p.n, /*passages=*/3, fleet.listener());
    publish_e8_fleet(reg, fleet, p.n);
    return reg;
  }
  fail("e8: unknown algorithm '" + p.algorithm + "'");
}

// ---- E9 ----------------------------------------------------------------

SweepSpec e9_spec() {
  SweepSpec s;
  s.name = "e9";
  s.models = {"dsm", "cc"};
  s.algorithms = {"recoverable"};
  s.ns = {6};  // the x axis of this experiment is the fault plan, not N
  s.fault_plans = {"",
                   "random:rate=0.002,seed=1234,recover=50,max=64",
                   "random:rate=0.01,seed=1234,recover=50,max=64",
                   "random:rate=0.05,seed=1234,recover=50,max=64"};
  return s;
}

MetricsRegistry e9_runner(const SweepPoint& p) {
  MutexRunOptions opt;
  opt.model = p.model;
  opt.nprocs = p.n;
  opt.passages = 4;
  opt.fault_plan = p.fault_plan;
  opt.max_steps = 60'000'000;
  opt.make_lock = [](SharedMemory& mem) {
    return make_lock_by_name("recoverable", mem);
  };
  const MutexRunOutcome o = run_mutex_workload(opt);
  MetricsRegistry reg;
  publish_simulation(reg, *o.world.sim);
  const CrashRunReport rep = analyze_crash_run(o.world.sim->history());
  reg.set("crash.fifo_inversions", static_cast<double>(rep.fifo_inversions));
  reg.set("crash.failed_recoveries",
          static_cast<double>(rep.failed_recoveries));
  reg.set("rmrs.per_exit",
          o.passages_done > 0
              ? static_cast<double>(
                    o.world.mem->ledger().total_rmrs()) /
                    o.passages_done
              : -1.0);
  reg.set("run.completed", o.completed ? 1.0 : 0.0);
  reg.set("run.passages_done", static_cast<double>(o.passages_done));
  reg.set("spec.ok", rep.mutual_exclusion_ok ? 1.0 : 0.0);
  return reg;
}

// ---- T1: trace-driven workloads ---------------------------------------

/// T1-synth grid: every synthetic generator under both cost models, N on
/// the processor axis with a fixed op budget per processor (so total work
/// grows with N — which is what makes the hot-set DSM total an Ω(W)
/// series while per-op rates stay comparable across N).
constexpr std::uint64_t kT1OpsPerProc = 256;

SweepSpec t1_synth_spec() {
  SweepSpec s;
  s.name = "t1_synth";
  s.models = {"dsm", "cc"};
  s.algorithms = generator_names();
  s.ns = {8, 16, 32, 64};
  return s;
}

MetricsRegistry t1_synth_runner(const SweepPoint& p) {
  GenSpec g;
  g.kind = p.algorithm;
  g.procs = p.n;
  g.ops = kT1OpsPerProc * static_cast<std::uint64_t>(p.n);
  g.seed = 1;
  const Trace trace = generate_trace(g);
  auto mem = make_model_by_name(p.model, p.n);
  return replay_trace(trace, *mem);
}

/// T1-scale grid: trace *length* on the N axis at a fixed processor count,
/// with the whole protocol fleet riding the replay — per-op RMR and cycle
/// rates must be flat in the trace length (heavy traffic changes totals,
/// never the asymptotic per-op price).
constexpr int kT1ScaleProcs = 16;

SweepSpec t1_scale_spec() {
  SweepSpec s;
  s.name = "t1_scale";
  s.models = {"dsm", "cc"};
  s.algorithms = {"zipf"};
  s.ns = {4096, 8192, 16384, 32768};
  return s;
}

MetricsRegistry t1_scale_runner(const SweepPoint& p) {
  GenSpec g;
  g.kind = p.algorithm;
  g.procs = kT1ScaleProcs;
  g.ops = static_cast<std::uint64_t>(p.n);
  g.seed = 1;
  const Trace trace = generate_trace(g);
  auto mem = make_model_by_name(p.model, kT1ScaleProcs);
  ReplayOptions opts;
  opts.protocols = protocol_names();
  return replay_trace(trace, *mem, opts);
}

// ---- registry ----------------------------------------------------------

SeriesDecl decl(std::string metric, std::string model, std::string algorithm,
                std::optional<Expectation> expected = std::nullopt) {
  return SeriesDecl{
      SeriesSelector{std::move(metric), std::move(model),
                     std::move(algorithm)},
      expected};
}

std::vector<Experiment> build_experiments() {
  std::vector<Experiment> out;

  out.push_back(Experiment{
      "e1", "Section 5 CC upper bound: flag signaling, reads/writes",
      e1_spec(), e1_runner,
      {decl("rmrs.max_waiter", "cc", "flag-delay64", Expectation::kO1),
       decl("rmrs.amortized", "cc", "flag-delay64", Expectation::kO1),
       decl("rmrs.max_waiter", "cc", "flag-spin-n", Expectation::kO1),
       decl("rmrs.max_waiter", "dsm", "flag-spin-n", Expectation::kOmegaW),
       decl("rmrs.amortized", "dsm", "flag-spin-n", Expectation::kOmegaW),
       decl("rmrs.max_waiter", "dsm", "flag-delay64"),
       decl("rmrs.signaler", "dsm", "flag-delay64")}});

  out.push_back(Experiment{
      "e2", "Theorem 6.2: forced amortized RMRs in DSM vs the CC control",
      e2_spec(), e2_runner,
      {decl("adv.amortized", "dsm", "registration", Expectation::kOmegaW),
       decl("adv.amortized", "dsm", "fixed-waiters", Expectation::kOmegaW),
       decl("adv.amortized", "dsm", "flag-dsm", Expectation::kOmegaW),
       decl("adv.amortized", "dsm", "flag-cc-control", Expectation::kO1),
       decl("adv.signaler_rmrs", "dsm", "registration")}});

  out.push_back(Experiment{
      "e3", "Section 7 signaling-variant taxonomy",
      e3_spec(), e3_runner,
      {decl("rmrs.max_waiter", "dsm", "registration", Expectation::kO1),
       decl("rmrs.max_waiter", "dsm", "queue", Expectation::kO1),
       decl("rmrs.amortized", "dsm", "fixed-terminating", Expectation::kO1),
       decl("rmrs.signaler", "dsm", "fixed-wait-free", Expectation::kThetaN),
       decl("rmrs.max_waiter", "cc", "flag", Expectation::kO1),
       decl("rmrs.signaler", "dsm", "registration")}});

  out.push_back(Experiment{
      "e4", "Section 8 message accounting under CC coherence protocols",
      e4_spec(), e4_runner,
      {decl("msgs.bus.per_rmr", "cc", "flag-half-idle", Expectation::kO1),
       decl("msgs.ideal.per_rmr", "cc", "flag-half-idle", Expectation::kO1),
       decl("msgs.ideal.per_rmr", "cc", "ping-pong", Expectation::kO1),
       decl("msgs.coarse.per_rmr", "cc", "ping-pong", Expectation::kOmegaW)}});

  // One E4 replica per fleet protocol, each with its own artifact
  // (BENCH_e4_<protocol>.json) and its own fitter gates: messages-per-RMR
  // and cycles-per-RMR must fit O(1) on both workloads under every
  // protocol — the paper's asymptotic classes are protocol-invariant.
  for (const std::string& proto : protocol_names()) {
    out.push_back(Experiment{
        "e4_" + proto,
        "Section 8 accounting under the " + proto + " state machine",
        e4_protocol_spec(proto),
        [proto](const SweepPoint& p) { return e4_protocol_runner(proto, p); },
        {decl("msgs." + proto + ".per_rmr", "cc", "flag-half-idle",
              Expectation::kO1),
         decl("msgs." + proto + ".per_rmr", "cc", "ping-pong",
              Expectation::kO1),
         decl("cycles." + proto + ".per_rmr", "cc", "flag-half-idle",
              Expectation::kO1),
         decl("cycles." + proto + ".per_rmr", "cc", "ping-pong",
              Expectation::kO1),
         decl("protocol.invariants_ok", "cc", "flag-half-idle"),
         decl("protocol.invariants_ok", "cc", "ping-pong")}});
  }

  out.push_back(Experiment{
      "e5", "Section 3 mutual exclusion anchors: RMRs per passage",
      e5_spec(), e5_runner,
      {decl("rmrs.per_passage", "dsm", "ya", Expectation::kThetaLogN),
       decl("rmrs.per_passage", "cc", "ya", Expectation::kThetaLogN),
       decl("rmrs.per_passage", "dsm", "mcs", Expectation::kO1),
       decl("rmrs.per_passage", "cc", "mcs", Expectation::kO1),
       decl("rmrs.per_passage", "cc", "anderson", Expectation::kO1),
       decl("rmrs.per_passage", "dsm", "anderson", Expectation::kOmegaW),
       decl("rmrs.per_passage", "cc", "clh", Expectation::kO1),
       decl("rmrs.per_passage", "dsm", "ticket", Expectation::kOmegaW),
       decl("rmrs.per_passage", "cc", "ticket"),
       decl("rmrs.per_passage", "dsm", "bakery"),
       decl("rmrs.per_passage", "cc", "bakery"),
       decl("rmrs.per_passage", "dsm", "peterson"),
       decl("rmrs.per_passage", "cc", "peterson")}});

  out.push_back(Experiment{
      "e6", "Corollary 6.14: the CAS transformation gives no escape",
      e6_spec(), e6_runner,
      {decl("adv.amortized", "dsm", "rw-cas-transformed",
            Expectation::kOmegaW),
       decl("adv.amortized", "dsm", "cas-raw"),
       decl("adv.in_scope", "dsm", "cas-raw")}});

  out.push_back(Experiment{
      "e7", "Definition 6.9 invariants along the part-1 construction",
      e7_spec(), e7_runner,
      {decl("adv.invariants_ok", "dsm", "registration", Expectation::kO1),
       decl("adv.amortized", "dsm", "registration")}});

  out.push_back(Experiment{
      "e8", "CC policy ablation: flag signaling and the TAS lock",
      e8_spec(), e8_runner,
      {decl("rmrs.max_waiter", "cc", "flag", Expectation::kO1),
       decl("rmrs.max_waiter", "cc-wb", "flag", Expectation::kO1),
       decl("rmrs.max_waiter", "cc-mesi", "flag", Expectation::kO1),
       decl("rmrs.max_waiter", "cc-lfcu", "flag", Expectation::kO1),
       decl("rmrs.per_passage", "cc-lfcu", "tas", Expectation::kO1),
       decl("rmrs.per_passage", "cc", "tas"),
       // Fleet cycle ablation: amortized protocol cycles on the flag
       // workload stay O(1) per process under every state machine.
       decl("cycles.mesi.amortized", "cc", "flag", Expectation::kO1),
       decl("cycles.mesif.amortized", "cc", "flag", Expectation::kO1),
       decl("cycles.moesi.amortized", "cc", "flag", Expectation::kO1),
       decl("cycles.dragon.amortized", "cc", "flag", Expectation::kO1),
       decl("cycles.mesi.amortized", "cc", "tas"),
       decl("cycles.dragon.amortized", "cc", "tas")}});

  out.push_back(Experiment{
      "e9", "Crash/recovery: RMR cost of the recoverable lock under faults",
      e9_spec(), e9_runner,
      // N is fixed (the sweep axis is the fault plan), so there is no
      // growth series to fit — the artifact carries the raw points.
      {}});

  out.push_back(Experiment{
      "t1_synth", "Trace workloads: synthetic sharing patterns, N axis",
      t1_synth_spec(), t1_synth_runner,
      {// Private streaming is the O(1)-per-op best case in both models.
       decl("rmrs.per_op", "cc", "private", Expectation::kO1),
       decl("rmrs.per_op", "dsm", "private", Expectation::kO1),
       // Hot-set writes under DSM: every touch of another module is an
       // RMR, and total work grows with N — a super-constant total.
       decl("ledger.total_rmrs", "dsm", "hotset", Expectation::kOmegaW),
       decl("rmrs.per_op", "dsm", "hotset"),
       decl("rmrs.per_op", "cc", "hotset"),
       decl("rmrs.per_op", "cc", "zipf"),
       decl("rmrs.per_op", "dsm", "zipf"),
       decl("rmrs.per_op", "cc", "migratory"),
       decl("rmrs.per_op", "cc", "ring")}});

  out.push_back(Experiment{
      "t1_scale", "Trace workloads: zipf trace-length scaling + fleet",
      t1_scale_spec(), t1_scale_runner,
      {decl("rmrs.per_op", "cc", "zipf", Expectation::kO1),
       decl("rmrs.per_op", "dsm", "zipf", Expectation::kO1),
       decl("cycles.mesi.per_op", "cc", "zipf", Expectation::kO1),
       decl("cycles.moesi.per_op", "cc", "zipf", Expectation::kO1),
       decl("cycles.mesif.per_op", "cc", "zipf", Expectation::kO1),
       decl("cycles.dragon.per_op", "cc", "zipf", Expectation::kO1),
       decl("msgs.mesi.per_op", "cc", "zipf"),
       decl("protocol.invariants_ok", "cc", "zipf"),
       decl("protocol.invariants_ok", "dsm", "zipf")}});

  return out;
}

}  // namespace

const std::vector<Experiment>& all_experiments() {
  static const std::vector<Experiment> kExperiments = build_experiments();
  return kExperiments;
}

const Experiment* find_experiment(const std::string& name) {
  for (const Experiment& e : all_experiments()) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

BenchArtifact make_artifact(const Experiment& exp, SweepResult result,
                            const std::string& generator) {
  BenchArtifact artifact;
  artifact.name = exp.name;
  artifact.title = exp.title;
  artifact.generator = generator;
  artifact.git = git_describe();
  artifact.result = std::move(result);
  for (const SeriesDecl& d : exp.series) {
    FittedSeries fs;
    fs.selector = d.selector;
    fs.series = extract_series(artifact.result, d.selector);
    // A capped grid can leave too few points to fit; drop the series
    // rather than fabricate a class from one point.
    if (fs.series.xs.size() < 2) continue;
    fs.fit = fit_growth_class(fs.series.xs, fs.series.ys);
    fs.expected = d.expected;
    fs.matches_expectation =
        !d.expected.has_value() || matches(*d.expected, fs.fit.cls);
    artifact.series.push_back(std::move(fs));
  }
  return artifact;
}

BenchArtifact run_experiment(const Experiment& exp, int workers,
                             const std::string& generator, int max_n) {
  SweepSpec spec = max_n > 0 ? exp.spec.capped_at(max_n) : exp.spec;
  return make_artifact(exp, run_sweep(spec, exp.runner, workers), generator);
}

bool artifact_matches(const BenchArtifact& artifact) {
  for (const FittedSeries& fs : artifact.series) {
    if (!fs.matches_expectation) return false;
  }
  return true;
}

std::string render_fit_table(const BenchArtifact& artifact) {
  if (artifact.series.empty()) return {};
  TextTable t;
  t.set_header({"metric", "model", "algorithm", "fitted class", "slope",
                "expected", "match"});
  for (const FittedSeries& fs : artifact.series) {
    char slope[32];
    std::snprintf(slope, sizeof slope, "%.3f", fs.fit.loglog_slope);
    t.add_row({fs.selector.metric, fs.selector.model, fs.selector.algorithm,
               to_string(fs.fit.cls), slope,
               fs.expected ? to_string(*fs.expected) : "-",
               fs.expected ? (fs.matches_expectation ? "ok" : "MISMATCH")
                           : "-"});
  }
  return t.render();
}

}  // namespace rmrsim
