#include "harness/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "common/check.h"

namespace rmrsim {

std::size_t SweepSpec::grid_size() const {
  return algorithms.size() * models.size() * ns.size() * seeds.size() *
         fault_plans.size();
}

SweepPoint SweepSpec::point_at(std::size_t i) const {
  ensure(i < grid_size(), "sweep point index out of range");
  SweepPoint p;
  p.index = i;
  p.fault_plan = fault_plans[i % fault_plans.size()];
  i /= fault_plans.size();
  p.seed = seeds[i % seeds.size()];
  i /= seeds.size();
  p.n = ns[i % ns.size()];
  i /= ns.size();
  p.model = models[i % models.size()];
  i /= models.size();
  p.algorithm = algorithms[i];
  return p;
}

SweepSpec SweepSpec::capped_at(int max_n, std::size_t min_points) const {
  SweepSpec out = *this;
  std::vector<int> kept;
  for (const int n : ns) {
    if (n <= max_n) kept.push_back(n);
  }
  if (kept.size() < min_points) {
    kept = ns;
    std::sort(kept.begin(), kept.end());
    kept.resize(std::min(min_points, kept.size()));
  }
  out.ns = kept;
  return out;
}

SweepResult run_sweep(const SweepSpec& spec, const PointRunner& runner,
                      int workers) {
  ensure(static_cast<bool>(runner), "sweep needs a point runner");
  const std::size_t total = spec.grid_size();
  SweepResult result;
  result.spec = spec;
  result.workers = std::max(1, workers);
  result.points.resize(total);

  const auto start = std::chrono::steady_clock::now();
  std::atomic<std::size_t> cursor{0};
  // Each worker claims the next unclaimed canonical index and writes its
  // result into that slot; no two workers touch the same slot and the
  // merged vector is index-ordered by construction, so the output is a
  // function of (spec, runner) alone — never of thread timing.
  const auto work = [&]() {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      SweepPointResult& slot = result.points[i];
      slot.point = spec.point_at(i);
      slot.metrics = runner(slot.point);
    }
  };
  if (result.workers == 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(result.workers));
    for (int w = 0; w < result.workers; ++w) pool.emplace_back(work);
    for (std::thread& t : pool) t.join();
  }
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

ExtractedSeries extract_series(const SweepResult& result,
                               const SeriesSelector& sel) {
  ExtractedSeries out;
  std::vector<int> ns = result.spec.ns;
  std::sort(ns.begin(), ns.end());
  // A grid that repeats an N (easy to do by hand-editing a spec) must not
  // produce duplicate x values: the fitter rejects them, and pre-dedupe each
  // repeat double-counted the same grid points into the mean anyway.
  ns.erase(std::unique(ns.begin(), ns.end()), ns.end());
  for (const int n : ns) {
    double sum = 0;
    int count = 0;
    for (const SweepPointResult& pr : result.points) {
      if (pr.point.n != n || pr.point.model != sel.model ||
          pr.point.algorithm != sel.algorithm) {
        continue;
      }
      if (!pr.metrics.has_value(sel.metric)) continue;
      sum += pr.metrics.value(sel.metric);
      ++count;
    }
    if (count == 0) continue;
    out.xs.push_back(static_cast<double>(n));
    out.ys.push_back(sum / count);
  }
  return out;
}

const SweepPointResult* find_point(const SweepResult& result,
                                   const std::string& model,
                                   const std::string& algorithm, int n,
                                   const std::string& fault_plan) {
  for (const SweepPointResult& pr : result.points) {
    if (pr.point.model == model && pr.point.algorithm == algorithm &&
        pr.point.n == n && pr.point.fault_plan == fault_plan) {
      return &pr;
    }
  }
  return nullptr;
}

}  // namespace rmrsim
