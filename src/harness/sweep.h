// Parallel deterministic sweep engine.
//
// A SweepSpec is a declarative experiment grid — axes model × algorithm ×
// N × seed × fault plan — enumerated in one canonical order (algorithm
// outermost, then model, N, seed, fault plan). The engine fans the grid out
// across a worker pool and writes each point's result into its canonical
// slot, so the merged result vector — and everything serialized from it —
// is bit-identical for any worker count (the same discipline as the DPOR
// pool in verify/dpor.h: parallelism may only change wall time, never
// output). Each point runs a fresh, self-contained simulation; runners must
// therefore be thread-safe in the same sense as DPOR builders (build fresh
// worlds, write no shared state).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "metrics/registry.h"

namespace rmrsim {

/// One grid point. `index` is the point's position in canonical grid
/// order; runners may use any subset of the axes (a mutex sweep ignores
/// fault_plan, a crash sweep ignores seed, ...).
struct SweepPoint {
  std::string model;       ///< "dsm" | "cc" | "cc-wb" | "cc-mesi" | "cc-lfcu"
  std::string algorithm;   ///< algorithm / lock / variant name
  int n = 0;               ///< problem size (waiters, procs, ...)
  std::uint64_t seed = 0;  ///< scheduler seed (0 = deterministic round-robin)
  std::string fault_plan;  ///< parse_fault_plan syntax; "" = crash-free
  std::size_t index = 0;
};

struct SweepSpec {
  std::string name;  ///< experiment name; artifacts become BENCH_<name>.json
  std::vector<std::string> models{"dsm"};
  std::vector<std::string> algorithms{""};
  std::vector<int> ns{8};
  std::vector<std::uint64_t> seeds{0};
  std::vector<std::string> fault_plans{{}};

  std::size_t grid_size() const;
  /// The i-th point in canonical order (algorithm-major, fault-plan-minor).
  SweepPoint point_at(std::size_t i) const;

  /// Copy with every N above `max_n` dropped (at least min_points of the
  /// smallest values survive so the fitter still has a series) — the CI
  /// reduced-size knob.
  SweepSpec capped_at(int max_n, std::size_t min_points = 3) const;
};

/// Runs one grid point and returns its measurements. Must be pure up to
/// its own fresh simulation state (called concurrently when workers > 1).
using PointRunner = std::function<MetricsRegistry(const SweepPoint&)>;

struct SweepPointResult {
  SweepPoint point;
  MetricsRegistry metrics;
};

struct SweepResult {
  SweepSpec spec;
  std::vector<SweepPointResult> points;  ///< canonical grid order
  int workers = 1;
  double wall_ms = 0.0;
};

/// Executes the whole grid. workers <= 1 runs serially on the calling
/// thread; larger counts use a pool pulling points off a shared atomic
/// cursor. Either path produces identical `points`.
SweepResult run_sweep(const SweepSpec& spec, const PointRunner& runner,
                      int workers = 1);

/// Pulls the series of `metric` against the N axis for one (model,
/// algorithm) cell, averaging over seeds and fault plans at each N (the
/// shape the fitter consumes). Points whose registry lacks the metric are
/// skipped.
struct SeriesSelector {
  std::string metric;
  std::string model;
  std::string algorithm;
};

struct ExtractedSeries {
  std::vector<double> xs;  ///< the N axis
  std::vector<double> ys;  ///< mean metric value at each N
};

ExtractedSeries extract_series(const SweepResult& result,
                               const SeriesSelector& sel);

/// First point matching (model, algorithm, n, fault_plan) — any seed;
/// nullptr when absent. The lookup benches render their tables with.
const SweepPointResult* find_point(const SweepResult& result,
                                   const std::string& model,
                                   const std::string& algorithm, int n,
                                   const std::string& fault_plan = {});

}  // namespace rmrsim
