// Shared experiment drivers.
//
// One copy of the glue every bench and CLI command used to re-implement:
// name → model/algorithm/lock construction, recoverable-aware mutex
// program wiring, and the build/run/aggregate loops for mutex workloads.
// bench_timing, bench_e9_crash, and the CLI's mutex/explore commands all
// route through here; sweep experiments reuse the same factories so a
// SweepPoint's model/algorithm strings mean exactly what the CLI flags
// mean.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "memory/shared_memory.h"
#include "mutex/lock.h"
#include "signaling/workload.h"

namespace rmrsim {

/// Memory model by CLI name: dsm | cc | cc-wb | cc-mesi | cc-lfcu.
/// Throws std::logic_error on an unknown name (callers wanting exit codes
/// catch it).
std::unique_ptr<SharedMemory> make_model_by_name(const std::string& name,
                                                 int nprocs);

/// True iff `name` is a valid model name (cheap pre-validation for
/// builders that run on worker threads).
bool is_model_name(const std::string& name);

/// Signaling algorithm factory by CLI name: flag | single-waiter |
/// registration | queue | cas | llsc | rw-cas | blocking-leader | broken.
/// `fixed_home` is the process hosting the registration variant's fixed
/// signaler state. Throws std::logic_error on an unknown name.
SignalingFactory make_signal_factory_by_name(const std::string& name,
                                             int fixed_home);

/// Mutex lock by CLI name: mcs | ya | anderson | ticket | tas | clh |
/// bakery | peterson | recoverable. Throws std::logic_error on an unknown
/// name.
std::shared_ptr<MutexAlgorithm> make_lock_by_name(const std::string& name,
                                                  SharedMemory& mem);

using LockFactory =
    std::function<std::shared_ptr<MutexAlgorithm>(SharedMemory&)>;

/// Wraps a name into a factory (validated eagerly so errors surface before
/// worker threads start).
LockFactory lock_factory_by_name(const std::string& name);

/// N workers over one lock; recoverable locks get the crash-restartable
/// worker (progress counters live in shared memory so a recovered program
/// resumes where its done-counter says), plain locks the classic worker —
/// which may wedge under a fault plan, and that contrast is the point.
std::vector<Program> make_mutex_programs(
    SharedMemory& mem, const std::shared_ptr<MutexAlgorithm>& lock,
    int passages);

struct MutexRunOptions {
  std::string model = "dsm";
  int nprocs = 8;
  int passages = 3;
  LockFactory make_lock;  ///< required
  /// seed == 0 and gap_delta == 0: round-robin. seed != 0, gap_delta == 0:
  /// RandomScheduler(seed). gap_delta > 0: BoundedGapScheduler(seed,
  /// gap_delta).
  std::uint64_t seed = 0;
  std::uint64_t gap_delta = 0;
  std::string fault_plan;  ///< parse_fault_plan syntax; "" = crash-free
  std::uint64_t max_steps = 500'000'000;
  /// Attached to the world's memory for the whole run (coherence-protocol
  /// pricing); run_mutex_workload flushes it after the run. Must outlive
  /// the world. nullptr = none.
  CoherenceListener* listener = nullptr;
};

struct MutexWorld {
  std::unique_ptr<SharedMemory> mem;
  std::shared_ptr<MutexAlgorithm> lock;
  std::unique_ptr<Simulation> sim;
};

/// Memory + lock + wired simulation, not yet run — for callers that steer
/// the schedule by hand first (crash-in-CS positioning, targeted traces).
MutexWorld build_mutex_world(const MutexRunOptions& opt);

struct MutexRunOutcome {
  MutexWorld world;
  bool completed = false;
  std::optional<MutexViolation> violation;
  int passages_done = 0;        ///< summed over processes
  double rmrs_per_passage = 0;  ///< total RMRs / (nprocs * passages)
};

/// Builds a world, runs it under the scheduler/fault plan the options
/// select, and checks mutual exclusion.
MutexRunOutcome run_mutex_workload(const MutexRunOptions& opt);

struct MutexSeedStats {
  int runs = 0;
  int violations = 0;
  int incomplete = 0;
  double mean_rmrs_per_passage = 0;
};

/// Runs seeds first_seed .. first_seed + n_seeds - 1 (each overriding
/// opt.seed) and aggregates — the loop bench_timing's tables are built
/// from.
MutexSeedStats run_mutex_seeds(const MutexRunOptions& opt,
                               std::uint64_t first_seed, int n_seeds);

}  // namespace rmrsim
