#include "harness/artifact.h"

#include <cstdio>
#include <cstdlib>

#include "common/check.h"
#include "common/fsio.h"
#include "trace/export.h"

namespace rmrsim {

namespace {

std::string quoted(std::string_view s) {
  std::string out = "\"";
  out += json_escape(s);
  out += '"';
  return out;
}

std::string string_array(const std::vector<std::string>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out += ',';
    out += quoted(values[i]);
  }
  return out + "]";
}

template <typename T>
std::string number_array(const std::vector<T>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out += ',';
    out += format_metric_number(static_cast<double>(values[i]));
  }
  return out + "]";
}

std::string spec_to_json(const SweepSpec& spec) {
  return "{\"name\":" + quoted(spec.name) +
         ",\"models\":" + string_array(spec.models) +
         ",\"algorithms\":" + string_array(spec.algorithms) +
         ",\"ns\":" + number_array(spec.ns) +
         ",\"seeds\":" + number_array(spec.seeds) +
         ",\"fault_plans\":" + string_array(spec.fault_plans) + "}";
}

std::string point_to_json(const SweepPointResult& pr) {
  return "{\"model\":" + quoted(pr.point.model) +
         ",\"algorithm\":" + quoted(pr.point.algorithm) +
         ",\"n\":" + std::to_string(pr.point.n) +
         ",\"seed\":" + std::to_string(pr.point.seed) +
         ",\"fault_plan\":" + quoted(pr.point.fault_plan) +
         ",\"measurements\":" + pr.metrics.to_json() + "}";
}

std::string fit_to_json(const FitReport& fit) {
  return "{\"class\":" + quoted(to_string(fit.cls)) +
         ",\"loglog_slope\":" + format_metric_number(fit.loglog_slope) +
         ",\"growth_ratio\":" + format_metric_number(fit.growth_ratio) +
         ",\"rms_constant\":" + format_metric_number(fit.rms_constant) +
         ",\"rms_log\":" + format_metric_number(fit.rms_log) +
         ",\"rms_linear\":" + format_metric_number(fit.rms_linear) +
         ",\"points\":" + std::to_string(fit.points) + "}";
}

std::string series_to_json(const FittedSeries& fs) {
  std::string out = "{\"metric\":" + quoted(fs.selector.metric) +
                    ",\"model\":" + quoted(fs.selector.model) +
                    ",\"algorithm\":" + quoted(fs.selector.algorithm) +
                    ",\"xs\":" + number_array(fs.series.xs) +
                    ",\"ys\":" + number_array(fs.series.ys) +
                    ",\"fit\":" + fit_to_json(fs.fit);
  if (fs.expected.has_value()) {
    out += ",\"expected\":" + quoted(to_string(*fs.expected)) +
           ",\"matches\":" + (fs.matches_expectation ? "true" : "false");
  }
  return out + "}";
}

}  // namespace

std::string artifact_to_json(const BenchArtifact& artifact,
                             bool include_wall_time) {
  std::string out = "{\"schema_version\":" +
                    std::to_string(kArtifactSchemaVersion) +
                    ",\"name\":" + quoted(artifact.name) +
                    ",\"title\":" + quoted(artifact.title) +
                    ",\"generator\":" + quoted(artifact.generator) +
                    ",\"git\":" + quoted(artifact.git) +
                    ",\"units\":{\"rmrs\":\"count\",\"wall_time\":\"ms\"}";
  if (include_wall_time) {
    out += ",\"workers\":" + std::to_string(artifact.result.workers) +
           ",\"wall_time_ms\":" +
           format_metric_number(artifact.result.wall_ms);
  }
  out += ",\"spec\":" + spec_to_json(artifact.result.spec);
  out += ",\"points\":[";
  for (std::size_t i = 0; i < artifact.result.points.size(); ++i) {
    if (i) out += ',';
    out += point_to_json(artifact.result.points[i]);
  }
  out += "],\"series\":[";
  for (std::size_t i = 0; i < artifact.series.size(); ++i) {
    if (i) out += ',';
    out += series_to_json(artifact.series[i]);
  }
  out += "]}\n";
  return out;
}

std::string write_artifact(const BenchArtifact& artifact,
                           const std::string& dir, bool include_wall_time) {
  std::string path = dir.empty() ? std::string(".") : dir;
  if (path.back() != '/') path += '/';
  path += "BENCH_" + artifact.name + ".json";
  // Atomic replace (tmp + fsync + rename): downstream gates byte-compare
  // these files, so a reader must never see a torn artifact — a kill or a
  // full disk mid-write leaves the previous file intact and throws here.
  write_file_atomic(path, artifact_to_json(artifact, include_wall_time));
  return path;
}

std::string git_describe() {
  if (const char* env = std::getenv("RMRSIM_GIT_DESCRIBE")) return env;
  FILE* pipe = popen("git describe --always --dirty 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[128] = {};
  std::string out;
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) out += buf;
  pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out.empty() ? "unknown" : out;
}

}  // namespace rmrsim
