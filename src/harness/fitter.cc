#include "harness/fitter.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/check.h"
#include "common/stats.h"

namespace rmrsim {

const char* to_string(GrowthClass cls) {
  switch (cls) {
    case GrowthClass::kConstant: return "O(1)";
    case GrowthClass::kLogarithmic: return "Theta(logN)";
    case GrowthClass::kLinear: return "Theta(N)";
  }
  return "?";
}

bool is_super_constant(GrowthClass cls) {
  return cls != GrowthClass::kConstant;
}

const char* to_string(Expectation e) {
  switch (e) {
    case Expectation::kO1: return "O(1)";
    case Expectation::kThetaLogN: return "Theta(logN)";
    case Expectation::kThetaN: return "Theta(N)";
    case Expectation::kOmegaW: return "Omega(W)";
  }
  return "?";
}

bool matches(Expectation e, GrowthClass cls) {
  switch (e) {
    case Expectation::kO1: return cls == GrowthClass::kConstant;
    case Expectation::kThetaLogN: return cls == GrowthClass::kLogarithmic;
    case Expectation::kThetaN: return cls == GrowthClass::kLinear;
    case Expectation::kOmegaW: return is_super_constant(cls);
  }
  return false;
}

namespace {

constexpr double kEps = 1e-9;

/// Least-squares fit of y = a + b * f(x); returns the RMS residual
/// normalized by the mean |y| (so series of different magnitudes compare).
double normalized_rms(std::span<const double> fx, std::span<const double> ys,
                      bool fit_slope) {
  const auto n = static_cast<double>(ys.size());
  double a = 0;
  double b = 0;
  if (fit_slope) {
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (std::size_t i = 0; i < ys.size(); ++i) {
      sx += fx[i];
      sy += ys[i];
      sxx += fx[i] * fx[i];
      sxy += fx[i] * ys[i];
    }
    const double denom = n * sxx - sx * sx;
    b = std::abs(denom) < kEps ? 0.0 : (n * sxy - sx * sy) / denom;
    a = (sy - b * sx) / n;
  } else {
    for (const double y : ys) a += y;
    a /= n;
  }
  double ss = 0;
  double mean_mag = 0;
  for (std::size_t i = 0; i < ys.size(); ++i) {
    const double r = ys[i] - (a + b * fx[i]);
    ss += r * r;
    mean_mag += std::abs(ys[i]);
  }
  mean_mag = std::max(mean_mag / n, kEps);
  return std::sqrt(ss / n) / mean_mag;
}

}  // namespace

std::string FitReport::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%s (loglog slope %.3f, ratio %.2f, rms const/log/lin "
                "%.3f/%.3f/%.3f over %d points)",
                rmrsim::to_string(cls), loglog_slope, growth_ratio,
                rms_constant, rms_log, rms_linear, points);
  return buf;
}

FitReport fit_growth_class(std::span<const double> xs,
                           std::span<const double> ys) {
  ensure(xs.size() == ys.size(), "fit: xs and ys must have equal size");
  ensure(xs.size() >= 2, "fit: need at least 2 points");
  // Strictly ascending: duplicate xs make the least-squares denominator
  // (n*sxx - sx*sx) collapse toward zero, so the slope silently fits 0 and a
  // jittery series misclassifies as O(1). Callers dedupe (extract_series
  // already merges repeated Ns) before fitting.
  ensure(std::adjacent_find(xs.begin(), xs.end(),
                            [](double a, double b) { return a >= b; }) ==
             xs.end(),
         "fit: xs must be strictly ascending (no duplicate x values)");

  std::vector<double> y(ys.begin(), ys.end());
  for (double& v : y) v = std::max(v, kEps);

  FitReport r;
  r.points = static_cast<int>(xs.size());
  double ymin = y[0], ymax = y[0];
  for (const double v : y) {
    ymin = std::min(ymin, v);
    ymax = std::max(ymax, v);
  }
  r.growth_ratio = ymax / std::max(ymin, kEps);
  r.loglog_slope = loglog_slope(xs, y);

  std::vector<double> logx(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    logx[i] = std::log2(std::max(xs[i], kEps));
  }
  r.rms_constant = normalized_rms(logx, y, /*fit_slope=*/false);
  r.rms_log = normalized_rms(logx, y, /*fit_slope=*/true);
  r.rms_linear = normalized_rms(xs, y, /*fit_slope=*/true);

  // Flat within noise: near-zero log-log slope and a small spread. The
  // slope gate alone misfires when a series is tiny-but-jittery (ratio
  // between integer RMR counts), and the ratio gate alone misfires on
  // short slow-growing series — require both to call O(1).
  if (std::abs(r.loglog_slope) < 0.10 && r.growth_ratio < 2.0) {
    r.cls = GrowthClass::kConstant;
    return r;
  }
  // Decreasing beyond the flat band: bounded above by its first point, so
  // asymptotically O(1). The increasing classes cannot describe it; without
  // this rule a ratio that amortizes a one-time constant toward its floor
  // (cycles per RMR with a single cold fetch) misfits Theta(logN).
  // Two points cannot establish a trend — any single noisy dip has a
  // steeply negative slope, and calling it O(1) on that evidence would
  // mask real growth. The asymptotic argument needs at least 3 points.
  if (r.points >= 3 && r.loglog_slope <= -0.10) {
    r.cls = GrowthClass::kConstant;
    return r;
  }
  // A log-log slope near (or above) 1 is linear regardless of which shape
  // model happens to fit the finite prefix marginally better.
  if (r.loglog_slope > 0.80) {
    r.cls = GrowthClass::kLinear;
    return r;
  }
  r.cls = r.rms_log <= r.rms_linear ? GrowthClass::kLogarithmic
                                    : GrowthClass::kLinear;
  return r;
}

}  // namespace rmrsim
