// The E1–E9 experiment registry.
//
// Each paper experiment is one declarative entry: a SweepSpec (the grid),
// a PointRunner (how one grid point is measured, publishing into a
// MetricsRegistry), and the series the artifact must carry — some pinned
// to the asymptotic class the paper claims (E1 flag-in-CC must fit O(1),
// E2's forced amortized cost must fit super-constant, E5's Yang–Anderson
// must fit Theta(log N), ...). `rmrsim_cli sweep`, the bench binaries, and
// CI all run experiments from this one table, so the grid and the claims
// live in exactly one place.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "harness/artifact.h"
#include "harness/sweep.h"

namespace rmrsim {

/// One series the artifact reports; `expected` pins the growth class the
/// fit must land in (CI fails the run on a mismatch).
struct SeriesDecl {
  SeriesSelector selector;
  std::optional<Expectation> expected;
};

struct Experiment {
  std::string name;   ///< "e1" ... "e9"
  std::string title;  ///< one-line description (artifact title)
  SweepSpec spec;
  PointRunner runner;
  std::vector<SeriesDecl> series;
};

/// All registered experiments, in e1..e9 order.
const std::vector<Experiment>& all_experiments();

/// Lookup by name; nullptr if unknown.
const Experiment* find_experiment(const std::string& name);

/// Runs the experiment's grid (capped at `max_n` when > 0) on `workers`
/// threads, extracts and fits every declared series, and assembles the
/// artifact. `generator` names the producing binary.
BenchArtifact run_experiment(const Experiment& exp, int workers,
                             const std::string& generator, int max_n = 0);

/// Fits `result` against the experiment's declared series (the tail of
/// run_experiment, split out so benches can reuse a sweep they already
/// ran).
BenchArtifact make_artifact(const Experiment& exp, SweepResult result,
                            const std::string& generator);

/// True iff every series with a pinned expectation fitted a matching
/// class — the `rmrsim_cli sweep --check` / CI gate.
bool artifact_matches(const BenchArtifact& artifact);

/// The fitted-series text table (metric / model / algorithm / fitted class
/// / slope / expected / match) benches and the CLI both print. Empty
/// string when the artifact has no series.
std::string render_fit_table(const BenchArtifact& artifact);

}  // namespace rmrsim
