// BENCH_*.json artifact writer.
//
// One self-describing JSON document per experiment run: the sweep spec that
// produced it, the git revision, every grid point's metrics, and the fitted
// growth class of each declared series next to the paper's expected class.
// Schema-versioned and dependency-free (the writer is this file plus
// json_escape from trace/export.h), so CI and offline analysis can regress
// growth classes without parsing human tables. Field reference lives in
// EXPERIMENTS.md ("Machine-readable output").
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "harness/fitter.h"
#include "harness/sweep.h"

namespace rmrsim {

/// Bumped whenever a field changes meaning; consumers key on it.
inline constexpr int kArtifactSchemaVersion = 1;

/// One extracted series with its fit and (optionally) the claim it must
/// satisfy.
struct FittedSeries {
  SeriesSelector selector;
  ExtractedSeries series;
  FitReport fit;
  std::optional<Expectation> expected;
  bool matches_expectation = true;  ///< true when no expectation is set
};

struct BenchArtifact {
  std::string name;         ///< experiment name ("e1", ...)
  std::string title;        ///< human one-liner
  std::string generator;    ///< producing binary ("rmrsim_cli sweep", ...)
  std::string git;          ///< `git describe` (or RMRSIM_GIT_DESCRIBE)
  SweepResult result;
  std::vector<FittedSeries> series;
};

/// Serializes the artifact. `include_wall_time` = false omits the
/// run-environment fields (wall_time_ms and workers) — the form the
/// determinism regression test byte-compares across worker counts.
std::string artifact_to_json(const BenchArtifact& artifact,
                             bool include_wall_time = true);

/// Writes `BENCH_<name>.json` under `dir` (default: current directory).
/// Returns the path written. Throws on I/O failure. `include_wall_time` =
/// false writes the deterministic form (see artifact_to_json) that golden
/// files are byte-compared against.
std::string write_artifact(const BenchArtifact& artifact,
                           const std::string& dir = ".",
                           bool include_wall_time = true);

/// Current revision: $RMRSIM_GIT_DESCRIBE if set, else `git describe
/// --always --dirty`, else "unknown".
std::string git_describe();

}  // namespace rmrsim
