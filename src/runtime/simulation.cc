#include "runtime/simulation.h"

#include "common/check.h"

namespace rmrsim {

Simulation::Simulation(SharedMemory& memory, std::vector<Program> programs,
                       DirectivePolicy policy)
    : memory_(&memory), programs_(std::move(programs)),
      policy_(std::move(policy)) {
  ensure(static_cast<int>(programs_.size()) <= memory.nprocs(),
         "more programs than processors");
  procs_.reserve(programs_.size());
  schedule_.reserve(1024);
  for (std::size_t i = 0; i < programs_.size(); ++i) {
    Proc p;
    p.ctx = std::make_unique<ProcCtx>(static_cast<ProcId>(i), memory.nprocs());
    if (programs_[i]) {
      p.task = programs_[i](*p.ctx);
      p.started = true;
      ++unfinished_;
    } else {
      p.finished = true;
    }
    procs_.push_back(std::move(p));
  }
  // Run each program's local prologue to its first suspension point. No
  // memory operation is applied here — the first pending action becomes
  // visible, nothing more.
  for (Proc& p : procs_) {
    if (!p.started) continue;
    p.task.handle().resume();
    if (p.task.done()) {
      p.task.rethrow_if_error();
      p.finished = true;
      --unfinished_;
      p.ctx->mark_finished();
    } else {
      arm_delay(p);
    }
  }
}

void Simulation::arm_delay(Proc& pr) {
  if (pr.ctx->pending().kind == ActionKind::kDelay) {
    pr.wake_time =
        now_ + static_cast<std::uint64_t>(pr.ctx->pending().delay_ticks);
  }
}

bool Simulation::ready(ProcId p) const {
  const Proc& pr = proc(p);
  if (pr.finished || pr.crashed) return false;
  if (pr.ctx->pending().kind == ActionKind::kDelay) {
    return now_ >= pr.wake_time;
  }
  return true;
}

Simulation::Proc& Simulation::proc(ProcId p) {
  ensure(p >= 0 && p < nprocs(), "process id out of range");
  return procs_[static_cast<std::size_t>(p)];
}

const Simulation::Proc& Simulation::proc(ProcId p) const {
  ensure(p >= 0 && p < nprocs(), "process id out of range");
  return procs_[static_cast<std::size_t>(p)];
}

bool Simulation::runnable(ProcId p) const {
  const Proc& pr = proc(p);
  return !pr.finished && !pr.crashed;
}
bool Simulation::terminated(ProcId p) const { return proc(p).finished; }

bool Simulation::all_terminated() const { return unfinished_ == 0; }

const PendingAction& Simulation::pending(ProcId p) const {
  return proc(p).ctx->pending();
}

bool Simulation::pending_is_rmr(ProcId p) const {
  const PendingAction& a = pending(p);
  ensure(a.kind == ActionKind::kMemOp, "pending action is not a memory op");
  return memory_->classify_rmr(p, a.op);
}

int Simulation::directives_consumed(ProcId p) const {
  return proc(p).directives;
}

const StepRecord& Simulation::step(ProcId p) {
  Proc& pr = proc(p);
  ensure(!pr.finished, "stepping a terminated process");
  ensure(!pr.crashed, "stepping a crashed process (recover it first)");
  // Safe by reference: every field is read before the resume_* call that
  // overwrites the pending slot.
  const PendingAction& a = pr.ctx->pending();

  StepRecord rec;
  rec.proc = p;
  switch (a.kind) {
    case ActionKind::kMemOp: {
      const OpOutcome outcome = memory_->apply(p, a.op);
      rec.kind = StepRecord::Kind::kMemOp;
      rec.op = a.op;
      rec.outcome = outcome;
      rec.var_home = memory_->store().home(a.op.var);
      pr.ctx->resume_with_outcome(outcome);
      break;
    }
    case ActionKind::kEvent: {
      rec.kind = StepRecord::Kind::kEvent;
      rec.event = a.event;
      rec.code = a.code;
      rec.value = a.value;
      pr.ctx->resume_plain();
      break;
    }
    case ActionKind::kDirective: {
      ensure(static_cast<bool>(policy_),
             "driver requested a directive but no policy is set");
      const Directive d = policy_(p, pr.directives++);
      rec.kind = StepRecord::Kind::kEvent;
      rec.event = EventKind::kDirective;
      rec.code = d.action;
      rec.value = d.arg;
      pr.ctx->resume_with_directive(d);
      break;
    }
    case ActionKind::kDelay: {
      ensure(now_ >= pr.wake_time,
             "stepping a delayed process before its wake time");
      rec.kind = StepRecord::Kind::kEvent;
      rec.event = EventKind::kDelay;
      rec.value = a.delay_ticks;
      pr.ctx->resume_from_delay();
      break;
    }
    case ActionKind::kFinished:
      fail("stepping a process with no pending action");
  }
  ++now_;

  if (pr.task.done()) {
    pr.task.rethrow_if_error();
    pr.finished = true;
    --unfinished_;
    pr.ctx->mark_finished();
    rec.terminated_after = true;
  } else {
    arm_delay(pr);
  }
  ++pr.steps;
  schedule_.push_back(p);
  return history_.append(std::move(rec));
}

Simulation::MacroFootprint Simulation::macro_step(ProcId p) {
  ensure(runnable(p), "macro_step on a non-runnable process");
  MacroFootprint fp;
  while (runnable(p) && pending(p).kind != ActionKind::kMemOp) {
    if (pending(p).kind == ActionKind::kDelay && !ready(p)) {
      // Sleeping: advance the clock to its wake time. The explorers treat
      // time coarsely — a macro step never branches on tick placement.
      tick();
      continue;
    }
    const StepRecord& rec = step(p);
    if (rec.kind == StepRecord::Kind::kEvent && observable_event(rec.event)) {
      fp.observable = true;
    }
    if (rec.terminated_after) {
      fp.terminated = true;
      return fp;
    }
  }
  if (!runnable(p)) {
    fp.terminated = terminated(p);
    return fp;
  }
  const StepRecord& rec = step(p);
  fp.has_op = true;
  fp.var = rec.op.var;
  fp.access = access_class(rec.outcome);
  fp.terminated = rec.terminated_after;
  return fp;
}

Simulation::Stop Simulation::run_until_rmr_pending(ProcId p,
                                                   std::uint64_t max_steps) {
  for (std::uint64_t i = 0; i < max_steps; ++i) {
    if (terminated(p)) return Stop::kTerminated;
    const PendingAction& a = pending(p);
    if (a.kind == ActionKind::kMemOp && pending_is_rmr(p)) {
      return Stop::kRmrPending;
    }
    step(p);
  }
  return terminated(p) ? Stop::kTerminated : Stop::kBudget;
}

void Simulation::run_to_termination(ProcId p, std::uint64_t max_steps) {
  for (std::uint64_t i = 0; i < max_steps; ++i) {
    if (terminated(p)) return;
    step(p);
  }
  ensure(terminated(p), "run_to_termination exceeded its step budget");
}

bool Simulation::run_proc_until(
    ProcId p, const std::function<bool(const StepRecord&)>& pred,
    std::uint64_t max_steps) {
  for (std::uint64_t i = 0; i < max_steps; ++i) {
    if (terminated(p)) return false;
    if (pred(step(p))) return true;
  }
  return false;
}

void Simulation::crash(ProcId p) {
  Proc& pr = proc(p);
  ensure(!pr.erased, "cannot crash an erased process");
  ensure(!pr.crashed, "process is already crashed");
  ensure(!pr.finished, "cannot crash a terminated process");
  // Destroying the suspended coroutine frame unwinds every nested SubTask
  // frame (their destructors run), losing all coroutine-local state. The
  // pending action is dropped unapplied; shared memory keeps every write p
  // already performed.
  pr.task = ProcTask{};
  pr.crashed = true;
  ++pr.crashes;
  pr.ctx->mark_crashed();
  memory_->model().on_crash(p);
  // The link register does not survive a failure: any LL reservation p held
  // dies with the crash, so a post-recovery SC must fail until a fresh LL.
  memory_->store().clear_reservations(p);
  fault_trace_.push_back(
      {FaultRecord::Kind::kCrash, p, schedule_.size()});
  StepRecord rec;
  rec.proc = p;
  rec.kind = StepRecord::Kind::kEvent;
  rec.event = EventKind::kCrash;
  history_.append(std::move(rec));
}

void Simulation::recover(ProcId p) {
  Proc& pr = proc(p);
  ensure(pr.crashed, "recover() target is not crashed");
  // Fresh control block + fresh coroutine frame: all local state is lost,
  // exactly the RME failure model. Shared memory is untouched.
  pr.ctx = std::make_unique<ProcCtx>(p, memory_->nprocs());
  pr.task = programs_[static_cast<std::size_t>(p)](*pr.ctx);
  pr.crashed = false;
  ++pr.recoveries;
  fault_trace_.push_back(
      {FaultRecord::Kind::kRecover, p, schedule_.size()});
  StepRecord rec;
  rec.proc = p;
  rec.kind = StepRecord::Kind::kEvent;
  rec.event = EventKind::kRecover;
  history_.append(std::move(rec));
  // Re-run the local prologue to the first suspension point, mirroring the
  // constructor. No memory operation is applied here.
  pr.task.handle().resume();
  if (pr.task.done()) {
    pr.task.rethrow_if_error();
    pr.finished = true;
    --unfinished_;
    pr.ctx->mark_finished();
  } else {
    arm_delay(pr);
  }
}

void Simulation::erase_process(ProcId p) {
  Proc& pr = proc(p);
  ensure(!pr.crashed,
         "cannot erase a crashed process (its crash record would survive in "
         "the history and the fault trace; Lemma 6.7 erases live invisible "
         "processes only)");
  ensure(!pr.finished, "cannot erase a finished process (Lemma 6.7 erases "
                       "active processes only)");
  ensure(memory_->model().pricing_is_stateless(),
         "in-place erasure requires a stateless cost model (DSM)");
  ensure(!history_.seen_by_other(p),
         "process was seen by another process; erasure would change the "
         "observable history (Lemma 6.7 precondition)");
  ensure(!history_.uses_ll_sc(),
         "in-place erasure does not support LL/SC reservation side effects");

  // Revert p's surviving writes: each variable p overwrote goes back to the
  // last value written by someone else, or its initial value. Because p was
  // never seen, no other process's recorded step depended on these values,
  // so the reverted state matches the p-free replay exactly.
  for (const VarId v : history_.vars_written_by(p)) {
    if (history_.last_writer(v) == p) {
      const auto prev = history_.last_write_excluding(v, p);
      if (prev.has_value()) {
        memory_->store().poke(v, prev->first, prev->second);
      } else {
        memory_->store().poke(v, memory_->store().initial(v), kNoProc);
      }
    }
    memory_->store().forget_writer(v, p);
  }

  history_.remove_proc(p);
  memory_->ledger().forget(p);
  memory_->store().clear_reservations(p);
  std::erase(schedule_, p);
  pr.finished = true;
  pr.erased = true;
  --unfinished_;
  pr.ctx->mark_finished();
}

Simulation::RunResult Simulation::run(Scheduler& sched,
                                      std::uint64_t max_steps) {
  RunResult r;
  while (r.steps < max_steps && !all_terminated()) {
    const ProcId p = sched.next(*this);
    if (p == kNoProc) {
      // Nobody is ready. If someone is merely sleeping, advance the clock
      // so it can wake; otherwise the scheduler is done.
      bool sleeper = false;
      for (ProcId q = 0; q < nprocs(); ++q) {
        if (runnable(q) && !ready(q)) {
          sleeper = true;
          break;
        }
      }
      if (!sleeper) break;
      tick();
      ++r.steps;  // ticks consume budget too (they advance time)
      continue;
    }
    step(p);
    ++r.steps;
  }
  r.all_terminated = all_terminated();
  return r;
}

}  // namespace rmrsim
