#include "runtime/simulation.h"

#include "common/check.h"

namespace rmrsim {

Simulation::Simulation(SharedMemory& memory, std::vector<Program> programs,
                       DirectivePolicy policy)
    : Simulation(memory,
                 std::make_shared<const std::vector<Program>>(
                     std::move(programs)),
                 std::move(policy)) {}

Simulation::Simulation(SharedMemory& memory,
                       std::shared_ptr<const std::vector<Program>> programs,
                       DirectivePolicy policy)
    : Simulation(memory, std::move(programs), nullptr, std::move(policy)) {}

Simulation::Simulation(SharedMemory& memory,
                       std::shared_ptr<const std::vector<Program>> programs,
                       std::shared_ptr<const BytecodeSet> bytecode,
                       DirectivePolicy policy)
    : memory_(&memory), programs_(std::move(programs)),
      bytecode_(std::move(bytecode)), policy_(std::move(policy)) {
  const std::vector<Program>& progs = *programs_;
  ensure(static_cast<int>(progs.size()) <= memory.nprocs(),
         "more programs than processors");
  if (bytecode_ != nullptr) {
    ensure(bytecode_->per_proc.size() == progs.size(),
           "bytecode set size must match the program vector");
  }
  procs_.reserve(progs.size());
  schedule_.reserve(1024);
  for (std::size_t i = 0; i < progs.size(); ++i) {
    Proc p;
    p.ctx = std::make_unique<ProcCtx>(static_cast<ProcId>(i), memory.nprocs());
    const BytecodeProgram* bc =
        bytecode_ != nullptr ? bytecode_->per_proc[i].get() : nullptr;
    if (bc != nullptr) {
      // Compiled process: no coroutine frame is ever created, even when a
      // coroutine program is also supplied (the oracle form stays unused).
      p.bc = bc;
      p.th.reset(*bc);
      p.started = true;
      ++unfinished_;
    } else if (progs[i]) {
      p.task = progs[i](*p.ctx);
      p.started = true;
      ++unfinished_;
    } else {
      p.finished = true;
    }
    procs_.push_back(std::move(p));
  }
  // Run each program's local prologue to its first suspension point. No
  // memory operation is applied here — the first pending action becomes
  // visible, nothing more.
  for (Proc& p : procs_) {
    if (!p.started) continue;
    if (p.bc != nullptr) {
      if (bc_advance(p)) {
        p.finished = true;
        --unfinished_;
      } else {
        arm_delay(p);
      }
      continue;
    }
    p.task.handle().resume();
    if (p.task.done()) {
      p.task.rethrow_if_error();
      p.finished = true;
      --unfinished_;
      p.ctx->mark_finished();
    } else {
      arm_delay(p);
    }
  }
}

bool Simulation::bc_advance(Proc& pr) {
  if (bc_settle(*pr.bc, pr.th)) {
    pr.ctx->set_pending(bc_decode_pending(*pr.bc, pr.th));
    return false;
  }
  pr.ctx->mark_finished();
  return true;
}

void Simulation::arm_delay(Proc& pr) {
  if (pr.ctx->pending().kind == ActionKind::kDelay) {
    pr.wake_time =
        now_ + static_cast<std::uint64_t>(pr.ctx->pending().delay_ticks);
  }
}

const PendingAction& Simulation::pending(ProcId p) const {
  return proc(p).ctx->pending();
}

bool Simulation::pending_is_rmr(ProcId p) const {
  const PendingAction& a = pending(p);
  ensure(a.kind == ActionKind::kMemOp, "pending action is not a memory op");
  return memory_->classify_rmr(p, a.op);
}

int Simulation::directives_consumed(ProcId p) const {
  return proc(p).directives;
}

const StepRecord& Simulation::step(ProcId p) {
  Proc& pr = proc(p);
  ensure(!pr.finished, "stepping a terminated process");
  ensure(!pr.crashed, "stepping a crashed process (recover it first)");
  // Safe by reference: every field is read before the resume_* call that
  // overwrites the pending slot.
  const PendingAction& a = pr.ctx->pending();

  StepRecord rec;
  rec.proc = p;
  ResumeRecord resume;
  resume.kind = a.kind;
  switch (a.kind) {
    case ActionKind::kMemOp: {
      const OpOutcome outcome = memory_->apply(p, a.op);
      rec.kind = StepRecord::Kind::kMemOp;
      rec.op = a.op;
      rec.outcome = outcome;
      rec.var_home = memory_->store().home(a.op.var);
      resume.outcome = outcome;
      if (pr.bc != nullptr) {
        bc_complete_op(*pr.bc, pr.th, outcome);
      } else {
        pr.ctx->resume_with_outcome(outcome);
      }
      break;
    }
    case ActionKind::kEvent: {
      rec.kind = StepRecord::Kind::kEvent;
      rec.event = a.event;
      rec.code = a.code;
      rec.value = a.value;
      if (pr.bc != nullptr) {
        bc_complete_plain(*pr.bc, pr.th);
      } else {
        pr.ctx->resume_plain();
      }
      break;
    }
    case ActionKind::kDirective: {
      ensure(static_cast<bool>(policy_),
             "driver requested a directive but no policy is set");
      const Directive d = policy_(p, pr.directives++);
      rec.kind = StepRecord::Kind::kEvent;
      rec.event = EventKind::kDirective;
      rec.code = d.action;
      rec.value = d.arg;
      resume.directive = d;
      if (pr.bc != nullptr) {
        bc_complete_directive(*pr.bc, pr.th, d);
      } else {
        pr.ctx->resume_with_directive(d);
      }
      break;
    }
    case ActionKind::kDelay: {
      ensure(now_ >= pr.wake_time,
             "stepping a delayed process before its wake time");
      rec.kind = StepRecord::Kind::kEvent;
      rec.event = EventKind::kDelay;
      rec.value = a.delay_ticks;
      if (pr.bc != nullptr) {
        bc_complete_plain(*pr.bc, pr.th);
      } else {
        pr.ctx->resume_from_delay();
      }
      break;
    }
    case ActionKind::kFinished:
      fail("stepping a process with no pending action");
  }
  // Compiled processes need no resume log: their whole state is (pc, regs),
  // snapshotted by plain copy.
  if (fork_log_ && pr.bc == nullptr) pr.log.push_back(resume);
  ++now_;

  bool done;
  if (pr.bc != nullptr) {
    done = bc_advance(pr);
  } else {
    done = pr.task.done();
    if (done) pr.task.rethrow_if_error();
  }
  if (done) {
    pr.finished = true;
    --unfinished_;
    pr.ctx->mark_finished();
    rec.terminated_after = true;
  } else {
    arm_delay(pr);
  }
  ++pr.steps;
  schedule_.push_back(p);
  return history_.append(std::move(rec));
}

Simulation::MacroFootprint Simulation::macro_step(ProcId p) {
  ensure(runnable(p), "macro_step on a non-runnable process");
  MacroFootprint fp;
  while (runnable(p) && pending(p).kind != ActionKind::kMemOp) {
    if (pending(p).kind == ActionKind::kDelay && !ready(p)) {
      // Sleeping: advance the clock to its wake time. The explorers treat
      // time coarsely — a macro step never branches on tick placement.
      tick();
      continue;
    }
    const StepRecord& rec = step(p);
    if (rec.kind == StepRecord::Kind::kEvent && observable_event(rec.event)) {
      fp.observable = true;
    }
    if (rec.terminated_after) {
      fp.terminated = true;
      return fp;
    }
  }
  if (!runnable(p)) {
    fp.terminated = terminated(p);
    return fp;
  }
  const StepRecord& rec = step(p);
  fp.has_op = true;
  fp.var = rec.op.var;
  fp.access = access_class(rec.outcome);
  fp.terminated = rec.terminated_after;
  return fp;
}

Simulation::Stop Simulation::run_until_rmr_pending(ProcId p,
                                                   std::uint64_t max_steps) {
  for (std::uint64_t i = 0; i < max_steps; ++i) {
    if (terminated(p)) return Stop::kTerminated;
    const PendingAction& a = pending(p);
    if (a.kind == ActionKind::kMemOp && pending_is_rmr(p)) {
      return Stop::kRmrPending;
    }
    step(p);
  }
  return terminated(p) ? Stop::kTerminated : Stop::kBudget;
}

void Simulation::run_to_termination(ProcId p, std::uint64_t max_steps) {
  for (std::uint64_t i = 0; i < max_steps; ++i) {
    if (terminated(p)) return;
    step(p);
  }
  ensure(terminated(p), "run_to_termination exceeded its step budget");
}

bool Simulation::run_proc_until(
    ProcId p, const std::function<bool(const StepRecord&)>& pred,
    std::uint64_t max_steps) {
  for (std::uint64_t i = 0; i < max_steps; ++i) {
    if (terminated(p)) return false;
    if (pred(step(p))) return true;
  }
  return false;
}

void Simulation::crash(ProcId p) {
  Proc& pr = proc(p);
  ensure(!pr.erased, "cannot crash an erased process");
  ensure(!pr.crashed, "process is already crashed");
  ensure(!pr.finished, "cannot crash a terminated process");
  // Destroying the suspended coroutine frame unwinds every nested SubTask
  // frame (their destructors run), losing all coroutine-local state. The
  // pending action is dropped unapplied; shared memory keeps every write p
  // already performed.
  pr.task = ProcTask{};
  pr.log.clear();  // the logged incarnation's frame no longer exists
  pr.crashed = true;
  ++pr.crashes;
  pr.ctx->mark_crashed();
  memory_->notify_crash(p);
  // The link register does not survive a failure: any LL reservation p held
  // dies with the crash, so a post-recovery SC must fail until a fresh LL.
  memory_->store().clear_reservations(p);
  fault_trace_.push_back(
      {FaultRecord::Kind::kCrash, p, schedule_.size()});
  StepRecord rec;
  rec.proc = p;
  rec.kind = StepRecord::Kind::kEvent;
  rec.event = EventKind::kCrash;
  history_.append(std::move(rec));
}

void Simulation::recover(ProcId p) {
  Proc& pr = proc(p);
  ensure(pr.crashed, "recover() target is not crashed");
  // Fresh control block + fresh coroutine frame: all local state is lost,
  // exactly the RME failure model. Shared memory is untouched.
  pr.ctx = std::make_unique<ProcCtx>(p, memory_->nprocs());
  if (pr.bc != nullptr) {
    // Fresh (pc, registers): all local state is lost, like a destroyed
    // coroutine frame. The program restarts from instruction 0.
    pr.th.reset(*pr.bc);
  } else {
    pr.task = (*programs_)[static_cast<std::size_t>(p)](*pr.ctx);
  }
  pr.log.clear();  // fresh incarnation: its frame replays from the prologue
  pr.crashed = false;
  ++pr.recoveries;
  fault_trace_.push_back(
      {FaultRecord::Kind::kRecover, p, schedule_.size()});
  StepRecord rec;
  rec.proc = p;
  rec.kind = StepRecord::Kind::kEvent;
  rec.event = EventKind::kRecover;
  history_.append(std::move(rec));
  // Re-run the local prologue to the first suspension point, mirroring the
  // constructor. No memory operation is applied here.
  if (pr.bc != nullptr) {
    if (bc_advance(pr)) {
      pr.finished = true;
      --unfinished_;
    } else {
      arm_delay(pr);
    }
    return;
  }
  pr.task.handle().resume();
  if (pr.task.done()) {
    pr.task.rethrow_if_error();
    pr.finished = true;
    --unfinished_;
    pr.ctx->mark_finished();
  } else {
    arm_delay(pr);
  }
}

void Simulation::erase_process(ProcId p) {
  Proc& pr = proc(p);
  ensure(!pr.crashed,
         "cannot erase a crashed process (its crash record would survive in "
         "the history and the fault trace; Lemma 6.7 erases live invisible "
         "processes only)");
  ensure(!pr.finished, "cannot erase a finished process (Lemma 6.7 erases "
                       "active processes only)");
  ensure(memory_->model().pricing_is_stateless(),
         "in-place erasure requires a stateless cost model (DSM)");
  ensure(!history_.seen_by_other(p),
         "process was seen by another process; erasure would change the "
         "observable history (Lemma 6.7 precondition)");
  ensure(!history_.uses_ll_sc(),
         "in-place erasure does not support LL/SC reservation side effects");

  // Revert p's surviving writes: each variable p overwrote goes back to the
  // last value written by someone else, or its initial value. Because p was
  // never seen, no other process's recorded step depended on these values,
  // so the reverted state matches the p-free replay exactly.
  for (const VarId v : history_.vars_written_by(p)) {
    if (history_.last_writer(v) == p) {
      const auto prev = history_.last_write_excluding(v, p);
      if (prev.has_value()) {
        memory_->store().poke(v, prev->first, prev->second);
      } else {
        memory_->store().poke(v, memory_->store().initial(v), kNoProc);
      }
    }
    memory_->store().forget_writer(v, p);
  }

  history_.remove_proc(p);
  memory_->ledger().forget(p);
  memory_->store().clear_reservations(p);
  std::erase(schedule_, p);
  pr.task = ProcTask{};
  pr.log.clear();  // erased: no frame to rebuild on restore
  pr.finished = true;
  pr.erased = true;
  --unfinished_;
  pr.ctx->mark_finished();
}

void Simulation::enable_fork_log() {
  ensure(schedule_.empty() && history_.empty() && fault_trace_.empty(),
         "enable_fork_log() must be called before the first step");
  fork_log_ = true;
}

WorldSnapshot Simulation::snapshot() const {
  ensure(fork_log_,
         "snapshot() requires resume logging: call enable_fork_log() before "
         "the first step");
  WorldSnapshot s;
  s.store = memory_->store();
  s.model = memory_->model().clone();
  s.ledger = memory_->ledger();
  s.now = now_;
  s.history = history_;
  s.schedule = schedule_;
  s.fault_trace = fault_trace_;
  s.procs.reserve(procs_.size());
  for (const Proc& pr : procs_) {
    WorldSnapshot::ProcState ps;
    ps.started = pr.started;
    ps.finished = pr.finished;
    ps.erased = pr.erased;
    ps.crashed = pr.crashed;
    ps.directives = pr.directives;
    ps.crashes = pr.crashes;
    ps.recoveries = pr.recoveries;
    ps.steps = pr.steps;
    ps.wake_time = pr.wake_time;
    ps.log = pr.log;
    ps.pc = pr.th.pc;
    ps.regs = pr.th.regs;
    s.procs.push_back(std::move(ps));
  }
  s.programs = programs_;
  s.bytecode = bytecode_;
  s.policy = policy_;
  return s;
}

Simulation::Simulation(SharedMemory& memory, const WorldSnapshot& snap)
    : memory_(&memory), programs_(snap.programs), bytecode_(snap.bytecode),
      policy_(snap.policy) {
  const std::vector<Program>& progs = *programs_;
  ensure(static_cast<int>(progs.size()) <= memory.nprocs(),
         "more programs than processors");
  ensure(progs.size() == snap.procs.size(),
         "fork restore: process count diverged");
  fork_log_ = true;  // snapshots compose: the clone is itself forkable
  procs_.reserve(progs.size());
  schedule_.reserve(snap.schedule.size() + 64);
  for (std::size_t i = 0; i < progs.size(); ++i) {
    const WorldSnapshot::ProcState& ps = snap.procs[i];
    const BytecodeProgram* bc =
        bytecode_ != nullptr ? bytecode_->per_proc[i].get() : nullptr;
    ensure(ps.started ==
               (static_cast<bool>(progs[i]) || bc != nullptr),
           "fork restore: start state diverged");
    Proc p;
    p.ctx = std::make_unique<ProcCtx>(static_cast<ProcId>(i), memory.nprocs());
    p.bc = bc;
    p.started = ps.started;
    p.finished = ps.finished;
    p.erased = ps.erased;
    p.crashed = ps.crashed;
    p.directives = ps.directives;
    p.crashes = ps.crashes;
    p.recoveries = ps.recoveries;
    p.steps = ps.steps;
    // Copied, not re-armed: an arm_delay here would recompute the wake from
    // the clone's clock.
    p.wake_time = ps.wake_time;
    p.log = ps.log;
    if (!ps.started) {
      // Empty program slot: mirrors the public constructor (no frame, no
      // context marking).
    } else if (ps.finished) {
      // Finished (or erased): no frame survives; flags and counters do. The
      // frame allocation and prologue run are skipped entirely.
      p.ctx->mark_finished();
    } else if (ps.crashed) {
      // Crashed but recoverable: counts as unfinished, has no frame.
      p.ctx->mark_crashed();
      ++unfinished_;
    } else if (bc != nullptr) {
      // Live compiled process: its whole state is the captured (pc, regs)
      // pair. The pending action is a pure function of the instruction at
      // pc and the restored registers — recomputed, not replayed.
      ++unfinished_;
      p.th.pc = ps.pc;
      p.th.regs = ps.regs;
      p.ctx->set_pending(bc_decode_pending(*bc, p.th));
    } else {
      // Live: run the prologue, then fast-forward the fresh frame by
      // replaying the incarnation's resume log. No memory op is applied,
      // nothing is priced or recorded — the payloads were captured when the
      // original world stepped. If the incarnation follows a recovery, the
      // constructor-run prologue coincides with the recovery prologue (same
      // program, fresh context), so the log picks up exactly where the
      // original frame is suspended.
      ++unfinished_;
      p.task = progs[i](*p.ctx);
      p.task.handle().resume();
      if (p.task.done()) p.task.rethrow_if_error();
      ensure(!p.task.done(), "fork restore: prologue terminated a live process");
      for (const ResumeRecord& r : ps.log) {
        ensure(!p.task.done(),
               "fork restore: replay diverged (early termination)");
        ensure(p.ctx->pending().kind == r.kind,
               "fork restore: replay diverged (pending action kind)");
        switch (r.kind) {
          case ActionKind::kMemOp:
            p.ctx->resume_with_outcome(r.outcome);
            break;
          case ActionKind::kEvent:
            p.ctx->resume_plain();
            break;
          case ActionKind::kDirective:
            p.ctx->resume_with_directive(r.directive);
            break;
          case ActionKind::kDelay:
            p.ctx->resume_from_delay();
            break;
          case ActionKind::kFinished:
            fail("fork restore: kFinished in a resume log");
        }
      }
      ensure(!p.task.done(),
             "fork restore: replay diverged (unexpected termination)");
    }
    procs_.push_back(std::move(p));
  }
  now_ = snap.now;
  history_ = snap.history;
  history_.reserve(history_.size() + 64);
  schedule_ = snap.schedule;  // reuses the constructor-reserved capacity
  fault_trace_ = snap.fault_trace;
}

Simulation::ForkedWorld Simulation::restore(const WorldSnapshot& snap) {
  ensure(snap.model != nullptr, "restore() on a moved-from snapshot");
  ForkedWorld world;
  world.mem = std::make_unique<SharedMemory>(snap.store, snap.model->clone(),
                                             snap.ledger);
  world.sim.reset(new Simulation(*world.mem, snap));
  return world;
}

Simulation::ForkedWorld Simulation::fork() const { return restore(snapshot()); }

std::size_t WorldSnapshot::approx_bytes() const {
  const std::size_t nvars = static_cast<std::size_t>(store.num_vars());
  const std::size_t mask_words =
      (static_cast<std::size_t>(store.nprocs()) + 63) / 64;
  std::size_t bytes = sizeof(WorldSnapshot);
  bytes += nvars * (64 /*slot incl. name*/ +
                    2 * mask_words * sizeof(std::uint64_t));
  if (history.mode() == HistoryMode::kFull) {
    bytes += history.size() * sizeof(StepRecord);
  }
  bytes += schedule.size() * sizeof(ProcId);
  bytes += fault_trace.size() * sizeof(Simulation::FaultRecord);
  for (const ProcState& ps : procs) {
    bytes += sizeof(ProcState) + ps.log.size() * sizeof(ResumeRecord) +
             ps.regs.size() * sizeof(Word);
  }
  return bytes;
}

void Simulation::step_compiled_fast(ProcId p, Proc& pr,
                                    std::vector<std::uint64_t>& batch_ops,
                                    std::vector<std::uint64_t>& batch_rmrs) {
  const PendingAction& a = pr.ctx->pending();
  bool mem = false;
  bool rmr = false;
  bool ll_sc = false;
  switch (a.kind) {
    case ActionKind::kMemOp: {
      const OpOutcome outcome = memory_->apply_unledgered(p, a.op);
      mem = true;
      rmr = outcome.rmr;
      ll_sc = a.op.type == OpType::kLl || a.op.type == OpType::kSc;
      bc_complete_op(*pr.bc, pr.th, outcome);
      break;
    }
    case ActionKind::kEvent:
      bc_complete_plain(*pr.bc, pr.th);
      break;
    case ActionKind::kDirective: {
      ensure(static_cast<bool>(policy_),
             "driver requested a directive but no policy is set");
      bc_complete_directive(*pr.bc, pr.th, policy_(p, pr.directives++));
      break;
    }
    case ActionKind::kDelay:
      ensure(now_ >= pr.wake_time,
             "stepping a delayed process before its wake time");
      bc_complete_plain(*pr.bc, pr.th);
      break;
    case ActionKind::kFinished:
      fail("stepping a process with no pending action");
  }
  ++now_;
  ++pr.steps;
  schedule_.push_back(p);
  if (mem) {
    ++batch_ops[static_cast<std::size_t>(p)];
    if (rmr) ++batch_rmrs[static_cast<std::size_t>(p)];
  }
  bool done = false;
  if (bc_advance(pr)) {
    pr.finished = true;
    --unfinished_;
    done = true;
  } else {
    arm_delay(pr);
  }
  if (mem) {
    history_.note_mem_step(p, rmr, ll_sc, done);
  } else {
    history_.note_event_step(p, done);
  }
}

Simulation::RunResult Simulation::run(Scheduler& sched,
                                      std::uint64_t max_steps) {
  RunResult r;
  // Counters-only fast path for compiled processes: per-step records are
  // dropped anyway, nothing consumes resume logs or coherence events, and
  // ledger increments commute — so steps skip StepRecord construction
  // entirely and ledger charges are batched per process, flushed below.
  const bool fast = bytecode_ != nullptr &&
                    history_.mode() == HistoryMode::kCountersOnly &&
                    !fork_log_ && memory_->listener() == nullptr;
  std::vector<std::uint64_t> batch_ops;
  std::vector<std::uint64_t> batch_rmrs;
  if (fast) {
    batch_ops.assign(procs_.size(), 0);
    batch_rmrs.assign(procs_.size(), 0);
  }
  while (r.steps < max_steps && !all_terminated()) {
    const ProcId p = sched.next(*this);
    if (p == kNoProc) {
      // Nobody is ready. If someone is merely sleeping, advance the clock
      // so it can wake; otherwise the scheduler is done.
      bool sleeper = false;
      for (ProcId q = 0; q < nprocs(); ++q) {
        if (runnable(q) && !ready(q)) {
          sleeper = true;
          break;
        }
      }
      if (!sleeper) break;
      tick();
      ++r.steps;  // ticks consume budget too (they advance time)
      continue;
    }
    if (fast) {
      Proc& pr = proc(p);
      if (pr.bc != nullptr && !pr.finished && !pr.crashed) {
        step_compiled_fast(p, pr, batch_ops, batch_rmrs);
        ++r.steps;
        continue;
      }
    }
    step(p);
    ++r.steps;
  }
  if (fast) {
    for (std::size_t i = 0; i < batch_ops.size(); ++i) {
      if (batch_ops[i] != 0) {
        memory_->ledger().charge(static_cast<ProcId>(i), batch_ops[i],
                                 batch_rmrs[i]);
      }
    }
  }
  r.all_terminated = all_terminated();
  return r;
}

}  // namespace rmrsim
