// Coroutine plumbing for simulated processes.
//
// Algorithms in rmrsim are written as straight-line pseudocode, exactly like
// the paper's listings, using C++20 coroutines:
//
//   SubTask<bool> Poll(ProcCtx& ctx) {
//     Word b = co_await ctx.read(B);
//     co_return b != 0;
//   }
//
// Every shared-memory access suspends the whole coroutine stack and hands
// control back to the simulator *before* the access is applied. That gives
// the scheduler step-level control over interleavings (Section 2's arbitrary
// asynchrony) and gives the lower-bound adversary its "about to perform an
// RMR" hook (Section 6.1).
//
// Two task types:
//  * ProcTask    — a process's whole program (top level, owned by Simulation).
//  * SubTask<T>  — a procedure (Poll, Signal, Acquire, ...) callable from a
//                  program or another procedure via co_await; uses symmetric
//                  transfer so nesting costs nothing and suspensions bubble
//                  straight to the simulator.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace rmrsim {

/// Top-level process program. Move-only owner of the coroutine frame.
/// Created suspended; the Simulation resumes it step by step.
class [[nodiscard]] ProcTask {
 public:
  struct promise_type {
    std::exception_ptr error;

    ProcTask get_return_object() {
      return ProcTask(Handle::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { error = std::current_exception(); }
  };
  using Handle = std::coroutine_handle<promise_type>;

  ProcTask() = default;
  explicit ProcTask(Handle h) : handle_(h) {}
  ProcTask(ProcTask&& other) noexcept
      : handle_(std::exchange(other.handle_, {})) {}
  ProcTask& operator=(ProcTask&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ProcTask(const ProcTask&) = delete;
  ProcTask& operator=(const ProcTask&) = delete;
  ~ProcTask() { destroy(); }

  Handle handle() const { return handle_; }
  bool done() const { return !handle_ || handle_.done(); }

  /// Rethrows an exception the program ended with, if any.
  void rethrow_if_error() const {
    if (handle_ && handle_.promise().error) {
      std::rethrow_exception(handle_.promise().error);
    }
  }

 private:
  void destroy() {
    if (handle_) handle_.destroy();
    handle_ = {};
  }
  Handle handle_;
};

/// A procedure returning T, awaited with `co_await proc(ctx, ...)`.
template <typename T>
class [[nodiscard]] SubTask {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;
    std::exception_ptr error;
    T value{};

    SubTask get_return_object() {
      return SubTask(Handle::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        return h.promise().continuation;  // symmetric transfer to the caller
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_value(T v) { value = std::move(v); }
    void unhandled_exception() { error = std::current_exception(); }
  };
  using Handle = std::coroutine_handle<promise_type>;

  explicit SubTask(Handle h) : handle_(h) {}
  SubTask(SubTask&& other) noexcept
      : handle_(std::exchange(other.handle_, {})) {}
  SubTask(const SubTask&) = delete;
  SubTask& operator=(const SubTask&) = delete;
  SubTask& operator=(SubTask&&) = delete;
  ~SubTask() {
    if (handle_) handle_.destroy();
  }

  // Awaiter protocol: starting the subtask lazily on first await.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> caller) {
    handle_.promise().continuation = caller;
    return handle_;
  }
  T await_resume() {
    if (handle_.promise().error) {
      std::rethrow_exception(handle_.promise().error);
    }
    return std::move(handle_.promise().value);
  }

 private:
  Handle handle_;
};

/// void specialization.
template <>
class [[nodiscard]] SubTask<void> {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;
    std::exception_ptr error;

    SubTask get_return_object() {
      return SubTask(Handle::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        return h.promise().continuation;
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { error = std::current_exception(); }
  };
  using Handle = std::coroutine_handle<promise_type>;

  explicit SubTask(Handle h) : handle_(h) {}
  SubTask(SubTask&& other) noexcept
      : handle_(std::exchange(other.handle_, {})) {}
  SubTask(const SubTask&) = delete;
  SubTask& operator=(const SubTask&) = delete;
  SubTask& operator=(SubTask&&) = delete;
  ~SubTask() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> caller) {
    handle_.promise().continuation = caller;
    return handle_;
  }
  void await_resume() {
    if (handle_.promise().error) {
      std::rethrow_exception(handle_.promise().error);
    }
  }

 private:
  Handle handle_;
};

}  // namespace rmrsim
