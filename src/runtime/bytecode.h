// Bytecode lowering of algorithm programs — the compiled step engine.
//
// The coroutine runtime (runtime/coro.h, runtime/proc_ctx.h) is the semantic
// reference: every algorithm is written once as a coroutine and that form
// defines its step sequence. But resuming a coroutine chain per simulated
// step — with a SubTask frame allocation per procedure call — dominates the
// step loop (DESIGN.md §9, "Step-loop performance model"). This module lowers
// a process's program to a flat instruction table executed by a dispatch
// loop whose entire per-process state is a (pc, register file) pair:
//
//  - *Suspendable* instructions (memory primitives, call boundaries, marks,
//    directives, delays) correspond 1:1 to the coroutine awaiters: executing
//    one parks the exact PendingAction the awaiter would have parked, and the
//    simulator applies/prices/records it through the same Simulation::step
//    path. A compiled process therefore produces byte-identical histories,
//    ledgers, and schedules — the oracle-parity contract gated by
//    tests/bytecode_parity_test.cc.
//  - *Local* instructions (register moves, arithmetic, branches) model the
//    algorithm's local computation, which the paper's cost model — and the
//    coroutine engine — charge nothing for. They execute inline between
//    steps (bc_settle) and never appear in the history.
//
// Programs are compiled per process: the process id `me` is a compile-time
// constant, so per-process variables (V[me], Reg[me]) resolve to direct
// variable-table slots; dynamically indexed accesses (queue slots, list
// chasing) use base+register addressing into the same table.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "history/step_record.h"
#include "memory/memop.h"
#include "runtime/proc_ctx.h"

namespace rmrsim {

/// Which engine executes a process's program. kCompiled requires a lowered
/// bytecode program; processes without one fall back to the coroutine
/// engine (the two interoperate freely within one simulation).
enum class StepEngine {
  kCoroutine,  ///< coroutine frames resumed per step (the semantic oracle)
  kCompiled,   ///< flat bytecode, (pc, register file) per process
};

enum class BcOp : std::uint8_t {
  // Suspendable: shared-memory primitives (one simulation step each).
  kRead,       ///< dst = [var]
  kWrite,      ///< [var] = regs[a]
  kCas,        ///< dst = old; if old == regs[a] then [var] = regs[b]
  kLl,         ///< dst = [var], sets reservation
  kSc,         ///< dst = success; if reserved then [var] = regs[a]
  kFaa,        ///< dst = old; [var] += regs[a]
  kFas,        ///< dst = old; [var] = regs[a]
  kTas,        ///< dst = old; if old == 0 then [var] = 1
  // Suspendable: events and driver plumbing (one simulation step each).
  kCallBegin,  ///< record call boundary, code = imm
  kCallEnd,    ///< record call end, code = imm, ret = regs[a] (kNoReg: 0)
  kMark,       ///< record mark, code = imm, value = regs[a] (kNoReg: 0)
  kDirective,  ///< ask the directive policy; dst = action, regs[a] = arg
  kDelay,      ///< sleep for imm ticks
  // Local: executed inline by bc_settle, no simulation step.
  kLoadImm,        ///< dst = imm
  kMove,           ///< dst = regs[a]
  kAddImm,         ///< dst = regs[a] + imm
  kNeImm,          ///< dst = (regs[a] != imm) ? 1 : 0
  kJump,           ///< pc = target
  kJumpIfZero,     ///< if regs[a] == 0 then pc = target
  kJumpIfNotZero,  ///< if regs[a] != 0 then pc = target
  kJumpIfEq,       ///< if regs[a] == regs[b] then pc = target
  kJumpIfEqImm,    ///< if regs[a] == imm then pc = target
  kTrap,           ///< unreachable-state marker: executing it fails loudly
  kHalt,           ///< program complete
};

/// True for instructions that park a PendingAction and take one step.
constexpr bool bc_suspends(BcOp op) { return op <= BcOp::kDelay; }

using BcReg = std::uint8_t;
inline constexpr BcReg kNoReg = 0xFF;

struct BcInstr {
  BcOp op = BcOp::kHalt;
  BcReg dst = kNoReg;  ///< result register
  BcReg a = kNoReg;    ///< first operand register
  BcReg b = kNoReg;    ///< second operand register
  BcReg vx = kNoReg;   ///< index register for var addressing (kNoReg: direct)
  std::uint32_t var = 0;     ///< base index into vartab (memory ops)
  std::uint32_t target = 0;  ///< jump target (branches)
  Word imm = 0;              ///< immediate operand / event code
};

/// One compiled program: immutable after build, shared by snapshots and
/// restored worlds exactly like the coroutine Program vector.
struct BytecodeProgram {
  std::vector<BcInstr> code;
  std::vector<VarId> vartab;
  int num_regs = 0;
  std::string name;  ///< diagnostics only
};

/// Per-process compiled programs for one simulation. Entries may be null:
/// those processes run on the coroutine engine.
struct BytecodeSet {
  std::vector<std::shared_ptr<const BytecodeProgram>> per_proc;
};

/// A compiled process's entire mutable state. Forking a world copies this
/// by plain vector copy (bulk memcpy of PODs) — no resume-log replay.
struct BcThread {
  std::uint32_t pc = 0;
  std::vector<Word> regs;

  void reset(const BytecodeProgram& bc) {
    pc = 0;
    regs.assign(static_cast<std::size_t>(bc.num_regs), 0);
  }
};

// The interpreter core is defined inline below: decode/settle/complete run
// once (settle: several times) per simulated step on the compiled engine's
// fast path, and a cross-TU call per helper is measurable there. Failure
// messages are built inside [[unlikely]] branches, never eagerly — a string
// concatenation per call would dominate the whole dispatch loop.
namespace bc_detail {

/// Local-instruction fuel per settle: every lowered loop contains at least
/// one suspendable instruction, so hitting this bound means a miscompiled
/// (diverging) local loop, not a long program.
constexpr std::uint64_t kSettleFuel = 1u << 22;

/// No bounds check here: BytecodeBuilder::build() rejects any instruction
/// whose register operand is kNoReg-where-required or >= num_regs, and
/// BcThread::reset() sizes regs to exactly num_regs, so every operand the
/// interpreter can see is in range by construction.
inline Word reg_at(const BcThread& t, BcReg r) {
  return t.regs[static_cast<std::size_t>(r)];
}

inline Word& reg_ref(BcThread& t, BcReg r) {
  return t.regs[static_cast<std::size_t>(r)];
}

inline VarId resolve_var(const BytecodeProgram& bc, const BcThread& t,
                         const BcInstr& in) {
  std::int64_t idx = static_cast<std::int64_t>(in.var);
  if (in.vx != kNoReg) idx += reg_at(t, in.vx);
  if (idx < 0 || idx >= static_cast<std::int64_t>(bc.vartab.size()))
      [[unlikely]] {
    fail("bytecode variable index out of range in '" + bc.name + "'");
  }
  return bc.vartab[static_cast<std::size_t>(idx)];
}

inline const BcInstr& instr_at(const BytecodeProgram& bc, std::uint32_t pc) {
  if (pc >= bc.code.size()) [[unlikely]] {
    fail("bytecode pc out of range in '" + bc.name + "' (missing kHalt?)");
  }
  return bc.code[pc];
}

}  // namespace bc_detail

/// Decodes the suspendable instruction at t.pc into the PendingAction the
/// corresponding coroutine awaiter would have parked. Pure: operand
/// registers are read, nothing advances.
inline PendingAction bc_decode_pending(const BytecodeProgram& bc,
                                       const BcThread& t) {
  using bc_detail::reg_at;
  using bc_detail::resolve_var;
  const BcInstr& in = bc_detail::instr_at(bc, t.pc);
  PendingAction a;
  switch (in.op) {
    case BcOp::kRead:
      a = {.kind = ActionKind::kMemOp, .op = MemOp::read(resolve_var(bc, t, in))};
      break;
    case BcOp::kWrite:
      a = {.kind = ActionKind::kMemOp,
           .op = MemOp::write(resolve_var(bc, t, in), reg_at(t, in.a))};
      break;
    case BcOp::kCas:
      a = {.kind = ActionKind::kMemOp,
           .op = MemOp::cas(resolve_var(bc, t, in), reg_at(t, in.a),
                            reg_at(t, in.b))};
      break;
    case BcOp::kLl:
      a = {.kind = ActionKind::kMemOp, .op = MemOp::ll(resolve_var(bc, t, in))};
      break;
    case BcOp::kSc:
      a = {.kind = ActionKind::kMemOp,
           .op = MemOp::sc(resolve_var(bc, t, in), reg_at(t, in.a))};
      break;
    case BcOp::kFaa:
      a = {.kind = ActionKind::kMemOp,
           .op = MemOp::faa(resolve_var(bc, t, in), reg_at(t, in.a))};
      break;
    case BcOp::kFas:
      a = {.kind = ActionKind::kMemOp,
           .op = MemOp::fas(resolve_var(bc, t, in), reg_at(t, in.a))};
      break;
    case BcOp::kTas:
      a = {.kind = ActionKind::kMemOp, .op = MemOp::tas(resolve_var(bc, t, in))};
      break;
    case BcOp::kCallBegin:
      a = {.kind = ActionKind::kEvent, .event = EventKind::kCallBegin,
           .code = in.imm, .value = 0};
      break;
    case BcOp::kCallEnd:
      a = {.kind = ActionKind::kEvent, .event = EventKind::kCallEnd,
           .code = in.imm,
           .value = in.a == kNoReg ? Word{0} : reg_at(t, in.a)};
      break;
    case BcOp::kMark:
      a = {.kind = ActionKind::kEvent, .event = EventKind::kMark,
           .code = in.imm,
           .value = in.a == kNoReg ? Word{0} : reg_at(t, in.a)};
      break;
    case BcOp::kDirective:
      a = {.kind = ActionKind::kDirective};
      break;
    case BcOp::kDelay:
      a = {.kind = ActionKind::kDelay, .delay_ticks = in.imm};
      break;
    default:
      fail("bc_decode_pending on a local instruction in '" + bc.name + "'");
  }
  return a;
}

/// Executes local instructions from t.pc until the next suspendable
/// instruction (leaves t.pc on it; returns true) or kHalt (returns false).
/// Fails loudly on a local loop with no suspension point (fuel bound) and
/// on kTrap.
inline bool bc_settle(const BytecodeProgram& bc, BcThread& t) {
  using bc_detail::reg_at;
  using bc_detail::reg_ref;
  std::uint64_t fuel = bc_detail::kSettleFuel;
  for (;;) {
    const BcInstr& in = bc_detail::instr_at(bc, t.pc);
    if (bc_suspends(in.op)) return true;
    if (fuel-- == 0) [[unlikely]] {
      fail("bytecode local loop ran " + std::to_string(bc_detail::kSettleFuel) +
           " instructions without a suspension point in '" + bc.name + "'");
    }
    switch (in.op) {
      case BcOp::kLoadImm:
        reg_ref(t, in.dst) = in.imm;
        ++t.pc;
        break;
      case BcOp::kMove:
        reg_ref(t, in.dst) = reg_at(t, in.a);
        ++t.pc;
        break;
      case BcOp::kAddImm:
        reg_ref(t, in.dst) = reg_at(t, in.a) + in.imm;
        ++t.pc;
        break;
      case BcOp::kNeImm:
        reg_ref(t, in.dst) = reg_at(t, in.a) != in.imm ? 1 : 0;
        ++t.pc;
        break;
      case BcOp::kJump:
        t.pc = in.target;
        break;
      case BcOp::kJumpIfZero:
        t.pc = reg_at(t, in.a) == 0 ? in.target : t.pc + 1;
        break;
      case BcOp::kJumpIfNotZero:
        t.pc = reg_at(t, in.a) != 0 ? in.target : t.pc + 1;
        break;
      case BcOp::kJumpIfEq:
        t.pc = reg_at(t, in.a) == reg_at(t, in.b) ? in.target : t.pc + 1;
        break;
      case BcOp::kJumpIfEqImm:
        t.pc = reg_at(t, in.a) == in.imm ? in.target : t.pc + 1;
        break;
      case BcOp::kTrap:
        fail("bytecode trap reached in '" + bc.name +
             "' (invalid driver state)");
      case BcOp::kHalt:
        return false;
      default:
        fail("unknown local bytecode instruction");
    }
  }
}

/// Completes the suspendable instruction at t.pc with its applied payload
/// and advances past it (the compiled analogue of ProcCtx::resume_*).
inline void bc_complete_op(const BytecodeProgram& bc, BcThread& t,
                           const OpOutcome& outcome) {
  const BcInstr& in = bc_detail::instr_at(bc, t.pc);
  ensure(bc_suspends(in.op) && in.op <= BcOp::kTas,
         "bc_complete_op: pc is not at a memory instruction");
  if (in.dst != kNoReg) bc_detail::reg_ref(t, in.dst) = outcome.result;
  ++t.pc;
}

inline void bc_complete_plain(const BytecodeProgram& bc, BcThread& t) {
  const BcInstr& in = bc_detail::instr_at(bc, t.pc);
  ensure(in.op == BcOp::kCallBegin || in.op == BcOp::kCallEnd ||
             in.op == BcOp::kMark || in.op == BcOp::kDelay,
         "bc_complete_plain: pc is not at an event/delay instruction");
  ++t.pc;
}

inline void bc_complete_directive(const BytecodeProgram& bc, BcThread& t,
                                  const Directive& d) {
  const BcInstr& in = bc_detail::instr_at(bc, t.pc);
  ensure(in.op == BcOp::kDirective,
         "bc_complete_directive: pc is not at a directive instruction");
  bc_detail::reg_ref(t, in.dst) = static_cast<Word>(d.action);
  bc_detail::reg_ref(t, in.a) = d.arg;
  ++t.pc;
}

/// Assembles one BytecodeProgram: interns variables, allocates registers,
/// binds labels, and validates the result (targets bound and in range,
/// register operands within the allocated file, direct variable operands
/// within the table).
class BytecodeBuilder {
 public:
  struct Label {
    std::uint32_t id = 0;
  };

  /// Allocates a fresh register (zero-initialized at program start).
  BcReg reg();

  /// Interns a single variable (deduplicated) and returns its table index.
  std::uint32_t var(VarId v);

  /// Appends a contiguous block for base+register addressing; returns the
  /// base index. Not deduplicated (blocks must stay contiguous).
  std::uint32_t var_array(const std::vector<VarId>& vs);

  Label label();
  void bind(Label l);

  // Local instructions.
  void load_imm(BcReg dst, Word imm);
  void move(BcReg dst, BcReg src);
  void add_imm(BcReg dst, BcReg src, Word imm);
  void ne_imm(BcReg dst, BcReg src, Word imm);
  void jump(Label l);
  void jz(BcReg r, Label l);
  void jnz(BcReg r, Label l);
  void jeq(BcReg x, BcReg y, Label l);
  void jeq_imm(BcReg x, Word imm, Label l);
  void trap();
  void halt();

  // Suspendable memory primitives. `ix` selects indexed addressing:
  // effective table slot = var + regs[ix].
  void read(BcReg dst, std::uint32_t var, BcReg ix = kNoReg);
  void write(std::uint32_t var, BcReg value, BcReg ix = kNoReg);
  void cas(BcReg dst, std::uint32_t var, BcReg expect, BcReg desired,
           BcReg ix = kNoReg);
  void ll(BcReg dst, std::uint32_t var, BcReg ix = kNoReg);
  void sc(BcReg dst, std::uint32_t var, BcReg value, BcReg ix = kNoReg);
  void faa(BcReg dst, std::uint32_t var, BcReg delta, BcReg ix = kNoReg);
  void fas(BcReg dst, std::uint32_t var, BcReg value, BcReg ix = kNoReg);
  void tas(BcReg dst, std::uint32_t var, BcReg ix = kNoReg);

  // Suspendable events.
  void call_begin(Word code);
  void call_end(Word code, BcReg ret = kNoReg);
  void mark(Word code, BcReg value = kNoReg);
  void directive(BcReg action, BcReg arg);
  void delay(Word ticks);

  /// Validates and finalizes. The builder is consumed.
  std::shared_ptr<const BytecodeProgram> build(std::string name);

 private:
  void emit(BcInstr in);
  void branch(BcOp op, BcReg a, BcReg b, Word imm, Label l);
  void mem(BcOp op, BcReg dst, std::uint32_t var, BcReg ix, BcReg a,
           BcReg b);

  std::vector<BcInstr> code_;
  std::vector<VarId> vartab_;
  std::vector<std::int64_t> labels_;  ///< label id -> bound pc (-1 unbound)
  int next_reg_ = 0;
};

}  // namespace rmrsim
