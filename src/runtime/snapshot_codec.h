// Wire serialization of WorldSnapshot (sharded exploration).
//
// A WorldSnapshot deep-copies everything a world owns — except the program
// callables, compiled bytecode, directive policy, and keepalive, which are
// shared immutably and are not serializable (a std::function captures live
// pointers). Shipping a snapshot to a worker process therefore splits the
// snapshot in two:
//
//  * the *content* — store values/masks, cost-model state, ledger, clock,
//    history, schedule, fault trace, per-process control state and resume
//    logs — crosses the wire via encode_world_snapshot();
//  * the *immutables* — programs, bytecode, policy, keepalive — are grafted
//    on the receiving side from a `proto` snapshot the worker builds locally
//    by constructing the same instance (same builder, same options) and
//    snapshotting it untouched.
//
// decode_world_snapshot() validates that the wire content structurally
// matches the proto (same process count, same store layout, same cost-model
// name) and throws std::runtime_error on any mismatch, truncation, or
// malformed payload — a worker launched with different options must fail
// loudly, never explore a subtly different world.
#pragma once

#include <string>
#include <string_view>

#include "runtime/simulation.h"

namespace rmrsim {

/// Serializes the snapshot's content (everything except the unserializable
/// shared immutables) in the common little-endian codec. Canonical: a pure
/// function of the world state.
std::string encode_world_snapshot(const WorldSnapshot& snap);

/// Rebuilds a snapshot from wire content, grafting the shared immutables
/// (programs, bytecode, policy, keepalive) and the store's diagnostic names
/// from `proto`. The result restores into a world byte-equivalent to the
/// sender's (same future steps, ledger, history).
WorldSnapshot decode_world_snapshot(std::string_view bytes,
                                    const WorldSnapshot& proto);

}  // namespace rmrsim
