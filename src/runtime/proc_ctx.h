// ProcCtx: the per-process control block joining algorithm code to the
// simulator.
//
// Algorithm coroutines call the awaitable accessors (read/write/cas/...,
// call_begin/call_end, next_directive). Each awaitable parks a PendingAction
// in the ProcCtx and suspends; the Simulation inspects the pending action
// (e.g. to price it as an RMR before applying — the adversary's hook),
// applies it, deposits the outcome, and resumes the coroutine.
#pragma once

#include <coroutine>

#include "common/check.h"
#include "common/types.h"
#include "history/step_record.h"
#include "memory/memop.h"

namespace rmrsim {

/// What a process is suspended on.
enum class ActionKind {
  kMemOp,      ///< about to apply pending.op
  kEvent,      ///< about to record a call boundary / mark
  kDirective,  ///< waiting for the client driver's next instruction
  kDelay,      ///< sleeping until the simulation clock reaches a wake time
  kFinished,   ///< program ran to completion
};

struct PendingAction {
  ActionKind kind = ActionKind::kFinished;
  MemOp op{};
  EventKind event = EventKind::kMark;
  Word code = 0;
  Word value = 0;
  Word delay_ticks = 0;  ///< kDelay: requested duration (time units)
};

class ProcCtx {
 public:
  ProcCtx(ProcId id, int nprocs) : id_(id), nprocs_(nprocs) {}
  ProcCtx(const ProcCtx&) = delete;
  ProcCtx& operator=(const ProcCtx&) = delete;

  ProcId id() const { return id_; }
  int nprocs() const { return nprocs_; }

  // ---- awaitables used by algorithm code ------------------------------

  struct OpAwaiter {
    ProcCtx* ctx;
    MemOp op;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      ctx->pending_ = PendingAction{.kind = ActionKind::kMemOp, .op = op};
      ctx->resume_point_ = h;
    }
    /// The primitive's result (see OpType).
    Word await_resume() const { return ctx->outcome_.result; }
  };

  struct EventAwaiter {
    ProcCtx* ctx;
    EventKind event;
    Word code;
    Word value;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      ctx->pending_ = PendingAction{
          .kind = ActionKind::kEvent, .event = event, .code = code,
          .value = value};
      ctx->resume_point_ = h;
    }
    void await_resume() const noexcept {}
  };

  struct DirectiveAwaiter {
    ProcCtx* ctx;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      ctx->pending_ = PendingAction{.kind = ActionKind::kDirective};
      ctx->resume_point_ = h;
    }
    Directive await_resume() const { return ctx->directive_; }
  };

  struct DelayAwaiter {
    ProcCtx* ctx;
    Word ticks;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      ctx->pending_ =
          PendingAction{.kind = ActionKind::kDelay, .delay_ticks = ticks};
      ctx->resume_point_ = h;
    }
    void await_resume() const noexcept {}
  };

  /// Shared-memory primitives. `co_await ctx.read(v)` etc. Each suspends
  /// once; the operation is applied atomically when the scheduler steps this
  /// process.
  OpAwaiter apply(MemOp op) { return OpAwaiter{this, op}; }
  OpAwaiter read(VarId v) { return apply(MemOp::read(v)); }
  OpAwaiter write(VarId v, Word value) { return apply(MemOp::write(v, value)); }
  OpAwaiter cas(VarId v, Word expect, Word desired) {
    return apply(MemOp::cas(v, expect, desired));
  }
  OpAwaiter ll(VarId v) { return apply(MemOp::ll(v)); }
  OpAwaiter sc(VarId v, Word value) { return apply(MemOp::sc(v, value)); }
  OpAwaiter faa(VarId v, Word delta) { return apply(MemOp::faa(v, delta)); }
  OpAwaiter fas(VarId v, Word value) { return apply(MemOp::fas(v, value)); }
  OpAwaiter tas(VarId v) { return apply(MemOp::tas(v)); }

  /// Records a procedure-call boundary in the history (used by the
  /// Specification 4.1 checker and the ME checker).
  EventAwaiter call_begin(Word call_code) {
    return EventAwaiter{this, EventKind::kCallBegin, call_code, 0};
  }
  EventAwaiter call_end(Word call_code, Word ret = 0) {
    return EventAwaiter{this, EventKind::kCallEnd, call_code, ret};
  }
  EventAwaiter mark(Word code, Word value = 0) {
    return EventAwaiter{this, EventKind::kMark, code, value};
  }

  /// Asks the client driver's directive policy what to do next (which
  /// procedure to call, or terminate). This is how the adversary steers
  /// waiters through "zero or more calls in arbitrary order" (Definition
  /// 6.1).
  DirectiveAwaiter next_directive() { return DirectiveAwaiter{this}; }

  /// Semi-synchronous model (Section 3's timing-based systems): delays the
  /// process for at least `ticks` time units. The process becomes ready
  /// again once the simulation clock (one unit per step/tick) reaches the
  /// wake time; until then schedulers must not step it.
  DelayAwaiter delay(Word ticks) { return DelayAwaiter{this, ticks}; }

  // ---- simulator side --------------------------------------------------

  const PendingAction& pending() const { return pending_; }

  /// Parks a pending action directly — the compiled engine's analogue of an
  /// awaiter's await_suspend. Compiled processes have no coroutine frame, so
  /// no resume point is recorded; the simulator advances them through the
  /// bytecode completion functions instead of resume_*().
  void set_pending(const PendingAction& a) { pending_ = a; }

  /// Applies the deposited result and resumes the coroutine stack to its
  /// next suspension point (or completion).
  void resume_with_outcome(const OpOutcome& outcome) {
    ensure(pending_.kind == ActionKind::kMemOp, "no pending memory op");
    outcome_ = outcome;
    resume();
  }

  void resume_with_directive(const Directive& d) {
    ensure(pending_.kind == ActionKind::kDirective, "no pending directive");
    directive_ = d;
    resume();
  }

  void resume_plain() {
    ensure(pending_.kind == ActionKind::kEvent, "no pending event");
    resume();
  }

  void resume_from_delay() {
    ensure(pending_.kind == ActionKind::kDelay, "no pending delay");
    resume();
  }

  void mark_finished() { pending_ = PendingAction{}; }

  /// Crash support (Simulation::crash): the coroutine frame is destroyed by
  /// the owner, so the parked resume point and pending action are dead —
  /// clear both so nothing can resume into freed memory.
  void mark_crashed() {
    pending_ = PendingAction{};
    resume_point_ = {};
  }

 private:
  void resume() {
    ensure(static_cast<bool>(resume_point_), "process is not suspended");
    auto h = resume_point_;
    resume_point_ = {};
    // If the resumed code suspends again it overwrites pending_; if the
    // program completes, Simulation::step marks us finished.
    h.resume();
  }

  ProcId id_;
  int nprocs_;
  PendingAction pending_{};
  OpOutcome outcome_{};
  Directive directive_{};
  std::coroutine_handle<> resume_point_;
};

}  // namespace rmrsim
