#include "runtime/snapshot_codec.h"

#include <stdexcept>

#include "common/check.h"
#include "common/codec.h"
#include "common/crc32.h"

namespace rmrsim {

namespace {

void put_ledger(std::string& out, const RmrLedger& ledger) {
  put_u32(out, static_cast<std::uint32_t>(ledger.nprocs()));
  for (int p = 0; p < ledger.nprocs(); ++p) {
    put_u64(out, ledger.ops(static_cast<ProcId>(p)));
    put_u64(out, ledger.rmrs(static_cast<ProcId>(p)));
  }
}

RmrLedger take_ledger(ByteReader& r) {
  const int nprocs = static_cast<int>(r.u32());
  if (nprocs <= 0 || nprocs > 1 << 20) {
    throw std::runtime_error("bad ledger process count");
  }
  RmrLedger ledger(nprocs);
  for (int p = 0; p < nprocs; ++p) {
    const std::uint64_t ops = r.u64();
    const std::uint64_t rmrs = r.u64();
    if (rmrs > ops) throw std::runtime_error("ledger rmrs exceed ops");
    ledger.charge(static_cast<ProcId>(p), ops, rmrs);
  }
  return ledger;
}

/// World core shared by the wire format and the fingerprint: cost-model
/// identity and state, store content, ledger, clock.
void put_world_core(std::string& out, const WorldSnapshot& snap) {
  put_string(out, snap.model->name());
  std::string state;
  snap.model->save_state(state);
  put_string(out, state);
  snap.store.encode(out);
  put_ledger(out, snap.ledger);
  put_u64(out, snap.now);
}

void put_procs(std::string& out, const WorldSnapshot& snap) {
  put_u32(out, static_cast<std::uint32_t>(snap.procs.size()));
  for (const WorldSnapshot::ProcState& ps : snap.procs) {
    put_u32(out, ps.started ? 1 : 0);
    put_u32(out, ps.finished ? 1 : 0);
    put_u32(out, ps.erased ? 1 : 0);
    put_u32(out, ps.crashed ? 1 : 0);
    put_u32(out, static_cast<std::uint32_t>(ps.directives));
    put_u32(out, static_cast<std::uint32_t>(ps.crashes));
    put_u32(out, static_cast<std::uint32_t>(ps.recoveries));
    put_u64(out, ps.steps);
    put_u64(out, ps.wake_time);
    put_u32(out, static_cast<std::uint32_t>(ps.log.size()));
    for (const ResumeRecord& rec : ps.log) {
      put_u32(out, static_cast<std::uint32_t>(rec.kind));
      put_u64(out, static_cast<std::uint64_t>(rec.outcome.result));
      put_u32(out, rec.outcome.rmr ? 1 : 0);
      put_u32(out, rec.outcome.nontrivial ? 1 : 0);
      put_u32(out, static_cast<std::uint32_t>(rec.outcome.prev_writer));
      put_u32(out, static_cast<std::uint32_t>(rec.directive.action));
      put_u64(out, static_cast<std::uint64_t>(rec.directive.arg));
    }
    put_u32(out, ps.pc);
    put_u32(out, static_cast<std::uint32_t>(ps.regs.size()));
    for (const Word w : ps.regs) put_u64(out, static_cast<std::uint64_t>(w));
  }
}

std::vector<WorldSnapshot::ProcState> take_procs(ByteReader& r) {
  const std::uint32_t n = r.u32();
  std::vector<WorldSnapshot::ProcState> procs;
  procs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    WorldSnapshot::ProcState ps;
    ps.started = r.u32() != 0;
    ps.finished = r.u32() != 0;
    ps.erased = r.u32() != 0;
    ps.crashed = r.u32() != 0;
    ps.directives = static_cast<int>(r.u32());
    ps.crashes = static_cast<int>(r.u32());
    ps.recoveries = static_cast<int>(r.u32());
    ps.steps = r.u64();
    ps.wake_time = r.u64();
    const std::uint32_t nlog = r.u32();
    ps.log.reserve(nlog);
    for (std::uint32_t j = 0; j < nlog; ++j) {
      ResumeRecord rec;
      const std::uint32_t kind = r.u32();
      if (kind > static_cast<std::uint32_t>(ActionKind::kFinished)) {
        throw std::runtime_error("bad resume-record kind");
      }
      rec.kind = static_cast<ActionKind>(kind);
      rec.outcome.result = static_cast<Word>(r.u64());
      rec.outcome.rmr = r.u32() != 0;
      rec.outcome.nontrivial = r.u32() != 0;
      rec.outcome.prev_writer = static_cast<ProcId>(r.u32());
      rec.directive.action = static_cast<int>(r.u32());
      rec.directive.arg = static_cast<Word>(r.u64());
      ps.log.push_back(rec);
    }
    ps.pc = r.u32();
    const std::uint32_t nregs = r.u32();
    r.need(std::size_t{8} * nregs);
    ps.regs.reserve(nregs);
    for (std::uint32_t j = 0; j < nregs; ++j) {
      ps.regs.push_back(static_cast<Word>(r.u64()));
    }
    procs.push_back(std::move(ps));
  }
  return procs;
}

}  // namespace

std::string encode_world_snapshot(const WorldSnapshot& snap) {
  ensure(snap.model != nullptr,
         "encode_world_snapshot() on a moved-from snapshot");
  std::string out;
  put_world_core(out, snap);
  snap.history.encode(out);
  put_schedule(out, snap.schedule);
  put_u32(out, static_cast<std::uint32_t>(snap.fault_trace.size()));
  for (const Simulation::FaultRecord& f : snap.fault_trace) {
    put_u32(out, static_cast<std::uint32_t>(f.kind));
    put_u32(out, static_cast<std::uint32_t>(f.proc));
    put_u64(out, f.at);
  }
  put_procs(out, snap);
  return out;
}

WorldSnapshot decode_world_snapshot(std::string_view bytes,
                                    const WorldSnapshot& proto) {
  ensure(proto.model != nullptr,
         "decode_world_snapshot() needs a proto with a live cost model");
  ByteReader r(bytes);
  WorldSnapshot out;
  const std::string model_name = r.str();
  if (model_name != proto.model->name()) {
    throw std::runtime_error("snapshot cost-model mismatch: wire has '" +
                             model_name + "', this process runs '" +
                             std::string(proto.model->name()) + "'");
  }
  out.model = proto.model->clone();
  out.model->reset();
  {
    const std::string state = r.str();
    ByteReader sr(state);
    out.model->load_state(sr);
    if (!sr.done()) {
      throw std::runtime_error("trailing bytes in cost-model state");
    }
  }
  out.store = proto.store;
  out.store.decode(r);
  out.ledger = take_ledger(r);
  if (out.ledger.nprocs() != proto.ledger.nprocs()) {
    throw std::runtime_error("snapshot ledger process count mismatch");
  }
  out.now = r.u64();
  out.history.decode(r);
  out.schedule = r.schedule();
  const std::uint32_t nfaults = r.u32();
  out.fault_trace.reserve(nfaults);
  for (std::uint32_t i = 0; i < nfaults; ++i) {
    Simulation::FaultRecord f;
    const std::uint32_t kind = r.u32();
    if (kind > static_cast<std::uint32_t>(
                   Simulation::FaultRecord::Kind::kRecover)) {
      throw std::runtime_error("bad fault-record kind");
    }
    f.kind = static_cast<Simulation::FaultRecord::Kind>(kind);
    f.proc = static_cast<ProcId>(r.u32());
    f.at = r.u64();
    out.fault_trace.push_back(f);
  }
  out.procs = take_procs(r);
  if (out.procs.size() != proto.procs.size()) {
    throw std::runtime_error("snapshot process count mismatch");
  }
  if (!r.done()) throw std::runtime_error("trailing bytes in snapshot");
  out.programs = proto.programs;
  out.bytecode = proto.bytecode;
  out.policy = proto.policy;
  out.keepalive = proto.keepalive;
  return out;
}

std::uint64_t WorldSnapshot::fingerprint() const {
  ensure(model != nullptr, "fingerprint() on a moved-from snapshot");
  std::string bytes;
  put_world_core(bytes, *this);
  history.encode_counters(bytes);
  put_procs(bytes, *this);
  return fnv1a64(bytes);
}

}  // namespace rmrsim
