#include "runtime/bytecode.h"

#include <algorithm>

#include "common/check.h"

namespace rmrsim {

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

BcReg BytecodeBuilder::reg() {
  ensure(next_reg_ < 255, "bytecode program uses too many registers");
  return static_cast<BcReg>(next_reg_++);
}

std::uint32_t BytecodeBuilder::var(VarId v) {
  ensure(v != kNoVar, "cannot intern kNoVar");
  for (std::size_t i = 0; i < vartab_.size(); ++i) {
    if (vartab_[i] == v) return static_cast<std::uint32_t>(i);
  }
  vartab_.push_back(v);
  return static_cast<std::uint32_t>(vartab_.size() - 1);
}

std::uint32_t BytecodeBuilder::var_array(const std::vector<VarId>& vs) {
  ensure(!vs.empty(), "var_array needs at least one variable");
  const auto base = static_cast<std::uint32_t>(vartab_.size());
  vartab_.insert(vartab_.end(), vs.begin(), vs.end());
  return base;
}

BytecodeBuilder::Label BytecodeBuilder::label() {
  labels_.push_back(-1);
  return Label{static_cast<std::uint32_t>(labels_.size() - 1)};
}

void BytecodeBuilder::bind(Label l) {
  ensure(l.id < labels_.size(), "bind: unknown label");
  ensure(labels_[l.id] == -1, "bind: label already bound");
  labels_[l.id] = static_cast<std::int64_t>(code_.size());
}

void BytecodeBuilder::emit(BcInstr in) { code_.push_back(in); }

void BytecodeBuilder::branch(BcOp op, BcReg a, BcReg b, Word imm, Label l) {
  ensure(l.id < labels_.size(), "branch: unknown label");
  emit({.op = op, .a = a, .b = b, .target = l.id, .imm = imm});
}

void BytecodeBuilder::load_imm(BcReg dst, Word imm) {
  emit({.op = BcOp::kLoadImm, .dst = dst, .imm = imm});
}
void BytecodeBuilder::move(BcReg dst, BcReg src) {
  emit({.op = BcOp::kMove, .dst = dst, .a = src});
}
void BytecodeBuilder::add_imm(BcReg dst, BcReg src, Word imm) {
  emit({.op = BcOp::kAddImm, .dst = dst, .a = src, .imm = imm});
}
void BytecodeBuilder::ne_imm(BcReg dst, BcReg src, Word imm) {
  emit({.op = BcOp::kNeImm, .dst = dst, .a = src, .imm = imm});
}
void BytecodeBuilder::jump(Label l) {
  branch(BcOp::kJump, kNoReg, kNoReg, 0, l);
}
void BytecodeBuilder::jz(BcReg r, Label l) {
  branch(BcOp::kJumpIfZero, r, kNoReg, 0, l);
}
void BytecodeBuilder::jnz(BcReg r, Label l) {
  branch(BcOp::kJumpIfNotZero, r, kNoReg, 0, l);
}
void BytecodeBuilder::jeq(BcReg x, BcReg y, Label l) {
  branch(BcOp::kJumpIfEq, x, y, 0, l);
}
void BytecodeBuilder::jeq_imm(BcReg x, Word imm, Label l) {
  branch(BcOp::kJumpIfEqImm, x, kNoReg, imm, l);
}
void BytecodeBuilder::trap() { emit({.op = BcOp::kTrap}); }
void BytecodeBuilder::halt() { emit({.op = BcOp::kHalt}); }

void BytecodeBuilder::mem(BcOp op, BcReg dst, std::uint32_t v, BcReg ix,
                          BcReg a, BcReg b) {
  emit({.op = op, .dst = dst, .a = a, .b = b, .vx = ix, .var = v});
}

void BytecodeBuilder::read(BcReg dst, std::uint32_t v, BcReg ix) {
  mem(BcOp::kRead, dst, v, ix, kNoReg, kNoReg);
}
void BytecodeBuilder::write(std::uint32_t v, BcReg value, BcReg ix) {
  mem(BcOp::kWrite, kNoReg, v, ix, value, kNoReg);
}
void BytecodeBuilder::cas(BcReg dst, std::uint32_t v, BcReg expect,
                          BcReg desired, BcReg ix) {
  mem(BcOp::kCas, dst, v, ix, expect, desired);
}
void BytecodeBuilder::ll(BcReg dst, std::uint32_t v, BcReg ix) {
  mem(BcOp::kLl, dst, v, ix, kNoReg, kNoReg);
}
void BytecodeBuilder::sc(BcReg dst, std::uint32_t v, BcReg value, BcReg ix) {
  mem(BcOp::kSc, dst, v, ix, value, kNoReg);
}
void BytecodeBuilder::faa(BcReg dst, std::uint32_t v, BcReg delta, BcReg ix) {
  mem(BcOp::kFaa, dst, v, ix, delta, kNoReg);
}
void BytecodeBuilder::fas(BcReg dst, std::uint32_t v, BcReg value, BcReg ix) {
  mem(BcOp::kFas, dst, v, ix, value, kNoReg);
}
void BytecodeBuilder::tas(BcReg dst, std::uint32_t v, BcReg ix) {
  mem(BcOp::kTas, dst, v, ix, kNoReg, kNoReg);
}

void BytecodeBuilder::call_begin(Word code) {
  emit({.op = BcOp::kCallBegin, .imm = code});
}
void BytecodeBuilder::call_end(Word code, BcReg ret) {
  emit({.op = BcOp::kCallEnd, .a = ret, .imm = code});
}
void BytecodeBuilder::mark(Word code, BcReg value) {
  emit({.op = BcOp::kMark, .a = value, .imm = code});
}
void BytecodeBuilder::directive(BcReg action, BcReg arg) {
  emit({.op = BcOp::kDirective, .dst = action, .a = arg});
}
void BytecodeBuilder::delay(Word ticks) {
  ensure(ticks >= 0, "delay ticks must be non-negative");
  emit({.op = BcOp::kDelay, .imm = ticks});
}

std::shared_ptr<const BytecodeProgram> BytecodeBuilder::build(
    std::string name) {
  auto prog = std::make_shared<BytecodeProgram>();
  prog->name = std::move(name);
  prog->num_regs = next_reg_;
  prog->vartab = std::move(vartab_);
  prog->code = std::move(code_);
  ensure(!prog->code.empty(), "empty bytecode program '" + prog->name + "'");

  const auto check_reg = [&](BcReg r, bool required) {
    if (r == kNoReg) {
      ensure(!required, "missing register operand in '" + prog->name + "'");
      return;
    }
    ensure(r < prog->num_regs,
           "register operand out of range in '" + prog->name + "'");
  };

  for (BcInstr& in : prog->code) {
    switch (in.op) {
      case BcOp::kJump:
      case BcOp::kJumpIfZero:
      case BcOp::kJumpIfNotZero:
      case BcOp::kJumpIfEq:
      case BcOp::kJumpIfEqImm: {
        ensure(in.target < labels_.size(),
               "branch to unknown label in '" + prog->name + "'");
        const std::int64_t bound = labels_[in.target];
        ensure(bound >= 0, "branch to unbound label in '" + prog->name + "'");
        ensure(bound <= static_cast<std::int64_t>(prog->code.size()),
               "branch target out of range in '" + prog->name + "'");
        in.target = static_cast<std::uint32_t>(bound);
        check_reg(in.a, in.op != BcOp::kJump);
        check_reg(in.b, in.op == BcOp::kJumpIfEq);
        break;
      }
      case BcOp::kRead:
      case BcOp::kWrite:
      case BcOp::kCas:
      case BcOp::kLl:
      case BcOp::kSc:
      case BcOp::kFaa:
      case BcOp::kFas:
      case BcOp::kTas:
        if (in.vx == kNoReg) {
          ensure(in.var < prog->vartab.size(),
                 "variable operand out of range in '" + prog->name + "'");
        } else {
          check_reg(in.vx, true);
          ensure(in.var <= prog->vartab.size(),
                 "variable base out of range in '" + prog->name + "'");
        }
        check_reg(in.dst, false);
        check_reg(in.a, in.op == BcOp::kWrite || in.op == BcOp::kCas ||
                            in.op == BcOp::kSc || in.op == BcOp::kFaa ||
                            in.op == BcOp::kFas);
        check_reg(in.b, in.op == BcOp::kCas);
        break;
      case BcOp::kDirective:
        check_reg(in.dst, true);
        check_reg(in.a, true);
        break;
      case BcOp::kLoadImm:
        check_reg(in.dst, true);
        break;
      case BcOp::kMove:
      case BcOp::kAddImm:
      case BcOp::kNeImm:
        check_reg(in.dst, true);
        check_reg(in.a, true);
        break;
      case BcOp::kCallBegin:
      case BcOp::kCallEnd:
      case BcOp::kMark:
        check_reg(in.a, false);
        break;
      case BcOp::kDelay:
      case BcOp::kTrap:
      case BcOp::kHalt:
        break;
    }
  }
  // Execution must not fall off the end: the last instruction must be an
  // unconditional control transfer or terminal.
  const BcOp last = prog->code.back().op;
  ensure(last == BcOp::kHalt || last == BcOp::kJump || last == BcOp::kTrap,
         "bytecode program '" + prog->name + "' can fall off the end");
  return prog;
}

}  // namespace rmrsim
