// Simulation: one execution of an N-process shared-memory algorithm.
//
// Owns the process coroutines and the recorded History; applies one pending
// action at a time under the direction of a Scheduler (or of the lower-bound
// adversary, which drives step() directly). Everything is deterministic: the
// same (memory contents, programs, schedule, directive policy, fault trace)
// always yields the same history — the property the erasure-by-replay
// machinery of the Section 6 adversary and the replay of crashy schedules
// both rest on.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "history/history.h"
#include "memory/shared_memory.h"
#include "runtime/bytecode.h"
#include "runtime/coro.h"
#include "runtime/proc_ctx.h"

namespace rmrsim {

class Simulation;
struct WorldSnapshot;

/// One recorded coroutine resume: the payload a process received when its
/// pending action was applied. A process's coroutine frame is a deterministic
/// function of its program and the sequence of resume payloads, so replaying
/// the log against a fresh frame rebuilds the exact suspension point — the
/// mechanism world forking uses to "copy" frames that C++ cannot copy.
/// Replaying the log touches no shared memory, prices nothing, and records
/// nothing: it is an order of magnitude cheaper than re-executing the steps.
struct ResumeRecord {
  ActionKind kind = ActionKind::kFinished;
  OpOutcome outcome{};    ///< kMemOp payload
  Directive directive{};  ///< kDirective payload (kEvent/kDelay carry none)
};

/// Picks which process takes the next step. Implementations in src/sched.
/// The simulation is passed mutably so fault-injecting schedulers
/// (FaultScheduler) can crash/recover processes between steps; ordinary
/// schedulers only read it.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  /// Returns a process with a pending action, or kNoProc to stop the run.
  virtual ProcId next(Simulation& sim) = 0;
};

/// A process program: invoked once per process at simulation start. Write
/// programs as free coroutine functions taking parameters by value (copied
/// into the frame) — see runtime/coro.h for the lifetime rules.
using Program = std::function<ProcTask(ProcCtx&)>;

class Simulation {
 public:
  /// Supplies directives to client drivers: called with (process, index of
  /// the directive request for that process, counted from 0).
  using DirectivePolicy = std::function<Directive(ProcId, int)>;

  /// `programs[p]` is process p's program; an empty std::function means the
  /// process never runs. The memory is borrowed and must outlive the
  /// simulation. Programs run (their local prologue) up to the first
  /// suspension point during construction.
  Simulation(SharedMemory& memory, std::vector<Program> programs,
             DirectivePolicy policy = {});

  /// Same, with the program vector shared rather than owned. Snapshots and
  /// restored worlds all reference one immutable vector — forking never
  /// copies the callables.
  Simulation(SharedMemory& memory,
             std::shared_ptr<const std::vector<Program>> programs,
             DirectivePolicy policy = {});

  /// Same, with compiled bytecode attached (runtime/bytecode.h). Processes
  /// with a non-null entry in `bytecode` execute on the compiled engine —
  /// per-process state is a (pc, register file) pair, no coroutine frame —
  /// through the same step()/pricing/recording path, so histories, ledgers
  /// and schedules are byte-identical to the coroutine engine (the
  /// oracle-parity contract). A null `bytecode`, or null entries, fall back
  /// to the coroutine programs.
  Simulation(SharedMemory& memory,
             std::shared_ptr<const std::vector<Program>> programs,
             std::shared_ptr<const BytecodeSet> bytecode,
             DirectivePolicy policy = {});

  int nprocs() const { return static_cast<int>(procs_.size()); }

  /// True iff p runs on the compiled (bytecode) engine.
  bool compiled(ProcId p) const { return proc(p).bc != nullptr; }

  /// True iff p has a pending action to apply.
  bool runnable(ProcId p) const;
  bool terminated(ProcId p) const;
  bool all_terminated() const;

  /// True iff p can be stepped *now*: runnable and, if sleeping in a
  /// delay(), its wake time has been reached. Schedulers pick among ready
  /// processes; when none is ready but sleepers exist, run() advances the
  /// clock with tick().
  bool ready(ProcId p) const;

  /// Simulation clock: one unit per applied step or tick. The
  /// semi-synchronous model's Delta is expressed in these units.
  std::uint64_t now() const { return now_; }

  /// Advances the clock without any process taking a step (lets sleeping
  /// processes reach their wake time when nobody else is ready). Recorded
  /// in the schedule as a kNoProc entry so timed runs replay exactly.
  void tick() {
    ++now_;
    schedule_.push_back(kNoProc);
  }

  const PendingAction& pending(ProcId p) const;

  /// Would p's pending memory op be an RMR if applied now? Requires a
  /// pending kMemOp. This is the adversary's "about to perform an RMR" test.
  bool pending_is_rmr(ProcId p) const;

  /// Applies p's pending action, records it, and advances p to its next
  /// suspension point. Returns the recorded step.
  const StepRecord& step(ProcId p);

  /// Memory-access footprint of one *macro step* — the model checker's unit
  /// transition ("flush p's local events, then apply its next memory op").
  /// Two macro steps of different processes commute iff !dependent(a, b):
  /// they may not conflict on a variable (same var with at least one
  /// kMutate) and may not both carry observable events (whose cross-process
  /// order checkers are allowed to inspect — see observable_event()).
  struct MacroFootprint {
    bool has_op = false;          ///< a memory op was applied
    VarId var = kNoVar;           ///< its variable (valid iff has_op)
    AccessClass access = AccessClass::kObserve;
    bool observable = false;      ///< flushed a call boundary or mark
    bool terminated = false;      ///< p ran to completion during this step
  };

  static bool dependent(const MacroFootprint& a, const MacroFootprint& b) {
    if (a.observable && b.observable) return true;
    return a.has_op && b.has_op && a.var == b.var &&
           (a.access == AccessClass::kMutate ||
            b.access == AccessClass::kMutate);
  }

  /// Applies one macro step of p: flushes pending events/directives (ticking
  /// the clock through any delay) up to p's next memory op, applies that op
  /// (or runs p to termination if none remains), and returns the footprint
  /// of everything applied. Exactly the replay unit the schedule explorers
  /// branch on; requires runnable(p).
  MacroFootprint macro_step(ProcId p);

  /// Outcome classification for run_until_rmr_pending.
  enum class Stop { kRmrPending, kTerminated, kBudget };

  /// Steps p (applying local actions, events and directives) until its next
  /// pending action is a memory op classified as an RMR, or p terminates,
  /// or `max_steps` of p's steps have been applied.
  Stop run_until_rmr_pending(ProcId p, std::uint64_t max_steps);

  /// Steps p until it terminates (solo run); throws if the budget is hit.
  void run_to_termination(ProcId p, std::uint64_t max_steps);

  /// Steps p until the just-applied step satisfies `pred`. Returns true if a
  /// matching step was applied within `max_steps`, false if p terminated or
  /// the budget ran out first. The standard way to drive a process to a
  /// precise crash point ("right after its FAI", "inside its critical
  /// section") before calling crash().
  bool run_proc_until(ProcId p,
                      const std::function<bool(const StepRecord&)>& pred,
                      std::uint64_t max_steps = 100'000);

  struct RunResult {
    std::uint64_t steps = 0;
    bool all_terminated = false;
  };

  /// Runs under a scheduler until everyone terminated, the scheduler returns
  /// kNoProc, or max_steps total steps were applied.
  RunResult run(Scheduler& sched, std::uint64_t max_steps);

  const History& history() const { return history_; }

  /// Switches history recording mode (see history/history.h). Counters-only
  /// drops per-step records — benches and exhaustive exploration keep the
  /// ledger/footprint queries without paying per-step record growth. Must be
  /// called before any step is recorded.
  void set_history_mode(HistoryMode mode) { history_.set_mode(mode); }
  SharedMemory& memory() { return *memory_; }
  const SharedMemory& memory() const { return *memory_; }

  /// Process ids in the order stepped — a schedule that replays this run.
  /// Clock ticks appear as kNoProc entries (ScriptedScheduler passes them
  /// through and Simulation::run re-applies the tick).
  const std::vector<ProcId>& schedule() const { return schedule_; }

  void set_directive_policy(DirectivePolicy policy) {
    policy_ = std::move(policy);
  }

  /// Erases process `p` from the execution in place (Lemma 6.7): drops its
  /// steps from the history, reverts its surviving writes to the value the
  /// previous writer left (or the initial value), forgets its ledger
  /// contribution, and removes it from the runnable set. Sound — and
  /// enforced — only when (a) the cost model is stateless (DSM), (b) no
  /// other process has seen p, and (c) the history uses no LL/SC (whose
  /// reservation side effects cannot be reverted). The resulting state is
  /// exactly what replaying the p-filtered schedule would produce.
  void erase_process(ProcId p);

  /// True iff p was removed via erase_process.
  bool erased(ProcId p) const { return proc(p).erased; }

  // ---- crash/recovery fault injection (the RME failure model) ----------
  //
  // A crash abandons the process mid-call: its coroutine stack (all local
  // state, loop counters, held references) is destroyed, nothing it holds
  // is released, and every shared-memory write it performed stays exactly
  // as written. A recovery re-runs the process's program from the top with
  // shared memory preserved — the Golab–Ramaraju recoverable-mutex failure
  // model. Crashes and recoveries are recorded both in the history (as
  // EventKind::kCrash / kRecover records) and in the fault trace, so a
  // crashy run replays exactly: same schedule + same fault trace = same
  // history (see FaultPlan::scripted).

  /// Crashes process p: destroys its coroutine frame mid-call without
  /// applying its pending action. p stops being runnable until recover(p).
  /// The cost model is notified (a CC crash drops p's cached copies, so
  /// re-executed prologues are priced as cold RMRs again; DSM pricing is
  /// stateless and unaffected). Throws if p is terminated, erased, or
  /// already crashed.
  void crash(ProcId p);

  /// Recovers a crashed process: re-instantiates its program (fresh
  /// coroutine-local state, prologue run to the first suspension point)
  /// against the preserved shared memory. RMRs of re-executed code are
  /// charged to the ledger like any other operation — recovery is not free.
  void recover(ProcId p);

  /// True iff p is currently crashed (crash() without a later recover()).
  bool crashed(ProcId p) const { return proc(p).crashed; }

  /// Lifetime fault counters for p.
  int crash_count(ProcId p) const { return proc(p).crashes; }
  int recovery_count(ProcId p) const { return proc(p).recoveries; }

  /// Steps applied by p so far (memory ops and events alike). The
  /// crash-at-step fault trigger counts in these units.
  std::uint64_t steps_taken(ProcId p) const { return proc(p).steps; }

  /// One recorded fault: what happened to whom, positioned by the number of
  /// steps (schedule entries) applied when it was injected. Replaying the
  /// recorded schedule under FaultPlan::scripted(fault_trace()) reproduces
  /// the crashy history exactly.
  struct FaultRecord {
    enum class Kind { kCrash, kRecover };
    Kind kind = Kind::kCrash;
    ProcId proc = kNoProc;
    std::uint64_t at = 0;  ///< schedule().size() when the fault was applied
  };

  const std::vector<FaultRecord>& fault_trace() const { return fault_trace_; }

  /// Number of directives process p has consumed so far.
  int directives_consumed(ProcId p) const;

  // ---- world forking (snapshot / restore) ------------------------------
  //
  // A WorldSnapshot is a deep, deterministic copy of the entire simulated
  // world: memory values and writer/LL-reservation masks, cost-model cache
  // state, RMR ledger, history (full or counters-only), schedule, fault
  // trace, clock, and every process's control state. Coroutine frames cannot
  // be copied in C++, so they are captured as per-process *resume logs* (see
  // ResumeRecord) and rebuilt on restore by replaying the log against a
  // fresh frame — no memory op is applied and nothing is priced or recorded
  // during the replay. The contract: a restored world is behaviorally
  // indistinguishable from one built by replaying the snapshot's schedule
  // from scratch — same future steps, same ledger, same history.

  /// Opts this simulation into resume logging (required for snapshot()).
  /// Must be called before the first step; logging costs one small record
  /// append per step, so the hot bench paths leave it off.
  void enable_fork_log();
  bool fork_log_enabled() const { return fork_log_; }

  /// Captures the current world. Requires enable_fork_log() to have been
  /// called before any step. The snapshot owns copies of everything except
  /// the algorithm objects behind the programs — carry those via
  /// `keepalive`.
  WorldSnapshot snapshot() const;

  /// A restored world: the Simulation borrows the SharedMemory, so the two
  /// travel together.
  struct ForkedWorld {
    std::unique_ptr<SharedMemory> mem;
    std::unique_ptr<Simulation> sim;
  };

  /// Rebuilds a live world from a snapshot. The restored simulation has
  /// fork logging enabled (snapshots compose: a fork can be forked).
  static ForkedWorld restore(const WorldSnapshot& snap);

  /// snapshot() + restore() in one call: a deep fork of this world.
  ForkedWorld fork() const;

 private:
  struct Proc {
    std::unique_ptr<ProcCtx> ctx;
    ProcTask task;
    bool started = false;
    bool finished = false;
    bool erased = false;
    bool crashed = false;
    int directives = 0;
    int crashes = 0;
    int recoveries = 0;
    std::uint64_t steps = 0;
    std::uint64_t wake_time = 0;  // meaningful while pending is kDelay
    // Resume payloads of the *current incarnation*'s frame (empty unless
    // fork logging is on). Cleared on crash and recovery: a recovered
    // program restarts from its prologue, so its frame is a function of the
    // post-recovery payloads only.
    std::vector<ResumeRecord> log;
    // Compiled engine: non-null iff this process runs on bytecode. The
    // program is owned by the simulation's BytecodeSet; `th` is the whole
    // mutable state (snapshotted by plain copy — no resume log needed).
    const BytecodeProgram* bc = nullptr;
    BcThread th;
  };

  Proc& proc(ProcId p);
  const Proc& proc(ProcId p) const;

  /// Restore constructor: rebuilds the world captured in `snap` against
  /// `memory` (which must already hold the snapshot's store/model/ledger).
  /// Unlike the public constructors it creates frames only for live
  /// processes — finished or crashed ones get their flags and counters
  /// without paying a frame allocation and prologue run.
  Simulation(SharedMemory& memory, const WorldSnapshot& snap);

  /// Arms a freshly-suspended delay (records its wake time).
  void arm_delay(Proc& pr);

  /// Compiled engine: runs local bytecode from the current pc and parks the
  /// next pending action in the ctx. Returns true iff the program halted.
  bool bc_advance(Proc& pr);

  /// Counters-only fast path (no records, no fork log, no listener, ledger
  /// batched): applies p's pending action and advances it without building
  /// a StepRecord. Counter updates replicate History::fold_into_counters
  /// exactly; `batch_ops`/`batch_rmrs` accumulate the ledger charges the
  /// slow path would have recorded, flushed by run() at loop exit.
  void step_compiled_fast(ProcId p, Proc& pr,
                          std::vector<std::uint64_t>& batch_ops,
                          std::vector<std::uint64_t>& batch_rmrs);

  SharedMemory* memory_;
  std::uint64_t now_ = 0;
  // The program callables are kept alive here for the whole simulation: a
  // coroutine created from a capturing lambda references the closure stored
  // inside the std::function, so the vector must never be mutated after the
  // frames are created in the constructor. Shared (immutably) with every
  // snapshot and restored world forked from this one.
  std::shared_ptr<const std::vector<Program>> programs_;
  // Compiled programs (may be null: all-coroutine). Shared immutably with
  // snapshots and restored worlds, like programs_.
  std::shared_ptr<const BytecodeSet> bytecode_;
  std::vector<Proc> procs_;
  int unfinished_ = 0;  // procs not yet finished: all_terminated() in O(1)
  DirectivePolicy policy_;
  History history_;
  std::vector<ProcId> schedule_;
  std::vector<FaultRecord> fault_trace_;
  bool fork_log_ = false;  // resume logging on (snapshot()-capable)
};

// Inline: proc()/ready()/runnable() run once per candidate inside every
// scheduler's pick loop — on the per-step hot path for both engines.
inline Simulation::Proc& Simulation::proc(ProcId p) {
  ensure(p >= 0 && p < nprocs(), "process id out of range");
  return procs_[static_cast<std::size_t>(p)];
}

inline const Simulation::Proc& Simulation::proc(ProcId p) const {
  ensure(p >= 0 && p < nprocs(), "process id out of range");
  return procs_[static_cast<std::size_t>(p)];
}

inline bool Simulation::ready(ProcId p) const {
  const Proc& pr = proc(p);
  if (pr.finished || pr.crashed) return false;
  if (pr.ctx->pending().kind == ActionKind::kDelay) {
    return now_ >= pr.wake_time;
  }
  return true;
}

inline bool Simulation::runnable(ProcId p) const {
  const Proc& pr = proc(p);
  return !pr.finished && !pr.crashed;
}

inline bool Simulation::terminated(ProcId p) const { return proc(p).finished; }

inline bool Simulation::all_terminated() const { return unfinished_ == 0; }

/// A deep copy of one simulated world at a point in time. Move-only (owns a
/// cloned cost model); share across threads as shared_ptr<const
/// WorldSnapshot> — restoration only reads it.
struct WorldSnapshot {
  /// Per-process control state mirrored from Simulation::Proc (everything
  /// except the uncopyable ctx/frame, which the resume log stands in for).
  struct ProcState {
    bool started = false;
    bool finished = false;
    bool erased = false;
    bool crashed = false;
    int directives = 0;
    int crashes = 0;
    int recoveries = 0;
    std::uint64_t steps = 0;
    std::uint64_t wake_time = 0;
    std::vector<ResumeRecord> log;
    // Compiled engine state (POD: restored by plain copy, no log replay).
    std::uint32_t pc = 0;
    std::vector<Word> regs;
  };

  // The store/ledger initializers are 1-processor placeholders, overwritten
  // by Simulation::snapshot() (MemoryStore rejects zero processors).
  MemoryStore store{1};
  std::unique_ptr<CostModel> model;
  RmrLedger ledger{1};
  std::uint64_t now = 0;
  History history;
  std::vector<ProcId> schedule;
  std::vector<Simulation::FaultRecord> fault_trace;
  std::vector<ProcState> procs;
  // The program callables, shared immutably with the source simulation and
  // every world restored from this snapshot. A capturing program shares its
  // captured pointers/references with the original — keep the referents
  // (algorithm objects, which hold only VarIds and no mutable state) alive
  // via `keepalive`.
  std::shared_ptr<const std::vector<Program>> programs;
  std::shared_ptr<const BytecodeSet> bytecode;
  Simulation::DirectivePolicy policy;
  /// Opaque owner of whatever the programs capture by reference (typically
  /// the ExploreInstance keepalive). Carried through restore() by callers.
  std::shared_ptr<void> keepalive;

  /// Rough retained size in bytes (store + history + logs + schedule) — the
  /// snapshot cache budgets memory with this.
  std::size_t approx_bytes() const;

  /// Deterministic content hash (FNV-1a 64, runtime/snapshot_codec.cc) over
  /// the world's *semantic* state: store content, cost-model architectural
  /// state, RMR ledger, clock, history counters, and every process's control
  /// state (flags, fault counters, wake time, resume log, compiled pc/regs).
  /// Deliberately excludes how the state was reached — the schedule, the
  /// fault trace, full-mode history records, and diagnostic variable names —
  /// so two worlds reached by different interleavings of equivalent work
  /// hash equal exactly when the state the search continues from is
  /// identical. Stable across fork/restore round trips and across processes
  /// (the dist coordinator dedups on it).
  std::uint64_t fingerprint() const;
};

}  // namespace rmrsim
