#include "sched/schedulers.h"

#include "common/check.h"

namespace rmrsim {

ProcId RoundRobinScheduler::next(Simulation& sim) {
  const int n = sim.nprocs();
  // Wrap by compare, not `%`: an integer division per candidate is the
  // single most expensive instruction in this loop, which runs once per
  // simulated step.
  ProcId candidate = static_cast<ProcId>(last_ + 1 >= n ? 0 : last_ + 1);
  for (int i = 0; i < n; ++i) {
    if (sim.ready(candidate)) {
      last_ = candidate;
      return candidate;
    }
    ++candidate;
    if (candidate >= n) candidate = 0;
  }
  return kNoProc;
}

ProcId RandomScheduler::next(Simulation& sim) {
  std::vector<ProcId> runnable;
  runnable.reserve(static_cast<std::size_t>(sim.nprocs()));
  for (ProcId p = 0; p < sim.nprocs(); ++p) {
    if (sim.ready(p)) runnable.push_back(p);
  }
  if (runnable.empty()) return kNoProc;
  return runnable[rng_.below(runnable.size())];
}

ProcId SoloScheduler::next(Simulation& sim) {
  return sim.ready(p_) ? p_ : kNoProc;
}

ProcId BoundedGapScheduler::next(Simulation& sim) {
  if (last_step_.empty()) {
    last_step_.assign(static_cast<std::size_t>(sim.nprocs()), sim.now());
  }
  // Anyone about to bust the gap bound must run first.
  std::vector<ProcId> ready;
  ProcId urgent = kNoProc;
  for (ProcId p = 0; p < sim.nprocs(); ++p) {
    if (!sim.ready(p)) continue;
    ready.push_back(p);
    const std::uint64_t gap =
        sim.now() - last_step_[static_cast<std::size_t>(p)];
    if (gap + 1 >= delta_ &&
        (urgent == kNoProc ||
         last_step_[static_cast<std::size_t>(p)] <
             last_step_[static_cast<std::size_t>(urgent)])) {
      urgent = p;
    }
  }
  if (ready.empty()) return kNoProc;
  const ProcId pick =
      urgent != kNoProc ? urgent : ready[rng_.below(ready.size())];
  last_step_[static_cast<std::size_t>(pick)] = sim.now();
  return pick;
}

DriveOutcome fair_drive(Simulation& sim, std::uint64_t max_steps) {
  ProcId last = -1;
  for (std::uint64_t s = 0; s < max_steps; ++s) {
    if (sim.all_terminated()) return DriveOutcome::kAllTerminated;
    const int n = sim.nprocs();
    ProcId pick = kNoProc;
    for (int i = 1; i <= n; ++i) {
      const ProcId c = static_cast<ProcId>((last + i) % n);
      if (sim.ready(c)) {
        pick = c;
        break;
      }
    }
    if (pick == kNoProc) {
      // Nobody ready: tick if a sleeper will wake, otherwise the run is
      // wedged — everyone left is crashed, and no budget would change that.
      bool sleeper = false;
      for (ProcId p = 0; p < n; ++p) {
        if (sim.runnable(p)) {
          sleeper = true;
          break;
        }
      }
      if (!sleeper) {
        return sim.all_terminated() ? DriveOutcome::kAllTerminated
                                    : DriveOutcome::kWedged;
      }
      sim.tick();
      continue;
    }
    last = pick;
    sim.step(pick);
  }
  if (sim.all_terminated()) return DriveOutcome::kAllTerminated;
  for (ProcId p = 0; p < sim.nprocs(); ++p) {
    if (sim.runnable(p)) return DriveOutcome::kBudget;
  }
  return DriveOutcome::kWedged;
}

ProcId ScriptedScheduler::next(Simulation& sim) {
  if (pos_ >= script_.size()) return kNoProc;
  const ProcId p = script_[pos_++];
  if (p == kNoProc) return kNoProc;  // recorded clock tick: let run() re-tick
  ensure(sim.runnable(p),
         "scripted schedule names a terminated or crashed process (a crashy "
         "schedule replays only together with its fault trace — see "
         "FaultPlan::scripted)");
  return p;
}

ProcId AllButScheduler::next(Simulation& sim) {
  const int n = sim.nprocs();
  for (int i = 1; i <= n; ++i) {
    const ProcId c = static_cast<ProcId>((last_ + i) % n);
    if (c != excluded_ && sim.ready(c)) {
      last_ = c;
      return c;
    }
  }
  return kNoProc;
}

}  // namespace rmrsim
