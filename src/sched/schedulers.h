// Schedulers: who steps next.
//
// Section 2: "Process steps can be scheduled arbitrarily, and there is no
// bound on the number of steps that can be interleaved between two steps of
// the same process." Round-robin gives the fair histories the terminating
// progress property quantifies over; the seeded random scheduler drives
// property tests across many interleavings; Solo and Scripted are the
// adversary's tools (solo runs and exact replays).
#pragma once

#include <vector>

#include "common/rng.h"
#include "runtime/simulation.h"

namespace rmrsim {

/// Fair: cycles over non-terminated processes in id order.
class RoundRobinScheduler final : public Scheduler {
 public:
  ProcId next(Simulation& sim) override;

 private:
  ProcId last_ = -1;
};

/// Picks a uniformly random runnable process; fair with probability 1.
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}
  ProcId next(Simulation& sim) override;

 private:
  SplitMix64 rng_;
};

/// Steps a single process until it terminates.
class SoloScheduler final : public Scheduler {
 public:
  explicit SoloScheduler(ProcId p) : p_(p) {}
  ProcId next(Simulation& sim) override;

 private:
  ProcId p_;
};

/// The semi-synchronous Delta-scheduler (Section 3's timing-based systems):
/// adversarially random, but guarantees that no *ready* process goes more
/// than `delta` time units without a step — "consecutive steps by the same
/// process occur at most Delta time units apart". Timing-based algorithms
/// (Fischer's lock) are correct exactly under schedulers of this class;
/// under an unconstrained scheduler their delay-based reasoning collapses
/// (see timing_test.cc).
class BoundedGapScheduler final : public Scheduler {
 public:
  BoundedGapScheduler(std::uint64_t seed, std::uint64_t delta)
      : rng_(seed), delta_(delta) {}
  ProcId next(Simulation& sim) override;

 private:
  SplitMix64 rng_;
  std::uint64_t delta_;
  std::vector<std::uint64_t> last_step_;  // per-proc time of last step
};

/// Replays an exact schedule (e.g. one recorded by Simulation::schedule()).
/// Stops when the script is exhausted. Scheduling a terminated or crashed
/// process is an error — replays of erased histories must stay exact, so a
/// mismatch means the erasure was unsound, and replaying a schedule that
/// contained crashes without also replaying its fault trace (see
/// FaultPlan::scripted) must fail loudly rather than silently diverge.
class ScriptedScheduler final : public Scheduler {
 public:
  explicit ScriptedScheduler(std::vector<ProcId> script)
      : script_(std::move(script)) {}
  ProcId next(Simulation& sim) override;
  bool exhausted() const { return pos_ >= script_.size(); }

 private:
  std::vector<ProcId> script_;
  std::size_t pos_ = 0;
};

/// How a fair_drive() run ended. kWedged and kBudget are distinct progress
/// failures: a wedged run can never move again no matter the budget (every
/// non-terminated process is crashed), while a budget-exhausted run still had
/// ready processes — typically spinners — when the driver gave up. Crash
/// sweeps report the two separately (CrashSweepResult).
enum class DriveOutcome {
  kAllTerminated,  ///< every process ran to completion
  kWedged,         ///< no process can ever step again
  kBudget,         ///< the step budget ran out with ready processes left
};

/// Drives the simulation fair (round-robin over ready processes, ticking the
/// clock when only sleepers remain) for at most `max_steps` steps/ticks.
/// The fair-history workhorse of the crash sweeps; scheduler-free so callers
/// that replay exact prefixes can keep driving the same Simulation.
DriveOutcome fair_drive(Simulation& sim, std::uint64_t max_steps);

/// Fair among all processes except one: the classic crash-stop model ("the
/// victim is parked and never scheduled again") expressed as a scheduler.
/// Promoted from the failure tests; contrast with Simulation::crash, which
/// destroys the victim's call mid-flight instead of merely starving it.
class AllButScheduler final : public Scheduler {
 public:
  explicit AllButScheduler(ProcId excluded) : excluded_(excluded) {}
  ProcId next(Simulation& sim) override;

 private:
  ProcId excluded_;
  ProcId last_ = -1;
};

}  // namespace rmrsim
