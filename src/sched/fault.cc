#include "sched/fault.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "common/check.h"

namespace rmrsim {

FaultPlan FaultPlan::crash_at_step(ProcId proc, std::uint64_t nth_step,
                                   std::uint64_t recover_after) {
  FaultPlan plan;
  plan.triggers.push_back(
      {Trigger::Kind::kAtStep, proc, nth_step, /*per_million=*/0});
  plan.recover_after = recover_after;
  return plan;
}

FaultPlan FaultPlan::crash_on_nth_rmr(ProcId proc, std::uint64_t nth_rmr,
                                      std::uint64_t recover_after) {
  FaultPlan plan;
  plan.triggers.push_back(
      {Trigger::Kind::kOnNthRmr, proc, nth_rmr, /*per_million=*/0});
  plan.recover_after = recover_after;
  return plan;
}

FaultPlan FaultPlan::random(std::uint64_t seed, double crash_rate,
                            std::uint64_t recover_after, int max_crashes) {
  ensure(crash_rate >= 0.0 && crash_rate <= 1.0,
         "crash rate must be in [0, 1]");
  FaultPlan plan;
  // Store the rate as an integer so draws are exactly reproducible across
  // platforms — doubles never enter the decision.
  const auto per_million =
      static_cast<std::uint64_t>(crash_rate * 1'000'000.0 + 0.5);
  plan.triggers.push_back(
      {Trigger::Kind::kRandom, kNoProc, /*n=*/0, per_million});
  plan.recover_after = recover_after;
  plan.max_crashes = max_crashes;
  plan.seed = seed;
  return plan;
}

FaultPlan FaultPlan::crash_stop(ProcId proc, std::uint64_t nth_step) {
  FaultPlan plan;
  plan.triggers.push_back(
      {Trigger::Kind::kAtStep, proc, nth_step, /*per_million=*/0});
  plan.recover = false;
  return plan;
}

FaultPlan FaultPlan::scripted_trace(
    std::vector<Simulation::FaultRecord> trace) {
  FaultPlan plan;
  plan.script = std::move(trace);
  plan.scripted = true;
  return plan;
}

namespace {

/// Splits "k1=v1,k2=v2" and returns v for `key`, or empty if absent.
std::string find_field(const std::string& body, const std::string& key) {
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t end = body.find(',', pos);
    if (end == std::string::npos) end = body.size();
    const std::string item = body.substr(pos, end - pos);
    const std::size_t eq = item.find('=');
    if (eq != std::string::npos && item.substr(0, eq) == key) {
      return item.substr(eq + 1);
    }
    pos = end + 1;
  }
  return {};
}

/// Strict non-negative integer: rejects anything strtoull would silently
/// read as 0 (letters, empty, trailing junk) with an actionable message.
std::uint64_t parse_u64_strict(const std::string& v, const std::string& key,
                               const std::string& spec) {
  ensure(!v.empty() && v.find_first_not_of("0123456789") == std::string::npos,
         "--fault-plan '" + spec + "': " + key +
             "= expects a non-negative integer, got '" + v + "'");
  errno = 0;
  const std::uint64_t n = std::strtoull(v.c_str(), nullptr, 10);
  ensure(errno == 0, "--fault-plan '" + spec + "': " + key +
                         "= value '" + v + "' is out of range");
  return n;
}

std::uint64_t need_u64(const std::string& body, const std::string& key,
                       const std::string& spec) {
  const std::string v = find_field(body, key);
  ensure(!v.empty(), "--fault-plan '" + spec + "' is missing " + key + "=");
  return parse_u64_strict(v, key, spec);
}

std::uint64_t opt_u64(const std::string& body, const std::string& key,
                      std::uint64_t fallback, const std::string& spec) {
  const std::string v = find_field(body, key);
  return v.empty() ? fallback : parse_u64_strict(v, key, spec);
}

/// recover= accepts an integer downtime or the word "never" (crash-stop).
std::uint64_t recover_u64(const std::string& body, const std::string& spec) {
  const std::string v = find_field(body, "recover");
  if (v.empty() || v == "never") return 100;
  return parse_u64_strict(v, "recover", spec);
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  ensure(colon != std::string::npos,
         "--fault-plan must look like kind:key=value,... (kinds: step, rmr, "
         "random), got '" + spec + "'");
  const std::string kind = spec.substr(0, colon);
  const std::string body = spec.substr(colon + 1);

  if (kind == "step") {
    const auto proc = static_cast<ProcId>(need_u64(body, "proc", spec));
    FaultPlan plan = FaultPlan::crash_at_step(
        proc, need_u64(body, "n", spec), recover_u64(body, spec));
    if (find_field(body, "recover") == "never") plan.recover = false;
    return plan;
  }
  if (kind == "rmr") {
    const auto proc = static_cast<ProcId>(need_u64(body, "proc", spec));
    FaultPlan plan = FaultPlan::crash_on_nth_rmr(
        proc, need_u64(body, "n", spec), recover_u64(body, spec));
    if (find_field(body, "recover") == "never") plan.recover = false;
    return plan;
  }
  if (kind == "random") {
    const std::string rate = find_field(body, "rate");
    ensure(!rate.empty(), "--fault-plan '" + spec + "' is missing rate=");
    char* rate_end = nullptr;
    const double rate_val = std::strtod(rate.c_str(), &rate_end);
    ensure(rate_end != nullptr && *rate_end == '\0' && !rate.empty(),
           "--fault-plan '" + spec + "': rate= expects a number, got '" +
               rate + "'");
    FaultPlan plan = FaultPlan::random(
        opt_u64(body, "seed", 1, spec), rate_val,
        recover_u64(body, spec),
        static_cast<int>(opt_u64(body, "max", 1 << 20, spec)));
    if (find_field(body, "recover") == "never") plan.recover = false;
    return plan;
  }
  fail("--fault-plan kind must be step, rmr, or random, got '" + kind + "'");
}

FaultScheduler::FaultScheduler(Scheduler& inner, FaultPlan plan)
    : inner_(&inner), plan_(std::move(plan)), rng_(plan_.seed) {
  fired_.assign(plan_.triggers.size(), false);
}

void FaultScheduler::inject_crash(Simulation& sim, ProcId p) {
  sim.crash(p);
  ++crashes_;
  if (!plan_.scripted && plan_.recover) {
    pending_.push_back({p, sim.schedule().size() + plan_.recover_after});
  }
}

void FaultScheduler::apply_due_faults(Simulation& sim) {
  const std::uint64_t pos = sim.schedule().size();

  if (plan_.scripted) {
    // Replay mode: re-apply the recorded faults at their recorded schedule
    // positions, in recorded order. Nothing is drawn or decided here.
    while (script_pos_ < plan_.script.size() &&
           plan_.script[script_pos_].at <= pos) {
      const Simulation::FaultRecord& r = plan_.script[script_pos_++];
      if (r.kind == Simulation::FaultRecord::Kind::kCrash) {
        sim.crash(r.proc);
        ++crashes_;
      } else {
        sim.recover(r.proc);
        ++recoveries_;
      }
    }
    return;
  }

  // Recoveries first: a process whose downtime has elapsed comes back before
  // any new crash decision is made.
  for (std::size_t i = 0; i < pending_.size();) {
    if (pending_[i].due <= pos) {
      sim.recover(pending_[i].proc);
      ++recoveries_;
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }

  for (std::size_t t = 0; t < plan_.triggers.size(); ++t) {
    if (crashes_ >= plan_.max_crashes) return;
    const FaultPlan::Trigger& trig = plan_.triggers[t];
    switch (trig.kind) {
      case FaultPlan::Trigger::Kind::kAtStep:
        if (!fired_[t] && !sim.terminated(trig.proc) &&
            !sim.crashed(trig.proc) && sim.steps_taken(trig.proc) >= trig.n) {
          fired_[t] = true;
          inject_crash(sim, trig.proc);
        }
        break;
      case FaultPlan::Trigger::Kind::kOnNthRmr:
        if (!fired_[t] && !sim.terminated(trig.proc) &&
            !sim.crashed(trig.proc) &&
            sim.memory().ledger().rmrs(trig.proc) >= trig.n) {
          fired_[t] = true;
          inject_crash(sim, trig.proc);
        }
        break;
      case FaultPlan::Trigger::Kind::kRandom:
        // One draw per live process per decision, in proc-id order, so the
        // sequence of draws — and hence the whole run — depends only on the
        // seed and the deterministic simulation state.
        for (ProcId p = 0; p < sim.nprocs(); ++p) {
          if (crashes_ >= plan_.max_crashes) break;
          if (sim.terminated(p) || sim.crashed(p) || !sim.runnable(p)) {
            continue;
          }
          if (rng_.chance(trig.per_million, 1'000'000)) {
            inject_crash(sim, p);
          }
        }
        break;
    }
  }
}

bool FaultScheduler::fast_forward(Simulation& sim) {
  if (plan_.scripted) {
    // Only a *due* scripted fault may be applied out of band: the inner
    // scheduler also returns kNoProc for recorded clock ticks, and a fault
    // positioned after the tick must wait for the replay to get there.
    if (script_pos_ >= plan_.script.size() ||
        plan_.script[script_pos_].at > sim.schedule().size()) {
      return false;
    }
    const Simulation::FaultRecord& r = plan_.script[script_pos_++];
    if (r.kind == Simulation::FaultRecord::Kind::kCrash) {
      sim.crash(r.proc);
      ++crashes_;
    } else {
      sim.recover(r.proc);
      ++recoveries_;
    }
    return true;
  }
  if (pending_.empty()) return false;
  auto it = std::min_element(pending_.begin(), pending_.end(),
                             [](const PendingRecovery& a,
                                const PendingRecovery& b) {
                               return a.due < b.due;
                             });
  sim.recover(it->proc);
  ++recoveries_;
  pending_.erase(it);
  return true;
}

ProcId FaultScheduler::next(Simulation& sim) {
  // Bounded by the number of outstanding recoveries (each fast_forward
  // consumes one), so this cannot loop forever.
  for (;;) {
    apply_due_faults(sim);
    const ProcId p = inner_->next(sim);
    if (p != kNoProc) return p;
    // Inner scheduler sees nobody to run. If a crashed process is still due
    // to come back, bring it back now — everyone alive may be spinning on
    // it — and ask again.
    if (!fast_forward(sim)) return kNoProc;
  }
}

}  // namespace rmrsim
