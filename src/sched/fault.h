// Deterministic crash/recovery fault injection.
//
// The paper's progress guarantees are explicitly crash-conditional ("for any
// fair history ... where no process crashes", Section 2). This module makes
// that condition an experimental axis: a FaultPlan describes *when* processes
// crash and recover, and a FaultScheduler applies the plan over any inner
// scheduler, so crashy runs are exactly as deterministic and replayable as
// crash-free ones — same plan + same inner scheduler + same seed, same
// history, including every crash and recovery step.
//
// Failure model (Golab–Ramaraju recoverable mutual exclusion, as carried
// forward by Jayanti–Jayanti–Joshi and bounded by Chan–Woelfel): a crash
// destroys a process's local state mid-call and releases nothing; a recovery
// re-runs its program against the preserved shared memory.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "runtime/simulation.h"

namespace rmrsim {

/// When to crash whom, and when (if ever) to bring them back. Build with
/// the factory functions; combine triggers by appending to `triggers`.
struct FaultPlan {
  struct Trigger {
    enum class Kind {
      kAtStep,   ///< crash `proc` once it has applied `n` steps
      kOnNthRmr, ///< crash `proc` once it has incurred `n` RMRs
      kRandom,   ///< every decision, each runnable process crashes with
                 ///< probability `per_million` / 1e6 (seeded, deterministic)
    };
    Kind kind = Kind::kAtStep;
    ProcId proc = kNoProc;           ///< target (kAtStep / kOnNthRmr)
    std::uint64_t n = 0;             ///< step / RMR threshold
    std::uint64_t per_million = 0;   ///< kRandom crash probability numerator
  };

  std::vector<Trigger> triggers;

  /// Recovery policy: a crashed process is recovered once `recover_after`
  /// further steps have been applied (schedule entries, ticks included).
  /// With `recover = false` crashes are permanent (crash-stop).
  bool recover = true;
  std::uint64_t recover_after = 100;

  /// Total crash budget across all triggers (bounds random plans).
  int max_crashes = 1 << 20;

  /// Seed for kRandom draws.
  std::uint64_t seed = 1;

  /// Exact replay of a recorded fault trace (Simulation::fault_trace()):
  /// every crash and recovery is re-applied at the same schedule position.
  /// Combined with ScriptedScheduler over the recorded schedule this
  /// reproduces a crashy run step for step.
  std::vector<Simulation::FaultRecord> script;
  bool scripted = false;

  static FaultPlan crash_at_step(ProcId proc, std::uint64_t nth_step,
                                 std::uint64_t recover_after);
  static FaultPlan crash_on_nth_rmr(ProcId proc, std::uint64_t nth_rmr,
                                    std::uint64_t recover_after);
  static FaultPlan random(std::uint64_t seed, double crash_rate,
                          std::uint64_t recover_after, int max_crashes);
  static FaultPlan crash_stop(ProcId proc, std::uint64_t nth_step);
  static FaultPlan scripted_trace(std::vector<Simulation::FaultRecord> trace);
};

/// Parses the CLI plan syntax used by `rmrsim_cli --fault-plan`:
///   step:proc=P,n=N[,recover=R]
///   rmr:proc=P,n=N[,recover=R]
///   random:rate=F,seed=S[,recover=R][,max=M]
/// Throws std::logic_error on malformed specs.
FaultPlan parse_fault_plan(const std::string& spec);

/// Applies a FaultPlan over any inner scheduler. Before each scheduling
/// decision it (1) recovers crashed processes whose recovery step count is
/// due, then (2) fires any due crash triggers, then delegates to the inner
/// scheduler. If the inner scheduler has nobody to run but a recovery is
/// still outstanding, the recovery is fast-forwarded so the run can
/// continue — a system where everyone alive is blocked on a crashed process
/// resumes the moment that process comes back (the RME liveness premise).
class FaultScheduler final : public Scheduler {
 public:
  FaultScheduler(Scheduler& inner, FaultPlan plan);

  ProcId next(Simulation& sim) override;

  int crashes_injected() const { return crashes_; }
  int recoveries_injected() const { return recoveries_; }

 private:
  struct PendingRecovery {
    ProcId proc = kNoProc;
    std::uint64_t due = 0;  ///< schedule().size() at which to recover
  };

  void apply_due_faults(Simulation& sim);
  void inject_crash(Simulation& sim, ProcId p);
  /// Recovers the earliest outstanding recovery (or applies the next
  /// scripted fault). Returns false if there is nothing to fast-forward.
  bool fast_forward(Simulation& sim);

  Scheduler* inner_;
  FaultPlan plan_;
  SplitMix64 rng_;
  std::vector<bool> fired_;  ///< one-shot triggers already taken
  std::vector<PendingRecovery> pending_;
  std::size_t script_pos_ = 0;
  int crashes_ = 0;
  int recoveries_ = 0;
};

}  // namespace rmrsim
