// Multi-core memory-trace format (the workload engine's input).
//
// A trace is an interleaved sequence of shared-memory operations tagged
// with the processor that issued them; the global order doubles as the
// replay schedule, and the per-processor subsequences are each processor's
// program. Two on-disk encodings carry the same data:
//
//  * text, v1 — line-oriented and diffable:
//
//        rmrsim-trace v1 procs=4 ops=6
//        # comments and blank lines are ignored
//        0 0 RD 0x10
//        0 1 WR 0x10 7
//        1 0 CAS 0x10 0 1
//        2 0 FAA 0x20 3
//        3 0 FENCE
//        1 1 RD 0x10
//
//    Each op line is `<proc> <seq> <MNEMONIC> [<addr> [args...]]` where
//    `<seq>` is the op's 0-based index within its processor's stream and
//    must increase by exactly 1 — a gap, repeat, or regression is a parse
//    error, which is what makes interleaving mistakes in hand-written or
//    tool-generated traces detectable at parse time.
//
//  * binary, v1 — `RMRTRC1\n` magic, a fixed header, packed little-endian
//    records, and a trailing CRC32 over everything before it (the PR-6
//    torn-file discipline: a truncated or bit-flipped file is rejected
//    loudly, never half-loaded).
//
// Parsing is strict and loudly-failing: every rejection throws with the
// offending line number (text) or byte offset (binary). There is no
// recovery mode and no silent skipping.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace rmrsim {

/// The operations a trace can carry. Everything except kFence maps 1:1
/// onto a MemOp; kFence is a per-processor ordering barrier (replayed as a
/// local atomic no-op, which drains that processor's write buffer).
enum class TraceOpKind : std::uint8_t {
  kRead,   ///< RD addr
  kWrite,  ///< WR addr value
  kCas,    ///< CAS addr expect desired
  kFaa,    ///< FAA addr delta
  kFas,    ///< FAS addr value
  kTas,    ///< TAS addr
  kFence,  ///< FENCE (no address)
};

std::string_view to_string(TraceOpKind k);

struct TraceOp {
  ProcId proc = 0;
  TraceOpKind kind = TraceOpKind::kRead;
  std::uint64_t addr = 0;  ///< unused for kFence
  Word arg0 = 0;
  Word arg1 = 0;

  friend bool operator==(const TraceOp&, const TraceOp&) = default;
};

struct Trace {
  int nprocs = 0;
  std::vector<TraceOp> ops;  ///< global interleaved order == replay schedule

  friend bool operator==(const Trace&, const Trace&) = default;
};

/// Parser guard rails: a header declaring more processors or operations
/// than these is rejected as malformed (overflow-sized counts would
/// otherwise turn into multi-gigabyte allocations before the body is read).
inline constexpr std::uint64_t kMaxTraceProcs = 1u << 16;
inline constexpr std::uint64_t kMaxTraceOps = 1'000'000'000;

/// Parses the text encoding. `origin` names the input in error messages
/// (a file path, or "<trace>" for in-memory strings). Throws
/// std::logic_error with a line-numbered message on any malformation.
Trace parse_trace_text(std::string_view text,
                       std::string_view origin = "<trace>");

/// Canonical text form (header, then one line per op, seq rederived).
std::string trace_to_text(const Trace& trace);

/// Parses the binary encoding; rejects bad magic, truncated headers or
/// records, trailing bytes, out-of-range fields, and CRC mismatches, each
/// with the byte offset. Throws std::logic_error.
Trace parse_trace_binary(std::string_view bytes,
                         std::string_view origin = "<trace>");

std::string trace_to_binary(const Trace& trace);

/// Reads `path` and parses it, sniffing the encoding from the magic.
/// Throws on unreadable files and on any parse error.
Trace load_trace_file(const std::string& path);

/// Writes `path` atomically in the chosen encoding.
void save_trace_file(const std::string& path, const Trace& trace,
                     bool binary = false);

// ---- address → (variable, home) mapping --------------------------------

/// How trace addresses become simulator variables. Every distinct address
/// is one variable (one word, one cache line); the policy decides which
/// processor's memory module homes it, which is what the DSM cost model
/// prices against. CC pricing ignores homes entirely.
struct AddrMapSpec {
  enum class Policy {
    kInterleave,  ///< home = (addr / block) % nprocs (block defaults to 1)
    kGlobal,      ///< every variable in a detached module (remote to all)
    kFirstTouch,  ///< homed at the first processor to touch it, in trace
                  ///< order — deterministic because the trace order is
  };
  Policy policy = Policy::kInterleave;
  std::uint64_t block = 1;  ///< kInterleave granularity; must be > 0

  friend bool operator==(const AddrMapSpec&, const AddrMapSpec&) = default;
};

/// Parses "interleave" | "interleave:<block>" | "global" | "first-touch".
/// Throws std::logic_error on anything else.
AddrMapSpec parse_addr_map(const std::string& spec);

std::string to_string(const AddrMapSpec& spec);

}  // namespace rmrsim
