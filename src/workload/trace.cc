#include "workload/trace.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/check.h"
#include "common/crc32.h"
#include "common/fsio.h"

namespace rmrsim {

namespace {

constexpr std::string_view kBinaryMagic = "RMRTRC1\n";

/// Upper bound on the reserve() taken on the header's say-so alone. The
/// text header is untrusted input: a 40-byte file declaring
/// ops=1000000000 must die at the end-of-file op-count check, not in a
/// 30 GB up-front allocation. Past this cap the vector grows as real op
/// lines actually arrive. (The binary parser needs no such cap — it
/// validates the file length against the declared count before reserving.)
constexpr std::uint64_t kSpeculativeReserveCap = 1u << 20;

[[noreturn]] void parse_fail(std::string_view origin, std::size_t line,
                             const std::string& what) {
  fail(std::string(origin) + ":" + std::to_string(line) + ": " + what);
}

/// Strict uint64 parse: decimal or 0x-hex, full consumption, no sign, no
/// overflow. Reports against `origin:line` on any violation.
std::uint64_t parse_u64(std::string_view tok, std::string_view origin,
                        std::size_t line, const std::string& what) {
  if (tok.empty() || tok[0] == '-' || tok[0] == '+') {
    parse_fail(origin, line,
               what + " expects an unsigned integer, got '" +
                   std::string(tok) + "'");
  }
  const std::string buf(tok);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 0);
  if (errno != 0 || end == nullptr || *end != '\0') {
    parse_fail(origin, line,
               what + " expects an unsigned integer, got '" + buf + "'" +
                   (errno == ERANGE ? " (out of 64-bit range)" : ""));
  }
  return v;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < s.size() && s[j] != ' ' && s[j] != '\t') ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

/// `key=value` field of the header; the key must match exactly.
std::uint64_t header_field(std::string_view tok, std::string_view key,
                           std::string_view origin, std::size_t line) {
  const std::size_t eq = tok.find('=');
  if (eq == std::string_view::npos || tok.substr(0, eq) != key) {
    parse_fail(origin, line,
               "header expects '" + std::string(key) + "=<count>', got '" +
                   std::string(tok) + "'");
  }
  return parse_u64(tok.substr(eq + 1), origin, line,
                   "header " + std::string(key));
}

struct KindInfo {
  std::string_view mnemonic;
  bool has_addr;
  int args;  ///< operands after the address
};

constexpr KindInfo kKinds[] = {
    {"RD", true, 0},  {"WR", true, 1},  {"CAS", true, 2}, {"FAA", true, 1},
    {"FAS", true, 1}, {"TAS", true, 0}, {"FENCE", false, 0},
};

const KindInfo& kind_info(TraceOpKind k) {
  return kKinds[static_cast<int>(k)];
}

// ---- binary encoding helpers -------------------------------------------

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

std::uint32_t get_u32(std::string_view b, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(b[at + i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(std::string_view b, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[at + i]))
         << (8 * i);
  }
  return v;
}

[[noreturn]] void binary_fail(std::string_view origin, std::size_t offset,
                              const std::string& what) {
  fail(std::string(origin) + ": binary trace malformed at byte offset " +
       std::to_string(offset) + ": " + what);
}

/// One binary record: kind u8, proc u32, addr u64, arg0 u64, arg1 u64.
constexpr std::size_t kRecordSize = 1 + 4 + 8 + 8 + 8;
constexpr std::size_t kBinaryHeaderSize = kBinaryMagic.size() + 4 + 8;

}  // namespace

std::string_view to_string(TraceOpKind k) { return kind_info(k).mnemonic; }

Trace parse_trace_text(std::string_view text, std::string_view origin) {
  Trace trace;
  std::uint64_t declared_ops = 0;
  bool saw_header = false;
  std::vector<std::uint64_t> next_seq;  // per-proc expected sequence number

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view raw =
        text.substr(pos, nl == std::string_view::npos ? nl : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;

    const std::vector<std::string_view> toks = split_ws(raw);
    if (toks.empty() || toks[0][0] == '#') continue;

    if (!saw_header) {
      if (toks[0] != "rmrsim-trace") {
        parse_fail(origin, line_no,
                   "expected header 'rmrsim-trace v1 procs=<P> ops=<K>', "
                   "got '" + std::string(toks[0]) + "...'");
      }
      if (toks.size() != 4 || toks[1] != "v1") {
        parse_fail(origin, line_no,
                   toks.size() > 1 && toks[1] != "v1"
                       ? "unsupported trace version '" + std::string(toks[1]) +
                             "' (this parser reads v1)"
                       : "header expects exactly 'rmrsim-trace v1 procs=<P> "
                         "ops=<K>'");
      }
      const std::uint64_t procs =
          header_field(toks[2], "procs", origin, line_no);
      declared_ops = header_field(toks[3], "ops", origin, line_no);
      if (procs == 0 || procs > kMaxTraceProcs) {
        parse_fail(origin, line_no,
                   "procs=" + std::to_string(procs) + " out of range [1, " +
                       std::to_string(kMaxTraceProcs) + "]");
      }
      if (declared_ops > kMaxTraceOps) {
        parse_fail(origin, line_no,
                   "ops=" + std::to_string(declared_ops) +
                       " exceeds the maximum trace size (" +
                       std::to_string(kMaxTraceOps) + ")");
      }
      trace.nprocs = static_cast<int>(procs);
      trace.ops.reserve(std::min(declared_ops, kSpeculativeReserveCap));
      next_seq.assign(procs, 0);
      saw_header = true;
      continue;
    }

    if (trace.ops.size() == declared_ops) {
      parse_fail(origin, line_no,
                 "more ops than the header's ops=" +
                     std::to_string(declared_ops) + " declared");
    }

    // <proc> <seq> <MNEMONIC> [<addr> [args...]]
    if (toks.size() < 3) {
      parse_fail(origin, line_no,
                 "op line expects '<proc> <seq> <MNEMONIC> ...', got " +
                     std::to_string(toks.size()) + " token(s)");
    }
    TraceOp op;
    const std::uint64_t proc = parse_u64(toks[0], origin, line_no, "proc");
    if (proc >= static_cast<std::uint64_t>(trace.nprocs)) {
      parse_fail(origin, line_no,
                 "proc " + std::to_string(proc) + " out of range [0, " +
                     std::to_string(trace.nprocs) + ")");
    }
    op.proc = static_cast<ProcId>(proc);
    const std::uint64_t seq = parse_u64(toks[1], origin, line_no, "seq");
    if (seq != next_seq[proc]) {
      parse_fail(origin, line_no,
                 "non-monotonic sequence for proc " + std::to_string(proc) +
                     ": expected seq " + std::to_string(next_seq[proc]) +
                     ", got " + std::to_string(seq));
    }
    ++next_seq[proc];

    int kind = -1;
    for (int k = 0; k < static_cast<int>(std::size(kKinds)); ++k) {
      if (toks[2] == kKinds[k].mnemonic) kind = k;
    }
    if (kind < 0) {
      parse_fail(origin, line_no,
                 "unknown op mnemonic '" + std::string(toks[2]) +
                     "' (want RD|WR|CAS|FAA|FAS|TAS|FENCE)");
    }
    op.kind = static_cast<TraceOpKind>(kind);
    const KindInfo& info = kKinds[kind];
    const std::size_t want = 3 + (info.has_addr ? 1 : 0) + info.args;
    if (toks.size() != want) {
      parse_fail(origin, line_no,
                 std::string(info.mnemonic) + " expects " +
                     std::to_string(want - 3) + " operand(s), got " +
                     std::to_string(toks.size() - 3));
    }
    std::size_t t = 3;
    if (info.has_addr) op.addr = parse_u64(toks[t++], origin, line_no, "addr");
    if (info.args >= 1) {
      op.arg0 = static_cast<Word>(
          parse_u64(toks[t++], origin, line_no, "operand"));
    }
    if (info.args >= 2) {
      op.arg1 = static_cast<Word>(
          parse_u64(toks[t++], origin, line_no, "operand"));
    }
    trace.ops.push_back(op);
  }

  if (!saw_header) {
    parse_fail(origin, line_no, "empty input: no trace header found");
  }
  if (trace.ops.size() != declared_ops) {
    parse_fail(origin, line_no,
               "truncated trace: header declares ops=" +
                   std::to_string(declared_ops) + " but the file ends after " +
                   std::to_string(trace.ops.size()) + " op(s)");
  }
  return trace;
}

std::string trace_to_text(const Trace& trace) {
  std::string out = "rmrsim-trace v1 procs=" + std::to_string(trace.nprocs) +
                    " ops=" + std::to_string(trace.ops.size()) + "\n";
  std::vector<std::uint64_t> seq(trace.nprocs, 0);
  for (const TraceOp& op : trace.ops) {
    const KindInfo& info = kind_info(op.kind);
    out += std::to_string(op.proc);
    out += ' ';
    out += std::to_string(seq[op.proc]++);
    out += ' ';
    out += info.mnemonic;
    if (info.has_addr) {
      out += ' ';
      out += std::to_string(op.addr);
    }
    if (info.args >= 1) {
      out += ' ';
      out += std::to_string(static_cast<std::uint64_t>(op.arg0));
    }
    if (info.args >= 2) {
      out += ' ';
      out += std::to_string(static_cast<std::uint64_t>(op.arg1));
    }
    out += '\n';
  }
  return out;
}

Trace parse_trace_binary(std::string_view bytes, std::string_view origin) {
  if (bytes.size() < kBinaryMagic.size() ||
      bytes.substr(0, kBinaryMagic.size()) != kBinaryMagic) {
    binary_fail(origin, 0, "bad magic (expected RMRTRC1)");
  }
  if (bytes.size() < kBinaryHeaderSize + 4) {
    binary_fail(origin, bytes.size(), "truncated header");
  }
  const std::uint64_t procs = get_u32(bytes, kBinaryMagic.size());
  const std::uint64_t ops = get_u64(bytes, kBinaryMagic.size() + 4);
  if (procs == 0 || procs > kMaxTraceProcs) {
    binary_fail(origin, kBinaryMagic.size(),
                "procs=" + std::to_string(procs) + " out of range [1, " +
                    std::to_string(kMaxTraceProcs) + "]");
  }
  if (ops > kMaxTraceOps) {
    binary_fail(origin, kBinaryMagic.size() + 4,
                "ops=" + std::to_string(ops) +
                    " exceeds the maximum trace size (" +
                    std::to_string(kMaxTraceOps) + ")");
  }
  const std::size_t body_end = kBinaryHeaderSize + ops * kRecordSize;
  if (bytes.size() != body_end + 4) {
    binary_fail(origin, bytes.size(),
                bytes.size() < body_end + 4
                    ? "truncated: header declares " + std::to_string(ops) +
                          " record(s) but the file is " +
                          std::to_string(bytes.size()) + " bytes, want " +
                          std::to_string(body_end + 4)
                    : "trailing bytes after the checksum");
  }
  const std::uint32_t want_crc = get_u32(bytes, body_end);
  const std::uint32_t got_crc = crc32(bytes.substr(0, body_end));
  if (want_crc != got_crc) {
    binary_fail(origin, body_end,
                "CRC mismatch (file is torn or corrupted)");
  }

  Trace trace;
  trace.nprocs = static_cast<int>(procs);
  trace.ops.reserve(ops);
  std::size_t at = kBinaryHeaderSize;
  for (std::uint64_t i = 0; i < ops; ++i, at += kRecordSize) {
    TraceOp op;
    const auto kind = static_cast<unsigned>(
        static_cast<unsigned char>(bytes[at]));
    if (kind >= std::size(kKinds)) {
      binary_fail(origin, at,
                  "record " + std::to_string(i) + " has unknown op kind " +
                      std::to_string(kind));
    }
    op.kind = static_cast<TraceOpKind>(kind);
    const std::uint64_t proc = get_u32(bytes, at + 1);
    if (proc >= procs) {
      binary_fail(origin, at + 1,
                  "record " + std::to_string(i) + " proc " +
                      std::to_string(proc) + " out of range [0, " +
                      std::to_string(procs) + ")");
    }
    op.proc = static_cast<ProcId>(proc);
    op.addr = get_u64(bytes, at + 5);
    op.arg0 = static_cast<Word>(get_u64(bytes, at + 13));
    op.arg1 = static_cast<Word>(get_u64(bytes, at + 21));
    trace.ops.push_back(op);
  }
  return trace;
}

std::string trace_to_binary(const Trace& trace) {
  std::string out(kBinaryMagic);
  put_u32(out, static_cast<std::uint32_t>(trace.nprocs));
  put_u64(out, trace.ops.size());
  for (const TraceOp& op : trace.ops) {
    out.push_back(static_cast<char>(op.kind));
    put_u32(out, static_cast<std::uint32_t>(op.proc));
    put_u64(out, op.addr);
    put_u64(out, static_cast<std::uint64_t>(op.arg0));
    put_u64(out, static_cast<std::uint64_t>(op.arg1));
  }
  put_u32(out, crc32(out));
  return out;
}

Trace load_trace_file(const std::string& path) {
  const std::optional<std::string> bytes = read_file(path);
  ensure(bytes.has_value(), "cannot read trace file '" + path + "'");
  if (bytes->size() >= kBinaryMagic.size() &&
      std::string_view(*bytes).substr(0, kBinaryMagic.size()) ==
          kBinaryMagic) {
    return parse_trace_binary(*bytes, path);
  }
  return parse_trace_text(*bytes, path);
}

void save_trace_file(const std::string& path, const Trace& trace,
                     bool binary) {
  write_file_atomic(path,
                    binary ? trace_to_binary(trace) : trace_to_text(trace));
}

AddrMapSpec parse_addr_map(const std::string& spec) {
  AddrMapSpec m;
  if (spec.empty() || spec == "interleave") return m;
  if (spec == "global") {
    m.policy = AddrMapSpec::Policy::kGlobal;
    return m;
  }
  if (spec == "first-touch") {
    m.policy = AddrMapSpec::Policy::kFirstTouch;
    return m;
  }
  const std::string prefix = "interleave:";
  if (spec.rfind(prefix, 0) == 0) {
    const std::string blk = spec.substr(prefix.size());
    char* end = nullptr;
    errno = 0;
    const unsigned long long b = std::strtoull(blk.c_str(), &end, 10);
    ensure(!blk.empty() && end != nullptr && *end == '\0' && errno == 0 &&
               b > 0,
           "--addr-map interleave:<block> expects a positive integer, got '" +
               blk + "'");
    m.block = b;
    return m;
  }
  fail("unknown address map '" + spec +
       "' (want interleave[:<block>]|global|first-touch)");
}

std::string to_string(const AddrMapSpec& spec) {
  switch (spec.policy) {
    case AddrMapSpec::Policy::kGlobal:
      return "global";
    case AddrMapSpec::Policy::kFirstTouch:
      return "first-touch";
    case AddrMapSpec::Policy::kInterleave:
      return spec.block == 1 ? "interleave"
                             : "interleave:" + std::to_string(spec.block);
  }
  return "?";
}

}  // namespace rmrsim
