// Deterministic synthetic trace generators.
//
// Each generator emits a classic sharing pattern from the coherence /
// shared-memory literature, seeded through common/rng.h (never wall
// clock), so a (kind, procs, ops, seed) tuple always produces the same
// trace bytes — the property the golden-artifact byte-compares and the
// worker-count determinism gates rest on. The catalog spans the regimes
// the CC/DSM separation cares about:
//
//   private    — each processor streams over its own addresses; the
//                best case for both models (cacheable in CC, home-local
//                in DSM under the interleave map).
//   hotset     — all processors hammer a few shared hot words with reads,
//                writes, and RMWs: maximal invalidation traffic in CC and
//                Ω(total ops) remote references in DSM.
//   zipf       — heavy-tailed sharing over a 1024-word universe (an
//                integer-only zipf-flavored rank draw; no floating point,
//                so the bytes are identical on every platform).
//   ring       — producer/consumer pairs moving data through fixed-size
//                rings: one-way sharing with a head counter RMW.
//   migratory  — an object per processor group, read-modify-written in
//                bursts by one holder at a time before migrating to the
//                next: the pattern MOESI's Owned state exists for.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/trace.h"

namespace rmrsim {

struct GenSpec {
  std::string kind = "zipf";  ///< one of generator_names()
  int procs = 8;
  std::uint64_t ops = 1024;  ///< total operations across all processors
  std::uint64_t seed = 1;
};

/// Generator kinds, in catalog order.
const std::vector<std::string>& generator_names();
bool is_generator_name(const std::string& kind);

/// Builds the trace for `spec`. Throws std::logic_error on an unknown
/// kind, procs < 1, ops == 0, or ops > kMaxTraceOps.
Trace generate_trace(const GenSpec& spec);

}  // namespace rmrsim
