// Trace replay: a parsed or generated trace driven through the simulator.
//
// The trace's global op order becomes the schedule (ScriptedScheduler) and
// its per-processor subsequences become coroutine programs, so a replay is
// an ordinary Simulation run: every op is priced by whatever cost model
// the SharedMemory carries (DSM or any CC policy), the RMR ledger
// accumulates as usual, and any attached CoherenceListener — a single
// protocol, the whole ProtocolFleet, a write buffer in front of either —
// sees the exact event stream. History runs in counters-only mode, so
// million-op traces cost memory proportional to the processor count, not
// the op count.
//
// FENCE ops are replayed as a 0-valued FAA on a per-processor variable
// homed at that processor: local under DSM, cache-resident under CC, and
// an atomic primitive — which is precisely the write-buffer drain barrier
// the trace format means by "fence". Fences are counted in trace.fences
// and in the ledger's op totals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coherence/stats.h"
#include "metrics/registry.h"
#include "workload/trace.h"

namespace rmrsim {

class SharedMemory;
class CoherenceListener;

struct ReplayOptions {
  AddrMapSpec addr_map{};
  /// Protocol state machines to ride the replay ("mesi", ...); empty = none.
  std::vector<std::string> protocols;
  /// Also attach the legacy Section 8 message counters (bus/ideal/coarse).
  bool legacy_counters = false;
  /// Per-processor store-buffer entries in front of the protocols; 0 = off.
  int write_buffer = 0;
  CycleCosts costs{};
};

/// Low-level replay: drives `trace` through `mem` exactly as configured by
/// the caller — any listener already attached to `mem` stays attached and
/// sees the event stream (the caller owns attaching and flushing it).
/// `mem` must be freshly constructed for trace.nprocs processors with no
/// variables allocated. Publishes the simulation (ledger.*, history.*,
/// sim.*) plus the trace.* gauges and rmrs.per_op; throws if the replay
/// fails to run every op to completion.
MetricsRegistry replay_trace_core(const Trace& trace, SharedMemory& mem,
                                  const AddrMapSpec& addr_map = {});

/// Full replay: builds the protocol rig requested by `opts` (state
/// machines, optional legacy counters, optional write buffer), attaches
/// it, replays, flushes, and publishes everything — the core metrics plus
/// msgs.<proto>.* / cycles.<proto>.* with per-op gauges, wb.* when
/// buffered, and protocol.invariants_ok (1.0 iff every state machine's
/// invariants held). Throws on unknown protocol names.
MetricsRegistry replay_trace(const Trace& trace, SharedMemory& mem,
                             const ReplayOptions& opts = {});

}  // namespace rmrsim
