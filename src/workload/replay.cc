#include "workload/replay.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>

#include "coherence/fleet.h"
#include "coherence/protocols.h"
#include "coherence/write_buffer.h"
#include "common/check.h"
#include "memory/shared_memory.h"
#include "metrics/publish.h"
#include "runtime/simulation.h"
#include "sched/schedulers.h"

namespace rmrsim {

namespace {

ProcTask replay_program(ProcCtx& ctx, const std::vector<MemOp>* ops) {
  for (const MemOp& op : *ops) (void)co_await ctx.apply(op);
}

ProcId home_for(const AddrMapSpec& map, std::uint64_t addr, ProcId toucher,
                int nprocs) {
  switch (map.policy) {
    case AddrMapSpec::Policy::kGlobal:
      return kNoProc;
    case AddrMapSpec::Policy::kFirstTouch:
      return toucher;
    case AddrMapSpec::Policy::kInterleave:
      return static_cast<ProcId>((addr / map.block) %
                                 static_cast<std::uint64_t>(nprocs));
  }
  return kNoProc;
}

MemOp to_mem_op(const TraceOp& t, VarId var) {
  switch (t.kind) {
    case TraceOpKind::kRead:
      return MemOp::read(var);
    case TraceOpKind::kWrite:
      return MemOp::write(var, t.arg0);
    case TraceOpKind::kCas:
      return MemOp::cas(var, t.arg0, t.arg1);
    case TraceOpKind::kFaa:
      return MemOp::faa(var, t.arg0);
    case TraceOpKind::kFas:
      return MemOp::fas(var, t.arg0);
    case TraceOpKind::kTas:
      return MemOp::tas(var);
    case TraceOpKind::kFence:
      break;  // handled by the caller (per-proc fence variable)
  }
  fail("replay: unexpected trace op kind");
}

}  // namespace

MetricsRegistry replay_trace_core(const Trace& trace, SharedMemory& mem,
                                  const AddrMapSpec& addr_map) {
  ensure(trace.nprocs >= 1, "replay: trace has no processors");
  ensure(mem.nprocs() == trace.nprocs,
         "replay: memory was built for a different processor count");
  ensure(addr_map.block > 0, "replay: address-map block must be positive");

  // Fence barriers first (fixed ids), then trace variables in first-touch
  // order — the allocation order, and with it every VarId, is a pure
  // function of (trace, addr_map), which byte-stable artifacts need.
  std::vector<VarId> fence(trace.nprocs);
  for (int p = 0; p < trace.nprocs; ++p) {
    fence[p] = mem.allocate_local(static_cast<ProcId>(p), 0);
  }
  std::unordered_map<std::uint64_t, VarId> vars;
  vars.reserve(1024);
  std::vector<std::vector<MemOp>> per_proc(trace.nprocs);
  std::vector<ProcId> script;
  script.reserve(trace.ops.size());
  std::uint64_t fences = 0;
  for (const TraceOp& t : trace.ops) {
    ensure(t.proc >= 0 && t.proc < trace.nprocs,
           "replay: trace op proc out of range");
    script.push_back(t.proc);
    if (t.kind == TraceOpKind::kFence) {
      ++fences;
      per_proc[t.proc].push_back(MemOp::faa(fence[t.proc], 0));
      continue;
    }
    auto [it, inserted] = vars.try_emplace(t.addr, kNoVar);
    if (inserted) {
      it->second = mem.allocate(
          0, home_for(addr_map, t.addr, t.proc, trace.nprocs));
    }
    per_proc[t.proc].push_back(to_mem_op(t, it->second));
  }

  std::vector<Program> programs;
  programs.reserve(trace.nprocs);
  for (int p = 0; p < trace.nprocs; ++p) {
    const std::vector<MemOp>* ops = &per_proc[p];
    programs.emplace_back(
        [ops](ProcCtx& ctx) { return replay_program(ctx, ops); });
  }
  Simulation sim(mem, std::move(programs));
  sim.set_history_mode(HistoryMode::kCountersOnly);
  ScriptedScheduler sched(std::move(script));
  const Simulation::RunResult run = sim.run(sched, trace.ops.size() + 1);
  ensure(run.steps == trace.ops.size() && run.all_terminated,
         "replay: trace did not run to completion");

  MetricsRegistry reg;
  publish_simulation(reg, sim);
  reg.set("trace.ops", static_cast<double>(trace.ops.size()));
  reg.set("trace.procs", static_cast<double>(trace.nprocs));
  reg.set("trace.vars", static_cast<double>(vars.size()));
  reg.set("trace.fences", static_cast<double>(fences));
  reg.set("rmrs.per_op",
          static_cast<double>(mem.ledger().total_rmrs()) /
              std::max<double>(1.0,
                               static_cast<double>(mem.ledger().total_ops())));
  return reg;
}

MetricsRegistry replay_trace(const Trace& trace, SharedMemory& mem,
                             const ReplayOptions& opts) {
  std::vector<std::unique_ptr<SnoopingCache>> caches;
  ListenerFanout fanout;
  for (const std::string& name : opts.protocols) {
    auto cache = make_protocol(name, trace.nprocs, opts.costs);
    ensure(cache != nullptr, "replay: unknown protocol '" + name +
                                 "' (want mesi|mesif|moesi|dragon)");
    fanout.add(cache.get());
    caches.push_back(std::move(cache));
  }
  BusBroadcastCounter bus;
  IdealDirectoryCounter ideal;
  CoarseDirectoryCounter coarse(trace.nprocs);
  if (opts.legacy_counters) {
    fanout.add(&bus);
    fanout.add(&ideal);
    fanout.add(&coarse);
  }
  std::unique_ptr<WriteBuffer> wb;
  const bool any_listener = !caches.empty() || opts.legacy_counters;
  if (any_listener && opts.write_buffer > 0) {
    wb = std::make_unique<WriteBuffer>(&fanout, trace.nprocs,
                                       opts.write_buffer);
  }
  if (any_listener) {
    mem.set_listener(wb != nullptr ? static_cast<CoherenceListener*>(wb.get())
                                   : &fanout);
  }

  MetricsRegistry reg = replay_trace_core(trace, mem, opts.addr_map);

  if (any_listener) {
    mem.listener()->flush();
    mem.set_listener(nullptr);
  }
  const double ops =
      std::max<double>(1.0, static_cast<double>(trace.ops.size()));
  bool invariants_ok = true;
  for (const auto& cache : caches) {
    publish_protocol(reg, *cache);
    const std::string name(cache->name());
    reg.set("msgs." + name + ".per_op",
            static_cast<double>(cache->total_messages()) / ops);
    reg.set("cycles." + name + ".per_op",
            static_cast<double>(cache->total_cycles()) / ops);
    if (cache->check_invariants().has_value()) invariants_ok = false;
  }
  if (!caches.empty()) {
    reg.set("protocol.invariants_ok", invariants_ok ? 1.0 : 0.0);
  }
  if (opts.legacy_counters) {
    for (const MessageCounter* c : {static_cast<MessageCounter*>(&bus),
                                    static_cast<MessageCounter*>(&ideal),
                                    static_cast<MessageCounter*>(&coarse)}) {
      publish_messages(reg, *c);
      reg.set("msgs." + std::string(c->name()) + ".per_op",
              static_cast<double>(c->total_messages()) / ops);
    }
  }
  if (wb != nullptr) publish_write_buffer(reg, *wb);
  return reg;
}

}  // namespace rmrsim
