#include "workload/generators.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace rmrsim {

namespace {

// Address-space layout. Each generator draws from its own region; the
// only deliberate overlap is hotset's private stream reusing the private
// region. Private addresses satisfy addr % procs == p, so the default
// interleave map homes each processor's stream in its own module — the
// DSM best case the private generator exists to exhibit.
constexpr std::uint64_t kPrivateSalt = 1000;  ///< keeps addr >= procs*1000
constexpr std::uint64_t kPrivateSlots = 64;
constexpr std::uint64_t kHotWords = 4;
constexpr std::uint64_t kZipfBase = 1u << 20;
constexpr std::uint64_t kZipfUniverse = 1024;
constexpr std::uint64_t kRingBase = 1u << 24;
constexpr std::uint64_t kRingSlots = 8;
constexpr std::uint64_t kMigratoryBase = 1u << 28;
constexpr int kMigratoryGroup = 4;

std::uint64_t private_addr(int procs, ProcId p, std::uint64_t slot) {
  return static_cast<std::uint64_t>(procs) *
             (kPrivateSalt + slot % kPrivateSlots) +
         static_cast<std::uint64_t>(p);
}

TraceOp private_op(SplitMix64& rng, int procs, ProcId p, std::uint64_t slot) {
  TraceOp op;
  op.proc = p;
  op.addr = private_addr(procs, p, slot);
  if (rng.chance(1, 4)) {
    op.kind = TraceOpKind::kWrite;
    op.arg0 = static_cast<Word>(rng.below(1000));
  } else {
    op.kind = TraceOpKind::kRead;
  }
  return op;
}

Trace gen_private(const GenSpec& s) {
  Trace t;
  t.nprocs = s.procs;
  SplitMix64 rng(s.seed);
  std::vector<std::uint64_t> slot(s.procs, 0);
  for (std::uint64_t i = 0; i < s.ops; ++i) {
    const ProcId p = static_cast<ProcId>(i % s.procs);
    t.ops.push_back(private_op(rng, s.procs, p, slot[p]++));
  }
  return t;
}

Trace gen_hotset(const GenSpec& s) {
  Trace t;
  t.nprocs = s.procs;
  SplitMix64 rng(s.seed);
  std::vector<std::uint64_t> slot(s.procs, 0);
  for (std::uint64_t i = 0; i < s.ops; ++i) {
    const ProcId p = static_cast<ProcId>(i % s.procs);
    TraceOp op;
    op.proc = p;
    if (rng.chance(1, 64)) {
      op.kind = TraceOpKind::kFence;
    } else if (rng.chance(3, 4)) {
      op.addr = rng.below(kHotWords);
      switch (rng.below(6)) {
        case 0:
        case 1:
          op.kind = TraceOpKind::kRead;
          break;
        case 2:
        case 3:
          op.kind = TraceOpKind::kWrite;
          op.arg0 = static_cast<Word>(rng.below(1000));
          break;
        case 4:
          op.kind = TraceOpKind::kFaa;
          op.arg0 = 1;
          break;
        default:
          op.kind = TraceOpKind::kCas;
          op.arg0 = static_cast<Word>(rng.below(4));
          op.arg1 = static_cast<Word>(rng.below(1000));
          break;
      }
    } else {
      op = private_op(rng, s.procs, p, slot[p]++);
    }
    t.ops.push_back(op);
  }
  return t;
}

Trace gen_zipf(const GenSpec& s) {
  Trace t;
  t.nprocs = s.procs;
  SplitMix64 rng(s.seed);
  for (std::uint64_t i = 0; i < s.ops; ++i) {
    const ProcId p = static_cast<ProcId>(i % s.procs);
    TraceOp op;
    op.proc = p;
    if (rng.chance(1, 128)) {
      op.kind = TraceOpKind::kFence;
      t.ops.push_back(op);
      continue;
    }
    // Integer-only heavy tail: rank bucket b is reached with probability
    // 2^-(b+1), and the op lands uniformly inside bucket [2^b - 1, 2^(b+1)
    // - 1) — rank r is drawn with probability ~ 1/(r+1), the zipf(1) shape,
    // without touching libm.
    std::uint64_t b = 0;
    while (b < 9 && rng.chance(1, 2)) ++b;
    const std::uint64_t idx = (std::uint64_t{1} << b) - 1 +
                              rng.below(std::uint64_t{1} << b);
    op.addr = kZipfBase + std::min(idx, kZipfUniverse - 1);
    const std::uint64_t r = rng.below(40);
    if (r < 24) {
      op.kind = TraceOpKind::kRead;
    } else if (r < 34) {
      op.kind = TraceOpKind::kWrite;
      op.arg0 = static_cast<Word>(rng.below(1000));
    } else if (r < 36) {
      op.kind = TraceOpKind::kFaa;
      op.arg0 = 1;
    } else if (r < 38) {
      op.kind = TraceOpKind::kCas;
      op.arg0 = static_cast<Word>(rng.below(8));
      op.arg1 = static_cast<Word>(rng.below(1000));
    } else if (r < 39) {
      op.kind = TraceOpKind::kTas;
    } else {
      op.kind = TraceOpKind::kFas;
      op.arg0 = static_cast<Word>(rng.below(1000));
    }
    t.ops.push_back(op);
  }
  return t;
}

Trace gen_ring(const GenSpec& s) {
  Trace t;
  t.nprocs = s.procs;
  SplitMix64 rng(s.seed);
  const int pairs = s.procs / 2;
  std::vector<std::uint64_t> produced(std::max(pairs, 1), 0);
  std::vector<std::uint64_t> consumed(std::max(pairs, 1), 0);
  std::vector<std::uint64_t> turn(s.procs, 0);
  std::vector<std::uint64_t> slot(s.procs, 0);
  for (std::uint64_t i = 0; i < s.ops; ++i) {
    const ProcId p = static_cast<ProcId>(i % s.procs);
    const int q = p / 2;
    TraceOp op;
    op.proc = p;
    if (q >= pairs) {
      // Odd processor count: the unpaired straggler streams privately.
      t.ops.push_back(private_op(rng, s.procs, p, slot[p]++));
      continue;
    }
    const std::uint64_t head = kRingBase + static_cast<std::uint64_t>(q) * 16;
    const bool second_half = (turn[p]++ % 2) == 1;
    if (p % 2 == 0) {  // producer: fill a slot, then publish via the head
      if (!second_half) {
        op.kind = TraceOpKind::kWrite;
        op.addr = head + 1 + produced[q] % kRingSlots;
        op.arg0 = static_cast<Word>(rng.below(1000));
      } else {
        op.kind = TraceOpKind::kFaa;
        op.addr = head;
        op.arg0 = 1;
        ++produced[q];
      }
    } else {  // consumer: poll the head, then read the next slot
      if (!second_half) {
        op.kind = TraceOpKind::kRead;
        op.addr = head;
      } else {
        op.kind = TraceOpKind::kRead;
        op.addr = head + 1 + consumed[q] % kRingSlots;
        ++consumed[q];
      }
    }
    t.ops.push_back(op);
  }
  return t;
}

Trace gen_migratory(const GenSpec& s) {
  Trace t;
  t.nprocs = s.procs;
  SplitMix64 rng(s.seed);
  const int groups = (s.procs + kMigratoryGroup - 1) / kMigratoryGroup;
  // Round-robin over groups; within a group the object is held for a
  // 4-op read-modify-write burst, then migrates to the next member. The
  // global order is burst-contiguous on purpose: that is what gives the
  // holder temporal ownership for MOESI/Dragon to exploit.
  std::uint64_t round = 0;
  while (t.ops.size() < s.ops) {
    for (int g = 0; g < groups && t.ops.size() < s.ops; ++g) {
      const int base = g * kMigratoryGroup;
      const int size = std::min(kMigratoryGroup, s.procs - base);
      const ProcId holder =
          static_cast<ProcId>(base + static_cast<int>(round) % size);
      const std::uint64_t obj =
          kMigratoryBase + static_cast<std::uint64_t>(g);
      for (int k = 0; k < 4 && t.ops.size() < s.ops; ++k) {
        TraceOp op;
        op.proc = holder;
        op.addr = obj;
        if (k % 2 == 0) {
          op.kind = TraceOpKind::kRead;
        } else {
          op.kind = TraceOpKind::kWrite;
          op.arg0 = static_cast<Word>(rng.below(1000));
        }
        t.ops.push_back(op);
      }
    }
    ++round;
  }
  return t;
}

}  // namespace

const std::vector<std::string>& generator_names() {
  static const std::vector<std::string> kNames = {
      "private", "hotset", "zipf", "ring", "migratory"};
  return kNames;
}

bool is_generator_name(const std::string& kind) {
  const auto& names = generator_names();
  return std::find(names.begin(), names.end(), kind) != names.end();
}

Trace generate_trace(const GenSpec& spec) {
  ensure(spec.procs >= 1 &&
             static_cast<std::uint64_t>(spec.procs) <= kMaxTraceProcs,
         "generate_trace: procs out of range");
  ensure(spec.ops > 0 && spec.ops <= kMaxTraceOps,
         "generate_trace: ops out of range");
  if (spec.kind == "private") return gen_private(spec);
  if (spec.kind == "hotset") return gen_hotset(spec);
  if (spec.kind == "zipf") return gen_zipf(spec);
  if (spec.kind == "ring") return gen_ring(spec);
  if (spec.kind == "migratory") return gen_migratory(spec);
  fail("unknown trace generator '" + spec.kind +
       "' (want private|hotset|zipf|ring|migratory)");
}

}  // namespace rmrsim
