#include "mutex/recoverable_lock.h"

#include <string>

namespace rmrsim {

RecoverableSpinLock::RecoverableSpinLock(SharedMemory& mem)
    : owner_(mem.allocate_global(kFree, "owner")) {
  for (ProcId p = 0; p < mem.nprocs(); ++p) {
    want_.push_back(
        mem.allocate_local(p, 0, "want[" + std::to_string(p) + "]"));
  }
}

SubTask<void> RecoverableSpinLock::acquire(ProcCtx& ctx) {
  const ProcId me = ctx.id();
  co_await ctx.write(want_[me], 1);
  for (;;) {
    const Word old = co_await ctx.cas(owner_, kFree, me);
    // `old == me` cannot arise in a crash-free run (we only reach acquire
    // after recover() released any orphaned hold), but tolerating it keeps
    // acquire correct even if a driver skips the recovery section.
    if (old == kFree || old == me) break;
  }
}

SubTask<void> RecoverableSpinLock::release(ProcCtx& ctx) {
  const ProcId me = ctx.id();
  co_await ctx.cas(owner_, me, kFree);
  co_await ctx.write(want_[me], 0);
}

SubTask<void> RecoverableSpinLock::recover(ProcCtx& ctx) {
  const ProcId me = ctx.id();
  // If the crash struck while we held the lock (anywhere from the winning
  // CAS in acquire to the releasing CAS in release), the hold is orphaned:
  // release it. CAS, not write — by the time we run, we may have read a
  // stale owner, and blind-writing kFree could free somebody else's hold.
  const Word holder = co_await ctx.read(owner_);
  if (holder == me) co_await ctx.cas(owner_, me, kFree);
  co_await ctx.write(want_[me], 0);
}

}  // namespace rmrsim
