#include "mutex/lock.h"

#include <map>

namespace rmrsim {

ProcTask mutex_worker(ProcCtx& ctx, MutexAlgorithm* lock, int passages) {
  for (int i = 0; i < passages; ++i) {
    co_await ctx.call_begin(calls::kAcquire);
    co_await lock->acquire(ctx);
    co_await ctx.call_end(calls::kAcquire);
    co_await ctx.call_begin(calls::kCritical);
    co_await ctx.call_end(calls::kCritical);
    co_await ctx.call_begin(calls::kRelease);
    co_await lock->release(ctx);
    co_await ctx.call_end(calls::kRelease);
  }
}

ProcTask recoverable_mutex_worker(ProcCtx& ctx, RecoverableMutexAlgorithm* lock,
                                  VarId done_var, int passages) {
  co_await ctx.call_begin(calls::kRecover);
  co_await lock->recover(ctx);
  co_await ctx.call_end(calls::kRecover);
  for (;;) {
    // Progress check reads shared memory, not a loop counter: a crash wipes
    // the frame, so only `done_var` remembers how far this process got.
    const Word done = co_await ctx.read(done_var);
    if (done >= passages) break;
    co_await ctx.call_begin(calls::kAcquire);
    co_await lock->acquire(ctx);
    co_await ctx.call_end(calls::kAcquire);
    co_await ctx.call_begin(calls::kCritical);
    co_await ctx.faa(done_var, 1);
    co_await ctx.call_end(calls::kCritical);
    co_await ctx.call_begin(calls::kRelease);
    co_await lock->release(ctx);
    co_await ctx.call_end(calls::kRelease);
  }
}

std::optional<MutexViolation> check_mutual_exclusion(const History& h) {
  ProcId inside = kNoProc;
  for (const StepRecord& r : h.records()) {
    if (r.kind != StepRecord::Kind::kEvent) continue;
    if (r.event == EventKind::kCrash) {
      // The crash ends the victim's passage; its open CS span (if any) is
      // closed here, not violated. Whether *another* process can now slip
      // into the CS while the crashed holder's shared state still claims it
      // is exactly what this checker decides on the remaining records.
      if (inside == r.proc) inside = kNoProc;
      continue;
    }
    if (r.code != calls::kCritical) continue;
    if (r.event == EventKind::kCallBegin) {
      if (inside != kNoProc) {
        return MutexViolation{
            r.index, inside, r.proc,
            "two processes in the critical section simultaneously"};
      }
      inside = r.proc;
    } else if (r.event == EventKind::kCallEnd) {
      if (inside != r.proc) {
        return MutexViolation{r.index, inside, r.proc,
                              "critical-section exit without matching entry"};
      }
      inside = kNoProc;
    }
  }
  return std::nullopt;
}

int passages_completed(const History& h, ProcId p) {
  int n = 0;
  for (const StepRecord& r : h.records()) {
    if (r.proc == p && r.kind == StepRecord::Kind::kEvent &&
        r.event == EventKind::kCallEnd && r.code == calls::kCritical) {
      ++n;
    }
  }
  return n;
}

CrashRunReport analyze_crash_run(const History& h) {
  CrashRunReport rep;
  rep.mutual_exclusion_ok = !check_mutual_exclusion(h).has_value();
  std::map<ProcId, std::int64_t> acquiring;  // open kAcquire span -> begin idx
  std::map<ProcId, bool> recovering;         // open kRecover span
  for (const StepRecord& r : h.records()) {
    if (r.kind != StepRecord::Kind::kEvent) continue;
    if (r.event == EventKind::kCrash) {
      ++rep.crashes;
      if (recovering[r.proc]) ++rep.failed_recoveries;
      acquiring.erase(r.proc);
      recovering[r.proc] = false;
      continue;
    }
    if (r.event == EventKind::kRecover) {
      ++rep.recoveries;
      continue;
    }
    if (r.event == EventKind::kCallBegin && r.code == calls::kRecover) {
      recovering[r.proc] = true;
    } else if (r.event == EventKind::kCallEnd && r.code == calls::kRecover) {
      recovering[r.proc] = false;
    } else if (r.event == EventKind::kCallBegin && r.code == calls::kAcquire) {
      acquiring[r.proc] = r.index;
    } else if (r.event == EventKind::kCallBegin &&
               r.code == calls::kCritical) {
      // Everyone still waiting who started acquiring before this process did
      // has just been overtaken once.
      const auto me = acquiring.find(r.proc);
      if (me != acquiring.end()) {
        for (const auto& [q, begin] : acquiring) {
          if (q != r.proc && begin < me->second) ++rep.fifo_inversions;
        }
        acquiring.erase(me);
      }
    }
  }
  return rep;
}

}  // namespace rmrsim
