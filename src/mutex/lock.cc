#include "mutex/lock.h"

namespace rmrsim {

ProcTask mutex_worker(ProcCtx& ctx, MutexAlgorithm* lock, int passages) {
  for (int i = 0; i < passages; ++i) {
    co_await ctx.call_begin(calls::kAcquire);
    co_await lock->acquire(ctx);
    co_await ctx.call_end(calls::kAcquire);
    co_await ctx.call_begin(calls::kCritical);
    co_await ctx.call_end(calls::kCritical);
    co_await ctx.call_begin(calls::kRelease);
    co_await lock->release(ctx);
    co_await ctx.call_end(calls::kRelease);
  }
}

std::optional<MutexViolation> check_mutual_exclusion(const History& h) {
  ProcId inside = kNoProc;
  for (const StepRecord& r : h.records()) {
    if (r.kind != StepRecord::Kind::kEvent || r.code != calls::kCritical) {
      continue;
    }
    if (r.event == EventKind::kCallBegin) {
      if (inside != kNoProc) {
        return MutexViolation{
            r.index, inside, r.proc,
            "two processes in the critical section simultaneously"};
      }
      inside = r.proc;
    } else if (r.event == EventKind::kCallEnd) {
      if (inside != r.proc) {
        return MutexViolation{r.index, inside, r.proc,
                              "critical-section exit without matching entry"};
      }
      inside = kNoProc;
    }
  }
  return std::nullopt;
}

int passages_completed(const History& h, ProcId p) {
  int n = 0;
  for (const StepRecord& r : h.records()) {
    if (r.proc == p && r.kind == StepRecord::Kind::kEvent &&
        r.event == EventKind::kCallEnd && r.code == calls::kCritical) {
      ++n;
    }
  }
  return n;
}

}  // namespace rmrsim
