// CLH queue lock (Craig; Landin & Hagersten).
//
// MCS's twin with the opposite model affinity: contenders form an implicit
// queue of nodes and each spins on its *predecessor's* node. On a CC
// machine that spin caches beautifully (O(1) RMRs per passage); on a DSM
// machine the predecessor's node lives wherever the predecessor's previous
// node lived — it cannot be co-located with the spinner, so the spin is
// remote and unbounded. CLH-vs-MCS is the canonical "same queue, different
// model" pairing (cf. Section 5 of [3]), the mutex-world miniature of the
// paper's flag-vs-registration contrast.
//
// Node recycling per the classic protocol: a releasing process adopts its
// predecessor's node for its next acquisition.
#pragma once

#include <vector>

#include "memory/shared_memory.h"
#include "mutex/lock.h"

namespace rmrsim {

class ClhLock final : public MutexAlgorithm {
 public:
  explicit ClhLock(SharedMemory& mem);

  SubTask<void> acquire(ProcCtx& ctx) override;
  SubTask<void> release(ProcCtx& ctx) override;

  std::string_view name() const override { return "clh"; }

 private:
  VarId tail_;                   // global: FAS'd node index
  std::vector<VarId> node_;      // node_[k]: "locked" flag, detached module
  std::vector<VarId> my_node_;   // my_node_[p] homed at p
  std::vector<VarId> my_pred_;   // my_pred_[p] homed at p
};

}  // namespace rmrsim
