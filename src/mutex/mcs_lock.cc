#include "mutex/mcs_lock.h"

namespace rmrsim {

McsLock::McsLock(SharedMemory& mem) : tail_(mem.allocate_global(kNil, "tail")) {
  for (ProcId p = 0; p < mem.nprocs(); ++p) {
    next_.push_back(
        mem.allocate_local(p, kNil, "next[" + std::to_string(p) + "]"));
    locked_.push_back(
        mem.allocate_local(p, 0, "locked[" + std::to_string(p) + "]"));
  }
}

SubTask<void> McsLock::acquire(ProcCtx& ctx) {
  const ProcId me = ctx.id();
  co_await ctx.write(next_[me], kNil);
  const Word pred = co_await ctx.fas(tail_, me);
  if (pred != kNil) {
    co_await ctx.write(locked_[me], 1);
    co_await ctx.write(next_[static_cast<ProcId>(pred)], me);
    for (;;) {
      const Word l = co_await ctx.read(locked_[me]);  // local spin
      if (l == 0) break;
    }
  }
}

SubTask<void> McsLock::release(ProcCtx& ctx) {
  const ProcId me = ctx.id();
  Word succ = co_await ctx.read(next_[me]);
  if (succ == kNil) {
    const Word old = co_await ctx.cas(tail_, me, kNil);
    if (old == me) co_return;  // nobody queued behind us
    // A successor is mid-enqueue: wait (on our own module) for the link.
    for (;;) {
      succ = co_await ctx.read(next_[me]);
      if (succ != kNil) break;
    }
  }
  co_await ctx.write(locked_[static_cast<ProcId>(succ)], 0);
}

}  // namespace rmrsim
