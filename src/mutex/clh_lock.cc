#include "mutex/clh_lock.h"

namespace rmrsim {

ClhLock::ClhLock(SharedMemory& mem) {
  const int n = mem.nprocs();
  // N + 1 nodes: one per process plus the initial (unlocked) sentinel that
  // seeds the queue.
  for (int k = 0; k <= n; ++k) {
    node_.push_back(
        mem.allocate_global(0, "node[" + std::to_string(k) + "]"));
  }
  tail_ = mem.allocate_global(n, "tail");  // sentinel is node n, unlocked
  for (ProcId p = 0; p < n; ++p) {
    my_node_.push_back(
        mem.allocate_local(p, p, "mynode[" + std::to_string(p) + "]"));
    my_pred_.push_back(
        mem.allocate_local(p, -1, "mypred[" + std::to_string(p) + "]"));
  }
}

SubTask<void> ClhLock::acquire(ProcCtx& ctx) {
  const ProcId me = ctx.id();
  const Word k = co_await ctx.read(my_node_[me]);
  co_await ctx.write(node_[static_cast<std::size_t>(k)], 1);
  const Word pred = co_await ctx.fas(tail_, k);
  co_await ctx.write(my_pred_[me], pred);
  for (;;) {
    const Word locked =
        co_await ctx.read(node_[static_cast<std::size_t>(pred)]);
    if (locked == 0) break;  // remote spin in DSM, cached spin in CC
  }
}

SubTask<void> ClhLock::release(ProcCtx& ctx) {
  const ProcId me = ctx.id();
  const Word k = co_await ctx.read(my_node_[me]);
  co_await ctx.write(node_[static_cast<std::size_t>(k)], 0);
  // Adopt the predecessor's node for the next round (it is retired now).
  const Word pred = co_await ctx.read(my_pred_[me]);
  co_await ctx.write(my_node_[me], pred);
}

}  // namespace rmrsim
