// Fischer's timing-based mutual exclusion.
//
// Section 3 discusses semi-synchronous systems: "consecutive steps by the
// same process occur at most Delta time units apart", processes know Delta
// and can delay themselves by at least Delta to force others to make
// progress. In that model, mutual exclusion becomes possible with a single
// shared variable and plain reads/writes — Fischer's classic protocol:
//
//   acquire:  repeat
//               await X = NIL        (spin)
//               X := me
//               delay(D)             (let every racer finish its write)
//               until X = me
//   release:  X := NIL
//
// Safety holds iff D is at least the scheduler's step-gap bound: any rival
// that read X = NIL before our write must have applied its own write within
// Delta, so after the delay the *last* writer owns X exclusively. With D
// too small the protocol is broken, and the tests exhibit concrete
// violations — correctness here is a property of the timing model, not the
// code, which is exactly the point of the Section 3 citation ([23]: in this
// model DSM gets O(1) RMRs while CC needs Omega(log log N), a separation in
// the opposite direction to the paper's).
#pragma once

#include "memory/shared_memory.h"
#include "mutex/lock.h"

namespace rmrsim {

class FischerLock final : public MutexAlgorithm {
 public:
  /// `delay_ticks` must be >= the scheduler's maximum step gap (see
  /// BoundedGapScheduler) for mutual exclusion to hold.
  FischerLock(SharedMemory& mem, Word delay_ticks);

  SubTask<void> acquire(ProcCtx& ctx) override;
  SubTask<void> release(ProcCtx& ctx) override;

  std::string_view name() const override { return "fischer"; }

 private:
  static constexpr Word kNil = -1;
  VarId x_;
  Word delay_ticks_;
};

}  // namespace rmrsim
