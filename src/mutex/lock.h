// Mutual exclusion — the paper's reference problem (Sections 1, 3).
//
// ME is where RMR complexity was born, and its known bounds are the sanity
// anchor for our simulator (experiment E5): with reads and writes the tight
// bound is Theta(log N) RMRs per passage in *both* models (no separation),
// while Fetch-And-Store / Fetch-And-Increment give O(1). Locks implemented
// here: the Yang–Anderson tournament (reads/writes, local-spin, Theta(log
// N)), MCS (FAS+CAS, O(1)), Anderson's array lock (FAI; O(1) in CC but not
// local-spin in DSM), the ticket lock, and a plain TAS spinlock (O(1) under
// LFCU only — experiment E8).
#pragma once

#include <optional>
#include <string>

#include "history/history.h"
#include "runtime/coro.h"
#include "runtime/proc_ctx.h"
#include "runtime/simulation.h"

namespace rmrsim {

class MutexAlgorithm {
 public:
  virtual ~MutexAlgorithm() = default;

  /// Acquires the lock; returns with the caller holding it.
  virtual SubTask<void> acquire(ProcCtx& ctx) = 0;

  /// Releases the lock; caller must hold it.
  virtual SubTask<void> release(ProcCtx& ctx) = 0;

  virtual std::string_view name() const = 0;
};

/// A mutex that survives the RME failure model (Golab–Ramaraju): after a
/// crash anywhere in acquire/critical-section/release, running `recover`
/// (from the top of the restarted program) repairs the lock's shared state —
/// releasing an orphaned hold if the crash struck while the caller owned the
/// lock — after which acquire works normally again. `recover` must be
/// idempotent: it also runs on a fresh, crash-free start.
class RecoverableMutexAlgorithm : public MutexAlgorithm {
 public:
  /// Crash-recovery section. Runs before any acquire on (re)start.
  virtual SubTask<void> recover(ProcCtx& ctx) = 0;
};

/// Canned worker: `passages` iterations of acquire -> critical section ->
/// release, with call boundaries recorded (calls::kAcquire / kCritical /
/// kRelease) so the checker below and the RMR-per-passage benches work off
/// the history.
ProcTask mutex_worker(ProcCtx& ctx, MutexAlgorithm* lock, int passages);

/// Crash-restartable worker for FaultScheduler runs. Because a recovered
/// program re-runs from the top with all locals lost, progress lives in
/// shared memory: the worker loops until its own counter `done_var` (one
/// variable per process, pre-allocated by the driver) reaches `passages`,
/// incrementing it with FAA inside the critical section. On every (re)start
/// it first runs the lock's recovery section under a calls::kRecover span —
/// so a crash inside that span is a *failed recovery*, countable from the
/// history.
ProcTask recoverable_mutex_worker(ProcCtx& ctx, RecoverableMutexAlgorithm* lock,
                                  VarId done_var, int passages);

struct MutexViolation {
  std::int64_t step_index = -1;
  ProcId first = kNoProc;
  ProcId second = kNoProc;
  std::string what;
};

/// Mutual exclusion safety: no two processes' critical sections
/// (kCritical call spans) overlap in the history. Crash-aware: a crash
/// closes the victim's open critical section (its passage ends with the
/// crash — the RME convention), so mutual exclusion remains checkable on
/// crashy histories and MUST still hold; fairness properties need not (see
/// analyze_crash_run, which reports FIFO inversions instead of asserting).
std::optional<MutexViolation> check_mutual_exclusion(const History& h);

/// Completed passages (kCritical call ends) by process p.
int passages_completed(const History& h, ProcId p);

/// What a crashy run preserved and what it gave up, extracted from the
/// history. Mutual exclusion is a verdict (it must survive crashes);
/// FIFO/fairness is a measurement (crashes legitimately reorder waiters —
/// a recovered process re-enters the queue from scratch).
struct CrashRunReport {
  int crashes = 0;
  int recoveries = 0;
  /// Crashes that struck while the victim's calls::kRecover span was open:
  /// the recovery itself was cut down and had to be re-run.
  int failed_recoveries = 0;
  /// Critical-section entries that overtook a process which had started
  /// acquiring earlier and was still waiting.
  int fifo_inversions = 0;
  bool mutual_exclusion_ok = true;
};

CrashRunReport analyze_crash_run(const History& h);

}  // namespace rmrsim
