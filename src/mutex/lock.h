// Mutual exclusion — the paper's reference problem (Sections 1, 3).
//
// ME is where RMR complexity was born, and its known bounds are the sanity
// anchor for our simulator (experiment E5): with reads and writes the tight
// bound is Theta(log N) RMRs per passage in *both* models (no separation),
// while Fetch-And-Store / Fetch-And-Increment give O(1). Locks implemented
// here: the Yang–Anderson tournament (reads/writes, local-spin, Theta(log
// N)), MCS (FAS+CAS, O(1)), Anderson's array lock (FAI; O(1) in CC but not
// local-spin in DSM), the ticket lock, and a plain TAS spinlock (O(1) under
// LFCU only — experiment E8).
#pragma once

#include <optional>
#include <string>

#include "history/history.h"
#include "runtime/coro.h"
#include "runtime/proc_ctx.h"
#include "runtime/simulation.h"

namespace rmrsim {

class MutexAlgorithm {
 public:
  virtual ~MutexAlgorithm() = default;

  /// Acquires the lock; returns with the caller holding it.
  virtual SubTask<void> acquire(ProcCtx& ctx) = 0;

  /// Releases the lock; caller must hold it.
  virtual SubTask<void> release(ProcCtx& ctx) = 0;

  virtual std::string_view name() const = 0;
};

/// Canned worker: `passages` iterations of acquire -> critical section ->
/// release, with call boundaries recorded (calls::kAcquire / kCritical /
/// kRelease) so the checker below and the RMR-per-passage benches work off
/// the history.
ProcTask mutex_worker(ProcCtx& ctx, MutexAlgorithm* lock, int passages);

struct MutexViolation {
  std::int64_t step_index = -1;
  ProcId first = kNoProc;
  ProcId second = kNoProc;
  std::string what;
};

/// Mutual exclusion safety: no two processes' critical sections
/// (kCritical call spans) overlap in the history.
std::optional<MutexViolation> check_mutual_exclusion(const History& h);

/// Completed passages (kCritical call ends) by process p.
int passages_completed(const History& h, ProcId p);

}  // namespace rmrsim
