// Lamport's bakery algorithm [24] — FCFS mutual exclusion from reads and
// writes.
//
// The historical baseline behind the paper's FCFS ME citations: tickets are
// chosen by scanning every process's number, and entry waits until no
// smaller (number, id) pair exists. Every passage scans all N processes, so
// the cost is Theta(N) RMRs per passage in BOTH models — the pre-local-spin
// world that Yang–Anderson's Theta(log N) improved on. Included as an E5
// data point and as the only FCFS lock in the suite (first-come-first-
// served by ticket choice order).
#pragma once

#include <vector>

#include "memory/shared_memory.h"
#include "mutex/lock.h"

namespace rmrsim {

class BakeryLock final : public MutexAlgorithm {
 public:
  explicit BakeryLock(SharedMemory& mem);

  SubTask<void> acquire(ProcCtx& ctx) override;
  SubTask<void> release(ProcCtx& ctx) override;

  std::string_view name() const override { return "bakery"; }

 private:
  std::vector<VarId> choosing_;  // choosing_[i] homed at p_i
  std::vector<VarId> number_;    // number_[i] homed at p_i
};

}  // namespace rmrsim
