// Peterson's algorithm in a tournament tree — the non-local-spin
// read/write baseline.
//
// Structurally the same tournament as Yang–Anderson, but each node runs
// Peterson's classic 2-process protocol, whose waiters spin on the *shared*
// node variables (the rival's flag and the turn cell) rather than on a flag
// in their own module. Consequence: O(log N) RMRs per passage in CC (the
// spins cache), but unbounded RMRs in DSM (every re-check of a remote flag
// crosses the interconnect) — the per-lock miniature of the paper's
// flag-algorithm story, and the reason local-spin constructions like
// Yang–Anderson exist (Section 1's "co-locate variables with processes
// that access them most heavily").
#pragma once

#include <vector>

#include "memory/shared_memory.h"
#include "mutex/lock.h"

namespace rmrsim {

class PetersonTournamentLock final : public MutexAlgorithm {
 public:
  explicit PetersonTournamentLock(SharedMemory& mem);

  SubTask<void> acquire(ProcCtx& ctx) override;
  SubTask<void> release(ProcCtx& ctx) override;

  std::string_view name() const override { return "peterson-tournament"; }

 private:
  struct Node {
    VarId flag[2] = {kNoVar, kNoVar};  // "I want in", per side
    VarId turn = kNoVar;               // whose turn it is to wait
  };

  SubTask<void> entry(ProcCtx& ctx, int node, int side);
  SubTask<void> exit(ProcCtx& ctx, int node, int side);

  int n2_ = 1;
  int levels_ = 0;
  std::vector<Node> nodes_;
};

}  // namespace rmrsim
