#include "mutex/peterson_lock.h"

namespace rmrsim {

PetersonTournamentLock::PetersonTournamentLock(SharedMemory& mem) {
  while (n2_ < mem.nprocs()) {
    n2_ *= 2;
    ++levels_;
  }
  levels_ = std::max(levels_, 1);
  n2_ = std::max(n2_, 2);
  nodes_.resize(static_cast<std::size_t>(n2_));
  for (int j = 1; j < n2_; ++j) {
    auto& node = nodes_[static_cast<std::size_t>(j)];
    node.flag[0] = mem.allocate_global(0, "F[" + std::to_string(j) + "][0]");
    node.flag[1] = mem.allocate_global(0, "F[" + std::to_string(j) + "][1]");
    node.turn = mem.allocate_global(0, "Turn[" + std::to_string(j) + "]");
  }
}

SubTask<void> PetersonTournamentLock::entry(ProcCtx& ctx, int node,
                                            int side) {
  const Node& nd = nodes_[static_cast<std::size_t>(node)];
  co_await ctx.write(nd.flag[side], 1);
  co_await ctx.write(nd.turn, side);
  for (;;) {
    const Word rival = co_await ctx.read(nd.flag[1 - side]);
    if (rival == 0) break;
    const Word turn = co_await ctx.read(nd.turn);
    if (turn != side) break;
    // Busy-wait on SHARED variables: remote every iteration in DSM.
  }
}

SubTask<void> PetersonTournamentLock::exit(ProcCtx& ctx, int node, int side) {
  const Node& nd = nodes_[static_cast<std::size_t>(node)];
  co_await ctx.write(nd.flag[side], 0);
}

SubTask<void> PetersonTournamentLock::acquire(ProcCtx& ctx) {
  int h = n2_ + ctx.id();
  for (int l = 0; l < levels_; ++l) {
    const int side = h & 1;
    const int node = h >> 1;
    co_await entry(ctx, node, side);
    h = node;
  }
}

SubTask<void> PetersonTournamentLock::release(ProcCtx& ctx) {
  for (int l = levels_ - 1; l >= 0; --l) {
    const int h = (n2_ + ctx.id()) >> l;
    co_await exit(ctx, h >> 1, h & 1);
  }
}

}  // namespace rmrsim
