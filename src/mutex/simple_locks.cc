#include "mutex/simple_locks.h"

namespace rmrsim {

AndersonArrayLock::AndersonArrayLock(SharedMemory& mem)
    : size_(mem.nprocs()), ticket_(mem.allocate_global(0, "ticket")) {
  for (int k = 0; k < size_; ++k) {
    flags_.push_back(
        mem.allocate_global(k == 0 ? 1 : 0, "flag[" + std::to_string(k) + "]"));
  }
  for (ProcId p = 0; p < mem.nprocs(); ++p) {
    my_slot_.push_back(
        mem.allocate_local(p, 0, "slot[" + std::to_string(p) + "]"));
  }
}

SubTask<void> AndersonArrayLock::acquire(ProcCtx& ctx) {
  const ProcId me = ctx.id();
  const Word t = co_await ctx.faa(ticket_, 1);
  const Word slot = t % size_;
  co_await ctx.write(my_slot_[me], slot);
  for (;;) {
    const Word f = co_await ctx.read(flags_[static_cast<std::size_t>(slot)]);
    if (f != 0) break;
  }
}

SubTask<void> AndersonArrayLock::release(ProcCtx& ctx) {
  const ProcId me = ctx.id();
  const Word slot = co_await ctx.read(my_slot_[me]);
  co_await ctx.write(flags_[static_cast<std::size_t>(slot)], 0);
  co_await ctx.write(flags_[static_cast<std::size_t>((slot + 1) % size_)], 1);
}

TicketLock::TicketLock(SharedMemory& mem)
    : next_(mem.allocate_global(0, "next")),
      serving_(mem.allocate_global(0, "serving")) {
  for (ProcId p = 0; p < mem.nprocs(); ++p) {
    my_ticket_.push_back(
        mem.allocate_local(p, 0, "ticket[" + std::to_string(p) + "]"));
  }
}

SubTask<void> TicketLock::acquire(ProcCtx& ctx) {
  const ProcId me = ctx.id();
  const Word t = co_await ctx.faa(next_, 1);
  co_await ctx.write(my_ticket_[me], t);
  for (;;) {
    const Word s = co_await ctx.read(serving_);
    if (s == t) break;
  }
}

SubTask<void> TicketLock::release(ProcCtx& ctx) {
  co_await ctx.faa(serving_, 1);
}

TasLock::TasLock(SharedMemory& mem)
    : flag_(mem.allocate_global(0, "lock")) {}

SubTask<void> TasLock::acquire(ProcCtx& ctx) {
  for (;;) {
    const Word old = co_await ctx.tas(flag_);
    if (old == 0) co_return;
  }
}

SubTask<void> TasLock::release(ProcCtx& ctx) {
  co_await ctx.write(flag_, 0);
}

}  // namespace rmrsim
