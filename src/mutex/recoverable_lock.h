// Recoverable spin lock — mutual exclusion under the RME failure model.
//
// Design rule: every lock-state transition is a single atomic step on one
// word (`owner`), so there is no crash window in which the shared state is
// half-updated. Contrast MCS: its release is a multi-step queue handoff
// (read next, CAS tail, write successor's flag), and a crash between those
// steps strands the queue forever — bench_e9_crash demonstrates the
// resulting system-wide deadlock. Here every crash leaves `owner` either
// free, held by the victim (recovery CAS-releases it), or held by someone
// else (recovery is a no-op), so the recovery section repairs any crash
// point and is idempotent.
//
// What this lock gives up: waiters spin with CAS on the one global word, so
// a passage under contention is NOT O(1) RMRs in either model (each failed
// CAS is remote in DSM and invalidates under CC). That trade is fundamental
// territory — recoverable mutual exclusion has an Omega(log n / log log n)
// RMR lower bound (Chan–Woelfel 2017; see PAPERS.md) — and this lock makes
// no fairness promise either: a recovered process re-enters from scratch
// and can be overtaken (analyze_crash_run counts the inversions). The point
// it exists to make is progress: under crash schedules where MCS stops
// dead, every process still completes all of its passages.
#pragma once

#include <vector>

#include "memory/shared_memory.h"
#include "mutex/lock.h"

namespace rmrsim {

class RecoverableSpinLock final : public RecoverableMutexAlgorithm {
 public:
  explicit RecoverableSpinLock(SharedMemory& mem);

  SubTask<void> acquire(ProcCtx& ctx) override;
  SubTask<void> release(ProcCtx& ctx) override;
  SubTask<void> recover(ProcCtx& ctx) override;

  std::string_view name() const override { return "recoverable-spin"; }

 private:
  static constexpr Word kFree = -1;
  VarId owner_;                // global: kFree or the holder's id
  std::vector<VarId> want_;    // want_[p] homed at p: p is past its doorway
};

}  // namespace rmrsim
