#include "mutex/ya_lock.h"

#include "common/check.h"

namespace rmrsim {

YangAndersonLock::YangAndersonLock(SharedMemory& mem) {
  while (n2_ < mem.nprocs()) {
    n2_ *= 2;
    ++levels_;
  }
  levels_ = std::max(levels_, 1);
  n2_ = std::max(n2_, 2);
  nodes_.resize(static_cast<std::size_t>(n2_));
  for (int j = 1; j < n2_; ++j) {
    auto& node = nodes_[static_cast<std::size_t>(j)];
    node.c[0] = mem.allocate_global(kNil, "C[" + std::to_string(j) + "][0]");
    node.c[1] = mem.allocate_global(kNil, "C[" + std::to_string(j) + "][1]");
    node.t = mem.allocate_global(kNil, "T[" + std::to_string(j) + "]");
  }
  spin_.resize(static_cast<std::size_t>(mem.nprocs()));
  for (ProcId p = 0; p < mem.nprocs(); ++p) {
    for (int l = 0; l < levels_; ++l) {
      spin_[static_cast<std::size_t>(p)].push_back(mem.allocate_local(
          p, 0,
          "P[" + std::to_string(p) + "][" + std::to_string(l) + "]"));
    }
  }
}

SubTask<void> YangAndersonLock::entry(ProcCtx& ctx, int node, int side,
                                      int level) {
  const Word me = ctx.id();
  const Node& nd = nodes_[static_cast<std::size_t>(node)];
  const VarId my_spin = spin_[static_cast<std::size_t>(ctx.id())]
                             [static_cast<std::size_t>(level)];
  co_await ctx.write(nd.c[side], me);
  co_await ctx.write(nd.t, me);
  co_await ctx.write(my_spin, 0);
  const Word rival = co_await ctx.read(nd.c[1 - side]);
  if (rival != kNil) {
    const Word t = co_await ctx.read(nd.t);
    if (t == me) {
      // We arrived last: wake a rival that may already be waiting, then
      // wait on our own (local) flag until the rival hands over.
      const VarId rival_spin =
          spin_[static_cast<std::size_t>(rival)]
               [static_cast<std::size_t>(level)];
      const Word rs = co_await ctx.read(rival_spin);
      if (rs == 0) {
        co_await ctx.write(rival_spin, 1);
      }
      for (;;) {
        const Word mine = co_await ctx.read(my_spin);
        if (mine != 0) break;
      }
      const Word t2 = co_await ctx.read(nd.t);
      if (t2 == me) {
        for (;;) {
          const Word mine = co_await ctx.read(my_spin);
          if (mine > 1) break;
        }
      }
    }
  }
}

SubTask<void> YangAndersonLock::exit(ProcCtx& ctx, int node, int side,
                                     int level) {
  const Word me = ctx.id();
  const Node& nd = nodes_[static_cast<std::size_t>(node)];
  // Clear our announcement cell, then hand over to the rival recorded in
  // the tie breaker, if any.
  co_await ctx.write(nd.c[side], kNil);
  const Word rival = co_await ctx.read(nd.t);
  if (rival != me && rival != kNil) {
    const VarId rival_spin = spin_[static_cast<std::size_t>(rival)]
                                  [static_cast<std::size_t>(level)];
    co_await ctx.write(rival_spin, 2);
  }
}

SubTask<void> YangAndersonLock::acquire(ProcCtx& ctx) {
  int h = n2_ + ctx.id();
  for (int l = 0; l < levels_; ++l) {
    const int side = h & 1;
    const int node = h >> 1;
    co_await entry(ctx, node, side, l);
    h = node;
  }
}

SubTask<void> YangAndersonLock::release(ProcCtx& ctx) {
  // Exit nodes in reverse order of entry: root first, leaf level last.
  for (int l = levels_ - 1; l >= 0; --l) {
    const int h = (n2_ + ctx.id()) >> l;
    const int side = h & 1;
    const int node = h >> 1;
    co_await exit(ctx, node, side, l);
  }
}

}  // namespace rmrsim
