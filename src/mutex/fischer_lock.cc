#include "mutex/fischer_lock.h"

namespace rmrsim {

FischerLock::FischerLock(SharedMemory& mem, Word delay_ticks)
    : x_(mem.allocate_global(kNil, "X")), delay_ticks_(delay_ticks) {}

SubTask<void> FischerLock::acquire(ProcCtx& ctx) {
  const Word me = ctx.id();
  for (;;) {
    for (;;) {
      const Word x = co_await ctx.read(x_);
      if (x == kNil) break;
    }
    co_await ctx.write(x_, me);
    co_await ctx.delay(delay_ticks_);
    const Word x = co_await ctx.read(x_);
    if (x == me) co_return;
  }
}

SubTask<void> FischerLock::release(ProcCtx& ctx) {
  co_await ctx.write(x_, kNil);
}

}  // namespace rmrsim
