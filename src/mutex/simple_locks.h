// Array, ticket, and test-and-set locks.
//
// Together with Yang–Anderson and MCS these span the RMR spectrum the
// paper's Sections 3 and 8 discuss:
//  * AndersonArrayLock [4] (FAI): each contender spins on its own array
//    slot — O(1) invalidations per passage in CC, but the slots rotate, so
//    they cannot be co-located with spinners: NOT local-spin in DSM (a model
//    sensitivity exactly like the paper's flag algorithm).
//  * TicketLock: all contenders spin on one `serving` counter — each release
//    invalidates every spinning cache (Theta(contenders) messages in CC) and
//    every re-check is an RMR in DSM.
//  * TasLock: the textbook spinlock whose failed TAS spins are remote on
//    standard CC machines but *local* on LFCU systems (Section 3, [1]) —
//    the E8 ablation.
#pragma once

#include <vector>

#include "memory/shared_memory.h"
#include "mutex/lock.h"

namespace rmrsim {

class AndersonArrayLock final : public MutexAlgorithm {
 public:
  explicit AndersonArrayLock(SharedMemory& mem);

  SubTask<void> acquire(ProcCtx& ctx) override;
  SubTask<void> release(ProcCtx& ctx) override;

  std::string_view name() const override { return "anderson-array"; }

 private:
  int size_;
  VarId ticket_;               // global FAI counter
  std::vector<VarId> flags_;   // flags_[k], detached module; flags_[0]=1
  std::vector<VarId> my_slot_; // my_slot_[p] homed at p (persistent state)
};

class TicketLock final : public MutexAlgorithm {
 public:
  explicit TicketLock(SharedMemory& mem);

  SubTask<void> acquire(ProcCtx& ctx) override;
  SubTask<void> release(ProcCtx& ctx) override;

  std::string_view name() const override { return "ticket"; }

 private:
  VarId next_;
  VarId serving_;
  std::vector<VarId> my_ticket_;  // my_ticket_[p] homed at p
};

class TasLock final : public MutexAlgorithm {
 public:
  explicit TasLock(SharedMemory& mem);

  SubTask<void> acquire(ProcCtx& ctx) override;
  SubTask<void> release(ProcCtx& ctx) override;

  std::string_view name() const override { return "tas-spin"; }

 private:
  VarId flag_;
};

}  // namespace rmrsim
