// MCS queue lock (Mellor-Crummey & Scott [28]).
//
// The canonical O(1)-RMR lock for the Fetch-And-Store (+CAS) primitive
// class: contenders form an explicit queue; each spins on a flag in its own
// queue node, which we home in the spinner's memory module — local-spin in
// DSM and cache-friendly in CC. One half of the Section 3 separation
// between primitive classes (Theta(log N) for reads/writes vs O(1) with
// fetch-and-phi), reproduced as experiment E5.
#pragma once

#include <vector>

#include "memory/shared_memory.h"
#include "mutex/lock.h"

namespace rmrsim {

class McsLock final : public MutexAlgorithm {
 public:
  explicit McsLock(SharedMemory& mem);

  SubTask<void> acquire(ProcCtx& ctx) override;
  SubTask<void> release(ProcCtx& ctx) override;

  std::string_view name() const override { return "mcs"; }

 private:
  static constexpr Word kNil = -1;
  VarId tail_;                 // global queue tail (FAS/CAS)
  std::vector<VarId> next_;    // next_[p] homed at p
  std::vector<VarId> locked_;  // locked_[p] homed at p (spin flag)
};

}  // namespace rmrsim
