// Yang–Anderson tournament lock [30].
//
// The classic read/write local-spin mutual exclusion algorithm: processes
// race pairwise up a binary tournament tree; at each node the 2-process
// Yang–Anderson entry/exit protocol (three-valued per-process spin flags,
// a tie-breaker variable T, and announcement cells C[0..1]) decides who
// advances. Each process spins only on its own per-level flag, which lives
// in its own memory module — so a passage costs Theta(log N) RMRs in the DSM
// model and in the CC model alike, matching the tight bound for the
// read/write primitive class (Section 3; experiment E5).
#pragma once

#include <vector>

#include "memory/shared_memory.h"
#include "mutex/lock.h"

namespace rmrsim {

class YangAndersonLock final : public MutexAlgorithm {
 public:
  explicit YangAndersonLock(SharedMemory& mem);

  SubTask<void> acquire(ProcCtx& ctx) override;
  SubTask<void> release(ProcCtx& ctx) override;

  std::string_view name() const override { return "yang-anderson"; }

  int levels() const { return levels_; }

 private:
  static constexpr Word kNil = -1;

  struct Node {
    VarId c[2] = {kNoVar, kNoVar};  // announcement cells, init NIL
    VarId t = kNoVar;               // tie breaker: last process to arrive
  };

  SubTask<void> entry(ProcCtx& ctx, int node, int side, int level);
  SubTask<void> exit(ProcCtx& ctx, int node, int side, int level);

  int n2_ = 1;      // leaf count: smallest power of two >= nprocs
  int levels_ = 0;  // tree height
  std::vector<Node> nodes_;          // heap-indexed, nodes_[1..n2_-1]
  std::vector<std::vector<VarId>> spin_;  // spin_[p][level], homed at p
};

}  // namespace rmrsim
