#include "mutex/bakery_lock.h"

namespace rmrsim {

BakeryLock::BakeryLock(SharedMemory& mem) {
  for (ProcId i = 0; i < mem.nprocs(); ++i) {
    choosing_.push_back(
        mem.allocate_local(i, 0, "choosing[" + std::to_string(i) + "]"));
    number_.push_back(
        mem.allocate_local(i, 0, "number[" + std::to_string(i) + "]"));
  }
}

SubTask<void> BakeryLock::acquire(ProcCtx& ctx) {
  const ProcId me = ctx.id();
  const int n = static_cast<int>(number_.size());
  co_await ctx.write(choosing_[me], 1);
  Word max = 0;
  for (int j = 0; j < n; ++j) {
    const Word nj = co_await ctx.read(number_[j]);
    if (nj > max) max = nj;
  }
  co_await ctx.write(number_[me], max + 1);
  co_await ctx.write(choosing_[me], 0);
  for (ProcId j = 0; j < n; ++j) {
    if (j == me) continue;
    for (;;) {
      const Word cj = co_await ctx.read(choosing_[j]);
      if (cj == 0) break;
    }
    for (;;) {
      const Word nj = co_await ctx.read(number_[j]);
      if (nj == 0) break;
      const Word mine = max + 1;
      // Lexicographic (number, id) priority.
      if (nj > mine || (nj == mine && j > me)) break;
    }
  }
}

SubTask<void> BakeryLock::release(ProcCtx& ctx) {
  co_await ctx.write(number_[ctx.id()], 0);
}

}  // namespace rmrsim
