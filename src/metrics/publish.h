// Publishers: one function per measurement source, pushing into a
// MetricsRegistry under a stable naming scheme.
//
// These replace the ad-hoc locals benches used to keep ("total RMRs here,
// max waiter RMRs there"): a simulation run is measured once, into a
// registry, and every consumer — text tables, BENCH_*.json artifacts, the
// asymptotic fitter — reads the same numbers under the same names.
//
// Naming scheme (all counters/gauges, flat keys):
//   ledger.total_ops, ledger.total_rmrs, ledger.max_rmrs, ledger.local_ops
//   history.steps, history.participants, history.finished,
//   history.crashes, history.recoveries
//   calls.<name>.count / .completed / .rmrs / .mem_steps  (+ summaries and
//     a per-call RMR histogram under calls.<name>.rmrs_per_call)
//   msgs.<protocol>.transfers / .invalidations / .useful / .superfluous /
//     .updates / .total
//   cycles.<protocol>.total / .hits / .memory_fetches / .cache_transfers /
//     .bus_signals / .bus_updates / .write_backs (+ a per-proc cycle
//     summary under cycles.<protocol>.proc_cycles)
#pragma once

#include <vector>

#include "metrics/registry.h"

namespace rmrsim {

class RmrLedger;
class History;
class Simulation;
class MessageCounter;
class SnoopingCache;
class WriteBuffer;
struct CallCost;

/// ledger.* totals plus a per-process RMR summary (ledger.proc_rmrs).
void publish_ledger(MetricsRegistry& reg, const RmrLedger& ledger);

/// history.* step and participation counts, including crash/recovery event
/// tallies on crashy histories.
void publish_history(MetricsRegistry& reg, const History& h);

/// Ledger + history of a finished simulation, plus sim.steps / sim.clock.
void publish_simulation(MetricsRegistry& reg, const Simulation& sim);

/// Per-call-code cost aggregates over a per_call_costs slice: counts,
/// completion counts, RMR/mem-step totals and summaries, and a fixed-bucket
/// histogram of RMRs per call (bounds 0,1,2,4,8,16,32,64).
void publish_call_costs(MetricsRegistry& reg,
                        const std::vector<CallCost>& costs);

/// msgs.<counter-name>.* tallies from a coherence message counter.
void publish_messages(MetricsRegistry& reg, const MessageCounter& counter);

/// cycles.<protocol>.* cost-model tallies from a protocol state machine
/// (implies publish_messages for its msgs.* side).
void publish_protocol(MetricsRegistry& reg, const SnoopingCache& cache);

/// wb.buffered / wb.coalesced / wb.forwarded / wb.drained tallies from a
/// store-buffer front end (call after flush() so drains are complete).
void publish_write_buffer(MetricsRegistry& reg, const WriteBuffer& wb);

}  // namespace rmrsim
