#include "metrics/registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "trace/export.h"

namespace rmrsim {

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::set(std::string_view name, double value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

double MetricsRegistry::gauge(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

double MetricsRegistry::value(std::string_view name) const {
  auto it = counters_.find(name);
  if (it != counters_.end()) return static_cast<double>(it->second);
  return gauge(name);
}

bool MetricsRegistry::has_value(std::string_view name) const {
  return counters_.find(name) != counters_.end() ||
         gauges_.find(name) != gauges_.end();
}

void MetricsRegistry::observe(std::string_view name, double value) {
  auto it = summaries_.find(name);
  if (it == summaries_.end()) {
    Summary s;
    s.count = 1;
    s.sum = s.min = s.max = value;
    summaries_.emplace(std::string(name), s);
    return;
  }
  Summary& s = it->second;
  ++s.count;
  s.sum += value;
  s.min = std::min(s.min, value);
  s.max = std::max(s.max, value);
}

const MetricsRegistry::Summary* MetricsRegistry::summary(
    std::string_view name) const {
  auto it = summaries_.find(name);
  return it == summaries_.end() ? nullptr : &it->second;
}

void MetricsRegistry::histogram_observe(std::string_view name,
                                        std::span<const double> bounds,
                                        double value) {
  ensure(!bounds.empty(), "histogram needs at least one bucket bound");
  ensure(std::is_sorted(bounds.begin(), bounds.end()),
         "histogram bounds must be ascending");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    Histogram h;
    h.bounds.assign(bounds.begin(), bounds.end());
    h.counts.assign(bounds.size() + 1, 0);
    it = histograms_.emplace(std::string(name), std::move(h)).first;
  } else {
    ensure(it->second.bounds.size() == bounds.size() &&
               std::equal(bounds.begin(), bounds.end(),
                          it->second.bounds.begin()),
           "histogram re-observed with different bounds");
  }
  Histogram& h = it->second;
  // Inclusive upper bounds (value <= bounds[i] lands in bucket i), so a
  // bound of 0 catches exactly-zero observations.
  const auto bucket = static_cast<std::size_t>(
      std::lower_bound(h.bounds.begin(), h.bounds.end(), value) -
      h.bounds.begin());
  ++h.counts[bucket];
  ++h.total;
}

const MetricsRegistry::Histogram* MetricsRegistry::histogram(
    std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::series_append(std::string_view name, double x, double y,
                                    std::string label) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.emplace(std::string(name), Series{}).first;
  }
  it->second.points.push_back({x, y, std::move(label)});
}

const MetricsRegistry::Series* MetricsRegistry::series(
    std::string_view name) const {
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, v] : other.counters_) add(name, v);
  for (const auto& [name, v] : other.gauges_) set(name, v);
  for (const auto& [name, s] : other.summaries_) {
    auto it = summaries_.find(name);
    if (it == summaries_.end()) {
      summaries_.emplace(name, s);
    } else {
      it->second.count += s.count;
      it->second.sum += s.sum;
      it->second.min = std::min(it->second.min, s.min);
      it->second.max = std::max(it->second.max, s.max);
    }
  }
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
      continue;
    }
    ensure(it->second.bounds == h.bounds,
           "histogram merge with different bounds");
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      it->second.counts[i] += h.counts[i];
    }
    it->second.total += h.total;
  }
  for (const auto& [name, s] : other.series_) {
    auto it = series_.find(name);
    if (it == series_.end()) {
      series_.emplace(name, s);
    } else {
      it->second.points.insert(it->second.points.end(), s.points.begin(),
                               s.points.end());
    }
  }
}

std::vector<std::string> MetricsRegistry::value_names() const {
  std::vector<std::string> out;
  out.reserve(counters_.size() + gauges_.size());
  for (const auto& [name, v] : counters_) out.push_back(name);
  for (const auto& [name, v] : gauges_) {
    if (counters_.find(name) == counters_.end()) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool MetricsRegistry::empty() const {
  return counters_.empty() && gauges_.empty() && summaries_.empty() &&
         histograms_.empty() && series_.empty();
}

std::string format_metric_number(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", value);
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.10g", value);
  return buf;
}

namespace {

void append_kv(std::string& out, std::string_view name, bool& first) {
  if (!first) out += ',';
  first = false;
  out += '"';
  out += json_escape(name);
  out += "\":";
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::string out = "{";
  bool first_section = true;
  if (!counters_.empty() || !gauges_.empty()) {
    append_kv(out, "metrics", first_section);
    out += '{';
    bool first = true;
    for (const std::string& name : value_names()) {
      append_kv(out, name, first);
      out += format_metric_number(value(name));
    }
    out += '}';
  }
  if (!summaries_.empty()) {
    append_kv(out, "summaries", first_section);
    out += '{';
    bool first = true;
    for (const auto& [name, s] : summaries_) {
      append_kv(out, name, first);
      out += "{\"count\":" + std::to_string(s.count) +
             ",\"sum\":" + format_metric_number(s.sum) +
             ",\"min\":" + format_metric_number(s.min) +
             ",\"max\":" + format_metric_number(s.max) +
             ",\"mean\":" + format_metric_number(s.mean()) + "}";
    }
    out += '}';
  }
  if (!histograms_.empty()) {
    append_kv(out, "histograms", first_section);
    out += '{';
    bool first = true;
    for (const auto& [name, h] : histograms_) {
      append_kv(out, name, first);
      out += "{\"bounds\":[";
      for (std::size_t i = 0; i < h.bounds.size(); ++i) {
        if (i) out += ',';
        out += format_metric_number(h.bounds[i]);
      }
      out += "],\"counts\":[";
      for (std::size_t i = 0; i < h.counts.size(); ++i) {
        if (i) out += ',';
        out += std::to_string(h.counts[i]);
      }
      out += "],\"total\":" + std::to_string(h.total) + "}";
    }
    out += '}';
  }
  if (!series_.empty()) {
    append_kv(out, "series", first_section);
    out += '{';
    bool first = true;
    for (const auto& [name, s] : series_) {
      append_kv(out, name, first);
      out += '[';
      for (std::size_t i = 0; i < s.points.size(); ++i) {
        if (i) out += ',';
        const SeriesPoint& p = s.points[i];
        out += "{\"x\":" + format_metric_number(p.x) +
               ",\"y\":" + format_metric_number(p.y);
        if (!p.label.empty()) {
          out += ",\"label\":\"" + json_escape(p.label) + "\"";
        }
        out += '}';
      }
      out += ']';
    }
    out += '}';
  }
  out += '}';
  return out;
}

}  // namespace rmrsim
