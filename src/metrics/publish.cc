#include "metrics/publish.h"

#include <array>
#include <string>

#include "coherence/cache_controller.h"
#include "coherence/protocols.h"
#include "coherence/write_buffer.h"
#include "history/history.h"
#include "memory/ledger.h"
#include "runtime/simulation.h"
#include "trace/call_stats.h"

namespace rmrsim {

namespace {

std::string call_name(Word code) {
  switch (code) {
    case calls::kPoll: return "poll";
    case calls::kSignal: return "signal";
    case calls::kWait: return "wait";
    case calls::kAcquire: return "acquire";
    case calls::kRelease: return "release";
    case calls::kCritical: return "critical";
    case calls::kGmeEnter: return "gme_enter";
    case calls::kGmeExit: return "gme_exit";
    case calls::kRecover: return "recover";
  }
  return "code" + std::to_string(code);
}

}  // namespace

void publish_ledger(MetricsRegistry& reg, const RmrLedger& ledger) {
  reg.add("ledger.total_ops", ledger.total_ops());
  reg.add("ledger.total_rmrs", ledger.total_rmrs());
  reg.add("ledger.max_rmrs", ledger.max_rmrs());
  reg.add("ledger.local_ops", ledger.total_ops() - ledger.total_rmrs());
  for (ProcId p = 0; p < ledger.nprocs(); ++p) {
    if (ledger.ops(p) == 0) continue;
    reg.observe("ledger.proc_rmrs", static_cast<double>(ledger.rmrs(p)));
  }
}

void publish_history(MetricsRegistry& reg, const History& h) {
  reg.add("history.steps", h.size());
  reg.add("history.participants", h.participants().size());
  reg.add("history.finished", h.finished().size());
  // Counter-backed so counters-only histories publish too; the counts are
  // identical to scanning the records for kCrash/kRecover events.
  reg.add("history.crashes", h.crash_events());
  reg.add("history.recoveries", h.recovery_events());
}

void publish_simulation(MetricsRegistry& reg, const Simulation& sim) {
  publish_ledger(reg, sim.memory().ledger());
  publish_history(reg, sim.history());
  reg.add("sim.schedule_entries", sim.schedule().size());
  reg.add("sim.clock", sim.now());
}

void publish_call_costs(MetricsRegistry& reg,
                        const std::vector<CallCost>& costs) {
  static constexpr std::array<double, 8> kRmrBounds = {0, 1, 2, 4,
                                                       8, 16, 32, 64};
  for (const CallCost& c : costs) {
    const std::string base = "calls." + call_name(c.call_code);
    reg.add(base + ".count");
    if (c.completed) reg.add(base + ".completed");
    reg.add(base + ".rmrs", c.rmrs);
    reg.add(base + ".mem_steps", c.mem_steps);
    reg.add(base + ".cycles", c.cycles);
    reg.observe(base + ".rmrs_summary", static_cast<double>(c.rmrs));
    reg.histogram_observe(base + ".rmrs_per_call", kRmrBounds,
                          static_cast<double>(c.rmrs));
  }
}

void publish_messages(MetricsRegistry& reg, const MessageCounter& counter) {
  const std::string base = "msgs." + std::string(counter.name());
  reg.add(base + ".transfers", counter.transfer_messages());
  reg.add(base + ".invalidations", counter.invalidation_messages());
  reg.add(base + ".useful", counter.useful_invalidations());
  reg.add(base + ".superfluous", counter.superfluous_invalidations());
  reg.add(base + ".updates", counter.update_messages());
  reg.add(base + ".total", counter.total_messages());
}

void publish_protocol(MetricsRegistry& reg, const SnoopingCache& cache) {
  publish_messages(reg, cache);
  const ProtocolStats& s = cache.stats();
  const std::string base = "cycles." + std::string(cache.name());
  reg.add(base + ".total", s.cycles);
  reg.add(base + ".hits", s.cache_hits);
  reg.add(base + ".memory_fetches", s.memory_fetches);
  reg.add(base + ".cache_transfers", s.cache_transfers);
  reg.add(base + ".bus_signals", s.bus_signals);
  reg.add(base + ".bus_updates", s.bus_updates);
  reg.add(base + ".write_backs", s.write_backs);
  for (ProcId p = 0; p < cache.nprocs(); ++p) {
    const std::uint64_t cy = cache.proc_cycles(p);
    if (cy == 0) continue;
    reg.observe(base + ".proc_cycles", static_cast<double>(cy));
  }
}

void publish_write_buffer(MetricsRegistry& reg, const WriteBuffer& wb) {
  reg.add("wb.buffered", wb.buffered_writes());
  reg.add("wb.coalesced", wb.coalesced_writes());
  reg.add("wb.forwarded", wb.forwarded_reads());
  reg.add("wb.drained", wb.drained_writes());
}

}  // namespace rmrsim
