// Metrics registry: named counters, summaries, fixed-bucket histograms, and
// labeled series.
//
// Every bench and experiment used to keep its measurements in ad-hoc locals
// and print them straight into a TextTable, which made the numbers
// human-only. The registry is the machine-readable middle layer: simulation
// components (the RMR ledger, histories, per-call cost slices, coherence
// counters — see publish.h) publish into a registry, the sweep engine
// (harness/sweep.h) carries one registry per grid point, and the artifact
// writer (harness/artifact.h) serializes them as BENCH_*.json. Iteration
// order is name-sorted everywhere, so serialized output is deterministic —
// the property the parallel sweep engine's bit-identical-merge guarantee
// rests on.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace rmrsim {

class MetricsRegistry {
 public:
  // ---- counters (monotonic integers) ---------------------------------
  void add(std::string_view name, std::uint64_t delta = 1);
  std::uint64_t counter(std::string_view name) const;

  // ---- gauges (set-valued doubles) -----------------------------------
  void set(std::string_view name, double value);
  double gauge(std::string_view name) const;

  /// Counter or gauge value by name (counters win on a name clash);
  /// 0 if absent. The flat view the sweep engine extracts series from.
  double value(std::string_view name) const;
  bool has_value(std::string_view name) const;

  // ---- summaries (count / sum / min / max over observations) ---------
  struct Summary {
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    double mean() const { return count == 0 ? 0.0 : sum / count; }
  };
  void observe(std::string_view name, double value);
  /// nullptr if nothing was observed under `name`.
  const Summary* summary(std::string_view name) const;

  // ---- histograms (fixed upper-bound buckets, last bucket = +inf) ----
  struct Histogram {
    std::vector<double> bounds;        ///< ascending upper bounds
    std::vector<std::uint64_t> counts; ///< size = bounds.size() + 1
    std::uint64_t total = 0;
  };
  /// Observes `value` into the histogram `name`, creating it with `bounds`
  /// on first use. Later calls must pass identical bounds (checked).
  void histogram_observe(std::string_view name, std::span<const double> bounds,
                         double value);
  const Histogram* histogram(std::string_view name) const;

  // ---- labeled series (x/y points with an optional label) ------------
  struct SeriesPoint {
    double x = 0;
    double y = 0;
    std::string label;
  };
  struct Series {
    std::vector<SeriesPoint> points;
  };
  void series_append(std::string_view name, double x, double y,
                     std::string label = {});
  const Series* series(std::string_view name) const;

  // ---- aggregation / output ------------------------------------------
  /// Adds counters, merges summaries/histograms, concatenates series and
  /// overwrites gauges from `other` — used when one logical experiment
  /// point is assembled from several component publishers.
  void merge_from(const MetricsRegistry& other);

  /// All counter and gauge names, sorted (the flat scalar view).
  std::vector<std::string> value_names() const;

  bool empty() const;

  /// One JSON object with sorted keys:
  ///   {"metrics":{...},"summaries":{...},"histograms":{...},"series":{...}}
  /// Sections with no entries are omitted. Numbers are formatted
  /// deterministically (integers without a decimal point); no external
  /// JSON dependency.
  std::string to_json() const;

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Summary, std::less<>> summaries_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::map<std::string, Series, std::less<>> series_;
};

/// Deterministic number formatting shared by the registry and the artifact
/// writer: integral values (within 2^53) print with no decimal point;
/// everything else uses shortest-roundtrip-ish "%.10g".
std::string format_metric_number(double value);

}  // namespace rmrsim
