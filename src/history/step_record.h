// One step of a history.
//
// Section 2: "A history is a finite or infinite sequence of steps... each
// step entails a memory access and some local computation." Our records also
// retain procedure-call boundaries (begin/end with return values) because the
// signaling specification (Specification 4.1) and the lower-bound proof are
// stated in terms of when calls begin and complete, and termination markers
// for the Fin/Act partition of Definition 6.3.
#pragma once

#include <string>

#include "common/types.h"
#include "memory/memop.h"

namespace rmrsim {

/// Non-memory step payloads.
enum class EventKind {
  kCallBegin,  ///< a procedure call begins; code identifies the procedure
  kCallEnd,    ///< a procedure call completes; value = its return value
  kDirective,  ///< the client driver consumed a scheduling directive
  kMark,       ///< free-form annotation from algorithm/driver code
  kDelay,      ///< a delay(ticks) completed; value = requested ticks
  kCrash,      ///< the process crashed mid-call (Simulation::crash)
  kRecover,    ///< the process recovered: program restarted, locals lost
};

/// Well-known procedure codes used in kCallBegin/kCallEnd records. Kept in
/// one registry so checkers in different modules agree.
namespace calls {
inline constexpr Word kPoll = 1;     ///< signaling: Poll() -> bool
inline constexpr Word kSignal = 2;   ///< signaling: Signal()
inline constexpr Word kWait = 3;     ///< signaling: Wait()
inline constexpr Word kAcquire = 4;  ///< mutex: lock acquisition
inline constexpr Word kRelease = 5;  ///< mutex: lock release
inline constexpr Word kCritical = 6; ///< mutex/GME: inside the critical section
inline constexpr Word kGmeEnter = 7; ///< GME: enter(session)
inline constexpr Word kGmeExit = 8;  ///< GME: exit()
inline constexpr Word kRecover = 9;  ///< RME: a lock's crash-recovery section
}  // namespace calls

/// True for event kinds that checkers may order *across* processes:
/// procedure-call boundaries (Specification 4.1, ME, GME are all phrased
/// over begin/end order) and free-form marks. The model checker treats steps
/// that record an observable event as mutually dependent, so the relative
/// order of call boundaries is preserved within every equivalence class of
/// schedules it reduces over — checkers phrased over memory-op values and/or
/// call-boundary order therefore see identical verdicts on every
/// representative. Directives and delay completions are process-local
/// bookkeeping and stay invisible to the independence relation.
constexpr bool observable_event(EventKind e) {
  return e == EventKind::kCallBegin || e == EventKind::kCallEnd ||
         e == EventKind::kMark;
}

/// What a client driver should do next (supplied by the scheduler/adversary
/// through the simulation's directive policy).
struct Directive {
  /// Driver-defined action. Conventions used by the built-in drivers:
  /// 0 = terminate, positive values select a procedure to call.
  int action = 0;
  /// Optional argument (e.g. a GME session id).
  Word arg = 0;

  static constexpr int kTerminate = 0;
};

struct StepRecord {
  enum class Kind { kMemOp, kEvent };

  std::int64_t index = 0;  ///< position in the global history
  ProcId proc = kNoProc;
  Kind kind = Kind::kMemOp;

  // kMemOp payload.
  MemOp op{};
  OpOutcome outcome{};
  ProcId var_home = kNoProc;  ///< home module of op.var (for `touches`)

  // kEvent payload.
  EventKind event = EventKind::kMark;
  Word code = 0;   ///< e.g. calls::kPoll, or Directive.action
  Word value = 0;  ///< e.g. a call's return value, or Directive.arg

  /// True if the process terminated immediately after this step (its program
  /// ran to completion).
  bool terminated_after = false;

  std::string to_string() const;
};

}  // namespace rmrsim
