// History: the recorded step sequence plus the analysis relations of
// Section 6 — participation, Fin/Act (Definition 6.3), `sees` (6.4),
// `touches` (6.5), and regularity (6.6).
//
// The lower-bound adversary consults these relations to decide which
// processes are invisible (erasable under Lemma 6.7) and to certify that each
// constructed history is regular. Tests use them to validate the proof's
// invariants (Definition 6.9) on real executions.
//
// Two recording modes (DESIGN.md, "Step-loop performance model"):
//  - kFull (default): every step is stored; all queries are available.
//  - kCountersOnly: per-step records are dropped and only aggregate counters
//    are kept (steps, per-proc mem-steps/RMRs/finished flags, crash and
//    recovery event counts, LL/SC usage). Opt-in for benches and exhaustive
//    exploration where only ledger-grade aggregates are consumed; the
//    record-backed relations (sees/touches/regularity/erasure support) throw.
// The counters are maintained in *both* modes and produce values identical to
// the record scans they replace, so switching the counter-backed queries over
// is invisible to results.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/codec.h"
#include "history/step_record.h"

namespace rmrsim {

enum class HistoryMode {
  kFull,          ///< record every step (default)
  kCountersOnly,  ///< aggregates only; per-step records are dropped
};

class History {
 public:
  /// Records one step and returns a reference to the recorded form (stable
  /// until the next append). In counters-only mode the record is folded into
  /// the counters and the returned reference points at an internal scratch
  /// slot instead of a stored record.
  const StepRecord& append(StepRecord record);

  /// Recording mode control. Switching modes is only allowed while empty —
  /// counters cannot be rehydrated into records.
  HistoryMode mode() const { return mode_; }
  void set_mode(HistoryMode mode);

  /// Stored records; requires kFull mode.
  const std::vector<StepRecord>& records() const;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Pre-grows the record storage (no-op in counters-only mode). A restored
  /// world's history copy arrives with capacity == size, so without this its
  /// very first append pays a reallocation.
  void reserve(std::size_t n) { records_.reserve(n); }

  /// Counters-only fast appends for the compiled step engine: fold the step
  /// directly into the aggregates without materializing a StepRecord. Each is
  /// exactly append() + fold_into_counters() specialized for its step shape;
  /// kCountersOnly mode is required so no record store is bypassed. Crash and
  /// recovery events never take this path (Simulation::crash/recover build
  /// full records), so note_event_step covers call/mark/directive/delay only.
  /// Defined inline below the class: they run once per simulated step on the
  /// compiled engine's hot loop, where a cross-TU call is measurable.
  void note_mem_step(ProcId p, bool rmr, bool ll_sc, bool terminated);
  void note_event_step(ProcId p, bool terminated);

  /// Par(H): processes that take at least one step.
  std::vector<ProcId> participants() const;
  bool participated(ProcId p) const;

  /// Fin(H): participants whose program terminated by the end of H.
  std::vector<ProcId> finished() const;
  bool is_finished(ProcId p) const;

  /// Act(H) = Par(H) \ Fin(H).
  std::vector<ProcId> active() const;

  /// Definition 6.4: p sees q iff p reads (any value-returning op) a variable
  /// last written by q. Self-sees (p == q) are reported too; callers filter.
  bool sees(ProcId p, ProcId q) const;

  /// True iff any process other than q sees q — Lemma 6.7's erasability test.
  bool seen_by_other(ProcId q) const;

  /// Definition 6.5: p touches q iff p accesses a variable homed at q.
  bool touches(ProcId p, ProcId q) const;

  /// True iff any process other than q touches q.
  bool touched_by_other(ProcId q) const;

  /// Definition 6.6 regularity: (1) p sees q (p!=q) => q finished;
  /// (2) p touches q (p!=q) => q finished; (3) a variable written by more
  /// than one process has its last write by a finished process.
  bool is_regular() const;

  /// RMRs incurred by p across the recorded steps.
  std::uint64_t rmrs(ProcId p) const;
  std::uint64_t total_rmrs() const;

  /// Memory-op steps taken by p.
  std::uint64_t mem_steps(ProcId p) const;

  /// Crash / recovery events recorded so far (EventKind::kCrash / kRecover).
  std::uint64_t crash_events() const { return crash_events_; }
  std::uint64_t recovery_events() const { return recovery_events_; }

  /// Renders the history one step per line (diagnostics).
  std::string to_string() const;

  // ---- erasure support (Lemma 6.7) ----------------------------------

  /// Drops every record of `p`, renumbers the remaining records, and
  /// rebuilds the aggregate counters from what is left. Sound exactly when
  /// p was invisible (!seen_by_other(p)); callers check. Requires kFull.
  void remove_proc(ProcId p);

  /// Variables `p` overwrote at least once.
  std::vector<VarId> vars_written_by(ProcId p) const;

  /// Last process that overwrote `v` according to the records (kNoProc if
  /// never written).
  ProcId last_writer(VarId v) const;

  /// Distinct processes that overwrote `v`, in first-write order.
  std::vector<ProcId> writers_of(VarId v) const;

  /// Value and writer of the last overwrite of `v` by a process other than
  /// `exclude`; nullopt if no such overwrite (the variable would hold its
  /// initial value without `exclude`).
  std::optional<std::pair<Word, ProcId>> last_write_excluding(
      VarId v, ProcId exclude) const;

  /// True iff any LL or SC operation appears — in-place erasure does not
  /// support reservation side effects and refuses such histories.
  bool uses_ll_sc() const;

  /// True iff any recorded overwrite targeted a variable homed at `p` —
  /// i.e., p's memory module was written. The Lemma 6.13 signaler is chosen
  /// with an unwritten module.
  bool module_written(ProcId p) const;

  // ---- wire serialization (runtime/snapshot_codec.h) --------------------

  /// Appends the whole history — mode, aggregate counters, and (kFull only)
  /// every stored record — in the shared little-endian codec. Canonical: a
  /// pure function of the recorded content.
  void encode(std::string& out) const;

  /// Appends only the aggregate counters (per-proc and totals), independent
  /// of mode. This is the history's contribution to the content fingerprint:
  /// full-mode records encode *how* a state was reached and are deliberately
  /// excluded there.
  void encode_counters(std::string& out) const;

  /// Overwrites this history with content written by encode(). Throws on
  /// malformed input.
  void decode(ByteReader& r);

 private:
  struct ProcCounters {
    std::uint64_t steps = 0;
    std::uint64_t mem_steps = 0;
    std::uint64_t rmrs = 0;
    bool finished = false;
  };

  void require_full(const char* what) const;
  ProcCounters& counters_for(ProcId p);
  void fold_into_counters(const StepRecord& r);
  void rebuild_counters();

  HistoryMode mode_ = HistoryMode::kFull;
  std::vector<StepRecord> records_;  // empty in counters-only mode
  StepRecord scratch_;               // append()'s return slot when not storing

  // Aggregates, maintained in both modes (indexed by ProcId, grown lazily).
  std::vector<ProcCounters> per_proc_;
  std::size_t size_ = 0;
  std::uint64_t total_rmrs_ = 0;
  std::uint64_t crash_events_ = 0;
  std::uint64_t recovery_events_ = 0;
  bool saw_ll_sc_ = false;
};

inline History::ProcCounters& History::counters_for(ProcId p) {
  const auto idx = static_cast<std::size_t>(p);
  if (idx >= per_proc_.size()) [[unlikely]] per_proc_.resize(idx + 1);
  return per_proc_[idx];
}

inline void History::note_mem_step(ProcId p, bool rmr, bool ll_sc,
                                   bool terminated) {
  ensure(mode_ == HistoryMode::kCountersOnly,
         "note_mem_step() is a counters-only fast path");
  ProcCounters& c = counters_for(p);
  ++c.steps;
  ++size_;
  if (terminated) c.finished = true;
  ++c.mem_steps;
  if (rmr) {
    ++c.rmrs;
    ++total_rmrs_;
  }
  if (ll_sc) saw_ll_sc_ = true;
}

inline void History::note_event_step(ProcId p, bool terminated) {
  ensure(mode_ == HistoryMode::kCountersOnly,
         "note_event_step() is a counters-only fast path");
  ProcCounters& c = counters_for(p);
  ++c.steps;
  ++size_;
  if (terminated) c.finished = true;
}

/// The value a nontrivial memory-op record stored into its variable.
Word written_value(const StepRecord& r);

}  // namespace rmrsim
