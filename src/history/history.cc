#include "history/history.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace rmrsim {

std::string StepRecord::to_string() const {
  std::string out = "#" + std::to_string(index) + " p" + std::to_string(proc) + " ";
  if (kind == Kind::kMemOp) {
    out += rmrsim::to_string(op);
    out += " -> " + std::to_string(outcome.result);
    out += outcome.rmr ? " [RMR]" : " [local]";
  } else {
    switch (event) {
      case EventKind::kCallBegin:
        out += "begin(call=" + std::to_string(code) + ")";
        break;
      case EventKind::kCallEnd:
        out += "end(call=" + std::to_string(code) +
               ", ret=" + std::to_string(value) + ")";
        break;
      case EventKind::kDirective:
        out += "directive(action=" + std::to_string(code) +
               ", arg=" + std::to_string(value) + ")";
        break;
      case EventKind::kMark:
        out += "mark(" + std::to_string(code) + ", " + std::to_string(value) + ")";
        break;
      case EventKind::kDelay:
        out += "delay(" + std::to_string(value) + ")";
        break;
      case EventKind::kCrash:
        out += "CRASH";
        break;
      case EventKind::kRecover:
        out += "recover";
        break;
    }
  }
  if (terminated_after) out += " [terminated]";
  return out;
}

void History::append(StepRecord record) {
  record.index = static_cast<std::int64_t>(records_.size());
  records_.push_back(std::move(record));
}

std::vector<ProcId> History::participants() const {
  std::vector<ProcId> out;
  for (const StepRecord& r : records_) {
    if (std::find(out.begin(), out.end(), r.proc) == out.end()) {
      out.push_back(r.proc);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool History::participated(ProcId p) const {
  return std::any_of(records_.begin(), records_.end(),
                     [p](const StepRecord& r) { return r.proc == p; });
}

bool History::is_finished(ProcId p) const {
  return std::any_of(records_.begin(), records_.end(), [p](const StepRecord& r) {
    return r.proc == p && r.terminated_after;
  });
}

std::vector<ProcId> History::finished() const {
  std::vector<ProcId> out;
  for (ProcId p : participants()) {
    if (is_finished(p)) out.push_back(p);
  }
  return out;
}

std::vector<ProcId> History::active() const {
  std::vector<ProcId> out;
  for (ProcId p : participants()) {
    if (!is_finished(p)) out.push_back(p);
  }
  return out;
}

bool History::sees(ProcId p, ProcId q) const {
  return std::any_of(records_.begin(), records_.end(), [&](const StepRecord& r) {
    return r.proc == p && r.kind == StepRecord::Kind::kMemOp &&
           reads_value(r.op.type) && r.outcome.prev_writer == q;
  });
}

bool History::seen_by_other(ProcId q) const {
  return std::any_of(records_.begin(), records_.end(), [&](const StepRecord& r) {
    return r.proc != q && r.kind == StepRecord::Kind::kMemOp &&
           reads_value(r.op.type) && r.outcome.prev_writer == q;
  });
}

bool History::touches(ProcId p, ProcId q) const {
  return std::any_of(records_.begin(), records_.end(), [&](const StepRecord& r) {
    return r.proc == p && r.kind == StepRecord::Kind::kMemOp && r.var_home == q;
  });
}

bool History::touched_by_other(ProcId q) const {
  return std::any_of(records_.begin(), records_.end(), [&](const StepRecord& r) {
    return r.proc != q && r.kind == StepRecord::Kind::kMemOp && r.var_home == q;
  });
}

bool History::is_regular() const {
  // Conditions 1 and 2 of Definition 6.6, quantified over *participants*
  // (a non-participant owning a touched module is outside the definition).
  for (const StepRecord& r : records_) {
    if (r.kind != StepRecord::Kind::kMemOp) continue;
    const ProcId p = r.proc;
    if (reads_value(r.op.type)) {
      const ProcId q = r.outcome.prev_writer;
      if (q != kNoProc && q != p && !is_finished(q)) return false;
    }
    const ProcId h = r.var_home;
    if (h != kNoProc && h != p && participated(h) && !is_finished(h)) {
      return false;
    }
  }
  // Condition 3: for every variable written by more than one process, the
  // last writer must be finished.
  std::map<VarId, std::vector<ProcId>> writers;   // distinct writers per var
  std::map<VarId, ProcId> last_writer;
  for (const StepRecord& r : records_) {
    if (r.kind != StepRecord::Kind::kMemOp || !r.outcome.nontrivial) continue;
    auto& ws = writers[r.op.var];
    if (std::find(ws.begin(), ws.end(), r.proc) == ws.end()) ws.push_back(r.proc);
    last_writer[r.op.var] = r.proc;
  }
  for (const auto& [var, ws] : writers) {
    if (ws.size() > 1 && !is_finished(last_writer.at(var))) return false;
  }
  return true;
}

std::uint64_t History::rmrs(ProcId p) const {
  std::uint64_t n = 0;
  for (const StepRecord& r : records_) {
    if (r.proc == p && r.kind == StepRecord::Kind::kMemOp && r.outcome.rmr) ++n;
  }
  return n;
}

std::uint64_t History::total_rmrs() const {
  std::uint64_t n = 0;
  for (const StepRecord& r : records_) {
    if (r.kind == StepRecord::Kind::kMemOp && r.outcome.rmr) ++n;
  }
  return n;
}

std::uint64_t History::mem_steps(ProcId p) const {
  std::uint64_t n = 0;
  for (const StepRecord& r : records_) {
    if (r.proc == p && r.kind == StepRecord::Kind::kMemOp) ++n;
  }
  return n;
}

void History::remove_proc(ProcId p) {
  std::erase_if(records_, [p](const StepRecord& r) { return r.proc == p; });
  for (std::size_t i = 0; i < records_.size(); ++i) {
    records_[i].index = static_cast<std::int64_t>(i);
  }
}

std::vector<VarId> History::vars_written_by(ProcId p) const {
  std::vector<VarId> out;
  for (const StepRecord& r : records_) {
    if (r.proc == p && r.kind == StepRecord::Kind::kMemOp &&
        r.outcome.nontrivial &&
        std::find(out.begin(), out.end(), r.op.var) == out.end()) {
      out.push_back(r.op.var);
    }
  }
  return out;
}

ProcId History::last_writer(VarId v) const {
  ProcId w = kNoProc;
  for (const StepRecord& r : records_) {
    if (r.kind == StepRecord::Kind::kMemOp && r.op.var == v &&
        r.outcome.nontrivial) {
      w = r.proc;
    }
  }
  return w;
}

std::vector<ProcId> History::writers_of(VarId v) const {
  std::vector<ProcId> out;
  for (const StepRecord& r : records_) {
    if (r.kind == StepRecord::Kind::kMemOp && r.op.var == v &&
        r.outcome.nontrivial &&
        std::find(out.begin(), out.end(), r.proc) == out.end()) {
      out.push_back(r.proc);
    }
  }
  return out;
}

std::optional<std::pair<Word, ProcId>> History::last_write_excluding(
    VarId v, ProcId exclude) const {
  std::optional<std::pair<Word, ProcId>> out;
  for (const StepRecord& r : records_) {
    if (r.kind == StepRecord::Kind::kMemOp && r.op.var == v &&
        r.outcome.nontrivial && r.proc != exclude) {
      out = {written_value(r), r.proc};
    }
  }
  return out;
}

bool History::uses_ll_sc() const {
  return std::any_of(records_.begin(), records_.end(), [](const StepRecord& r) {
    return r.kind == StepRecord::Kind::kMemOp &&
           (r.op.type == OpType::kLl || r.op.type == OpType::kSc);
  });
}

bool History::module_written(ProcId p) const {
  return std::any_of(records_.begin(), records_.end(), [p](const StepRecord& r) {
    return r.kind == StepRecord::Kind::kMemOp && r.outcome.nontrivial &&
           r.var_home == p;
  });
}

Word written_value(const StepRecord& r) {
  switch (r.op.type) {
    case OpType::kWrite:
    case OpType::kFas:
    case OpType::kSc:
      return r.op.arg0;
    case OpType::kCas:
      return r.op.arg1;
    case OpType::kFaa:
      return r.outcome.result + r.op.arg0;
    case OpType::kTas:
      return 1;
    case OpType::kRead:
    case OpType::kLl:
      break;
  }
  fail("record did not overwrite its variable");
}

std::string History::to_string() const {
  std::string out;
  for (const StepRecord& r : records_) {
    out += r.to_string();
    out += '\n';
  }
  return out;
}

}  // namespace rmrsim
