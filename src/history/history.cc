#include "history/history.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace rmrsim {

std::string StepRecord::to_string() const {
  std::string out = "#" + std::to_string(index) + " p" + std::to_string(proc) + " ";
  if (kind == Kind::kMemOp) {
    out += rmrsim::to_string(op);
    out += " -> " + std::to_string(outcome.result);
    out += outcome.rmr ? " [RMR]" : " [local]";
  } else {
    switch (event) {
      case EventKind::kCallBegin:
        out += "begin(call=" + std::to_string(code) + ")";
        break;
      case EventKind::kCallEnd:
        out += "end(call=" + std::to_string(code) +
               ", ret=" + std::to_string(value) + ")";
        break;
      case EventKind::kDirective:
        out += "directive(action=" + std::to_string(code) +
               ", arg=" + std::to_string(value) + ")";
        break;
      case EventKind::kMark:
        out += "mark(" + std::to_string(code) + ", " + std::to_string(value) + ")";
        break;
      case EventKind::kDelay:
        out += "delay(" + std::to_string(value) + ")";
        break;
      case EventKind::kCrash:
        out += "CRASH";
        break;
      case EventKind::kRecover:
        out += "recover";
        break;
    }
  }
  if (terminated_after) out += " [terminated]";
  return out;
}

void History::require_full(const char* what) const {
  ensure(mode_ == HistoryMode::kFull,
         std::string(what) + " requires a full history (HistoryMode::kFull); "
                             "this history records counters only");
}

void History::set_mode(HistoryMode mode) {
  ensure(size_ == 0, "history mode can only change while the history is "
                     "empty (counters cannot be rehydrated into records)");
  mode_ = mode;
}

const std::vector<StepRecord>& History::records() const {
  require_full("records()");
  return records_;
}

void History::fold_into_counters(const StepRecord& r) {
  ProcCounters& c = counters_for(r.proc);
  ++c.steps;
  ++size_;
  if (r.terminated_after) c.finished = true;
  if (r.kind == StepRecord::Kind::kMemOp) {
    ++c.mem_steps;
    if (r.outcome.rmr) {
      ++c.rmrs;
      ++total_rmrs_;
    }
    if (r.op.type == OpType::kLl || r.op.type == OpType::kSc) {
      saw_ll_sc_ = true;
    }
  } else {
    if (r.event == EventKind::kCrash) ++crash_events_;
    if (r.event == EventKind::kRecover) ++recovery_events_;
  }
}

const StepRecord& History::append(StepRecord record) {
  record.index = static_cast<std::int64_t>(size_);
  fold_into_counters(record);
  if (mode_ == HistoryMode::kFull) {
    records_.push_back(std::move(record));
    return records_.back();
  }
  scratch_ = std::move(record);
  return scratch_;
}

void History::rebuild_counters() {
  per_proc_.clear();
  size_ = 0;
  total_rmrs_ = 0;
  crash_events_ = 0;
  recovery_events_ = 0;
  saw_ll_sc_ = false;
  for (const StepRecord& r : records_) fold_into_counters(r);
}

std::vector<ProcId> History::participants() const {
  std::vector<ProcId> out;
  for (std::size_t p = 0; p < per_proc_.size(); ++p) {
    if (per_proc_[p].steps > 0) out.push_back(static_cast<ProcId>(p));
  }
  return out;
}

bool History::participated(ProcId p) const {
  const auto idx = static_cast<std::size_t>(p);
  return idx < per_proc_.size() && per_proc_[idx].steps > 0;
}

bool History::is_finished(ProcId p) const {
  const auto idx = static_cast<std::size_t>(p);
  return idx < per_proc_.size() && per_proc_[idx].finished;
}

std::vector<ProcId> History::finished() const {
  std::vector<ProcId> out;
  for (ProcId p : participants()) {
    if (is_finished(p)) out.push_back(p);
  }
  return out;
}

std::vector<ProcId> History::active() const {
  std::vector<ProcId> out;
  for (ProcId p : participants()) {
    if (!is_finished(p)) out.push_back(p);
  }
  return out;
}

bool History::sees(ProcId p, ProcId q) const {
  require_full("sees()");
  return std::any_of(records_.begin(), records_.end(), [&](const StepRecord& r) {
    return r.proc == p && r.kind == StepRecord::Kind::kMemOp &&
           reads_value(r.op.type) && r.outcome.prev_writer == q;
  });
}

bool History::seen_by_other(ProcId q) const {
  require_full("seen_by_other()");
  return std::any_of(records_.begin(), records_.end(), [&](const StepRecord& r) {
    return r.proc != q && r.kind == StepRecord::Kind::kMemOp &&
           reads_value(r.op.type) && r.outcome.prev_writer == q;
  });
}

bool History::touches(ProcId p, ProcId q) const {
  require_full("touches()");
  return std::any_of(records_.begin(), records_.end(), [&](const StepRecord& r) {
    return r.proc == p && r.kind == StepRecord::Kind::kMemOp && r.var_home == q;
  });
}

bool History::touched_by_other(ProcId q) const {
  require_full("touched_by_other()");
  return std::any_of(records_.begin(), records_.end(), [&](const StepRecord& r) {
    return r.proc != q && r.kind == StepRecord::Kind::kMemOp && r.var_home == q;
  });
}

bool History::is_regular() const {
  require_full("is_regular()");
  // Conditions 1 and 2 of Definition 6.6, quantified over *participants*
  // (a non-participant owning a touched module is outside the definition).
  for (const StepRecord& r : records_) {
    if (r.kind != StepRecord::Kind::kMemOp) continue;
    const ProcId p = r.proc;
    if (reads_value(r.op.type)) {
      const ProcId q = r.outcome.prev_writer;
      if (q != kNoProc && q != p && !is_finished(q)) return false;
    }
    const ProcId h = r.var_home;
    if (h != kNoProc && h != p && participated(h) && !is_finished(h)) {
      return false;
    }
  }
  // Condition 3: for every variable written by more than one process, the
  // last writer must be finished.
  std::map<VarId, std::vector<ProcId>> writers;   // distinct writers per var
  std::map<VarId, ProcId> last_writer;
  for (const StepRecord& r : records_) {
    if (r.kind != StepRecord::Kind::kMemOp || !r.outcome.nontrivial) continue;
    auto& ws = writers[r.op.var];
    if (std::find(ws.begin(), ws.end(), r.proc) == ws.end()) ws.push_back(r.proc);
    last_writer[r.op.var] = r.proc;
  }
  for (const auto& [var, ws] : writers) {
    if (ws.size() > 1 && !is_finished(last_writer.at(var))) return false;
  }
  return true;
}

std::uint64_t History::rmrs(ProcId p) const {
  const auto idx = static_cast<std::size_t>(p);
  return idx < per_proc_.size() ? per_proc_[idx].rmrs : 0;
}

std::uint64_t History::total_rmrs() const { return total_rmrs_; }

std::uint64_t History::mem_steps(ProcId p) const {
  const auto idx = static_cast<std::size_t>(p);
  return idx < per_proc_.size() ? per_proc_[idx].mem_steps : 0;
}

void History::remove_proc(ProcId p) {
  require_full("remove_proc()");
  std::erase_if(records_, [p](const StepRecord& r) { return r.proc == p; });
  for (std::size_t i = 0; i < records_.size(); ++i) {
    records_[i].index = static_cast<std::int64_t>(i);
  }
  rebuild_counters();
}

std::vector<VarId> History::vars_written_by(ProcId p) const {
  require_full("vars_written_by()");
  std::vector<VarId> out;
  for (const StepRecord& r : records_) {
    if (r.proc == p && r.kind == StepRecord::Kind::kMemOp &&
        r.outcome.nontrivial &&
        std::find(out.begin(), out.end(), r.op.var) == out.end()) {
      out.push_back(r.op.var);
    }
  }
  return out;
}

ProcId History::last_writer(VarId v) const {
  require_full("last_writer()");
  ProcId w = kNoProc;
  for (const StepRecord& r : records_) {
    if (r.kind == StepRecord::Kind::kMemOp && r.op.var == v &&
        r.outcome.nontrivial) {
      w = r.proc;
    }
  }
  return w;
}

std::vector<ProcId> History::writers_of(VarId v) const {
  require_full("writers_of()");
  std::vector<ProcId> out;
  for (const StepRecord& r : records_) {
    if (r.kind == StepRecord::Kind::kMemOp && r.op.var == v &&
        r.outcome.nontrivial &&
        std::find(out.begin(), out.end(), r.proc) == out.end()) {
      out.push_back(r.proc);
    }
  }
  return out;
}

std::optional<std::pair<Word, ProcId>> History::last_write_excluding(
    VarId v, ProcId exclude) const {
  require_full("last_write_excluding()");
  std::optional<std::pair<Word, ProcId>> out;
  for (const StepRecord& r : records_) {
    if (r.kind == StepRecord::Kind::kMemOp && r.op.var == v &&
        r.outcome.nontrivial && r.proc != exclude) {
      out = {written_value(r), r.proc};
    }
  }
  return out;
}

bool History::uses_ll_sc() const { return saw_ll_sc_; }

bool History::module_written(ProcId p) const {
  require_full("module_written()");
  return std::any_of(records_.begin(), records_.end(), [p](const StepRecord& r) {
    return r.kind == StepRecord::Kind::kMemOp && r.outcome.nontrivial &&
           r.var_home == p;
  });
}

Word written_value(const StepRecord& r) {
  switch (r.op.type) {
    case OpType::kWrite:
    case OpType::kFas:
    case OpType::kSc:
      return r.op.arg0;
    case OpType::kCas:
      return r.op.arg1;
    case OpType::kFaa:
      return r.outcome.result + r.op.arg0;
    case OpType::kTas:
      return 1;
    case OpType::kRead:
    case OpType::kLl:
      break;
  }
  fail("record did not overwrite its variable");
}

void History::encode_counters(std::string& out) const {
  put_u32(out, static_cast<std::uint32_t>(per_proc_.size()));
  for (const ProcCounters& c : per_proc_) {
    put_u64(out, c.steps);
    put_u64(out, c.mem_steps);
    put_u64(out, c.rmrs);
    put_u32(out, c.finished ? 1 : 0);
  }
  put_u64(out, static_cast<std::uint64_t>(size_));
  put_u64(out, total_rmrs_);
  put_u64(out, crash_events_);
  put_u64(out, recovery_events_);
  put_u32(out, saw_ll_sc_ ? 1 : 0);
}

void History::encode(std::string& out) const {
  put_u32(out, static_cast<std::uint32_t>(mode_));
  encode_counters(out);
  if (mode_ == HistoryMode::kFull) {
    put_u32(out, static_cast<std::uint32_t>(records_.size()));
    for (const StepRecord& r : records_) {
      put_u64(out, static_cast<std::uint64_t>(r.index));
      put_u32(out, static_cast<std::uint32_t>(r.proc));
      put_u32(out, static_cast<std::uint32_t>(r.kind));
      put_u32(out, static_cast<std::uint32_t>(r.op.type));
      put_u32(out, static_cast<std::uint32_t>(r.op.var));
      put_u64(out, static_cast<std::uint64_t>(r.op.arg0));
      put_u64(out, static_cast<std::uint64_t>(r.op.arg1));
      put_u64(out, static_cast<std::uint64_t>(r.outcome.result));
      put_u32(out, r.outcome.rmr ? 1 : 0);
      put_u32(out, r.outcome.nontrivial ? 1 : 0);
      put_u32(out, static_cast<std::uint32_t>(r.outcome.prev_writer));
      put_u32(out, static_cast<std::uint32_t>(r.var_home));
      put_u32(out, static_cast<std::uint32_t>(r.event));
      put_u64(out, static_cast<std::uint64_t>(r.code));
      put_u64(out, static_cast<std::uint64_t>(r.value));
      put_u32(out, r.terminated_after ? 1 : 0);
    }
  }
}

void History::decode(ByteReader& r) {
  const auto mode = static_cast<HistoryMode>(r.u32());
  if (mode != HistoryMode::kFull && mode != HistoryMode::kCountersOnly) {
    throw std::runtime_error("bad history mode");
  }
  mode_ = mode;
  per_proc_.clear();
  per_proc_.resize(r.u32());
  for (ProcCounters& c : per_proc_) {
    c.steps = r.u64();
    c.mem_steps = r.u64();
    c.rmrs = r.u64();
    c.finished = r.u32() != 0;
  }
  size_ = static_cast<std::size_t>(r.u64());
  total_rmrs_ = r.u64();
  crash_events_ = r.u64();
  recovery_events_ = r.u64();
  saw_ll_sc_ = r.u32() != 0;
  records_.clear();
  if (mode_ == HistoryMode::kFull) {
    const std::uint32_t n = r.u32();
    records_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      StepRecord rec;
      rec.index = static_cast<std::int64_t>(r.u64());
      rec.proc = static_cast<ProcId>(r.u32());
      rec.kind = static_cast<StepRecord::Kind>(r.u32());
      rec.op.type = static_cast<OpType>(r.u32());
      rec.op.var = static_cast<VarId>(r.u32());
      rec.op.arg0 = static_cast<Word>(r.u64());
      rec.op.arg1 = static_cast<Word>(r.u64());
      rec.outcome.result = static_cast<Word>(r.u64());
      rec.outcome.rmr = r.u32() != 0;
      rec.outcome.nontrivial = r.u32() != 0;
      rec.outcome.prev_writer = static_cast<ProcId>(r.u32());
      rec.var_home = static_cast<ProcId>(r.u32());
      rec.event = static_cast<EventKind>(r.u32());
      rec.code = static_cast<Word>(r.u64());
      rec.value = static_cast<Word>(r.u64());
      rec.terminated_after = r.u32() != 0;
      records_.push_back(rec);
    }
  }
}

std::string History::to_string() const {
  require_full("to_string()");
  std::string out;
  for (const StepRecord& r : records_) {
    out += r.to_string();
    out += '\n';
  }
  return out;
}

}  // namespace rmrsim
