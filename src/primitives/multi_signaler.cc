#include "primitives/multi_signaler.h"

namespace rmrsim {

MultiSignalerSignal::MultiSignalerSignal(
    SharedMemory& mem, std::unique_ptr<SignalingAlgorithm> inner)
    : inner_(std::move(inner)),
      won_(mem.allocate_global(0, "SigWon")),
      done_(mem.allocate_global(0, "SigDone")) {}

SubTask<bool> MultiSignalerSignal::poll(ProcCtx& ctx) {
  const bool r = co_await inner_->poll(ctx);
  co_return r;
}

SubTask<void> MultiSignalerSignal::signal(ProcCtx& ctx) {
  const Word old = co_await ctx.tas(won_);
  if (old == 0) {
    co_await inner_->signal(ctx);
    co_await ctx.write(done_, 1);
    co_return;
  }
  // A peer is signaling; we may only return once the signal is observable.
  for (;;) {
    const Word d = co_await ctx.read(done_);
    if (d != 0) co_return;
  }
}

}  // namespace rmrsim
