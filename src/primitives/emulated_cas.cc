#include "primitives/emulated_cas.h"

namespace rmrsim {

EmulatedCas::EmulatedCas(SharedMemory& mem, Word initial, std::string name)
    : value_(mem.allocate_global(initial, std::move(name))),
      lock_(std::make_unique<YangAndersonLock>(mem)) {}

SubTask<Word> EmulatedCas::cas(ProcCtx& ctx, Word expect, Word desired) {
  co_await lock_->acquire(ctx);
  const Word old = co_await ctx.read(value_);
  if (old == expect) {
    co_await ctx.write(value_, desired);
  }
  co_await lock_->release(ctx);
  co_return old;
}

SubTask<Word> EmulatedCas::read(ProcCtx& ctx) {
  co_await lock_->acquire(ctx);
  const Word v = co_await ctx.read(value_);
  co_await lock_->release(ctx);
  co_return v;
}

SubTask<void> EmulatedCas::write(ProcCtx& ctx, Word value) {
  co_await lock_->acquire(ctx);
  co_await ctx.write(value_, value);
  co_await lock_->release(ctx);
}

SubTask<Word> EmulatedCas::read_unlocked(ProcCtx& ctx) {
  const Word v = co_await ctx.read(value_);
  co_return v;
}

}  // namespace rmrsim
