// Section 7, "Many waiters not fixed in advance, many signalers".
//
// "One possibility is to reduce this case to 'one signaler not fixed in
// advance' by having signalers elect a leader that will signal the
// waiters." This adapter does exactly that around any inner signaling
// algorithm: the first signaler to win a TAS performs the inner Signal()
// and raises a Done flag; late signalers wait for Done before returning
// (their Signal() may not complete before the signal is actually
// observable, or a subsequent Poll() -> false would violate Specification
// 4.1 clause 2).
//
// Costs: the winning signaler pays the inner algorithm's signal cost + O(1);
// losers pay O(1) in CC and a bounded-by-fairness busy-wait in DSM.
#pragma once

#include <memory>

#include "signaling/algorithm.h"

namespace rmrsim {

class MultiSignalerSignal final : public SignalingAlgorithm {
 public:
  MultiSignalerSignal(SharedMemory& mem,
                      std::unique_ptr<SignalingAlgorithm> inner);

  SubTask<bool> poll(ProcCtx& ctx) override;
  SubTask<void> signal(ProcCtx& ctx) override;

  std::string_view name() const override { return "multi-signaler"; }

 private:
  std::unique_ptr<SignalingAlgorithm> inner_;
  VarId won_;   // TAS: first signaler wins
  VarId done_;  // set once the inner signal completed
};

}  // namespace rmrsim
