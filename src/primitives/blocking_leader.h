// Section 7, blocking semantics, "many waiters not fixed in advance":
// the leader-election reduction.
//
// "With blocking semantics, the problem can be reduced to the single-waiter
// case by having the waiters elect a leader, which learns about the signal
// and then ensures that the signal is propagated to the remaining waiters."
// Waiters elect a leader (TAS election — the paper's own alternative to the
// O(1) read/write election [13]); every waiter registers by raising a flag
// in its own module and then spins on its private delivery flag, while the
// leader plays the single waiter: it registers in the global W cell, spins
// locally on its delivery flag, and on wake-up sweeps the registration
// flags and delivers to everyone.
//
// Costs in DSM: non-leader waiters O(1) RMRs; the leader O(N) for the sweep
// (the paper's [12]-based solution achieves O(1) worst-case per process; our
// simplification is documented as substitution — the reduction's *shape* is
// what this class reproduces). This algorithm implements Wait() natively;
// Poll() is intentionally unsupported (the reduction is for blocking
// semantics only).
#pragma once

#include <memory>
#include <vector>

#include "primitives/leader_election.h"
#include "signaling/algorithm.h"

namespace rmrsim {

class DsmBlockingLeaderSignal final : public SignalingAlgorithm {
 public:
  explicit DsmBlockingLeaderSignal(SharedMemory& mem);

  /// Not supported: this is the blocking-semantics reduction.
  SubTask<bool> poll(ProcCtx& ctx) override;

  SubTask<void> signal(ProcCtx& ctx) override;
  SubTask<void> wait(ProcCtx& ctx) override;

  std::string_view name() const override { return "dsm-blocking-leader"; }

 private:
  static constexpr Word kNil = -1;
  std::unique_ptr<TasLeaderElection> election_;
  VarId s_;                     // global: signal issued?
  VarId w_;                     // global: leader's registration (single-waiter W)
  std::vector<VarId> reg_;      // reg_[i] homed at p_i: "i is waiting"
  std::vector<VarId> v_;        // V[i] homed at p_i: delivery flag
};

}  // namespace rmrsim
