// CAS from reads and writes — the Corollary 6.14 transformation vehicle.
//
// Corollary 6.14 extends the DSM lower bound to CAS/LL-SC algorithms by
// replacing each CAS variable with a locally-accessible implementation built
// from reads and writes ([11, 12]; O(1) RMRs per operation). Those
// constructions are intricate; per DESIGN.md (substitution 2) we use a
// simpler, behaviour-preserving stand-in: a CAS object guarded by the
// read/write Yang–Anderson lock. Each operation costs O(log N) RMRs and the
// result is terminating (not wait-free) — which is all the corollary's
// argument needs: the transformed algorithm uses reads and writes only, is
// terminating and correct, so Theorem 6.2 applies to it verbatim.
#pragma once

#include <memory>

#include "memory/shared_memory.h"
#include "mutex/ya_lock.h"
#include "runtime/coro.h"
#include "runtime/proc_ctx.h"

namespace rmrsim {

class EmulatedCas {
 public:
  EmulatedCas(SharedMemory& mem, Word initial, std::string name = "emucas");

  /// Atomic (lock-protected) compare-and-swap; returns the old value.
  SubTask<Word> cas(ProcCtx& ctx, Word expect, Word desired);

  /// Atomic read. A single-word read is atomic by itself, but we still take
  /// the lock so reads linearize with concurrent cas/write without exposing
  /// their two-step internals.
  SubTask<Word> read(ProcCtx& ctx);

  /// Atomic (lock-protected) write.
  SubTask<void> write(ProcCtx& ctx, Word value);

  /// Direct unlocked read of the current value — safe when the caller only
  /// needs a snapshot (e.g. the signaler walking a quiescent list).
  SubTask<Word> read_unlocked(ProcCtx& ctx);

 private:
  VarId value_;
  std::unique_ptr<YangAndersonLock> lock_;
};

}  // namespace rmrsim
