// One-shot leader election.
//
// Section 7 reduces several signaling variants to leader election, noting it
// is solvable "in one step per process using virtually any read-modify-write
// primitive (e.g., Test-And-Set or Fetch-And-Store)". This is that
// primitive: the TAS winner publishes its id; everyone else reads it. Each
// process caches the outcome in its own module, so repeated calls cost no
// further RMRs. (The paper's read/write-only O(1)-RMR election [13] is a
// documented substitution — DESIGN.md Section 4, item 3.)
#pragma once

#include <vector>

#include "memory/shared_memory.h"
#include "runtime/coro.h"
#include "runtime/proc_ctx.h"

namespace rmrsim {

class TasLeaderElection {
 public:
  explicit TasLeaderElection(SharedMemory& mem);

  /// Returns the elected leader's id. The first caller to win the TAS
  /// becomes leader; losers briefly busy-wait for the winner's announcement
  /// (terminating under fairness). O(1) RMRs on first call, 0 after.
  SubTask<ProcId> elect(ProcCtx& ctx);

 private:
  static constexpr Word kNil = -1;
  VarId flag_;                 // global TAS flag
  VarId leader_;               // global: winner's announcement
  std::vector<VarId> known_;   // known_[p] homed at p: cached outcome
};

}  // namespace rmrsim
