// CasRegistrationSignal after the Corollary 6.14 transformation.
//
// Identical logic to signaling/cas_registration.h, but the CAS'd stack head
// is an EmulatedCas — a read/write implementation — so the whole algorithm
// uses atomic reads and writes ONLY. It is terminating (the emulation busy-
// waits inside its lock) and still correct; Theorem 6.2 therefore applies to
// it directly, which is exactly how Corollary 6.14 lifts the lower bound
// from reads/writes to reads/writes+CAS. Experiment E6 runs the adversary
// against this transformed algorithm.
#pragma once

#include <memory>
#include <vector>

#include "primitives/emulated_cas.h"
#include "signaling/algorithm.h"

namespace rmrsim {

class RwCasRegistrationSignal final : public SignalingAlgorithm {
 public:
  explicit RwCasRegistrationSignal(SharedMemory& mem);

  SubTask<bool> poll(ProcCtx& ctx) override;
  SubTask<void> signal(ProcCtx& ctx) override;

  std::string_view name() const override { return "rw-cas-registration"; }

 private:
  static constexpr Word kNil = -1;
  VarId s_;                         // global: signal issued?
  std::unique_ptr<EmulatedCas> head_;  // registration stack head (read/write)
  std::vector<VarId> next_;         // next_[i] local to p_i
  std::vector<VarId> v_;            // V[i] local to p_i
  std::vector<VarId> first_done_;   // first_done_[i] local to p_i
};

}  // namespace rmrsim
