#include "primitives/rw_cas_registration.h"

namespace rmrsim {

RwCasRegistrationSignal::RwCasRegistrationSignal(SharedMemory& mem)
    : s_(mem.allocate_global(0, "S")),
      head_(std::make_unique<EmulatedCas>(mem, kNil, "Head")) {
  for (ProcId i = 0; i < mem.nprocs(); ++i) {
    next_.push_back(
        mem.allocate_local(i, kNil, "Next[" + std::to_string(i) + "]"));
    v_.push_back(mem.allocate_local(i, 0, "V[" + std::to_string(i) + "]"));
    first_done_.push_back(
        mem.allocate_local(i, 0, "First[" + std::to_string(i) + "]"));
  }
}

SubTask<bool> RwCasRegistrationSignal::poll(ProcCtx& ctx) {
  const ProcId me = ctx.id();
  const Word done = co_await ctx.read(first_done_[me]);
  if (done == 0) {
    for (;;) {
      const Word h = co_await head_->read(ctx);
      co_await ctx.write(next_[me], h);
      const Word old = co_await head_->cas(ctx, h, me);
      if (old == h) break;
    }
    co_await ctx.write(first_done_[me], 1);
    const Word s = co_await ctx.read(s_);
    co_return s != 0;
  }
  const Word v = co_await ctx.read(v_[me]);
  co_return v != 0;
}

SubTask<void> RwCasRegistrationSignal::signal(ProcCtx& ctx) {
  co_await ctx.write(s_, 1);
  Word node = co_await head_->read(ctx);
  while (node != kNil) {
    const ProcId w = static_cast<ProcId>(node);
    co_await ctx.write(v_[w], 1);
    node = co_await ctx.read(next_[w]);
  }
}

}  // namespace rmrsim
