#include "primitives/blocking_leader.h"

#include "common/check.h"

namespace rmrsim {

DsmBlockingLeaderSignal::DsmBlockingLeaderSignal(SharedMemory& mem)
    : election_(std::make_unique<TasLeaderElection>(mem)),
      s_(mem.allocate_global(0, "S")),
      w_(mem.allocate_global(kNil, "W")) {
  for (ProcId i = 0; i < mem.nprocs(); ++i) {
    reg_.push_back(mem.allocate_local(i, 0, "Reg[" + std::to_string(i) + "]"));
    v_.push_back(mem.allocate_local(i, 0, "V[" + std::to_string(i) + "]"));
  }
}

SubTask<bool> DsmBlockingLeaderSignal::poll(ProcCtx&) {
  fail("dsm-blocking-leader implements blocking semantics only; call Wait()");
}

SubTask<void> DsmBlockingLeaderSignal::signal(ProcCtx& ctx) {
  // The single-waiter signaler (Section 7): set S, then deliver to the
  // registered leader if one exists.
  co_await ctx.write(s_, 1);
  const Word leader = co_await ctx.read(w_);
  if (leader != kNil) {
    co_await ctx.write(v_[static_cast<ProcId>(leader)], 1);
  }
}

SubTask<void> DsmBlockingLeaderSignal::wait(ProcCtx& ctx) {
  const ProcId me = ctx.id();
  co_await ctx.write(reg_[me], 1);  // announce myself (own module)
  const ProcId leader = co_await election_->elect(ctx);
  if (me == leader) {
    // Play the single waiter: register in W, then check S (closing the race
    // with a concurrent Signal() exactly as in the single-waiter variant).
    co_await ctx.write(w_, me);
    const Word s = co_await ctx.read(s_);
    if (s == 0) {
      for (;;) {
        const Word mine = co_await ctx.read(v_[me]);  // local spin
        if (mine != 0) break;
      }
    }
    // Propagate: deliver to every registered waiter (including late ones —
    // each sweep pass reads the registration flags once; waiters that
    // register after the sweep see S = 1 themselves... but with blocking
    // semantics they spin on V, so the leader re-checks its own V stays set
    // and sweeps everyone it can see now).
    for (ProcId i = 0; i < static_cast<ProcId>(reg_.size()); ++i) {
      if (i == me) continue;
      const Word r = co_await ctx.read(reg_[i]);
      if (r != 0) {
        co_await ctx.write(v_[i], 1);
      }
    }
    co_return;
  }
  // Non-leader: one more safety net against the race where the leader swept
  // before our registration became visible — if the signal is already fully
  // propagated (S set and leader delivered), V[me] may never be written, so
  // check S once; if it is set we may return immediately.
  const Word s = co_await ctx.read(s_);
  if (s != 0) co_return;
  for (;;) {
    const Word mine = co_await ctx.read(v_[me]);  // local spin
    if (mine != 0) co_return;
  }
}

}  // namespace rmrsim
