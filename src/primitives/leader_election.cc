#include "primitives/leader_election.h"

namespace rmrsim {

TasLeaderElection::TasLeaderElection(SharedMemory& mem)
    : flag_(mem.allocate_global(0, "ElectFlag")),
      leader_(mem.allocate_global(kNil, "Leader")) {
  for (ProcId p = 0; p < mem.nprocs(); ++p) {
    known_.push_back(
        mem.allocate_local(p, kNil, "Known[" + std::to_string(p) + "]"));
  }
}

SubTask<ProcId> TasLeaderElection::elect(ProcCtx& ctx) {
  const ProcId me = ctx.id();
  const Word cached = co_await ctx.read(known_[me]);  // local
  if (cached != kNil) co_return static_cast<ProcId>(cached);

  const Word old = co_await ctx.tas(flag_);
  if (old == 0) {
    co_await ctx.write(leader_, me);
    co_await ctx.write(known_[me], me);
    co_return me;
  }
  for (;;) {
    const Word l = co_await ctx.read(leader_);
    if (l != kNil) {
      co_await ctx.write(known_[me], l);
      co_return static_cast<ProcId>(l);
    }
  }
}

}  // namespace rmrsim
