#include "memory/store.h"

#include <algorithm>
#include <bit>

#include "common/check.h"

namespace rmrsim {

MemoryStore::MemoryStore(int nprocs)
    : nprocs_(nprocs), mask_words_((nprocs + 63) / 64) {
  ensure(nprocs > 0, "store needs at least one processor");
}

VarId MemoryStore::allocate(Word initial, ProcId home, std::string name) {
  ensure(home == kNoProc || (home >= 0 && home < nprocs_),
         "variable home must be a processor id or kNoProc");
  Slot s;
  s.value = initial;
  s.initial = initial;
  s.home = home;
  s.name = std::move(name);
  slots_.push_back(std::move(s));
  writers_bits_.resize(slots_.size() * static_cast<std::size_t>(mask_words_),
                       0);
  reservation_bits_.resize(
      slots_.size() * static_cast<std::size_t>(mask_words_), 0);
  return static_cast<VarId>(slots_.size() - 1);
}

MemoryStore::Slot& MemoryStore::slot(VarId v) {
  ensure(v >= 0 && v < num_vars(), "variable id out of range");
  return slots_[static_cast<std::size_t>(v)];
}

const MemoryStore::Slot& MemoryStore::slot(VarId v) const {
  ensure(v >= 0 && v < num_vars(), "variable id out of range");
  return slots_[static_cast<std::size_t>(v)];
}

std::uint64_t* MemoryStore::writer_mask(VarId v) {
  return writers_bits_.data() +
         static_cast<std::size_t>(v) * static_cast<std::size_t>(mask_words_);
}

const std::uint64_t* MemoryStore::writer_mask(VarId v) const {
  return writers_bits_.data() +
         static_cast<std::size_t>(v) * static_cast<std::size_t>(mask_words_);
}

std::uint64_t* MemoryStore::reservation_mask(VarId v) {
  return reservation_bits_.data() +
         static_cast<std::size_t>(v) * static_cast<std::size_t>(mask_words_);
}

const std::uint64_t* MemoryStore::reservation_mask(VarId v) const {
  return reservation_bits_.data() +
         static_cast<std::size_t>(v) * static_cast<std::size_t>(mask_words_);
}

bool MemoryStore::mask_test(const std::uint64_t* m, ProcId p) {
  return (m[p >> 6] >> (p & 63)) & 1u;
}

void MemoryStore::mask_set(std::uint64_t* m, ProcId p) {
  m[p >> 6] |= std::uint64_t{1} << (p & 63);
}

void MemoryStore::mask_clear(std::uint64_t* m, ProcId p) {
  m[p >> 6] &= ~(std::uint64_t{1} << (p & 63));
}

bool MemoryStore::any_reservation(VarId v) const {
  const std::uint64_t* m = reservation_mask(v);
  for (int w = 0; w < mask_words_; ++w) {
    if (m[w] != 0) return true;
  }
  return false;
}

void MemoryStore::clear_slot_reservations(VarId v) {
  std::uint64_t* m = reservation_mask(v);
  for (int w = 0; w < mask_words_; ++w) m[w] = 0;
}

ProcId MemoryStore::home(VarId v) const { return slot(v).home; }
Word MemoryStore::value(VarId v) const { return slot(v).value; }
Word MemoryStore::initial(VarId v) const { return slot(v).initial; }
ProcId MemoryStore::last_writer(VarId v) const { return slot(v).last_writer; }

int MemoryStore::distinct_writers(VarId v) const {
  const std::uint64_t* m = writer_mask(v);
  int count = 0;
  for (int w = 0; w < mask_words_; ++w) count += std::popcount(m[w]);
  return count;
}

const std::string& MemoryStore::name(VarId v) const { return slot(v).name; }

bool MemoryStore::would_write(ProcId p, const MemOp& op) const {
  const Slot& s = slot(op.var);
  switch (op.type) {
    case OpType::kRead:
    case OpType::kLl:
      return false;
    case OpType::kWrite:
    case OpType::kFaa:
    case OpType::kFas:
      return true;
    case OpType::kTas:
      // Modeled as the comparison primitive CAS(v, 0, 1) returning the old
      // value: a TAS on an already-set flag fails the comparison and does
      // not overwrite. This is the reading under which LFCU systems service
      // failed TAS locally (Section 3, [1]).
      return s.value == 0;
    case OpType::kCas:
      return s.value == op.arg0;
    case OpType::kSc:
      return mask_test(reservation_mask(op.var), p);
  }
  fail("unknown op type");
}

void MemoryStore::note_write(VarId v, Slot& s, ProcId p) {
  s.last_writer = p;
  mask_set(writer_mask(v), p);
  // An overwrite invalidates every other process's LL reservation on this
  // variable; the writer's own reservation also dies (standard LL/SC: SC
  // succeeds at most once per LL, and an intervening write by anyone clears
  // reservations).
  clear_slot_reservations(v);
}

MemoryStore::ApplyResult MemoryStore::apply(ProcId p, const MemOp& op) {
  ensure(p >= 0 && p < nprocs_, "process id out of range");
  Slot& s = slot(op.var);
  ApplyResult r;
  r.prev_writer = s.last_writer;
  switch (op.type) {
    case OpType::kRead:
      r.result = s.value;
      break;
    case OpType::kWrite:
      r.result = op.arg0;
      note_write(op.var, s, p);
      s.value = op.arg0;
      r.wrote = true;
      break;
    case OpType::kCas:
      r.result = s.value;
      if (s.value == op.arg0) {
        note_write(op.var, s, p);
        s.value = op.arg1;
        r.wrote = true;
      }
      break;
    case OpType::kLl:
      r.result = s.value;
      mask_set(reservation_mask(op.var), p);
      break;
    case OpType::kSc: {
      if (mask_test(reservation_mask(op.var), p)) {
        note_write(op.var, s, p);
        s.value = op.arg0;
        r.wrote = true;
        r.result = 1;
      } else {
        r.result = 0;
      }
      break;
    }
    case OpType::kFaa:
      r.result = s.value;
      note_write(op.var, s, p);
      s.value += op.arg0;
      r.wrote = true;
      break;
    case OpType::kFas:
      r.result = s.value;
      note_write(op.var, s, p);
      s.value = op.arg0;
      r.wrote = true;
      break;
    case OpType::kTas:
      r.result = s.value;
      if (s.value == 0) {
        note_write(op.var, s, p);
        s.value = 1;
        r.wrote = true;
      }
      break;
  }
  return r;
}

void MemoryStore::poke(VarId v, Word value, ProcId last_writer) {
  Slot& s = slot(v);
  s.value = value;
  s.last_writer = last_writer;
}

void MemoryStore::forget_writer(VarId v, ProcId p) {
  ensure(v >= 0 && v < num_vars(), "variable id out of range");
  mask_clear(writer_mask(v), p);
}

void MemoryStore::clear_reservations(ProcId p) {
  ensure(p >= 0 && p < nprocs_, "process id out of range");
  const int word = p >> 6;
  const std::uint64_t bit = std::uint64_t{1} << (p & 63);
  for (std::size_t base = static_cast<std::size_t>(word);
       base < reservation_bits_.size();
       base += static_cast<std::size_t>(mask_words_)) {
    reservation_bits_[base] &= ~bit;
  }
}

bool MemoryStore::has_reservation(ProcId p, VarId v) const {
  ensure(v >= 0 && v < num_vars(), "variable id out of range");
  return mask_test(reservation_mask(v), p);
}

void MemoryStore::reset() {
  for (Slot& s : slots_) {
    s.value = s.initial;
    s.last_writer = kNoProc;
  }
  std::fill(writers_bits_.begin(), writers_bits_.end(), 0);
  std::fill(reservation_bits_.begin(), reservation_bits_.end(), 0);
}

}  // namespace rmrsim
