#include "memory/store.h"

#include <algorithm>

#include "common/check.h"

namespace rmrsim {

MemoryStore::MemoryStore(int nprocs) : nprocs_(nprocs) {
  ensure(nprocs > 0, "store needs at least one processor");
}

VarId MemoryStore::allocate(Word initial, ProcId home, std::string name) {
  ensure(home == kNoProc || (home >= 0 && home < nprocs_),
         "variable home must be a processor id or kNoProc");
  Slot s;
  s.value = initial;
  s.initial = initial;
  s.home = home;
  s.name = std::move(name);
  slots_.push_back(std::move(s));
  return static_cast<VarId>(slots_.size() - 1);
}

MemoryStore::Slot& MemoryStore::slot(VarId v) {
  ensure(v >= 0 && v < num_vars(), "variable id out of range");
  return slots_[static_cast<std::size_t>(v)];
}

const MemoryStore::Slot& MemoryStore::slot(VarId v) const {
  ensure(v >= 0 && v < num_vars(), "variable id out of range");
  return slots_[static_cast<std::size_t>(v)];
}

ProcId MemoryStore::home(VarId v) const { return slot(v).home; }
Word MemoryStore::value(VarId v) const { return slot(v).value; }
Word MemoryStore::initial(VarId v) const { return slot(v).initial; }
ProcId MemoryStore::last_writer(VarId v) const { return slot(v).last_writer; }

int MemoryStore::distinct_writers(VarId v) const {
  return static_cast<int>(slot(v).writers.size());
}

const std::string& MemoryStore::name(VarId v) const { return slot(v).name; }

bool MemoryStore::would_write(ProcId p, const MemOp& op) const {
  const Slot& s = slot(op.var);
  switch (op.type) {
    case OpType::kRead:
    case OpType::kLl:
      return false;
    case OpType::kWrite:
    case OpType::kFaa:
    case OpType::kFas:
      return true;
    case OpType::kTas:
      // Modeled as the comparison primitive CAS(v, 0, 1) returning the old
      // value: a TAS on an already-set flag fails the comparison and does
      // not overwrite. This is the reading under which LFCU systems service
      // failed TAS locally (Section 3, [1]).
      return s.value == 0;
    case OpType::kCas:
      return s.value == op.arg0;
    case OpType::kSc:
      return std::find(s.reservations.begin(), s.reservations.end(), p) !=
             s.reservations.end();
  }
  fail("unknown op type");
}

void MemoryStore::note_write(Slot& s, ProcId p) {
  s.last_writer = p;
  if (std::find(s.writers.begin(), s.writers.end(), p) == s.writers.end()) {
    s.writers.push_back(p);
  }
  // An overwrite invalidates every other process's LL reservation on this
  // variable; the writer's own reservation also dies (standard LL/SC: SC
  // succeeds at most once per LL, and an intervening write by anyone clears
  // reservations).
  s.reservations.clear();
}

MemoryStore::ApplyResult MemoryStore::apply(ProcId p, const MemOp& op) {
  ensure(p >= 0 && p < nprocs_, "process id out of range");
  Slot& s = slot(op.var);
  ApplyResult r;
  r.prev_writer = s.last_writer;
  switch (op.type) {
    case OpType::kRead:
      r.result = s.value;
      break;
    case OpType::kWrite:
      r.result = op.arg0;
      note_write(s, p);
      s.value = op.arg0;
      r.wrote = true;
      break;
    case OpType::kCas:
      r.result = s.value;
      if (s.value == op.arg0) {
        note_write(s, p);
        s.value = op.arg1;
        r.wrote = true;
      }
      break;
    case OpType::kLl:
      r.result = s.value;
      if (std::find(s.reservations.begin(), s.reservations.end(), p) ==
          s.reservations.end()) {
        s.reservations.push_back(p);
      }
      break;
    case OpType::kSc: {
      const bool reserved =
          std::find(s.reservations.begin(), s.reservations.end(), p) !=
          s.reservations.end();
      if (reserved) {
        note_write(s, p);
        s.value = op.arg0;
        r.wrote = true;
        r.result = 1;
      } else {
        r.result = 0;
      }
      break;
    }
    case OpType::kFaa:
      r.result = s.value;
      note_write(s, p);
      s.value += op.arg0;
      r.wrote = true;
      break;
    case OpType::kFas:
      r.result = s.value;
      note_write(s, p);
      s.value = op.arg0;
      r.wrote = true;
      break;
    case OpType::kTas:
      r.result = s.value;
      if (s.value == 0) {
        note_write(s, p);
        s.value = 1;
        r.wrote = true;
      }
      break;
  }
  return r;
}

void MemoryStore::poke(VarId v, Word value, ProcId last_writer) {
  Slot& s = slot(v);
  s.value = value;
  s.last_writer = last_writer;
}

void MemoryStore::forget_writer(VarId v, ProcId p) {
  Slot& s = slot(v);
  s.writers.erase(std::remove(s.writers.begin(), s.writers.end(), p),
                  s.writers.end());
}

void MemoryStore::reset() {
  for (Slot& s : slots_) {
    s.value = s.initial;
    s.last_writer = kNoProc;
    s.writers.clear();
    s.reservations.clear();
  }
}

}  // namespace rmrsim
