#include "memory/store.h"

#include <algorithm>
#include <bit>

#include "common/check.h"

namespace rmrsim {

MemoryStore::MemoryStore(int nprocs)
    : nprocs_(nprocs), mask_words_((nprocs + 63) / 64),
      names_(std::make_shared<std::vector<std::string>>()) {
  ensure(nprocs > 0, "store needs at least one processor");
}

VarId MemoryStore::allocate(Word initial, ProcId home, std::string name) {
  ensure(home == kNoProc || (home >= 0 && home < nprocs_),
         "variable home must be a processor id or kNoProc");
  values_.push_back(initial);
  initials_.push_back(initial);
  homes_.push_back(home);
  last_writers_.push_back(kNoProc);
  if (names_.use_count() > 1) {
    // A snapshot still shares our name table — copy-on-write before growing.
    names_ = std::make_shared<std::vector<std::string>>(*names_);
  }
  names_->push_back(std::move(name));
  writers_bits_.resize(values_.size() * static_cast<std::size_t>(mask_words_),
                       0);
  reservation_bits_.resize(
      values_.size() * static_cast<std::size_t>(mask_words_), 0);
  return static_cast<VarId>(values_.size() - 1);
}

std::uint64_t* MemoryStore::writer_mask(VarId v) {
  return writers_bits_.data() +
         static_cast<std::size_t>(v) * static_cast<std::size_t>(mask_words_);
}

const std::uint64_t* MemoryStore::writer_mask(VarId v) const {
  return writers_bits_.data() +
         static_cast<std::size_t>(v) * static_cast<std::size_t>(mask_words_);
}

std::uint64_t* MemoryStore::reservation_mask(VarId v) {
  return reservation_bits_.data() +
         static_cast<std::size_t>(v) * static_cast<std::size_t>(mask_words_);
}

const std::uint64_t* MemoryStore::reservation_mask(VarId v) const {
  return reservation_bits_.data() +
         static_cast<std::size_t>(v) * static_cast<std::size_t>(mask_words_);
}

bool MemoryStore::mask_test(const std::uint64_t* m, ProcId p) {
  return (m[p >> 6] >> (p & 63)) & 1u;
}

void MemoryStore::mask_set(std::uint64_t* m, ProcId p) {
  m[p >> 6] |= std::uint64_t{1} << (p & 63);
}

void MemoryStore::mask_clear(std::uint64_t* m, ProcId p) {
  m[p >> 6] &= ~(std::uint64_t{1} << (p & 63));
}

bool MemoryStore::any_reservation(VarId v) const {
  const std::uint64_t* m = reservation_mask(v);
  for (int w = 0; w < mask_words_; ++w) {
    if (m[w] != 0) return true;
  }
  return false;
}

void MemoryStore::clear_slot_reservations(VarId v) {
  std::uint64_t* m = reservation_mask(v);
  for (int w = 0; w < mask_words_; ++w) m[w] = 0;
}

Word MemoryStore::value(VarId v) const { return values_[index(v)]; }
Word MemoryStore::initial(VarId v) const { return initials_[index(v)]; }
ProcId MemoryStore::last_writer(VarId v) const {
  return last_writers_[index(v)];
}

int MemoryStore::distinct_writers(VarId v) const {
  const std::uint64_t* m = writer_mask(static_cast<VarId>(index(v)));
  int count = 0;
  for (int w = 0; w < mask_words_; ++w) count += std::popcount(m[w]);
  return count;
}

const std::string& MemoryStore::name(VarId v) const {
  return (*names_)[index(v)];
}

bool MemoryStore::would_write(ProcId p, const MemOp& op) const {
  const Word value = values_[index(op.var)];
  switch (op.type) {
    case OpType::kRead:
    case OpType::kLl:
      return false;
    case OpType::kWrite:
    case OpType::kFaa:
    case OpType::kFas:
      return true;
    case OpType::kTas:
      // Modeled as the comparison primitive CAS(v, 0, 1) returning the old
      // value: a TAS on an already-set flag fails the comparison and does
      // not overwrite. This is the reading under which LFCU systems service
      // failed TAS locally (Section 3, [1]).
      return value == 0;
    case OpType::kCas:
      return value == op.arg0;
    case OpType::kSc:
      return mask_test(reservation_mask(op.var), p);
  }
  fail("unknown op type");
}

void MemoryStore::note_write(VarId v, ProcId p) {
  last_writers_[static_cast<std::size_t>(v)] = p;
  mask_set(writer_mask(v), p);
  // An overwrite invalidates every other process's LL reservation on this
  // variable; the writer's own reservation also dies (standard LL/SC: SC
  // succeeds at most once per LL, and an intervening write by anyone clears
  // reservations).
  clear_slot_reservations(v);
}

MemoryStore::ApplyResult MemoryStore::apply(ProcId p, const MemOp& op) {
  ensure(p >= 0 && p < nprocs_, "process id out of range");
  const std::size_t i = index(op.var);
  Word& value = values_[i];
  ApplyResult r;
  r.prev_writer = last_writers_[i];
  switch (op.type) {
    case OpType::kRead:
      r.result = value;
      break;
    case OpType::kWrite:
      r.result = op.arg0;
      note_write(op.var, p);
      value = op.arg0;
      r.wrote = true;
      break;
    case OpType::kCas:
      r.result = value;
      if (value == op.arg0) {
        note_write(op.var, p);
        value = op.arg1;
        r.wrote = true;
      }
      break;
    case OpType::kLl:
      r.result = value;
      mask_set(reservation_mask(op.var), p);
      break;
    case OpType::kSc: {
      if (mask_test(reservation_mask(op.var), p)) {
        note_write(op.var, p);
        value = op.arg0;
        r.wrote = true;
        r.result = 1;
      } else {
        r.result = 0;
      }
      break;
    }
    case OpType::kFaa:
      r.result = value;
      note_write(op.var, p);
      value += op.arg0;
      r.wrote = true;
      break;
    case OpType::kFas:
      r.result = value;
      note_write(op.var, p);
      value = op.arg0;
      r.wrote = true;
      break;
    case OpType::kTas:
      r.result = value;
      if (value == 0) {
        note_write(op.var, p);
        value = 1;
        r.wrote = true;
      }
      break;
  }
  return r;
}

void MemoryStore::poke(VarId v, Word value, ProcId last_writer) {
  const std::size_t i = index(v);
  values_[i] = value;
  last_writers_[i] = last_writer;
}

void MemoryStore::forget_writer(VarId v, ProcId p) {
  mask_clear(writer_mask(static_cast<VarId>(index(v))), p);
}

void MemoryStore::clear_reservations(ProcId p) {
  ensure(p >= 0 && p < nprocs_, "process id out of range");
  const int word = p >> 6;
  const std::uint64_t bit = std::uint64_t{1} << (p & 63);
  for (std::size_t base = static_cast<std::size_t>(word);
       base < reservation_bits_.size();
       base += static_cast<std::size_t>(mask_words_)) {
    reservation_bits_[base] &= ~bit;
  }
}

bool MemoryStore::has_reservation(ProcId p, VarId v) const {
  return mask_test(reservation_mask(static_cast<VarId>(index(v))), p);
}

void MemoryStore::encode(std::string& out) const {
  put_u32(out, static_cast<std::uint32_t>(nprocs_));
  put_u32(out, static_cast<std::uint32_t>(values_.size()));
  for (std::size_t i = 0; i < values_.size(); ++i) {
    put_u64(out, static_cast<std::uint64_t>(initials_[i]));
    put_u32(out, static_cast<std::uint32_t>(homes_[i]));
    put_u64(out, static_cast<std::uint64_t>(values_[i]));
    put_u32(out, static_cast<std::uint32_t>(last_writers_[i]));
  }
  put_u32(out, static_cast<std::uint32_t>(writers_bits_.size()));
  for (const std::uint64_t w : writers_bits_) put_u64(out, w);
  for (const std::uint64_t w : reservation_bits_) put_u64(out, w);
}

void MemoryStore::decode(ByteReader& r) {
  const auto nprocs = static_cast<int>(r.u32());
  const auto nvars = r.u32();
  if (nprocs != nprocs_ || nvars != values_.size()) {
    throw std::runtime_error("snapshot store layout mismatch");
  }
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const Word initial = static_cast<Word>(r.u64());
    const ProcId home = static_cast<ProcId>(r.u32());
    if (initial != initials_[i] || home != homes_[i]) {
      throw std::runtime_error("snapshot store layout mismatch");
    }
    values_[i] = static_cast<Word>(r.u64());
    last_writers_[i] = static_cast<ProcId>(r.u32());
  }
  const auto nwords = r.u32();
  if (nwords != writers_bits_.size()) {
    throw std::runtime_error("snapshot store layout mismatch");
  }
  for (std::size_t i = 0; i < writers_bits_.size(); ++i) {
    writers_bits_[i] = r.u64();
  }
  for (std::size_t i = 0; i < reservation_bits_.size(); ++i) {
    reservation_bits_[i] = r.u64();
  }
}

void MemoryStore::reset() {
  values_ = initials_;
  std::fill(last_writers_.begin(), last_writers_.end(), kNoProc);
  std::fill(writers_bits_.begin(), writers_bits_.end(), 0);
  std::fill(reservation_bits_.begin(), reservation_bits_.end(), 0);
}

}  // namespace rmrsim
